package gtopkssgd

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"gtopkssgd/internal/prng"
)

func TestPublicQuantAggregators(t *testing.T) {
	const p, dim = 4, 32
	src := prng.New(4)
	target := make([]float32, dim)
	for i := range target {
		target[i] = float32(src.NormFloat64())
	}
	gradFn := func(_ int, weights, grad []float32) float64 {
		var loss float64
		for i := range weights {
			d := weights[i] - target[i]
			grad[i] = d
			loss += float64(d) * float64(d)
		}
		return loss / dim
	}
	for _, algo := range []string{"signsgd", "terngrad", "gtopk-quant8"} {
		t.Run(algo, func(t *testing.T) {
			results, err := RunCluster(context.Background(),
				ClusterConfig{Workers: p, Steps: 150},
				func(rank int, comm *Comm) (*Trainer, error) {
					var (
						agg Aggregator
						err error
					)
					switch algo {
					case "signsgd":
						agg = NewSignSGDAggregator(comm, dim)
					case "terngrad":
						agg = NewTernGradAggregator(comm, dim, 9)
					case "gtopk-quant8":
						agg, err = NewQuantizedGTopKAggregator(comm, dim, 4, 9)
					}
					if err != nil {
						return nil, err
					}
					lr := float32(0.05)
					if algo == "signsgd" {
						lr = 0.02
					}
					return NewTrainer(TrainConfig{LR: lr}, agg, make([]float32, dim), gradFn)
				})
			if err != nil {
				t.Fatal(err)
			}
			first, last := results[0].Losses[0], results[0].Losses[149]
			if last > first/2 {
				t.Fatalf("%s did not make progress: %v -> %v", algo, first, last)
			}
		})
	}
}

func TestPublicCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.ckpt")
	s := &CheckpointState{
		Iter:     7,
		Weights:  []float32{1, 2, 3},
		Velocity: []float32{4, 5, 6},
		Residual: []float32{7, 8, 9},
		Meta:     map[string]string{"model": "mlp"},
	}
	if err := SaveCheckpoint(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter != 7 || got.Weights[2] != 3 || got.Meta["model"] != "mlp" {
		t.Fatalf("round trip altered state: %+v", got)
	}
}

func TestPublicPipelinedTrainer(t *testing.T) {
	fabric, err := NewInProcFabric(1)
	if err != nil {
		t.Fatal(err)
	}
	defer fabric.Close()
	agg := NewDenseAggregator(NewComm(fabric.Conn(0)), 2)
	tr, err := NewPipelinedTrainer(TrainConfig{LR: 0.5}, agg, make([]float32, 2),
		func(_ int, weights, grad []float32) float64 {
			grad[0] = weights[0] - 1
			grad[1] = weights[1] + 1
			return 0
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := tr.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	w := tr.Weights()
	if w[0] < 0.9 || w[0] > 1.1 || w[1] > -0.9 && w[1] < -1.1 {
		t.Fatalf("pipelined trainer did not converge: %v", w)
	}
}

func TestPublicTraceRecorderViaHook(t *testing.T) {
	fabric, err := NewInProcFabric(1)
	if err != nil {
		t.Fatal(err)
	}
	defer fabric.Close()
	agg := NewDenseAggregator(NewComm(fabric.Conn(0)), 2)
	tr, err := NewTrainer(TrainConfig{LR: 0.1}, agg, make([]float32, 2),
		func(_ int, _, grad []float32) float64 { grad[0] = 1; return 0 })
	if err != nil {
		t.Fatal(err)
	}
	rec := NewTraceRecorder()
	tr.SetPhaseHook(func(iter int, pt PhaseTimes) {
		rec.Record(iter, "compute", pt.Compute)
		rec.Record(iter, "aggregate", pt.Aggregate)
	})
	for i := 0; i < 3; i++ {
		if _, err := tr.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Len() != 6 {
		t.Fatalf("recorded %d events, want 6", rec.Len())
	}
	totals := rec.Totals()
	if totals["aggregate"] <= 0 || totals["aggregate"] > time.Second {
		t.Fatalf("implausible aggregate total %v", totals["aggregate"])
	}
}

func TestPublicMultiProcessWorkerAPI(t *testing.T) {
	// Single-rank worker mesh is a degenerate but valid deployment.
	conn, err := NewTCPWorker(context.Background(), 0, []string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Size() != 1 {
		t.Fatalf("size = %d", conn.Size())
	}
}

// TestPublicHierarchicalSurface drives the hierarchical collective and
// aggregator through the facade: the G=P degenerate must match
// GTopKAllReduce bit for bit, and the real two-level regime must keep
// replicas identical.
func TestPublicHierarchicalSurface(t *testing.T) {
	const p, g, dim, k = 4, 2, 100, 5
	fabric, err := NewInProcFabric(p)
	if err != nil {
		t.Fatal(err)
	}
	defer fabric.Close()

	locals := make([]*Vector, p)
	for r := range locals {
		src := prng.New(uint64(r + 50))
		grad := make([]float32, dim)
		for i := range grad {
			grad[i] = float32(src.NormFloat64())
		}
		locals[r] = TopKSelect(grad, k)
	}

	run := func(group int) []*Vector {
		out := make([]*Vector, p)
		errs := make([]error, p)
		done := make(chan struct{}, p)
		for r := 0; r < p; r++ {
			go func(rank int) {
				defer func() { done <- struct{}{} }()
				comm := NewComm(fabric.Conn(rank))
				out[rank], errs[rank] = HierarchicalGTopKAllReduce(
					context.Background(), comm, locals[rank].Clone(), k, group)
			}(r)
		}
		for i := 0; i < p; i++ {
			<-done
		}
		for r, err := range errs {
			if err != nil {
				t.Fatalf("group %d rank %d: %v", group, r, err)
			}
		}
		return out
	}

	flatEquiv := run(p) // degenerate: bit-identical to the flat tree
	hier := run(g)
	for r := 1; r < p; r++ {
		for _, set := range [][]*Vector{flatEquiv, hier} {
			if set[r].NNZ() != set[0].NNZ() {
				t.Fatalf("rank %d disagrees on nnz", r)
			}
			for i := range set[0].Indices {
				if set[r].Indices[i] != set[0].Indices[i] || set[r].Values[i] != set[0].Values[i] {
					t.Fatalf("rank %d entry %d diverged", r, i)
				}
			}
		}
	}

	if _, err := NewHierarchicalAggregator(NewComm(fabric.Conn(0)), dim, k, 0); err == nil {
		t.Fatal("group 0 accepted")
	}
	if _, err := NewHierarchicalBucketedAggregator(NewComm(fabric.Conn(0)), []int{0, dim}, 0.05, 0); err == nil {
		t.Fatal("bucketed group 0 accepted")
	}
}
