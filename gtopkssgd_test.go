package gtopkssgd

import (
	"context"
	"testing"

	"gtopkssgd/internal/prng"
)

// TestPublicAPIEndToEnd exercises the whole public surface the way the
// README shows: build a fabric, run a 4-worker gTop-k training job on a
// toy objective, and verify convergence and replica consistency.
func TestPublicAPIEndToEnd(t *testing.T) {
	// With density 0.1 each coordinate waits ~10 steps in the residual
	// before being applied, so the stable learning rate is ~10x smaller
	// than dense SGD's (lr·staleness < 2 for a unit-curvature quadratic).
	const (
		workers = 4
		dim     = 64
		steps   = 400
	)
	src := prng.New(1)
	target := make([]float32, dim)
	for i := range target {
		target[i] = float32(src.NormFloat64())
	}
	gradFn := func(_ int, weights, grad []float32) float64 {
		var loss float64
		for i := range weights {
			d := weights[i] - target[i]
			grad[i] = d
			loss += 0.5 * float64(d) * float64(d)
		}
		return loss / dim
	}

	results, err := RunCluster(context.Background(),
		ClusterConfig{Workers: workers, Steps: steps},
		func(rank int, comm *Comm) (*Trainer, error) {
			k := DensityToK(dim, 0.1)
			agg, err := NewGTopKAggregator(comm, dim, k)
			if err != nil {
				return nil, err
			}
			return NewTrainer(TrainConfig{LR: 0.05}, agg, make([]float32, dim), gradFn)
		})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Losses[steps-1] > results[0].Losses[0]/10 {
		t.Fatalf("no convergence: %v -> %v", results[0].Losses[0], results[0].Losses[steps-1])
	}
	for r := 1; r < workers; r++ {
		for i := range results[0].FinalWeights {
			if results[r].FinalWeights[i] != results[0].FinalWeights[i] {
				t.Fatalf("replica %d diverged at %d", r, i)
			}
		}
	}
}

func TestPublicCollectives(t *testing.T) {
	const p, dim, k = 4, 100, 5
	fabric, err := NewInProcFabric(p)
	if err != nil {
		t.Fatal(err)
	}
	defer fabric.Close()

	locals := make([]*Vector, p)
	for r := range locals {
		src := prng.New(uint64(r + 10))
		g := make([]float32, dim)
		for i := range g {
			g[i] = float32(src.NormFloat64())
		}
		locals[r] = TopKSelect(g, k)
	}

	type result struct {
		vec *Vector
		err error
	}
	results := make([]result, p)
	done := make(chan int, p)
	for r := 0; r < p; r++ {
		go func(rank int) {
			comm := NewComm(fabric.Conn(rank))
			v, err := GTopKAllReduce(context.Background(), comm, locals[rank].Clone(), k)
			results[rank] = result{v, err}
			done <- rank
		}(r)
	}
	for i := 0; i < p; i++ {
		<-done
	}
	for r, res := range results {
		if res.err != nil {
			t.Fatalf("rank %d: %v", r, res.err)
		}
		if res.vec.NNZ() > k {
			t.Fatalf("rank %d: %d entries > k", r, res.vec.NNZ())
		}
	}
}

func TestPublicMergeAndSelect(t *testing.T) {
	a := TopKSelect([]float32{5, 0, -3, 1}, 2)
	bv := TopKSelect([]float32{0, 4, -3, 0}, 2)
	m, err := Merge(a, bv, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Sums: idx0=5, idx1=4, idx2=-6 -> top-2 by magnitude: idx2 (-6), idx0 (5).
	if m.NNZ() != 2 || m.Indices[0] != 0 || m.Indices[1] != 2 {
		t.Fatalf("merge = %v %v", m.Indices, m.Values)
	}
}

func TestPublicNetModel(t *testing.T) {
	model := Paper1GbE()
	if model.GTopKAllReduce(32, 25000) >= model.TopKAllReduce(32, 25000) {
		t.Fatal("gTopK should beat TopK at P=32")
	}
}

func TestPublicAggregatorConstructorsValidate(t *testing.T) {
	fabric, err := NewInProcFabric(1)
	if err != nil {
		t.Fatal(err)
	}
	defer fabric.Close()
	comm := NewComm(fabric.Conn(0))
	if _, err := NewTopKAggregator(comm, 10, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewGTopKAggregator(comm, 10, 11); err == nil {
		t.Error("k>dim accepted")
	}
	if _, err := NewLayerwiseGTopKAggregator(comm, []int{0, 5, 3}, 0.1); err == nil {
		t.Error("bad bounds accepted")
	}
	if _, err := NewPSGTopKAggregator(comm, 10, 2); err != nil {
		t.Errorf("valid PS aggregator rejected: %v", err)
	}
	if agg := NewDenseAggregator(comm, 10); agg.Name() != "dense" {
		t.Errorf("dense aggregator name %q", agg.Name())
	}
}

func TestPublicSparsifier(t *testing.T) {
	sp := NewSparsifier(4)
	sel, err := sp.Select([]float32{1, -9, 2, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.NNZ() != 1 || sel.Indices[0] != 1 {
		t.Fatalf("selection = %v", sel.Indices)
	}
}
