package doclint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepositoryIsDocClean walks the whole module and fails on any
// missing doc comment, so the godoc pass cannot regress even when CI's
// explicit doclint step is skipped (plain `go test ./...` runs this).
func TestRepositoryIsDocClean(t *testing.T) {
	root := moduleRoot(t)
	findings, err := CheckDirs([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("%d missing doc comment(s); document them (see package doclint)", len(findings))
	}
}

// TestFindsMissingDocs proves the linter actually detects each finding
// kind, using a synthetic package.
func TestFindsMissingDocs(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

func Exported() {}

type Type struct{}

const Answer = 42

var Victim int

func unexported() {}

type hidden struct{}

func (hidden) Method() {}
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := CheckDirs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"bad":      "package",
		"Exported": "func",
		"Type":     "type",
		"Answer":   "const",
		"Victim":   "var",
	}
	got := map[string]string{}
	for _, f := range findings {
		got[f.Symbol] = f.Kind
	}
	for sym, kind := range want {
		if got[sym] != kind {
			t.Errorf("missing finding for %s %s (got %v)", kind, sym, got)
		}
	}
	if len(findings) != len(want) {
		t.Errorf("%d findings, want %d: %v", len(findings), len(want), findings)
	}
}

// TestAcceptsDocumentedPackage: group comments and line comments count.
func TestAcceptsDocumentedPackage(t *testing.T) {
	dir := t.TempDir()
	src := `// Package good is fully documented.
package good

// Exported does nothing.
func Exported() {}

// Constants of the realm.
const (
	A = 1
	B = 2
)

var C = 3 // C is a line-commented var.
`
	if err := os.WriteFile(filepath.Join(dir, "good.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := CheckDirs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("clean package flagged: %v", findings)
	}
}

// moduleRoot locates the directory holding go.mod, walking up from the
// test's working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir || strings.HasSuffix(dir, string(filepath.Separator)) && parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
