// Package doclint enforces the repository's godoc contract with the
// standard library's go/ast — no third-party linter needed: every
// package carries a package doc comment, and every exported top-level
// identifier in library packages carries a doc comment. CI runs it via
// cmd/doclint (and the package's own test), so a godoc pass can never
// silently regress.
package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one missing doc comment.
type Finding struct {
	// Pos locates the undocumented declaration.
	Pos token.Position
	// Symbol names the undocumented package or identifier.
	Symbol string
	// Kind is "package", "func", "type", "const", "var" or "method".
	Kind string
}

// String renders the finding in the file:line:col style editors jump to.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s %s is missing a doc comment", f.Pos, f.Kind, f.Symbol)
}

// CheckDirs lints every Go package found under the given roots (a root
// ending in "/..." is walked recursively; testdata and hidden
// directories are skipped) and returns the findings sorted by position.
func CheckDirs(roots []string) ([]Finding, error) {
	dirs := map[string]bool{}
	for _, root := range roots {
		recursive := false
		if strings.HasSuffix(root, "/...") {
			recursive = true
			root = strings.TrimSuffix(root, "/...")
		}
		if !recursive {
			dirs[filepath.Clean(root)] = true
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			hasGo, err := dirHasGoFiles(path)
			if err != nil {
				return err
			}
			if hasGo {
				dirs[filepath.Clean(path)] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var all []Finding
	for dir := range dirs {
		fs, err := checkDir(dir)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Pos.Filename != all[j].Pos.Filename {
			return all[i].Pos.Filename < all[j].Pos.Filename
		}
		return all[i].Pos.Line < all[j].Pos.Line
	})
	return all, nil
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}

// checkDir lints one package directory. Test files are exempt: their
// exported helpers document themselves through the tests that use them.
func checkDir(dir string) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("doclint: %s: %w", dir, err)
	}
	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, checkPackage(fset, pkg)...)
	}
	return findings, nil
}

func checkPackage(fset *token.FileSet, pkg *ast.Package) []Finding {
	var findings []Finding

	// Package doc: at least one file must carry one.
	hasPkgDoc := false
	var firstFile *ast.File
	var firstName string
	for name, f := range pkg.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			hasPkgDoc = true
		}
		if firstFile == nil || name < firstName {
			firstFile, firstName = f, name
		}
	}
	if !hasPkgDoc && firstFile != nil {
		findings = append(findings, Finding{
			Pos:    fset.Position(firstFile.Package),
			Symbol: pkg.Name,
			Kind:   "package",
		})
	}

	// Exported identifiers. Commands are exempt beyond the package doc:
	// their interface is flags, documented in the command comment.
	if pkg.Name == "main" {
		return findings
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			findings = append(findings, checkDecl(fset, decl)...)
		}
	}
	return findings
}

func checkDecl(fset *token.FileSet, decl ast.Decl) []Finding {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || (d.Recv != nil && !receiverExported(d.Recv)) {
			return nil
		}
		if d.Doc == nil {
			kind := "func"
			if d.Recv != nil {
				kind = "method"
			}
			return []Finding{{Pos: fset.Position(d.Pos()), Symbol: d.Name.Name, Kind: kind}}
		}
	case *ast.GenDecl:
		if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
			return nil
		}
		groupDoc := d.Doc != nil
		var findings []Finding
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					findings = append(findings, Finding{Pos: fset.Position(s.Pos()), Symbol: s.Name.Name, Kind: "type"})
				}
			case *ast.ValueSpec:
				// A group comment covers all specs; otherwise each
				// exported spec needs its own doc or line comment.
				if groupDoc || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						findings = append(findings, Finding{
							Pos:    fset.Position(s.Pos()),
							Symbol: name.Name,
							Kind:   strings.ToLower(d.Tok.String()),
						})
						break
					}
				}
			}
		}
		return findings
	}
	return nil
}

// receiverExported reports whether a method's receiver type is
// exported; methods on unexported types are internal details.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
