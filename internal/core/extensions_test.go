package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

func newInProcFabric(n int) (*transport.InProcFabric, error) {
	return transport.NewInProc(n)
}

func TestPSGTopKMatchesNaive(t *testing.T) {
	// The star topology computes the exact global top-k of the sum, so it
	// must agree with NaiveGTopKAllReduce bit for bit.
	const p, dim, k = 4, 150, 8
	_, vecs := makeWorkerVectors(321, p, dim, k)
	sumDense := make([]float32, dim)
	for _, v := range vecs {
		v.ScatterAdd(sumDense)
	}
	want := sparse.TopK(sumDense, k)
	spmd(t, p, func(c *collective.Comm) error {
		got, err := PSGTopKAllReduce(context.Background(), c, vecs[c.Rank()].Clone(), k)
		if err != nil {
			return err
		}
		if got.NNZ() != want.NNZ() {
			return fmt.Errorf("nnz %d want %d", got.NNZ(), want.NNZ())
		}
		for i := range want.Indices {
			if got.Indices[i] != want.Indices[i] {
				return fmt.Errorf("idx %d: %d want %d", i, got.Indices[i], want.Indices[i])
			}
			if math.Abs(float64(got.Values[i]-want.Values[i])) > 1e-5 {
				return fmt.Errorf("val %d: %v want %v", i, got.Values[i], want.Values[i])
			}
		}
		return nil
	})
}

func TestPSGTopKWorksOnNonPow2(t *testing.T) {
	// Unlike the tree, the star topology has no power-of-two restriction.
	const p, dim, k = 3, 60, 5
	_, vecs := makeWorkerVectors(55, p, dim, k)
	spmd(t, p, func(c *collective.Comm) error {
		got, err := PSGTopKAllReduce(context.Background(), c, vecs[c.Rank()].Clone(), k)
		if err != nil {
			return err
		}
		if got.NNZ() > k {
			return fmt.Errorf("nnz %d > k", got.NNZ())
		}
		return got.Validate()
	})
}

func TestPSAggregatorTrainsQuadratic(t *testing.T) {
	const dim, p, steps = 40, 4, 120
	target := makeTarget(dim)
	results, err := RunCluster(context.Background(), ClusterConfig{Workers: p, Steps: steps},
		func(rank int, comm *collective.Comm) (*Trainer, error) {
			agg, err := NewPSGTopKAggregator(comm, dim, 6)
			if err != nil {
				return nil, err
			}
			return NewTrainer(TrainConfig{LR: 0.3}, agg, make([]float32, dim),
				quadGrad(target, uint64(rank)))
		})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < p; r++ {
		for i := range results[0].FinalWeights {
			if results[r].FinalWeights[i] != results[0].FinalWeights[i] {
				t.Fatalf("PS replicas diverged at %d", i)
			}
		}
	}
	if results[0].Losses[steps-1] > results[0].Losses[0]/5 {
		t.Fatalf("PS-mode did not converge: %v -> %v",
			results[0].Losses[0], results[0].Losses[steps-1])
	}
}

func TestLayerwiseBoundsValidation(t *testing.T) {
	f := func(bounds []int) error {
		fab := newSingleRankComm(t)
		_, err := NewLayerwiseGTopKAggregator(fab, bounds, 0.1)
		return err
	}
	if err := f([]int{0, 10, 30}); err != nil {
		t.Errorf("valid bounds rejected: %v", err)
	}
	for _, bad := range [][]int{{}, {0}, {1, 5}, {0, 5, 5}, {0, 10, 5}} {
		if err := f(bad); err == nil {
			t.Errorf("bounds %v accepted", bad)
		}
	}
	fab := newSingleRankComm(t)
	if _, err := NewLayerwiseGTopKAggregator(fab, []int{0, 10}, 0); err == nil {
		t.Error("zero density accepted")
	}
}

func newSingleRankComm(t *testing.T) *collective.Comm {
	t.Helper()
	f, err := newInProcFabric(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return collective.New(f.Conn(0))
}

func TestLayerBounds(t *testing.T) {
	got := LayerBounds([]int{3, 5, 2})
	want := []int{0, 3, 8, 10}
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
}

func TestLayerwiseAggregatorConvergesAndAgreesAcrossRanks(t *testing.T) {
	const p, steps = 4, 150
	bounds := []int{0, 20, 50, 64}
	dim := bounds[len(bounds)-1]
	target := makeTarget(dim)
	results, err := RunCluster(context.Background(), ClusterConfig{Workers: p, Steps: steps},
		func(rank int, comm *collective.Comm) (*Trainer, error) {
			agg, err := NewLayerwiseGTopKAggregator(comm, bounds, 0.1)
			if err != nil {
				return nil, err
			}
			return NewTrainer(TrainConfig{LR: 0.3}, agg, make([]float32, dim),
				quadGrad(target, uint64(rank)))
		})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < p; r++ {
		for i := range results[0].FinalWeights {
			if results[r].FinalWeights[i] != results[0].FinalWeights[i] {
				t.Fatalf("layerwise replicas diverged at %d", i)
			}
		}
	}
	if results[0].Losses[steps-1] > results[0].Losses[0]/5 {
		t.Fatalf("layerwise gTop-k did not converge: %v -> %v",
			results[0].Losses[0], results[0].Losses[steps-1])
	}
}

func TestLayerwiseEveryLayerRepresented(t *testing.T) {
	// With per-layer selection, every layer contributes at least one
	// coordinate to every update — the property motivating the extension.
	bounds := []int{0, 30, 60, 90}
	const p = 2
	var mu sync.Mutex
	layerHit := make([]bool, 3)
	spmd(t, p, func(c *collective.Comm) error {
		agg, err := NewLayerwiseGTopKAggregator(c, bounds, 0.05)
		if err != nil {
			return err
		}
		grad := make([]float32, 90)
		// Make layer 0 gradients huge so a global top-k would starve
		// layers 1 and 2 entirely.
		for i := 0; i < 30; i++ {
			grad[i] = 100
		}
		for i := 30; i < 90; i++ {
			grad[i] = 0.01
		}
		update, err := agg.Aggregate(context.Background(), grad)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		for l := 0; l < 3; l++ {
			for i := bounds[l]; i < bounds[l+1]; i++ {
				if update[i] != 0 {
					layerHit[l] = true
					break
				}
			}
		}
		return nil
	})
	for l, hit := range layerHit {
		if !hit {
			t.Errorf("layer %d received no update", l)
		}
	}
}

func TestScheduleChangesK(t *testing.T) {
	// A schedule stepping k from 3 to 1 must change the nnz of the
	// aggregated update accordingly.
	const dim = 16
	f, err := newInProcFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	nnzByStep := make([][]int, 2)
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := collective.New(f.Conn(rank))
			agg, err := NewGTopKAggregator(comm, dim, 3)
			if err != nil {
				errs[rank] = err
				return
			}
			agg.SetSchedule(func(step int) int {
				if step == 0 {
					return 3
				}
				return 1
			})
			grad := make([]float32, dim)
			for i := range grad {
				grad[i] = float32(i + 1)
			}
			for step := 0; step < 2; step++ {
				update, err := agg.Aggregate(context.Background(), grad)
				if err != nil {
					errs[rank] = err
					return
				}
				nnz := 0
				for _, v := range update {
					if v != 0 {
						nnz++
					}
				}
				nnzByStep[rank] = append(nnzByStep[rank], nnz)
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if nnzByStep[0][0] != 3 || nnzByStep[0][1] != 1 {
		t.Fatalf("schedule not applied: nnz per step = %v", nnzByStep[0])
	}
}
