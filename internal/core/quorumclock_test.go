package core_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/quant"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// runQuorumClockWorld drives one full-quorum round under codec with a
// private simulated clock per rank, returning each rank's clock reading
// and the round's merged result.
func runQuorumClockWorld(t *testing.T, codec sparse.Codec, vecs []*sparse.Vector, k int, model netsim.Model) ([]time.Duration, *sparse.Vector) {
	t.Helper()
	p := len(vecs)
	fab, err := transport.NewInProcWire(p, codec.WireVersion())
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close() //nolint:errcheck // test fabric
	qc := core.QuorumConfig{Q: p, Timeout: 5 * time.Second}
	times := make([]time.Duration, p)
	outs := make([]*sparse.Vector, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var clock netsim.Clock
			c := collective.New(fab.Conn(r)).WithClock(&clock, model)
			if codec.Value().Quantized() {
				c.SetCompressor(quant.NewStack(codec.Value(), 42).Fork(uint64(r)))
			}
			outs[r], _, _, errs[r] = core.QuorumGTopKAllReduce(context.Background(), c, vecs[r].Clone(), k, qc)
			times[r] = clock.Now()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("codec %v rank %d: %v", codec, r, err)
		}
	}
	return times, outs[0]
}

// TestQuorumClockChargesMeasuredVerdictBytes pins the verdict-leg
// charging rule across codecs: under v1 the broadcast is modelled at the
// flat-equivalent element count, but under a compressed codec it must
// charge the MEASURED encoded bytes — the clock has to agree with the
// wire tally, not with a layout the mesh never shipped. The old code
// charged every codec at the v1 flat equivalent, which made a v3-qsgd8
// round cost exactly a v1 round on the simulated clock; with ~5x fewer
// verdict bytes on the wire the qsgd8 round must now be strictly
// cheaper, and all per-rank clocks must still agree (the charge is a
// pure function of the verdict).
func TestQuorumClockChargesMeasuredVerdictBytes(t *testing.T) {
	const p, dim, k = 4, 300, 12
	vecs := compoundVectors(6006, p, dim, k, "gauss")
	model := netsim.Paper1GbE()

	v1Times, v1Out := runQuorumClockWorld(t, sparse.CodecV1, vecs, k, model)
	q8Times, _ := runQuorumClockWorld(t, sparse.CodecV3Q8, vecs, k, model)

	for r := 1; r < p; r++ {
		if v1Times[r] != v1Times[0] {
			t.Fatalf("v1 rank %d clock %v, rank 0 %v", r, v1Times[r], v1Times[0])
		}
		if q8Times[r] != q8Times[0] {
			t.Fatalf("qsgd8 rank %d clock %v, rank 0 %v", r, q8Times[r], q8Times[0])
		}
	}
	// The v1 charge is exact: a modelled 2k-element gather plus the flat
	// encoded verdict size in elements.
	wantV1 := model.Round(p, 2*k) + model.Round(p, sparse.EncodedSize(v1Out.NNZ())/4)
	if v1Times[0] != wantV1 {
		t.Fatalf("v1 clock %v, want %v", v1Times[0], wantV1)
	}
	// The compressed round still pays the modelled gather but a strictly
	// smaller verdict leg.
	gather := model.Round(p, 2*k)
	if q8Times[0] <= gather {
		t.Fatalf("qsgd8 clock %v advanced no verdict leg (gather alone is %v)", q8Times[0], gather)
	}
	if q8Times[0] >= v1Times[0] {
		t.Fatalf("qsgd8 clock %v not below the v1 clock %v — the verdict leg is still charged at the v1 flat equivalent", q8Times[0], v1Times[0])
	}
}
