package core

import (
	"context"
	"fmt"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/sparse"
)

// This file implements the two extensions the paper sketches but does not
// evaluate: gTop-k under a Parameter-Server topology (footnote 2: "it is
// also applicable to the Parameter Server based distributed SGD") and
// layer-wise sparsification (Section VII: "we would like to investigate
// layer-wise sparsification"). Both are exercised by dedicated ablation
// experiments in internal/bench.

// PSGTopKAllReduce aggregates sparse gradients through a star topology:
// every worker ships its top-k to rank 0 (the parameter server), which
// sums them, re-selects the global top-k, and broadcasts the result.
// Selection-wise this equals NaiveGTopKAllReduce (exact global top-k of
// the sum); communication-wise the server link carries (P−1) messages per
// phase, i.e. cost ≈ 2(P−1)(α + 2kβ), which scales worse than the tree's
// 2·logP rounds — the ablation quantifies exactly that gap.
func PSGTopKAllReduce(ctx context.Context, comm *collective.Comm, local *sparse.Vector, k int) (*sparse.Vector, error) {
	const server = 0
	p := comm.Size()
	base := comm.ClaimTags(1)
	var global *sparse.Vector
	if comm.Rank() == server {
		sum := local.Clone()
		for src := 1; src < p; src++ {
			blob, err := comm.RecvTag(ctx, src, base)
			if err != nil {
				return nil, fmt.Errorf("core: ps gtopk recv from %d: %w", src, err)
			}
			v, err := sparse.Decode(blob)
			if err != nil {
				return nil, fmt.Errorf("core: ps gtopk payload from %d: %w", src, err)
			}
			if sum, err = sparse.Add(sum, v); err != nil {
				return nil, fmt.Errorf("core: ps gtopk sum: %w", err)
			}
			// The server pays one sequential round per worker.
			comm.ChargeRound(2 * k)
		}
		global = sparse.TopKSparse(sum, k)
	} else {
		if err := comm.SendTag(ctx, server, base, sparse.Encode(local)); err != nil {
			return nil, fmt.Errorf("core: ps gtopk send: %w", err)
		}
		// Workers wait while the server drains all P−1 uploads in turn.
		for i := 0; i < p-1; i++ {
			comm.ChargeRound(2 * k)
		}
	}
	var payload []byte
	if comm.Rank() == server {
		payload = sparse.Encode(global)
	}
	blob, err := comm.Bcast(ctx, server, payload)
	if err != nil {
		return nil, fmt.Errorf("core: ps gtopk bcast: %w", err)
	}
	out, err := sparse.Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("core: ps gtopk bcast payload: %w", err)
	}
	return out, nil
}

// PSGTopKAggregator runs gTop-k S-SGD through PSGTopKAllReduce. Rank 0
// doubles as server and worker, as in classic PS deployments where the
// server is colocated.
type PSGTopKAggregator struct {
	comm  *collective.Comm
	sp    *Sparsifier
	k     int
	dense []float32
}

// NewPSGTopKAggregator creates the PS-mode aggregator.
func NewPSGTopKAggregator(comm *collective.Comm, dim, k int) (*PSGTopKAggregator, error) {
	if err := validateK(dim, k); err != nil {
		return nil, err
	}
	return &PSGTopKAggregator{comm: comm, sp: NewSparsifier(dim), k: k, dense: make([]float32, dim)}, nil
}

// Name implements Aggregator.
func (a *PSGTopKAggregator) Name() string { return "gtopk-ps" }

// Aggregate implements Aggregator.
func (a *PSGTopKAggregator) Aggregate(ctx context.Context, grad []float32) ([]float32, error) {
	local, err := a.sp.Select(grad, a.k)
	if err != nil {
		return nil, fmt.Errorf("core: ps aggregate: %w", err)
	}
	global, err := PSGTopKAllReduce(ctx, a.comm, local, a.k)
	if err != nil {
		return nil, err
	}
	a.sp.PutBack(local, global.Indices)
	for i := range a.dense {
		a.dense[i] = 0
	}
	global.ScatterAdd(a.dense)
	inv := 1 / float32(a.comm.Size())
	for i := range a.dense {
		a.dense[i] *= inv
	}
	return a.dense, nil
}

// LayerwiseGTopKAggregator applies gTop-k independently per layer
// segment: each layer l with m_l parameters contributes k_l = max(1,
// ρ·m_l) globally selected gradients. This is the layer-wise
// sparsification of the paper's future-work section; it trades slightly
// more selected coordinates (Σ k_l ≥ k) and logP·L communication rounds
// for per-layer fairness (the single global top-k tends to starve
// small-gradient layers, the effect the paper blames for AlexNet's slight
// convergence degradation).
type LayerwiseGTopKAggregator struct {
	comm     *collective.Comm
	sp       *Sparsifier
	segments []int // cumulative offsets: layer l covers [segments[l], segments[l+1])
	density  float64
	dense    []float32
}

// NewLayerwiseGTopKAggregator creates the aggregator. bounds are the
// cumulative layer offsets (bounds[0] = 0, bounds[L] = dim, strictly
// increasing).
func NewLayerwiseGTopKAggregator(comm *collective.Comm, bounds []int, density float64) (*LayerwiseGTopKAggregator, error) {
	if len(bounds) < 2 || bounds[0] != 0 {
		return nil, fmt.Errorf("core: layerwise: bounds must start at 0 and cover >=1 layer")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("core: layerwise: bounds not strictly increasing at %d", i)
		}
	}
	if density <= 0 || density > 1 {
		return nil, fmt.Errorf("core: layerwise: density %v out of (0,1]", density)
	}
	dim := bounds[len(bounds)-1]
	return &LayerwiseGTopKAggregator{
		comm:     comm,
		sp:       NewSparsifier(dim),
		segments: bounds,
		density:  density,
		dense:    make([]float32, dim),
	}, nil
}

// Name implements Aggregator.
func (a *LayerwiseGTopKAggregator) Name() string { return "gtopk-layerwise" }

// Aggregate implements Aggregator.
func (a *LayerwiseGTopKAggregator) Aggregate(ctx context.Context, grad []float32) ([]float32, error) {
	dim := a.segments[len(a.segments)-1]
	if len(grad) != dim {
		return nil, fmt.Errorf("core: layerwise aggregate: dim %d, want %d", len(grad), dim)
	}
	// Accumulate into the shared residual once, then select per layer.
	res := a.sp.Residual()
	for i, g := range grad {
		res[i] += g
	}
	for i := range a.dense {
		a.dense[i] = 0
	}
	inv := 1 / float32(a.comm.Size())
	for l := 0; l+1 < len(a.segments); l++ {
		lo, hi := a.segments[l], a.segments[l+1]
		k := DensityToK(hi-lo, a.density)
		seg := res[lo:hi]
		local := sparse.TopK(seg, k)
		for _, idx := range local.Indices {
			seg[idx] = 0
		}
		global, err := GTopKAllReduce(ctx, a.comm, local, k)
		if err != nil {
			return nil, fmt.Errorf("core: layerwise segment %d: %w", l, err)
		}
		// Put back locally-sent values that did not survive globally.
		j := 0
		for i, idx := range local.Indices {
			for j < len(global.Indices) && global.Indices[j] < idx {
				j++
			}
			if j < len(global.Indices) && global.Indices[j] == idx {
				continue
			}
			seg[idx] += local.Values[i]
		}
		for i, idx := range global.Indices {
			a.dense[lo+int(idx)] = global.Values[i] * inv
		}
	}
	return a.dense, nil
}

// LayerBounds derives cumulative parameter offsets from per-layer counts.
func LayerBounds(counts []int) []int {
	bounds := make([]int, len(counts)+1)
	for i, c := range counts {
		bounds[i+1] = bounds[i] + c
	}
	return bounds
}
