package core

import (
	"context"
	"fmt"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/sparse"
)

// Aggregator turns one worker's local dense gradient into the globally
// agreed model update for this iteration. Implementations differ in what
// they communicate; all return the same length-dim dense update vector
// (the MEAN gradient contribution, i.e. already divided by P) and must
// produce bit-identical updates on every rank so replicas never diverge.
type Aggregator interface {
	// Aggregate consumes grad (not retained) and returns the dense update.
	Aggregate(ctx context.Context, grad []float32) ([]float32, error)
	// Name identifies the algorithm in logs and experiment tables.
	Name() string
}

// DenseAggregator implements classic S-SGD: ring AllReduce over the full
// dense gradient (Eq. 3 + Eq. 5).
type DenseAggregator struct {
	comm *collective.Comm
	buf  []float32
}

// NewDenseAggregator creates a dense-gradient aggregator for a
// dim-parameter model.
func NewDenseAggregator(comm *collective.Comm, dim int) *DenseAggregator {
	return &DenseAggregator{comm: comm, buf: make([]float32, dim)}
}

// Name implements Aggregator.
func (a *DenseAggregator) Name() string { return "dense" }

// Aggregate implements Aggregator.
func (a *DenseAggregator) Aggregate(ctx context.Context, grad []float32) ([]float32, error) {
	if len(grad) != len(a.buf) {
		return nil, fmt.Errorf("core: dense aggregate: dim %d, want %d", len(grad), len(a.buf))
	}
	copy(a.buf, grad)
	if err := a.comm.RingAllReduceMean(ctx, a.buf); err != nil {
		return nil, fmt.Errorf("core: dense aggregate: %w", err)
	}
	return a.buf, nil
}

// TopKAggregator implements Top-k S-SGD (Algorithm 1): local top-k
// selection with error feedback, AllGather-based aggregation, average of
// the union support.
type TopKAggregator struct {
	comm     *collective.Comm
	sp       *Sparsifier
	k        int
	schedule func(step int) int
	step     int
	mu       float32
	velocity []float32
	dense    []float32
	orig     []float32 // pre-transform value snapshot for FoldError (reused)
}

// NewTopKAggregator creates a Top-k aggregator selecting k of dim
// gradients per iteration.
func NewTopKAggregator(comm *collective.Comm, dim, k int) (*TopKAggregator, error) {
	if err := validateK(dim, k); err != nil {
		return nil, err
	}
	return &TopKAggregator{
		comm:  comm,
		sp:    NewSparsifier(dim),
		k:     k,
		dense: make([]float32, dim),
	}, nil
}

// Name implements Aggregator.
func (a *TopKAggregator) Name() string { return "topk" }

// SetK retunes the per-iteration selection count (warmup schedules).
func (a *TopKAggregator) SetK(k int) error {
	if err := validateK(a.sp.Dim(), k); err != nil {
		return err
	}
	a.k = k
	return nil
}

// SetSchedule installs a per-step selection-count schedule (the paper's
// warmup uses per-epoch densities [0.25, 0.0725, 0.015, 0.004] before the
// target density). The schedule overrides the static k; it must return
// values in [1, dim] and must be identical on every rank.
func (a *TopKAggregator) SetSchedule(f func(step int) int) { a.schedule = f }

// SetMomentumCorrection enables DGC-style momentum correction (Lin et
// al., cited as [12]): momentum is accumulated LOCALLY before
// sparsification (u ← µ·u + g; the residual accumulates u), so deferred
// coordinates carry their momentum history instead of having a global
// momentum term amplify spiky sparse updates. When enabled, configure
// the trainer with Momentum: 0.
func (a *TopKAggregator) SetMomentumCorrection(mu float32) {
	a.mu = mu
	if mu > 0 && a.velocity == nil {
		a.velocity = make([]float32, a.sp.Dim())
	}
}

// Sparsifier exposes the residual state for diagnostics.
func (a *TopKAggregator) Sparsifier() *Sparsifier { return a.sp }

// Aggregate implements Aggregator.
func (a *TopKAggregator) Aggregate(ctx context.Context, grad []float32) ([]float32, error) {
	if a.schedule != nil {
		if err := a.SetK(a.schedule(a.step)); err != nil {
			return nil, fmt.Errorf("core: topk schedule: %w", err)
		}
	}
	a.step++
	grad = applyMomentumCorrection(a.mu, a.velocity, grad)
	local, err := a.sp.Select(grad, a.k)
	if err != nil {
		return nil, fmt.Errorf("core: topk aggregate: %w", err)
	}
	a.orig = snapshotForFold(a.comm.WireCodec(), local, a.orig)
	sum, err := TopKAllReduce(ctx, a.comm, local)
	if err != nil {
		return nil, err
	}
	if a.orig != nil {
		a.sp.FoldError(local.Indices, a.orig, local.Values)
	}
	for i := range a.dense {
		a.dense[i] = 0
	}
	sum.ScatterAdd(a.dense)
	inv := 1 / float32(a.comm.Size())
	for i := range a.dense {
		a.dense[i] *= inv
	}
	return a.dense, nil
}

// GTopKAggregator implements gTop-k S-SGD (Algorithm 4): local top-k
// selection, tree-based global top-k aggregation (Algorithm 3), residual
// put-back for locally-sent-but-globally-dropped values, average by P.
type GTopKAggregator struct {
	comm      *collective.Comm
	sp        *Sparsifier
	k         int
	naive     bool // use Algorithm 2's AllGather path instead of the tree
	noPutBack bool
	schedule  func(step int) int
	step      int
	mu        float32
	velocity  []float32
	dense     []float32
	orig      []float32     // pre-transform value snapshot for FoldError (reused)
	global    sparse.Vector // reused tree-collective result (zero steady-state allocs)

	// quorum, when enabled (Q > 0), replaces the flat tree with the
	// straggler-tolerant quorum collective; missStreak counts this rank's
	// consecutive missed rounds for degraded-rank reporting.
	quorum     QuorumConfig
	missStreak int
}

// NewGTopKAggregator creates a gTop-k aggregator selecting k of dim
// gradients globally per iteration using the efficient tree algorithm.
func NewGTopKAggregator(comm *collective.Comm, dim, k int) (*GTopKAggregator, error) {
	if err := validateK(dim, k); err != nil {
		return nil, err
	}
	return &GTopKAggregator{
		comm:  comm,
		sp:    NewSparsifier(dim),
		k:     k,
		dense: make([]float32, dim),
	}, nil
}

// NewNaiveGTopKAggregator creates the Algorithm 2 variant that reaches
// the same global top-k selection through a full AllGather — used for
// Fig. 1 and for tree-vs-naive equivalence experiments.
func NewNaiveGTopKAggregator(comm *collective.Comm, dim, k int) (*GTopKAggregator, error) {
	a, err := NewGTopKAggregator(comm, dim, k)
	if err != nil {
		return nil, err
	}
	a.naive = true
	return a, nil
}

// Name implements Aggregator.
func (a *GTopKAggregator) Name() string {
	if a.naive {
		return "gtopk-naive"
	}
	if a.quorum.Q > 0 {
		return "gtopk-quorum"
	}
	return "gtopk"
}

// SetQuorum enables the straggler-tolerant quorum collective: rounds
// close after cfg.Q of P contributions or cfg.Timeout, whichever allows
// it first (never under quorum), and a missed rank's selected mass is
// refunded to its residual instead of entering the round. Incompatible
// with the naive AllGather path. A zero cfg disables quorum mode.
func (a *GTopKAggregator) SetQuorum(cfg QuorumConfig) error {
	if cfg == (QuorumConfig{}) {
		a.quorum = cfg
		return nil
	}
	if a.naive {
		return fmt.Errorf("core: quorum mode requires the tree collective, not gtopk-naive")
	}
	if err := cfg.Validate(a.comm.Size()); err != nil {
		return err
	}
	a.quorum = cfg
	return nil
}

// QuorumMissStreak returns how many consecutive rounds this rank's
// contribution has missed the quorum deadline (0 when participating or
// when quorum mode is off) — the signal the cluster runtime turns into
// degraded-rank reports.
func (a *GTopKAggregator) QuorumMissStreak() int { return a.missStreak }

// SetK retunes the per-iteration selection count (warmup schedules).
func (a *GTopKAggregator) SetK(k int) error {
	if err := validateK(a.sp.Dim(), k); err != nil {
		return err
	}
	a.k = k
	return nil
}

// SetSchedule installs a per-step selection-count schedule; see
// TopKAggregator.SetSchedule.
func (a *GTopKAggregator) SetSchedule(f func(step int) int) { a.schedule = f }

// SetPutBack toggles Algorithm 4 line 10 (returning globally-dropped
// values to the residual). Disabling it isolates the contribution of
// the extra-residual mechanism — the reproduction's residual ablation.
func (a *GTopKAggregator) SetPutBack(enabled bool) { a.noPutBack = !enabled }

// SetMomentumCorrection enables DGC-style momentum correction; see
// TopKAggregator.SetMomentumCorrection.
func (a *GTopKAggregator) SetMomentumCorrection(mu float32) {
	a.mu = mu
	if mu > 0 && a.velocity == nil {
		a.velocity = make([]float32, a.sp.Dim())
	}
}

// Sparsifier exposes the residual state for diagnostics.
func (a *GTopKAggregator) Sparsifier() *Sparsifier { return a.sp }

// Aggregate implements Aggregator.
func (a *GTopKAggregator) Aggregate(ctx context.Context, grad []float32) ([]float32, error) {
	if a.schedule != nil {
		if err := a.SetK(a.schedule(a.step)); err != nil {
			return nil, fmt.Errorf("core: gtopk schedule: %w", err)
		}
	}
	a.step++
	grad = applyMomentumCorrection(a.mu, a.velocity, grad)
	local, err := a.sp.Select(grad, a.k)
	if err != nil {
		return nil, fmt.Errorf("core: gtopk aggregate: %w", err)
	}
	if a.quorum.Q > 0 {
		// Quorum mode always snapshots the pre-transform values: a round
		// this rank misses refunds the FULL selected mass, not just the
		// codec error.
		a.orig = append(a.orig[:0], local.Values...)
	} else {
		a.orig = snapshotForFold(a.comm.WireCodec(), local, a.orig)
	}
	var global *sparse.Vector
	var participated = true
	switch {
	case a.naive:
		global, err = NaiveGTopKAllReduce(ctx, a.comm, local, a.k)
	case a.quorum.Q > 0:
		participated, _, err = QuorumGTopKAllReduceInto(ctx, a.comm, local, a.k, a.quorum, &a.global)
		global = &a.global
	default:
		// The result vector is owned by the aggregator and reused every
		// iteration, keeping the whole tree collective allocation-free.
		err = GTopKAllReduceInto(ctx, a.comm, local, a.k, ChunksFor(a.k), &a.global)
		global = &a.global
	}
	if err != nil {
		return nil, err
	}
	if !participated {
		// This rank's frame missed the round: nothing of it entered the
		// aggregate, so the whole selected mass is refunded to the
		// residual (conservation) and put-back must be skipped — the
		// update below is built purely from the other ranks' verdict.
		a.missStreak++
		a.sp.Refund(local.Indices, a.orig)
	} else {
		a.missStreak = 0
		// Compound pipeline: the wire transform replaced the values this
		// rank shipped with their lattice points in place; fold the
		// quantization error into the residual BEFORE PutBack, so a
		// globally-dropped index gets lattice value + error = its full
		// original mass back, and a survivor keeps exactly the error.
		// (In quorum mode the snapshot exists for every codec, but the
		// fold itself only applies where the transform was lossy —
		// otherwise orig equals the shipped values bit-for-bit and the
		// flat path's residual bits must be preserved exactly.)
		codec := a.comm.WireCodec()
		if a.orig != nil && codec.WireVersion() == 3 && codec.Lossy() {
			a.sp.FoldError(local.Indices, a.orig, local.Values)
		}
		// Algorithm 4 line 10: locally selected values whose index did not
		// survive globally go back into the residual.
		if !a.noPutBack {
			a.sp.PutBack(local, global.Indices)
		}
	}

	for i := range a.dense {
		a.dense[i] = 0
	}
	global.ScatterAdd(a.dense)
	inv := 1 / float32(a.comm.Size())
	for i := range a.dense {
		a.dense[i] *= inv
	}
	return a.dense, nil
}

// snapshotForFold copies local's values into buf (reusing its capacity)
// when the codec's wire transform may rewrite them in place — lossy v3
// codecs quantize the sender's copy so it matches what receivers decode
// — and returns nil when no fold is needed (the caller skips FoldError).
// The snapshot is the "orig" argument of Sparsifier.FoldError; on ranks
// whose tree role never sends, values stay untouched and the fold adds
// exact zeros, keeping the residual update uniform and deterministic.
func snapshotForFold(codec sparse.Codec, local *sparse.Vector, buf []float32) []float32 {
	if codec.WireVersion() != 3 || !codec.Lossy() {
		return nil
	}
	return append(buf[:0], local.Values...)
}

// applyMomentumCorrection folds grad into the local velocity and returns
// the velocity as the quantity to sparsify (identity when mu == 0).
func applyMomentumCorrection(mu float32, velocity, grad []float32) []float32 {
	if mu <= 0 {
		return grad
	}
	for i, g := range grad {
		velocity[i] = mu*velocity[i] + g
	}
	return velocity
}

func validateK(dim, k int) error {
	if k < 1 || k > dim {
		return fmt.Errorf("core: k=%d out of range [1,%d]", k, dim)
	}
	return nil
}
