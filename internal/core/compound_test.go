package core_test

// The compound-pipeline composition tests: every Compressor stack
// (select → transform → encode) run through the real gTop-k collective
// on a v3-negotiated mesh, mirroring codec_equiv_test.go from outside
// the package (quant imports core, so these live in core_test). The
// properties pinned here are the ones the compound wire format v3 is
// built on: replica bit-agreement for every value codec and world size
// (ties, empty supports and non-powers-of-two included), lossless
// stacks bit-identical to the v1 baseline, residual conservation
// through Sparsifier.FoldError, and canonical re-encoding of every
// frame a stack emits.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/f16"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/quant"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// compoundCodecs is every v3 wire codec, lossless first.
func compoundCodecs() []sparse.Codec {
	return []sparse.Codec{sparse.CodecV3, sparse.CodecV3F16, sparse.CodecV3Q8,
		sparse.CodecV3Q4, sparse.CodecV3Q2, sparse.CodecV3T, sparse.CodecV3S}
}

// compoundVectors builds per-rank sparse inputs for one world. Mode
// "gauss" draws seeded Gaussians, "ties" uses a tiny discrete value set
// so threshold ties are everywhere, "empty" blanks every even rank.
func compoundVectors(seed uint64, p, dim, k int, mode string) []*sparse.Vector {
	vecs := make([]*sparse.Vector, p)
	for r := 0; r < p; r++ {
		rng := prng.New(seed + 977*uint64(r))
		dense := make([]float32, dim)
		for i := range dense {
			switch mode {
			case "ties":
				dense[i] = []float32{-1, -0.5, 0, 0.5, 1}[rng.Intn(5)]
			default:
				dense[i] = float32(rng.NormFloat64())
			}
		}
		v := &sparse.Vector{}
		sparse.TopKInto(v, dense, k)
		if mode == "empty" && r%2 == 0 {
			v = &sparse.Vector{Dim: dim}
		}
		vecs[r] = v
	}
	return vecs
}

// runCompoundWire executes GTopKAllReduceInto on every rank of an
// in-process fabric negotiated to the codec's wire version, with each
// rank's comm configured exactly as the CLI does it: the fp16 flag for
// float codecs, a rank-forked Compressor for quantized ones.
func runCompoundWire(t *testing.T, vecs []*sparse.Vector, k, chunks int, codec sparse.Codec, seed uint64) []*sparse.Vector {
	t.Helper()
	p := len(vecs)
	f, err := transport.NewInProcWire(p, codec.WireVersion())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	results := make([]*sparse.Vector, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := collective.New(f.Conn(rank))
			comm.SetFP16Values(codec == sparse.CodecV2F16 || codec == sparse.CodecV3F16)
			if codec.Value().Quantized() {
				comm.SetCompressor(quant.NewStack(codec.Value(), seed).Fork(uint64(rank)))
			}
			out := &sparse.Vector{}
			errs[rank] = core.GTopKAllReduceInto(context.Background(), comm, vecs[rank].Clone(), k, chunks, out)
			results[rank] = out
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("codec %s rank %d: %v", codec, rank, err)
		}
	}
	return results
}

// assertSameVector compares two vectors for bit-identity.
func assertSameVector(t *testing.T, name string, a, b *sparse.Vector) {
	t.Helper()
	if a.Dim != b.Dim || a.NNZ() != b.NNZ() {
		t.Fatalf("%s: shape dim %d nnz %d vs dim %d nnz %d", name, a.Dim, a.NNZ(), b.Dim, b.NNZ())
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			t.Fatalf("%s: index %d: %d vs %d", name, i, a.Indices[i], b.Indices[i])
		}
		if math.Float32bits(a.Values[i]) != math.Float32bits(b.Values[i]) {
			t.Fatalf("%s: value %d: %#08x vs %#08x", name, i,
				math.Float32bits(a.Values[i]), math.Float32bits(b.Values[i]))
		}
	}
}

// TestCompoundReplicaBitAgreement is the compound acceptance test: under
// every v3 value codec — including the stochastic quantizers, whose
// rank-forked rngs draw independently — every rank must hold the
// bit-identical aggregate, across world sizes 2..8 and 16, tie-heavy
// and empty-support inputs, and several chunk counts. Agreement is
// structural (receivers decode the sender's bytes; the bcast root pins
// its own copy through its quantizer), so no rng coordination exists to
// save a buggy implementation.
func TestCompoundReplicaBitAgreement(t *testing.T) {
	const dim, k = 240, 12
	for _, p := range []int{2, 3, 4, 5, 6, 7, 8, 16} {
		chunkSet := []int{3}
		if p <= 5 {
			chunkSet = []int{1, 3, core.DefaultChunks}
		}
		for _, mode := range []string{"gauss", "ties", "empty"} {
			vecs := compoundVectors(uint64(60+p), p, dim, k, mode)
			for _, codec := range compoundCodecs() {
				for _, chunks := range chunkSet {
					results := runCompoundWire(t, vecs, k, chunks, codec, uint64(7*p))
					for r := 1; r < p; r++ {
						assertSameVector(t, fmt.Sprintf("p=%d %s %s chunks=%d rank %d vs 0", p, mode, codec, chunks, r),
							results[0], results[r])
					}
				}
			}
		}
	}
}

// TestCompoundLosslessMatchesV1: the fp32 v3 stack changes framing only,
// so its aggregate must be bit-identical to the v1 mesh on the same
// inputs — the anchor that chains every compound result back to the
// reference implementation.
func TestCompoundLosslessMatchesV1(t *testing.T) {
	const dim, k = 240, 12
	for _, p := range []int{2, 3, 4, 8} {
		for _, mode := range []string{"gauss", "ties", "empty"} {
			vecs := compoundVectors(uint64(200+p), p, dim, k, mode)
			v1 := runCompoundWire(t, vecs, k, 3, sparse.CodecV1, 1)
			v3 := runCompoundWire(t, vecs, k, 3, sparse.CodecV3, 1)
			for r := range v1 {
				assertSameVector(t, fmt.Sprintf("p=%d %s v3-vs-v1 rank %d", p, mode, r), v1[r], v3[r])
			}
		}
	}
}

// TestCompoundValuesOnLattice: every value a quantized mesh agrees on
// must be representable as DequantLevel(vc, scale, level) for SOME
// (scale, level) — verified the cheap way: values of a ternary/sign
// aggregate are sums of lattice points, and an fp16 aggregate holds
// fp16-representable values only.
func TestCompoundValuesOnLattice(t *testing.T) {
	const dim, k = 300, 15
	vecs := compoundVectors(31, 4, dim, k, "gauss")
	results := runCompoundWire(t, vecs, k, core.DefaultChunks, sparse.CodecV3F16, 5)
	for i, v := range results[0].Values {
		if math.Float32bits(f16.Round(v)) != math.Float32bits(v) {
			t.Fatalf("fp16 value %d (%v) is not fp16-representable", i, v)
		}
	}
	if results[0].NNZ() == 0 {
		t.Fatalf("fp16 aggregation lost the whole payload")
	}
}

// TestCompoundResidualConservation pins the error-feedback identity of
// the transform stage at the Sparsifier level, per stack: after Select →
// Transform → FoldError, reconstructing grad[i] as residual[i] plus the
// transmitted value must be exact fp32 for the lossless stack and tight
// (one rounding of orig−sent) for every lossy one — no gradient mass
// leaks out of the pipeline.
func TestCompoundResidualConservation(t *testing.T) {
	const dim, k = 500, 25
	rng := prng.New(123)
	grad := make([]float32, dim)
	for i := range grad {
		grad[i] = float32(rng.NormFloat64())
	}
	for _, codec := range compoundCodecs() {
		t.Run(codec.String(), func(t *testing.T) {
			sp := core.NewSparsifier(dim)
			local, err := sp.Select(grad, k)
			if err != nil {
				t.Fatal(err)
			}
			orig := append([]float32(nil), local.Values...)
			switch vc := codec.Value(); {
			case vc == sparse.ValueF16:
				f16.RoundSlice(local.Values)
			case vc.Quantized():
				quant.NewStack(vc, 9).Transform(local.Values)
			}
			sp.FoldError(local.Indices, orig, local.Values)

			res := sp.Residual()
			sent := make(map[int32]float32, local.NNZ())
			for i, idx := range local.Indices {
				sent[idx] = local.Values[i]
			}
			for i := 0; i < dim; i++ {
				recon := res[i] + sent[int32(i)]
				if !codec.Lossy() {
					if math.Float32bits(recon) != math.Float32bits(grad[i]) {
						t.Fatalf("lossless leak at %d: residual %v + sent %v = %v, want %v",
							i, res[i], sent[int32(i)], recon, grad[i])
					}
					continue
				}
				// Lossy: recon = fl(fl(orig−sent)+sent) differs from orig
				// by at most one rounding at each step.
				if diff := math.Abs(float64(recon - grad[i])); diff > 1e-5*(1+math.Abs(float64(grad[i]))) {
					t.Fatalf("lossy leak at %d: |%v - %v| = %v", i, recon, grad[i], diff)
				}
			}
		})
	}
}

// TestCompoundFoldThenPutBack pins the interplay the bucketed and gTop-k
// aggregators rely on: FoldError first, then PutBack for indices the
// global selection dropped, restores exactly the original mass for the
// lossless stack (residual fl(orig−sent)=0, PutBack adds sent=orig).
func TestCompoundFoldThenPutBack(t *testing.T) {
	const dim, k = 100, 10
	rng := prng.New(77)
	grad := make([]float32, dim)
	for i := range grad {
		grad[i] = float32(rng.NormFloat64())
	}
	sp := core.NewSparsifier(dim)
	local, err := sp.Select(grad, k)
	if err != nil {
		t.Fatal(err)
	}
	orig := append([]float32(nil), local.Values...)
	sp.FoldError(local.Indices, orig, local.Values) // lossless: folds zeros
	// Global selection keeps every other local index.
	var global []int32
	for i := 0; i < local.NNZ(); i += 2 {
		global = append(global, local.Indices[i])
	}
	sp.PutBack(local, global)
	res := sp.Residual()
	kept := make(map[int32]bool, len(global))
	for _, idx := range global {
		kept[idx] = true
	}
	for i, idx := range local.Indices {
		want := float32(0)
		if !kept[idx] {
			want = orig[i] // dropped globally: full mass back in the residual
		}
		if math.Float32bits(res[idx]) != math.Float32bits(want) {
			t.Fatalf("index %d: residual %v, want %v", idx, res[idx], want)
		}
	}
}

// TestCompoundCanonicalReEncode: every frame a stack emits through the
// v3 encoder decodes and re-encodes byte-identically — the property
// replica comparison and the fuzz wall both lean on, checked here
// deterministically for each stack.
func TestCompoundCanonicalReEncode(t *testing.T) {
	const dim, k = 400, 20
	rng := prng.New(55)
	dense := make([]float32, dim)
	for i := range dense {
		dense[i] = float32(rng.NormFloat64())
	}
	v := &sparse.Vector{}
	sparse.TopKInto(v, dense, k)
	for _, codec := range compoundCodecs() {
		t.Run(codec.String(), func(t *testing.T) {
			vals := append([]float32(nil), v.Values...)
			var frame []byte
			if vc := codec.Value(); vc.Quantized() {
				scale, levels := quant.NewStack(vc, 11).Transform(vals)
				frame = sparse.EncodeSlicesV3(codec, dim, v.Indices, nil, scale, levels)
			} else {
				if vc == sparse.ValueF16 {
					f16.RoundSlice(vals)
				}
				frame = sparse.EncodeSlicesV3(codec, dim, v.Indices, vals, 0, nil)
			}
			fr, err := sparse.DecodeV3Frame(frame)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			re := fr.Encode()
			if len(re) != len(frame) {
				t.Fatalf("re-encode length %d, want %d", len(re), len(frame))
			}
			for i := range frame {
				if re[i] != frame[i] {
					t.Fatalf("re-encode differs at byte %d: %#02x vs %#02x", i, re[i], frame[i])
				}
			}
			// And the decoded floats must match what the sender kept.
			decoded := &sparse.Vector{}
			if err := sparse.DecodeV3Into(decoded, frame); err != nil {
				t.Fatal(err)
			}
			assertSameVector(t, "decoded vs sender copy",
				&sparse.Vector{Dim: dim, Indices: v.Indices, Values: vals}, decoded)
		})
	}
}
