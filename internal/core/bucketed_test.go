package core

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/prng"
)

// gradStream returns a deterministic per-rank gradient generator: the
// same (rank, iter) always yields the same dense gradient.
func gradStream(dim int) func(rank, iter int) []float32 {
	return func(rank, iter int) []float32 {
		src := prng.New(uint64(rank)*100003 + uint64(iter)*17 + 5)
		g := make([]float32, dim)
		for i := range g {
			g[i] = float32(src.NormFloat64())
		}
		return g
	}
}

// runAggStream drives build's aggregator over iters iterations of the
// gradient stream on p ranks and returns rank 0's per-iteration updates.
func runAggStream(t *testing.T, p, dim, iters int, build func(c *collective.Comm) (Aggregator, error)) [][]float32 {
	t.Helper()
	stream := gradStream(dim)
	updates := make([][]float32, iters)
	spmd(t, p, func(c *collective.Comm) error {
		agg, err := build(c)
		if err != nil {
			return err
		}
		for it := 0; it < iters; it++ {
			upd, err := agg.Aggregate(context.Background(), stream(c.Rank(), it))
			if err != nil {
				return fmt.Errorf("iter %d: %w", it, err)
			}
			if c.Rank() == 0 {
				updates[it] = append([]float32(nil), upd...)
			}
		}
		return nil
	})
	return updates
}

func requireBitwiseEqual(t *testing.T, want, got [][]float32, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d iterations", label, len(want), len(got))
	}
	for it := range want {
		if len(want[it]) != len(got[it]) {
			t.Fatalf("%s: iter %d: dim %d vs %d", label, it, len(want[it]), len(got[it]))
		}
		for i := range want[it] {
			if math.Float32bits(want[it][i]) != math.Float32bits(got[it][i]) {
				t.Fatalf("%s: iter %d: element %d differs: %v vs %v",
					label, it, i, want[it][i], got[it][i])
			}
		}
	}
}

// TestBucketedSingleBucketMatchesGTopK: with one bucket spanning the
// whole gradient, the pipeline must be bitwise-identical to the plain
// GTopKAggregator on the same gradient stream.
func TestBucketedSingleBucketMatchesGTopK(t *testing.T) {
	const p, dim, iters = 4, 257, 6
	const density = 0.05
	k := DensityToK(dim, density)

	ref := runAggStream(t, p, dim, iters, func(c *collective.Comm) (Aggregator, error) {
		return NewGTopKAggregator(c, dim, k)
	})
	got := runAggStream(t, p, dim, iters, func(c *collective.Comm) (Aggregator, error) {
		return NewBucketedAggregator(c, []int{0, dim}, density)
	})
	requireBitwiseEqual(t, ref, got, "single-bucket vs gtopk")
}

// TestBucketedMatchesPerBucketComposition: with >= 2 buckets the
// concurrent pipeline must be bitwise-identical to running an
// independent single-bucket GTopKAggregator over each bucket's slice of
// the same gradient stream, serially.
func TestBucketedMatchesPerBucketComposition(t *testing.T) {
	const p, dim, iters = 4, 300, 6
	const density = 0.05
	bounds := []int{0, 90, 170, 300}

	ref := runAggStream(t, p, dim, iters, func(c *collective.Comm) (Aggregator, error) {
		return newPerBucketReference(c, bounds, density)
	})
	got := runAggStream(t, p, dim, iters, func(c *collective.Comm) (Aggregator, error) {
		return NewBucketedAggregator(c, bounds, density)
	})
	requireBitwiseEqual(t, ref, got, "bucketed vs per-bucket composition")
}

// perBucketReference is the serial reference the pipeline is verified
// against: one plain GTopKAggregator per bucket, run back to back.
type perBucketReference struct {
	bounds []int
	aggs   []*GTopKAggregator
	dense  []float32
}

func newPerBucketReference(c *collective.Comm, bounds []int, density float64) (*perBucketReference, error) {
	ref := &perBucketReference{bounds: bounds, dense: make([]float32, bounds[len(bounds)-1])}
	for i := 0; i+1 < len(bounds); i++ {
		size := bounds[i+1] - bounds[i]
		agg, err := NewGTopKAggregator(c, size, DensityToK(size, density))
		if err != nil {
			return nil, err
		}
		ref.aggs = append(ref.aggs, agg)
	}
	return ref, nil
}

func (r *perBucketReference) Name() string { return "per-bucket-reference" }

func (r *perBucketReference) Aggregate(ctx context.Context, grad []float32) ([]float32, error) {
	for i, agg := range r.aggs {
		lo, hi := r.bounds[i], r.bounds[i+1]
		upd, err := agg.Aggregate(ctx, grad[lo:hi])
		if err != nil {
			return nil, err
		}
		copy(r.dense[lo:hi], upd)
	}
	return r.dense, nil
}

// TestBucketedMomentumCorrectionMatchesComposition: DGC momentum
// correction must also be bitwise-identical to the per-bucket
// GTopKAggregator composition with the same coefficient.
func TestBucketedMomentumCorrectionMatchesComposition(t *testing.T) {
	const p, dim, iters = 4, 300, 6
	const density, mu = 0.05, 0.9
	bounds := []int{0, 90, 170, 300}

	ref := runAggStream(t, p, dim, iters, func(c *collective.Comm) (Aggregator, error) {
		r, err := newPerBucketReference(c, bounds, density)
		if err != nil {
			return nil, err
		}
		for _, agg := range r.aggs {
			agg.SetMomentumCorrection(mu)
		}
		return r, nil
	})
	got := runAggStream(t, p, dim, iters, func(c *collective.Comm) (Aggregator, error) {
		a, err := NewBucketedAggregator(c, bounds, density)
		if err != nil {
			return nil, err
		}
		a.SetMomentumCorrection(mu)
		return a, nil
	})
	requireBitwiseEqual(t, ref, got, "bucketed momentum correction vs composition")
}

// TestBucketedStreamedMatchesSerial: handing buckets to the pipeline
// mid-backward (in reverse order, in layer-sized fragments) must produce
// exactly the bits of the serial Aggregate facade.
func TestBucketedStreamedMatchesSerial(t *testing.T) {
	const p, dim, iters = 4, 300, 5
	const density = 0.05
	bounds := []int{0, 90, 170, 300}
	// Layer fragments deliberately finer than buckets, announced tail
	// first like a backward pass would.
	layers := []int{0, 40, 90, 120, 170, 220, 300}

	serial := runAggStream(t, p, dim, iters, func(c *collective.Comm) (Aggregator, error) {
		return NewBucketedAggregator(c, bounds, density)
	})

	stream := gradStream(dim)
	streamed := make([][]float32, iters)
	spmd(t, p, func(c *collective.Comm) error {
		agg, err := NewBucketedAggregator(c, bounds, density)
		if err != nil {
			return err
		}
		for it := 0; it < iters; it++ {
			grad := stream(c.Rank(), it)
			if err := agg.Begin(context.Background(), grad); err != nil {
				return err
			}
			for l := len(layers) - 2; l >= 0; l-- {
				agg.Ready(layers[l], layers[l+1])
			}
			upd, err := agg.Finish()
			if err != nil {
				return fmt.Errorf("iter %d: %w", it, err)
			}
			if c.Rank() == 0 {
				streamed[it] = append([]float32(nil), upd...)
			}
		}
		return nil
	})
	requireBitwiseEqual(t, serial, streamed, "streamed vs serial facade")
}

// TestBucketedOverlapClock: with >= 2 buckets on a timed communicator,
// one iteration must advance the parent clock by the slowest bucket (the
// overlapped schedule), strictly less than the serialized sum.
func TestBucketedOverlapClock(t *testing.T) {
	const p, dim = 4, 400
	bounds := []int{0, 200, 400}
	stream := gradStream(dim)
	spmd(t, p, func(c *collective.Comm) error {
		var clock netsim.Clock
		c.WithClock(&clock, netsim.Paper1GbE())
		agg, err := NewBucketedAggregator(c, bounds, 0.05)
		if err != nil {
			return err
		}
		if _, err := agg.Aggregate(context.Background(), stream(c.Rank(), 0)); err != nil {
			return err
		}
		times := agg.LastBucketTimes()
		var sum, slowest time.Duration
		for _, d := range times {
			sum += d
			if d > slowest {
				slowest = d
			}
		}
		if slowest == 0 {
			return fmt.Errorf("no simulated bucket time recorded: %v", times)
		}
		if clock.Now() != slowest {
			return fmt.Errorf("clock %v, want slowest bucket %v", clock.Now(), slowest)
		}
		if clock.Now() >= sum {
			return fmt.Errorf("overlapped time %v not below serialized sum %v", clock.Now(), sum)
		}
		return nil
	})
}

// TestBucketedStatsFoldIntoParent: traffic through the forked
// sub-communicators must surface in the parent's counters.
func TestBucketedStatsFoldIntoParent(t *testing.T) {
	const p, dim = 4, 300
	stream := gradStream(dim)
	spmd(t, p, func(c *collective.Comm) error {
		agg, err := NewBucketedAggregator(c, []int{0, 150, 300}, 0.05)
		if err != nil {
			return err
		}
		if _, err := agg.Aggregate(context.Background(), stream(c.Rank(), 0)); err != nil {
			return err
		}
		st := c.Stats()
		if st.BytesSent == 0 && st.BytesRecv == 0 {
			return fmt.Errorf("no traffic folded into parent stats: %+v", st)
		}
		if st.Rounds == 0 {
			return fmt.Errorf("no rounds folded into parent stats: %+v", st)
		}
		return nil
	})
}

func TestGroupBounds(t *testing.T) {
	layer := []int{0, 10, 30, 60, 100}
	for _, tc := range []struct{ n int }{{1}, {2}, {3}, {10}} {
		got := GroupBounds(layer, tc.n)
		if len(got) < 2 || got[0] != 0 || got[len(got)-1] != 100 {
			t.Fatalf("GroupBounds(n=%d) = %v: does not span [0,100]", tc.n, got)
		}
		if len(got)-1 > tc.n {
			t.Fatalf("GroupBounds(n=%d) = %v: more than %d buckets", tc.n, got, tc.n)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("GroupBounds(n=%d) = %v: not strictly increasing", tc.n, got)
			}
		}
	}
	if got := GroupBounds(layer, 10); len(got) != len(layer) {
		t.Fatalf("GroupBounds with n >= layers should keep every layer: %v", got)
	}
}

// TestTrainerStreamedCluster runs a full streamed training cluster and
// checks replica consistency plus agreement with the serial path.
func TestTrainerStreamedCluster(t *testing.T) {
	const p, dim, steps = 4, 300, 8
	bounds := []int{0, 90, 170, 300}
	layers := []int{0, 40, 90, 120, 170, 220, 300}
	stream := gradStream(dim)

	run := func(streamed bool) [][]float32 {
		t.Helper()
		model := netsim.Paper1GbE()
		results, err := RunCluster(context.Background(), ClusterConfig{
			Workers: p, Steps: steps, Model: &model,
		}, func(rank int, comm *collective.Comm) (*Trainer, error) {
			agg, err := NewBucketedAggregator(comm, bounds, 0.05)
			if err != nil {
				return nil, err
			}
			weights := make([]float32, dim)
			gradFn := func(iter int, w, g []float32) float64 {
				copy(g, stream(rank, iter))
				return 1
			}
			tr, err := NewTrainer(TrainConfig{LR: 0.1}, agg, weights, gradFn)
			if err != nil {
				return nil, err
			}
			if streamed {
				streamFn := func(iter int, w, g []float32, ready func(lo, hi int)) float64 {
					loss := gradFn(iter, w, g)
					for l := len(layers) - 2; l >= 0; l-- {
						ready(layers[l], layers[l+1])
					}
					return loss
				}
				if err := tr.SetStreamGradFn(streamFn); err != nil {
					return nil, err
				}
			}
			return tr, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		weights := make([][]float32, p)
		for r, res := range results {
			weights[r] = res.FinalWeights
		}
		return weights
	}

	serial := run(false)
	streamed := run(true)
	for r := 1; r < p; r++ {
		requireBitwiseEqual(t, [][]float32{streamed[0]}, [][]float32{streamed[r]},
			fmt.Sprintf("streamed replica %d vs 0", r))
	}
	requireBitwiseEqual(t, serial, streamed, "streamed cluster vs serial cluster")
}

// TestTrainerStreamRequiresStreamer ensures SetStreamGradFn rejects
// aggregators without pipeline support.
func TestTrainerStreamRequiresStreamer(t *testing.T) {
	spmd(t, 1, func(c *collective.Comm) error {
		agg := NewDenseAggregator(c, 8)
		tr, err := NewTrainer(TrainConfig{LR: 0.1}, agg, make([]float32, 8),
			func(iter int, w, g []float32) float64 { return 0 })
		if err != nil {
			return err
		}
		if err := tr.SetStreamGradFn(func(int, []float32, []float32, func(int, int)) float64 { return 0 }); err == nil {
			return fmt.Errorf("expected error installing stream fn on dense aggregator")
		}
		return nil
	})
}
