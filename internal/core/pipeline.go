package core

import (
	"context"
	"fmt"

	"gtopkssgd/internal/tensor"
)

// PipelinedTrainer implements the paper's Section VII future-work idea —
// hiding communication behind computation — with one-step-stale updates:
// while iteration t+1's gradient is being computed, iteration t's
// gradient is aggregated concurrently, and its update is applied just
// before the NEXT forward pass.
//
// Semantics: weights_t+1 = weights_t − η·v_t where v_t uses the update
// aggregated from the gradient computed at weights_{t−1}. This is the
// classic one-step-stale pipeline; convergence degrades only marginally
// for small learning rates (asserted by the tests) while the modelled
// iteration time drops from (compute + comm) to max(compute, comm) —
// quantified analytically by the ablation-pipeline experiment.
//
// Replica consistency is preserved: every rank applies the same updates
// in the same order, just one step later than the synchronous trainer.
type PipelinedTrainer struct {
	cfg      TrainConfig
	agg      Aggregator
	gradFn   GradFn
	weights  []float32
	velocity []float32
	grad     []float32
	iter     int

	inflight bool
	resultCh chan aggResult
}

type aggResult struct {
	update []float32 // private copy of the aggregated update
	err    error
}

// NewPipelinedTrainer assembles a pipelined trainer with the same
// contract as NewTrainer.
func NewPipelinedTrainer(cfg TrainConfig, agg Aggregator, weights []float32, gradFn GradFn) (*PipelinedTrainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if agg == nil || gradFn == nil {
		return nil, fmt.Errorf("core: pipelined trainer needs an aggregator and a gradient function")
	}
	return &PipelinedTrainer{
		cfg:      cfg,
		agg:      agg,
		gradFn:   gradFn,
		weights:  weights,
		velocity: make([]float32, len(weights)),
		grad:     make([]float32, len(weights)),
		resultCh: make(chan aggResult, 1),
	}, nil
}

// Weights exposes the current parameters.
func (t *PipelinedTrainer) Weights() []float32 { return t.weights }

// Iter returns the number of gradient computations so far.
func (t *PipelinedTrainer) Iter() int { return t.iter }

// Step computes this iteration's gradient, applies the PREVIOUS
// iteration's aggregated update (if any), and launches this gradient's
// aggregation in the background. Returns the local mini-batch loss.
func (t *PipelinedTrainer) Step(ctx context.Context) (float64, error) {
	for i := range t.grad {
		t.grad[i] = 0
	}
	loss := t.gradFn(t.iter, t.weights, t.grad)

	// Overlap point: the previous aggregation ran while gradFn computed.
	if t.inflight {
		if err := t.applyPending(); err != nil {
			return 0, fmt.Errorf("core: pipelined step %d: %w", t.iter, err)
		}
	}

	// Hand the fresh gradient to the aggregator on a private copy so the
	// next gradFn call can reuse t.grad immediately.
	gradCopy := append([]float32(nil), t.grad...)
	t.inflight = true
	go func() {
		update, err := t.agg.Aggregate(ctx, gradCopy)
		if err != nil {
			t.resultCh <- aggResult{err: err}
			return
		}
		t.resultCh <- aggResult{update: append([]float32(nil), update...)}
	}()

	t.iter++
	return loss, nil
}

// Flush waits for the in-flight aggregation and applies it. Call once
// after the final Step so the last gradient is not lost.
func (t *PipelinedTrainer) Flush() error {
	if !t.inflight {
		return nil
	}
	return t.applyPending()
}

func (t *PipelinedTrainer) applyPending() error {
	res := <-t.resultCh
	t.inflight = false
	if res.err != nil {
		return res.err
	}
	if t.cfg.GradClip > 0 {
		tensor.Clip(res.update, t.cfg.GradClip)
	}
	if t.cfg.Momentum > 0 {
		for i, u := range res.update {
			t.velocity[i] = t.cfg.Momentum*t.velocity[i] + u
		}
		tensor.AxpyInto(t.weights, -t.cfg.LR, t.velocity)
	} else {
		tensor.AxpyInto(t.weights, -t.cfg.LR, res.update)
	}
	return nil
}
