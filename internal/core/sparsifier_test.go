package core

import (
	"math"
	"testing"
	"testing/quick"

	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/sparse"
)

func TestSparsifierSelectBasic(t *testing.T) {
	sp := NewSparsifier(6)
	grad := []float32{0.1, -5, 0.2, 3, -0.3, 0.4}
	sel, err := sp.Select(grad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sel.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", sel.NNZ())
	}
	// Largest magnitudes are -5 (idx 1) and 3 (idx 3).
	if sel.Indices[0] != 1 || sel.Indices[1] != 3 {
		t.Fatalf("indices = %v, want [1 3]", sel.Indices)
	}
	// Selected positions must be zeroed in the residual; others kept.
	res := sp.Residual()
	if res[1] != 0 || res[3] != 0 {
		t.Fatalf("selected entries not cleared: %v", res)
	}
	if res[0] != 0.1 || res[4] != -0.3 {
		t.Fatalf("unselected entries lost: %v", res)
	}
}

func TestSparsifierAccumulatesResidual(t *testing.T) {
	// A small gradient repeated builds up in the residual until it wins
	// selection — the error-feedback property Top-k convergence relies on.
	sp := NewSparsifier(2)
	grad := []float32{1.0, 0.4}
	for i := 0; i < 2; i++ {
		sel, err := sp.Select(grad, 1)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Indices[0] != 0 {
			t.Fatalf("step %d selected %v", i, sel.Indices)
		}
	}
	// Residual at index 1 is now 0.8; next gradient makes it 1.2 > 1.0.
	sel, err := sp.Select(grad, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Indices[0] != 1 {
		t.Fatalf("accumulated small gradient never selected: %v", sel.Indices)
	}
	if math.Abs(float64(sel.Values[0])-1.2) > 1e-6 {
		t.Fatalf("accumulated value = %v, want 1.2", sel.Values[0])
	}
}

func TestSparsifierMassConservation(t *testing.T) {
	// residual_before + grad == residual_after + selected, exactly.
	src := prng.New(3)
	sp := NewSparsifier(100)
	for step := 0; step < 10; step++ {
		grad := make([]float32, 100)
		for i := range grad {
			grad[i] = float32(src.NormFloat64())
		}
		before := append([]float32(nil), sp.Residual()...)
		sel, err := sp.Select(grad, 7)
		if err != nil {
			t.Fatal(err)
		}
		after := append([]float32(nil), sp.Residual()...)
		sel.ScatterAdd(after)
		for i := range after {
			if want := before[i] + grad[i]; after[i] != want {
				t.Fatalf("step %d elem %d: mass not conserved: %v vs %v", step, i, after[i], want)
			}
		}
	}
}

func TestSparsifierDimMismatch(t *testing.T) {
	sp := NewSparsifier(4)
	if _, err := sp.Select(make([]float32, 5), 1); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := sp.Select(make([]float32, 4), 5); err == nil {
		t.Error("k > dim accepted")
	}
	if _, err := sp.Select(make([]float32, 4), -1); err == nil {
		t.Error("negative k accepted")
	}
}

func TestPutBack(t *testing.T) {
	sp := NewSparsifier(8)
	local := &sparse.Vector{
		Dim:     8,
		Indices: []int32{1, 3, 5},
		Values:  []float32{10, 20, 30},
	}
	// Global selection kept only index 3.
	sp.PutBack(local, []int32{3})
	res := sp.Residual()
	if res[1] != 10 || res[5] != 30 {
		t.Fatalf("dropped values not returned: %v", res)
	}
	if res[3] != 0 {
		t.Fatalf("surviving value returned to residual: %v", res)
	}
}

func TestPutBackEmptyGlobal(t *testing.T) {
	sp := NewSparsifier(4)
	local := &sparse.Vector{Dim: 4, Indices: []int32{0, 2}, Values: []float32{1, 2}}
	sp.PutBack(local, nil)
	if sp.Residual()[0] != 1 || sp.Residual()[2] != 2 {
		t.Fatalf("all values should return: %v", sp.Residual())
	}
}

func TestSparsifierReset(t *testing.T) {
	sp := NewSparsifier(3)
	if _, err := sp.Select([]float32{1, 2, 3}, 1); err != nil {
		t.Fatal(err)
	}
	sp.Reset()
	if sp.ResidualNorm() != 0 {
		t.Fatalf("Reset left residual norm %v", sp.ResidualNorm())
	}
}

func TestDensityToK(t *testing.T) {
	cases := []struct {
		dim  int
		rho  float64
		want int
	}{
		{1000, 0.001, 1},
		{25000000, 0.001, 25000},
		{100, 0.5, 50},
		{10, 0.0001, 1}, // clamped up
		{10, 2.0, 10},   // clamped down
		{2000, 0.005, 10},
	}
	for _, tt := range cases {
		if got := DensityToK(tt.dim, tt.rho); got != tt.want {
			t.Errorf("DensityToK(%d, %v) = %d, want %d", tt.dim, tt.rho, got, tt.want)
		}
	}
}

// Property: selection + residual always reconstruct the accumulated
// gradient exactly, for any k.
func TestQuickSelectConservation(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		const dim = 64
		k := int(kRaw%64) + 1
		src := prng.New(seed)
		sp := NewSparsifier(dim)
		grad := make([]float32, dim)
		for i := range grad {
			grad[i] = float32(src.NormFloat64())
		}
		sel, err := sp.Select(grad, k)
		if err != nil || sel.NNZ() != k {
			return false
		}
		recon := append([]float32(nil), sp.Residual()...)
		sel.ScatterAdd(recon)
		for i := range recon {
			if recon[i] != grad[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSparsifierShardedSelectBitIdentical: a sharded sparsifier must
// walk the exact same residual/selection trajectory as a serial one
// across iterations, for several shard counts.
func TestSparsifierShardedSelectBitIdentical(t *testing.T) {
	// dim must comfortably exceed the engine's minimum per-shard span
	// (32768 elements) times the largest tested shard count, or the
	// selector silently clamps to the serial fallback and the test
	// compares serial against serial.
	const dim, k, iters = 4 * 32768, 131, 4
	for _, shards := range []int{0, 2, 4} {
		serial := NewSparsifier(dim)
		sharded := NewSparsifier(dim)
		sharded.SetShards(shards)
		src := prng.New(321)
		grad := make([]float32, dim)
		for it := 0; it < iters; it++ {
			for i := range grad {
				grad[i] = float32(src.NormFloat64())
			}
			want, err := serial.Select(grad, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.Select(grad, k)
			if err != nil {
				t.Fatal(err)
			}
			if want.NNZ() != got.NNZ() {
				t.Fatalf("shards=%d iter %d: nnz %d vs %d", shards, it, want.NNZ(), got.NNZ())
			}
			for i := range want.Indices {
				if want.Indices[i] != got.Indices[i] ||
					math.Float32bits(want.Values[i]) != math.Float32bits(got.Values[i]) {
					t.Fatalf("shards=%d iter %d entry %d differs", shards, it, i)
				}
			}
			for i := range serial.Residual() {
				if math.Float32bits(serial.Residual()[i]) != math.Float32bits(sharded.Residual()[i]) {
					t.Fatalf("shards=%d iter %d: residual diverged at %d", shards, it, i)
				}
			}
		}
	}
}
