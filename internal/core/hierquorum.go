package core

import (
	"context"
	"fmt"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/sparse"
)

// This file implements the hierarchical quorum gTop-k collective — the
// straggler tolerance of the flat quorum (quorum.go) composed with the
// two-level hierarchy (hierarchical.go), which is the regime where both
// matter: at P >= 64 the hierarchy wins on synchronization-domain size,
// and a per-level deadline budget keeps one slow member (or one wholly
// partitioned group) from stalling the whole world.
//
// One round runs three phases under one deadline budget
// (QuorumConfig.SplitLevels):
//
//   1. Intra-group quorum gather: every member ships its local top-k to
//      its group leader; the leader closes after q_g of G contributions
//      under the Group budget and folds the participants' frames with
//      the position-binomial ⊕ schedule.
//   2. Leader-level quorum gather: each leader ships its group aggregate
//      PLUS the group's participant set (the group-verdict wire format)
//      to the global root; the root closes after q_l of ⌈P/G⌉ group
//      aggregates under the Leader budget, folds them over leader
//      positions with the same binomial schedule, and unions the
//      participating groups' member sets into the world participant set.
//   3. Verdict broadcast: the retry-hardened verdict (world participant
//      set + merged global top-k) relays root→leaders→members; each
//      receive attempt is sized by the Broadcast budget and retried, so
//      a verdict that is late — e.g. because the receiving leader was
//      still draining a delayed intra gather — is survived, not lost.
//
// Staleness stays bounded per LEVEL exactly as it is per round in the
// flat collective: every gather claims a fresh tag, so a frame that
// missed its level's deadline rots under a dead tag and can never leak
// into a later round. A straggling member is simply absent from its
// group's participant set; a whole group that misses the leader round
// contributes NOTHING to the aggregate, so every one of its members —
// leader included — is absent from the verdict and refunds its full
// selected mass to its residual (the aggregator's Refund path), which is
// the conservation story that makes the miss convergence-safe.
//
// Determinism is inherited the way the hierarchy inherited it from the
// flat tree: at q_g = G and q_l = ⌈P/G⌉ every fold sees the exact ⊕
// sequence of HierarchicalGTopKAllReduce, so full-quorum rounds are
// bit-identical to it under lossless codecs on every fabric, and any
// partial round's bits are a pure function of the straggler schedule.

// HierQuorumGTopKAllReduce wraps HierQuorumGTopKAllReduceInto with a
// fresh result vector, forking the group sub-communicators per call
// (aggregators that run every iteration hold a HierarchicalAggregator
// instead). g <= 1 or g >= P degenerates to the flat quorum collective,
// which requires a flat configuration (no LeaderQ, no Levels).
func HierQuorumGTopKAllReduce(ctx context.Context, comm *collective.Comm, local *sparse.Vector, k, g int, qc QuorumConfig) (*sparse.Vector, bool, []int, error) {
	out := &sparse.Vector{}
	if g <= 1 || g >= comm.Size() {
		participated, missed, err := QuorumGTopKAllReduceInto(ctx, comm, local, k, qc, out)
		return out, participated, missed, err
	}
	gc, err := comm.ForkGroup(g)
	if err != nil {
		return nil, false, nil, fmt.Errorf("core: hierarchical quorum gtopk: %w", err)
	}
	attachHierClocks(comm, gc)
	participated, missed, err := HierQuorumGTopKAllReduceInto(ctx, comm, gc, local, k, g, qc, out)
	if err != nil {
		return nil, false, nil, err
	}
	foldHierStats(comm, gc)
	return out, participated, missed, nil
}

// HierQuorumGTopKAllReduceInto runs one hierarchical quorum gTop-k round
// over the caller-owned GroupComms (forked with group size g from comm,
// clocks attached if timed). Every rank returns the verdict's global
// top-k in out, whether its own contribution made the round, and which
// world ranks missed. Statistics accumulate on gc's sub-communicators
// (fold them with AddStats as HierarchicalAggregator does); simulated
// time is charged on the parent comm as a pure function of the verdict's
// participant set (collective.ChargeHierQuorumRound).
func HierQuorumGTopKAllReduceInto(ctx context.Context, comm *collective.Comm, gc *collective.GroupComms, local *sparse.Vector, k, g int, qc QuorumConfig, out *sparse.Vector) (bool, []int, error) {
	p := comm.Size()
	if err := qc.ValidateHier(p, g); err != nil {
		return false, nil, err
	}
	levels := qc.SplitLevels()
	r := comm.Rank()
	mcomm := gc.Members
	codec := mcomm.WireCodec()
	groupSize := mcomm.Size()
	groupLo := gc.Group * g

	// Phase 1: intra-group quorum gather at the group leader (member rank
	// 0). Under a lossy v3 codec the sender's values are pinned in place
	// first, exactly like the flat quorum path — the caller snapshots
	// originals before this collective.
	var scale float32
	var lev []int16
	if codec.WireVersion() == 3 && codec.Lossy() {
		scale, lev = transformForWire(mcomm, codec, local.Values)
	}
	frame := encodeSparseChunk(codec, local, 0, local.NNZ(), scale, lev)
	mcomm.TallyWire(sparse.EncodedSize(local.NNZ()), len(frame))
	ground, err := mcomm.QuorumGather(ctx, 0, groupQuorum(qc.Q, groupSize), levels.Group, frame)
	if err != nil {
		return false, nil, fmt.Errorf("core: hierarchical quorum group gather: %w", err)
	}

	// The verdict broadcast downgrades a quantized mesh codec to
	// lossless v3 frames, mirroring the plain hierarchy's phase 3: the
	// fold pins the global result once, and re-quantizing it per hop
	// would break cross-group bit-agreement.
	bcodec := codec
	if bcodec.Value().Quantized() {
		bcodec = sparse.CodecV3
	}

	var verdictBlob []byte
	var participants []int
	if gc.IsLeader() {
		verdictBlob, participants, err = hierQuorumLeader(ctx, gc, codec, bcodec, ground, k, p, g, groupLo, qc.leaderQuorum(gc.NumGroups), levels, out)
	} else {
		verdictBlob, participants, err = hierQuorumMember(ctx, mcomm, bcodec, p, levels, out)
	}
	if err != nil {
		return false, nil, err
	}

	participated := rankIn(participants, r)
	missed := missedFrom(participants, p)
	// Charge all four legs from the verdict's participant set (modelled
	// 2k elements per gather contribution; the verdict at its modelled
	// flat size under v1 and its measured encoded size under v2/v3), so
	// every rank's simulated clock is a pure function of the straggler
	// schedule.
	verdictElems := sparse.EncodedSize(out.NNZ()) / 4
	if codec.WireVersion() != 1 {
		verdictElems = (len(verdictBlob) + 3) / 4
	}
	comm.ChargeHierQuorumRound(quorumRoot, g, participants, 2*k, verdictElems)
	return participated, missed, nil
}

// hierQuorumLeader is the leader side of phases 1b–3: fold the intra
// gather, run the leader-level quorum gather, merge (or receive) the
// world verdict, and relay it down the group. Returns the verdict blob
// and the world participant set; out receives the global top-k.
func hierQuorumLeader(ctx context.Context, gc *collective.GroupComms, codec, bcodec sparse.Codec, ground *collective.QuorumRound, k, p, g, groupLo, ql int, levels LevelTimeouts, out *sparse.Vector) ([]byte, []int, error) {
	mcomm, lcomm := gc.Members, gc.Leaders

	// Fold this group's participating member frames into the group
	// aggregate (position-binomial ⊕, bit-identical to the intra gTop-k
	// tree at full participation) and lift member ranks to world ranks —
	// groups are contiguous, so the lifted set stays strictly ascending.
	merged, err := quorumTreeFold(codec, ground, k)
	if err != nil {
		return nil, nil, err
	}
	intra := make([]int, len(ground.Participants))
	for i, mr := range ground.Participants {
		intra[i] = groupLo + mr
	}

	// Phase 2: the leader frame reuses the verdict wire format — the
	// group's world-rank participant set rides ahead of the aggregate, so
	// the root learns both from one frame.
	lcodec := lcomm.WireCodec()
	var lscale float32
	var llev []int16
	if lcodec.WireVersion() == 3 && lcodec.Lossy() {
		lscale, llev = transformForWire(lcomm, lcodec, merged.Values)
	}
	lframe := encodeVerdict(lcodec, intra, merged, lscale, llev)
	lcomm.TallyWire(sparse.EncodedSize(merged.NNZ()), len(lframe))
	sparse.PutVector(merged)
	lround, err := lcomm.QuorumGather(ctx, quorumRoot, ql, levels.Leader, lframe)
	if err != nil {
		return nil, nil, fmt.Errorf("core: hierarchical quorum leader gather: %w", err)
	}

	ltag := lcomm.ClaimTags(1)
	var verdict []byte
	var participants []int
	if lcomm.Rank() == quorumRoot {
		verdict, participants, err = hierQuorumRootVerdict(ctx, lcomm, mcomm, lcodec, bcodec, lround, k, p, ltag, out)
		if err != nil {
			return nil, nil, err
		}
	} else {
		verdict, err = lcomm.RecvTagRetry(ctx, quorumRoot, ltag, verdictRetryPolicy(levels.Broadcast))
		if err != nil {
			return nil, nil, fmt.Errorf("core: hierarchical quorum verdict recv (leader): %w", err)
		}
		participants, err = decodeVerdict(bcodec, verdict, p, out)
		if err != nil {
			return nil, nil, fmt.Errorf("core: hierarchical quorum verdict: %w", err)
		}
	}

	// Phase 3b: relay the verdict bytes down the group unmodified, so
	// every member decodes exactly the root's bits.
	mtag := mcomm.ClaimTags(1)
	for dst := 1; dst < mcomm.Size(); dst++ {
		if err := mcomm.SendTag(ctx, dst, mtag, verdict); err != nil {
			return nil, nil, fmt.Errorf("core: hierarchical quorum verdict relay to member %d: %w", dst, err)
		}
	}
	return verdict, participants, nil
}

// hierQuorumRootVerdict is the global root's phase 2b–3a: decode the
// participating leaders' frames, fold the group aggregates over leader
// positions, union the group participant sets into the world set, and
// send the encoded verdict to every other leader.
func hierQuorumRootVerdict(ctx context.Context, lcomm, mcomm *collective.Comm, lcodec, bcodec sparse.Codec, lround *collective.QuorumRound, k, p, ltag int, out *sparse.Vector) ([]byte, []int, error) {
	m := len(lround.Participants)
	vecs := make([]*sparse.Vector, m)
	owned := make([]bool, m)
	defer func() {
		for i, v := range vecs {
			if owned[i] && v != nil {
				sparse.PutVector(v)
			}
		}
	}()
	// Leader positions ascend with group index and each group's set
	// ascends within its contiguous rank range, so concatenating in
	// position order keeps the world participant set strictly ascending.
	participants := make([]int, 0, p)
	for i, lpos := range lround.Participants {
		dst := sparse.GetVector()
		set, err := decodeVerdict(lcodec, lround.Blobs[lpos], p, dst)
		if err != nil {
			sparse.PutVector(dst)
			return nil, nil, fmt.Errorf("core: hierarchical quorum group aggregate from leader %d: %w", lpos, err)
		}
		vecs[i], owned[i] = dst, true
		participants = append(participants, set...)
	}
	global, err := binomialPositionFold(vecs, owned, k)
	if err != nil {
		return nil, nil, err
	}
	// Pin the merged result to the broadcast precision BEFORE both the
	// local copy and the encode (fp16 meshes; quantized meshes already
	// downgraded bcodec to lossless v3), so the root keeps exactly the
	// bits every other rank decodes.
	var vscale float32
	var vlevels []int16
	if bcodec.Lossy() {
		vscale, vlevels = transformForWire(mcomm, bcodec, global.Values)
	}
	sparse.CopyInto(out, global)
	verdict := encodeVerdict(bcodec, participants, global, vscale, vlevels)
	lcomm.TallyWire(sparse.EncodedSize(out.NNZ()), len(verdict))
	sparse.PutVector(global)
	for dst := 1; dst < lcomm.Size(); dst++ {
		if err := lcomm.SendTag(ctx, dst, ltag, verdict); err != nil {
			return nil, nil, fmt.Errorf("core: hierarchical quorum verdict send to leader %d: %w", dst, err)
		}
	}
	return verdict, participants, nil
}

// hierQuorumMember is the non-leader side of phase 3: wait for the
// leader's verdict relay (deadline-aware, so a leader still draining a
// delayed intra gather is survived) and decode it.
func hierQuorumMember(ctx context.Context, mcomm *collective.Comm, bcodec sparse.Codec, p int, levels LevelTimeouts, out *sparse.Vector) ([]byte, []int, error) {
	mtag := mcomm.ClaimTags(1)
	blob, err := mcomm.RecvTagRetry(ctx, 0, mtag, verdictRetryPolicy(levels.Broadcast))
	if err != nil {
		return nil, nil, fmt.Errorf("core: hierarchical quorum verdict recv (member): %w", err)
	}
	participants, err := decodeVerdict(bcodec, blob, p, out)
	if err != nil {
		return nil, nil, fmt.Errorf("core: hierarchical quorum verdict: %w", err)
	}
	return blob, participants, nil
}
