package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

func TestHierQuorumConfigValidation(t *testing.T) {
	const p, g = 8, 4 // two groups of four
	legal := []QuorumConfig{
		{Q: 3, Timeout: time.Second},
		{Q: 4, Timeout: time.Second, LeaderQ: 2},
		{Q: 3, Timeout: time.Second, Levels: LevelTimeouts{
			Group: 200 * time.Millisecond, Leader: 500 * time.Millisecond, Broadcast: 200 * time.Millisecond}},
	}
	for _, qc := range legal {
		if err := qc.ValidateHier(p, g); err != nil {
			t.Errorf("legal hier config %+v rejected: %v", qc, err)
		}
	}
	bad := []QuorumConfig{
		{Q: 2, Timeout: time.Second},            // below the group's strict majority
		{Q: 5, Timeout: time.Second},            // above the group size
		{Q: 3, Timeout: 0},                      // no deadline
		{Q: 3, Timeout: time.Second, LeaderQ: 1}, // below the leader-level majority
		{Q: 3, Timeout: time.Second, LeaderQ: 3}, // above the group count
		{Q: 3, Timeout: time.Second, Levels: LevelTimeouts{Group: time.Second}},        // partial budgets
		{Q: 3, Timeout: time.Second, Levels: LevelTimeouts{Group: -1, Leader: 1, Broadcast: 1}}, // negative budget
		{Q: 3, Timeout: 100 * time.Millisecond, Levels: LevelTimeouts{ // budgets exceed the round deadline
			Group: 50 * time.Millisecond, Leader: 50 * time.Millisecond, Broadcast: 50 * time.Millisecond}},
	}
	for _, qc := range bad {
		if err := qc.ValidateHier(p, g); err == nil {
			t.Errorf("hier config %+v accepted for p=%d g=%d", qc, p, g)
		}
	}
	for _, tc := range []struct{ g int }{{1}, {8}, {9}} {
		if err := (QuorumConfig{Q: 3, Timeout: time.Second}).ValidateHier(p, tc.g); err == nil {
			t.Errorf("group size %d accepted for p=%d", tc.g, p)
		}
	}
	// The flat validator must reject the hierarchical fields.
	if err := (QuorumConfig{Q: 5, Timeout: time.Second, LeaderQ: 2}).Validate(p); err == nil {
		t.Error("flat Validate accepted a leader quorum")
	}
	if err := (QuorumConfig{Q: 5, Timeout: time.Second, Levels: LevelTimeouts{Group: 1, Leader: 1, Broadcast: 1}}).Validate(p); err == nil {
		t.Error("flat Validate accepted per-level budgets")
	}
}

func TestSplitLevels(t *testing.T) {
	qc := QuorumConfig{Q: 3, Timeout: time.Second}
	lt := qc.SplitLevels()
	if lt.Group != 250*time.Millisecond || lt.Leader != 500*time.Millisecond || lt.Broadcast != 250*time.Millisecond {
		t.Fatalf("default split %+v, want 1/4 : 1/2 : 1/4 of %v", lt, qc.Timeout)
	}
	if sum := lt.Group + lt.Leader + lt.Broadcast; sum != qc.Timeout {
		t.Fatalf("default split sums to %v, want the full %v round deadline", sum, qc.Timeout)
	}
	// An odd deadline still splits exactly: the remainder lands on the
	// broadcast budget.
	qc.Timeout = time.Second + 3*time.Nanosecond
	lt = qc.SplitLevels()
	if sum := lt.Group + lt.Leader + lt.Broadcast; sum != qc.Timeout {
		t.Fatalf("odd split sums to %v, want %v", sum, qc.Timeout)
	}
	explicit := LevelTimeouts{Group: 1, Leader: 2, Broadcast: 3}
	qc.Levels = explicit
	if got := qc.SplitLevels(); got != explicit {
		t.Fatalf("explicit levels not passed through: %+v", got)
	}
}

func TestGroupQuorumClamp(t *testing.T) {
	for _, tc := range []struct{ q, size, want int }{
		{3, 4, 3},  // full group, configured quorum
		{4, 4, 4},  // full sync
		{3, 2, 2},  // tail group of 2: clamped to its size (= its majority)
		{3, 3, 3},  // tail group of 3: QuorumMin(3)=3
		{4, 1, 1},  // tail group of 1: the leader alone is the whole group
	} {
		if got := groupQuorum(tc.q, tc.size); got != tc.want {
			t.Errorf("groupQuorum(%d, %d) = %d, want %d", tc.q, tc.size, got, tc.want)
		}
	}
}

// runHierQuorumWorld drives one SPMD hierarchical quorum round over fab,
// returning each rank's verdict vector, participation flag, and missed
// set.
func runHierQuorumWorld(t *testing.T, fab transport.Fabric, vecs []*sparse.Vector, k, g int, qc QuorumConfig) ([]*sparse.Vector, []bool, [][]int) {
	t.Helper()
	p := fab.Size()
	outs := make([]*sparse.Vector, p)
	parts := make([]bool, p)
	missed := make([][]int, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := collective.New(fab.Conn(r))
			outs[r], parts[r], missed[r], errs[r] =
				HierQuorumGTopKAllReduce(context.Background(), c, vecs[r].Clone(), k, g, qc)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return outs, parts, missed
}

// serialHierMerge is the hierarchical reference fold: the participating
// members of each group merge with the position-binomial schedule, then
// the participating groups' aggregates merge over leader positions.
func serialHierMerge(t *testing.T, vecs []*sparse.Vector, k, g int, participants []int) *sparse.Vector {
	t.Helper()
	p := len(vecs)
	isPart := make(map[int]bool, len(participants))
	for _, r := range participants {
		isPart[r] = true
	}
	var groups []*sparse.Vector
	for lo := 0; lo < p; lo += g {
		hi := lo + g
		if hi > p {
			hi = p
		}
		var members []*sparse.Vector
		for r := lo; r < hi; r++ {
			if isPart[r] {
				members = append(members, vecs[r])
			}
		}
		if len(members) > 0 {
			groups = append(groups, serialTreeMerge(t, members, k))
		}
	}
	return serialTreeMerge(t, groups, k)
}

// TestHierQuorumFullSyncBitIdenticalToHier: at q_g = G and q_l = all
// leaders every level is a deadline-guarded full synchronization, so the
// result must reproduce HierarchicalGTopKAllReduce's bits exactly — on
// the in-process mailboxes AND the TCP mesh — which is how the
// hierarchical quorum inherits the hierarchy's determinism.
func TestHierQuorumFullSyncBitIdenticalToHier(t *testing.T) {
	const p, dim, k = 8, 300, 12
	_, vecs := makeWorkerVectors(3131, p, dim, k)

	for _, g := range []int{2, 4} {
		// Plain hierarchical reference over a fresh in-process world.
		hier := make([]*sparse.Vector, p)
		var mu sync.Mutex
		spmd(t, p, func(c *collective.Comm) error {
			got, err := HierarchicalGTopKAllReduce(context.Background(), c, vecs[c.Rank()].Clone(), k, g)
			if err != nil {
				return err
			}
			mu.Lock()
			hier[c.Rank()] = got
			mu.Unlock()
			return nil
		})

		qc := QuorumConfig{Q: g, LeaderQ: p / g, Timeout: 5 * time.Second}
		for name, mk := range map[string]func() (transport.Fabric, error){
			"inproc": func() (transport.Fabric, error) { return transport.NewInProc(p) },
			"tcp":    func() (transport.Fabric, error) { return transport.NewTCP(p) },
		} {
			t.Run(fmt.Sprintf("g=%d/%s", g, name), func(t *testing.T) {
				fab, err := mk()
				if err != nil {
					t.Fatal(err)
				}
				defer fab.Close() //nolint:errcheck // test fabric
				outs, parts, missed := runHierQuorumWorld(t, fab, vecs, k, g, qc)
				for r := 0; r < p; r++ {
					if !parts[r] || len(missed[r]) != 0 {
						t.Fatalf("rank %d: participated=%v missed=%v under full quorums", r, parts[r], missed[r])
					}
					requireBitIdentical(t, fmt.Sprintf("rank %d vs hierarchical", r), outs[r], hier[0])
				}
			})
		}
	}
}

// TestHierQuorumSlowMemberAgreement: one slow member inside a group
// misses its intra-group deadline; the round closes without it, every
// rank — the straggler included — decodes the identical verdict, and
// the merge equals the serial two-level fold of the participants.
func TestHierQuorumSlowMemberAgreement(t *testing.T) {
	const p, dim, k, g, slow = 8, 300, 12, 4, 5
	_, vecs := makeWorkerVectors(414, p, dim, k)
	participants := []int{0, 1, 2, 3, 4, 6, 7}
	want := serialHierMerge(t, vecs, k, g, participants)
	qc := QuorumConfig{Q: 3, Timeout: 800 * time.Millisecond}
	plan := transport.FaultPlan{Seed: 17, Delay: 3 * time.Second, SlowRanks: []int{slow}}

	run := func(t *testing.T, mk func() (transport.Fabric, error)) []*sparse.Vector {
		inner, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		fab := transport.NewFaultInjector(inner, plan)
		defer fab.Close() //nolint:errcheck // test fabric
		outs, parts, missed := runHierQuorumWorld(t, fab, vecs, k, g, qc)
		for r := 0; r < p; r++ {
			if wantPart := r != slow; parts[r] != wantPart {
				t.Fatalf("rank %d participated=%v, want %v", r, parts[r], wantPart)
			}
			if len(missed[r]) != 1 || missed[r][0] != slow {
				t.Fatalf("rank %d missed=%v, want [%d]", r, missed[r], slow)
			}
			requireBitIdentical(t, fmt.Sprintf("rank %d vs serial hier fold", r), outs[r], want)
		}
		return outs
	}

	t.Run("inproc", func(t *testing.T) {
		first := run(t, func() (transport.Fabric, error) { return transport.NewInProc(p) })
		again := run(t, func() (transport.Fabric, error) { return transport.NewInProc(p) })
		requireBitIdentical(t, "replayed schedule", again[0], first[0])
	})
	t.Run("tcp", func(t *testing.T) {
		run(t, func() (transport.Fabric, error) { return transport.NewTCP(p) })
	})
}

// TestHierQuorumPartitionedGroupAgreement: a whole group behind delayed
// links misses the leader-level deadline. Its aggregate never enters the
// world fold, every one of its members — leader included, whose frame
// DID close its own intra gather — is reported missed, and the verdict
// still reaches the partitioned members through the retry-hardened
// relay, so replicas never diverge.
func TestHierQuorumPartitionedGroupAgreement(t *testing.T) {
	const p, dim, k, g = 8, 300, 12, 2
	_, vecs := makeWorkerVectors(909, p, dim, k)
	participants := []int{0, 1, 2, 3, 4, 5} // group {6,7} partitioned away
	want := serialHierMerge(t, vecs, k, g, participants)
	qc := QuorumConfig{
		Q: 2, LeaderQ: 3, Timeout: 800 * time.Millisecond,
		Levels: LevelTimeouts{Group: 150 * time.Millisecond, Leader: 150 * time.Millisecond, Broadcast: 400 * time.Millisecond},
	}
	plan := transport.FaultPlan{Seed: 23, Delay: 1500 * time.Millisecond, SlowRanks: []int{6, 7}}

	inner, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	fab := transport.NewFaultInjector(inner, plan)
	defer fab.Close() //nolint:errcheck // test fabric
	outs, parts, missed := runHierQuorumWorld(t, fab, vecs, k, g, qc)
	for r := 0; r < p; r++ {
		if wantPart := r < 6; parts[r] != wantPart {
			t.Fatalf("rank %d participated=%v, want %v", r, parts[r], wantPart)
		}
		if len(missed[r]) != 2 || missed[r][0] != 6 || missed[r][1] != 7 {
			t.Fatalf("rank %d missed=%v, want [6 7]", r, missed[r])
		}
		requireBitIdentical(t, fmt.Sprintf("rank %d vs serial hier fold", r), outs[r], want)
	}
}

// TestHierarchicalSetQuorum covers the aggregator-level configuration
// surface: the grouped regime validates against (P, G), the degenerate
// flat regime against the world, and a zero config disables.
func TestHierarchicalSetQuorum(t *testing.T) {
	fab, err := transport.NewInProc(8)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close() //nolint:errcheck // in-process close never fails
	agg, err := NewHierarchicalAggregator(collective.New(fab.Conn(0)), 100, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.SetQuorum(QuorumConfig{Q: 3, LeaderQ: 2, Timeout: time.Second}); err != nil {
		t.Fatalf("legal hier quorum rejected: %v", err)
	}
	if got := agg.QuorumMissStreak(); got != 0 {
		t.Fatalf("initial miss streak %d, want 0", got)
	}
	if err := agg.SetQuorum(QuorumConfig{Q: 2, Timeout: time.Second}); err == nil {
		t.Fatal("sub-majority group quorum accepted")
	}
	if err := agg.SetQuorum(QuorumConfig{}); err != nil {
		t.Fatalf("disable rejected: %v", err)
	}

	// Degenerate flat regime (group >= world): the flat validator applies.
	flat, err := NewHierarchicalAggregator(collective.New(fab.Conn(1)), 100, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.SetQuorum(QuorumConfig{Q: 6, Timeout: time.Second}); err != nil {
		t.Fatalf("legal flat quorum rejected in degenerate regime: %v", err)
	}
	if err := flat.SetQuorum(QuorumConfig{Q: 6, LeaderQ: 2, Timeout: time.Second}); err == nil {
		t.Fatal("leader quorum accepted in the degenerate flat regime")
	}
}

// TestChaosHierQuorumRefundConservation is the fault-injected
// hierarchical quorum soak: one slow member inside a group AND one
// wholly partitioned group, over three aggregator rounds. The member
// stalls only in round 2 (it misses its intra deadline once, then
// recovers and its refunded mass enters round 3 — deferred, not lost);
// the partitioned group is behind a constant link delay and misses the
// leader deadline EVERY round, so its members streak together while
// their residuals keep the whole refunded mass. The conservation law
// after == before + grad must hold bit-for-bit for every missed rank at
// BOTH levels, and replicas must keep applying identical updates.
func TestChaosHierQuorumRefundConservation(t *testing.T) {
	const (
		p, dim, k, g = 16, 400, 12, 4
		slowMember   = 5 // inside group 1 (leader 4)
	)
	partitioned := []int{12, 13, 14, 15} // group 3, leader 12
	slowRanks := append([]int{slowMember}, partitioned...)
	spikes := map[int]int32{slowMember: 31, 12: 101, 13: 157, 14: 223, 15: 307}
	// The partitioned group's outgoing links pay a constant delay far
	// beyond every level budget; the slow member's single upward link
	// carries one frame per round, so StallEvery=2 stalls exactly its
	// round-2 frame. Injectors nest — each plan afflicts only its own
	// SlowRanks' links.
	planGroup := transport.FaultPlan{Seed: 77, Delay: 800 * time.Millisecond, SlowRanks: partitioned}
	planMember := transport.FaultPlan{Seed: 78, StallEvery: 2, StallFor: 800 * time.Millisecond, SlowRanks: []int{slowMember}}
	qc := QuorumConfig{
		Q: 3, LeaderQ: 3, Timeout: 400 * time.Millisecond,
		// The broadcast budget sizes the verdict retry window: a
		// partitioned member's verdict arrives only after its leader has
		// drained the delayed intra gather AND the delayed relay link —
		// about two link delays — which 8 attempts x 2 x 200ms survives.
		Levels: LevelTimeouts{Group: 100 * time.Millisecond, Leader: 100 * time.Millisecond, Broadcast: 200 * time.Millisecond},
	}

	inner, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	fab := transport.NewFaultInjector(transport.NewFaultInjector(inner, planGroup), planMember)
	defer fab.Close() //nolint:errcheck // test fabric

	grads := func(round, rank int) []float32 {
		g := make([]float32, dim)
		switch round {
		case 0:
			src := prng.New(uint64(300 + rank))
			for i := range g {
				g[i] = float32(src.NormFloat64())
			}
		case 1:
			if idx, slow := spikes[rank]; slow {
				g[idx] = 500 + float32(rank)
			} else {
				src := prng.New(uint64(600 + rank))
				for i := range g {
					g[i] = float32(src.NormFloat64())
				}
			}
		}
		return g // round 2: all zeros — only residual mass competes
	}
	isSlow := func(r int) bool {
		for _, s := range slowRanks {
			if s == r {
				return true
			}
		}
		return false
	}

	updates := make([][3][]float32, p)
	streaks := make([][3]int, p)
	resBefore := make([][]float32, p) // slow ranks: residual entering round 2
	resAfter := make([][]float32, p)  // ... leaving round 2
	resFinal := make([][]float32, p)  // ... and leaving round 3
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			agg, err := NewHierarchicalAggregator(collective.New(fab.Conn(r)), dim, k, g)
			if err != nil {
				errs[r] = err
				return
			}
			if err := agg.SetQuorum(qc); err != nil {
				errs[r] = err
				return
			}
			for round := 0; round < 3; round++ {
				if round == 2 {
					// Let the slow member's stalled round-2 frame drain
					// off the FIFO link before round 3 opens (head-of-line
					// blocking is real, but not what this round pins).
					time.Sleep(planMember.StallFor + 500*time.Millisecond)
				}
				if isSlow(r) && round == 1 {
					resBefore[r] = append([]float32(nil), agg.Sparsifier().Residual()...)
				}
				up, err := agg.Aggregate(context.Background(), grads(round, r))
				if err != nil {
					errs[r] = fmt.Errorf("round %d: %w", round, err)
					return
				}
				updates[r][round] = append([]float32(nil), up...)
				streaks[r][round] = agg.QuorumMissStreak()
				if isSlow(r) && round == 1 {
					resAfter[r] = append([]float32(nil), agg.Sparsifier().Residual()...)
				}
				if isSlow(r) && round == 2 {
					resFinal[r] = append([]float32(nil), agg.Sparsifier().Residual()...)
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}

	// Streaks: the partitioned group misses every round and streaks
	// together — the group-granular degraded signal; the slow member
	// misses only round 2; everyone else never streaks.
	for r := 0; r < p; r++ {
		want := [3]int{0, 0, 0}
		switch {
		case r == slowMember:
			want = [3]int{0, 1, 0}
		case r >= 12:
			want = [3]int{1, 2, 3}
		}
		if streaks[r] != want {
			t.Fatalf("rank %d streaks %v, want %v", r, streaks[r], want)
		}
	}
	// Replica agreement every round: missed ranks still decode the
	// verdict through the retry-hardened relay, so updates never diverge.
	for round := 0; round < 3; round++ {
		for r := 1; r < p; r++ {
			for i := range updates[0][round] {
				if math.Float32bits(updates[r][round][i]) != math.Float32bits(updates[0][round][i]) {
					t.Fatalf("rank %d round %d update diverged at %d", r, round+1, i)
				}
			}
		}
	}
	// No missed rank's spike may leak into round 2's update (a spike
	// would contribute ~500/P; participants' honest mass at those indices
	// stays well under 1).
	for _, idx := range spikes {
		if u := updates[0][1][idx]; u > 1 || u < -1 {
			t.Fatalf("round 2 update carries a missed rank's spike at %d: %v", idx, u)
		}
	}
	// Conservation, bit-for-bit, at both levels: a missed rank's residual
	// after the round is exactly residual-before + gradient — whether it
	// missed its own intra deadline (rank 5) or its whole group missed
	// the leader round (ranks 12-15, the leader included, whose frame DID
	// close its own intra gather).
	for _, r := range slowRanks {
		grad := grads(1, r)
		for i := range resAfter[r] {
			want := resBefore[r][i] + grad[i]
			if math.Float32bits(resAfter[r][i]) != math.Float32bits(want) {
				t.Fatalf("rank %d residual[%d] = %x, want %x (no mass may be lost)",
					r, i, math.Float32bits(resAfter[r][i]), math.Float32bits(want))
			}
		}
	}
	// Round 3: the recovered member's refunded spike dominates its
	// selection and enters the global aggregate — deferred, not lost.
	if u := updates[0][2][spikes[slowMember]]; u < 1 {
		t.Fatalf("round 3 update missing the recovered member's spike: %v", u)
	}
	// A still-partitioned rank's round-3 selection is refunded whole, so
	// its residual is bitwise UNCHANGED across the round: repeated misses
	// conserve mass indefinitely, they never bleed it.
	for _, r := range partitioned {
		for i := range resFinal[r] {
			if math.Float32bits(resFinal[r][i]) != math.Float32bits(resAfter[r][i]) {
				t.Fatalf("rank %d residual[%d] changed across a fully-missed round", r, i)
			}
		}
	}
}
