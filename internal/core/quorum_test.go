package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

func TestQuorumConfigValidation(t *testing.T) {
	for _, tc := range []struct{ p, want int }{
		{2, 2}, {3, 3}, {4, 3}, {5, 4}, {8, 5}, {16, 9},
	} {
		if got := QuorumMin(tc.p); got != tc.want {
			t.Errorf("QuorumMin(%d) = %d, want %d", tc.p, got, tc.want)
		}
	}
	const p = 8
	if err := (QuorumConfig{Q: 5, Timeout: time.Second}).Validate(p); err != nil {
		t.Errorf("legal config rejected: %v", err)
	}
	for _, bad := range []QuorumConfig{
		{Q: 4, Timeout: time.Second},  // below majority+1
		{Q: 9, Timeout: time.Second},  // above P
		{Q: 0, Timeout: time.Second},  // zero quorum
		{Q: 6, Timeout: 0},            // no deadline
		{Q: 6, Timeout: -time.Second}, // negative deadline
	} {
		if err := bad.Validate(p); err == nil {
			t.Errorf("config %+v accepted for p=%d", bad, p)
		}
	}
}

func TestSetQuorum(t *testing.T) {
	fab, err := transport.NewInProc(4)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close() //nolint:errcheck // in-process close never fails
	agg, err := NewGTopKAggregator(collective.New(fab.Conn(0)), 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.SetQuorum(QuorumConfig{Q: 3, Timeout: time.Second}); err != nil {
		t.Fatalf("legal quorum rejected: %v", err)
	}
	if agg.Name() != "gtopk-quorum" {
		t.Fatalf("name %q, want gtopk-quorum", agg.Name())
	}
	if err := agg.SetQuorum(QuorumConfig{Q: 2, Timeout: time.Second}); err == nil {
		t.Fatal("sub-majority quorum accepted")
	}
	if err := agg.SetQuorum(QuorumConfig{}); err != nil {
		t.Fatalf("disable rejected: %v", err)
	}
	if agg.Name() != "gtopk" {
		t.Fatalf("name %q after disable, want gtopk", agg.Name())
	}
	naive, err := NewNaiveGTopKAggregator(collective.New(fab.Conn(1)), 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := naive.SetQuorum(QuorumConfig{Q: 3, Timeout: time.Second}); err == nil {
		t.Fatal("quorum accepted on the naive AllGather path")
	}
}

// runQuorumWorld drives one SPMD quorum round over fab, returning each
// rank's verdict vector, participation flag, and missed set.
func runQuorumWorld(t *testing.T, fab transport.Fabric, vecs []*sparse.Vector, k int, qc QuorumConfig) ([]*sparse.Vector, []bool, [][]int) {
	t.Helper()
	p := fab.Size()
	outs := make([]*sparse.Vector, p)
	parts := make([]bool, p)
	missed := make([][]int, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := collective.New(fab.Conn(r))
			outs[r], parts[r], missed[r], errs[r] =
				QuorumGTopKAllReduce(context.Background(), c, vecs[r].Clone(), k, qc)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return outs, parts, missed
}

// requireBitIdentical fails unless a and b agree entry-for-entry with
// bitwise-equal values (== would conflate -0 and +0).
func requireBitIdentical(t *testing.T, label string, a, b *sparse.Vector) {
	t.Helper()
	if a.NNZ() != b.NNZ() {
		t.Fatalf("%s: nnz %d vs %d", label, a.NNZ(), b.NNZ())
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] ||
			math.Float32bits(a.Values[i]) != math.Float32bits(b.Values[i]) {
			t.Fatalf("%s: entry %d: (%d, %x) vs (%d, %x)", label, i,
				a.Indices[i], math.Float32bits(a.Values[i]),
				b.Indices[i], math.Float32bits(b.Values[i]))
		}
	}
}

// TestQuorumFullSyncBitIdenticalToFlat: a q=P round is a deadline-guarded
// full synchronization and must reproduce the flat tree's bits exactly —
// on the in-process mailboxes AND the TCP mesh (the wire codecs differ,
// but both are lossless, so the merged floats are the same).
func TestQuorumFullSyncBitIdenticalToFlat(t *testing.T) {
	const p, dim, k = 4, 300, 12
	_, vecs := makeWorkerVectors(2024, p, dim, k)

	// Flat-tree reference over a fresh in-process world.
	flat := make([]*sparse.Vector, p)
	var mu sync.Mutex
	spmd(t, p, func(c *collective.Comm) error {
		got, err := GTopKAllReduce(context.Background(), c, vecs[c.Rank()].Clone(), k)
		if err != nil {
			return err
		}
		mu.Lock()
		flat[c.Rank()] = got
		mu.Unlock()
		return nil
	})

	newTCP := func() (transport.Fabric, error) { return transport.NewTCP(p) }
	newInproc := func() (transport.Fabric, error) { return transport.NewInProc(p) }
	for name, mk := range map[string]func() (transport.Fabric, error){
		"inproc": newInproc, "tcp": newTCP,
	} {
		t.Run(name, func(t *testing.T) {
			fab, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			defer fab.Close() //nolint:errcheck // test fabric
			outs, parts, missed := runQuorumWorld(t, fab, vecs, k,
				QuorumConfig{Q: p, Timeout: 5 * time.Second})
			for r := 0; r < p; r++ {
				if !parts[r] || len(missed[r]) != 0 {
					t.Fatalf("rank %d: participated=%v missed=%v under q=P", r, parts[r], missed[r])
				}
				requireBitIdentical(t, fmt.Sprintf("rank %d vs flat", r), outs[r], flat[0])
			}
		})
	}
}

// TestQuorumSlowRankAgreement: with one rank's outgoing links delayed far
// past the deadline, the round closes without it; every rank — the
// straggler included — decodes the identical verdict, the merge equals a
// serial fold of the participants' vectors, and the whole outcome is a
// pure function of (seed, straggler schedule): re-running the same
// schedule reproduces the same bits, on inproc and on TCP.
func TestQuorumSlowRankAgreement(t *testing.T) {
	const p, dim, k, slow = 4, 300, 12, 3
	_, vecs := makeWorkerVectors(777, p, dim, k)
	want := serialTreeMerge(t, vecs[:slow], k) // participants 0..2, rank order
	qc := QuorumConfig{Q: p - 1, Timeout: 200 * time.Millisecond}
	plan := transport.FaultPlan{Seed: 42, Delay: 3 * time.Second, SlowRanks: []int{slow}}

	run := func(t *testing.T, mk func() (transport.Fabric, error)) []*sparse.Vector {
		inner, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		fab := transport.NewFaultInjector(inner, plan)
		defer fab.Close() //nolint:errcheck // test fabric
		outs, parts, missed := runQuorumWorld(t, fab, vecs, k, qc)
		for r := 0; r < p; r++ {
			if wantPart := r != slow; parts[r] != wantPart {
				t.Fatalf("rank %d participated=%v, want %v", r, parts[r], wantPart)
			}
			if len(missed[r]) != 1 || missed[r][0] != slow {
				t.Fatalf("rank %d missed=%v, want [%d]", r, missed[r], slow)
			}
			requireBitIdentical(t, fmt.Sprintf("rank %d vs serial fold", r), outs[r], want)
		}
		return outs
	}

	t.Run("inproc", func(t *testing.T) {
		first := run(t, func() (transport.Fabric, error) { return transport.NewInProc(p) })
		again := run(t, func() (transport.Fabric, error) { return transport.NewInProc(p) })
		requireBitIdentical(t, "replayed schedule", again[0], first[0])
	})
	t.Run("tcp", func(t *testing.T) {
		run(t, func() (transport.Fabric, error) { return transport.NewTCP(p) })
	})
}

// runBucketedQuorumIters drives iters Aggregate calls of a bucketed
// pipeline on every rank of fab, returning per-rank per-iteration dense
// updates and quorum miss streaks.
func runBucketedQuorumIters(t *testing.T, fab transport.Fabric, bounds []int, density float64, qc QuorumConfig, iters int, gradFn func(iter, rank int) []float32) ([][][]float32, [][]int) {
	t.Helper()
	p := fab.Size()
	updates := make([][][]float32, p)
	streaks := make([][]int, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		updates[r] = make([][]float32, iters)
		streaks[r] = make([]int, iters)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			agg, err := NewBucketedAggregator(collective.New(fab.Conn(r)), bounds, density)
			if err != nil {
				errs[r] = err
				return
			}
			if qc.Q > 0 {
				if err := agg.SetQuorum(qc); err != nil {
					errs[r] = err
					return
				}
			}
			for it := 0; it < iters; it++ {
				up, err := agg.Aggregate(context.Background(), gradFn(it, r))
				if err != nil {
					errs[r] = fmt.Errorf("iter %d: %w", it, err)
					return
				}
				updates[r][it] = append([]float32(nil), up...)
				streaks[r][it] = agg.QuorumMissStreak()
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return updates, streaks
}

// TestBucketedQuorum: per-bucket quorum rounds behave like the flat
// aggregator's — q=P reproduces the non-quorum bucketed pipeline
// bit-for-bit, and a persistently slow rank misses every bucket round,
// growing its streak while all replicas (itself included) keep applying
// identical updates.
func TestBucketedQuorum(t *testing.T) {
	const p, dim, density, iters = 4, 400, 0.03, 3
	bounds := []int{0, 150, dim}
	gradFn := func(iter, rank int) []float32 {
		src := prng.New(uint64(1000*iter + rank))
		g := make([]float32, dim)
		for i := range g {
			g[i] = float32(src.NormFloat64())
		}
		return g
	}
	newWorld := func() transport.Fabric {
		fab, err := transport.NewInProc(p)
		if err != nil {
			t.Fatal(err)
		}
		return fab
	}

	flatFab := newWorld()
	defer flatFab.Close() //nolint:errcheck // test fabric
	flat, _ := runBucketedQuorumIters(t, flatFab, bounds, density, QuorumConfig{}, iters, gradFn)

	fullFab := newWorld()
	defer fullFab.Close() //nolint:errcheck // test fabric
	full, fullStreaks := runBucketedQuorumIters(t, fullFab, bounds, density,
		QuorumConfig{Q: p, Timeout: 5 * time.Second}, iters, gradFn)
	for r := 0; r < p; r++ {
		for it := 0; it < iters; it++ {
			if fullStreaks[r][it] != 0 {
				t.Fatalf("rank %d iter %d streak %d under q=P", r, it, fullStreaks[r][it])
			}
			for i := range flat[r][it] {
				if math.Float32bits(full[r][it][i]) != math.Float32bits(flat[r][it][i]) {
					t.Fatalf("rank %d iter %d: q=P diverged from flat pipeline at %d", r, it, i)
				}
			}
		}
	}

	const slow = 3
	slowFab := transport.NewFaultInjector(newWorld(), transport.FaultPlan{
		Seed: 5, Delay: 1500 * time.Millisecond, SlowRanks: []int{slow},
	})
	defer slowFab.Close() //nolint:errcheck // test fabric
	ups, streaks := runBucketedQuorumIters(t, slowFab, bounds, density,
		QuorumConfig{Q: p - 1, Timeout: 150 * time.Millisecond}, iters, gradFn)
	for it := 0; it < iters; it++ {
		for r := 0; r < p; r++ {
			want := 0
			if r == slow {
				want = it + 1
			}
			if streaks[r][it] != want {
				t.Fatalf("rank %d iter %d streak %d, want %d", r, it, streaks[r][it], want)
			}
			for i := range ups[0][it] {
				if math.Float32bits(ups[r][it][i]) != math.Float32bits(ups[0][it][i]) {
					t.Fatalf("rank %d iter %d update diverged at %d", r, it, i)
				}
			}
		}
	}
}

// TestQuorumAggregatorResidualConservation pins the conservation law end
// to end through GTopKAggregator: a straggler's selected mass is refunded
// to its residual bit-for-bit (round 2), kept out of that round's global
// update, and rides into the next round's aggregate once the rank
// participates again (round 3).
func TestQuorumAggregatorResidualConservation(t *testing.T) {
	const p, dim, k, slow = 4, 400, 12, 3
	spike := []int32{7, 123, 300}
	// Link 3→0 carries exactly one gather frame per round; StallEvery=2
	// stalls ordinals 1, 3, ... — so the slow rank makes round 1, misses
	// round 2, and makes round 3.
	plan := transport.FaultPlan{
		Seed: 9, StallEvery: 2, StallFor: 1500 * time.Millisecond, SlowRanks: []int{slow},
	}
	inner, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	fab := transport.NewFaultInjector(inner, plan)
	defer fab.Close() //nolint:errcheck // test fabric
	qc := QuorumConfig{Q: p - 1, Timeout: 200 * time.Millisecond}

	grads := func(round, rank int) []float32 {
		g := make([]float32, dim)
		switch round {
		case 0:
			src := prng.New(uint64(100 + rank))
			for i := range g {
				g[i] = float32(src.NormFloat64())
			}
		case 1:
			if rank == slow {
				for i, idx := range spike {
					g[idx] = 500 + 100*float32(i)
				}
			} else {
				src := prng.New(uint64(200 + rank))
				for i := range g {
					g[i] = float32(src.NormFloat64())
				}
			}
		}
		return g // round 2: all zeros — only residual mass competes
	}

	updates := make([][3][]float32, p)  // per rank, per round dense update
	streaks := make([][3]int, p)        // per rank, per round miss streak
	var slowResidualBefore []float32    // slow rank residual entering round 2
	var slowResidualAfter []float32     // ... and leaving it
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			agg, err := NewGTopKAggregator(collective.New(fab.Conn(r)), dim, k)
			if err != nil {
				errs[r] = err
				return
			}
			if err := agg.SetQuorum(qc); err != nil {
				errs[r] = err
				return
			}
			for round := 0; round < 3; round++ {
				if round == 2 {
					// Let the stalled round-2 frame drain off the 3→0 link
					// before round 3 opens: the link is FIFO, so the round-3
					// frame queues behind it and would otherwise inherit the
					// stall (head-of-line blocking — realistic, but not what
					// this round is pinning).
					time.Sleep(plan.StallFor + 500*time.Millisecond)
				}
				if r == slow && round == 1 {
					slowResidualBefore = append([]float32(nil), agg.Sparsifier().Residual()...)
				}
				up, err := agg.Aggregate(context.Background(), grads(round, r))
				if err != nil {
					errs[r] = fmt.Errorf("round %d: %w", round, err)
					return
				}
				updates[r][round] = append([]float32(nil), up...)
				streaks[r][round] = agg.QuorumMissStreak()
				if r == slow && round == 1 {
					slowResidualAfter = append([]float32(nil), agg.Sparsifier().Residual()...)
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}

	// Round 1: everyone made it.
	for r := 0; r < p; r++ {
		if streaks[r][0] != 0 {
			t.Fatalf("rank %d round 1 streak %d, want 0", r, streaks[r][0])
		}
	}
	// Round 2: the straggler missed; everyone else participated; all
	// ranks (the straggler included) applied the identical update, which
	// excludes the straggler's spike.
	if streaks[slow][1] != 1 {
		t.Fatalf("slow rank round 2 streak %d, want 1", streaks[slow][1])
	}
	for r := 0; r < p; r++ {
		if r != slow && streaks[r][1] != 0 {
			t.Fatalf("rank %d round 2 streak %d, want 0", r, streaks[r][1])
		}
		for i := range updates[0][1] {
			if math.Float32bits(updates[r][1][i]) != math.Float32bits(updates[0][1][i]) {
				t.Fatalf("rank %d round 2 update diverged at %d", r, i)
			}
		}
		for _, idx := range spike {
			if updates[r][1][idx] != 0 {
				t.Fatalf("rank %d round 2 update carries the straggler's spike at %d", r, idx)
			}
		}
	}
	// Conservation, bit-for-bit: the straggler's residual after the
	// missed round is exactly residual-before + gradient — selection
	// extracted the top-k and Refund put the identical floats back.
	slowGrad := grads(1, slow)
	for i := range slowResidualAfter {
		want := slowResidualBefore[i] + slowGrad[i]
		if math.Float32bits(slowResidualAfter[i]) != math.Float32bits(want) {
			t.Fatalf("slow residual[%d] = %x, want %x (no mass may be lost)",
				i, math.Float32bits(slowResidualAfter[i]), math.Float32bits(want))
		}
	}
	// Round 3: the refunded spike dominates the straggler's selection and
	// enters the global aggregate — deferred, not lost.
	if streaks[slow][2] != 0 {
		t.Fatalf("slow rank round 3 streak %d, want 0", streaks[slow][2])
	}
	for _, idx := range spike {
		if updates[0][2][idx] == 0 {
			t.Fatalf("round 3 update missing the refunded spike at %d", idx)
		}
	}
	for r := 1; r < p; r++ {
		for i := range updates[0][2] {
			if math.Float32bits(updates[r][2][i]) != math.Float32bits(updates[0][2][i]) {
				t.Fatalf("rank %d round 3 update diverged at %d", r, i)
			}
		}
	}
}
