package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// spmd runs body on every rank over a fresh in-process fabric.
func spmd(t *testing.T, p int, body func(c *collective.Comm) error) {
	t.Helper()
	f, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = body(collective.New(f.Conn(rank)))
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// makeWorkerVectors builds deterministic per-rank sparse top-k vectors
// from per-rank dense gradients, returning both.
func makeWorkerVectors(seed uint64, p, dim, k int) ([][]float32, []*sparse.Vector) {
	dense := make([][]float32, p)
	vecs := make([]*sparse.Vector, p)
	for r := 0; r < p; r++ {
		src := prng.New(seed + uint64(r)*1000)
		g := make([]float32, dim)
		for i := range g {
			g[i] = float32(src.NormFloat64())
		}
		dense[r] = g
		vecs[r] = sparse.TopK(g, k)
	}
	return dense, vecs
}

func TestTopKAllReduceEqualsSequentialSum(t *testing.T) {
	const p, dim, k = 4, 200, 10
	_, vecs := makeWorkerVectors(11, p, dim, k)
	want := make([]float32, dim)
	for _, v := range vecs {
		v.ScatterAdd(want)
	}
	spmd(t, p, func(c *collective.Comm) error {
		got, err := TopKAllReduce(context.Background(), c, vecs[c.Rank()].Clone())
		if err != nil {
			return err
		}
		gd := got.Dense()
		for i := range want {
			if math.Abs(float64(gd[i]-want[i])) > 1e-5 {
				return fmt.Errorf("elem %d: got %v want %v", i, gd[i], want[i])
			}
		}
		return nil
	})
}

func TestGTopKAllReduceBasicInvariants(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			const dim, k = 300, 12
			_, vecs := makeWorkerVectors(uint64(p), p, dim, k)

			results := make([]*sparse.Vector, p)
			var mu sync.Mutex
			spmd(t, p, func(c *collective.Comm) error {
				got, err := GTopKAllReduce(context.Background(), c, vecs[c.Rank()].Clone(), k)
				if err != nil {
					return err
				}
				if got.NNZ() > k {
					return fmt.Errorf("result has %d > k=%d entries", got.NNZ(), k)
				}
				if err := got.Validate(); err != nil {
					return err
				}
				mu.Lock()
				results[c.Rank()] = got
				mu.Unlock()
				return nil
			})
			// All ranks must hold the identical global selection.
			for r := 1; r < p; r++ {
				if results[r].NNZ() != results[0].NNZ() {
					t.Fatalf("rank %d nnz %d != rank 0 nnz %d", r, results[r].NNZ(), results[0].NNZ())
				}
				for i := range results[0].Indices {
					if results[r].Indices[i] != results[0].Indices[i] ||
						results[r].Values[i] != results[0].Values[i] {
						t.Fatalf("rank %d diverged at entry %d", r, i)
					}
				}
			}
		})
	}
}

func TestGTopKAllReduceTwoWorkersEqualsNaive(t *testing.T) {
	// With P=2 the tree is a single merge, which is exactly the naive
	// definition: top-k of the sum of both sparse vectors.
	const dim, k = 120, 9
	_, vecs := makeWorkerVectors(77, 2, dim, k)

	sum, err := sparse.Add(vecs[0], vecs[1])
	if err != nil {
		t.Fatal(err)
	}
	want := sparse.TopKSparse(sum, k)

	spmd(t, 2, func(c *collective.Comm) error {
		got, err := GTopKAllReduce(context.Background(), c, vecs[c.Rank()].Clone(), k)
		if err != nil {
			return err
		}
		if got.NNZ() != want.NNZ() {
			return fmt.Errorf("nnz %d, want %d", got.NNZ(), want.NNZ())
		}
		for i := range want.Indices {
			if got.Indices[i] != want.Indices[i] || got.Values[i] != want.Values[i] {
				return fmt.Errorf("entry %d: (%d,%v) want (%d,%v)",
					i, got.Indices[i], got.Values[i], want.Indices[i], want.Values[i])
			}
		}
		return nil
	})
}

func TestGTopKAllReduceIdenticalSupports(t *testing.T) {
	// When every worker selects the SAME indices, the tree introduces no
	// approximation: result must equal the global top-k of the exact sum.
	const p, dim, k = 8, 100, 6
	base := prng.New(5)
	indices := []int32{3, 17, 42, 55, 80, 99}
	vecs := make([]*sparse.Vector, p)
	sumDense := make([]float32, dim)
	for r := 0; r < p; r++ {
		v := &sparse.Vector{Dim: dim, Indices: append([]int32(nil), indices...), Values: make([]float32, k)}
		for i := range v.Values {
			v.Values[i] = float32(base.NormFloat64())
			sumDense[v.Indices[i]] += v.Values[i]
		}
		vecs[r] = v
	}
	want := sparse.TopK(sumDense, k)
	spmd(t, p, func(c *collective.Comm) error {
		got, err := GTopKAllReduce(context.Background(), c, vecs[c.Rank()].Clone(), k)
		if err != nil {
			return err
		}
		if got.NNZ() != want.NNZ() {
			return fmt.Errorf("nnz %d want %d", got.NNZ(), want.NNZ())
		}
		for i := range want.Indices {
			if got.Indices[i] != want.Indices[i] {
				return fmt.Errorf("index %d: %d want %d", i, got.Indices[i], want.Indices[i])
			}
			if math.Abs(float64(got.Values[i]-want.Values[i])) > 1e-5 {
				return fmt.Errorf("value %d: %v want %v", i, got.Values[i], want.Values[i])
			}
		}
		return nil
	})
}

// serialTreeMerge folds worker vectors with the exact binomial schedule
// GTopKAllReduce uses, serving as the single-threaded reference for
// non-power-of-two worlds.
func serialTreeMerge(t *testing.T, vecs []*sparse.Vector, k int) *sparse.Vector {
	t.Helper()
	cur := make([]*sparse.Vector, len(vecs))
	for i, v := range vecs {
		cur[i] = v.Clone()
	}
	p := len(vecs)
	for stride := 1; stride < p; stride *= 2 {
		for r := 0; r+stride < p; r += 2 * stride {
			merged, err := sparse.Merge(cur[r], cur[r+stride], k)
			if err != nil {
				t.Fatal(err)
			}
			cur[r] = merged
		}
	}
	return cur[0]
}

// TestGTopKAllReduceNonPow2Worlds: the generalised tree must work at any
// world size — the sizes an elastic job shrinks through (3, 5, 6, 7) —
// and agree bit-for-bit with a serial execution of the same schedule.
func TestGTopKAllReduceNonPow2Worlds(t *testing.T) {
	const dim, k = 120, 6
	for _, p := range []int{1, 3, 5, 6, 7} {
		_, vecs := makeWorkerVectors(uint64(40+p), p, dim, k)
		want := serialTreeMerge(t, vecs, k)
		spmd(t, p, func(c *collective.Comm) error {
			got, err := GTopKAllReduce(context.Background(), c, vecs[c.Rank()].Clone(), k)
			if err != nil {
				return err
			}
			if got.NNZ() != want.NNZ() {
				return fmt.Errorf("p=%d: nnz %d want %d", p, got.NNZ(), want.NNZ())
			}
			for i := range want.Indices {
				if got.Indices[i] != want.Indices[i] || got.Values[i] != want.Values[i] {
					return fmt.Errorf("p=%d entry %d: (%d,%v) want (%d,%v)", p, i,
						got.Indices[i], got.Values[i], want.Indices[i], want.Values[i])
				}
			}
			return nil
		})
	}
}

func TestNaiveGTopKAllReduceMatchesGlobalTopK(t *testing.T) {
	const p, dim, k = 4, 150, 8
	_, vecs := makeWorkerVectors(99, p, dim, k)
	sumDense := make([]float32, dim)
	for _, v := range vecs {
		v.ScatterAdd(sumDense)
	}
	want := sparse.TopK(sumDense, k)
	spmd(t, p, func(c *collective.Comm) error {
		got, err := NaiveGTopKAllReduce(context.Background(), c, vecs[c.Rank()].Clone(), k)
		if err != nil {
			return err
		}
		if got.NNZ() != want.NNZ() {
			return fmt.Errorf("nnz %d want %d", got.NNZ(), want.NNZ())
		}
		for i := range want.Indices {
			if got.Indices[i] != want.Indices[i] {
				return fmt.Errorf("idx %d: %d want %d", i, got.Indices[i], want.Indices[i])
			}
			if math.Abs(float64(got.Values[i]-want.Values[i])) > 1e-5 {
				return fmt.Errorf("val %d: %v want %v", i, got.Values[i], want.Values[i])
			}
		}
		return nil
	})
}

func TestGTopKCommunicationCostMatchesEq7(t *testing.T) {
	// Attach a clock and confirm the charged time approximates
	// 2*logP*alpha + 4k*logP*beta (the broadcast payload carries a small
	// constant header overhead, hence the tolerance).
	const p, dim, k = 8, 100000, 100
	model := netsim.Paper1GbE()
	want := model.GTopKAllReduce(p, k)
	_, vecs := makeWorkerVectors(123, p, dim, k)

	f, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	times := make([]time.Duration, p)
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var clock netsim.Clock
			c := collective.New(f.Conn(rank)).WithClock(&clock, model)
			_, err := GTopKAllReduce(context.Background(), c, vecs[rank].Clone(), k)
			errs[rank] = err
			times[rank] = clock.Now()
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for rank, got := range times {
		ratio := float64(got) / float64(want)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("rank %d: charged %v, Eq.7 predicts %v (ratio %.3f)", rank, got, want, ratio)
		}
	}
}

// Property: for random worker vectors the tree result always has <= k
// entries, validates, and is identical across ranks.
func TestQuickGTopKAgreement(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		const p, dim = 4, 80
		k := int(kRaw%12) + 1
		_, vecs := makeWorkerVectors(seed, p, dim, k)

		fab, err := transport.NewInProc(p)
		if err != nil {
			return false
		}
		defer fab.Close()
		results := make([]*sparse.Vector, p)
		errsCh := make(chan error, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				got, err := GTopKAllReduce(context.Background(), collective.New(fab.Conn(rank)), vecs[rank].Clone(), k)
				if err != nil {
					errsCh <- err
					return
				}
				results[rank] = got
			}(r)
		}
		wg.Wait()
		close(errsCh)
		if err := <-errsCh; err != nil {
			return false
		}
		for r := 0; r < p; r++ {
			if results[r].NNZ() > k || results[r].Validate() != nil {
				return false
			}
			if results[r].NNZ() != results[0].NNZ() {
				return false
			}
			for i := range results[0].Indices {
				if results[r].Indices[i] != results[0].Indices[i] ||
					results[r].Values[i] != results[0].Values[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
