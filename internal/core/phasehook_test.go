package core

import (
	"context"
	"testing"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/transport"
)

func TestPhaseHookReceivesEveryIteration(t *testing.T) {
	f, err := transport.NewInProc(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	agg := NewDenseAggregator(collective.New(f.Conn(0)), 8)
	tr, err := NewTrainer(TrainConfig{LR: 0.1, Momentum: 0.9}, agg, make([]float32, 8),
		func(_ int, _, grad []float32) float64 {
			time.Sleep(time.Millisecond) // make compute measurable
			grad[0] = 1
			return 0
		})
	if err != nil {
		t.Fatal(err)
	}
	var (
		iters  []int
		phases []PhaseTimes
	)
	tr.SetPhaseHook(func(iter int, pt PhaseTimes) {
		iters = append(iters, iter)
		phases = append(phases, pt)
	})
	const steps = 5
	for s := 0; s < steps; s++ {
		if _, err := tr.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if len(iters) != steps {
		t.Fatalf("hook fired %d times, want %d", len(iters), steps)
	}
	for s, it := range iters {
		if it != s {
			t.Fatalf("hook iter %d at position %d", it, s)
		}
	}
	for s, pt := range phases {
		if pt.Compute < time.Millisecond/2 {
			t.Fatalf("step %d: compute %v implausibly small", s, pt.Compute)
		}
		if pt.Compute+pt.Aggregate+pt.Update <= 0 {
			t.Fatalf("step %d: zero total phase time", s)
		}
	}
	// Removing the hook stops deliveries.
	tr.SetPhaseHook(nil)
	if _, err := tr.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(iters) != steps {
		t.Fatal("hook fired after removal")
	}
}
