// Package core implements the paper's contribution: the gTop-k
// sparsification mechanism, the gTopKAllReduce collective (Algorithm 3),
// the TopKAllReduce baseline (Algorithm 1 lines 12-21), and the four
// distributed S-SGD variants built on them (dense S-SGD, Top-k S-SGD,
// naive gTop-k S-SGD of Algorithm 2, and gTop-k S-SGD of Algorithm 4).
package core

import (
	"fmt"

	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/tensor"
)

// Sparsifier owns one worker's gradient residual (error-feedback) buffer
// and performs the local selection steps of Algorithms 1/2/4:
//
//	G^g_i   = G^g_{i-1} + ∇L(W_i, D^g_i)   (accumulate into residual)
//	thr     = k-th largest |G^g_i|
//	G̃^g_i  = G^g_i ⊙ Mask                  (selected top-k)
//	G^g_i   = G^g_i ⊙ ¬Mask                 (keep the rest as residual)
type Sparsifier struct {
	dim      int
	residual []float32
	// sel, when non-nil, runs the top-k selection in parallel over
	// per-core shards (bit-identical to the serial path; see SetShards).
	sel *sparse.ShardSelector
}

// NewSparsifier creates a sparsifier for a dim-parameter model with a
// zeroed residual (Algorithm 1 line 1: G^g_0 = 0) and serial selection.
func NewSparsifier(dim int) *Sparsifier {
	return &Sparsifier{dim: dim, residual: make([]float32, dim)}
}

// SetShards configures the local top-k selection — the T_sparsify term
// of the paper's iteration model — to run over n parallel shards:
// 1 restores the serial path, 0 selects one shard per schedulable core
// (GOMAXPROCS). The selection result is bit-identical for every shard
// count; only the wall time changes.
func (s *Sparsifier) SetShards(n int) {
	if n == 1 {
		s.sel = nil
		return
	}
	s.sel = sparse.NewShardSelector(n)
}

// Dim returns the dense gradient dimension.
func (s *Sparsifier) Dim() int { return s.dim }

// Residual exposes the residual buffer (read-only by convention; tests
// use it to verify mass conservation).
func (s *Sparsifier) Residual() []float32 { return s.residual }

// ResidualNorm returns the L2 norm of the residual, a convergence
// diagnostic ("how much gradient signal is still waiting locally").
func (s *Sparsifier) ResidualNorm() float64 { return tensor.L2Norm(s.residual) }

// Select accumulates grad into the residual, extracts the k
// largest-magnitude entries as a sparse vector, and leaves everything
// else in the residual. The returned vector aliases no internal state.
func (s *Sparsifier) Select(grad []float32, k int) (*sparse.Vector, error) {
	if len(grad) != s.dim {
		return nil, fmt.Errorf("core: gradient dim %d, sparsifier dim %d", len(grad), s.dim)
	}
	if k < 0 || k > s.dim {
		return nil, fmt.Errorf("core: k=%d out of range [0,%d]", k, s.dim)
	}
	tensor.AddInto(s.residual, grad)
	selected := &sparse.Vector{}
	if s.sel != nil {
		s.sel.TopKInto(selected, s.residual, k)
	} else {
		sparse.TopKInto(selected, s.residual, k)
	}
	for _, idx := range selected.Indices {
		s.residual[idx] = 0
	}
	return selected, nil
}

// PutBack re-deposits entries of local that did NOT survive the global
// selection (Algorithm 4 line 10: G^g_i += G̃^g_i ⊙ ¬gMask ⊙ Mask).
// globalIndices are the dense indices that survived; they must be sorted
// ascending (as produced by every constructor in package sparse).
func (s *Sparsifier) PutBack(local *sparse.Vector, globalIndices []int32) {
	j := 0
	for i, idx := range local.Indices {
		for j < len(globalIndices) && globalIndices[j] < idx {
			j++
		}
		if j < len(globalIndices) && globalIndices[j] == idx {
			continue // survived globally: consumed by the update
		}
		s.residual[idx] += local.Values[i]
	}
}

// FoldError re-deposits per-entry compression error into the residual:
// for each selected index, orig holds the value the sparsifier selected
// and sent the value the wire transform actually shipped (the
// quantization lattice point every replica decoded), so the residual
// absorbs orig−sent and no gradient mass is lost to the value codec —
// the same error-feedback identity the selection step maintains,
// extended to the compound pipeline's transform stage. Call it before
// PutBack: for an index the global selection then drops, PutBack adds
// the sent value on top, restoring exactly the original mass.
func (s *Sparsifier) FoldError(indices []int32, orig, sent []float32) {
	for i, idx := range indices {
		s.residual[idx] += orig[i] - sent[i]
	}
}

// Refund re-deposits whole selected values into the residual — the
// straggler half of the quorum-round conservation argument: a rank
// whose frame missed the round's deadline contributed nothing to the
// aggregate, so its entire selected mass (the pre-transform values)
// returns to the residual and rides into a later round. Call it INSTEAD
// of FoldError+PutBack for a missed round; the applied update is built
// purely from the other ranks' contributions.
func (s *Sparsifier) Refund(indices []int32, values []float32) {
	for i, idx := range indices {
		s.residual[idx] += values[i]
	}
}

// RestoreResidual overwrites the residual from a checkpoint.
func (s *Sparsifier) RestoreResidual(residual []float32) error {
	if len(residual) != s.dim {
		return fmt.Errorf("core: restore residual dim %d, want %d", len(residual), s.dim)
	}
	copy(s.residual, residual)
	return nil
}

// Reset zeroes the residual (used between experiment repetitions).
func (s *Sparsifier) Reset() {
	for i := range s.residual {
		s.residual[i] = 0
	}
}

// DensityToK converts a density ρ into the per-worker selection count
// k = ρ·m, clamped to [1, m] (the paper always selects at least one
// gradient; ρ=0.001 on small test models must not round down to zero).
func DensityToK(dim int, density float64) int {
	k := int(density * float64(dim))
	if k < 1 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	return k
}
