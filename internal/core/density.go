package core

import (
	"fmt"
	"math"

	"gtopkssgd/internal/prng"
)

// ControlLag is the number of rounds a DensityController's feedback
// trails the round it steers: the k for round r is a function of the
// AGREED wire observations through round r−ControlLag only. One round
// of slack beyond the minimum means a rank whose tally for the previous
// round is still in flight (a straggler finishing its bucket late)
// computes the identical schedule as an up-to-date rank — replicas must
// agree on k or their selections, and therefore their models, diverge.
const ControlLag = 2

// densityFactorMin/Max clamp the per-round multiplicative step of the
// control law, keeping the schedule stable against one-round spikes in
// the observed frame sizes (varint widths shift with the support).
const (
	densityFactorMin = 0.75
	densityFactorMax = 1.25
)

// DensityController adapts a bucket's selection count k toward a
// wire-byte budget, DGC-style: after each aggregation round the bucket
// records the round's agreed raw-vs-encoded byte sizes (derived from
// the bit-identical global result, NOT from a rank's local WireTally —
// tree roles make local tallies differ across ranks), and the
// controller multiplies k by clamp(budget/observed, 0.75, 1.25) with
// seeded stochastic rounding. The schedule is a pure function of
// (seed, k0, budget, observations): two replicas feeding it the same
// observation trace produce bit-identical per-round k, which the
// seeded determinism test pins.
type DensityController struct {
	seed       uint64
	budget     int64
	k0         int
	kMin, kMax int
	obs        map[int]wireObs
	memo       []int
}

// wireObs is one round's agreed byte observation.
type wireObs struct {
	raw, wire int64
}

// NewDensityController creates a controller that starts at k0 entries
// per round and steers the encoded frame size toward budgetBytes,
// keeping k within [kMin, kMax]. The seed drives the stochastic
// rounding of fractional k targets; every replica must use the same
// seed (mix the bucket index in, not the rank).
func NewDensityController(k0, kMin, kMax int, budgetBytes int64, seed uint64) (*DensityController, error) {
	if kMin < 1 || kMax < kMin || k0 < kMin || k0 > kMax {
		return nil, fmt.Errorf("core: density controller k0=%d bounds [%d,%d] invalid", k0, kMin, kMax)
	}
	if budgetBytes < 1 {
		return nil, fmt.Errorf("core: density controller budget %d bytes; need >= 1", budgetBytes)
	}
	return &DensityController{
		seed:   seed,
		budget: budgetBytes,
		k0:     k0,
		kMin:   kMin,
		kMax:   kMax,
		obs:    make(map[int]wireObs),
	}, nil
}

// Observe records round r's agreed byte sizes: rawBytes the flat
// v1-equivalent size of the round's global result, wireBytes its size
// under the active codec. Both must be derived from replica-agreed
// state (the global vector every rank holds bit-identically), so every
// replica records identical observations. Record round r before asking
// for KFor(r + ControlLag); later rounds ignore missing observations by
// carrying the previous k.
func (c *DensityController) Observe(r int, rawBytes, wireBytes int64) {
	if r >= 0 {
		c.obs[r] = wireObs{raw: rawBytes, wire: wireBytes}
	}
}

// KFor returns the selection count for round r (r < 0 is treated as 0).
// Memoized: the full schedule up to r is computed on first use, so the
// cost of T rounds is O(T) total.
func (c *DensityController) KFor(r int) int {
	if r < 0 {
		r = 0
	}
	for len(c.memo) <= r {
		c.memo = append(c.memo, c.next(len(c.memo)))
	}
	return c.memo[r]
}

// next computes round r's k from round r−1's k and the observation of
// round r−ControlLag. Rounds with no usable observation (warmup, or a
// round whose Observe never happened) carry the previous k unchanged.
func (c *DensityController) next(r int) int {
	if r == 0 {
		return c.k0
	}
	prev := c.memo[r-1]
	o, ok := c.obs[r-ControlLag]
	if r < ControlLag || !ok || o.wire <= 0 {
		return prev
	}
	factor := float64(c.budget) / float64(o.wire)
	if factor < densityFactorMin {
		factor = densityFactorMin
	}
	if factor > densityFactorMax {
		factor = densityFactorMax
	}
	target := float64(prev) * factor
	k := int(math.Floor(target))
	// Seeded stochastic rounding keeps the EXPECTED k on target while
	// staying a pure function of (seed, r) — no shared rng state to
	// desynchronize concurrently stepping buckets.
	if prng.New(c.seed^mixRound(r)).Float64() < target-float64(k) {
		k++
	}
	if k < c.kMin {
		k = c.kMin
	}
	if k > c.kMax {
		k = c.kMax
	}
	return k
}

// mixRound spreads a round number across 64 bits (splitmix64 finalizer)
// before it perturbs the controller seed.
func mixRound(r int) uint64 {
	z := uint64(r) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
