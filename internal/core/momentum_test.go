package core

import (
	"context"
	"testing"

	"gtopkssgd/internal/collective"
)

// TestMomentumCorrectionStabilisesSparseTraining reproduces the failure
// mode that motivates DGC-style momentum correction: global momentum on
// sparse aggregated updates amplifies the spiky, residual-accumulated
// coordinates, while local (pre-selection) momentum stays stable.
func TestMomentumCorrectionStabilisesSparseTraining(t *testing.T) {
	// LR chosen so the corrected run is stable: with k=3/64 a coordinate
	// waits ~21 steps and momentum contributes ~10x, so lr must stay
	// well under 2/(21*10) ≈ 0.01.
	const dim, p, steps, k = 64, 4, 600, 3
	target := makeTarget(dim)

	run := func(corrected bool) float64 {
		results, err := RunCluster(context.Background(), ClusterConfig{Workers: p, Steps: steps},
			func(rank int, comm *collective.Comm) (*Trainer, error) {
				agg, err := NewGTopKAggregator(comm, dim, k)
				if err != nil {
					return nil, err
				}
				cfg := TrainConfig{LR: 0.004, Momentum: 0.9}
				if corrected {
					agg.SetMomentumCorrection(0.9)
					cfg.Momentum = 0
				}
				return NewTrainer(cfg, agg, make([]float32, dim), quadGrad(target, uint64(rank)))
			})
		if err != nil {
			t.Fatal(err)
		}
		// Mean of the last 20 losses (robust to single-step spikes).
		var s float64
		for _, l := range results[0].Losses[steps-20:] {
			s += l
		}
		return s / 20
	}

	// In the stable-LR regime both variants converge to the same basin;
	// the correction's advantage appears at aggressive LRs on real models
	// (exercised by the bench experiments). Here we assert the corrected
	// variant converges and is never materially worse.
	corrected := run(true)
	uncorrected := run(false)
	if corrected > 2*uncorrected+1e-6 {
		t.Fatalf("momentum correction materially worse: corrected %v vs global-momentum %v",
			corrected, uncorrected)
	}
	first := quadFirstLoss(t, target)
	if corrected > first/3 {
		t.Fatalf("corrected run failed to converge: %v (initial %v)", corrected, first)
	}
}

func quadFirstLoss(t *testing.T, target []float32) float64 {
	t.Helper()
	grad := make([]float32, len(target))
	return quadGrad(target, 0)(0, make([]float32, len(target)), grad)
}

func TestMomentumCorrectionReplicasConsistent(t *testing.T) {
	const dim, p, steps = 32, 4, 50
	target := makeTarget(dim)
	results, err := RunCluster(context.Background(), ClusterConfig{Workers: p, Steps: steps},
		func(rank int, comm *collective.Comm) (*Trainer, error) {
			agg, err := NewTopKAggregator(comm, dim, 4)
			if err != nil {
				return nil, err
			}
			agg.SetMomentumCorrection(0.9)
			return NewTrainer(TrainConfig{LR: 0.05}, agg, make([]float32, dim),
				quadGrad(target, uint64(rank)))
		})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < p; r++ {
		for i := range results[0].FinalWeights {
			if results[r].FinalWeights[i] != results[0].FinalWeights[i] {
				t.Fatalf("replica %d diverged at %d", r, i)
			}
		}
	}
}
