package core

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// TestVerdictRetryPolicyBackoffClamp pins the backoff floor: the natural
// backoff is a quarter of the deadline, but sub-4ns test deadlines used
// to truncate it to zero and turn the bounded retry loop into a hot spin
// against the fabric.
func TestVerdictRetryPolicyBackoffClamp(t *testing.T) {
	for _, tc := range []struct {
		deadline, want time.Duration
	}{
		{1 * time.Nanosecond, minVerdictBackoff},
		{3 * time.Nanosecond, minVerdictBackoff},
		{100 * time.Microsecond, minVerdictBackoff}, // /4 below the floor
		{4 * time.Second, time.Second},              // /4 above the floor
	} {
		pol := verdictRetryPolicy(tc.deadline)
		if pol.Backoff != tc.want {
			t.Errorf("verdictRetryPolicy(%v).Backoff = %v, want %v", tc.deadline, pol.Backoff, tc.want)
		}
		if pol.Timeout != 2*tc.deadline || pol.Attempts != verdictAttempts {
			t.Errorf("verdictRetryPolicy(%v) = %+v, want timeout %v attempts %d",
				tc.deadline, pol, 2*tc.deadline, verdictAttempts)
		}
	}
}

// TestDecodeVerdictRejectsMalformed pins the verdict-frame hardening:
// the missed-set derivation walks the participant list with a
// sorted-merge pointer, so a list that is not strictly ascending inside
// [0, P) must be rejected rather than silently yielding a wrong missed
// set.
func TestDecodeVerdictRejectsMalformed(t *testing.T) {
	const p = 8
	v := &sparse.Vector{Dim: 16, Indices: []int32{1, 5}, Values: []float32{2, -3}}
	mk := func(participants []int) []byte {
		return encodeVerdict(sparse.CodecV1, participants, v, 0, nil)
	}

	out := &sparse.Vector{}
	good, err := decodeVerdict(sparse.CodecV1, mk([]int{0, 2, 3, 7}), p, out)
	if err != nil {
		t.Fatalf("canonical verdict rejected: %v", err)
	}
	if fmt.Sprint(good) != "[0 2 3 7]" {
		t.Fatalf("participants %v", good)
	}
	requireBitIdentical(t, "decoded verdict payload", out, v)

	cases := map[string][]byte{
		"truncated":          mk([]int{0, 1, 2})[:3],
		"header past buffer": mk([]int{0, 1})[:10], // claims 2 participants, room for 1
		"duplicate":          mk([]int{0, 2, 2, 5}),
		"descending":         mk([]int{5, 3, 1}),
		"out of range":       mk([]int{0, 3, p}),
	}
	zero := mk([]int{0, 1, 2})
	binary.LittleEndian.PutUint32(zero, 0)
	cases["zero participants"] = zero
	over := mk([]int{0, 1, 2})
	binary.LittleEndian.PutUint32(over, uint32(p+1))
	cases["more than P"] = over
	for name, blob := range cases {
		if _, err := decodeVerdict(sparse.CodecV1, blob, p, &sparse.Vector{}); err == nil {
			t.Errorf("%s verdict accepted", name)
		}
	}
}

// TestQuorumArrivalOrderChaos floods every link with jittered delays so
// gather arrival order is adversarial (but deterministic per seed), and
// pins the invariants the verdict wire format promises regardless of
// WHICH ranks make a round: the participant set is a strictly-ascending
// quorum-or-better subset containing the root, every rank derives the
// identical missed set, and the merge equals the serial position-fold
// over exactly the participants — so replicas agree bit-for-bit even
// when frames raced the deadline in shuffled orders.
func TestQuorumArrivalOrderChaos(t *testing.T) {
	const p, dim, k = 8, 300, 12
	_, vecs := makeWorkerVectors(5150, p, dim, k)
	qc := QuorumConfig{Q: QuorumMin(p), Timeout: 60 * time.Millisecond}

	for _, seed := range []uint64{1, 12, 123} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inner, err := transport.NewInProc(p)
			if err != nil {
				t.Fatal(err)
			}
			// All links afflicted: delays uniform in [0, 80ms] straddle the
			// 60ms deadline, so arrival order — and the participant set —
			// is a pure function of the seed.
			fab := transport.NewFaultInjector(inner, transport.FaultPlan{
				Seed: seed, Delay: 40 * time.Millisecond, Jitter: 1.0,
			})
			defer fab.Close() //nolint:errcheck // test fabric
			outs, parts, missed := runQuorumWorld(t, fab, vecs, k, qc)

			ref := missed[0]
			for i := 1; i < len(ref); i++ {
				if ref[i] <= ref[i-1] {
					t.Fatalf("missed set not strictly ascending: %v", ref)
				}
			}
			if len(ref) > p-qc.Q {
				t.Fatalf("%d ranks missed, but the round may close with at most %d absent", len(ref), p-qc.Q)
			}
			var participants []*sparse.Vector
			for r := 0; r < p; r++ {
				isMissed := rankIn(ref, r)
				if r == quorumRoot && isMissed {
					t.Fatal("root reported missed from its own round")
				}
				if parts[r] == isMissed {
					t.Fatalf("rank %d participated=%v but missed set is %v", r, parts[r], ref)
				}
				if fmt.Sprint(missed[r]) != fmt.Sprint(ref) {
					t.Fatalf("rank %d missed=%v, rank 0 saw %v", r, missed[r], ref)
				}
				if !isMissed {
					participants = append(participants, vecs[r])
				}
			}
			want := serialTreeMerge(t, participants, k)
			for r := 0; r < p; r++ {
				requireBitIdentical(t, fmt.Sprintf("rank %d vs serial fold", r), outs[r], want)
			}
		})
	}
}
