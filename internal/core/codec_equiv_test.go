package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/f16"
	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// runChunkedWire executes GTopKAllReduceInto on every rank of an
// in-process fabric negotiated to the given wire version (with optional
// fp16 values) and returns the per-rank results.
func runChunkedWire(t *testing.T, vecs []*sparse.Vector, k, chunks int, wire byte, fp16 bool) []*sparse.Vector {
	t.Helper()
	p := len(vecs)
	f, err := transport.NewInProcWire(p, wire)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	results := make([]*sparse.Vector, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := collective.New(f.Conn(rank))
			comm.SetFP16Values(fp16)
			out := &sparse.Vector{}
			errs[rank] = GTopKAllReduceInto(context.Background(), comm, vecs[rank].Clone(), k, chunks, out)
			results[rank] = out
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return results
}

// TestGTopKCodecV2BitEquivalence is the codec acceptance test: the
// lossless v2 wire format must produce results bit-identical to v1
// across the full chunk-test matrix — every world size the chunk tests
// cover (including non-powers of two and 16), massive threshold ties,
// and empty supports — at several chunk counts.
func TestGTopKCodecV2BitEquivalence(t *testing.T) {
	const dim, k = 240, 12
	for _, p := range []int{2, 3, 4, 5, 6, 7, 8, 16} {
		for _, mode := range []string{"gauss", "ties", "empty"} {
			var vecs []*sparse.Vector
			switch mode {
			case "gauss":
				_, vecs = makeWorkerVectors(uint64(60+p), p, dim, k)
			case "ties":
				vecs = tieHeavyVectors(uint64(90+p), p, dim, k)
			case "empty":
				_, vecs = makeWorkerVectors(uint64(120+p), p, dim, k)
				for r := 0; r < p; r += 2 {
					vecs[r] = &sparse.Vector{Dim: dim}
				}
			}
			for _, chunks := range []int{1, 3, DefaultChunks} {
				v1 := runChunkedWire(t, vecs, k, chunks, transport.WireV1, false)
				v2 := runChunkedWire(t, vecs, k, chunks, transport.WireV2, false)
				for r := range v1 {
					assertVecEqual(t, fmt.Sprintf("p=%d %s chunks=%d rank %d v2-vs-v1", p, mode, chunks, r),
						v1[r], v2[r])
				}
			}
		}
	}
}

// TestGTopKCodecV2OverTCP runs the collective over real loopback sockets
// with a v2-negotiated mesh and checks bit-equivalence against the v1
// result, plus that the v2 mesh actually moved fewer wire bytes.
func TestGTopKCodecV2OverTCP(t *testing.T) {
	const p, dim, k = 4, 5000, 50
	_, vecs := makeWorkerVectors(7, p, dim, k)
	want := runChunkedWire(t, vecs, k, 3, transport.WireV1, false)

	bytesSent := make([]int64, 2)
	for vi, wire := range []byte{transport.WireV1, transport.WireV2} {
		fab, err := transport.NewTCPWithOptions(p, transport.TCPOptions{WireVersion: wire})
		if err != nil {
			t.Fatal(err)
		}
		results := make([]*sparse.Vector, p)
		errs := make([]error, p)
		comms := make([]*collective.Comm, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			comms[r] = collective.New(fab.Conn(r))
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				out := &sparse.Vector{}
				errs[rank] = GTopKAllReduceInto(context.Background(), comms[rank], vecs[rank].Clone(), k, 3, out)
				results[rank] = out
			}(r)
		}
		wg.Wait()
		for rank, err := range errs {
			if err != nil {
				t.Fatalf("wire v%d rank %d: %v", wire, rank, err)
			}
		}
		for r := 0; r < p; r++ {
			assertVecEqual(t, fmt.Sprintf("tcp wire v%d rank %d", wire, r), want[r], results[r])
			bytesSent[vi] += comms[r].Stats().BytesSent
		}
		fab.Close() //nolint:errcheck // test teardown
	}
	if bytesSent[1] >= bytesSent[0] {
		t.Errorf("v2 mesh moved %d bytes, v1 moved %d — no compression", bytesSent[1], bytesSent[0])
	}
}

// TestGTopKCodecF16ReplicaAgreement: under the lossy fp16 codec every
// rank must still hold the bit-identical result (the root rounds its own
// copy through the codec before broadcasting), and every surviving value
// must be an fp16-representable number.
func TestGTopKCodecF16ReplicaAgreement(t *testing.T) {
	const dim, k = 300, 15
	for _, p := range []int{2, 3, 4, 5, 8} {
		_, vecs := makeWorkerVectors(uint64(40+p), p, dim, k)
		results := runChunkedWire(t, vecs, k, DefaultChunks, transport.WireV2, true)
		for r := 1; r < p; r++ {
			assertVecEqual(t, fmt.Sprintf("p=%d fp16 rank %d vs rank 0", p, r), results[0], results[r])
		}
		for i, v := range results[0].Values {
			if math.Float32bits(f16.Round(v)) != math.Float32bits(v) {
				t.Fatalf("p=%d: value %d (%v) is not fp16-representable", p, i, v)
			}
		}
		if results[0].NNZ() == 0 {
			t.Fatalf("p=%d: fp16 aggregation lost the whole payload", p)
		}
	}
}

// TestGTopKCodecMixedMeshFallsBack: a mesh where one member offers only
// v1 must settle on v1 frames everywhere and still produce the v1 bits,
// even when other members ask for fp16.
func TestGTopKCodecMixedMeshFallsBack(t *testing.T) {
	const p, dim, k = 3, 240, 12
	_, vecs := makeWorkerVectors(9, p, dim, k)
	want := runChunkedWire(t, vecs, k, 2, transport.WireV1, false)

	// Simulate the negotiated outcome: the fabric settled on v1 while
	// the application still asks for fp16 — the preference must be
	// silently ineffective (v1 has no fp16 mode).
	got := runChunkedWire(t, vecs, k, 2, transport.WireV1, true)
	for r := range want {
		assertVecEqual(t, fmt.Sprintf("mixed mesh rank %d", r), want[r], got[r])
	}
}

// TestGTopKWireTally: the attached tally must observe every outbound
// frame with raw >= wire under v2 and raw == wire under v1.
func TestGTopKWireTally(t *testing.T) {
	const p, dim, k = 4, 2000, 40
	_, vecs := makeWorkerVectors(13, p, dim, k)
	for _, wire := range []byte{transport.WireV1, transport.WireV2} {
		f, err := transport.NewInProcWire(p, wire)
		if err != nil {
			t.Fatal(err)
		}
		tallies := make([]*metrics.WireTally, p)
		errs := make([]error, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			tallies[r] = &metrics.WireTally{}
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				comm := collective.New(f.Conn(rank))
				comm.SetWireTally(tallies[rank])
				out := &sparse.Vector{}
				errs[rank] = GTopKAllReduceInto(context.Background(), comm, vecs[rank].Clone(), k, 2, out)
			}(r)
		}
		wg.Wait()
		f.Close() //nolint:errcheck // test teardown
		for rank, err := range errs {
			if err != nil {
				t.Fatalf("wire v%d rank %d: %v", wire, rank, err)
			}
		}
		var total metrics.WireCounters
		for _, tl := range tallies {
			c := tl.Snapshot()
			total.Frames += c.Frames
			total.RawBytes += c.RawBytes
			total.WireBytes += c.WireBytes
		}
		if total.Frames == 0 {
			t.Fatalf("wire v%d: tally observed no frames", wire)
		}
		switch wire {
		case transport.WireV1:
			if total.RawBytes != total.WireBytes {
				t.Errorf("v1 tally: raw %d != wire %d", total.RawBytes, total.WireBytes)
			}
		case transport.WireV2:
			if total.WireBytes >= total.RawBytes {
				t.Errorf("v2 tally: wire %d not below raw %d", total.WireBytes, total.RawBytes)
			}
		}
	}
}
