package core

import (
	"context"
	"fmt"
	"testing"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/prng"
)

// densityTrace builds a deterministic observation trace: per-round
// (raw, wire) byte pairs wobbling around the budget so the control law
// keeps producing fractional targets (the stochastic rounding is what
// the determinism tests must exercise).
func densityTrace(seed uint64, rounds int, budget int64) [][2]int64 {
	rng := prng.New(seed)
	trace := make([][2]int64, rounds)
	for r := range trace {
		wire := budget/2 + int64(rng.Intn(int(budget)))
		trace[r] = [2]int64{wire * 3, wire}
	}
	return trace
}

// TestDensityControllerSeededDeterminism: two controllers with the same
// (seed, k0, budget) fed the identical observation trace must produce
// the bit-identical per-round k schedule — the replica-agreement
// property the bucketed aggregator's adaptive density stands on — while
// a controller with a different seed must diverge somewhere (the
// stochastic rounding really is seeded, not constant).
func TestDensityControllerSeededDeterminism(t *testing.T) {
	const rounds, k0, kMax = 200, 64, 4096
	const budget = 1000
	mk := func(seed uint64) *DensityController {
		dc, err := NewDensityController(k0, 1, kMax, budget, seed)
		if err != nil {
			t.Fatal(err)
		}
		return dc
	}
	a, b, other := mk(42), mk(42), mk(43)
	trace := densityTrace(7, rounds, budget)
	diverged := false
	for r := 0; r < rounds; r++ {
		ka, kb, ko := a.KFor(r), b.KFor(r), other.KFor(r)
		if ka != kb {
			t.Fatalf("round %d: same seed disagrees: %d vs %d", r, ka, kb)
		}
		if ka != ko {
			diverged = true
		}
		a.Observe(r, trace[r][0], trace[r][1])
		b.Observe(r, trace[r][0], trace[r][1])
		other.Observe(r, trace[r][0], trace[r][1])
	}
	if !diverged {
		t.Fatalf("different seeds never diverged over %d rounds — rounding is not seeded", rounds)
	}
}

// TestDensityControllerLaggingObserver is the chaos variant: a rank
// whose tally trails one full round behind (it records round r−1's
// observation only after computing round r's k) must still produce the
// identical schedule — ControlLag keeps one round of slack beyond the
// minimum exactly for this.
func TestDensityControllerLaggingObserver(t *testing.T) {
	const rounds, k0, kMax = 150, 32, 2048
	const budget = 800
	mk := func() *DensityController {
		dc, err := NewDensityController(k0, 1, kMax, budget, 9)
		if err != nil {
			t.Fatal(err)
		}
		return dc
	}
	prompt, laggard := mk(), mk()
	trace := densityTrace(11, rounds, budget)
	for r := 0; r < rounds; r++ {
		kp, kl := prompt.KFor(r), laggard.KFor(r)
		if kp != kl {
			t.Fatalf("round %d: laggard k=%d, prompt k=%d — lagging tally broke agreement", r, kl, kp)
		}
		prompt.Observe(r, trace[r][0], trace[r][1])
		if r >= 1 {
			laggard.Observe(r-1, trace[r-1][0], trace[r-1][1])
		}
	}
}

// TestDensityControllerCarryAndClamp pins the control law's edges: no
// observations carry k0 forever; a starved budget walks k down by at
// most ×0.75 per round to kMin; an oversized budget walks it up by at
// most ×1.25 to kMax; bad configurations are rejected.
func TestDensityControllerCarryAndClamp(t *testing.T) {
	dc, err := NewDensityController(50, 1, 1000, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 20; r++ {
		if k := dc.KFor(r); k != 50 {
			t.Fatalf("round %d with no observations: k=%d, want the carried 50", r, k)
		}
	}

	down, err := NewDensityController(1000, 2, 1000, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := down.KFor(0)
	for r := 1; r < 40; r++ {
		down.Observe(r-1, 8000, 4000) // wire far above the 1-byte budget
		k := down.KFor(r)
		if k > prev {
			t.Fatalf("starved budget: k rose %d -> %d at round %d", prev, k, r)
		}
		if lo := int(float64(prev)*densityFactorMin) - 1; k < lo && k != 2 {
			t.Fatalf("round %d: k fell %d -> %d, below the x%.2f clamp", r, prev, k, densityFactorMin)
		}
		prev = k
	}
	if prev != 2 {
		t.Fatalf("starved budget settled at k=%d, want kMin=2", prev)
	}

	up, err := NewDensityController(4, 1, 64, 1<<40, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev = up.KFor(0)
	for r := 1; r < 40; r++ {
		up.Observe(r-1, 64, 32)
		k := up.KFor(r)
		if k < prev {
			t.Fatalf("oversized budget: k fell %d -> %d at round %d", prev, k, r)
		}
		if hi := int(float64(prev)*densityFactorMax) + 1; k > hi {
			t.Fatalf("round %d: k jumped %d -> %d, above the x%.2f clamp", r, prev, k, densityFactorMax)
		}
		prev = k
	}
	if prev != 64 {
		t.Fatalf("oversized budget settled at k=%d, want kMax=64", prev)
	}

	for _, bad := range []struct{ k0, kMin, kMax int }{{0, 1, 10}, {5, 0, 10}, {5, 6, 10}, {20, 1, 10}} {
		if _, err := NewDensityController(bad.k0, bad.kMin, bad.kMax, 100, 1); err == nil {
			t.Fatalf("NewDensityController(%+v) accepted an invalid config", bad)
		}
	}
	if _, err := NewDensityController(5, 1, 10, 0, 1); err == nil {
		t.Fatalf("NewDensityController accepted a zero budget")
	}
}

// TestBucketedAdaptiveDensityReplicaAgreement runs the full bucketed
// pipeline with adaptive density end to end: every rank must produce
// bit-identical updates AND hold the identical per-bucket k schedule
// after every iteration, and a re-run with the same seed must reproduce
// both exactly.
func TestBucketedAdaptiveDensityReplicaAgreement(t *testing.T) {
	const p, dim, iters = 4, 400, 8
	bounds := []int{0, 150, 400}
	stream := gradStream(dim)

	run := func() ([][]float32, [][]int) {
		updates := make([][]float32, iters)
		ks := make([][]int, p)
		spmd(t, p, func(c *collective.Comm) error {
			agg, err := NewBucketedAggregator(c, bounds, 0.05)
			if err != nil {
				return err
			}
			if err := agg.SetAdaptiveDensity(120, 99); err != nil {
				return err
			}
			rankKs := []int{}
			for it := 0; it < iters; it++ {
				upd, err := agg.Aggregate(context.Background(), stream(c.Rank(), it))
				if err != nil {
					return fmt.Errorf("iter %d: %w", it, err)
				}
				rankKs = append(rankKs, agg.BucketKs()...)
				if c.Rank() == 0 {
					updates[it] = append([]float32(nil), upd...)
				}
			}
			ks[c.Rank()] = rankKs
			return nil
		})
		return updates, ks
	}

	upd1, ks1 := run()
	for r := 1; r < p; r++ {
		if len(ks1[r]) != len(ks1[0]) {
			t.Fatalf("rank %d recorded %d ks, rank 0 %d", r, len(ks1[r]), len(ks1[0]))
		}
		for i := range ks1[0] {
			if ks1[r][i] != ks1[0][i] {
				t.Fatalf("rank %d k schedule diverged at %d: %d vs %d", r, i, ks1[r][i], ks1[0][i])
			}
		}
	}
	changed := false
	for i := range ks1[0] {
		if ks1[0][i] != ks1[0][0] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatalf("adaptive density never moved k over %d iterations: %v", iters, ks1[0])
	}

	upd2, ks2 := run()
	requireBitwiseEqual(t, upd1, upd2, "adaptive density re-run")
	for i := range ks1[0] {
		if ks1[0][i] != ks2[0][i] {
			t.Fatalf("re-run k schedule diverged at %d: %d vs %d", i, ks1[0][i], ks2[0][i])
		}
	}

	if err := func() (err error) {
		spmd(t, 1, func(c *collective.Comm) error {
			agg, aerr := NewBucketedAggregator(c, []int{0, 10}, 0.5)
			if aerr != nil {
				return aerr
			}
			err = agg.SetAdaptiveDensity(0, 1)
			return nil
		})
		return err
	}(); err == nil {
		t.Fatalf("SetAdaptiveDensity accepted a zero budget")
	}
}
