package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/transport"
)

// runPipelinedCluster runs the pipelined trainer SPMD-style (RunCluster
// only drives the synchronous Trainer, so the pipeline test wires its
// own goroutines).
func runPipelinedCluster(t *testing.T, p, dim, steps int, lr float32,
	makeAgg func(comm *collective.Comm) (Aggregator, error)) ([][]float32, [][]float64) {
	t.Helper()
	f, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	target := makeTarget(dim)

	weights := make([][]float32, p)
	losses := make([][]float64, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := collective.New(f.Conn(rank))
			agg, err := makeAgg(comm)
			if err != nil {
				errs[rank] = err
				return
			}
			tr, err := NewPipelinedTrainer(TrainConfig{LR: lr}, agg,
				make([]float32, dim), quadGrad(target, uint64(rank)))
			if err != nil {
				errs[rank] = err
				return
			}
			for s := 0; s < steps; s++ {
				loss, err := tr.Step(context.Background())
				if err != nil {
					errs[rank] = err
					return
				}
				losses[rank] = append(losses[rank], loss)
			}
			if err := tr.Flush(); err != nil {
				errs[rank] = err
				return
			}
			weights[rank] = append([]float32(nil), tr.Weights()...)
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return weights, losses
}

func TestPipelinedDenseConverges(t *testing.T) {
	const p, dim, steps = 4, 48, 200
	weights, losses := runPipelinedCluster(t, p, dim, steps, 0.2,
		func(comm *collective.Comm) (Aggregator, error) {
			return NewDenseAggregator(comm, dim), nil
		})
	if losses[0][steps-1] > losses[0][0]/20 {
		t.Fatalf("pipelined dense did not converge: %v -> %v",
			losses[0][0], losses[0][steps-1])
	}
	for r := 1; r < p; r++ {
		for i := range weights[0] {
			if weights[r][i] != weights[0][i] {
				t.Fatalf("pipelined replicas diverged at %d", i)
			}
		}
	}
}

func TestPipelinedGTopKConverges(t *testing.T) {
	const p, dim, steps = 4, 48, 400
	weights, losses := runPipelinedCluster(t, p, dim, steps, 0.05,
		func(comm *collective.Comm) (Aggregator, error) {
			return NewGTopKAggregator(comm, dim, 6)
		})
	if losses[0][steps-1] > losses[0][0]/10 {
		t.Fatalf("pipelined gTop-k did not converge: %v -> %v",
			losses[0][0], losses[0][steps-1])
	}
	for r := 1; r < p; r++ {
		for i := range weights[0] {
			if weights[r][i] != weights[0][i] {
				t.Fatalf("pipelined gTop-k replicas diverged at %d", i)
			}
		}
	}
}

func TestPipelinedMatchesSynchronousUpToStaleness(t *testing.T) {
	// With a constant gradient the pipelined trainer applies exactly one
	// fewer update after n steps (the last one waits in flight) and the
	// same updates otherwise.
	const dim = 1
	f, err := transport.NewInProc(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	constGrad := func(_ int, _, grad []float32) float64 { grad[0] = 1; return 0 }

	sync1, err := NewTrainer(TrainConfig{LR: 0.1},
		NewDenseAggregator(collective.New(f.Conn(0)), dim), make([]float32, dim), constGrad)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sync1.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	f2, err := transport.NewInProc(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	pipe, err := NewPipelinedTrainer(TrainConfig{LR: 0.1},
		NewDenseAggregator(collective.New(f2.Conn(0)), dim), make([]float32, dim), constGrad)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := pipe.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Before Flush: 4 applied updates; after: all 5.
	if got, want := pipe.Weights()[0], float32(-0.4); got != want {
		t.Fatalf("pre-flush weight %v, want %v", got, want)
	}
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := pipe.Weights()[0], sync1.Weights()[0]; got != want {
		t.Fatalf("post-flush weight %v, sync weight %v", got, want)
	}
}

func TestPipelinedFlushIdempotent(t *testing.T) {
	f, err := transport.NewInProc(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pipe, err := NewPipelinedTrainer(TrainConfig{LR: 0.1},
		NewDenseAggregator(collective.New(f.Conn(0)), 1), make([]float32, 1),
		func(_ int, _, grad []float32) float64 { grad[0] = 1; return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Flush(); err != nil {
		t.Fatalf("flush with nothing in flight: %v", err)
	}
	if _, err := pipe.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Flush(); err != nil {
		t.Fatalf("second flush: %v", err)
	}
}

func TestPipelinedPropagatesAggregationErrors(t *testing.T) {
	f, err := transport.NewInProc(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pipe, err := NewPipelinedTrainer(TrainConfig{LR: 0.1},
		failingAggregator{}, make([]float32, 1),
		func(_ int, _, grad []float32) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Step(context.Background()); err != nil {
		t.Fatal(err) // first step only launches the aggregation
	}
	if _, err := pipe.Step(context.Background()); err == nil {
		t.Fatal("aggregation error not surfaced on next step")
	}
}

func TestPipelinedConstructorValidation(t *testing.T) {
	if _, err := NewPipelinedTrainer(TrainConfig{LR: 0}, nil, nil, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewPipelinedTrainer(TrainConfig{LR: 1}, nil, make([]float32, 1), nil); err == nil {
		t.Fatal("nil aggregator accepted")
	}
}

type failingAggregator struct{}

func (failingAggregator) Name() string { return "failing" }
func (failingAggregator) Aggregate(context.Context, []float32) ([]float32, error) {
	return nil, fmt.Errorf("injected failure")
}
