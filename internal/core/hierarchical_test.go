package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// hierOracle replays the hierarchical merge order in-memory: each
// contiguous group of g vectors folds through the binomial-tree schedule
// (exactly what the intra-group flat collective computes), and the
// per-group results fold through the same schedule at the leader level.
func hierOracle(t *testing.T, vecs []*sparse.Vector, k, g int) *sparse.Vector {
	t.Helper()
	var groupRes []*sparse.Vector
	for lo := 0; lo < len(vecs); lo += g {
		hi := lo + g
		if hi > len(vecs) {
			hi = len(vecs)
		}
		groupRes = append(groupRes, serialTreeMerge(t, vecs[lo:hi], k))
	}
	return serialTreeMerge(t, groupRes, k)
}

// runHierarchical executes HierarchicalGTopKAllReduce on every rank of a
// fresh in-process fabric and returns the per-rank results.
func runHierarchical(t *testing.T, vecs []*sparse.Vector, k, g int) []*sparse.Vector {
	t.Helper()
	results := make([]*sparse.Vector, len(vecs))
	var mu sync.Mutex
	spmd(t, len(vecs), func(c *collective.Comm) error {
		out, err := HierarchicalGTopKAllReduce(context.Background(), c, vecs[c.Rank()].Clone(), k, g)
		if err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	return results
}

// TestHierarchicalMatchesOracle pins the two-level semantics: for every
// (P, G) — divisible, non-divisible, tail group of one — and for
// tie-heavy value distributions, every rank returns exactly the
// group-tree-then-leader-tree merge of the inputs.
func TestHierarchicalMatchesOracle(t *testing.T) {
	const dim, k = 240, 12
	for _, p := range []int{4, 6, 8, 9, 16} {
		for _, g := range []int{2, 3, 4, 8} {
			if g >= p {
				continue
			}
			for _, mode := range []string{"gauss", "ties"} {
				var vecs []*sparse.Vector
				if mode == "gauss" {
					_, vecs = makeWorkerVectors(uint64(200+p*10+g), p, dim, k)
				} else {
					vecs = tieHeavyVectors(uint64(300+p*10+g), p, dim, k)
				}
				want := hierOracle(t, vecs, k, g)
				results := runHierarchical(t, vecs, k, g)
				for r, got := range results {
					assertVecEqual(t, fmt.Sprintf("p=%d g=%d %s rank %d", p, g, mode, r), want, got)
				}
			}
		}
	}
}

// TestHierarchicalDegenerateGroupsMatchFlat: G >= P and G = 1 must be
// bit-identical to the flat GTopKAllReduce.
func TestHierarchicalDegenerateGroupsMatchFlat(t *testing.T) {
	const p, dim, k = 8, 240, 12
	_, vecs := makeWorkerVectors(41, p, dim, k)
	flat := runChunked(t, vecs, k, ChunksFor(k))
	for _, g := range []int{1, p, p + 3} {
		results := runHierarchical(t, vecs, k, g)
		for r, got := range results {
			assertVecEqual(t, fmt.Sprintf("g=%d rank %d vs flat", g, r), flat[r], got)
		}
	}
}

// TestHierarchicalOverTCPMatchesInproc runs the hierarchical collective
// over real loopback sockets and requires bit-identity with the
// in-process fabric — the per-fabric determinism pin.
func TestHierarchicalOverTCPMatchesInproc(t *testing.T) {
	const p, g, dim, k = 8, 4, 300, 10
	_, vecs := makeWorkerVectors(17, p, dim, k)
	want := hierOracle(t, vecs, k, g)

	fab, err := transport.NewTCP(p)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	var wg sync.WaitGroup
	errs := make([]error, p)
	results := make([]*sparse.Vector, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			res, err := HierarchicalGTopKAllReduce(context.Background(),
				collective.New(fab.Conn(rank)), vecs[rank].Clone(), k, g)
			errs[rank], results[rank] = err, res
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for r := 0; r < p; r++ {
		assertVecEqual(t, fmt.Sprintf("tcp rank %d", r), want, results[r])
	}
}

// TestHierarchicalLeaderArrivalOrderInvariance staggers rank start times
// (leaders last, then leaders first) and requires the result bits to be
// unaffected — the merge order is fixed by the tree schedules, not by
// who shows up when.
func TestHierarchicalLeaderArrivalOrderInvariance(t *testing.T) {
	const p, g, dim, k = 8, 4, 240, 12
	_, vecs := makeWorkerVectors(59, p, dim, k)
	want := hierOracle(t, vecs, k, g)

	for _, leadersFirst := range []bool{true, false} {
		fab, err := transport.NewInProc(p)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, p)
		results := make([]*sparse.Vector, p)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				isLeader := rank%g == 0
				if isLeader == leadersFirst {
					time.Sleep(time.Duration(1+rank) * time.Millisecond)
				} else {
					time.Sleep(time.Duration(20+rank) * time.Millisecond)
				}
				res, err := HierarchicalGTopKAllReduce(context.Background(),
					collective.New(fab.Conn(rank)), vecs[rank].Clone(), k, g)
				errs[rank], results[rank] = err, res
			}(r)
		}
		wg.Wait()
		fab.Close()
		for rank, err := range errs {
			if err != nil {
				t.Fatalf("leadersFirst=%v rank %d: %v", leadersFirst, rank, err)
			}
		}
		for r := 0; r < p; r++ {
			assertVecEqual(t, fmt.Sprintf("leadersFirst=%v rank %d", leadersFirst, r), want, results[r])
		}
	}
}

// TestHierarchicalFP16ReplicasAgree: under the lossy v2-fp16 codec every
// rank must still hold bit-identical results — the broadcast roots round
// through binary16 before encoding at both levels.
func TestHierarchicalFP16ReplicasAgree(t *testing.T) {
	const p, g, dim, k = 8, 4, 300, 10
	_, vecs := makeWorkerVectors(23, p, dim, k)

	fab, err := transport.NewInProcWire(p, transport.WireV2)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	var wg sync.WaitGroup
	errs := make([]error, p)
	results := make([]*sparse.Vector, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := collective.New(fab.Conn(rank))
			comm.SetFP16Values(true)
			res, err := HierarchicalGTopKAllReduce(context.Background(), comm, vecs[rank].Clone(), k, g)
			errs[rank], results[rank] = err, res
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for r := 1; r < p; r++ {
		assertVecEqual(t, fmt.Sprintf("fp16 rank %d vs rank 0", r), results[0], results[r])
	}
}

// TestHierarchicalSimulatedTime replays the implementation's α-β charges
// for world rank 0 (group leader and global root) and requires the
// simulated clock to match exactly, with the synchronization-skew term
// active — the accounting the hierarchy bench experiment depends on.
func TestHierarchicalSimulatedTime(t *testing.T) {
	const p, g, dim, k = 8, 4, 240, 12
	_, vecs := makeWorkerVectors(67, p, dim, k)
	model := netsim.Paper1GbE().WithSyncSkew(netsim.DefaultSyncGamma)

	groupWant := serialTreeMerge(t, vecs[:g], k)
	globalWant := hierOracle(t, vecs, k, g)
	leaders := (p + g - 1) / g

	clocks := make([]*netsim.Clock, p)
	spmd(t, p, func(c *collective.Comm) error {
		clock := &netsim.Clock{}
		clocks[c.Rank()] = clock
		c.WithClock(clock, model)
		_, err := HierarchicalGTopKAllReduce(context.Background(), c, vecs[c.Rank()].Clone(), k, g)
		return err
	})

	// Rank 0's charge sequence: intra reduce + intra bcast (group result
	// payload), leader reduce + leader bcast (global payload), final
	// intra bcast (global payload). Payload element counts follow the
	// flat collective's v1 accounting: 2k modelled elements per reduce
	// round, EncodedSize(nnz)/4 per broadcast round.
	lgG, lgL := netsim.CeilLog2(g), netsim.CeilLog2(leaders)
	want := time.Duration(lgG)*model.Round(g, 2*k) +
		time.Duration(lgG)*model.Round(g, sparse.EncodedSize(groupWant.NNZ())/4) +
		time.Duration(lgL)*model.Round(leaders, 2*k) +
		time.Duration(lgL)*model.Round(leaders, sparse.EncodedSize(globalWant.NNZ())/4) +
		time.Duration(lgG)*model.Round(g, sparse.EncodedSize(globalWant.NNZ())/4)
	if got := clocks[0].Now(); got != want {
		t.Fatalf("rank 0 simulated time %v, want %v", got, want)
	}
	// Every rank's clock is bounded by the root's total (idle rounds pay
	// only the latency term) and strictly positive.
	for r := 1; r < p; r++ {
		if clocks[r].Now() <= 0 || clocks[r].Now() > clocks[0].Now() {
			t.Fatalf("rank %d simulated time %v outside (0, %v]", r, clocks[r].Now(), clocks[0].Now())
		}
	}
}

// TestHierarchicalAggregatorDegenerateMatchesGTopK trains the same
// stream of gradients through GTopKAggregator and a degenerate-group
// HierarchicalAggregator (G = P) and requires bit-identical updates —
// including the residual trajectory across iterations.
func TestHierarchicalAggregatorDegenerateMatchesGTopK(t *testing.T) {
	const p, dim, k, iters = 4, 120, 6, 5
	updatesFlat := aggregatorTrajectory(t, p, dim, iters, func(c *collective.Comm) (Aggregator, error) {
		return NewGTopKAggregator(c, dim, k)
	})
	updatesHier := aggregatorTrajectory(t, p, dim, iters, func(c *collective.Comm) (Aggregator, error) {
		return NewHierarchicalAggregator(c, dim, k, p)
	})
	for it := range updatesFlat {
		for r := range updatesFlat[it] {
			assertDenseEqual(t, fmt.Sprintf("iter %d rank %d", it, r), updatesFlat[it][r], updatesHier[it][r])
		}
	}
}

// TestHierarchicalAggregatorReplicasAgree runs the real hierarchical
// regime (1 < G < P) for several iterations over one persistent
// aggregator per rank — exercising tag-space reuse in the forked group
// comms — and requires all ranks to produce identical updates every
// iteration.
func TestHierarchicalAggregatorReplicasAgree(t *testing.T) {
	const p, g, dim, k, iters = 8, 4, 120, 6, 5
	updates := aggregatorTrajectory(t, p, dim, iters, func(c *collective.Comm) (Aggregator, error) {
		return NewHierarchicalAggregator(c, dim, k, g)
	})
	for it := range updates {
		for r := 1; r < p; r++ {
			assertDenseEqual(t, fmt.Sprintf("iter %d rank %d vs 0", it, r), updates[it][0], updates[it][r])
		}
	}
}

// aggregatorTrajectory runs `iters` aggregation rounds of deterministic
// per-rank gradients through one aggregator per rank and returns the
// per-iteration per-rank dense updates.
func aggregatorTrajectory(t *testing.T, p, dim, iters int, build func(c *collective.Comm) (Aggregator, error)) [][][]float32 {
	t.Helper()
	updates := make([][][]float32, iters)
	for it := range updates {
		updates[it] = make([][]float32, p)
	}
	var mu sync.Mutex
	spmd(t, p, func(c *collective.Comm) error {
		agg, err := build(c)
		if err != nil {
			return err
		}
		for it := 0; it < iters; it++ {
			grads, _ := makeWorkerVectors(uint64(700+it), p, dim, dim)
			up, err := agg.Aggregate(context.Background(), grads[c.Rank()])
			if err != nil {
				return err
			}
			cp := append([]float32(nil), up...)
			mu.Lock()
			updates[it][c.Rank()] = cp
			mu.Unlock()
		}
		return nil
	})
	return updates
}

func assertDenseEqual(t *testing.T, label string, want, got []float32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: len %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: elem %d: %v vs %v", label, i, want[i], got[i])
		}
	}
}

// TestHierarchicalBucketedMatchesHierComposition: the hierarchical
// bucketed pipeline must equal, bucket by bucket, the hierarchical
// collective applied to each bucket's slice independently — and its
// degenerate group must equal the flat bucketed pipeline bitwise.
func TestHierarchicalBucketedMatchesHierComposition(t *testing.T) {
	const p, g, dim = 8, 4, 200
	bounds := []int{0, 80, 200}
	const density = 0.05

	grads, _ := makeWorkerVectors(91, p, dim, dim)

	// Reference: per-bucket hierarchical aggregators over each slice.
	type sliceRef struct{ lo, hi, k int }
	var slices []sliceRef
	for i := 0; i+1 < len(bounds); i++ {
		slices = append(slices, sliceRef{bounds[i], bounds[i+1], DensityToK(bounds[i+1]-bounds[i], density)})
	}
	want := make([][]float32, p)
	for r := range want {
		want[r] = make([]float32, dim)
	}
	var mu sync.Mutex
	spmd(t, p, func(c *collective.Comm) error {
		for _, s := range slices {
			agg, err := NewHierarchicalAggregator(c, s.hi-s.lo, s.k, g)
			if err != nil {
				return err
			}
			up, err := agg.Aggregate(context.Background(), grads[c.Rank()][s.lo:s.hi])
			if err != nil {
				return err
			}
			mu.Lock()
			copy(want[c.Rank()][s.lo:s.hi], up)
			mu.Unlock()
		}
		return nil
	})

	got := make([][]float32, p)
	spmd(t, p, func(c *collective.Comm) error {
		agg, err := NewHierarchicalBucketedAggregator(c, bounds, density, g)
		if err != nil {
			return err
		}
		if agg.Name() != "gtopk-bucketed-hier" {
			return fmt.Errorf("name %q", agg.Name())
		}
		up, err := agg.Aggregate(context.Background(), append([]float32(nil), grads[c.Rank()]...))
		if err != nil {
			return err
		}
		mu.Lock()
		got[c.Rank()] = append([]float32(nil), up...)
		mu.Unlock()
		return nil
	})
	for r := 0; r < p; r++ {
		assertDenseEqual(t, fmt.Sprintf("rank %d", r), want[r], got[r])
	}
}
