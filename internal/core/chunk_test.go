package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// runChunked executes GTopKAllReduceInto on every rank of a fresh
// in-process fabric and returns the per-rank results.
func runChunked(t *testing.T, vecs []*sparse.Vector, k, chunks int) []*sparse.Vector {
	t.Helper()
	p := len(vecs)
	results := make([]*sparse.Vector, p)
	var mu sync.Mutex
	spmd(t, p, func(c *collective.Comm) error {
		out := &sparse.Vector{}
		if err := GTopKAllReduceInto(context.Background(), c, vecs[c.Rank()].Clone(), k, chunks, out); err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	return results
}

func assertVecEqual(t *testing.T, label string, want, got *sparse.Vector) {
	t.Helper()
	if want.Dim != got.Dim || want.NNZ() != got.NNZ() {
		t.Fatalf("%s: shape dim %d/%d nnz %d/%d", label, want.Dim, got.Dim, want.NNZ(), got.NNZ())
	}
	for i := range want.Indices {
		if want.Indices[i] != got.Indices[i] ||
			math.Float32bits(want.Values[i]) != math.Float32bits(got.Values[i]) {
			t.Fatalf("%s: entry %d: (%d,%v) vs (%d,%v)", label, i,
				want.Indices[i], want.Values[i], got.Indices[i], got.Values[i])
		}
	}
}

// tieHeavyVectors builds per-rank sparse vectors whose values are drawn
// from a tiny quantized set, so merges constantly hit exact magnitude
// ties at the selection threshold.
func tieHeavyVectors(seed uint64, p, dim, k int) []*sparse.Vector {
	vecs := make([]*sparse.Vector, p)
	for r := 0; r < p; r++ {
		src := prng.New(seed + uint64(r)*31)
		g := make([]float32, dim)
		for i := range g {
			g[i] = float32(int(src.Uint64()%5)) - 2 // {-2,-1,0,1,2}: tie city
		}
		vecs[r] = sparse.TopK(g, k)
	}
	return vecs
}

// TestGTopKChunkedBitEquivalence is the tentpole acceptance test: the
// chunk-pipelined tree exchange must produce bit-identical results to
// the unchunked path — at power-of-two and non-power-of-two world sizes,
// with Gaussian values, with massive magnitude ties at the threshold,
// and with empty-support inputs mixed in. The unchunked path itself is
// pinned to the serial binomial-schedule reference.
func TestGTopKChunkedBitEquivalence(t *testing.T) {
	const dim, k = 240, 12
	for _, p := range []int{2, 3, 4, 5, 6, 7, 8, 16} {
		for _, mode := range []string{"gauss", "ties", "empty"} {
			var vecs []*sparse.Vector
			switch mode {
			case "gauss":
				_, vecs = makeWorkerVectors(uint64(60+p), p, dim, k)
			case "ties":
				vecs = tieHeavyVectors(uint64(90+p), p, dim, k)
			case "empty":
				// Half the ranks (including an interior tree rank)
				// contribute nothing this iteration.
				_, vecs = makeWorkerVectors(uint64(120+p), p, dim, k)
				for r := 0; r < p; r += 2 {
					vecs[r] = &sparse.Vector{Dim: dim}
				}
			}
			want := serialTreeMerge(t, vecs, k)
			unchunked := runChunked(t, vecs, k, 1)
			for r, got := range unchunked {
				assertVecEqual(t, fmt.Sprintf("p=%d %s chunks=1 rank %d vs serial", p, mode, r), want, got)
			}
			for _, chunks := range []int{2, 3, 4, 7, 64} {
				results := runChunked(t, vecs, k, chunks)
				for r, got := range results {
					assertVecEqual(t, fmt.Sprintf("p=%d %s chunks=%d rank %d", p, mode, chunks, r),
						unchunked[r], got)
				}
			}
		}
	}
}

// TestGTopKChunkedOverTCP runs the chunk-pipelined collective over real
// loopback sockets (pooled read frames, buffered writers, NODELAY) and
// checks bit-equivalence against the in-process result.
func TestGTopKChunkedOverTCP(t *testing.T) {
	const p, dim, k = 4, 300, 10
	_, vecs := makeWorkerVectors(7, p, dim, k)
	want := serialTreeMerge(t, vecs, k)

	fab, err := transport.NewTCP(p)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	var wg sync.WaitGroup
	errs := make([]error, p)
	results := make([]*sparse.Vector, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			out := &sparse.Vector{}
			// Two iterations through the same reused out vector: the
			// second exercises warmed pools and capacity reuse.
			for iter := 0; iter < 2; iter++ {
				if err := GTopKAllReduceInto(context.Background(), collective.New(fab.Conn(rank)),
					vecs[rank].Clone(), k, 3, out); err != nil {
					errs[rank] = err
					return
				}
			}
			results[rank] = out
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for r := 0; r < p; r++ {
		assertVecEqual(t, fmt.Sprintf("tcp rank %d", r), want, results[r])
	}
}

// TestGTopKIntoReusesResult checks that a dirty, oversized out vector
// from a previous (larger) iteration cannot leak into the next result.
func TestGTopKIntoReusesResult(t *testing.T) {
	const p, dim = 4, 200
	_, big := makeWorkerVectors(5, p, dim, 40)
	_, small := makeWorkerVectors(6, p, dim, 5)
	wantSmall := serialTreeMerge(t, small, 5)

	outs := make([]*sparse.Vector, p)
	for r := range outs {
		outs[r] = &sparse.Vector{}
	}
	for _, round := range []struct {
		vecs []*sparse.Vector
		k    int
	}{{big, 40}, {small, 5}} {
		round := round
		spmd(t, p, func(c *collective.Comm) error {
			return GTopKAllReduceInto(context.Background(), c, round.vecs[c.Rank()].Clone(), round.k, DefaultChunks, outs[c.Rank()])
		})
	}
	for r := 0; r < p; r++ {
		assertVecEqual(t, fmt.Sprintf("rank %d after shrink", r), wantSmall, outs[r])
	}
}
