package core

import (
	"context"
	"fmt"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/sparse"
)

// This file implements the two-level hierarchical gTop-k collective for
// large worlds: ranks are partitioned into contiguous groups of G, each
// group runs the chunk-pipelined gTop-k tree (GTopKAllReduceInto) over
// its members, the group leaders run a second gTop-k over the G-fold
// smaller leader world, and the merged global top-k broadcasts back down
// through the leaders. Every phase reuses the pinned flat collective as
// a black box, so the hierarchical result inherits its determinism:
// replicas are bitwise-consistent on every fabric, and the merge order —
// hence the bits — depends only on (P, G, k), never on goroutine or
// leader arrival order.
//
// Cost shape (netsim.Model.HierGTopK): the intra-group phase runs a FULL
// gTop-k (reduce + broadcast), so every member — not just the leader —
// holds its group's aggregate. That costs ⌈log₂G⌉ broadcast rounds the
// flat tree does not pay, and buys the leader-failure story: any member
// can stand in for a dead leader without re-running the group exchange
// (docs/ARCHITECTURE.md, "Hierarchical aggregation"). What the
// hierarchy saves is synchronization-domain size — its rounds
// synchronize G or ⌈P/G⌉ ranks instead of all P — which is worth
// nothing under the paper's pure α-β model (γ=0) and increasingly much
// under straggler skew (netsim.Model.SyncGamma), where the flat tree's
// world-sized rounds inflate with log₂P. The hierarchy bench records
// the resulting flat-vs-hierarchical crossover.

// HierarchicalGTopKAllReduce runs the two-level gTop-k over groups of
// size g, forking the group sub-communicators per call. Aggregators
// that run every iteration should hold a HierarchicalAggregator (or
// fork once themselves) instead — each call consumes a slice of the
// parent's tag space.
//
// g <= 1 or g >= P degenerates to the flat GTopKAllReduce, bit-identical
// to it. Like all collectives, every rank must call with the same g and
// k.
func HierarchicalGTopKAllReduce(ctx context.Context, comm *collective.Comm, local *sparse.Vector, k, g int) (*sparse.Vector, error) {
	out := &sparse.Vector{}
	if g <= 1 || g >= comm.Size() {
		if err := GTopKAllReduceInto(ctx, comm, local, k, ChunksFor(k), out); err != nil {
			return nil, err
		}
		return out, nil
	}
	gc, err := comm.ForkGroup(g)
	if err != nil {
		return nil, fmt.Errorf("core: hierarchical gtopk: %w", err)
	}
	attachHierClocks(comm, gc)
	if err := HierarchicalGTopKAllReduceInto(ctx, comm, gc, local, k, ChunksFor(k), out); err != nil {
		return nil, err
	}
	foldHierStats(comm, gc)
	return out, nil
}

// attachHierClocks points the group sub-communicators at the parent's
// simulated clock and model. The three hierarchy phases run sequentially
// on each rank, so sharing the parent clock keeps the accounting
// automatic (unlike the bucketed pipeline, whose concurrent buckets need
// private clocks).
func attachHierClocks(parent *collective.Comm, gc *collective.GroupComms) {
	model, timed := parent.Model()
	if !timed {
		return
	}
	gc.Members.WithClock(parent.Clock(), model)
	if gc.Leaders != nil {
		gc.Leaders.WithClock(parent.Clock(), model)
	}
}

// foldHierStats folds the group sub-communicators' message counters into
// the parent and resets them, so per-rank totals stay complete across
// repeated collectives.
func foldHierStats(parent *collective.Comm, gc *collective.GroupComms) {
	parent.AddStats(gc.Members.Stats())
	gc.Members.ResetStats()
	if gc.Leaders != nil {
		parent.AddStats(gc.Leaders.Stats())
		gc.Leaders.ResetStats()
	}
}

// HierarchicalGTopKAllReduceInto is the reusable-state core of the
// hierarchical collective: the caller owns the forked GroupComms (with
// clocks already attached if timed) and the result vector. Statistics
// accumulate on gc's sub-communicators; fold them into the parent with
// foldHierStats-style AddStats calls, as HierarchicalAggregator does.
//
// The comm argument is the parent communicator the groups were forked
// from; it is used only for the non-leaders' simulated-time mirror of
// the leader exchange (ChargeRoundAmong), never for wire traffic.
func HierarchicalGTopKAllReduceInto(ctx context.Context, comm *collective.Comm, gc *collective.GroupComms, local *sparse.Vector, k, chunks int, out *sparse.Vector) error {
	// Phase 1: intra-group gTop-k. Every member of group i ends up with
	// the group's top-k aggregate (the full tree collective: reduce to
	// the group leader, broadcast back down).
	groupRes := sparse.GetVector()
	defer sparse.PutVector(groupRes)
	if err := GTopKAllReduceInto(ctx, gc.Members, local, k, chunks, groupRes); err != nil {
		return fmt.Errorf("core: hierarchical gtopk group phase: %w", err)
	}

	codec := gc.Members.WireCodec()
	if codec.Value().Quantized() {
		// The leader phase pins the global result to the quantizer's
		// lattice, identical bits on every leader. Re-quantizing in the
		// member-level broadcast would run each group leader's
		// INDEPENDENT stochastic rounding over those same values and
		// break cross-group bit-agreement, so phase 3 ships the pinned
		// values in lossless v3 frames instead (v3 frames are
		// self-describing — the value codec rides in every frame — so
		// receivers decode them without any extra negotiation).
		codec = sparse.CodecV3
	}
	if gc.Leaders != nil {
		// Phase 2 (leaders): gTop-k over the leader world merges the
		// per-group aggregates into the global top-k, identical bits on
		// every leader.
		glob := sparse.GetVector()
		defer sparse.PutVector(glob)
		if err := GTopKAllReduceInto(ctx, gc.Leaders, groupRes, k, chunks, glob); err != nil {
			return fmt.Errorf("core: hierarchical gtopk leader phase: %w", err)
		}
		// Phase 3: broadcast the global result down the group's binomial
		// tree (member rank 0 is the leader).
		if err := bcastSparseChunks(ctx, gc.Members, codec, glob, k, chunks, out); err != nil {
			return fmt.Errorf("core: hierarchical gtopk broadcast phase: %w", err)
		}
		return nil
	}

	// Phase 2 (non-leaders): idle in wall time while the leaders
	// exchange, but pay the same simulated rounds — the collective is
	// synchronous, so every rank's clock advances through the leader
	// phase. The modelled payload is the v1-flat 2k elements per round
	// (k values + k indices), matching what the leaders charge under the
	// v1 codec; under v2 the leaders charge measured compressed bytes
	// and this mirror stays at the modelled bound.
	leaderRounds := 2 * netsim.CeilLog2(gc.NumGroups)
	for j := 0; j < leaderRounds; j++ {
		comm.ChargeRoundAmong(gc.NumGroups, 2*k)
	}
	// Phase 3: receive the global result from the group leader.
	if err := bcastSparseChunks(ctx, gc.Members, codec, nil, k, chunks, out); err != nil {
		return fmt.Errorf("core: hierarchical gtopk broadcast phase: %w", err)
	}
	return nil
}

// HierarchicalAggregator is gTop-k S-SGD over the two-level hierarchical
// collective: local top-k selection with error feedback exactly as
// GTopKAggregator, but the global exchange runs
// HierarchicalGTopKAllReduceInto over group sub-communicators forked
// once at construction. With group >= world (or <= 1) it is
// bit-identical to GTopKAggregator.
type HierarchicalAggregator struct {
	comm      *collective.Comm
	gc        *collective.GroupComms // nil in the degenerate flat regime
	group     int
	sp        *Sparsifier
	k         int
	noPutBack bool
	schedule  func(step int) int
	step      int
	mu        float32
	velocity  []float32
	dense     []float32
	orig      []float32     // pre-transform value snapshot for FoldError (reused)
	global    sparse.Vector // reused collective result (zero steady-state allocs)

	// quorum, when enabled (Q > 0), replaces the full-sync collectives
	// with the straggler-tolerant quorum variants (hierarchical in the
	// grouped regime, flat in the degenerate one); missStreak counts this
	// rank's consecutive missed rounds for degraded-rank reporting.
	quorum     QuorumConfig
	missStreak int
}

// NewHierarchicalAggregator creates a hierarchical gTop-k aggregator
// selecting k of dim gradients per iteration over groups of `group`
// ranks. The group sub-communicators are forked from comm here, so
// every rank must construct its aggregator at the same point of its
// collective sequence (as with any Fork).
func NewHierarchicalAggregator(comm *collective.Comm, dim, k, group int) (*HierarchicalAggregator, error) {
	if err := validateK(dim, k); err != nil {
		return nil, err
	}
	if group < 1 {
		return nil, fmt.Errorf("core: hierarchical group size %d out of range: need >= 1", group)
	}
	a := &HierarchicalAggregator{
		comm:  comm,
		group: group,
		sp:    NewSparsifier(dim),
		k:     k,
		dense: make([]float32, dim),
	}
	if group > 1 && group < comm.Size() {
		gc, err := comm.ForkGroup(group)
		if err != nil {
			return nil, fmt.Errorf("core: hierarchical aggregator: %w", err)
		}
		attachHierClocks(comm, gc)
		a.gc = gc
	}
	return a, nil
}

// Name implements Aggregator.
func (a *HierarchicalAggregator) Name() string { return "gtopk-hier" }

// Group returns the configured group size.
func (a *HierarchicalAggregator) Group() int { return a.group }

// SetK retunes the per-iteration selection count (warmup schedules).
func (a *HierarchicalAggregator) SetK(k int) error {
	if err := validateK(a.sp.Dim(), k); err != nil {
		return err
	}
	a.k = k
	return nil
}

// SetSchedule installs a per-step selection-count schedule; see
// TopKAggregator.SetSchedule.
func (a *HierarchicalAggregator) SetSchedule(f func(step int) int) { a.schedule = f }

// SetPutBack toggles Algorithm 4 line 10 (returning globally-dropped
// values to the residual); see GTopKAggregator.SetPutBack.
func (a *HierarchicalAggregator) SetPutBack(enabled bool) { a.noPutBack = !enabled }

// SetMomentumCorrection enables DGC-style momentum correction; see
// TopKAggregator.SetMomentumCorrection.
func (a *HierarchicalAggregator) SetMomentumCorrection(mu float32) {
	a.mu = mu
	if mu > 0 && a.velocity == nil {
		a.velocity = make([]float32, a.sp.Dim())
	}
}

// Sparsifier exposes the residual state for diagnostics.
func (a *HierarchicalAggregator) Sparsifier() *Sparsifier { return a.sp }

// SetQuorum enables the straggler-tolerant quorum collectives: rounds
// close per level after the configured quorums or deadline budgets
// (never under quorum), and a missed rank's selected mass — a straggling
// member's, or every member's of a group that missed the leader round —
// is refunded to its residual instead of entering the round. In the
// grouped regime cfg.Q is the intra-group quorum and cfg.LeaderQ the
// leader-level one; in the degenerate flat regime (group <= 1 or >=
// world) cfg must be a flat configuration validated against the world.
// A zero cfg disables quorum mode.
func (a *HierarchicalAggregator) SetQuorum(cfg QuorumConfig) error {
	if cfg == (QuorumConfig{}) {
		a.quorum = cfg
		return nil
	}
	var err error
	if a.gc == nil {
		err = cfg.Validate(a.comm.Size())
	} else {
		err = cfg.ValidateHier(a.comm.Size(), a.group)
	}
	if err != nil {
		return err
	}
	a.quorum = cfg
	return nil
}

// QuorumMissStreak returns how many consecutive rounds this rank's
// contribution has missed a quorum deadline (0 when participating or
// when quorum mode is off) — the signal the cluster runtime turns into
// degraded-rank reports; with group-granular telemetry a whole missed
// group shows up as every one of its members streaking together.
func (a *HierarchicalAggregator) QuorumMissStreak() int { return a.missStreak }

// QuorumGroup returns this rank's hierarchy group index in the grouped
// regime and -1 in the degenerate flat one — the group-granular handle
// degraded-rank telemetry attaches to its reports.
func (a *HierarchicalAggregator) QuorumGroup() int {
	if a.gc == nil {
		return -1
	}
	return a.comm.Rank() / a.group
}

// Aggregate implements Aggregator.
func (a *HierarchicalAggregator) Aggregate(ctx context.Context, grad []float32) ([]float32, error) {
	if a.schedule != nil {
		if err := a.SetK(a.schedule(a.step)); err != nil {
			return nil, fmt.Errorf("core: hierarchical schedule: %w", err)
		}
	}
	a.step++
	grad = applyMomentumCorrection(a.mu, a.velocity, grad)
	local, err := a.sp.Select(grad, a.k)
	if err != nil {
		return nil, fmt.Errorf("core: hierarchical aggregate: %w", err)
	}
	if a.quorum.Q > 0 {
		// Quorum mode always snapshots the pre-transform values: a round
		// this rank misses refunds the FULL selected mass, not just the
		// codec error.
		a.orig = append(a.orig[:0], local.Values...)
	} else {
		a.orig = snapshotForFold(a.comm.WireCodec(), local, a.orig)
	}
	participated := true
	switch {
	case a.gc == nil && a.quorum.Q > 0:
		participated, _, err = QuorumGTopKAllReduceInto(ctx, a.comm, local, a.k, a.quorum, &a.global)
	case a.gc == nil:
		err = GTopKAllReduceInto(ctx, a.comm, local, a.k, ChunksFor(a.k), &a.global)
	case a.quorum.Q > 0:
		participated, _, err = HierQuorumGTopKAllReduceInto(ctx, a.comm, a.gc, local, a.k, a.group, a.quorum, &a.global)
	default:
		err = HierarchicalGTopKAllReduceInto(ctx, a.comm, a.gc, local, a.k, ChunksFor(a.k), &a.global)
	}
	if err != nil {
		return nil, err
	}
	if a.gc != nil {
		foldHierStats(a.comm, a.gc)
	}
	global := &a.global
	if !participated {
		// This rank's frame missed its level's quorum — or its whole
		// group missed the leader level: nothing of it entered the
		// aggregate, so the full selected mass is refunded to the
		// residual (conservation) and put-back is skipped — the update
		// below is built purely from the other ranks' verdict.
		a.missStreak++
		a.sp.Refund(local.Indices, a.orig)
	} else {
		a.missStreak = 0
		// Quantization error first, then put-back — see GTopKAggregator.
		// (In quorum mode the snapshot exists for every codec, but the
		// fold only applies where the wire transform was lossy.)
		codec := a.comm.WireCodec()
		if a.orig != nil && (a.quorum.Q == 0 || (codec.WireVersion() == 3 && codec.Lossy())) {
			a.sp.FoldError(local.Indices, a.orig, local.Values)
		}
		if !a.noPutBack {
			a.sp.PutBack(local, global.Indices)
		}
	}

	for i := range a.dense {
		a.dense[i] = 0
	}
	global.ScatterAdd(a.dense)
	inv := 1 / float32(a.comm.Size())
	for i := range a.dense {
		a.dense[i] *= inv
	}
	return a.dense, nil
}
