package core

import (
	"context"
	"fmt"
	"math/bits"
	"sync"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/f16"
	"gtopkssgd/internal/sparse"
)

// iovecPool recycles the frame-pointer slices (iovecs) the chunked send
// paths assemble for vectored sends, keeping the steady-state tree phase
// allocation-free. Slices returned to the pool must have every element
// nilled first — the frames they pointed at were relinquished to the
// fabric or the buffer pool, and a pooled iovec must not pin them.
var iovecPool = sync.Pool{New: func() any {
	s := make([][]byte, 0, DefaultChunks)
	return &s
}}

// TopKAllReduce aggregates per-worker sparse top-k gradients with the
// AllGather method of Algorithm 1 (lines 12-21), the baseline the paper
// improves on: every worker gathers all P sparse vectors and scatter-adds
// them into a pooled dense accumulator, compacting the union support once
// at the end (O(P·k) adds + one O(u·log u) compaction instead of P
// repeated sparse merges). The returned sparse vector is the exact
// element-wise SUM over workers restricted to the union support (callers
// average by 1/P as Algorithm 1 line 19 does); summation order per index
// is rank-ascending, bit-identical to a chain of sparse Adds.
//
// Communication cost (Eq. 6): log(P)·α + 2(P−1)k·β.
func TopKAllReduce(ctx context.Context, comm *collective.Comm, local *sparse.Vector) (*sparse.Vector, error) {
	codec := comm.WireCodec()
	var own []byte
	if codec.Value().Quantized() {
		// Compound pipeline: quantize the selected values in place (the
		// caller's copy now equals what every decoder reconstructs; the
		// aggregator folds the difference into its residual) and ship
		// levels instead of floats.
		scale, levels := transformForWire(comm, codec, local.Values)
		own = sparse.EncodeSlicesV3(codec, local.Dim, local.Indices, local.Values, scale, levels)
	} else {
		own = sparse.EncodeCodec(codec, local)
	}
	comm.TallyWire(sparse.EncodedSize(local.NNZ()), len(own))
	blobs, err := comm.AllGather(ctx, own)
	if err != nil {
		return nil, fmt.Errorf("core: topk allreduce: %w", err)
	}
	acc := sparse.GetAccumulator(local.Dim)
	defer acc.Release()
	var scratch *sparse.Vector
	if codec != sparse.CodecV1 {
		scratch = sparse.GetVector()
		defer sparse.PutVector(scratch)
	}
	for rank, blob := range blobs {
		// Every rank — including this one — folds in the DECODED frame,
		// so under a lossy codec all replicas still sum identical bits.
		v, err := decodeWireFrame(codec, blob, scratch)
		if err != nil {
			return nil, fmt.Errorf("core: topk allreduce: rank %d payload: %w", rank, err)
		}
		if err := acc.Add(&v); err != nil {
			return nil, fmt.Errorf("core: topk allreduce: rank %d: %w", rank, err)
		}
	}
	// Only our own encode buffer may be recycled: the remote blobs are
	// subslices of AllGather's round payloads and alias one another.
	sparse.PutBuffer(own)
	sum := &sparse.Vector{}
	acc.CompactInto(sum)
	return sum, nil
}

// decodeWireFrame parses one received sparse frame under the mesh codec:
// v1 payloads come back as zero-copy views into blob (the PR 3 hot
// path, unchanged), v2/v3 payloads are materialised into scratch — delta
// codes cannot be aliased (and v3 levels dequantize as they stream) —
// which is safe to reuse across frames and lets the caller release blob
// immediately.
func decodeWireFrame(codec sparse.Codec, blob []byte, scratch *sparse.Vector) (sparse.Vector, error) {
	switch codec.WireVersion() {
	case 1:
		return sparse.DecodeView(blob)
	case 3:
		if err := sparse.DecodeV3Into(scratch, blob); err != nil {
			return sparse.Vector{}, err
		}
	default:
		if err := sparse.DecodeV2Into(scratch, blob); err != nil {
			return sparse.Vector{}, err
		}
	}
	return *scratch, nil
}

// transformForWire pins v's values to the codec's wire value precision
// IN PLACE — the sender-side half of the replica-agreement contract: a
// lossy codec's sender must keep exactly the bits its receivers decode.
// Under a v3 codec with an attached Compressor the values land on the
// quantization lattice and the returned (scale, levels) feed the v3
// encoder; under fp16 codecs the values are rounded through binary16
// (idempotent, so encoding afterwards changes nothing). Lossless codecs
// leave values untouched.
func transformForWire(comm *collective.Comm, codec sparse.Codec, values []float32) (float32, []int16) {
	if !codec.Lossy() {
		return 0, nil
	}
	if codec.WireVersion() == 3 {
		if comp := comm.Compressor(); comp != nil {
			return comp.Transform(values)
		}
	}
	f16.RoundSlice(values)
	return 0, nil
}

// NaiveGTopKAllReduce implements Algorithm 2's aggregation: a full
// TopKAllReduce followed by a *global* re-selection of the k
// largest-magnitude entries of the sum. It transfers exactly as much as
// TopKAllReduce; only the returned support shrinks to k. Used for Fig. 1
// and as the reference the efficient tree algorithm is verified against.
func NaiveGTopKAllReduce(ctx context.Context, comm *collective.Comm, local *sparse.Vector, k int) (*sparse.Vector, error) {
	sum, err := TopKAllReduce(ctx, comm, local)
	if err != nil {
		return nil, err
	}
	return sparse.TopKSparse(sum, k), nil
}

// DefaultChunks is the payload chunk count GTopKAllReduce uses for large
// payloads: each tree round's k-entry message is split into up to this
// many frames so the receiver merges chunk i−1 while chunk i is still on
// the wire. Chunking never changes the result bits (the merge order
// within a round is unchanged); it only overlaps transfer with merge
// work inside a round.
const DefaultChunks = 4

// minChunkEntries is the smallest payload span worth its own frame:
// below ~2 KiB on the wire, the per-frame header and flush cost more
// than the overlap buys back.
const minChunkEntries = 256

// ChunksFor returns the chunk count the default pipeline uses for a
// k-entry payload: DefaultChunks, bounded so every chunk carries at
// least minChunkEntries entries (small payloads stay monolithic). k is
// a shared parameter of the collective, so every rank derives the same
// count — which chunked sends and receives require.
func ChunksFor(k int) int {
	c := k / minChunkEntries
	if c < 1 {
		return 1
	}
	if c > DefaultChunks {
		return DefaultChunks
	}
	return c
}

// GTopKAllReduce is the paper's Algorithm 3: an efficient global top-k
// aggregation in 2·ceil(log2(P)) communication rounds. It wraps
// GTopKAllReduceInto with ChunksFor(k) and a fresh result vector.
//
// Phase 1 (tree reduction): ceil(log2(P)) rounds. In round j, every
// rank whose index has j+1 low zero bits receives its partner's sparse
// vector and merges it with the ⊕ operator of Definition 1 (top-k of
// the sum); the partner goes idle. After the last round rank 0 holds
// G̃ = G̃¹ ⊕ G̃² ⊕ … ⊕ G̃ᴾ.
//
// Phase 2 (broadcast): rank 0 broadcasts G̃ to all ranks along a binomial
// tree (the "flat-tree" of the paper), ceil(log2(P)) more rounds.
//
// The returned vector holds the k largest-magnitude entries of the
// element-wise sum as selected greedily by the tree (identical on every
// rank); its Indices serve as the paper's gMask.
//
// The paper assumes power-of-two P (Section III); this implementation
// generalises the binomial tree to any P ≥ 1 — a receiver whose partner
// index falls outside [0, P) simply idles that round — so an elastic
// job that loses a worker (say 4 → 3) keeps aggregating with the same
// algorithm. For power-of-two P the schedule, and therefore the merge
// order and the resulting bits, are unchanged.
//
// Communication cost (Eq. 7): 2·log(P)·α + 4k·log(P)·β.
func GTopKAllReduce(ctx context.Context, comm *collective.Comm, local *sparse.Vector, k int) (*sparse.Vector, error) {
	out := &sparse.Vector{}
	if err := GTopKAllReduceInto(ctx, comm, local, k, ChunksFor(k), out); err != nil {
		return nil, err
	}
	return out, nil
}

// GTopKAllReduceInto is GTopKAllReduce's allocation-free core: the global
// top-k lands in out (capacity reused across iterations — aggregators
// keep one result vector per communicator and reach steady states with
// zero allocations in the whole tree phase), and each round's payload is
// split into the given number of chunk frames (values < 1 behave as 1).
// Every rank must pass the same chunks value; the result bits are
// independent of it.
//
// The hot path never materialises a received vector: frames are merged
// through sparse.DecodeView straight from the wire buffer, the merge
// ping-pongs between pooled scratch vectors, and dead frames return to
// the shared buffer pool.
func GTopKAllReduceInto(ctx context.Context, comm *collective.Comm, local *sparse.Vector, k, chunks int, out *sparse.Vector) error {
	if chunks < 1 {
		chunks = 1
	}
	p := comm.Size()
	r := comm.Rank()

	rounds := 0
	for 1<<rounds < p {
		rounds++
	}
	// Pooled scratch: cur ping-pongs across rounds; sum holds one round's
	// union merge; catScratch (allocated lazily, multi-chunk rounds only)
	// reassembles a partner's chunk frames. cur starts as a read-only
	// view of the caller's local vector.
	curBuf := [2]*sparse.Vector{sparse.GetVector(), sparse.GetVector()}
	sum := sparse.GetVector()
	var catScratch *sparse.Vector
	defer func() {
		sparse.PutVector(curBuf[0])
		sparse.PutVector(curBuf[1])
		sparse.PutVector(sum)
		if catScratch != nil {
			sparse.PutVector(catScratch)
		}
	}()
	cur := local
	ci := 0

	// The negotiated codec shapes both the frames and the α-β byte
	// accounting: v1 charges the paper's modelled 2k elements per round
	// (bit-for-bit the pre-codec behaviour), v2 charges the bytes the
	// compressed frames actually moved.
	codec := comm.WireCodec()
	var peerScratch *sparse.Vector
	if codec != sparse.CodecV1 {
		peerScratch = sparse.GetVector()
		defer sparse.PutVector(peerScratch)
	}

	base := comm.ClaimTags(rounds)
	for j := 0; j < rounds; j++ {
		stride := 1 << j
		group := 1 << (j + 1)
		moved := 0
		switch {
		case r%group == 0 && r+stride < p:
			// Receiver: partner r+stride streams its live vector as chunk
			// frames. Since the vectored sender flushes all of a round's
			// chunks together, chunk-granular folding would re-scan the
			// running sum once per chunk for no overlap gain; instead the
			// chunks — contiguous ascending entry spans — are reassembled
			// into the peer vector with cheap appends and folded with ONE
			// union merge plus one top-k re-selection. Every output index
			// still receives exactly the same (running, peer) value pair,
			// so the result stays bit-identical to per-chunk folding and
			// to the unchunked merge.
			var peer *sparse.Vector
			for i := 0; i < chunks; i++ {
				blob, err := comm.RecvTag(ctx, r+stride, base+j)
				if err != nil {
					return fmt.Errorf("core: gtopk round %d recv: %w", j, err)
				}
				moved += len(blob)
				view, err := decodeWireFrame(codec, blob, peerScratch)
				if err != nil {
					return fmt.Errorf("core: gtopk round %d payload: %w", j, err)
				}
				if chunks == 1 {
					// Single-frame rounds merge straight off the wire view
					// (v1) or decode scratch — no reassembly copy at all.
					err = sparse.AddInto(sum, cur, &view)
					sparse.PutBuffer(blob)
					if err != nil {
						return fmt.Errorf("core: gtopk round %d merge: %w", j, err)
					}
					break
				}
				if i == 0 {
					if peer = catScratch; peer == nil {
						peer = sparse.GetVector()
						catScratch = peer
					}
					peer.Indices = peer.Indices[:0]
					peer.Values = peer.Values[:0]
				}
				sparse.AppendEntries(peer, &view)
				// The frame is dead once copied (tree receivers never
				// forward it); back to the pool it goes.
				sparse.PutBuffer(blob)
			}
			if chunks > 1 {
				if err := sparse.AddInto(sum, cur, peer); err != nil {
					return fmt.Errorf("core: gtopk round %d merge: %w", j, err)
				}
			}
			sparse.TopKSparseInto(curBuf[ci], sum, k)
			cur, ci = curBuf[ci], ci^1
		case r%group == stride:
			// Sender: stream the live vector to r-stride in chunk frames,
			// then go idle. Frames come from the shared pool and are
			// recycled by the fabric or the receiving merge loop.
			sent, err := sendSparseChunks(ctx, comm, codec, cur, r-stride, base+j, chunks)
			if err != nil {
				return fmt.Errorf("core: gtopk round %d send: %w", j, err)
			}
			moved = sent
			cur = nil
		}
		// Every rank pays the synchronous round cost. Under v1 that is
		// the paper's modelled bound — one message of at most 2k elements
		// (k values + k indices) per pair; under v2 participants pay the
		// compressed bytes they actually moved and idle ranks pay the
		// latency term alone.
		if codec == sparse.CodecV1 {
			comm.ChargeRound(2 * k)
		} else {
			comm.ChargeRound((moved + 3) / 4)
		}
	}

	// Phase 2: broadcast the global top-k from rank 0 (Algorithm 3 line
	// 19), chunk-pipelined down the same binomial tree: a rank forwards
	// chunk i to its subtree before receiving chunk i+1, so the levels of
	// the tree work on consecutive chunks concurrently.
	return bcastSparseChunks(ctx, comm, codec, cur, k, chunks, out)
}

// sendSparseChunks streams v to dst as `chunks` wire frames under one
// tag (FIFO order per (src,dst,tag) keeps them in sequence), encoded
// with the mesh codec, and returns the bytes put on the wire. Chunks are
// contiguous spans of the entry list, so each is itself a valid sparse
// encoding and their concatenation reproduces v exactly.
func sendSparseChunks(ctx context.Context, comm *collective.Comm, codec sparse.Codec, v *sparse.Vector, dst, tag, chunks int) (int, error) {
	// v3 hops quantize the whole hop vector once (in place — the sender's
	// retained copy must equal what the receiver decodes); every chunk
	// frame then shares the hop's scale with its own level span. v2-fp16
	// keeps its original semantics: rounding happens inside the encoder
	// and the sender's in-memory copy stays fp32.
	var scale float32
	var levels []int16
	if codec.WireVersion() == 3 && codec.Lossy() {
		scale, levels = transformForWire(comm, codec, v.Values)
	}
	nnz := v.NNZ()
	if chunks <= 1 {
		buf := encodeSparseChunk(codec, v, 0, nnz, scale, levels)
		comm.TallyWire(sparse.EncodedSize(nnz), len(buf))
		if err := comm.SendTagPooled(ctx, dst, tag, buf); err != nil {
			return len(buf), err
		}
		return len(buf), nil
	}
	// Multi-chunk rounds assemble every frame into a pooled iovec and ship
	// the batch with ONE vectored send: on TCP the whole round coalesces
	// into a single flush (one syscall instead of one per chunk) while the
	// frames stay individually addressed, so the receive side still
	// decodes and merges chunk-granularly as each frame surfaces.
	sent := 0
	fp := iovecPool.Get().(*[][]byte)
	frames := (*fp)[:0]
	for i := 0; i < chunks; i++ {
		lo, hi := i*nnz/chunks, (i+1)*nnz/chunks
		buf := encodeSparseChunk(codec, v, lo, hi, scale, levels)
		sent += len(buf)
		comm.TallyWire(sparse.EncodedSize(hi-lo), len(buf))
		frames = append(frames, buf)
	}
	err := comm.SendTagVecPooled(ctx, dst, tag, frames)
	for i := range frames {
		frames[i] = nil
	}
	*fp = frames[:0]
	iovecPool.Put(fp)
	return sent, err
}

// encodeSparseChunk encodes entries [lo,hi) of v under codec; quantized
// v3 codecs carry the hop's scale plus the chunk's span of the hop
// levels, everything else encodes the float values directly.
func encodeSparseChunk(codec sparse.Codec, v *sparse.Vector, lo, hi int, scale float32, levels []int16) []byte {
	if codec.Value().Quantized() {
		return sparse.EncodeSlicesV3(codec, v.Dim, v.Indices[lo:hi], v.Values[lo:hi], scale, levels[lo:hi])
	}
	return sparse.EncodeSlicesCodec(codec, v.Dim, v.Indices[lo:hi], v.Values[lo:hi])
}

// bcastSparseChunks distributes rank 0's cur to every rank's out along a
// binomial tree in chunk-pipelined frames encoded with the mesh codec.
// Simulated-time accounting matches the unchunked flat-tree broadcast
// this replaces: every rank charges ceil(log2 P) rounds, paying the full
// payload — modelled flat bytes under v1, actual compressed bytes under
// v2 — from the round it first holds data (chunking is transparent to
// the α-β model; it reduces wall time by overlap, not modelled volume).
//
// Under a lossy codec the root first rounds its own values through the
// codec's value precision, so the bits it keeps equal the bits every
// other rank decodes off the wire — the broadcast stays replica-exact.
func bcastSparseChunks(ctx context.Context, comm *collective.Comm, codec sparse.Codec, cur *sparse.Vector, k, chunks int, out *sparse.Vector) error {
	p := comm.Size()
	r := comm.Rank()
	rounds := 0
	for 1<<rounds < p {
		rounds++
	}
	base := comm.ClaimTags(rounds)

	recvRound := 0 // the round in which this rank first holds data
	wireBytes := 0 // actual encoded payload volume (one payload's worth)
	if r == 0 {
		var scale float32
		var levels []int16
		if codec.Lossy() && p > 1 {
			// cur is pooled scratch owned by this collective (with p > 1
			// rank 0 always merged in round 0), so the in-place pinning
			// never touches the caller's input. The root keeps exactly
			// the bits every other rank decodes off the wire — rounded
			// binary16 or the quantizer's lattice points — so the
			// broadcast stays replica-exact under every lossy codec.
			scale, levels = transformForWire(comm, codec, cur.Values)
		}
		sparse.CopyInto(out, cur)
		if p > 1 {
			// Encode the whole payload's chunk frames up front, then ship
			// the complete list to each child with one vectored send —
			// child-major order: one flush per child instead of one per
			// (chunk, child) pair. Each frame is tallied once at encode
			// time (a compression event), not per child transmission —
			// the tally measures codec efficiency; Stats.BytesSent tracks
			// actual transmission volume. Per-(src,dst,tag) FIFO keeps the
			// chunks in sequence at every child, so relays still overlap
			// forwarding chunk i with receiving chunk i+1.
			nnz := cur.NNZ()
			fp := iovecPool.Get().(*[][]byte)
			frames := (*fp)[:0]
			for i := 0; i < chunks; i++ {
				lo, hi := i*nnz/chunks, (i+1)*nnz/chunks
				buf := encodeSparseChunk(codec, cur, lo, hi, scale, levels)
				wireBytes += len(buf)
				comm.TallyWire(sparse.EncodedSize(hi-lo), len(buf))
				frames = append(frames, buf)
			}
			for j := 0; j < rounds; j++ {
				if child := 1 << j; child < p {
					if err := comm.SendTagVec(ctx, child, base+j, frames); err != nil {
						return fmt.Errorf("core: gtopk bcast send: %w", err)
					}
				}
			}
			// All children received (or aliased, in-process) every frame;
			// recycling is safe only where plain sends consume the
			// payload before returning.
			if comm.SendConsumedOnReturn() {
				for _, buf := range frames {
					sparse.PutBuffer(buf)
				}
			}
			for i := range frames {
				frames[i] = nil
			}
			*fp = frames[:0]
			iovecPool.Put(fp)
		}
	} else if p > 1 {
		recvRound = bits.Len(uint(r)) - 1 // 2^recvRound <= r < 2^(recvRound+1)
		parent := r - 1<<recvRound
		// out is rebuilt from the incoming chunk frames; every frame
		// carries dim, and chunks >= 1, so out.Dim is always set below.
		out.Indices = out.Indices[:0]
		out.Values = out.Values[:0]
		// A forwarded frame may be recycled only if our received copy is
		// private AND our plain sends to the subtree consumed it before
		// returning (both true over TCP, both false in-process).
		canRecycle := comm.RecvIsPrivate() && comm.SendConsumedOnReturn()
		var chunkScratch *sparse.Vector
		if codec != sparse.CodecV1 {
			chunkScratch = sparse.GetVector()
			defer sparse.PutVector(chunkScratch)
		}
		for i := 0; i < chunks; i++ {
			blob, err := comm.RecvTag(ctx, parent, base+recvRound)
			if err != nil {
				return fmt.Errorf("core: gtopk bcast recv: %w", err)
			}
			wireBytes += len(blob)
			// Forward down the subtree before consuming: the next level
			// starts relaying chunk i while chunk i+1 is still inbound.
			// Frames relay as raw bytes — every rank decodes the exact
			// same payload regardless of codec, and a relay is not a new
			// codec event, so nothing is tallied here (Stats.BytesSent
			// still counts the transmission).
			for j := recvRound + 1; j < rounds; j++ {
				if child := r + 1<<j; child < p {
					if err := comm.SendTag(ctx, child, base+j, blob); err != nil {
						return fmt.Errorf("core: gtopk bcast forward: %w", err)
					}
				}
			}
			v, err := decodeWireFrame(codec, blob, chunkScratch)
			if err != nil {
				return fmt.Errorf("core: gtopk bcast payload: %w", err)
			}
			out.Dim = v.Dim
			out.Indices = append(out.Indices, v.Indices...)
			out.Values = append(out.Values, v.Values...)
			if canRecycle {
				// Private copy: our sends were consumed synchronously and
				// the entries are copied out, so the frame is dead here.
				sparse.PutBuffer(blob)
			}
		}
		if err := out.Validate(); err != nil {
			return fmt.Errorf("core: gtopk bcast result: %w", err)
		}
	} else {
		sparse.CopyInto(out, cur)
	}

	// α-β accounting, mirroring the flat-tree broadcast exactly (one
	// monolithic payload per round — chunk framing is an implementation
	// detail the model does not see): rounds before a rank holds data
	// cost it nothing but the synchronisation point. v1 charges the
	// modelled flat payload; v2 charges the measured compressed payload.
	elems := sparse.EncodedSize(out.NNZ()) / 4
	if codec != sparse.CodecV1 {
		elems = (wireBytes + 3) / 4
	}
	for j := 0; j < rounds; j++ {
		if r == 0 || j >= recvRound {
			comm.ChargeRound(elems)
		} else {
			comm.ChargeRound(0)
		}
	}
	return nil
}
