package core

import (
	"context"
	"fmt"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/sparse"
)

// TopKAllReduce aggregates per-worker sparse top-k gradients with the
// AllGather method of Algorithm 1 (lines 12-21), the baseline the paper
// improves on: every worker gathers all P sparse vectors and scatter-adds
// them into a dense accumulator. The returned sparse vector is the exact
// element-wise SUM over workers restricted to the union support (callers
// average by 1/P as Algorithm 1 line 19 does).
//
// Communication cost (Eq. 6): log(P)·α + 2(P−1)k·β.
func TopKAllReduce(ctx context.Context, comm *collective.Comm, local *sparse.Vector) (*sparse.Vector, error) {
	blobs, err := comm.AllGather(ctx, sparse.Encode(local))
	if err != nil {
		return nil, fmt.Errorf("core: topk allreduce: %w", err)
	}
	sum := &sparse.Vector{Dim: local.Dim}
	for rank, blob := range blobs {
		v, err := sparse.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("core: topk allreduce: rank %d payload: %w", rank, err)
		}
		if sum, err = sparse.Add(sum, v); err != nil {
			return nil, fmt.Errorf("core: topk allreduce: rank %d: %w", rank, err)
		}
	}
	return sum, nil
}

// NaiveGTopKAllReduce implements Algorithm 2's aggregation: a full
// TopKAllReduce followed by a *global* re-selection of the k
// largest-magnitude entries of the sum. It transfers exactly as much as
// TopKAllReduce; only the returned support shrinks to k. Used for Fig. 1
// and as the reference the efficient tree algorithm is verified against.
func NaiveGTopKAllReduce(ctx context.Context, comm *collective.Comm, local *sparse.Vector, k int) (*sparse.Vector, error) {
	sum, err := TopKAllReduce(ctx, comm, local)
	if err != nil {
		return nil, err
	}
	return sparse.TopKSparse(sum, k), nil
}

// GTopKAllReduce is the paper's Algorithm 3: an efficient global top-k
// aggregation in 2·ceil(log2(P)) communication rounds.
//
// Phase 1 (tree reduction): ceil(log2(P)) rounds. In round j, every
// rank whose index has j+1 low zero bits receives its partner's sparse
// vector and merges it with the ⊕ operator of Definition 1 (top-k of
// the sum); the partner goes idle. After the last round rank 0 holds
// G̃ = G̃¹ ⊕ G̃² ⊕ … ⊕ G̃ᴾ.
//
// Phase 2 (broadcast): rank 0 broadcasts G̃ to all ranks along a binomial
// tree (the "flat-tree" of the paper), ceil(log2(P)) more rounds.
//
// The returned vector holds the k largest-magnitude entries of the
// element-wise sum as selected greedily by the tree (identical on every
// rank); its Indices serve as the paper's gMask.
//
// The paper assumes power-of-two P (Section III); this implementation
// generalises the binomial tree to any P ≥ 1 — a receiver whose partner
// index falls outside [0, P) simply idles that round — so an elastic
// job that loses a worker (say 4 → 3) keeps aggregating with the same
// algorithm. For power-of-two P the schedule, and therefore the merge
// order and the resulting bits, are unchanged.
//
// Communication cost (Eq. 7): 2·log(P)·α + 4k·log(P)·β.
func GTopKAllReduce(ctx context.Context, comm *collective.Comm, local *sparse.Vector, k int) (*sparse.Vector, error) {
	p := comm.Size()
	r := comm.Rank()
	current := local

	rounds := 0
	for 1<<rounds < p {
		rounds++
	}
	base := comm.ClaimTags(rounds)
	for j := 0; j < rounds; j++ {
		stride := 1 << j
		group := 1 << (j + 1)
		switch {
		case r%group == 0 && r+stride < p:
			// Receiver: partner is r+stride; it holds a live vector.
			blob, err := comm.RecvTag(ctx, r+stride, base+j)
			if err != nil {
				return nil, fmt.Errorf("core: gtopk round %d recv: %w", j, err)
			}
			peerVec, err := sparse.Decode(blob)
			if err != nil {
				return nil, fmt.Errorf("core: gtopk round %d payload: %w", j, err)
			}
			// The blob is dead once decoded (tree receivers never forward
			// it), so it can seed the next round's encode buffer.
			sparse.PutBuffer(blob)
			if current, err = sparse.Merge(current, peerVec, k); err != nil {
				return nil, fmt.Errorf("core: gtopk round %d merge: %w", j, err)
			}
		case r%group == stride:
			// Sender: ship the live vector to r-stride, then go idle.
			if err := comm.SendTag(ctx, r-stride, base+j, sparse.Encode(current)); err != nil {
				return nil, fmt.Errorf("core: gtopk round %d send: %w", j, err)
			}
			current = nil
		}
		// Every rank pays the synchronous round cost: one message of at
		// most 2k elements (k values + k indices) is in flight per pair.
		comm.ChargeRound(2 * k)
	}

	// Phase 2: broadcast the global top-k from rank 0 (Algorithm 3 line 19).
	var payload []byte
	if r == 0 {
		payload = sparse.Encode(current)
	}
	blob, err := comm.Bcast(ctx, 0, payload)
	if err != nil {
		return nil, fmt.Errorf("core: gtopk bcast: %w", err)
	}
	global, err := sparse.Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("core: gtopk bcast payload: %w", err)
	}
	return global, nil
}
