package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/transport"
)

// WorkerResult collects one rank's training telemetry.
type WorkerResult struct {
	Rank          int
	Losses        []float64 // local mini-batch loss per step
	FinalWeights  []float32
	CommStats     collective.Stats
	SimulatedTime time.Duration // 0 when the cluster ran untimed
}

// WorkerSetup builds rank's trainer given its communicator. The setup
// function runs inside the worker goroutine; per-rank state (datasets,
// models) should be created here.
type WorkerSetup func(rank int, comm *collective.Comm) (*Trainer, error)

// ClusterConfig describes a simulated training cluster.
type ClusterConfig struct {
	Workers int
	Steps   int
	// Model, when non-nil, attaches per-worker simulated clocks priced by
	// this α-β model so WorkerResult.SimulatedTime reports modelled
	// communication time on the target network.
	Model *netsim.Model
	// Fabric overrides the default in-process fabric (e.g. a TCP fabric).
	Fabric transport.Fabric
}

// RunCluster spawns cfg.Workers goroutine workers, runs cfg.Steps
// synchronous S-SGD steps on each, and returns per-rank results ordered
// by rank. The first worker error cancels all others.
func RunCluster(ctx context.Context, cfg ClusterConfig, setup WorkerSetup) ([]*WorkerResult, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("core: cluster needs >= 1 worker, got %d", cfg.Workers)
	}
	if cfg.Steps < 0 {
		return nil, fmt.Errorf("core: negative step count %d", cfg.Steps)
	}
	fabric := cfg.Fabric
	if fabric == nil {
		f, err := transport.NewInProc(cfg.Workers)
		if err != nil {
			return nil, err
		}
		defer f.Close() //nolint:errcheck // in-process close never fails
		fabric = f
	} else if fabric.Size() != cfg.Workers {
		return nil, fmt.Errorf("core: fabric size %d != workers %d", fabric.Size(), cfg.Workers)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*WorkerResult, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Workers; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			res, err := runWorker(ctx, rank, cfg, fabric, setup)
			if err != nil {
				errs[rank] = err
				cancel() // unblock peers waiting in collectives
				return
			}
			results[rank] = res
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: worker %d: %w", rank, err)
		}
	}
	return results, nil
}

func runWorker(ctx context.Context, rank int, cfg ClusterConfig, fabric transport.Fabric, setup WorkerSetup) (*WorkerResult, error) {
	comm := collective.New(fabric.Conn(rank))
	var clock netsim.Clock
	if cfg.Model != nil {
		comm.WithClock(&clock, *cfg.Model)
	}
	trainer, err := setup(rank, comm)
	if err != nil {
		return nil, fmt.Errorf("setup: %w", err)
	}
	res := &WorkerResult{Rank: rank, Losses: make([]float64, 0, cfg.Steps)}
	for s := 0; s < cfg.Steps; s++ {
		loss, err := trainer.Step(ctx)
		if err != nil {
			return nil, fmt.Errorf("step %d: %w", s, err)
		}
		res.Losses = append(res.Losses, loss)
	}
	res.FinalWeights = append([]float32(nil), trainer.Weights()...)
	res.CommStats = comm.Stats()
	res.SimulatedTime = clock.Now()
	return res, nil
}
