package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// Benchmarks for the aggregation collectives over the in-process fabric.
// All report allocations: with reused result vectors (the *Into entry
// point) the tree collective's per-rank allocations amortise to the
// handful of phase-2 frames the in-process fabric cannot recycle.

func benchRankVectors(p, dim, k int) []*sparse.Vector {
	vecs, _ := benchVectorsAndSum(p, dim, k)
	return vecs
}

func benchVectorsAndSum(p, dim, k int) ([]*sparse.Vector, []float32) {
	dense, vecs := makeWorkerVectors(uint64(31+p), p, dim, k)
	sum := make([]float32, dim)
	for _, g := range dense {
		for i, v := range g {
			sum[i] += v
		}
	}
	return vecs, sum
}

func BenchmarkGTopKAllReduce(b *testing.B) {
	const dim = 100_000
	for _, rho := range []float64{0.001, 0.01} {
		k := DensityToK(dim, rho)
		for _, p := range []int{2, 4, 8} {
			vecs := benchRankVectors(p, dim, k)
			b.Run(fmt.Sprintf("rho=%g/P=%d", rho, p), func(b *testing.B) {
				fab, err := transport.NewInProc(p)
				if err != nil {
					b.Fatal(err)
				}
				defer fab.Close()
				comms := make([]*collective.Comm, p)
				outs := make([]sparse.Vector, p)
				for r := range comms {
					comms[r] = collective.New(fab.Conn(r))
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for r := range comms {
						wg.Add(1)
						go func(rank int) {
							defer wg.Done()
							if err := GTopKAllReduceInto(context.Background(), comms[rank],
								vecs[rank], k, ChunksFor(k), &outs[rank]); err != nil {
								b.Error(err)
							}
						}(r)
					}
					wg.Wait()
				}
			})
		}
	}
}

func BenchmarkTopKAllReduce(b *testing.B) {
	const dim, rho = 100_000, 0.001
	k := DensityToK(dim, rho)
	for _, p := range []int{2, 4, 8} {
		vecs := benchRankVectors(p, dim, k)
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			fab, err := transport.NewInProc(p)
			if err != nil {
				b.Fatal(err)
			}
			defer fab.Close()
			comms := make([]*collective.Comm, p)
			for r := range comms {
				comms[r] = collective.New(fab.Conn(r))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for r := range comms {
					wg.Add(1)
					go func(rank int) {
						defer wg.Done()
						if _, err := TopKAllReduce(context.Background(), comms[rank], vecs[rank]); err != nil {
							b.Error(err)
						}
					}(r)
				}
				wg.Wait()
			}
		})
	}
}
