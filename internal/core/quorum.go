package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// This file implements the straggler-tolerant quorum variant of the
// gTop-k collective: a round gathers every rank's local top-k at rank 0
// under a per-round deadline, closes once a quorum has contributed, and
// broadcasts a verdict (participant set + merged global top-k) to every
// rank. Stragglers' blocks are never lost — the owner refunds the full
// selected mass to its error-feedback residual, so the missing gradient
// signal rides into a later round exactly like any residual mass
// (DGC's momentum-correction argument makes this convergence-safe).

// quorumRoot is the gathering rank of every quorum round.
const quorumRoot = 0

// verdictAttempts bounds the non-root ranks' deadline-aware wait for the
// root's verdict frame: each attempt spans two round timeouts (the root
// may spend a full deadline gathering before it merges and sends).
const verdictAttempts = 8

// minVerdictBackoff floors the pause between verdict-receive attempts.
// The natural backoff is a quarter of the round deadline, but test-scale
// deadlines (nanoseconds) would truncate that to zero and turn the
// bounded retry loop into a hot spin against the fabric.
const minVerdictBackoff = 200 * time.Microsecond

// LevelTimeouts splits one round deadline into per-level budgets for the
// hierarchical quorum collective: the intra-group gather, the
// leader-level gather, and the verdict broadcast each get their own
// deadline, and the three must fit inside the round's Timeout.
type LevelTimeouts struct {
	// Group bounds the intra-group gather (member frames at the leader).
	Group time.Duration
	// Leader bounds the leader-level gather (group aggregates at rank 0).
	Leader time.Duration
	// Broadcast sizes each verdict-receive attempt on the way back down
	// (the retry loop spans several attempts, so a late verdict is
	// survived, not lost).
	Broadcast time.Duration
}

// QuorumConfig configures the quorum gTop-k collective. The zero value
// disables quorum mode.
type QuorumConfig struct {
	// Q is the number of contributions (the root's own included) that
	// close a round; valid values are [QuorumMin(P), P]. Q = P degrades
	// to a deadline-guarded full synchronization whose result is
	// bit-identical to the flat tree. In the hierarchical collective Q is
	// the intra-group quorum q_g over the G members of a group.
	Q int
	// Timeout is the per-round gather deadline (must be > 0). The
	// hierarchical collective treats it as the whole-round budget that
	// the per-level deadlines split (see Levels and SplitLevels).
	Timeout time.Duration
	// LeaderQ is the hierarchical collective's leader-level quorum q_l
	// over the ⌈P/G⌉ group aggregates; valid values are
	// [QuorumMin(⌈P/G⌉), ⌈P/G⌉]. Zero defaults to a full leader quorum.
	// Must be zero for the flat collective.
	LeaderQ int
	// Levels optionally pins the per-level deadline budgets. The zero
	// value applies the default split policy (SplitLevels): the
	// leader-level gather — the level that crosses the slow links — gets
	// half the round budget, the intra gather and the broadcast a
	// quarter each. Must be zero for the flat collective.
	Levels LevelTimeouts
}

// QuorumMin returns the smallest legal quorum for a P-rank world:
// ⌈P/2⌉+1, a strict majority, so two disjoint quorums can never close
// the same round with different participant sets.
func QuorumMin(p int) int { return (p+1)/2 + 1 }

// Validate checks the configuration against a P-rank world for the FLAT
// quorum collective; the hierarchical fields must be unset.
func (qc QuorumConfig) Validate(p int) error {
	if qc.Timeout <= 0 {
		return fmt.Errorf("core: quorum round timeout %v out of range: need > 0", qc.Timeout)
	}
	if lo := QuorumMin(p); qc.Q < lo || qc.Q > p {
		return fmt.Errorf("core: quorum %d out of range [%d,%d] for %d workers", qc.Q, lo, p, p)
	}
	if qc.LeaderQ != 0 {
		return fmt.Errorf("core: leader quorum %d set, but the collective is flat (a leader level needs a hierarchy)", qc.LeaderQ)
	}
	if qc.Levels != (LevelTimeouts{}) {
		return fmt.Errorf("core: per-level deadline budgets set, but the collective is flat (levels need a hierarchy)")
	}
	return nil
}

// ValidateHier checks the configuration against a P-rank world split
// into contiguous groups of g for the hierarchical quorum collective.
func (qc QuorumConfig) ValidateHier(p, g int) error {
	if qc.Timeout <= 0 {
		return fmt.Errorf("core: quorum round timeout %v out of range: need > 0", qc.Timeout)
	}
	if g <= 1 || g >= p {
		return fmt.Errorf("core: hierarchical quorum group size %d out of range (1,%d)", g, p)
	}
	if lo := QuorumMin(g); qc.Q < lo || qc.Q > g {
		return fmt.Errorf("core: group quorum %d out of range [%d,%d] for groups of %d", qc.Q, lo, g, g)
	}
	numGroups := (p + g - 1) / g
	if qc.LeaderQ != 0 {
		if lo := QuorumMin(numGroups); qc.LeaderQ < lo || qc.LeaderQ > numGroups {
			return fmt.Errorf("core: leader quorum %d out of range [%d,%d] for %d groups", qc.LeaderQ, lo, numGroups, numGroups)
		}
	}
	lt := qc.Levels
	if lt != (LevelTimeouts{}) {
		if lt.Group <= 0 || lt.Leader <= 0 || lt.Broadcast <= 0 {
			return fmt.Errorf("core: per-level deadline budgets must all be positive (got group %v, leader %v, broadcast %v)",
				lt.Group, lt.Leader, lt.Broadcast)
		}
		if sum := lt.Group + lt.Leader + lt.Broadcast; sum > qc.Timeout {
			return fmt.Errorf("core: per-level deadline budgets %v + %v + %v = %v exceed the %v round deadline",
				lt.Group, lt.Leader, lt.Broadcast, sum, qc.Timeout)
		}
	}
	return nil
}

// SplitLevels resolves the per-level deadline budgets: explicit Levels
// win; otherwise the round deadline splits 1/4 : 1/2 : 1/4 across
// intra-group gather, leader gather, and broadcast. The leader level —
// the one whose links cross groups and carry the WAN latency — gets the
// largest slice, and the exact remainder lands on the broadcast so the
// three budgets always sum to the round deadline.
func (qc QuorumConfig) SplitLevels() LevelTimeouts {
	if qc.Levels != (LevelTimeouts{}) {
		return qc.Levels
	}
	group := qc.Timeout / 4
	leader := qc.Timeout / 2
	return LevelTimeouts{Group: group, Leader: leader, Broadcast: qc.Timeout - group - leader}
}

// leaderQuorum resolves the leader-level quorum (LeaderQ, defaulting to
// every leader) for a world of numGroups groups.
func (qc QuorumConfig) leaderQuorum(numGroups int) int {
	if qc.LeaderQ > 0 {
		return qc.LeaderQ
	}
	return numGroups
}

// groupQuorum clamps the configured intra-group quorum for one concrete
// group: the tail group of a non-divisible world is smaller than g, so
// the quorum shrinks with it but never below that group's own strict
// majority.
func groupQuorum(q, groupSize int) int {
	if q > groupSize {
		q = groupSize
	}
	lo := QuorumMin(groupSize)
	if lo > groupSize {
		// A group of 1 or 2 has no strict majority above its own size:
		// the whole group is the quorum.
		lo = groupSize
	}
	if q < lo {
		q = lo
	}
	return q
}

// verdictRetryPolicy sizes the deadline-aware verdict receive: each
// attempt spans two deadlines (the sender may spend a full deadline
// gathering before it merges and forwards), retried with a backoff of a
// quarter deadline clamped to minVerdictBackoff.
func verdictRetryPolicy(deadline time.Duration) transport.RetryPolicy {
	backoff := deadline / 4
	if backoff < minVerdictBackoff {
		backoff = minVerdictBackoff
	}
	return transport.RetryPolicy{
		Timeout:  2 * deadline,
		Attempts: verdictAttempts,
		Backoff:  backoff,
	}
}

// QuorumGTopKAllReduce wraps QuorumGTopKAllReduceInto with a fresh
// result vector.
func QuorumGTopKAllReduce(ctx context.Context, comm *collective.Comm, local *sparse.Vector, k int, qc QuorumConfig) (*sparse.Vector, bool, []int, error) {
	out := &sparse.Vector{}
	participated, missed, err := QuorumGTopKAllReduceInto(ctx, comm, local, k, qc, out)
	return out, participated, missed, err
}

// QuorumGTopKAllReduceInto runs one quorum gTop-k round: every rank
// ships its local top-k to rank 0 in a single codec frame; the root
// closes the gather after the deadline with at least qc.Q contributions
// (collective.QuorumGather), merges the participants' frames with the
// SAME binomial-tree schedule the flat collective uses — at full
// participation the merge order, and therefore the bits, are identical
// to GTopKAllReduceInto under a lossless wire codec — and broadcasts a
// verdict carrying the participant set and the merged global top-k.
//
// Every rank returns the verdict's global top-k in out, whether its own
// contribution made the round (participated), and which ranks missed.
// The caller owns the conservation step: a participant folds
// quantization error and puts back globally-dropped values as usual; a
// straggler refunds its entire selected mass to the residual
// (Sparsifier.Refund) and skips put-back.
func QuorumGTopKAllReduceInto(ctx context.Context, comm *collective.Comm, local *sparse.Vector, k int, qc QuorumConfig, out *sparse.Vector) (bool, []int, error) {
	p := comm.Size()
	if err := qc.Validate(p); err != nil {
		return false, nil, err
	}
	codec := comm.WireCodec()
	r := comm.Rank()

	// Encode the whole local selection as one frame. Under a lossy v3
	// codec the values are pinned in place first (the caller snapshots
	// originals before this collective, exactly like the flat path).
	var scale float32
	var levels []int16
	if codec.WireVersion() == 3 && codec.Lossy() {
		scale, levels = transformForWire(comm, codec, local.Values)
	}
	frame := encodeSparseChunk(codec, local, 0, local.NNZ(), scale, levels)
	comm.TallyWire(sparse.EncodedSize(local.NNZ()), len(frame))

	round, err := comm.QuorumGather(ctx, quorumRoot, qc.Q, qc.Timeout, frame)
	if err != nil {
		return false, nil, fmt.Errorf("core: quorum gather: %w", err)
	}

	vtag := comm.ClaimTags(1)
	var participants []int
	var verdictBytes int
	if r == quorumRoot {
		merged, err := quorumTreeFold(codec, round, k)
		if err != nil {
			return false, nil, err
		}
		participants = round.Participants
		// Pin the merged result to the wire precision BEFORE both the
		// local copy and the verdict encode, so the root keeps exactly
		// the bits every other rank decodes.
		var vscale float32
		var vlevels []int16
		if codec.Lossy() {
			vscale, vlevels = transformForWire(comm, codec, merged.Values)
		}
		sparse.CopyInto(out, merged)
		verdict := encodeVerdict(codec, participants, merged, vscale, vlevels)
		sparse.PutVector(merged)
		verdictBytes = len(verdict)
		comm.TallyWire(sparse.EncodedSize(out.NNZ()), len(verdict))
		for dst := 0; dst < p; dst++ {
			if dst == quorumRoot {
				continue
			}
			if err := comm.SendTag(ctx, dst, vtag, verdict); err != nil {
				return false, nil, fmt.Errorf("core: quorum verdict send to %d: %w", dst, err)
			}
		}
	} else {
		blob, err := comm.RecvTagRetry(ctx, quorumRoot, vtag, verdictRetryPolicy(qc.Timeout))
		if err != nil {
			return false, nil, fmt.Errorf("core: quorum verdict recv: %w", err)
		}
		verdictBytes = len(blob)
		participants, err = decodeVerdict(codec, blob, p, out)
		if err != nil {
			return false, nil, fmt.Errorf("core: quorum verdict: %w", err)
		}
	}

	participated := rankIn(participants, r)
	missed := missedFrom(participants, p)
	// Both legs are charged from the verdict's participant set, so every
	// rank's simulated clock is a pure function of the straggler
	// schedule: modelled 2k elements per contribution on the gather, and
	// on the broadcast the verdict's modelled flat size under v1 but its
	// MEASURED encoded size under v2/v3 — the same raw-vs-compressed rule
	// every other codec-aware leg follows, so the clock agrees with the
	// WireTally across codecs.
	verdictElems := sparse.EncodedSize(out.NNZ()) / 4
	if codec.WireVersion() != 1 {
		verdictElems = (verdictBytes + 3) / 4
	}
	comm.ChargeQuorumRound(quorumRoot, participants, 2*k, verdictElems)
	return participated, missed, nil
}

// rankIn reports whether rank r is in the ascending participant set.
func rankIn(participants []int, r int) bool {
	for _, pr := range participants {
		if pr == r {
			return true
		}
	}
	return false
}

// missedFrom derives the missed set — the complement of the ascending
// participant set in [0, p) — with a sorted-merge walk (decodeVerdict
// guarantees the sortedness the walk relies on).
func missedFrom(participants []int, p int) []int {
	if len(participants) >= p {
		return nil
	}
	missed := make([]int, 0, p-len(participants))
	j := 0
	for rank := 0; rank < p; rank++ {
		if j < len(participants) && participants[j] == rank {
			j++
			continue
		}
		missed = append(missed, rank)
	}
	return missed
}

// quorumTreeFold merges the gathered participant frames on the root with
// the generalized binomial-tree schedule over participant POSITIONS
// (rank-ascending): in round j, position i with i mod 2^(j+1) == 0
// absorbs position i+2^j via the ⊕ operator of Definition 1 (top-k of
// the sum). With all P ranks participating, positions coincide with
// ranks and every accumulator sees the exact ⊕ sequence of the
// distributed tree — which is what makes q=P rounds bit-identical to the
// flat path. The returned vector is pooled; the caller releases it.
func quorumTreeFold(codec sparse.Codec, round *collective.QuorumRound, k int) (*sparse.Vector, error) {
	m := len(round.Participants)
	vecs := make([]*sparse.Vector, m)
	owned := make([]bool, m)
	defer func() {
		for i, v := range vecs {
			if owned[i] && v != nil {
				sparse.PutVector(v)
			}
		}
	}()
	for i, rank := range round.Participants {
		blob := round.Blobs[rank]
		switch codec.WireVersion() {
		case 1:
			v, err := sparse.DecodeView(blob)
			if err != nil {
				return nil, fmt.Errorf("core: quorum frame from %d: %w", rank, err)
			}
			vc := v
			vecs[i] = &vc
		default:
			dst := sparse.GetVector()
			if _, err := decodeWireFrame(codec, blob, dst); err != nil {
				sparse.PutVector(dst)
				return nil, fmt.Errorf("core: quorum frame from %d: %w", rank, err)
			}
			vecs[i], owned[i] = dst, true
		}
	}
	res, err := binomialPositionFold(vecs, owned, k)
	if err != nil {
		return nil, err
	}
	// The gathered blobs are dead once merged; recycle the pooled ones
	// (the root's own frame came from the encoder pool, received frames
	// follow the same receiver-recycles convention as the flat tree).
	for _, rank := range round.Participants {
		sparse.PutBuffer(round.Blobs[rank])
	}
	return res, nil
}

// binomialPositionFold runs the position-binomial ⊕ schedule over vecs
// (participant-position order): in round j, position i with
// i mod 2^(j+1) == 0 absorbs position i+2^j via top-k of the sum. The
// result is always a fresh pooled vector (a sole v1 participant's
// blob-aliasing view is copied out); absorbed intermediates stay in vecs
// for the caller's deferred cleanup, and vecs[0] is cleared so the
// cleanup never releases the result.
func binomialPositionFold(vecs []*sparse.Vector, owned []bool, k int) (*sparse.Vector, error) {
	m := len(vecs)
	for stride := 1; stride < m; stride <<= 1 {
		for i := 0; i+stride < m; i += 2 * stride {
			sum := sparse.GetVector()
			if err := sparse.AddInto(sum, vecs[i], vecs[i+stride]); err != nil {
				sparse.PutVector(sum)
				return nil, fmt.Errorf("core: quorum merge: %w", err)
			}
			dst := sparse.GetVector()
			sparse.TopKSparseInto(dst, sum, k)
			sparse.PutVector(sum)
			if owned[i] {
				sparse.PutVector(vecs[i])
			}
			vecs[i], owned[i] = dst, true
		}
	}
	res := vecs[0]
	if !owned[0] {
		res = sparse.GetVector()
		sparse.CopyInto(res, vecs[0])
	}
	vecs[0], owned[0] = nil, false
	return res, nil
}

// encodeVerdict serializes the round verdict: a participant-set header
// followed by the merged global top-k in the mesh codec.
func encodeVerdict(codec sparse.Codec, participants []int, v *sparse.Vector, scale float32, levels []int16) []byte {
	frame := encodeSparseChunk(codec, v, 0, v.NNZ(), scale, levels)
	buf := make([]byte, 4+4*len(participants)+len(frame))
	binary.LittleEndian.PutUint32(buf, uint32(len(participants)))
	for i, p := range participants {
		binary.LittleEndian.PutUint32(buf[4+4*i:], uint32(p))
	}
	copy(buf[4+4*len(participants):], frame)
	sparse.PutBuffer(frame)
	return buf
}

// decodeVerdict parses a verdict frame into out and returns the
// participant set. The set must be strictly ascending ranks inside
// [0, p) — the canonical form every encoder produces and the sorted-merge
// missed-set derivation relies on — so a frame that violates it is
// rejected rather than silently producing a wrong missed set.
func decodeVerdict(codec sparse.Codec, blob []byte, p int, out *sparse.Vector) ([]int, error) {
	if len(blob) < 4 {
		return nil, fmt.Errorf("core: verdict truncated (%d bytes)", len(blob))
	}
	n := int(binary.LittleEndian.Uint32(blob))
	if n < 1 || n > p || len(blob) < 4+4*n {
		return nil, fmt.Errorf("core: verdict header invalid (%d participants of %d ranks, %d bytes)", n, p, len(blob))
	}
	participants := make([]int, n)
	for i := range participants {
		r := int(binary.LittleEndian.Uint32(blob[4+4*i:]))
		if r >= p {
			return nil, fmt.Errorf("core: verdict participant %d out of range [0,%d)", r, p)
		}
		if i > 0 && r <= participants[i-1] {
			return nil, fmt.Errorf("core: verdict participant set not strictly ascending (%d after %d)", r, participants[i-1])
		}
		participants[i] = r
	}
	var scratch *sparse.Vector
	if codec.WireVersion() != 1 {
		scratch = sparse.GetVector()
		defer sparse.PutVector(scratch)
	}
	v, err := decodeWireFrame(codec, blob[4+4*n:], scratch)
	if err != nil {
		return nil, err
	}
	sparse.CopyInto(out, &v)
	return participants, nil
}
