package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// This file implements the straggler-tolerant quorum variant of the
// gTop-k collective: a round gathers every rank's local top-k at rank 0
// under a per-round deadline, closes once a quorum has contributed, and
// broadcasts a verdict (participant set + merged global top-k) to every
// rank. Stragglers' blocks are never lost — the owner refunds the full
// selected mass to its error-feedback residual, so the missing gradient
// signal rides into a later round exactly like any residual mass
// (DGC's momentum-correction argument makes this convergence-safe).

// quorumRoot is the gathering rank of every quorum round.
const quorumRoot = 0

// verdictAttempts bounds the non-root ranks' deadline-aware wait for the
// root's verdict frame: each attempt spans two round timeouts (the root
// may spend a full deadline gathering before it merges and sends).
const verdictAttempts = 8

// QuorumConfig configures the quorum gTop-k collective. The zero value
// disables quorum mode.
type QuorumConfig struct {
	// Q is the number of contributions (the root's own included) that
	// close a round; valid values are [QuorumMin(P), P]. Q = P degrades
	// to a deadline-guarded full synchronization whose result is
	// bit-identical to the flat tree.
	Q int
	// Timeout is the per-round gather deadline (must be > 0).
	Timeout time.Duration
}

// QuorumMin returns the smallest legal quorum for a P-rank world:
// ⌈P/2⌉+1, a strict majority, so two disjoint quorums can never close
// the same round with different participant sets.
func QuorumMin(p int) int { return (p+1)/2 + 1 }

// Validate checks the configuration against a P-rank world.
func (qc QuorumConfig) Validate(p int) error {
	if qc.Timeout <= 0 {
		return fmt.Errorf("core: quorum round timeout %v out of range: need > 0", qc.Timeout)
	}
	if lo := QuorumMin(p); qc.Q < lo || qc.Q > p {
		return fmt.Errorf("core: quorum %d out of range [%d,%d] for %d workers", qc.Q, lo, p, p)
	}
	return nil
}

// QuorumGTopKAllReduce wraps QuorumGTopKAllReduceInto with a fresh
// result vector.
func QuorumGTopKAllReduce(ctx context.Context, comm *collective.Comm, local *sparse.Vector, k int, qc QuorumConfig) (*sparse.Vector, bool, []int, error) {
	out := &sparse.Vector{}
	participated, missed, err := QuorumGTopKAllReduceInto(ctx, comm, local, k, qc, out)
	return out, participated, missed, err
}

// QuorumGTopKAllReduceInto runs one quorum gTop-k round: every rank
// ships its local top-k to rank 0 in a single codec frame; the root
// closes the gather after the deadline with at least qc.Q contributions
// (collective.QuorumGather), merges the participants' frames with the
// SAME binomial-tree schedule the flat collective uses — at full
// participation the merge order, and therefore the bits, are identical
// to GTopKAllReduceInto under a lossless wire codec — and broadcasts a
// verdict carrying the participant set and the merged global top-k.
//
// Every rank returns the verdict's global top-k in out, whether its own
// contribution made the round (participated), and which ranks missed.
// The caller owns the conservation step: a participant folds
// quantization error and puts back globally-dropped values as usual; a
// straggler refunds its entire selected mass to the residual
// (Sparsifier.Refund) and skips put-back.
func QuorumGTopKAllReduceInto(ctx context.Context, comm *collective.Comm, local *sparse.Vector, k int, qc QuorumConfig, out *sparse.Vector) (bool, []int, error) {
	p := comm.Size()
	if err := qc.Validate(p); err != nil {
		return false, nil, err
	}
	codec := comm.WireCodec()
	r := comm.Rank()

	// Encode the whole local selection as one frame. Under a lossy v3
	// codec the values are pinned in place first (the caller snapshots
	// originals before this collective, exactly like the flat path).
	var scale float32
	var levels []int16
	if codec.WireVersion() == 3 && codec.Lossy() {
		scale, levels = transformForWire(comm, codec, local.Values)
	}
	frame := encodeSparseChunk(codec, local, 0, local.NNZ(), scale, levels)
	comm.TallyWire(sparse.EncodedSize(local.NNZ()), len(frame))

	round, err := comm.QuorumGather(ctx, quorumRoot, qc.Q, qc.Timeout, frame)
	if err != nil {
		return false, nil, fmt.Errorf("core: quorum gather: %w", err)
	}

	vtag := comm.ClaimTags(1)
	var participants []int
	if r == quorumRoot {
		merged, err := quorumTreeFold(codec, round, k)
		if err != nil {
			return false, nil, err
		}
		participants = round.Participants
		// Pin the merged result to the wire precision BEFORE both the
		// local copy and the verdict encode, so the root keeps exactly
		// the bits every other rank decodes.
		var vscale float32
		var vlevels []int16
		if codec.Lossy() {
			vscale, vlevels = transformForWire(comm, codec, merged.Values)
		}
		sparse.CopyInto(out, merged)
		verdict := encodeVerdict(codec, participants, merged, vscale, vlevels)
		sparse.PutVector(merged)
		for dst := 0; dst < p; dst++ {
			if dst == quorumRoot {
				continue
			}
			if err := comm.SendTag(ctx, dst, vtag, verdict); err != nil {
				return false, nil, fmt.Errorf("core: quorum verdict send to %d: %w", dst, err)
			}
		}
	} else {
		pol := transport.RetryPolicy{
			Timeout:  2 * qc.Timeout,
			Attempts: verdictAttempts,
			Backoff:  qc.Timeout / 4,
		}
		blob, err := comm.RecvTagRetry(ctx, quorumRoot, vtag, pol)
		if err != nil {
			return false, nil, fmt.Errorf("core: quorum verdict recv: %w", err)
		}
		participants, err = decodeVerdict(codec, blob, out)
		if err != nil {
			return false, nil, fmt.Errorf("core: quorum verdict: %w", err)
		}
	}

	participated := false
	for _, pr := range participants {
		if pr == r {
			participated = true
			break
		}
	}
	var missed []int
	if len(participants) < p {
		missed = make([]int, 0, p-len(participants))
		j := 0
		for rank := 0; rank < p; rank++ {
			if j < len(participants) && participants[j] == rank {
				j++
				continue
			}
			missed = append(missed, rank)
		}
	}
	// Both legs are charged from the verdict's participant set, so every
	// rank's simulated clock is a pure function of the straggler
	// schedule: modelled 2k elements per contribution on the gather, the
	// verdict's flat-equivalent size on the broadcast.
	comm.ChargeQuorumRound(quorumRoot, participants, 2*k, sparse.EncodedSize(out.NNZ())/4)
	return participated, missed, nil
}

// quorumTreeFold merges the gathered participant frames on the root with
// the generalized binomial-tree schedule over participant POSITIONS
// (rank-ascending): in round j, position i with i mod 2^(j+1) == 0
// absorbs position i+2^j via the ⊕ operator of Definition 1 (top-k of
// the sum). With all P ranks participating, positions coincide with
// ranks and every accumulator sees the exact ⊕ sequence of the
// distributed tree — which is what makes q=P rounds bit-identical to the
// flat path. The returned vector is pooled; the caller releases it.
func quorumTreeFold(codec sparse.Codec, round *collective.QuorumRound, k int) (*sparse.Vector, error) {
	m := len(round.Participants)
	vecs := make([]*sparse.Vector, m)
	owned := make([]bool, m)
	defer func() {
		for i, v := range vecs {
			if owned[i] && v != nil {
				sparse.PutVector(v)
			}
		}
	}()
	for i, rank := range round.Participants {
		blob := round.Blobs[rank]
		switch codec.WireVersion() {
		case 1:
			v, err := sparse.DecodeView(blob)
			if err != nil {
				return nil, fmt.Errorf("core: quorum frame from %d: %w", rank, err)
			}
			vc := v
			vecs[i] = &vc
		default:
			dst := sparse.GetVector()
			if _, err := decodeWireFrame(codec, blob, dst); err != nil {
				sparse.PutVector(dst)
				return nil, fmt.Errorf("core: quorum frame from %d: %w", rank, err)
			}
			vecs[i], owned[i] = dst, true
		}
	}
	for stride := 1; stride < m; stride <<= 1 {
		for i := 0; i+stride < m; i += 2 * stride {
			sum := sparse.GetVector()
			if err := sparse.AddInto(sum, vecs[i], vecs[i+stride]); err != nil {
				sparse.PutVector(sum)
				return nil, fmt.Errorf("core: quorum merge: %w", err)
			}
			dst := sparse.GetVector()
			sparse.TopKSparseInto(dst, sum, k)
			sparse.PutVector(sum)
			if owned[i] {
				sparse.PutVector(vecs[i])
			}
			vecs[i], owned[i] = dst, true
		}
	}
	// The gathered blobs are dead once merged; recycle the pooled ones
	// (the root's own frame came from the encoder pool, received frames
	// follow the same receiver-recycles convention as the flat tree).
	res := vecs[0]
	if m == 1 && !owned[0] {
		// Sole participant under v1: the vector still aliases its blob.
		res = sparse.GetVector()
		sparse.CopyInto(res, vecs[0])
	}
	owned[0] = false
	vecs[0] = nil
	for _, rank := range round.Participants {
		sparse.PutBuffer(round.Blobs[rank])
	}
	return res, nil
}

// encodeVerdict serializes the round verdict: a participant-set header
// followed by the merged global top-k in the mesh codec.
func encodeVerdict(codec sparse.Codec, participants []int, v *sparse.Vector, scale float32, levels []int16) []byte {
	frame := encodeSparseChunk(codec, v, 0, v.NNZ(), scale, levels)
	buf := make([]byte, 4+4*len(participants)+len(frame))
	binary.LittleEndian.PutUint32(buf, uint32(len(participants)))
	for i, p := range participants {
		binary.LittleEndian.PutUint32(buf[4+4*i:], uint32(p))
	}
	copy(buf[4+4*len(participants):], frame)
	sparse.PutBuffer(frame)
	return buf
}

// decodeVerdict parses a verdict frame into out and returns the
// participant set.
func decodeVerdict(codec sparse.Codec, blob []byte, out *sparse.Vector) ([]int, error) {
	if len(blob) < 4 {
		return nil, fmt.Errorf("core: verdict truncated (%d bytes)", len(blob))
	}
	n := int(binary.LittleEndian.Uint32(blob))
	if n < 1 || len(blob) < 4+4*n {
		return nil, fmt.Errorf("core: verdict header invalid (%d participants, %d bytes)", n, len(blob))
	}
	participants := make([]int, n)
	for i := range participants {
		participants[i] = int(binary.LittleEndian.Uint32(blob[4+4*i:]))
	}
	var scratch *sparse.Vector
	if codec.WireVersion() != 1 {
		scratch = sparse.GetVector()
		defer sparse.PutVector(scratch)
	}
	v, err := decodeWireFrame(codec, blob[4+4*n:], scratch)
	if err != nil {
		return nil, err
	}
	sparse.CopyInto(out, &v)
	return participants, nil
}
