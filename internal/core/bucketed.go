package core

import (
	"context"
	"fmt"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/sparse"
)

// This file implements the bucketed, overlapped aggregation pipeline: the
// flat gradient is partitioned into layer-aligned buckets, each bucket
// runs sparsification + gTopKAllReduce on its own tag-isolated
// sub-communicator (collective.Comm.Fork), and buckets are handed to the
// pipeline as soon as their slice of the gradient is final — so
// communication of late layers overlaps both the backward computation of
// early layers and the communication of other buckets. This is the
// wait-free-backpropagation direction the paper sketches in Section VII
// ("pipelining the gradient exchange with backward propagation"), applied
// to gTop-k.

// StreamGradFn computes one worker's mini-batch gradient like GradFn, but
// additionally invokes ready(lo, hi) the moment the flat-gradient range
// [lo, hi) is final (typically once per layer, tail-first, as the
// backward pass retires layers). Ranges must be disjoint and must jointly
// cover [0, len(grad)) by the time the function returns; the trainer
// treats anything not announced as ready at return.
type StreamGradFn func(iter int, weights, grad []float32, ready func(lo, hi int)) float64

// BucketStreamer is the streaming aggregation contract: an Aggregator
// that can start communicating gradient buckets before the whole gradient
// exists. One iteration is Begin → any number of Ready calls → Finish;
// Aggregate remains the serial facade (Begin + Finish back to back).
type BucketStreamer interface {
	Aggregator
	// Begin starts an iteration over grad. The aggregator reads grad
	// slices only after they are covered by Ready (or at Finish).
	Begin(ctx context.Context, grad []float32) error
	// Ready marks the gradient range [lo, hi) as final. When a bucket
	// becomes fully covered its pipeline launches immediately.
	Ready(lo, hi int)
	// Finish launches any buckets not yet announced, waits for the whole
	// pipeline to drain, and returns the dense update (mean over ranks).
	Finish() ([]float32, error)
}

// bucketState is one bucket's long-lived pipeline state: a tag-isolated
// sub-communicator (so its collectives never interleave with other
// buckets'), a private error-feedback residual over the bucket's range,
// and a private simulated clock when the parent communicator is timed.
type bucketState struct {
	idx      int
	comm     *collective.Comm
	gc       *collective.GroupComms // non-nil when the pipeline is hierarchical
	clock    *netsim.Clock          // nil when the parent is untimed
	sp       *Sparsifier
	velocity []float32 // DGC momentum-correction buffer (nil when disabled)
	lo       int
	hi       int
	k        int
	out      sparse.Vector // reused per-bucket collective result

	dc   *DensityController // adaptive per-bucket density (nil = static k)
	iter int                // rounds completed by this bucket
	orig []float32          // pre-transform value snapshot for FoldError (reused)

	remaining int // uncovered elements in the current iteration
	launched  bool
}

// bucketDone reports one bucket's completed collective back to Finish.
type bucketDone struct {
	idx    int
	err    error
	comm   time.Duration // simulated communication time of this bucket
	missed bool          // this rank's frame missed the bucket's quorum round
	stats  collective.Stats
}

// BucketedAggregator runs gTop-k S-SGD per layer-aligned bucket with
// overlapped communication: bucket b selects k_b = max(1, ρ·m_b) of its
// m_b gradients and aggregates them with GTopKAllReduce concurrently with
// the other buckets (and, through the BucketStreamer interface, with the
// backward pass still producing earlier buckets).
//
// Selection semantics are per bucket, exactly as if an independent
// GTopKAggregator ran on each bucket's gradient slice — the bucketed
// pipeline is bitwise-identical to that serial composition, which the
// tests assert. With a single bucket spanning the whole gradient it is
// bitwise-identical to GTopKAggregator itself. Updates remain
// deterministic and identical on every rank: bucket i only ever talks to
// bucket i on peer ranks, over its own tag space, regardless of the
// launch order or interleaving of goroutines.
//
// Simulated-time accounting models the buckets' sub-communicators as
// concurrent: each iteration advances the parent clock by the SLOWEST
// bucket's communication time rather than the sum. Per-bucket durations
// of the last iteration are exposed via LastBucketTimes so benchmarks can
// also price stricter schedules (e.g. a single shared NIC).
type BucketedAggregator struct {
	parent  *collective.Comm
	bounds  []int
	buckets []*bucketState
	dense   []float32
	group   int // hierarchical group size (0 or 1 = flat per-bucket gTop-k)

	mu float32 // DGC momentum-correction coefficient (0 disables)

	// quorum, when enabled, replaces every bucket's flat tree with the
	// straggler-tolerant quorum collective; missStreak counts consecutive
	// iterations in which ANY of this rank's buckets missed its round.
	quorum     QuorumConfig
	missStreak int

	// Per-iteration streaming state.
	ctx      context.Context
	grad     []float32
	inFlight int
	done     chan bucketDone
	lastComm []time.Duration
}

var _ BucketStreamer = (*BucketedAggregator)(nil)

// NewBucketedAggregator creates the bucketed pipeline. bounds are
// cumulative bucket offsets (bounds[0] = 0, bounds[B] = dim, strictly
// increasing) — derive them from a model's layer bounds with GroupBounds.
// Each bucket selects DensityToK(size, density) gradients per iteration.
func NewBucketedAggregator(comm *collective.Comm, bounds []int, density float64) (*BucketedAggregator, error) {
	return newBucketedAggregator(comm, bounds, density, 0)
}

// NewHierarchicalBucketedAggregator is NewBucketedAggregator with every
// bucket's collective replaced by the two-level hierarchical gTop-k over
// groups of `group` ranks: each bucket's tag-isolated sub-communicator
// forks its own member/leader hierarchy, so buckets still overlap
// freely. group <= 1 or group >= world degenerates to the flat bucketed
// pipeline, bit-identically.
func NewHierarchicalBucketedAggregator(comm *collective.Comm, bounds []int, density float64, group int) (*BucketedAggregator, error) {
	if group < 1 {
		return nil, fmt.Errorf("core: bucketed: group size %d out of range: need >= 1", group)
	}
	return newBucketedAggregator(comm, bounds, density, group)
}

func newBucketedAggregator(comm *collective.Comm, bounds []int, density float64, group int) (*BucketedAggregator, error) {
	if len(bounds) < 2 || bounds[0] != 0 {
		return nil, fmt.Errorf("core: bucketed: bounds must start at 0 and cover >= 1 bucket")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("core: bucketed: bounds not strictly increasing at %d", i)
		}
	}
	if density <= 0 || density > 1 {
		return nil, fmt.Errorf("core: bucketed: density %v out of (0,1]", density)
	}
	n := len(bounds) - 1
	kids, err := comm.Fork(n)
	if err != nil {
		return nil, fmt.Errorf("core: bucketed: %w", err)
	}
	model, timed := comm.Model()
	dim := bounds[n]
	a := &BucketedAggregator{
		parent:   comm,
		bounds:   append([]int(nil), bounds...),
		buckets:  make([]*bucketState, n),
		dense:    make([]float32, dim),
		group:    group,
		done:     make(chan bucketDone, n),
		lastComm: make([]time.Duration, n),
	}
	hier := group > 1 && group < comm.Size()
	for i := 0; i < n; i++ {
		lo, hi := bounds[i], bounds[i+1]
		b := &bucketState{
			idx:  i,
			comm: kids[i],
			sp:   NewSparsifier(hi - lo),
			lo:   lo,
			hi:   hi,
			k:    DensityToK(hi-lo, density),
		}
		if timed {
			b.clock = &netsim.Clock{}
			b.comm.WithClock(b.clock, model)
		}
		if hier {
			gc, err := kids[i].ForkGroup(group)
			if err != nil {
				return nil, fmt.Errorf("core: bucketed: bucket %d hierarchy: %w", i, err)
			}
			// The group sub-comms share the bucket's private clock, so
			// the slowest-bucket accounting in Finish stays correct.
			attachHierClocks(b.comm, gc)
			b.gc = gc
		}
		a.buckets[i] = b
	}
	return a, nil
}

// Name implements Aggregator.
func (a *BucketedAggregator) Name() string {
	if a.group > 1 && a.group < a.parent.Size() {
		return "gtopk-bucketed-hier"
	}
	if a.quorum.Q > 0 {
		return "gtopk-bucketed-quorum"
	}
	return "gtopk-bucketed"
}

// SetQuorum enables the straggler-tolerant quorum collective on every
// bucket (same Q and deadline per bucket round; see
// GTopKAggregator.SetQuorum). A bucket this rank's frame misses refunds
// that bucket's selected mass to its private residual. Incompatible with
// the hierarchical pipeline — the two-level collective has no quorum
// variant. A zero cfg disables quorum mode. Call before training, not
// between Begin and Finish.
func (a *BucketedAggregator) SetQuorum(cfg QuorumConfig) error {
	if cfg == (QuorumConfig{}) {
		a.quorum = cfg
		return nil
	}
	if a.group > 1 && a.group < a.parent.Size() {
		return fmt.Errorf("core: bucketed: quorum mode is incompatible with the hierarchical pipeline")
	}
	if err := cfg.Validate(a.parent.Size()); err != nil {
		return err
	}
	a.quorum = cfg
	return nil
}

// QuorumMissStreak returns how many consecutive iterations at least one
// of this rank's buckets missed its quorum deadline (0 when fully
// participating or when quorum mode is off).
func (a *BucketedAggregator) QuorumMissStreak() int { return a.missStreak }

// SetMomentumCorrection enables DGC-style momentum correction (see
// TopKAggregator.SetMomentumCorrection), maintained per bucket so each
// bucket goroutine owns its slice of the velocity. When enabled,
// configure the trainer with Momentum: 0. Call before training, not
// between Begin and Finish.
func (a *BucketedAggregator) SetMomentumCorrection(mu float32) {
	a.mu = mu
	for _, b := range a.buckets {
		if mu > 0 && b.velocity == nil {
			b.velocity = make([]float32, b.hi-b.lo)
		}
	}
}

// SetAdaptiveDensity replaces every bucket's static selection count with
// a DensityController steering that bucket's encoded frame size toward
// its share of budgetBytes (split proportionally to bucket size, ≥ 1
// byte). Each bucket's controller is seeded from seed mixed with the
// bucket index — pass the SAME seed on every rank (never mix the rank
// in): the controllers' observations come from the bit-identical global
// result, so identical seeds make the per-round k schedule identical on
// every replica, which the determinism tests pin. Call before training,
// not between Begin and Finish.
func (a *BucketedAggregator) SetAdaptiveDensity(budgetBytes int64, seed uint64) error {
	if budgetBytes < 1 {
		return fmt.Errorf("core: bucketed: adaptive density budget %d bytes; need >= 1", budgetBytes)
	}
	dim := int64(a.bounds[len(a.bounds)-1])
	for _, b := range a.buckets {
		size := int64(b.hi - b.lo)
		budget := budgetBytes * size / dim
		if budget < 1 {
			budget = 1
		}
		dc, err := NewDensityController(b.k, 1, b.hi-b.lo, budget, seed^mixRound(b.idx))
		if err != nil {
			return fmt.Errorf("core: bucketed: bucket %d: %w", b.idx, err)
		}
		b.dc = dc
		b.iter = 0
	}
	return nil
}

// NumBuckets returns the number of buckets in the pipeline.
func (a *BucketedAggregator) NumBuckets() int { return len(a.buckets) }

// BucketKs returns each bucket's current selection count — the adaptive
// controller's latest resolved k when SetAdaptiveDensity is active, the
// static DensityToK value otherwise. Call between iterations, not while
// buckets are in flight.
func (a *BucketedAggregator) BucketKs() []int {
	ks := make([]int, len(a.buckets))
	for i, b := range a.buckets {
		ks[i] = b.k
	}
	return ks
}

// Bounds returns the cumulative bucket offsets.
func (a *BucketedAggregator) Bounds() []int { return append([]int(nil), a.bounds...) }

// LastBucketTimes returns each bucket's simulated communication time of
// the most recent iteration (all zero when the communicator is untimed).
func (a *BucketedAggregator) LastBucketTimes() []time.Duration {
	return append([]time.Duration(nil), a.lastComm...)
}

// Aggregate implements Aggregator: the serial facade over the pipeline.
// Buckets still communicate concurrently with each other; only the
// overlap with gradient computation is given up.
func (a *BucketedAggregator) Aggregate(ctx context.Context, grad []float32) ([]float32, error) {
	if err := a.Begin(ctx, grad); err != nil {
		return nil, err
	}
	return a.Finish()
}

// Begin implements BucketStreamer.
func (a *BucketedAggregator) Begin(ctx context.Context, grad []float32) error {
	if a.grad != nil {
		return fmt.Errorf("core: bucketed: Begin before previous Finish")
	}
	if len(grad) != len(a.dense) {
		return fmt.Errorf("core: bucketed aggregate: dim %d, want %d", len(grad), len(a.dense))
	}
	a.ctx = ctx
	a.grad = grad
	for _, b := range a.buckets {
		b.remaining = b.hi - b.lo
		b.launched = false
	}
	return nil
}

// Ready implements BucketStreamer. Ranges from distinct calls must not
// overlap within one iteration.
func (a *BucketedAggregator) Ready(lo, hi int) {
	for _, b := range a.buckets {
		if b.launched || hi <= b.lo || lo >= b.hi {
			continue
		}
		olo, ohi := max(lo, b.lo), min(hi, b.hi)
		b.remaining -= ohi - olo
		if b.remaining <= 0 {
			a.launch(b)
		}
	}
}

// Finish implements BucketStreamer.
func (a *BucketedAggregator) Finish() ([]float32, error) {
	if a.grad == nil {
		return nil, fmt.Errorf("core: bucketed: Finish without Begin")
	}
	for _, b := range a.buckets {
		if !b.launched {
			a.launch(b)
		}
	}
	var firstErr error
	var slowest time.Duration
	anyMissed := false
	for a.inFlight > 0 {
		d := <-a.done
		a.inFlight--
		if d.err != nil && firstErr == nil {
			firstErr = d.err
		}
		if d.missed {
			anyMissed = true
		}
		a.lastComm[d.idx] = d.comm
		if d.comm > slowest {
			slowest = d.comm
		}
		a.parent.AddStats(d.stats)
	}
	a.grad = nil
	a.ctx = nil
	if firstErr != nil {
		return nil, firstErr
	}
	if anyMissed {
		a.missStreak++
	} else {
		a.missStreak = 0
	}
	// Concurrent-bucket accounting: the iteration pays the slowest
	// bucket's communication, not the sum — the whole point of the
	// overlapped pipeline.
	if clock := a.parent.Clock(); clock != nil {
		clock.Advance(slowest)
	}
	return a.dense, nil
}

// launch hands one fully-covered bucket to its pipeline goroutine. The
// goroutine exclusively owns the bucket's sub-communicator, residual and
// output slice until it reports on a.done, so buckets proceed in parallel
// without shared mutable state.
func (a *BucketedAggregator) launch(b *bucketState) {
	b.launched = true
	a.inFlight++
	ctx, grad := a.ctx, a.grad
	go func() {
		a.done <- a.runBucket(ctx, b, grad)
	}()
}

func (a *BucketedAggregator) runBucket(ctx context.Context, b *bucketState, grad []float32) bucketDone {
	out := bucketDone{idx: b.idx}
	statsBefore := b.comm.Stats()
	var clockBefore time.Duration
	if b.clock != nil {
		clockBefore = b.clock.Now()
	}

	// Adaptive density: the controller's schedule is a pure function of
	// the (replica-agreed) observation trace, so every rank resolves the
	// same k for the same bucket round and selections stay aligned.
	if b.dc != nil {
		b.k = b.dc.KFor(b.iter)
	}

	// Per-bucket local top-k (these selections run concurrently across
	// buckets), then the tree collective on the bucket's own tag space.
	seg := applyMomentumCorrection(a.mu, b.velocity, grad[b.lo:b.hi])
	local, err := b.sp.Select(seg, b.k)
	if err != nil {
		out.err = fmt.Errorf("core: bucket %d select: %w", b.idx, err)
		return out
	}
	codec := b.comm.WireCodec()
	if a.quorum.Q > 0 {
		// Quorum mode always snapshots the pre-transform values — a missed
		// round refunds the FULL selected mass (see GTopKAggregator).
		b.orig = append(b.orig[:0], local.Values...)
	} else {
		b.orig = snapshotForFold(codec, local, b.orig)
	}
	participated := true
	switch {
	case a.quorum.Q > 0:
		participated, _, err = QuorumGTopKAllReduceInto(ctx, b.comm, local, b.k, a.quorum, &b.out)
	case b.gc != nil:
		err = HierarchicalGTopKAllReduceInto(ctx, b.comm, b.gc, local, b.k, ChunksFor(b.k), &b.out)
	default:
		err = GTopKAllReduceInto(ctx, b.comm, local, b.k, ChunksFor(b.k), &b.out)
	}
	if err != nil {
		out.err = fmt.Errorf("core: bucket %d: %w", b.idx, err)
		return out
	}
	if b.gc != nil {
		// Fold the hierarchy sub-comms' counters into the bucket's so the
		// statsDelta below captures all of this bucket's traffic.
		foldHierStats(b.comm, b.gc)
	}
	global := &b.out
	if !participated {
		// This bucket's frame missed its round: refund the whole selected
		// mass and skip fold/put-back — conservation, per GTopKAggregator.
		out.missed = true
		b.sp.Refund(local.Indices, b.orig)
	} else {
		// Quantization error first, then put-back — see GTopKAggregator.
		if b.orig != nil && codec.WireVersion() == 3 && codec.Lossy() {
			b.sp.FoldError(local.Indices, b.orig, local.Values)
		}
		b.sp.PutBack(local, global.Indices)
	}
	if b.dc != nil {
		// Feed the controller sizes derived from the bit-identical global
		// result — never a rank's local WireTally, whose tree role makes
		// it differ across ranks. raw is the v1-flat equivalent; wire is
		// the active codec's frame size over the same support (v3 value
		// sections depend only on nnz, so this is replica-agreed too).
		raw := int64(sparse.EncodedSize(len(global.Indices)))
		wire := int64(sparse.EncodedSizeCodec(codec, b.hi-b.lo, global.Indices))
		b.dc.Observe(b.iter, raw, wire)
	}
	b.iter++

	dst := a.dense[b.lo:b.hi]
	for i := range dst {
		dst[i] = 0
	}
	inv := 1 / float32(b.comm.Size())
	for i, idx := range global.Indices {
		dst[idx] = global.Values[i] * inv
	}

	out.stats = statsDelta(statsBefore, b.comm.Stats())
	if b.clock != nil {
		out.comm = b.clock.Now() - clockBefore
	}
	return out
}

func statsDelta(before, after collective.Stats) collective.Stats {
	return collective.Stats{
		MsgsSent:  after.MsgsSent - before.MsgsSent,
		MsgsRecv:  after.MsgsRecv - before.MsgsRecv,
		BytesSent: after.BytesSent - before.BytesSent,
		BytesRecv: after.BytesRecv - before.BytesRecv,
		Rounds:    after.Rounds - before.Rounds,
	}
}

// GroupBounds coalesces cumulative layer offsets into at most n bucket
// bounds of roughly equal parameter mass, never splitting a layer. The
// result always starts at 0 and ends at the full dimension, with between
// 1 and min(n, L) buckets for L layers.
func GroupBounds(layerBounds []int, n int) []int {
	last := len(layerBounds) - 1
	if last < 1 {
		return append([]int(nil), layerBounds...)
	}
	if n < 1 {
		n = 1
	}
	if n >= last {
		return append([]int(nil), layerBounds...)
	}
	dim := layerBounds[last]
	target := float64(dim) / float64(n)
	out := []int{0}
	next := target
	for i := 1; i < last; i++ {
		if float64(layerBounds[i]) >= next && len(out) < n {
			out = append(out, layerBounds[i])
			next = float64(layerBounds[i]) + target
		}
	}
	return append(out, dim)
}
