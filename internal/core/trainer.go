package core

import (
	"context"
	"fmt"
	"time"

	"gtopkssgd/internal/tensor"
)

// GradFn computes one worker's mini-batch gradient for iteration iter at
// the given weights, writing it into grad (len(grad) == len(weights)),
// and returns the mini-batch training loss. The weights slice must not be
// mutated.
type GradFn func(iter int, weights, grad []float32) float64

// TrainConfig holds the optimizer hyper-parameters shared by all S-SGD
// variants. The paper uses momentum SGD with momentum 0.9 for every model
// (Section IV-A).
type TrainConfig struct {
	LR       float32 // learning rate η
	Momentum float32 // momentum coefficient (0 disables)
	GradClip float32 // per-element clip applied to the aggregated update (0 disables)
}

// Validate rejects non-sensical hyper-parameters.
func (c TrainConfig) Validate() error {
	if c.LR <= 0 {
		return fmt.Errorf("core: learning rate %v must be positive", c.LR)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("core: momentum %v out of [0,1)", c.Momentum)
	}
	if c.GradClip < 0 {
		return fmt.Errorf("core: grad clip %v must be non-negative", c.GradClip)
	}
	return nil
}

// PhaseTimes carries one iteration's wall-clock phase durations to an
// observer installed with SetPhaseHook.
type PhaseTimes struct {
	Compute   time.Duration // gradient computation (forward + backward)
	Aggregate time.Duration // sparsification + communication
	Update    time.Duration // momentum + weight update
}

// Trainer drives one worker's S-SGD loop: compute local gradient →
// aggregate via the configured algorithm → apply the identical update on
// every replica. Because the aggregated update is bit-identical across
// ranks (all aggregators guarantee this), replicas never diverge and no
// parameter re-synchronisation is needed.
type Trainer struct {
	cfg      TrainConfig
	agg      Aggregator
	gradFn   GradFn
	streamFn StreamGradFn
	weights  []float32
	velocity []float32
	grad     []float32
	iter     int
	onPhases func(iter int, pt PhaseTimes)
}

// NewTrainer assembles a trainer. The weights slice is owned by the
// trainer afterwards; every rank must pass identically initialised
// weights (same seed) or replicas diverge from step one.
func NewTrainer(cfg TrainConfig, agg Aggregator, weights []float32, gradFn GradFn) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if agg == nil || gradFn == nil {
		return nil, fmt.Errorf("core: trainer needs an aggregator and a gradient function")
	}
	return &Trainer{
		cfg:      cfg,
		agg:      agg,
		gradFn:   gradFn,
		weights:  weights,
		velocity: make([]float32, len(weights)),
		grad:     make([]float32, len(weights)),
	}, nil
}

// Weights exposes the current parameters (mutated by Step).
func (t *Trainer) Weights() []float32 { return t.weights }

// Iter returns the number of completed steps.
func (t *Trainer) Iter() int { return t.iter }

// SetPhaseHook installs an observer that receives each iteration's
// wall-clock phase durations (e.g. a trace.Recorder). Pass nil to remove.
func (t *Trainer) SetPhaseHook(fn func(iter int, pt PhaseTimes)) { t.onPhases = fn }

// Velocity exposes the momentum buffer (for checkpointing).
func (t *Trainer) Velocity() []float32 { return t.velocity }

// Restore resets the iteration counter and momentum buffer from a
// checkpoint. The weights are restored by the caller (they alias the
// model's parameter buffer); velocity length must match.
func (t *Trainer) Restore(iter int, velocity []float32) error {
	if iter < 0 {
		return fmt.Errorf("core: restore with negative iteration %d", iter)
	}
	if len(velocity) != len(t.velocity) {
		return fmt.Errorf("core: restore velocity dim %d, want %d", len(velocity), len(t.velocity))
	}
	t.iter = iter
	copy(t.velocity, velocity)
	return nil
}

// SetStreamGradFn installs a streaming gradient function that announces
// per-layer gradient readiness, enabling communication/computation
// overlap when the aggregator supports bucketed streaming (it must
// implement BucketStreamer, e.g. BucketedAggregator). The streaming
// function replaces the plain GradFn for every subsequent Step; pass nil
// to fall back. In streamed steps, PhaseTimes.Compute covers the backward
// pass including any communication hidden behind it, and
// PhaseTimes.Aggregate is only the EXPOSED communication the pipeline
// could not hide.
func (t *Trainer) SetStreamGradFn(fn StreamGradFn) error {
	if fn != nil {
		if _, ok := t.agg.(BucketStreamer); !ok {
			return fmt.Errorf("core: aggregator %s does not support bucket streaming", t.agg.Name())
		}
	}
	t.streamFn = fn
	return nil
}

// SetLR updates the learning rate (for decay schedules).
func (t *Trainer) SetLR(lr float32) error {
	if lr <= 0 {
		return fmt.Errorf("core: learning rate %v must be positive", lr)
	}
	t.cfg.LR = lr
	return nil
}

// Step runs one S-SGD iteration and returns the local mini-batch loss.
// With a streaming gradient function installed (SetStreamGradFn), the
// aggregator receives gradient buckets while the backward pass is still
// running, overlapping communication with computation.
func (t *Trainer) Step(ctx context.Context) (float64, error) {
	if t.streamFn != nil {
		if bs, ok := t.agg.(BucketStreamer); ok {
			return t.stepStreamed(ctx, bs)
		}
	}
	for i := range t.grad {
		t.grad[i] = 0
	}
	var pt PhaseTimes
	start := time.Now()
	loss := t.gradFn(t.iter, t.weights, t.grad)
	pt.Compute = time.Since(start)

	start = time.Now()
	update, err := t.agg.Aggregate(ctx, t.grad)
	if err != nil {
		return 0, fmt.Errorf("core: step %d: %w", t.iter, err)
	}
	pt.Aggregate = time.Since(start)

	t.applyUpdate(update, &pt)
	if t.onPhases != nil {
		t.onPhases(t.iter, pt)
	}
	t.iter++
	return loss, nil
}

// stepStreamed is the overlapped variant of Step: the aggregation
// pipeline opens before the gradient computation starts, buckets launch
// from inside the backward pass via the ready callback, and Finish only
// waits out communication the overlap could not hide.
func (t *Trainer) stepStreamed(ctx context.Context, bs BucketStreamer) (float64, error) {
	for i := range t.grad {
		t.grad[i] = 0
	}
	var pt PhaseTimes
	start := time.Now()
	if err := bs.Begin(ctx, t.grad); err != nil {
		return 0, fmt.Errorf("core: step %d: %w", t.iter, err)
	}
	loss := t.streamFn(t.iter, t.weights, t.grad, bs.Ready)
	pt.Compute = time.Since(start)

	start = time.Now()
	update, err := bs.Finish()
	if err != nil {
		return 0, fmt.Errorf("core: step %d: %w", t.iter, err)
	}
	pt.Aggregate = time.Since(start)

	t.applyUpdate(update, &pt)
	if t.onPhases != nil {
		t.onPhases(t.iter, pt)
	}
	t.iter++
	return loss, nil
}

// applyUpdate runs the optimizer tail (clip, momentum, weight update)
// shared by the serial and streamed step paths.
func (t *Trainer) applyUpdate(update []float32, pt *PhaseTimes) {
	start := time.Now()
	if t.cfg.GradClip > 0 {
		tensor.Clip(update, t.cfg.GradClip)
	}
	if t.cfg.Momentum > 0 {
		for i, u := range update {
			t.velocity[i] = t.cfg.Momentum*t.velocity[i] + u
		}
		tensor.AxpyInto(t.weights, -t.cfg.LR, t.velocity)
	} else {
		tensor.AxpyInto(t.weights, -t.cfg.LR, update)
	}
	pt.Update = time.Since(start)
}
