package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/transport"
)

// quadGrad builds a GradFn for the separable quadratic
// L(w) = 0.5 Σ c_i (w_i - t_i)^2 with per-worker curvature/target noise,
// whose exact mean gradient drives every replica toward t.
func quadGrad(target []float32, noiseSeed uint64) GradFn {
	src := prng.New(noiseSeed)
	noise := make([]float32, len(target))
	for i := range noise {
		noise[i] = float32(src.NormFloat64()) * 0.01
	}
	return func(_ int, weights, grad []float32) float64 {
		var loss float64
		for i := range weights {
			d := weights[i] - target[i] + noise[i]
			grad[i] = d
			loss += 0.5 * float64(d) * float64(d)
		}
		return loss / float64(len(weights))
	}
}

func makeTarget(dim int) []float32 {
	src := prng.New(424242)
	t := make([]float32, dim)
	for i := range t {
		t[i] = float32(src.NormFloat64())
	}
	return t
}

func TestTrainConfigValidate(t *testing.T) {
	good := TrainConfig{LR: 0.1, Momentum: 0.9}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, bad := range []TrainConfig{
		{LR: 0},
		{LR: -1},
		{LR: 0.1, Momentum: 1},
		{LR: 0.1, Momentum: -0.1},
		{LR: 0.1, GradClip: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestNewTrainerRejectsNil(t *testing.T) {
	cfg := TrainConfig{LR: 0.1}
	if _, err := NewTrainer(cfg, nil, make([]float32, 2), nil); err == nil {
		t.Error("nil aggregator/gradfn accepted")
	}
}

func TestClusterDenseConvergesOnQuadratic(t *testing.T) {
	const dim, p, steps = 64, 4, 120
	target := makeTarget(dim)
	results, err := RunCluster(context.Background(), ClusterConfig{Workers: p, Steps: steps},
		func(rank int, comm *collective.Comm) (*Trainer, error) {
			agg := NewDenseAggregator(comm, dim)
			return NewTrainer(TrainConfig{LR: 0.5}, agg, make([]float32, dim),
				quadGrad(target, uint64(rank)))
		})
	if err != nil {
		t.Fatal(err)
	}
	last := results[0].Losses[steps-1]
	first := results[0].Losses[0]
	if last > first/100 {
		t.Fatalf("dense S-SGD did not converge: first %v last %v", first, last)
	}
}

func TestClusterReplicasStayIdentical(t *testing.T) {
	const dim, p, steps = 50, 4, 30
	target := makeTarget(dim)
	for _, algo := range []string{"dense", "topk", "gtopk", "gtopk-naive"} {
		t.Run(algo, func(t *testing.T) {
			results, err := RunCluster(context.Background(), ClusterConfig{Workers: p, Steps: steps},
				func(rank int, comm *collective.Comm) (*Trainer, error) {
					agg, err := buildAggregator(algo, comm, dim, 5)
					if err != nil {
						return nil, err
					}
					return NewTrainer(TrainConfig{LR: 0.3, Momentum: 0.9}, agg,
						make([]float32, dim), quadGrad(target, uint64(rank)))
				})
			if err != nil {
				t.Fatal(err)
			}
			for r := 1; r < p; r++ {
				for i := range results[0].FinalWeights {
					if results[r].FinalWeights[i] != results[0].FinalWeights[i] {
						t.Fatalf("rank %d weight %d diverged: %v vs %v",
							r, i, results[r].FinalWeights[i], results[0].FinalWeights[i])
					}
				}
			}
		})
	}
}

func buildAggregator(algo string, comm *collective.Comm, dim, k int) (Aggregator, error) {
	switch algo {
	case "dense":
		return NewDenseAggregator(comm, dim), nil
	case "topk":
		return NewTopKAggregator(comm, dim, k)
	case "gtopk":
		return NewGTopKAggregator(comm, dim, k)
	case "gtopk-naive":
		return NewNaiveGTopKAggregator(comm, dim, k)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func TestClusterGTopKTracksDense(t *testing.T) {
	// gTop-k with modest sparsity must reach a loss in the same regime as
	// dense on the quadratic (the paper's convergence claim, Fig. 5).
	const dim, p, steps = 64, 4, 300
	target := makeTarget(dim)
	finals := make(map[string]float64)
	for _, algo := range []string{"dense", "gtopk"} {
		results, err := RunCluster(context.Background(), ClusterConfig{Workers: p, Steps: steps},
			func(rank int, comm *collective.Comm) (*Trainer, error) {
				agg, err := buildAggregator(algo, comm, dim, 8)
				if err != nil {
					return nil, err
				}
				return NewTrainer(TrainConfig{LR: 0.3}, agg, make([]float32, dim),
					quadGrad(target, uint64(rank)))
			})
		if err != nil {
			t.Fatal(err)
		}
		finals[algo] = results[0].Losses[steps-1]
	}
	if finals["gtopk"] > 50*finals["dense"]+1e-3 {
		t.Fatalf("gtopk final loss %v too far from dense %v", finals["gtopk"], finals["dense"])
	}
}

func TestClusterSimulatedTimeOrdering(t *testing.T) {
	// On the paper's 1GbE model with a large-ish model, dense must charge
	// more simulated time per step than gtopk (the premise of Fig. 10).
	const dim, p, steps = 20000, 4, 3
	target := makeTarget(dim)
	model := netsim.Paper1GbE()
	times := make(map[string]int64)
	for _, algo := range []string{"dense", "gtopk"} {
		results, err := RunCluster(context.Background(),
			ClusterConfig{Workers: p, Steps: steps, Model: &model},
			func(rank int, comm *collective.Comm) (*Trainer, error) {
				agg, err := buildAggregator(algo, comm, dim, DensityToK(dim, 0.001))
				if err != nil {
					return nil, err
				}
				return NewTrainer(TrainConfig{LR: 0.1}, agg, make([]float32, dim),
					quadGrad(target, uint64(rank)))
			})
		if err != nil {
			t.Fatal(err)
		}
		times[algo] = int64(results[0].SimulatedTime)
	}
	if times["gtopk"] >= times["dense"] {
		t.Fatalf("simulated comm time: gtopk %v >= dense %v", times["gtopk"], times["dense"])
	}
}

func TestClusterErrorPropagation(t *testing.T) {
	_, err := RunCluster(context.Background(), ClusterConfig{Workers: 2, Steps: 1},
		func(rank int, comm *collective.Comm) (*Trainer, error) {
			if rank == 1 {
				return nil, fmt.Errorf("boom")
			}
			agg := NewDenseAggregator(comm, 4)
			return NewTrainer(TrainConfig{LR: 0.1}, agg, make([]float32, 4),
				func(_ int, _, grad []float32) float64 { return 0 })
		})
	if err == nil {
		t.Fatal("setup failure not propagated")
	}
}

func TestClusterRejectsBadConfig(t *testing.T) {
	setup := func(rank int, comm *collective.Comm) (*Trainer, error) { return nil, nil }
	if _, err := RunCluster(context.Background(), ClusterConfig{Workers: 0, Steps: 1}, setup); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := RunCluster(context.Background(), ClusterConfig{Workers: 2, Steps: -1}, setup); err == nil {
		t.Error("negative steps accepted")
	}
}

func TestClusterOverTCPFabricMatchesInProc(t *testing.T) {
	const dim, p, steps = 32, 4, 10
	target := makeTarget(dim)
	setup := func(rank int, comm *collective.Comm) (*Trainer, error) {
		agg, err := NewGTopKAggregator(comm, dim, 4)
		if err != nil {
			return nil, err
		}
		return NewTrainer(TrainConfig{LR: 0.2}, agg, make([]float32, dim),
			quadGrad(target, uint64(rank)))
	}
	inproc, err := RunCluster(context.Background(), ClusterConfig{Workers: p, Steps: steps}, setup)
	if err != nil {
		t.Fatal(err)
	}
	tcpFab, err := transport.NewTCP(p)
	if err != nil {
		t.Fatal(err)
	}
	defer tcpFab.Close()
	tcp, err := RunCluster(context.Background(),
		ClusterConfig{Workers: p, Steps: steps, Fabric: tcpFab}, setup)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inproc[0].FinalWeights {
		if inproc[0].FinalWeights[i] != tcp[0].FinalWeights[i] {
			t.Fatalf("weight %d differs across fabrics: %v vs %v",
				i, inproc[0].FinalWeights[i], tcp[0].FinalWeights[i])
		}
	}
}

func TestMomentumMatchesHandComputed(t *testing.T) {
	// Single worker, fixed gradient 1.0: with mu=0.5, lr=0.1 the velocity
	// sequence is 1, 1.5, 1.75 and weights decrease accordingly.
	f, err := transport.NewInProc(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	agg := NewDenseAggregator(collective.New(f.Conn(0)), 1)
	tr, err := NewTrainer(TrainConfig{LR: 0.1, Momentum: 0.5}, agg, []float32{0},
		func(_ int, _, grad []float32) float64 { grad[0] = 1; return 0 })
	if err != nil {
		t.Fatal(err)
	}
	wantW := []float64{-0.1, -0.25, -0.425}
	for i, want := range wantW {
		if _, err := tr.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
		if got := float64(tr.Weights()[0]); math.Abs(got-want) > 1e-6 {
			t.Fatalf("step %d: w = %v, want %v", i, got, want)
		}
	}
	if tr.Iter() != 3 {
		t.Fatalf("Iter = %d, want 3", tr.Iter())
	}
}

func TestGradClip(t *testing.T) {
	f, err := transport.NewInProc(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	agg := NewDenseAggregator(collective.New(f.Conn(0)), 1)
	tr, err := NewTrainer(TrainConfig{LR: 1, GradClip: 0.5}, agg, []float32{0},
		func(_ int, _, grad []float32) float64 { grad[0] = 100; return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := tr.Weights()[0]; got != -0.5 {
		t.Fatalf("clipped update moved weight to %v, want -0.5", got)
	}
}

func TestSetLR(t *testing.T) {
	f, err := transport.NewInProc(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	agg := NewDenseAggregator(collective.New(f.Conn(0)), 1)
	tr, err := NewTrainer(TrainConfig{LR: 1}, agg, []float32{0},
		func(_ int, _, grad []float32) float64 { grad[0] = 1; return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetLR(0.25); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetLR(0); err == nil {
		t.Error("SetLR(0) accepted")
	}
	if _, err := tr.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := tr.Weights()[0]; got != -0.25 {
		t.Fatalf("weight = %v, want -0.25", got)
	}
}

func TestAggregatorNames(t *testing.T) {
	f, err := transport.NewInProc(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	comm := collective.New(f.Conn(0))
	if got := NewDenseAggregator(comm, 4).Name(); got != "dense" {
		t.Errorf("dense name = %q", got)
	}
	tk, err := NewTopKAggregator(comm, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Name() != "topk" {
		t.Errorf("topk name = %q", tk.Name())
	}
	gt, err := NewGTopKAggregator(comm, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Name() != "gtopk" {
		t.Errorf("gtopk name = %q", gt.Name())
	}
	ng, err := NewNaiveGTopKAggregator(comm, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ng.Name() != "gtopk-naive" {
		t.Errorf("naive name = %q", ng.Name())
	}
}

func TestAggregatorKValidation(t *testing.T) {
	f, err := transport.NewInProc(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	comm := collective.New(f.Conn(0))
	if _, err := NewTopKAggregator(comm, 4, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewGTopKAggregator(comm, 4, 5); err == nil {
		t.Error("k>dim accepted")
	}
	gt, err := NewGTopKAggregator(comm, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := gt.SetK(0); err == nil {
		t.Error("SetK(0) accepted")
	}
	if err := gt.SetK(3); err != nil {
		t.Errorf("SetK(3) rejected: %v", err)
	}
}
