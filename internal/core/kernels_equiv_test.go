package core

import (
	"math"
	"testing"

	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/sparse"
)

// TestSparsifierResidualTrajectoryKernelEquiv pins the error-feedback
// loop — the state that actually compounds across training iterations —
// bit-identical between kernel modes: a Sparsifier driven through many
// Select/PutBack rounds under fast kernels must trace the exact same
// residual bits and selections as one driven under pure kernels.
func TestSparsifierResidualTrajectoryKernelEquiv(t *testing.T) {
	if !sparse.FastKernelsAvailable() {
		t.Skip("fast kernels unavailable in this build")
	}
	const (
		dim   = 4096
		k     = 40
		steps = 60
	)
	type step struct {
		indices  []int32
		values   []uint32
		residual []uint32
	}
	trajectory := func(mode string) []step {
		t.Helper()
		if err := sparse.SetKernels(mode); err != nil {
			t.Fatal(err)
		}
		s := NewSparsifier(dim)
		src := prng.New(1234)
		grad := make([]float32, dim)
		out := make([]step, 0, steps)
		for it := 0; it < steps; it++ {
			for i := range grad {
				grad[i] = float32(src.NormFloat64())
			}
			sel, err := s.Select(grad, k)
			if err != nil {
				t.Fatal(err)
			}
			// Pretend the global round kept every other selected entry;
			// the rest re-enters the residual through PutBack.
			var global []int32
			for i := 0; i < sel.NNZ(); i += 2 {
				global = append(global, sel.Indices[i])
			}
			s.PutBack(sel, global)
			st := step{
				indices:  append([]int32(nil), sel.Indices...),
				values:   make([]uint32, sel.NNZ()),
				residual: make([]uint32, dim),
			}
			for i, v := range sel.Values {
				st.values[i] = math.Float32bits(v)
			}
			for i, v := range s.Residual() {
				st.residual[i] = math.Float32bits(v)
			}
			out = append(out, st)
		}
		return out
	}
	prev := sparse.Kernels()
	defer func() {
		if err := sparse.SetKernels(prev); err != nil {
			t.Fatal(err)
		}
	}()
	pure := trajectory(sparse.KernelsPure)
	fast := trajectory(sparse.KernelsFast)
	for it := range pure {
		p, f := pure[it], fast[it]
		if len(p.indices) != len(f.indices) {
			t.Fatalf("step %d: selection nnz %d (pure) vs %d (fast)", it, len(p.indices), len(f.indices))
		}
		for i := range p.indices {
			if p.indices[i] != f.indices[i] || p.values[i] != f.values[i] {
				t.Fatalf("step %d: selection entry %d differs between kernel modes", it, i)
			}
		}
		for i := range p.residual {
			if p.residual[i] != f.residual[i] {
				t.Fatalf("step %d: residual[%d] = %x (pure) vs %x (fast)", it, i, p.residual[i], f.residual[i])
			}
		}
	}
}
