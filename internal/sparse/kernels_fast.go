//go:build !purego && (amd64 || arm64)

package sparse

import (
	"math"
	"sync"
	"unsafe"
)

// Fast kernel variants for little-endian 64-bit targets: sign-mask word
// ops instead of float compares-and-negates, 4-wide unrolling, subslice
// aliasing for bounds-check elimination, and bulk memcpy for wire word
// moves (both supported GOARCHes are little-endian, so the in-memory
// layout of []int32/[]float32 IS the wire layout). Every variant performs
// exactly the same comparison/store sequence as its pure counterpart in
// kernels_pure.go, which keeps results bit-identical — including the
// quickselect permutations that feed subsequent pivot draws, and
// behaviour on NaN inputs. Build with -tags purego to compile these out.

const fastKernelsAvailable = true

const signMask32 = uint32(1) << 31

func absIntoFast(dst, src []float32) {
	n := len(src)
	if n == 0 {
		return
	}
	// Clearing the sign bit is abs32 exactly (mask-abs, NaN included),
	// and as uint32 traffic it vectorises into plain word ANDs.
	s := unsafe.Slice((*uint32)(unsafe.Pointer(&src[0])), n)
	d := unsafe.Slice((*uint32)(unsafe.Pointer(&dst[0])), n)[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		d[i] = s[i] &^ signMask32
		d[i+1] = s[i+1] &^ signMask32
		d[i+2] = s[i+2] &^ signMask32
		d[i+3] = s[i+3] &^ signMask32
	}
	for ; i < n; i++ {
		d[i] = s[i] &^ signMask32
	}
}

func partitionGreaterFast(mags []float32, lo, hi int, pivot float32) int {
	// Subslice once so the range loop carries no per-iteration bounds
	// checks on the read side; the swap sequence (including the
	// i==store no-op case) matches partitionGreaterPure move for move.
	s := mags[lo:hi]
	store := 0
	for i, v := range s {
		if v > pivot {
			s[i] = s[store]
			s[store] = v
			store++
		}
	}
	return lo + store
}

func countGreaterFast(mags []float32, thr float32) int {
	n := 0
	i := 0
	for ; i+4 <= len(mags); i += 4 {
		// Four independent compares per iteration; each branch is its
		// own increment so the adds retire without a dependency chain.
		if mags[i] > thr {
			n++
		}
		if mags[i+1] > thr {
			n++
		}
		if mags[i+2] > thr {
			n++
		}
		if mags[i+3] > thr {
			n++
		}
	}
	for ; i < len(mags); i++ {
		if mags[i] > thr {
			n++
		}
	}
	return n
}

func mergeAddFast(dstIdx []int32, dstVal []float32, a, b *Vector) int {
	// Hoist the four stream headers into locals so the merge loop reads
	// them from registers instead of re-loading through the Vector
	// pointers every comparison. (A conditional-move formulation was
	// tried and measured ~2x slower both hot and in-round: the compiler
	// keeps branches for the multi-result select, and CMOV forces both
	// streams' loads every iteration.)
	ai, av := a.Indices, a.Values
	bi, bv := b.Indices, b.Values
	i, j, o := 0, 0, 0
	for i < len(ai) && j < len(bi) {
		x, y := ai[i], bi[j]
		switch {
		case x < y:
			dstIdx[o] = x
			dstVal[o] = av[i]
			i++
		case x > y:
			dstIdx[o] = y
			dstVal[o] = bv[j]
			j++
		default:
			dstIdx[o] = x
			dstVal[o] = av[i] + bv[j]
			i++
			j++
		}
		o++
	}
	o += copy(dstIdx[o:], ai[i:])
	copy(dstVal[o-(len(ai)-i):], av[i:])
	o += copy(dstIdx[o:], bi[j:])
	copy(dstVal[o-(len(bi)-j):], bv[j:])
	return o
}

// u32Scratch pools the survivor buffers of the radix threshold descent.
var u32Scratch = sync.Pool{New: func() any { return new([]uint32) }}

// infBits is the bit pattern of +Inf; sign-free magnitudes above it are
// NaN payloads, whose float ordering disagrees with the bit ordering.
const infBits = uint32(0x7f800000)

// radixMinN is the input size below which the radix descent loses to
// quickselect: each byte level zeroes and walks a 256-bin histogram, a
// fixed ~1KB cost that dominates when the scan itself is only a few
// hundred elements. Below the gate the selector reports ok=false and the
// dispatcher runs the quickselect reference instead.
const radixMinN = 1024

// radixSelectKthLargest finds the k-th largest magnitude — and the count
// of elements strictly above it — by byte-wise radix descent over the
// float32 bit patterns. The descent clears the sign bit as it converts
// each element to bits (mask-abs, exactly abs32), so it accepts the raw
// signed values directly — callers skip the magnitude-scratch fill a
// comparison-based selector would need. Sign-free IEEE-754 bit patterns
// order exactly like the floats themselves: a 256-bin histogram walks
// from the top byte down, narrowing to the bin holding the k-th largest
// at each of the four byte levels. Every pass is a sequential scan with
// no data-dependent branching, against quickselect's pivot-driven swap
// cascade — ~5x faster on the merge path's 2k-element selections and
// deterministic besides.
//
// ok=false when vals contains a NaN or is below radixMinN; the caller
// falls back to the quickselect reference, which pins NaN behaviour for
// both kernel modes (and is simply faster at small n).
func radixSelectKthLargest(vals []float32, k int) (thr float32, strict int, ok bool) {
	n := len(vals)
	if n < radixMinN {
		return 0, 0, false
	}
	// Four interleaved histograms: gradient magnitudes cluster heavily in
	// a handful of exponent bytes, so a single histogram serialises on
	// store-to-load forwarding through the hot bin. Striping consecutive
	// elements across four counter banks keeps the increments independent;
	// the bin walk just sums the four banks per bin.
	var h [4][256]int32
	nan := false
	i := 0
	for ; i+4 <= n; i += 4 {
		u0 := math.Float32bits(vals[i]) &^ signMask32
		u1 := math.Float32bits(vals[i+1]) &^ signMask32
		u2 := math.Float32bits(vals[i+2]) &^ signMask32
		u3 := math.Float32bits(vals[i+3]) &^ signMask32
		if u0 > infBits || u1 > infBits || u2 > infBits || u3 > infBits {
			nan = true
		}
		h[0][u0>>24]++
		h[1][u1>>24]++
		h[2][u2>>24]++
		h[3][u3>>24]++
	}
	for ; i < n; i++ {
		u := math.Float32bits(vals[i]) &^ signMask32
		if u > infBits {
			nan = true
		}
		h[0][u>>24]++
	}
	if nan {
		return 0, 0, false
	}
	// want is the 1-based rank (from the top) still sought inside the
	// current prefix group; each level subtracts the sizes of the bins
	// strictly above the chosen one, i.e. the strictly-greater elements.
	want := k
	b := 255
	for {
		c := int(h[0][b] + h[1][b] + h[2][b] + h[3][b])
		if want <= c {
			break
		}
		want -= c
		b--
	}
	prefix := uint32(b) << 24
	sp := u32Scratch.Get().(*[]uint32)
	cur := *sp
	if cap(cur) < n {
		cur = make([]uint32, n)
	}
	cur = cur[:n]
	// Branchless compaction of the survivors: the keep/drop decision is
	// near 50/50 on clustered data, so a conditional append would be
	// mispredict-bound. Store unconditionally, advance conditionally.
	o := 0
	for _, v := range vals {
		u := math.Float32bits(v) &^ signMask32
		cur[o] = u
		if u>>24 == uint32(b) {
			o++
		}
	}
	cur = cur[:o]
	for shift := 16; ; shift -= 8 {
		h = [4][256]int32{}
		i = 0
		for ; i+4 <= len(cur); i += 4 {
			h[0][(cur[i]>>shift)&0xff]++
			h[1][(cur[i+1]>>shift)&0xff]++
			h[2][(cur[i+2]>>shift)&0xff]++
			h[3][(cur[i+3]>>shift)&0xff]++
		}
		for ; i < len(cur); i++ {
			h[0][(cur[i]>>shift)&0xff]++
		}
		bb := 255
		for {
			c := int(h[0][bb] + h[1][bb] + h[2][bb] + h[3][bb])
			if want <= c {
				break
			}
			want -= c
			bb--
		}
		prefix |= uint32(bb) << shift
		if shift == 0 {
			break
		}
		o = 0
		for _, u := range cur {
			cur[o] = u
			if (u>>shift)&0xff == uint32(bb) {
				o++
			}
		}
		cur = cur[:o]
	}
	*sp = cur
	u32Scratch.Put(sp)
	return math.Float32frombits(prefix), k - want, true
}

// emitTopKFast is the branch-light winner scan: every entry is stored at
// the current output slot unconditionally and the slot advances only for
// selected entries, so the 50/50 select/reject pattern of a k-of-2k
// merge costs conditional moves instead of mispredicted branches. dst
// slices need len >= k+1 — rejected entries transiently overwrite the
// slot one past the last winner. Selection predicate, order, and the
// tie-quota bookkeeping match emitTopKPure entry for entry.
func emitTopKFast(dstIdx []int32, dstVal []float32, srcIdx []int32, srcVal []float32, thr float32, tieQuota, k int) int {
	// The unconditional-store trade only wins where branches actually
	// mispredict: scans long enough to defeat the predictor's history and
	// dense enough in winners (the k-of-2k merge shape) that the
	// select/reject pattern is data-random. Short scans and needle-in-a-
	// haystack selections (k << n, branches almost always not-taken)
	// predict nearly perfectly, so the doubled store traffic is pure loss
	// there — route them to the branchy reference scan.
	if n := len(srcVal); n < radixMinN || n > 8*k {
		return emitTopKPure(dstIdx, dstVal, srcIdx, srcVal, thr, tieQuota, k)
	}
	// The select/tie predicate is computed with materialized flag ints
	// (each `if cond { f = 1 }` on a fresh zero compiles to a setcc, not a
	// jump) and combined with masks: short-circuit &&/|| would reintroduce
	// exactly the data-random branches the unconditional stores exist to
	// avoid. NaN sources compare false on both > and ==, so they are never
	// selected — matching the pure scan.
	o, tq := 0, tieQuota
	if srcIdx != nil {
		idx := srcIdx[:len(srcVal)]
		for i, v := range srcVal {
			m := abs32(v)
			g, e, q, c := 0, 0, 0, 0
			if m > thr {
				g = 1
			}
			if m == thr {
				e = 1
			}
			if tq > 0 {
				q = 1
			}
			if o < k {
				c = 1
			}
			t := e & q
			s := (g | t) & c
			dstIdx[o] = idx[i]
			dstVal[o] = v
			o += s
			tq -= t & s
		}
		return o
	}
	for i, v := range srcVal {
		m := abs32(v)
		g, e, q, c := 0, 0, 0, 0
		if m > thr {
			g = 1
		}
		if m == thr {
			e = 1
		}
		if tq > 0 {
			q = 1
		}
		if o < k {
			c = 1
		}
		t := e & q
		s := (g | t) & c
		dstIdx[o] = int32(i)
		dstVal[o] = v
		o += s
		tq -= t & s
	}
	return o
}

func scatterAddFast(dense []float32, mark []bool, touched []int32, indices []int32, values []float32) []int32 {
	vals := values[:len(indices)]
	for i, idx := range indices {
		// uint cast folds the compiler's signed range check into the
		// single unsigned bounds check it must keep anyway.
		u := uint(uint32(idx))
		if !mark[u] {
			mark[u] = true
			touched = append(touched, idx)
		}
		dense[u] += vals[i]
	}
	return touched
}

func putWordsFast(buf []byte, indices []int32, values []float32) {
	// Little-endian targets only: []int32/[]float32 backing memory is
	// already the wire byte layout, so the two sections are two memcpys.
	ni := 4 * len(indices)
	if len(indices) > 0 {
		copy(buf[:ni], unsafe.Slice((*byte)(unsafe.Pointer(&indices[0])), ni))
	}
	if len(values) > 0 {
		copy(buf[ni:], unsafe.Slice((*byte)(unsafe.Pointer(&values[0])), 4*len(values)))
	}
}

func checkIndicesFast(indices []int32, dim int) error {
	n := len(indices)
	if n == 0 {
		return nil
	}
	// Strict ascent plus in-range endpoints implies every element is in
	// range, so the well-formed case needs one compare per element. Any
	// violation falls back to the pure scan, which pinpoints the first
	// offending position with the exact same diagnostic text.
	if indices[0] >= 0 && int(indices[n-1]) < dim {
		prev := indices[0]
		ok := true
		for _, idx := range indices[1:] {
			if idx <= prev {
				ok = false
				break
			}
			prev = idx
		}
		if ok {
			return nil
		}
	}
	return checkIndicesPure(indices, dim)
}
