package sparse

import (
	"testing"

	"gtopkssgd/internal/prng"
)

// Benchmarks for the aggregation hot path's primitive operations. All of
// them report allocations: the merge-side primitives (DecodeView,
// MergeInto via pooled scratch) must stay at zero in steady state.

func benchVector(seed uint64, dim, nnz int) *Vector {
	src := prng.New(seed)
	g := make([]float32, dim)
	for i := range g {
		g[i] = float32(src.NormFloat64())
	}
	return TopK(g, nnz)
}

func BenchmarkTopKSparse(b *testing.B) {
	v := benchVector(1, 100_000, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TopKSparse(v, 1000)
	}
}

func BenchmarkTopKSparseInto(b *testing.B) {
	v := benchVector(1, 100_000, 2000)
	dst := &Vector{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKSparseInto(dst, v, 1000)
	}
}

func BenchmarkEncode(b *testing.B) {
	v := benchVector(2, 100_000, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PutBuffer(Encode(v))
	}
}

func BenchmarkDecode(b *testing.B) {
	v := benchVector(3, 100_000, 1000)
	buf := Encode(v)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeView(b *testing.B) {
	v := benchVector(3, 100_000, 1000)
	buf := Encode(v)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeView(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	x := benchVector(4, 100_000, 1000)
	y := benchVector(5, 100_000, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Merge(x, y, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeInto(b *testing.B) {
	x := benchVector(4, 100_000, 1000)
	y := benchVector(5, 100_000, 1000)
	dst := &Vector{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MergeInto(dst, x, y, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeRoundFromWire is the full receive-side unit of one tree
// round: encode (stands in for the inbound frame), decode-free view,
// bounded add, top-k re-selection, frame release. Steady state must be
// allocation-free (TestMergeLoopZeroAlloc asserts exactly that).
func BenchmarkMergeRoundFromWire(b *testing.B) {
	x := benchVector(6, 100_000, 1000)
	y := benchVector(7, 100_000, 1000)
	sum := &Vector{}
	cur := &Vector{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := EncodeSlices(y.Dim, y.Indices, y.Values)
		view, err := DecodeView(buf)
		if err != nil {
			b.Fatal(err)
		}
		if err := AddInto(sum, x, &view); err != nil {
			b.Fatal(err)
		}
		TopKSparseInto(cur, sum, 1000)
		PutBuffer(buf)
	}
}

func BenchmarkAccumulator(b *testing.B) {
	const p = 8
	vecs := make([]*Vector, p)
	for r := range vecs {
		vecs[r] = benchVector(uint64(10+r), 100_000, 1000)
	}
	acc := GetAccumulator(100_000)
	defer acc.Release()
	sum := &Vector{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vecs {
			if err := acc.Add(v); err != nil {
				b.Fatal(err)
			}
		}
		acc.CompactInto(sum)
	}
}

// benchKernelModes runs one benchmark body under each available kernel
// mode (fast first when the build has it), restoring the prior mode.
// This is the per-kernel fast-vs-pure comparison harness: identical
// inputs, identical outputs (pinned by the kernels_test equivalence
// suite), only the implementation differs.
func benchKernelModes(b *testing.B, run func(b *testing.B)) {
	modes := []string{KernelsPure}
	if FastKernelsAvailable() {
		modes = []string{KernelsFast, KernelsPure}
	}
	prev := Kernels()
	defer func() {
		if err := SetKernels(prev); err != nil {
			b.Fatal(err)
		}
	}()
	for _, mode := range modes {
		b.Run(mode, func(b *testing.B) {
			if err := SetKernels(mode); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			run(b)
		})
	}
}

// BenchmarkKernelThreshold isolates the magnitude-fill + quickselect
// kernels (absInto, partitionGreater) on a dense 100k-element input.
func BenchmarkKernelThreshold(b *testing.B) {
	src := prng.New(21)
	x := make([]float32, 100_000)
	for i := range x {
		x[i] = float32(src.NormFloat64())
	}
	benchKernelModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Threshold(x, 100)
		}
	})
}

// BenchmarkKernelTopKSparseInto covers the full sparse re-selection unit
// (absInto + partitionGreater + countGreater + emit scan).
func BenchmarkKernelTopKSparseInto(b *testing.B) {
	v := benchVector(22, 100_000, 2000)
	dst := &Vector{}
	benchKernelModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			TopKSparseInto(dst, v, 1000)
		}
	})
}

// BenchmarkKernelAddInto isolates the sorted-merge kernel (mergeAdd).
func BenchmarkKernelAddInto(b *testing.B) {
	x := benchVector(23, 100_000, 1000)
	y := benchVector(24, 100_000, 1000)
	dst := &Vector{}
	benchKernelModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := AddInto(dst, x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKernelScatterAdd isolates the dense scatter-add kernel behind
// Accumulator.Add (P=8 rounds like the AllGather aggregation path).
func BenchmarkKernelScatterAdd(b *testing.B) {
	const p = 8
	vecs := make([]*Vector, p)
	for r := range vecs {
		vecs[r] = benchVector(uint64(30+r), 100_000, 1000)
	}
	acc := GetAccumulator(100_000)
	defer acc.Release()
	sum := &Vector{}
	benchKernelModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range vecs {
				if err := acc.Add(v); err != nil {
					b.Fatal(err)
				}
			}
			acc.CompactInto(sum)
		}
	})
}

// BenchmarkKernelEncode isolates the wire word-move kernel (putWords:
// two memcpys in fast mode, per-element PutUint32 loops in pure mode).
func BenchmarkKernelEncode(b *testing.B) {
	v := benchVector(25, 100_000, 1000)
	buf := make([]byte, EncodedSize(v.NNZ()))
	benchKernelModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = EncodeTo(buf, v)
		}
	})
}

// BenchmarkKernelValidate isolates the index-validation kernel
// (checkIndices: one compare per element in fast mode on valid input).
func BenchmarkKernelValidate(b *testing.B) {
	v := benchVector(26, 100_000, 1000)
	benchKernelModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := v.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
