package sparse

import (
	"testing"

	"gtopkssgd/internal/prng"
)

// Benchmarks for the aggregation hot path's primitive operations. All of
// them report allocations: the merge-side primitives (DecodeView,
// MergeInto via pooled scratch) must stay at zero in steady state.

func benchVector(seed uint64, dim, nnz int) *Vector {
	src := prng.New(seed)
	g := make([]float32, dim)
	for i := range g {
		g[i] = float32(src.NormFloat64())
	}
	return TopK(g, nnz)
}

func BenchmarkTopKSparse(b *testing.B) {
	v := benchVector(1, 100_000, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TopKSparse(v, 1000)
	}
}

func BenchmarkTopKSparseInto(b *testing.B) {
	v := benchVector(1, 100_000, 2000)
	dst := &Vector{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKSparseInto(dst, v, 1000)
	}
}

func BenchmarkEncode(b *testing.B) {
	v := benchVector(2, 100_000, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PutBuffer(Encode(v))
	}
}

func BenchmarkDecode(b *testing.B) {
	v := benchVector(3, 100_000, 1000)
	buf := Encode(v)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeView(b *testing.B) {
	v := benchVector(3, 100_000, 1000)
	buf := Encode(v)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeView(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	x := benchVector(4, 100_000, 1000)
	y := benchVector(5, 100_000, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Merge(x, y, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeInto(b *testing.B) {
	x := benchVector(4, 100_000, 1000)
	y := benchVector(5, 100_000, 1000)
	dst := &Vector{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MergeInto(dst, x, y, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeRoundFromWire is the full receive-side unit of one tree
// round: encode (stands in for the inbound frame), decode-free view,
// bounded add, top-k re-selection, frame release. Steady state must be
// allocation-free (TestMergeLoopZeroAlloc asserts exactly that).
func BenchmarkMergeRoundFromWire(b *testing.B) {
	x := benchVector(6, 100_000, 1000)
	y := benchVector(7, 100_000, 1000)
	sum := &Vector{}
	cur := &Vector{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := EncodeSlices(y.Dim, y.Indices, y.Values)
		view, err := DecodeView(buf)
		if err != nil {
			b.Fatal(err)
		}
		if err := AddInto(sum, x, &view); err != nil {
			b.Fatal(err)
		}
		TopKSparseInto(cur, sum, 1000)
		PutBuffer(buf)
	}
}

func BenchmarkAccumulator(b *testing.B) {
	const p = 8
	vecs := make([]*Vector, p)
	for r := range vecs {
		vecs[r] = benchVector(uint64(10+r), 100_000, 1000)
	}
	acc := GetAccumulator(100_000)
	defer acc.Release()
	sum := &Vector{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vecs {
			if err := acc.Add(v); err != nil {
				b.Fatal(err)
			}
		}
		acc.CompactInto(sum)
	}
}
