package sparse

import (
	"fmt"
	"math"
	"testing"

	"gtopkssgd/internal/prng"
)

// shardInputs builds dense vectors that stress every selection edge:
// Gaussian spread, massive magnitude ties, zero-heavy vectors where
// k exceeds the non-zero count (zero tie-fillers), and skewed layouts
// where all winners live in one shard.
func shardInputs(t *testing.T, n int) map[string][]float32 {
	t.Helper()
	src := prng.New(uint64(n) * 7)
	gauss := make([]float32, n)
	for i := range gauss {
		gauss[i] = float32(src.NormFloat64())
	}
	ties := make([]float32, n)
	for i := range ties {
		ties[i] = float32(int(src.Uint64()%5)) - 2 // {-2,-1,0,1,2}
	}
	sparseZeros := make([]float32, n)
	for i := 0; i < n/100+1; i++ {
		sparseZeros[src.Uint64()%uint64(n)] = float32(src.NormFloat64())
	}
	skew := make([]float32, n)
	for i := range skew {
		skew[i] = float32(src.NormFloat64()) * 0.001
	}
	for i := 0; i < n/20; i++ { // winners concentrated in the last shard
		skew[n-1-i] = float32(src.NormFloat64()) + 5
	}
	return map[string][]float32{"gauss": gauss, "ties": ties, "zeros": sparseZeros, "skew": skew}
}

// TestShardSelectorBitIdentical is the engine's acceptance test: for
// every shard count, input shape and k — including k larger than the
// non-zero count and k near n — the sharded selection must be
// bit-identical to the serial TopK.
func TestShardSelectorBitIdentical(t *testing.T) {
	const n = 6 * minShardElems / 2 // big enough for up to 3 effective shards
	for name, x := range shardInputs(t, n) {
		for _, k := range []int{1, 7, 100, n / 100, n / 3, n - 1, n, n + 5} {
			want := TopK(x, k)
			for _, shards := range []int{1, 2, 3, 4, 7, 16} {
				sel := NewShardSelector(shards)
				got := sel.TopK(x, k)
				label := fmt.Sprintf("%s n=%d k=%d shards=%d", name, n, k, shards)
				if got.Dim != want.Dim || got.NNZ() != want.NNZ() {
					t.Fatalf("%s: shape dim %d/%d nnz %d/%d", label, want.Dim, got.Dim, want.NNZ(), got.NNZ())
				}
				for i := range want.Indices {
					if got.Indices[i] != want.Indices[i] ||
						math.Float32bits(got.Values[i]) != math.Float32bits(want.Values[i]) {
						t.Fatalf("%s: entry %d: (%d,%v) vs (%d,%v)", label, i,
							want.Indices[i], want.Values[i], got.Indices[i], got.Values[i])
					}
				}
			}
		}
	}
}

// TestShardSelectorReuse runs one selector across shrinking and growing
// workloads so dirty per-shard scratch from a previous call cannot leak.
func TestShardSelectorReuse(t *testing.T) {
	sel := NewShardSelector(4)
	dst := &Vector{}
	for _, n := range []int{4 * minShardElems, minShardElems / 2, 8 * minShardElems} {
		for name, x := range shardInputs(t, n) {
			k := n / 50
			want := TopK(x, k)
			sel.TopKInto(dst, x, k)
			if dst.NNZ() != want.NNZ() || dst.Dim != want.Dim {
				t.Fatalf("%s n=%d: shape nnz %d/%d", name, n, want.NNZ(), dst.NNZ())
			}
			for i := range want.Indices {
				if dst.Indices[i] != want.Indices[i] ||
					math.Float32bits(dst.Values[i]) != math.Float32bits(want.Values[i]) {
					t.Fatalf("%s n=%d: entry %d differs after reuse", name, n, i)
				}
			}
		}
	}
}

// TestShardSelectorSmallInputFallback: inputs too small to shard must
// take the serial path (and still be correct).
func TestShardSelectorSmallInputFallback(t *testing.T) {
	x := []float32{3, -1, 0, 5, -4, 2}
	sel := NewShardSelector(8)
	got := sel.TopK(x, 3)
	want := TopK(x, 3)
	if got.NNZ() != want.NNZ() {
		t.Fatalf("nnz %d, want %d", got.NNZ(), want.NNZ())
	}
	for i := range want.Indices {
		if got.Indices[i] != want.Indices[i] || got.Values[i] != want.Values[i] {
			t.Fatalf("entry %d: (%d,%v) vs (%d,%v)", i, want.Indices[i], want.Values[i], got.Indices[i], got.Values[i])
		}
	}
}

// TestShardSelectorTimings checks the instrumentation contract: timed
// runs expose one duration per effective shard plus a merge duration.
func TestShardSelectorTimings(t *testing.T) {
	n := 4 * minShardElems
	x := shardInputs(t, n)["gauss"]
	sel := NewShardSelector(4)
	sel.SetTimed(true)
	sel.TopKInto(&Vector{}, x, n/100)
	per, _ := sel.Timings()
	if len(per) != 4 {
		t.Fatalf("got %d shard timings, want 4", len(per))
	}
	for i, d := range per {
		if d <= 0 {
			t.Fatalf("shard %d duration %v not positive", i, d)
		}
	}
}

// TestShardSelectorSequentialBitIdentical: the sequential measurement
// mode must produce exactly the concurrent (and serial) result.
func TestShardSelectorSequentialBitIdentical(t *testing.T) {
	n := 4 * minShardElems
	for name, x := range shardInputs(t, n) {
		k := n / 200
		want := TopK(x, k)
		sel := NewShardSelector(4)
		sel.SetSequential(true)
		sel.SetTimed(true)
		got := sel.TopK(x, k)
		if got.NNZ() != want.NNZ() {
			t.Fatalf("%s: nnz %d vs %d", name, want.NNZ(), got.NNZ())
		}
		for i := range want.Indices {
			if got.Indices[i] != want.Indices[i] ||
				math.Float32bits(got.Values[i]) != math.Float32bits(want.Values[i]) {
				t.Fatalf("%s: entry %d differs in sequential mode", name, i)
			}
		}
	}
}
