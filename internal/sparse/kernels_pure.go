package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Portable reference implementations of the hot-loop kernels. These are
// always compiled — they are the active implementations in pure mode,
// the fallback bodies on targets without fast kernels, and the oracle
// the fuzz/equivalence suites pin the fast variants against.

func absIntoPure(dst, src []float32) {
	for i, v := range src {
		dst[i] = abs32(v)
	}
}

func partitionGreaterPure(mags []float32, lo, hi int, pivot float32) int {
	store := lo
	for i := lo; i < hi; i++ {
		if mags[i] > pivot {
			mags[i], mags[store] = mags[store], mags[i]
			store++
		}
	}
	return store
}

func countGreaterPure(mags []float32, thr float32) int {
	n := 0
	for _, m := range mags {
		if m > thr {
			n++
		}
	}
	return n
}

func mergeAddPure(dstIdx []int32, dstVal []float32, a, b *Vector) int {
	i, j, o := 0, 0, 0
	for i < len(a.Indices) && j < len(b.Indices) {
		ai, bi := a.Indices[i], b.Indices[j]
		switch {
		case ai < bi:
			dstIdx[o] = ai
			dstVal[o] = a.Values[i]
			i++
		case ai > bi:
			dstIdx[o] = bi
			dstVal[o] = b.Values[j]
			j++
		default:
			dstIdx[o] = ai
			dstVal[o] = a.Values[i] + b.Values[j]
			i++
			j++
		}
		o++
	}
	o += copy(dstIdx[o:], a.Indices[i:])
	copy(dstVal[o-(len(a.Indices)-i):], a.Values[i:])
	o += copy(dstIdx[o:], b.Indices[j:])
	copy(dstVal[o-(len(b.Indices)-j):], b.Values[j:])
	return o
}

// emitTopKPure is the reference winner scan: strict winners always
// selected, threshold ties selected lowest-index-first until the quota
// runs out, stopping as soon as k entries are out. srcIdx nil means the
// source is dense and positions are the indices (TopKInto).
func emitTopKPure(dstIdx []int32, dstVal []float32, srcIdx []int32, srcVal []float32, thr float32, tieQuota, k int) int {
	o := 0
	for i, v := range srcVal {
		m := abs32(v)
		switch {
		case m > thr:
		case m == thr && tieQuota > 0:
			tieQuota--
		default:
			continue
		}
		if srcIdx != nil {
			dstIdx[o] = srcIdx[i]
		} else {
			dstIdx[o] = int32(i)
		}
		dstVal[o] = v
		o++
		if o == k {
			break
		}
	}
	return o
}

func scatterAddPure(dense []float32, mark []bool, touched []int32, indices []int32, values []float32) []int32 {
	for i, idx := range indices {
		if !mark[idx] {
			mark[idx] = true
			touched = append(touched, idx)
		}
		dense[idx] += values[i]
	}
	return touched
}

func putWordsPure(buf []byte, indices []int32, values []float32) {
	off := 0
	for _, idx := range indices {
		binary.LittleEndian.PutUint32(buf[off:off+4], uint32(idx))
		off += 4
	}
	for _, val := range values {
		binary.LittleEndian.PutUint32(buf[off:off+4], math.Float32bits(val))
		off += 4
	}
}

func checkIndicesPure(indices []int32, dim int) error {
	for i, idx := range indices {
		if idx < 0 || int(idx) >= dim {
			return fmt.Errorf("sparse: index %d out of range [0,%d)", idx, dim)
		}
		if i > 0 && indices[i-1] >= idx {
			return fmt.Errorf("sparse: indices not strictly ascending at position %d", i)
		}
	}
	return nil
}
