package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"gtopkssgd/internal/f16"
)

// This file is wire format v2: sorted-index delta encoding with varint
// gaps plus a choice of fp32 (lossless, the default) or fp16 (opt-in,
// lossy) values. At the paper's densities the index stream dominates the
// v1 frame cost — 4 flat bytes per index — while the gaps between sorted
// indices of a clustered gradient support fit in one or two varint bytes,
// which is where the wire-byte reduction comes from (the same trick the
// DGC lineage uses for its index streams).
//
// Frame layout (little-endian):
//
//	byte 0          magic 0xA7
//	byte 1          version (2)
//	byte 2          flags (bit 0: fp16 values; all other bits reserved)
//	uvarint         dim
//	uvarint         nnz
//	nnz × uvarint   index gaps: gap_0 = idx_0, gap_i = idx_i − idx_{i−1} − 1
//	                (strictly ascending indices make every gap ≥ 0)
//	nnz × 4 bytes   float32 values — or nnz × 2 bytes binary16 with fp16
//
// Varints use the minimal encoding only; decoders reject padded forms, so
// the encoding stays canonical (accepted bytes re-encode identically).
// Which codec a frame uses is negotiated per mesh (see transport): every
// member offers its highest wire version in the handshake and the mesh
// settles on the minimum, so one v1 peer keeps all frames v1-decodable.

// Codec selects the wire encoding for sparse gradient frames.
type Codec uint8

// The wire codecs. CodecV1 is the legacy flat layout of Encode/Decode;
// the v2 codecs share one frame format and differ only in the value
// width flag.
const (
	// CodecV1 is the flat little-endian layout: uint32 dim | uint32 nnz |
	// nnz×int32 index | nnz×float32 value. Lossless, 8 bytes per entry.
	CodecV1 Codec = 1
	// CodecV2 is delta/varint indices with raw float32 values. Lossless:
	// decodes bit-identically to the encoded vector.
	CodecV2 Codec = 2
	// CodecV2F16 is delta/varint indices with binary16 values
	// (round-to-nearest-even; relative value error ≤ 2^-11). Opt-in.
	CodecV2F16 Codec = 3
)

// WireVersion returns the frame-format version byte a codec needs on the
// wire (the unit of mesh negotiation; the fp16 flag is carried per frame,
// not negotiated).
func (c Codec) WireVersion() byte {
	switch {
	case c >= CodecV3:
		return 3
	case c >= CodecV2:
		return 2
	default:
		return 1
	}
}

// Lossy reports whether encoding through c can change value bits.
func (c Codec) Lossy() bool { return c.Value().Lossy() }

// String names the codec the way the -wire flags spell it.
func (c Codec) String() string {
	switch c {
	case CodecV1:
		return "v1"
	case CodecV2:
		return "v2"
	case CodecV2F16:
		return "v2-fp16"
	case CodecV3, CodecV3F16, CodecV3Q8, CodecV3Q4, CodecV3Q2, CodecV3T, CodecV3S:
		if c == CodecV3 {
			return "v3"
		}
		return "v3-" + c.Value().String()
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// ParseCodec parses the -wire flag spellings: v1, v2, v2-fp16, v3 and
// the compound forms v3-<value codec> (v3-fp16, v3-qsgd8, v3-qsgd4,
// v3-qsgd2, v3-ternary, v3-sign).
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "v1":
		return CodecV1, nil
	case "v2":
		return CodecV2, nil
	case "v2-fp16":
		return CodecV2F16, nil
	case "v3":
		return CodecV3, nil
	}
	if rest, ok := strings.CutPrefix(s, "v3-"); ok {
		if vc, err := ParseValueCodec(rest); err == nil && vc != ValueF32 {
			return codecForValue(vc), nil
		}
	}
	return 0, fmt.Errorf("sparse: unknown wire codec %q (want v1, v2, v2-fp16, v3 or v3-<value codec>)", s)
}

// CodecForWire maps a negotiated wire version plus the sender's value-
// precision preference onto the codec to encode with. Unknown (future)
// versions clamp to the latest; version 0 means "unnegotiated" and maps
// to v1. Quantized value preferences need CodecForWireValue.
func CodecForWire(version byte, fp16Values bool) Codec {
	vc := ValueF32
	if fp16Values {
		vc = ValueF16
	}
	return CodecForWireValue(version, vc)
}

// v2 frame constants.
const (
	// V2Magic is the first byte of every v2 frame. v1 frames start with
	// the low byte of dim, so receivers on a negotiated mesh never need
	// to sniff — the magic exists to make cross-version decoding fail
	// loudly instead of misparsing.
	V2Magic = 0xA7
	// v2Version is the frame-format version byte.
	v2Version = 2
	// v2FlagF16 marks binary16 values; all other flag bits are reserved
	// and rejected.
	v2FlagF16 = 0x01
	// v2HeaderFixed is the fixed part of the header (magic+version+flags).
	v2HeaderFixed = 3
)

// valueBytes returns the per-entry value width of a v2 codec.
func (c Codec) valueBytes() int {
	if c == CodecV2F16 {
		return 2
	}
	return 4
}

// uvarintLen returns the number of bytes PutUvarint emits for v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// EncodedSizeCodec returns the exact number of bytes EncodeSlicesCodec
// will produce for the given codec and entries. For CodecV1 this is the
// flat EncodedSize; for v2 it walks the index gaps (O(nnz)).
func EncodedSizeCodec(c Codec, dim int, indices []int32) int {
	if c == CodecV1 {
		return EncodedSize(len(indices))
	}
	if c.WireVersion() == 3 {
		return encodedSizeV3(c.Value(), dim, indices)
	}
	n := v2HeaderFixed + uvarintLen(uint64(dim)) + uvarintLen(uint64(len(indices)))
	prev := int32(-1)
	for _, idx := range indices {
		n += uvarintLen(uint64(idx - prev - 1))
		prev = idx
	}
	return n + len(indices)*c.valueBytes()
}

// maxEncodedSizeV2 bounds the v2 frame size for nnz entries, used to
// draw a pooled buffer before the exact varint widths are known.
func maxEncodedSizeV2(c Codec, nnz int) int {
	return v2HeaderFixed + 2*binary.MaxVarintLen32 + nnz*(binary.MaxVarintLen32+c.valueBytes())
}

// EncodeCodec serialises v under the given codec into a pooled wire
// buffer (ownership passes to the caller, and onward to the transport
// when sent). CodecV1 produces exactly Encode's bytes.
func EncodeCodec(c Codec, v *Vector) []byte {
	return EncodeSlicesCodec(c, v.Dim, v.Indices, v.Values)
}

// EncodeSlicesCodec serialises one contiguous span of a sparse vector
// under the given codec — the codec-aware sibling of EncodeSlices, used
// by the chunked gTop-k tree exchange. Indices must be strictly
// ascending (every constructor in this package guarantees it).
func EncodeSlicesCodec(c Codec, dim int, indices []int32, values []float32) []byte {
	switch c.WireVersion() {
	case 3:
		// Float-valued v3 frames only: quantized codecs need the
		// Compressor's (scale, levels) and go through EncodeSlicesV3.
		return EncodeSlicesV3(c, dim, indices, values, 0, nil)
	case 2:
		return encodeV2(GetBuffer(maxEncodedSizeV2(c, len(indices))), c, dim, indices, values)
	default:
		return encodeParts(GetBuffer(EncodedSize(len(indices))), dim, indices, values)
	}
}

// encodeV2 writes the v2 frame into buf (sized by maxEncodedSizeV2) and
// returns the written prefix. The buffer keeps its pooled capacity, so
// recycling the trimmed slice returns the full allocation to the pool.
func encodeV2(buf []byte, c Codec, dim int, indices []int32, values []float32) []byte {
	buf[0] = V2Magic
	buf[1] = v2Version
	flags := byte(0)
	if c == CodecV2F16 {
		flags |= v2FlagF16
	}
	buf[2] = flags
	off := v2HeaderFixed
	off += binary.PutUvarint(buf[off:], uint64(dim))
	off += binary.PutUvarint(buf[off:], uint64(len(indices)))
	prev := int32(-1)
	for _, idx := range indices {
		off += binary.PutUvarint(buf[off:], uint64(idx-prev-1))
		prev = idx
	}
	if c == CodecV2F16 {
		for _, v := range values {
			binary.LittleEndian.PutUint16(buf[off:off+2], f16.Bits(v))
			off += 2
		}
	} else {
		for _, v := range values {
			binary.LittleEndian.PutUint32(buf[off:off+4], math.Float32bits(v))
			off += 4
		}
	}
	return buf[:off]
}

// readUvarint decodes one minimally-encoded uvarint from buf. Padded
// encodings (a most-significant continuation group of zero) and
// truncated or oversized values yield an error: the wire format is
// canonical and transport payloads are untrusted at this layer.
func readUvarint(buf []byte) (uint64, int, error) {
	v, n := binary.Uvarint(buf)
	switch {
	case n <= 0:
		return 0, 0, fmt.Errorf("sparse: decode: bad varint")
	case n > 1 && buf[n-1] == 0:
		return 0, 0, fmt.Errorf("sparse: decode: non-minimal varint")
	}
	return v, n, nil
}

// DecodeV2Into parses a v2 frame into dst, reusing dst's capacity. It
// never panics on truncated or corrupt input and rejects anything that
// is not a well-formed v2 frame — including v1 frames, padded varints,
// out-of-range indices and trailing bytes — so accepted frames are
// structurally valid vectors and re-encode to the identical bytes (with
// the codec named by the frame's own flags byte).
//
// Unlike DecodeView, the result never aliases buf: delta-coded indices
// must be materialised, so the frame may be released (PutBuffer) as soon
// as DecodeV2Into returns.
func DecodeV2Into(dst *Vector, buf []byte) error {
	if len(buf) < v2HeaderFixed+2 {
		return fmt.Errorf("sparse: decode v2: short buffer (%d bytes)", len(buf))
	}
	if buf[0] != V2Magic || buf[1] != v2Version {
		return fmt.Errorf("sparse: decode v2: not a v2 frame (header %#02x %#02x)", buf[0], buf[1])
	}
	flags := buf[2]
	if flags&^byte(v2FlagF16) != 0 {
		return fmt.Errorf("sparse: decode v2: unknown flags %#02x", flags)
	}
	valBytes := 4
	if flags&v2FlagF16 != 0 {
		valBytes = 2
	}
	off := v2HeaderFixed
	dim64, n, err := readUvarint(buf[off:])
	if err != nil {
		return err
	}
	off += n
	if dim64 > math.MaxInt32 {
		return fmt.Errorf("sparse: decode v2: dim %d out of range", dim64)
	}
	nnz64, n, err := readUvarint(buf[off:])
	if err != nil {
		return err
	}
	off += n
	dim := int(dim64)
	// Strictly ascending in-range indices bound nnz by dim; checking
	// before sizing dst also stops a hostile header from forcing a huge
	// allocation backed by a tiny frame.
	if nnz64 > dim64 || int(nnz64)*(1+valBytes) > len(buf)-off {
		return fmt.Errorf("sparse: decode v2: nnz %d impossible for dim %d in %d bytes", nnz64, dim64, len(buf))
	}
	nnz := int(nnz64)
	ensureVec(dst, nnz)
	dst.Dim = dim
	prev := -1
	for i := 0; i < nnz; i++ {
		gap, n, err := readUvarint(buf[off:])
		if err != nil {
			return err
		}
		off += n
		idx := int64(prev) + 1 + int64(gap)
		if gap > math.MaxInt32 || idx >= int64(dim) {
			return fmt.Errorf("sparse: decode v2: index %d out of range [0,%d)", idx, dim)
		}
		dst.Indices[i] = int32(idx)
		prev = int(idx)
	}
	if len(buf)-off != nnz*valBytes {
		return fmt.Errorf("sparse: decode v2: %d value bytes for nnz=%d, want %d", len(buf)-off, nnz, nnz*valBytes)
	}
	if valBytes == 2 {
		for i := 0; i < nnz; i++ {
			dst.Values[i] = f16.From(binary.LittleEndian.Uint16(buf[off : off+2]))
			off += 2
		}
	} else {
		for i := 0; i < nnz; i++ {
			dst.Values[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off : off+4]))
			off += 4
		}
	}
	return nil
}

// DecodeCodec parses buf under the given codec into a fresh vector —
// the convenience sibling of DecodeV2Into/Decode for non-hot-path
// callers and tests.
func DecodeCodec(c Codec, buf []byte) (*Vector, error) {
	if c == CodecV1 {
		return Decode(buf)
	}
	v := &Vector{}
	var err error
	if c.WireVersion() == 3 {
		err = DecodeV3Into(v, buf)
	} else {
		err = DecodeV2Into(v, buf)
	}
	if err != nil {
		return nil, err
	}
	return v, nil
}
