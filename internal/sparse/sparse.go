// Package sparse implements the sparse-gradient machinery of the paper:
// magnitude top-k selection over dense gradient vectors, the compact
// [values, indices] representation exchanged between workers, and the
// Top-k merge operator "⊕" of Definition 1 used by gTopKAllReduce.
//
// Conventions follow the paper: for a model with m parameters and density
// ρ, k = ρ·m gradients survive selection; everything else stays in the
// worker-local residual (error feedback), handled by package core.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Vector is a sparse view of a length-Dim dense vector: Values[i] lives at
// dense position Indices[i]. Indices are unique and kept in ascending
// order by every constructor in this package (ascending order makes the
// merge in Add a linear scan and wire encodings canonical).
type Vector struct {
	Dim     int
	Indices []int32
	Values  []float32
}

// ErrDimension reports incompatible dense dimensions in a binary operation.
var ErrDimension = errors.New("sparse: dimension mismatch")

// NNZ returns the number of stored (non-zero) entries.
func (v *Vector) NNZ() int { return len(v.Indices) }

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	return &Vector{
		Dim:     v.Dim,
		Indices: append([]int32(nil), v.Indices...),
		Values:  append([]float32(nil), v.Values...),
	}
}

// Validate checks the structural invariants (sorted unique in-range
// indices, parallel slices) and returns a descriptive error on violation.
func (v *Vector) Validate() error {
	if len(v.Indices) != len(v.Values) {
		return fmt.Errorf("sparse: %d indices but %d values", len(v.Indices), len(v.Values))
	}
	return checkIndices(v.Indices, v.Dim)
}

// Dense scatters v into a freshly allocated dense vector.
func (v *Vector) Dense() []float32 {
	out := make([]float32, v.Dim)
	for i, idx := range v.Indices {
		out[idx] = v.Values[i]
	}
	return out
}

// ScatterAdd adds v into dst (len(dst) must equal v.Dim).
func (v *Vector) ScatterAdd(dst []float32) {
	if len(dst) != v.Dim {
		panic(fmt.Sprintf("sparse: ScatterAdd into %d-dim buffer, vector dim %d", len(dst), v.Dim))
	}
	for i, idx := range v.Indices {
		dst[idx] += v.Values[i]
	}
}

// Scale multiplies every stored value by alpha in place.
func (v *Vector) Scale(alpha float32) {
	for i := range v.Values {
		v.Values[i] *= alpha
	}
}

// FromDense collects the non-zero entries of x into a sparse vector.
func FromDense(x []float32) *Vector {
	v := &Vector{Dim: len(x)}
	for i, val := range x {
		if val != 0 {
			v.Indices = append(v.Indices, int32(i))
			v.Values = append(v.Values, val)
		}
	}
	return v
}

// Add returns the sparse sum a+b. The result's support is the union of the
// operand supports; exact zero sums are kept (their index was touched, and
// gTop-k treats "sent" and "zero" differently only via magnitude, so a
// zero sum simply never survives a subsequent TopK). Hot paths use
// AddInto, which this wraps.
func Add(a, b *Vector) (*Vector, error) {
	out := &Vector{}
	if err := AddInto(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// Merge implements the paper's Definition 1: the Top-k operator ⊕ over
// two sparse vectors. It returns TopK(a+b, k): the k largest-magnitude
// entries of the element-wise sum (fewer if the union support is smaller).
// Hot paths use MergeInto, which this wraps.
func Merge(a, b *Vector, k int) (*Vector, error) {
	out := &Vector{}
	if err := MergeInto(out, a, b, k); err != nil {
		return nil, err
	}
	return out, nil
}

// TopK selects the k largest-magnitude entries of the dense vector x.
// Ties at the threshold magnitude are broken by lower dense index so the
// result is deterministic across workers (essential: all replicas must
// make identical selections from identical inputs).
//
// This is exactly Algorithm 1 lines 5-7 of the paper: find the k-th
// largest |x_i| (quickselect, expected O(n)), then mask everything below
// it in one ascending scan — which also yields the indices pre-sorted.
func TopK(x []float32, k int) *Vector {
	out := &Vector{}
	TopKInto(out, x, k)
	return out
}

// TopKInto is TopK writing into a caller-owned destination, reusing its
// capacity. Selection order and tie-breaking are identical to TopK; the
// sharded selection engine runs it per shard.
func TopKInto(dst *Vector, x []float32, k int) {
	dst.Dim = len(x)
	if k <= 0 {
		dst.Indices = dst.Indices[:0]
		dst.Values = dst.Values[:0]
		return
	}
	if k >= len(x) {
		// All non-zero entries survive (FromDense semantics).
		ensureVec(dst, len(x))
		o := 0
		for i, v := range x {
			if v != 0 {
				dst.Indices[o] = int32(i)
				dst.Values[o] = v
				o++
			}
		}
		dst.Indices = dst.Indices[:o]
		dst.Values = dst.Values[:o]
		return
	}
	// The radix fast path reads the dense values directly (it masks the
	// sign bit in its own scan) and yields the strict-winner count as a
	// by-product; the fallback inlines Threshold so the count comes from
	// the same magnitude scratch (quickselect permutes it, which preserves
	// the multiset) without recomputing any magnitudes. The remaining tie
	// quota goes to the lowest-index entries at the threshold.
	thr, strict, ok := selectThresholdVals(x, k)
	if !ok {
		sp := getMagScratch(len(x))
		mags := *sp
		absInto(mags, x)
		thr, strict = selectThreshold(mags, k)
		magScratch.Put(sp)
	}
	// One slot of emit slack: the branchless fast scan stores rejected
	// entries into the slot one past the last winner before truncation.
	ensureVec(dst, k+1)
	o := emitTopK(dst.Indices, dst.Values, nil, x, thr, k-strict, k)
	dst.Indices = dst.Indices[:o]
	dst.Values = dst.Values[:o]
}

// TopKSparse selects the k largest-magnitude stored entries of v. Hot
// paths use TopKSparseInto, which this wraps.
func TopKSparse(v *Vector, k int) *Vector {
	out := &Vector{}
	TopKSparseInto(out, v, k)
	return out
}

// Scratch pool for the selection hot path. Every training iteration of
// every worker runs at least one top-k selection over the full residual,
// so the magnitude scratch vectors are recycled instead of reallocated
// per call. The pool is safe for the concurrent per-bucket selections of
// the bucketed aggregation pipeline.
var magScratch = sync.Pool{New: func() any { return new([]float32) }}

func getMagScratch(n int) *[]float32 {
	sp := magScratch.Get().(*[]float32)
	if cap(*sp) < n {
		*sp = make([]float32, n)
	}
	*sp = (*sp)[:n]
	return sp
}

// Threshold returns the k-th largest absolute value of x (the selection
// threshold "thr" of Algorithm 1 line 5). k must be in [1, len(x)].
// Expected O(n) quickselect over a pooled scratch buffer; x is not
// modified.
func Threshold(x []float32, k int) float32 {
	if k < 1 || k > len(x) {
		panic(fmt.Sprintf("sparse: Threshold k=%d with %d elements", k, len(x)))
	}
	sp := getMagScratch(len(x))
	defer magScratch.Put(sp)
	mags := *sp
	absInto(mags, x)
	thr, _ := selectThreshold(mags, k)
	return thr
}

// selectKthLargest returns the k-th largest element of mags, reordering
// mags freely (callers pass pooled scratch). Expected O(n) quickselect
// over plain float32s — the hottest loop in the aggregation path, so it
// swaps values directly instead of going through position indirection.
func selectKthLargest(mags []float32, k int) float32 {
	lo, hi, want := 0, len(mags)-1, k-1
	state := uint64(0x9e3779b97f4a7c15)
	for lo < hi {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		p := lo + int(state%uint64(hi-lo+1))
		pivot := mags[p]
		mags[p], mags[hi] = mags[hi], mags[p]
		store := partitionGreater(mags, lo, hi, pivot)
		mags[store], mags[hi] = mags[hi], mags[store]
		switch {
		case store == want:
			return mags[store]
		case store < want:
			lo = store + 1
		default:
			hi = store - 1
		}
	}
	return mags[lo]
}

// abs32 is mask-abs: clearing the sign bit, branch-free, is |v| for
// every float32 including -0 and NaN payloads — and exactly what the
// word-batched absInto kernel does four lanes at a time, so scalar and
// batched magnitude computations agree bit for bit.
func abs32(v float32) float32 {
	return math.Float32frombits(math.Float32bits(v) &^ (1 << 31))
}
