package sparse

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"gtopkssgd/internal/prng"
)

func randDense(src *prng.Source, n int) []float32 {
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(src.NormFloat64())
	}
	return x
}

func randSparse(src *prng.Source, dim, nnz int) *Vector {
	perm := src.Perm(dim)[:nnz]
	sort.Ints(perm)
	v := &Vector{Dim: dim, Indices: make([]int32, nnz), Values: make([]float32, nnz)}
	for i, p := range perm {
		v.Indices[i] = int32(p)
		v.Values[i] = float32(src.NormFloat64())
		if v.Values[i] == 0 {
			v.Values[i] = 1
		}
	}
	return v
}

// referenceTopK is the obvious O(n log n) specification of magnitude
// top-k with low-index tie break.
func referenceTopK(x []float32, k int) map[int32]float32 {
	type pair struct {
		idx int32
		m   float32
	}
	ps := make([]pair, len(x))
	for i, v := range x {
		m := v
		if m < 0 {
			m = -m
		}
		ps[i] = pair{int32(i), m}
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].m != ps[b].m {
			return ps[a].m > ps[b].m
		}
		return ps[a].idx < ps[b].idx
	})
	if k > len(ps) {
		k = len(ps)
	}
	out := make(map[int32]float32, k)
	for _, p := range ps[:k] {
		out[p.idx] = x[p.idx]
	}
	return out
}

func TestTopKMatchesReference(t *testing.T) {
	src := prng.New(1)
	for _, n := range []int{1, 5, 64, 257} {
		for _, k := range []int{0, 1, 2, n / 2, n, n + 3} {
			x := randDense(src, n)
			got := TopK(x, k)
			if err := got.Validate(); err != nil {
				t.Fatalf("n=%d k=%d: invalid result: %v", n, k, err)
			}
			want := referenceTopK(x, k)
			if got.NNZ() != len(want) {
				t.Fatalf("n=%d k=%d: got %d entries, want %d", n, k, got.NNZ(), len(want))
			}
			for i, idx := range got.Indices {
				wv, ok := want[idx]
				if !ok {
					t.Fatalf("n=%d k=%d: unexpected index %d", n, k, idx)
				}
				if got.Values[i] != wv {
					t.Fatalf("n=%d k=%d idx=%d: value %v want %v", n, k, idx, got.Values[i], wv)
				}
			}
		}
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	// Five equal magnitudes: selection must pick the lowest indices.
	x := []float32{1, -1, 1, -1, 1}
	got := TopK(x, 2)
	if got.NNZ() != 2 || got.Indices[0] != 0 || got.Indices[1] != 1 {
		t.Fatalf("tie break: got indices %v, want [0 1]", got.Indices)
	}
}

func TestTopKZeroVector(t *testing.T) {
	got := TopK(make([]float32, 10), 3)
	if got.NNZ() != 3 {
		// All-zero magnitudes still yield k entries (paper keeps exactly k).
		t.Fatalf("TopK on zero vector: nnz=%d, want 3", got.NNZ())
	}
}

func TestThresholdMatchesSorted(t *testing.T) {
	src := prng.New(4)
	for trial := 0; trial < 50; trial++ {
		n := 1 + src.Intn(200)
		x := randDense(src, n)
		mags := make([]float64, n)
		for i, v := range x {
			mags[i] = math.Abs(float64(v))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(mags)))
		k := 1 + src.Intn(n)
		if got := float64(Threshold(x, k)); got != mags[k-1] {
			t.Fatalf("n=%d k=%d: Threshold=%v want %v", n, k, got, mags[k-1])
		}
	}
}

func TestAddMatchesDense(t *testing.T) {
	src := prng.New(5)
	for trial := 0; trial < 30; trial++ {
		dim := 20 + src.Intn(100)
		a := randSparse(src, dim, src.Intn(dim))
		b := randSparse(src, dim, src.Intn(dim))
		sum, err := Add(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := sum.Validate(); err != nil {
			t.Fatalf("invalid sum: %v", err)
		}
		da, db, ds := a.Dense(), b.Dense(), sum.Dense()
		for i := range da {
			if want := da[i] + db[i]; ds[i] != want {
				t.Fatalf("trial %d elem %d: %v want %v", trial, i, ds[i], want)
			}
		}
	}
}

func TestAddDimensionMismatch(t *testing.T) {
	_, err := Add(&Vector{Dim: 3}, &Vector{Dim: 4})
	if err == nil {
		t.Fatal("Add with mismatched dims returned nil error")
	}
}

func TestMergeIsTopKOfSum(t *testing.T) {
	src := prng.New(6)
	for trial := 0; trial < 30; trial++ {
		dim := 50
		k := 8
		a := randSparse(src, dim, k)
		b := randSparse(src, dim, k)
		merged, err := Merge(a, b, k)
		if err != nil {
			t.Fatal(err)
		}
		if merged.NNZ() > k {
			t.Fatalf("merge produced %d > k=%d entries", merged.NNZ(), k)
		}
		// Compare against dense reference: top-k of the dense sum restricted
		// to the union support.
		dense := a.Dense()
		for i, v := range b.Dense() {
			dense[i] += v
		}
		want := referenceTopK(dense, k)
		gotDense := merged.Dense()
		for idx, wv := range want {
			if wv != 0 && gotDense[idx] != wv {
				t.Fatalf("trial %d: merged[%d]=%v want %v", trial, idx, gotDense[idx], wv)
			}
		}
	}
}

func TestMergeCommutativeSupport(t *testing.T) {
	src := prng.New(7)
	for trial := 0; trial < 20; trial++ {
		a := randSparse(src, 40, 6)
		b := randSparse(src, 40, 6)
		m1, _ := Merge(a, b, 6)
		m2, _ := Merge(b, a, 6)
		if m1.NNZ() != m2.NNZ() {
			t.Fatalf("⊕ not commutative in size: %d vs %d", m1.NNZ(), m2.NNZ())
		}
		for i := range m1.Indices {
			if m1.Indices[i] != m2.Indices[i] || m1.Values[i] != m2.Values[i] {
				t.Fatalf("⊕ not commutative at %d", i)
			}
		}
	}
}

func TestScatterAddAndScale(t *testing.T) {
	v := &Vector{Dim: 5, Indices: []int32{1, 3}, Values: []float32{2, -4}}
	dst := []float32{1, 1, 1, 1, 1}
	v.ScatterAdd(dst)
	want := []float32{1, 3, 1, -3, 1}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("ScatterAdd = %v, want %v", dst, want)
		}
	}
	v.Scale(0.5)
	if v.Values[0] != 1 || v.Values[1] != -2 {
		t.Fatalf("Scale = %v", v.Values)
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	x := []float32{0, 1, 0, -2, 0, 0, 3}
	v := FromDense(x)
	if v.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", v.NNZ())
	}
	d := v.Dense()
	for i := range x {
		if d[i] != x[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []*Vector{
		{Dim: 5, Indices: []int32{1}, Values: []float32{1, 2}},    // length mismatch
		{Dim: 5, Indices: []int32{5}, Values: []float32{1}},       // out of range
		{Dim: 5, Indices: []int32{-1}, Values: []float32{1}},      // negative
		{Dim: 5, Indices: []int32{2, 2}, Values: []float32{1, 2}}, // duplicate
		{Dim: 5, Indices: []int32{3, 1}, Values: []float32{1, 2}}, // unsorted
	}
	for i, v := range cases {
		if v.Validate() == nil {
			t.Errorf("case %d: Validate accepted corrupt vector", i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	src := prng.New(8)
	for trial := 0; trial < 20; trial++ {
		v := randSparse(src, 100, src.Intn(50))
		buf := Encode(v)
		if len(buf) != EncodedSize(v.NNZ()) {
			t.Fatalf("encoded %d bytes, want %d", len(buf), EncodedSize(v.NNZ()))
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Dim != v.Dim || got.NNZ() != v.NNZ() {
			t.Fatalf("round trip shape mismatch")
		}
		for i := range v.Indices {
			if got.Indices[i] != v.Indices[i] || got.Values[i] != v.Values[i] {
				t.Fatalf("round trip element %d mismatch", i)
			}
		}
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) accepted")
	}
	if _, err := Decode(make([]byte, 7)); err == nil {
		t.Error("Decode(short) accepted")
	}
	v := &Vector{Dim: 10, Indices: []int32{1, 2}, Values: []float32{1, 2}}
	buf := Encode(v)
	if _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Error("Decode(truncated) accepted")
	}
	// Corrupt an index to be out of range.
	bad := append([]byte(nil), buf...)
	bad[8] = 0xFF
	bad[9] = 0xFF
	bad[10] = 0xFF
	bad[11] = 0x7F
	if _, err := Decode(bad); err == nil {
		t.Error("Decode(corrupt index) accepted")
	}
}

func TestEncodeDecodeDenseRoundTrip(t *testing.T) {
	src := prng.New(9)
	x := randDense(src, 33)
	got, err := DecodeDense(EncodeDense(x))
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("dense round trip mismatch at %d", i)
		}
	}
	if _, err := DecodeDense([]byte{1, 2}); err == nil {
		t.Error("DecodeDense(short) accepted")
	}
	if _, err := DecodeDense(EncodeDense(x)[:10]); err == nil {
		t.Error("DecodeDense(truncated) accepted")
	}
}

// Property: TopK output always validates, has min(k, n) entries, and its
// smallest magnitude is >= the largest magnitude it excluded.
func TestQuickTopKInvariants(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%128) + 1
		k := int(kRaw % 130)
		x := randDense(prng.New(seed), n)
		v := TopK(x, k)
		if v.Validate() != nil {
			return false
		}
		wantNNZ := k
		if wantNNZ > n {
			wantNNZ = n
		}
		if k > 0 && v.NNZ() != wantNNZ {
			return false
		}
		selected := make(map[int32]bool, v.NNZ())
		minSel := float32(math.MaxFloat32)
		for i, idx := range v.Indices {
			selected[idx] = true
			if m := abs32(v.Values[i]); m < minSel {
				minSel = m
			}
		}
		if v.NNZ() == 0 {
			return true
		}
		for i, val := range x {
			if !selected[int32(i)] && abs32(val) > minSel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge result support size <= k and every kept value equals the
// corresponding coordinate of the exact sum.
func TestQuickMergeInvariants(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		src := prng.New(seed)
		dim := 64
		k := int(kRaw%16) + 1
		a := randSparse(src, dim, k)
		b := randSparse(src, dim, k)
		m, err := Merge(a, b, k)
		if err != nil || m.Validate() != nil || m.NNZ() > k {
			return false
		}
		dense := a.Dense()
		for i, v := range b.Dense() {
			dense[i] += v
		}
		for i, idx := range m.Indices {
			if m.Values[i] != dense[idx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode is the identity on valid vectors.
func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(seed uint64, nnzRaw uint8) bool {
		src := prng.New(seed)
		nnz := int(nnzRaw % 40)
		v := randSparse(src, 64, nnz)
		got, err := Decode(Encode(v))
		if err != nil || got.Dim != v.Dim || got.NNZ() != v.NNZ() {
			return false
		}
		for i := range v.Indices {
			if got.Indices[i] != v.Indices[i] || got.Values[i] != v.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTopK1M(b *testing.B) {
	x := randDense(prng.New(1), 1<<20)
	k := len(x) / 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TopK(x, k)
	}
}

