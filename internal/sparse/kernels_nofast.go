//go:build purego || !(amd64 || arm64)

package sparse

// Fallback shims for builds without the fast kernels (the purego build
// tag, or targets where the word-move tricks are unproven). The fast
// names must exist for kernels.go to compile, but they are unreachable:
// with fastKernelsAvailable false the dispatch flag can never be set to
// fast, so every call goes straight to the pure implementations.

const fastKernelsAvailable = false

func absIntoFast(dst, src []float32) { absIntoPure(dst, src) }

func partitionGreaterFast(mags []float32, lo, hi int, pivot float32) int {
	return partitionGreaterPure(mags, lo, hi, pivot)
}

func countGreaterFast(mags []float32, thr float32) int { return countGreaterPure(mags, thr) }

func mergeAddFast(dstIdx []int32, dstVal []float32, a, b *Vector) int {
	return mergeAddPure(dstIdx, dstVal, a, b)
}

func scatterAddFast(dense []float32, mark []bool, touched []int32, indices []int32, values []float32) []int32 {
	return scatterAddPure(dense, mark, touched, indices, values)
}

func putWordsFast(buf []byte, indices []int32, values []float32) {
	putWordsPure(buf, indices, values)
}

func checkIndicesFast(indices []int32, dim int) error { return checkIndicesPure(indices, dim) }

func radixSelectKthLargest(mags []float32, k int) (float32, int, bool) { return 0, 0, false }

func emitTopKFast(dstIdx []int32, dstVal []float32, srcIdx []int32, srcVal []float32, thr float32, tieQuota, k int) int {
	return emitTopKPure(dstIdx, dstVal, srcIdx, srcVal, thr, tieQuota, k)
}
