package sparse

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// hostLittleEndian reports whether this machine stores multi-byte values
// little-endian — i.e. whether the wire format's int32/float32 payload
// bytes can be reinterpreted in place instead of decoded element-wise.
var hostLittleEndian = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// DecodeView parses the wire format produced by Encode without
// materialising a Vector: on little-endian hosts (every supported
// platform in practice) with a 4-byte-aligned frame, the returned
// Vector's Indices and Values slices alias buf directly — zero copies,
// zero allocations. The same structural validation as Decode is applied,
// so transport payloads remain untrusted at this layer.
//
// Ownership: the view is a window into buf. It is valid only until the
// frame is released (PutBuffer) or mutated; consumers must copy the
// entries they keep — MergeInto, AddInto, Accumulator.Add and
// TopKSparseInto all do — before releasing the frame. On exotic
// (big-endian or misaligned) inputs DecodeView falls back to a copying
// decode, which is always safe to release immediately.
func DecodeView(buf []byte) (Vector, error) {
	if len(buf) < headerBytes {
		return Vector{}, fmt.Errorf("sparse: decode view: short buffer (%d bytes)", len(buf))
	}
	dim := int(binary.LittleEndian.Uint32(buf[0:4]))
	nnz := int(binary.LittleEndian.Uint32(buf[4:8]))
	if want := EncodedSize(nnz); len(buf) != want {
		return Vector{}, fmt.Errorf("sparse: decode view: %d bytes for nnz=%d, want %d", len(buf), nnz, want)
	}
	if nnz == 0 {
		return Vector{Dim: dim}, nil
	}
	if !hostLittleEndian || uintptr(unsafe.Pointer(&buf[0]))%4 != 0 {
		v, err := Decode(buf)
		if err != nil {
			return Vector{}, err
		}
		return *v, nil
	}
	v := Vector{
		Dim:     dim,
		Indices: unsafe.Slice((*int32)(unsafe.Pointer(&buf[headerBytes])), nnz),
		Values:  unsafe.Slice((*float32)(unsafe.Pointer(&buf[headerBytes+4*nnz])), nnz),
	}
	if err := v.Validate(); err != nil {
		return Vector{}, fmt.Errorf("sparse: decode view: %w", err)
	}
	return v, nil
}
