package sparse

import (
	"bytes"
	"math"
	"testing"

	"gtopkssgd/internal/f16"
	"gtopkssgd/internal/prng"
)

// codecTestVectors builds a spread of shapes: empty support, singletons,
// dense-ish, clustered, adversarial values (zeros, ±Inf, NaN, subnormals).
func codecTestVectors() []*Vector {
	src := prng.New(99)
	vecs := []*Vector{
		{Dim: 1},
		{Dim: 7, Indices: []int32{0}, Values: []float32{-1.5}},
		{Dim: 5, Indices: []int32{0, 1, 2, 3, 4}, Values: []float32{0, 1, -2, 3.5, -0.25}},
		{Dim: 1 << 20, Indices: []int32{0, 1, 1 << 19, 1<<20 - 1}, Values: []float32{1, 2, 3, 4}},
		{Dim: 3, Indices: []int32{1, 2}, Values: []float32{float32(math.Inf(1)), float32(math.NaN())}},
		{Dim: 4, Indices: []int32{2}, Values: []float32{1.1754944e-38 / 2}}, // float32 subnormal
	}
	// Random clustered support, the workload shape v2 is built for.
	for _, dim := range []int{300, 100_000} {
		g := make([]float32, dim)
		for i := 0; i < dim/50; i++ {
			g[src.Uint64()%uint64(dim/10)] = float32(src.NormFloat64())
			g[src.Uint64()%uint64(dim)] = float32(src.NormFloat64())
		}
		vecs = append(vecs, FromDense(g))
	}
	return vecs
}

// TestCodecV2RoundTrip: encode→decode is the identity for CodecV2 (bit-
// exact values) and the f16.Round image for CodecV2F16; EncodedSizeCodec
// matches the produced frame exactly for all codecs.
func TestCodecV2RoundTrip(t *testing.T) {
	for vi, v := range codecTestVectors() {
		for _, c := range []Codec{CodecV1, CodecV2, CodecV2F16} {
			buf := EncodeCodec(c, v)
			if want := EncodedSizeCodec(c, v.Dim, v.Indices); len(buf) != want {
				t.Fatalf("vec %d codec %s: frame %d bytes, EncodedSizeCodec says %d", vi, c, len(buf), want)
			}
			got, err := DecodeCodec(c, buf)
			if err != nil {
				t.Fatalf("vec %d codec %s: decode: %v", vi, c, err)
			}
			if got.Dim != v.Dim || got.NNZ() != v.NNZ() {
				t.Fatalf("vec %d codec %s: shape dim %d/%d nnz %d/%d", vi, c, v.Dim, got.Dim, v.NNZ(), got.NNZ())
			}
			for i := range v.Indices {
				if got.Indices[i] != v.Indices[i] {
					t.Fatalf("vec %d codec %s: index %d: %d != %d", vi, c, i, got.Indices[i], v.Indices[i])
				}
				want := v.Values[i]
				if c == CodecV2F16 {
					want = f16.Round(want)
				}
				if math.Float32bits(got.Values[i]) != math.Float32bits(want) {
					t.Fatalf("vec %d codec %s: value %d: %x != %x", vi, c, i,
						math.Float32bits(got.Values[i]), math.Float32bits(want))
				}
			}
		}
	}
}

// TestCodecV1BytesUnchanged pins that CodecV1 through the codec-aware
// entry points produces exactly the legacy Encode bytes — v1 peers
// decode frames from a v1-negotiated mesh with the pre-v2 decoder.
func TestCodecV1BytesUnchanged(t *testing.T) {
	for vi, v := range codecTestVectors() {
		if !bytes.Equal(EncodeCodec(CodecV1, v), Encode(v)) {
			t.Fatalf("vec %d: EncodeCodec(CodecV1) differs from Encode", vi)
		}
	}
}

// TestCodecCrossVersionRejection: each decoder rejects the other
// version's frames.
func TestCodecCrossVersionRejection(t *testing.T) {
	for vi, v := range codecTestVectors() {
		v1buf := Encode(v)
		if v1buf[0] != V2Magic { // dim low byte may coincide with the magic
			if err := DecodeV2Into(&Vector{}, v1buf); err == nil {
				t.Fatalf("vec %d: v2 decoder accepted a v1 frame", vi)
			}
		}
		for _, c := range []Codec{CodecV2, CodecV2F16} {
			if _, err := Decode(EncodeCodec(c, v)); err == nil {
				t.Fatalf("vec %d: v1 decoder accepted a %s frame", vi, c)
			}
			if _, err := DecodeView(EncodeCodec(c, v)); err == nil {
				t.Fatalf("vec %d: v1 DecodeView accepted a %s frame", vi, c)
			}
		}
	}
}

// TestCodecV2Canonical: accepted frames re-encode byte-identically
// (minimal varints, exact length), including fp16 frames.
func TestCodecV2Canonical(t *testing.T) {
	for vi, v := range codecTestVectors() {
		for _, c := range []Codec{CodecV2, CodecV2F16} {
			buf := EncodeCodec(c, v)
			got, err := DecodeCodec(c, buf)
			if err != nil {
				t.Fatalf("vec %d codec %s: %v", vi, c, err)
			}
			if !bytes.Equal(EncodeCodec(c, got), buf) {
				t.Fatalf("vec %d codec %s: re-encode differs", vi, c)
			}
		}
	}
}

// TestCodecV2RejectsCorruption walks systematic corruptions of a valid
// frame: truncation at every length, flag garbage, padded varints,
// out-of-range indices.
func TestCodecV2RejectsCorruption(t *testing.T) {
	v := &Vector{Dim: 1000, Indices: []int32{3, 250, 999}, Values: []float32{1, -2, 3}}
	buf := EncodeCodec(CodecV2, v)
	for cut := 0; cut < len(buf); cut++ {
		if err := DecodeV2Into(&Vector{}, buf[:cut]); err == nil {
			t.Fatalf("accepted truncation to %d of %d bytes", cut, len(buf))
		}
	}
	bad := append([]byte(nil), buf...)
	bad[2] = 0x80 // reserved flag
	if err := DecodeV2Into(&Vector{}, bad); err == nil {
		t.Fatal("accepted reserved flag bits")
	}
	// Padded (non-minimal) varint for dim: 0x80 0x00 still means 0.
	padded := append([]byte{V2Magic, v2Version, 0, 0x80, 0x00}, buf[4:]...)
	if err := DecodeV2Into(&Vector{}, padded); err == nil {
		t.Fatal("accepted non-minimal varint")
	}
	// Trailing garbage.
	if err := DecodeV2Into(&Vector{}, append(append([]byte(nil), buf...), 0)); err == nil {
		t.Fatal("accepted trailing byte")
	}
	// Index beyond dim: bump the last gap.
	oob := &Vector{Dim: 10, Indices: []int32{9}, Values: []float32{1}}
	oobBuf := EncodeCodec(CodecV2, oob)
	oobBuf[5]++ // gap varint (dim=10 and nnz=1 are single-byte varints)
	if err := DecodeV2Into(&Vector{}, oobBuf); err == nil {
		t.Fatal("accepted out-of-range index")
	}
}

// TestCodecV2CompressionWins quantifies the point of the exercise: on a
// clustered 0.1%-density support the lossless v2 frame is at least 1.4x
// smaller than v1 and the fp16 frame at least 2.2x (the bench harness
// measures the precise ratios on the realistic workload).
func TestCodecV2CompressionWins(t *testing.T) {
	src := prng.New(5)
	const dim = 1 << 20
	g := make([]float32, dim)
	// Winners clustered into the first ~10% of coordinates plus scattered
	// stragglers, the layered-gradient shape real models produce.
	for i := 0; i < dim/1000; i++ {
		g[src.Uint64()%uint64(dim/10)] = float32(src.NormFloat64()) + 3
	}
	v := FromDense(g)
	v1 := len(Encode(v))
	v2 := len(EncodeCodec(CodecV2, v))
	vh := len(EncodeCodec(CodecV2F16, v))
	if r := float64(v1) / float64(v2); r < 1.4 {
		t.Errorf("lossless v2 ratio %.2f < 1.4 (v1=%d v2=%d nnz=%d)", r, v1, v2, v.NNZ())
	}
	if r := float64(v1) / float64(vh); r < 2.2 {
		t.Errorf("fp16 v2 ratio %.2f < 2.2 (v1=%d v2fp16=%d nnz=%d)", r, v1, vh, v.NNZ())
	}
}
