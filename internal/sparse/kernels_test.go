package sparse

import (
	"bytes"
	"math"
	"testing"

	"gtopkssgd/internal/prng"
)

// withKernels runs fn under the named kernel mode, restoring the prior
// mode afterwards. Skips when the mode is not available in this build
// (fast under -tags purego).
func withKernels(t *testing.T, mode string, fn func()) {
	t.Helper()
	if mode == KernelsFast && !FastKernelsAvailable() {
		t.Skipf("fast kernels unavailable in this build")
	}
	prev := Kernels()
	if err := SetKernels(mode); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetKernels(prev); err != nil {
			t.Fatal(err)
		}
	}()
	fn()
}

func TestKernelsModeAPI(t *testing.T) {
	prev := Kernels()
	defer func() {
		if err := SetKernels(prev); err != nil {
			t.Fatal(err)
		}
	}()

	if got := DefaultKernels(); FastKernelsAvailable() != (got == KernelsFast) {
		t.Fatalf("DefaultKernels()=%q with FastKernelsAvailable()=%v", got, FastKernelsAvailable())
	}
	if err := SetKernels(KernelsPure); err != nil {
		t.Fatal(err)
	}
	if got := Kernels(); got != KernelsPure {
		t.Fatalf("Kernels()=%q after SetKernels(pure)", got)
	}
	if err := SetKernels("bogus"); err == nil {
		t.Fatal("SetKernels(bogus) did not error")
	}
	if got := Kernels(); got != KernelsPure {
		t.Fatalf("failed SetKernels changed the mode to %q", got)
	}
	err := SetKernels(KernelsFast)
	if FastKernelsAvailable() {
		if err != nil {
			t.Fatalf("SetKernels(fast) on a fast-capable build: %v", err)
		}
		if got := Kernels(); got != KernelsFast {
			t.Fatalf("Kernels()=%q after SetKernels(fast)", got)
		}
	} else if err == nil {
		t.Fatal("SetKernels(fast) succeeded in a build without fast kernels")
	}
}

// kernelInputFamilies generates the input classes the equivalence suite
// sweeps: normal random, tie-heavy quantized, all-zero, magnitude-skewed
// (exponents spanning denormals to huge), and non-finite-spiked slices.
func kernelInputFamilies(seed uint64, n int) map[string][]float32 {
	src := prng.New(seed)
	normal := make([]float32, n)
	ties := make([]float32, n)
	zeros := make([]float32, n)
	skew := make([]float32, n)
	wild := make([]float32, n)
	for i := 0; i < n; i++ {
		normal[i] = float32(src.NormFloat64())
		ties[i] = float32(int(src.Uint64()%5)) - 2
		skew[i] = float32(src.NormFloat64()) * float32(math.Pow(10, float64(int(src.Uint64()%80))-40))
		switch src.Uint64() % 8 {
		case 0:
			wild[i] = float32(math.NaN())
		case 1:
			wild[i] = float32(math.Inf(1))
		case 2:
			wild[i] = float32(math.Inf(-1))
		case 3:
			wild[i] = float32(math.Copysign(0, -1))
		default:
			wild[i] = float32(src.NormFloat64())
		}
	}
	return map[string][]float32{
		"normal": normal, "ties": ties, "zeros": zeros, "skew": skew, "wild": wild,
	}
}

// runSelectionUnderMode captures every observable output of the dense and
// sparse selection paths for one input under the active kernel mode.
func runSelectionUnderMode(t *testing.T, x []float32, k int) (dense, sprs *Vector, thr float32) {
	t.Helper()
	dense = &Vector{}
	TopKInto(dense, x, k)
	sv := FromDense(x)
	sprs = &Vector{}
	TopKSparseInto(sprs, sv, min(k, max(sv.NNZ(), 1)))
	if k >= 1 && k <= len(x) {
		thr = Threshold(x, k)
	}
	return dense, sprs, thr
}

func vectorsEqualBits(a, b *Vector) bool {
	if a.Dim != b.Dim || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] ||
			math.Float32bits(a.Values[i]) != math.Float32bits(b.Values[i]) {
			return false
		}
	}
	return true
}

// TestKernelsSelectionEquivalence pins fast-mode selection bit-identical
// to pure mode across the input families — including NaN/Inf-spiked
// slices, where identity holds because the fast partition replays the
// pure partition's exact swap sequence.
func TestKernelsSelectionEquivalence(t *testing.T) {
	if !FastKernelsAvailable() {
		t.Skip("fast kernels unavailable in this build")
	}
	for name, x := range kernelInputFamilies(42, 501) {
		for _, k := range []int{1, 2, 50, 250, 500, 501} {
			var pd, ps *Vector
			var pthr float32
			withKernels(t, KernelsPure, func() { pd, ps, pthr = runSelectionUnderMode(t, x, k) })
			var fd, fs *Vector
			var fthr float32
			withKernels(t, KernelsFast, func() { fd, fs, fthr = runSelectionUnderMode(t, x, k) })
			if math.Float32bits(pthr) != math.Float32bits(fthr) {
				t.Fatalf("%s k=%d: Threshold pure %x fast %x", name, k,
					math.Float32bits(pthr), math.Float32bits(fthr))
			}
			if !vectorsEqualBits(pd, fd) {
				t.Fatalf("%s k=%d: TopKInto differs between modes", name, k)
			}
			if !vectorsEqualBits(ps, fs) {
				t.Fatalf("%s k=%d: TopKSparseInto differs between modes", name, k)
			}
		}
	}
}

// TestKernelsMergeEquivalence pins AddInto, MergeInto, the Accumulator
// scatter-add, and the wire encoding bit-identical across modes.
func TestKernelsMergeEquivalence(t *testing.T) {
	if !FastKernelsAvailable() {
		t.Skip("fast kernels unavailable in this build")
	}
	const dim = 512
	a := randomSparse(7, dim, 96, false)
	b := randomSparse(8, dim, 96, true)
	c := randomSparse(9, dim, 33, false)
	run := func() (sum, merged, acc *Vector, wire []byte) {
		sum, merged, acc = &Vector{}, &Vector{}, &Vector{}
		if err := AddInto(sum, a, b); err != nil {
			t.Fatal(err)
		}
		if err := MergeInto(merged, a, b, 40); err != nil {
			t.Fatal(err)
		}
		ac := GetAccumulator(dim)
		for _, v := range []*Vector{a, b, c, b} {
			if err := ac.Add(v); err != nil {
				t.Fatal(err)
			}
		}
		ac.CompactInto(acc)
		ac.Release()
		wire = bytes.Clone(EncodeTo(make([]byte, EncodedSize(sum.NNZ())), sum))
		return sum, merged, acc, wire
	}
	var psum, pmerged, pacc *Vector
	var pwire []byte
	withKernels(t, KernelsPure, func() { psum, pmerged, pacc, pwire = run() })
	var fsum, fmerged, facc *Vector
	var fwire []byte
	withKernels(t, KernelsFast, func() { fsum, fmerged, facc, fwire = run() })
	if !vectorsEqualBits(psum, fsum) {
		t.Fatal("AddInto differs between modes")
	}
	if !vectorsEqualBits(pmerged, fmerged) {
		t.Fatal("MergeInto differs between modes")
	}
	if !vectorsEqualBits(pacc, facc) {
		t.Fatal("Accumulator differs between modes")
	}
	if !bytes.Equal(pwire, fwire) {
		t.Fatal("EncodeTo bytes differ between modes")
	}
}

// TestKernelsValidateEquivalence pins Validate verdicts AND error text
// across modes: the fast path's quick scan must fall back to the pure
// diagnostics on every malformed shape.
func TestKernelsValidateEquivalence(t *testing.T) {
	if !FastKernelsAvailable() {
		t.Skip("fast kernels unavailable in this build")
	}
	cases := []*Vector{
		{Dim: 8, Indices: []int32{0, 3, 7}, Values: []float32{1, 2, 3}},
		{Dim: 8, Indices: []int32{}, Values: []float32{}},
		{Dim: 8, Indices: []int32{-1, 3, 7}, Values: []float32{1, 2, 3}},
		{Dim: 8, Indices: []int32{0, 3, 8}, Values: []float32{1, 2, 3}},
		{Dim: 8, Indices: []int32{0, 3, 3}, Values: []float32{1, 2, 3}},
		{Dim: 8, Indices: []int32{5, 3, 7}, Values: []float32{1, 2, 3}},
		{Dim: 8, Indices: []int32{0, -2, 7}, Values: []float32{1, 2, 3}},
		{Dim: 8, Indices: []int32{0, 9, 7}, Values: []float32{1, 2, 3}},
	}
	for i, v := range cases {
		var perr, ferr error
		withKernels(t, KernelsPure, func() { perr = v.Validate() })
		withKernels(t, KernelsFast, func() { ferr = v.Validate() })
		pmsg, fmsg := "", ""
		if perr != nil {
			pmsg = perr.Error()
		}
		if ferr != nil {
			fmsg = ferr.Error()
		}
		if pmsg != fmsg {
			t.Fatalf("case %d: Validate pure=%q fast=%q", i, pmsg, fmsg)
		}
	}
}

// fuzzFloats reinterprets raw bytes as float32s — arbitrary bit patterns,
// NaN payloads and all.
func fuzzFloats(raw []byte, maxN int) []float32 {
	n := len(raw) / 4
	if n > maxN {
		n = maxN
	}
	out := make([]float32, n)
	for i := 0; i < n; i++ {
		bits := uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 |
			uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
		out[i] = math.Float32frombits(bits)
	}
	return out
}

// FuzzKernelsEquiv asserts fast/pure bit-equivalence on arbitrary inputs:
// for any bit pattern (finite, Inf, NaN), selection, merge, scatter-add,
// and wire encoding must produce identical bits in both kernel modes.
// This is the contract that makes -kernels a pure speed knob.
func FuzzKernelsEquiv(f *testing.F) {
	if !FastKernelsAvailable() {
		f.Skip("fast kernels unavailable in this build")
	}
	f.Add(uint8(3), []byte{1, 0, 0, 63, 0, 0, 128, 191, 0, 0, 192, 127})
	f.Add(uint8(1), []byte{0, 0, 128, 127, 0, 0, 128, 255, 1, 0, 0, 0})
	f.Add(uint8(7), bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, kRaw uint8, raw []byte) {
		x := fuzzFloats(raw, 256)
		if len(x) == 0 {
			return
		}
		k := int(kRaw)%len(x) + 1
		half := len(x) / 2
		av, bv := FromDense(x[:half]), FromDense(x[:half])
		if half > 0 {
			for i := range bv.Values {
				bv.Values[i] = x[len(x)-1-i%len(x)]
			}
		}
		run := func() (topk, sum, stopk *Vector, thr float32, wire []byte) {
			topk, sum, stopk = &Vector{}, &Vector{}, &Vector{}
			TopKInto(topk, x, k)
			thr = Threshold(x, min(k, len(x)))
			if half > 0 {
				if err := AddInto(sum, av, bv); err != nil {
					t.Fatal(err)
				}
				// Sparse re-selection over the merged sum: the gTop-k tree's
				// ⊕ step, covering the sparse emit scan and the radix/
				// quickselect threshold on sparse magnitudes.
				TopKSparseInto(stopk, sum, min(k, sum.NNZ()))
			}
			wire = bytes.Clone(Encode(topk))
			return topk, sum, stopk, thr, wire
		}
		prev := Kernels()
		defer func() {
			if err := SetKernels(prev); err != nil {
				t.Fatal(err)
			}
		}()
		if err := SetKernels(KernelsPure); err != nil {
			t.Fatal(err)
		}
		ptopk, psum, pstopk, pthr, pwire := run()
		if err := SetKernels(KernelsFast); err != nil {
			t.Fatal(err)
		}
		ftopk, fsum, fstopk, fthr, fwire := run()
		if math.Float32bits(pthr) != math.Float32bits(fthr) {
			t.Fatalf("Threshold pure %x fast %x", math.Float32bits(pthr), math.Float32bits(fthr))
		}
		if !vectorsEqualBits(ptopk, ftopk) {
			t.Fatal("TopKInto differs between modes")
		}
		if !vectorsEqualBits(psum, fsum) {
			t.Fatal("AddInto differs between modes")
		}
		if !vectorsEqualBits(pstopk, fstopk) {
			t.Fatal("TopKSparseInto differs between modes")
		}
		if !bytes.Equal(pwire, fwire) {
			t.Fatal("Encode bytes differ between modes")
		}
	})
}
