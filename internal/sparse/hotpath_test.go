package sparse

import (
	"math"
	"testing"
)

// TestAddIntoMatchesAdd checks the in-place merge against the allocating
// wrapper across overlap patterns, including reused (oversized and
// undersized) destination capacity.
func TestAddIntoMatchesAdd(t *testing.T) {
	dst := &Vector{}
	for seed := uint64(1); seed < 20; seed++ {
		a := randomSparse(seed, 200, int(seed*3%40)+1, seed%2 == 0)
		b := randomSparse(seed+100, 200, int(seed*7%40)+1, seed%3 == 0)
		want, err := Add(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := AddInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
		assertSame(t, want, dst)
	}
	if err := AddInto(dst, &Vector{Dim: 3}, &Vector{Dim: 4}); err == nil {
		t.Fatal("AddInto accepted mismatched dimensions")
	}
}

// TestMergeIntoMatchesMerge checks the pooled-scratch merge against the
// wrapper (which itself is pinned to the sort-based oracle elsewhere).
func TestMergeIntoMatchesMerge(t *testing.T) {
	dst := &Vector{}
	for seed := uint64(1); seed < 16; seed++ {
		a := randomSparse(seed, 150, 30, seed%2 == 0)
		b := randomSparse(seed+50, 150, 30, seed%2 == 1)
		for _, k := range []int{1, 7, 30, 60, 100} {
			want, err := Merge(a, b, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := MergeInto(dst, a, b, k); err != nil {
				t.Fatal(err)
			}
			assertSame(t, want, dst)
		}
	}
}

// TestDecodeViewRoundTrip checks the aliasing decode against the copying
// decode, including the empty-support frame.
func TestDecodeViewRoundTrip(t *testing.T) {
	for _, nnz := range []int{0, 1, 17, 300} {
		v := &Vector{Dim: 1000}
		if nnz > 0 {
			v = randomSparse(uint64(nnz), 1000, nnz, false)
		}
		buf := Encode(v)
		view, err := DecodeView(buf)
		if err != nil {
			t.Fatal(err)
		}
		assertSame(t, v, &view)
		PutBuffer(buf)
	}
}

// TestDecodeViewRejectsCorruptFrames mirrors Decode's validation: the
// view path must not trade away the transport trust boundary.
func TestDecodeViewRejectsCorruptFrames(t *testing.T) {
	v := randomSparse(3, 100, 10, false)
	good := Encode(v)
	if _, err := DecodeView(good[:5]); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := DecodeView(good[:len(good)-4]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
	bad := append([]byte(nil), good...)
	// Swap the first two indices so they are out of order.
	copy(bad[8:12], good[12:16])
	copy(bad[12:16], good[8:12])
	if _, err := DecodeView(bad); err == nil {
		t.Fatal("unsorted indices accepted")
	}
}

// TestDecodeViewAliasingSafety: a consumer that merges from a view and
// then releases (and someone else overwrites) the frame must keep an
// uncorrupted result — MergeInto copies the winners out of the frame.
func TestDecodeViewAliasingSafety(t *testing.T) {
	a := randomSparse(1, 500, 40, false)
	b := randomSparse(2, 500, 40, false)
	want, err := Merge(a, b, 20)
	if err != nil {
		t.Fatal(err)
	}

	buf := Encode(b)
	view, err := DecodeView(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := &Vector{}
	if err := MergeInto(got, a, &view, 20); err != nil {
		t.Fatal(err)
	}
	// Release the frame and scribble over it, as the next encode of a
	// pool reuser would.
	PutBuffer(buf)
	for i := range buf[:cap(buf)] {
		buf[:cap(buf)][i] = 0xAA
	}
	assertSame(t, want, got)
}

// TestMergeLoopZeroAlloc pins the acceptance criterion: one full
// steady-state tree-merge round — encode, decode-free view, add, top-k
// re-select, frame release — performs zero heap allocations.
func TestMergeLoopZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops puts at random; allocation counts are not deterministic")
	}
	a := randomSparse(7, 4096, 256, false)
	b := randomSparse(8, 4096, 256, false)
	sum := &Vector{}
	cur := &Vector{}
	round := func() {
		buf := EncodeSlices(b.Dim, b.Indices, b.Values)
		view, err := DecodeView(buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := AddInto(sum, a, &view); err != nil {
			t.Fatal(err)
		}
		TopKSparseInto(cur, sum, 256)
		PutBuffer(buf)
	}
	round() // warm the pools and the reusable destinations
	if allocs := testing.AllocsPerRun(50, round); allocs != 0 {
		t.Fatalf("merge round allocates %v times per op, want 0", allocs)
	}
}

// TestAccumulatorMatchesSparseAddChain: the dense scatter-add path must
// be bit-identical to folding the same vectors with sparse Add.
func TestAccumulatorMatchesSparseAddChain(t *testing.T) {
	const dim = 300
	vecs := make([]*Vector, 5)
	for i := range vecs {
		vecs[i] = randomSparse(uint64(40+i), dim, 25, i%2 == 0)
	}
	want := &Vector{Dim: dim}
	var err error
	for _, v := range vecs {
		if want, err = Add(want, v); err != nil {
			t.Fatal(err)
		}
	}
	acc := GetAccumulator(dim)
	for _, v := range vecs {
		if err := acc.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	got := &Vector{}
	acc.CompactInto(got)
	assertSame(t, want, got)

	// The reset must leave the pooled accumulator clean for its next user.
	if err := acc.Add(vecs[0]); err != nil {
		t.Fatal(err)
	}
	second := &Vector{}
	acc.CompactInto(second)
	assertSame(t, vecs[0], second)
	acc.Release()

	if err := acc.Add(&Vector{Dim: dim + 1}); err == nil {
		t.Fatal("accumulator accepted mismatched dimension")
	}
}

// TestEncodeSlicesMatchesEncode: chunked spans concatenate back to the
// full encoding's contents.
func TestEncodeSlicesMatchesEncode(t *testing.T) {
	v := randomSparse(9, 400, 37, false)
	for _, chunks := range []int{1, 2, 3, 5, 37, 50} {
		var got Vector
		got.Dim = v.Dim
		for i := 0; i < chunks; i++ {
			lo, hi := i*v.NNZ()/chunks, (i+1)*v.NNZ()/chunks
			buf := EncodeSlices(v.Dim, v.Indices[lo:hi], v.Values[lo:hi])
			view, err := DecodeView(buf)
			if err != nil {
				t.Fatalf("chunks=%d chunk %d: %v", chunks, i, err)
			}
			got.Indices = append(got.Indices, view.Indices...)
			got.Values = append(got.Values, view.Values...)
			PutBuffer(buf)
		}
		assertSame(t, v, &got)
	}
}

func assertSame(t *testing.T, want, got *Vector) {
	t.Helper()
	if want.Dim != got.Dim || want.NNZ() != got.NNZ() {
		t.Fatalf("shape mismatch: dim %d/%d nnz %d/%d", want.Dim, got.Dim, want.NNZ(), got.NNZ())
	}
	for i := range want.Indices {
		if want.Indices[i] != got.Indices[i] ||
			math.Float32bits(want.Values[i]) != math.Float32bits(got.Values[i]) {
			t.Fatalf("entry %d: (%d,%v) vs (%d,%v)", i,
				want.Indices[i], want.Values[i], got.Indices[i], got.Values[i])
		}
	}
}
