package sparse

import (
	"math"
	"sort"
	"testing"

	"gtopkssgd/internal/prng"
)

// referenceTopKSparse is the original sort-based selection, kept here as
// the oracle the quickselect implementation must match bit for bit
// (including deterministic tie-breaking toward lower dense indices).
func referenceTopKSparse(v *Vector, k int) *Vector {
	if k <= 0 {
		return &Vector{Dim: v.Dim}
	}
	if k >= v.NNZ() {
		return v.Clone()
	}
	pos := make([]int, v.NNZ())
	for i := range pos {
		pos[i] = i
	}
	sort.Slice(pos, func(a, b int) bool {
		ma, mb := abs32(v.Values[pos[a]]), abs32(v.Values[pos[b]])
		if ma != mb {
			return ma > mb
		}
		return v.Indices[pos[a]] < v.Indices[pos[b]]
	})
	pos = pos[:k]
	sort.Slice(pos, func(a, b int) bool { return v.Indices[pos[a]] < v.Indices[pos[b]] })
	out := &Vector{Dim: v.Dim, Indices: make([]int32, k), Values: make([]float32, k)}
	for i, p := range pos {
		out.Indices[i] = v.Indices[p]
		out.Values[i] = v.Values[p]
	}
	return out
}

func randomSparse(seed uint64, dim, nnz int, ties bool) *Vector {
	src := prng.New(seed)
	perm := make([]int32, dim)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := dim - 1; i > 0; i-- {
		j := int(src.Uint64() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	idx := append([]int32(nil), perm[:nnz]...)
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	v := &Vector{Dim: dim, Indices: idx, Values: make([]float32, nnz)}
	for i := range v.Values {
		if ties {
			// Quantize magnitudes hard so many exact ties exist.
			v.Values[i] = float32(int(src.Uint64()%5)) - 2
		} else {
			v.Values[i] = float32(src.NormFloat64())
		}
	}
	return v
}

// TestTopKSparseMatchesSortReference checks the quickselect path against
// the sort-based oracle across sizes, densities and tie-heavy inputs.
func TestTopKSparseMatchesSortReference(t *testing.T) {
	for _, ties := range []bool{false, true} {
		for _, dim := range []int{1, 7, 64, 501} {
			for _, nnzFrac := range []float64{0.1, 0.5, 1.0} {
				nnz := int(float64(dim) * nnzFrac)
				if nnz < 1 {
					nnz = 1
				}
				v := randomSparse(uint64(dim*7+nnz), dim, nnz, ties)
				for _, k := range []int{1, 2, nnz / 2, nnz - 1, nnz, nnz + 5} {
					if k < 1 {
						continue
					}
					want := referenceTopKSparse(v, k)
					got := TopKSparse(v, k)
					if want.NNZ() != got.NNZ() {
						t.Fatalf("dim=%d nnz=%d k=%d ties=%v: nnz %d vs %d",
							dim, nnz, k, ties, want.NNZ(), got.NNZ())
					}
					for i := range want.Indices {
						if want.Indices[i] != got.Indices[i] ||
							math.Float32bits(want.Values[i]) != math.Float32bits(got.Values[i]) {
							t.Fatalf("dim=%d nnz=%d k=%d ties=%v: entry %d: (%d,%v) vs (%d,%v)",
								dim, nnz, k, ties, i,
								want.Indices[i], want.Values[i], got.Indices[i], got.Values[i])
						}
					}
				}
			}
		}
	}
}

// TestTopKConcurrent hammers the pooled-scratch selection from many
// goroutines; run with -race in CI to verify pool safety.
func TestTopKConcurrent(t *testing.T) {
	const workers = 8
	doneCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			src := prng.New(uint64(w) + 9)
			for rep := 0; rep < 200; rep++ {
				x := make([]float32, 200)
				for i := range x {
					x[i] = float32(src.NormFloat64())
				}
				v := TopK(x, 10)
				if err := v.Validate(); err != nil {
					doneCh <- err
					return
				}
				if v.NNZ() != 10 {
					doneCh <- ErrDimension
					return
				}
			}
			doneCh <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-doneCh; err != nil {
			t.Fatal(err)
		}
	}
}

// TestEncodeToRoundTrip covers the zero-allocation encode entry point.
func TestEncodeToRoundTrip(t *testing.T) {
	v := randomSparse(11, 100, 20, false)
	buf := EncodeTo(make([]byte, EncodedSize(v.NNZ())), v)
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != v.Dim || got.NNZ() != v.NNZ() {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, v)
	}
	for i := range v.Indices {
		if got.Indices[i] != v.Indices[i] || math.Float32bits(got.Values[i]) != math.Float32bits(v.Values[i]) {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestEncodeToWrongSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeTo with a short buffer should panic")
		}
	}()
	v := randomSparse(12, 50, 10, false)
	EncodeTo(make([]byte, 4), v)
}

// TestBufferPoolReuse checks the Get/Put contract (length, capacity
// reuse, nil tolerance).
func TestBufferPoolReuse(t *testing.T) {
	b := GetBuffer(64)
	if len(b) != 64 {
		t.Fatalf("GetBuffer(64) returned len %d", len(b))
	}
	PutBuffer(b)
	PutBuffer(nil) // no-op, must not panic
	c := GetBuffer(16)
	if len(c) != 16 {
		t.Fatalf("GetBuffer(16) returned len %d", len(c))
	}
}
