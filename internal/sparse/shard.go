package sparse

import (
	"runtime"
	"sync"
	"time"
)

// This file is the parallel sharded selection engine: the paper's
// T_sparsify term is a dense top-k over the full residual every
// iteration, which the serial path runs on one goroutine no matter how
// many cores the worker has. The engine splits the dense vector into
// contiguous per-core shards, runs the existing threshold-quickselect
// per shard concurrently, and merges the shard winners into the EXACT
// global top-k — bit-identical to the serial selection for every shard
// count.
//
// Why the merge is exact: any entry of the global top-k is, within its
// shard, among that shard's top-k under the same (magnitude desc, index
// asc) priority — if a shard's tie-quota dropped it, the shard already
// holds k entries that all outrank it globally, contradicting its global
// selection. A shard shorter than k contributes every entry (zeros
// included: with a zero global threshold they are legal tie-fillers).
// The union of shard winners therefore contains the global top-k, and
// re-selecting k of the union — candidates concatenate in ascending
// index order, so TopKSparseInto applies the identical tie rule — yields
// exactly the serial result.

// minShardElems is the smallest per-shard span worth a goroutine: below
// this the handoff costs more than the parallel quickselect saves, so
// the engine degrades toward fewer (or one) shards. Results never depend
// on the effective shard count.
const minShardElems = 1 << 15

// ShardSelector runs exact dense top-k selection over per-core shards.
// A selector owns reusable per-shard scratch; it is NOT safe for
// concurrent use (one selector per goroutine — e.g. per bucket of the
// bucketed pipeline), though independent selectors may run concurrently.
type ShardSelector struct {
	shards int
	parts  []Vector
	cand   Vector

	timed      bool
	sequential bool
	shardDur   []time.Duration
	mergeDur   time.Duration
}

// NewShardSelector creates a selector with the given shard count;
// shards < 1 selects GOMAXPROCS (one shard per schedulable core).
func NewShardSelector(shards int) *ShardSelector {
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	return &ShardSelector{
		shards:   shards,
		parts:    make([]Vector, shards),
		shardDur: make([]time.Duration, shards),
	}
}

// Shards returns the configured shard count.
func (s *ShardSelector) Shards() int { return s.shards }

// SetTimed toggles per-shard wall-clock instrumentation (see Timings).
// Off by default; the two time.Now calls per shard are negligible next
// to a millisecond-scale select but pure overhead for tiny inputs.
func (s *ShardSelector) SetTimed(on bool) { s.timed = on }

// SetSequential makes TopKInto run its shards one after another in the
// calling goroutine instead of concurrently. The result is identical;
// the point is measurement: on a machine with fewer cores than shards,
// concurrent shards time-slice the cores and each shard's wall clock
// absorbs its neighbours' work, whereas sequential execution times every
// shard in isolation — which is what makes Timings' critical path an
// honest model of the multicore wall time. The bench harness uses it;
// production selection stays concurrent.
func (s *ShardSelector) SetSequential(on bool) { s.sequential = on }

// Timings reports the last timed TopKInto: one duration per shard's
// selection plus the serial merge. max(perShard)+merge is the critical
// path — the wall time of the call given at least Shards() cores
// (measure under SetSequential on machines with fewer cores; see
// there). Valid only after a TopKInto with SetTimed(true); the slice is
// reused.
func (s *ShardSelector) Timings() (perShard []time.Duration, merge time.Duration) {
	return s.shardDur[:], s.mergeDur
}

// TopK is TopKInto into a fresh vector.
func (s *ShardSelector) TopK(x []float32, k int) *Vector {
	out := &Vector{}
	s.TopKInto(out, x, k)
	return out
}

// TopKInto writes the k largest-magnitude entries of x into dst —
// bit-identical to sparse.TopKInto(dst, x, k) for every shard count.
func (s *ShardSelector) TopKInto(dst *Vector, x []float32, k int) {
	n := len(x)
	shards := s.shards
	if max := n / minShardElems; shards > max {
		shards = max
	}
	if shards <= 1 || k <= 0 || k >= n {
		start := time.Now()
		TopKInto(dst, x, k)
		if s.timed {
			s.shardDur = s.shardDur[:1]
			s.shardDur[0] = time.Since(start)
			s.mergeDur = 0
		}
		return
	}
	if s.timed {
		s.shardDur = s.shardDur[:shards]
	}

	if s.sequential {
		for i := 0; i < shards; i++ {
			s.runShard(i, i*n/shards, (i+1)*n/shards, x, k)
		}
	} else {
		var wg sync.WaitGroup
		for i := 0; i < shards; i++ {
			lo, hi := i*n/shards, (i+1)*n/shards
			wg.Add(1)
			go func(i, lo, hi int) {
				defer wg.Done()
				s.runShard(i, lo, hi, x, k)
			}(i, lo, hi)
		}
		wg.Wait()
	}

	var start time.Time
	if s.timed {
		start = time.Now()
	}
	// Concatenate shard winners — ascending within each shard, shards in
	// index order, so the union is globally ascending — and re-select.
	total := 0
	for i := 0; i < shards; i++ {
		total += s.parts[i].NNZ()
	}
	ensureVec(&s.cand, total)
	s.cand.Dim = n
	o := 0
	for i := 0; i < shards; i++ {
		o += copy(s.cand.Indices[o:], s.parts[i].Indices)
	}
	o = 0
	for i := 0; i < shards; i++ {
		o += copy(s.cand.Values[o:], s.parts[i].Values)
	}
	TopKSparseInto(dst, &s.cand, k)
	if s.timed {
		s.mergeDur = time.Since(start)
	}
}

// runShard selects shard i's candidates — the existing threshold-
// quickselect over x[lo:hi] with indices rebased to the global space.
func (s *ShardSelector) runShard(i, lo, hi int, x []float32, k int) {
	var start time.Time
	if s.timed {
		start = time.Now()
	}
	part := &s.parts[i]
	if shardLen := hi - lo; k >= shardLen {
		// Short shard: every entry is a candidate, zeros included
		// (they can fill a zero-threshold global tie quota).
		ensureVec(part, shardLen)
		for j := 0; j < shardLen; j++ {
			part.Indices[j] = int32(lo + j)
			part.Values[j] = x[lo+j]
		}
	} else {
		TopKInto(part, x[lo:hi], k)
		for j := range part.Indices {
			part.Indices[j] += int32(lo)
		}
	}
	part.Dim = len(x)
	if s.timed {
		s.shardDur[i] = time.Since(start)
	}
}
