package sparse

import (
	"fmt"
	"slices"
	"sync"
)

// This file holds the allocation-free variants of the merge machinery:
// every function writes into caller-owned (usually pooled) destination
// vectors instead of returning fresh ones, so the gTop-k tree's
// per-round merge loop runs without touching the garbage collector.
// The allocating Add/Merge/TopKSparse entry points in sparse.go are thin
// wrappers over these.

// ensureVec resizes v's parallel slices to length n, reusing capacity.
func ensureVec(v *Vector, n int) {
	if cap(v.Indices) < n {
		v.Indices = make([]int32, n)
	} else {
		v.Indices = v.Indices[:n]
	}
	if cap(v.Values) < n {
		v.Values = make([]float32, n)
	} else {
		v.Values = v.Values[:n]
	}
}

// CopyInto overwrites dst with a copy of v, reusing dst's capacity.
func CopyInto(dst, v *Vector) {
	ensureVec(dst, v.NNZ())
	dst.Dim = v.Dim
	copy(dst.Indices, v.Indices)
	copy(dst.Values, v.Values)
}

// AddInto writes the sparse sum a+b into dst, reusing dst's capacity.
// dst must not alias a or b. The result is bit-identical to Add: union
// support in ascending index order, exact zero sums kept.
func AddInto(dst, a, b *Vector) error {
	if a.Dim != b.Dim {
		return fmt.Errorf("%w: %d vs %d", ErrDimension, a.Dim, b.Dim)
	}
	ensureVec(dst, len(a.Indices)+len(b.Indices))
	dst.Dim = a.Dim
	o := mergeAdd(dst.Indices, dst.Values, a, b)
	dst.Indices = dst.Indices[:o]
	dst.Values = dst.Values[:o]
	return nil
}

// TopKSparseInto writes the k largest-magnitude stored entries of v into
// dst, reusing dst's capacity. dst must not alias v. Selection order and
// tie-breaking are identical to TopKSparse.
//
// The selection mirrors the dense TopK: quickselect the k-th largest
// magnitude (expected O(n), over a pooled scratch of plain float32s —
// no position indirection), then emit winners in one ascending scan.
// Because stored entries are already in ascending index order, the scan
// yields the output pre-sorted AND breaks threshold ties toward the
// lower dense index — no sort of the winners at all.
func TopKSparseInto(dst, v *Vector, k int) {
	n := v.NNZ()
	switch {
	case k <= 0:
		dst.Dim = v.Dim
		dst.Indices = dst.Indices[:0]
		dst.Values = dst.Values[:0]
	case k >= n:
		CopyInto(dst, v)
	default:
		// The radix fast path reads the signed values directly (it masks
		// the sign bit in its own scan), pairing the k-th largest with the
		// strict-winner count as a by-product; only the fallback — pure
		// mode, NaNs, small n — pays for a magnitude scratch fill.
		thr, strict, ok := selectThresholdVals(v.Values, k)
		if !ok {
			sp := getMagScratch(n)
			mags := *sp
			absInto(mags, v.Values)
			thr, strict = selectThreshold(mags, k)
			magScratch.Put(sp)
		}
		// One slot of emit slack for the branchless fast scan's rejected-
		// entry stores; the result is truncated to the k winners.
		ensureVec(dst, k+1)
		dst.Dim = v.Dim
		o := emitTopK(dst.Indices, dst.Values, v.Indices, v.Values, thr, k-strict, k)
		dst.Indices = dst.Indices[:o]
		dst.Values = dst.Values[:o]
	}
}

// AppendEntries appends v's stored entries to dst, adopting v's
// dimension and growing dst's capacity as needed. It is the chunk
// reassembly primitive: a vector split into contiguous entry spans
// (core's chunked wire frames) is reproduced exactly by appending the
// spans back in order. Indices are not re-validated — callers append
// spans that are disjoint and ascending by construction.
func AppendEntries(dst, v *Vector) {
	dst.Dim = v.Dim
	dst.Indices = append(dst.Indices, v.Indices...)
	dst.Values = append(dst.Values, v.Values...)
}

// MergeInto writes TopK(a+b, k) — the paper's ⊕ operator — into dst,
// reusing dst's capacity. The intermediate sum lives in a pooled scratch
// vector, so a warmed-up steady state performs zero allocations. dst
// must not alias a or b.
func MergeInto(dst, a, b *Vector, k int) error {
	sum := GetVector()
	err := AddInto(sum, a, b)
	if err == nil {
		TopKSparseInto(dst, sum, k)
	}
	PutVector(sum)
	return err
}

// vecPool recycles scratch vectors between merge-heavy call sites (the
// gTop-k tree's ping-pong buffers, MergeInto's intermediate sums).
var vecPool = sync.Pool{New: func() any { return new(Vector) }}

// GetVector returns a pooled scratch vector with unspecified contents;
// callers overwrite it via the *Into functions. Safe for concurrent use
// across goroutines (each Get hands out a distinct vector).
func GetVector() *Vector { return vecPool.Get().(*Vector) }

// PutVector recycles a scratch vector. The caller must hold the only
// live reference; in particular a vector must not be Put while a result
// returned to an API consumer still aliases its slices.
func PutVector(v *Vector) {
	v.Dim = 0
	v.Indices = v.Indices[:0]
	v.Values = v.Values[:0]
	vecPool.Put(v)
}

// Accumulator is a pooled dense scatter-add buffer for summing many
// sparse vectors over the same dimension — the aggregation pattern of
// Algorithm 1's AllGather path. Adding P vectors of k entries costs
// O(P·k) plus one O(u·log u) compaction over the union support u,
// instead of the O(P·k·…) of repeated sparse adds.
//
// The dense buffer and its touch marks are kept all-zero between uses
// (CompactInto and Release both reset only the touched entries), so
// pooling never leaks values across users.
type Accumulator struct {
	dim     int
	dense   []float32
	mark    []bool
	touched []int32
}

var accPool = sync.Pool{New: func() any { return new(Accumulator) }}

// GetAccumulator returns a pooled accumulator over a dim-element dense
// space, growing the pooled buffers when needed.
func GetAccumulator(dim int) *Accumulator {
	a := accPool.Get().(*Accumulator)
	if cap(a.dense) < dim {
		a.dense = make([]float32, dim)
		a.mark = make([]bool, dim)
	}
	a.dense = a.dense[:dim]
	a.mark = a.mark[:dim]
	a.dim = dim
	return a
}

// Add scatter-adds v into the accumulator. Summation order per index
// follows call order, so replaying the same sequence of Adds reproduces
// the same floating-point bits as a chain of sparse Adds.
func (a *Accumulator) Add(v *Vector) error {
	if v.Dim != a.dim {
		return fmt.Errorf("%w: %d vs %d", ErrDimension, v.Dim, a.dim)
	}
	a.touched = scatterAdd(a.dense, a.mark, a.touched, v.Indices, v.Values)
	return nil
}

// CompactInto writes the accumulated sum — every touched index, in
// ascending order, including exact zeros — into dst and resets the
// accumulator for reuse.
func (a *Accumulator) CompactInto(dst *Vector) {
	slices.Sort(a.touched)
	ensureVec(dst, len(a.touched))
	dst.Dim = a.dim
	for i, idx := range a.touched {
		dst.Indices[i] = idx
		dst.Values[i] = a.dense[idx]
	}
	a.reset()
}

// Release resets the accumulator and returns it to the pool.
func (a *Accumulator) Release() {
	a.reset()
	accPool.Put(a)
}

// reset re-zeroes exactly the touched entries (O(touched), not O(dim)).
func (a *Accumulator) reset() {
	for _, idx := range a.touched {
		a.dense[idx] = 0
		a.mark[idx] = false
	}
	a.touched = a.touched[:0]
}
