package sparse

import (
	"fmt"
	"slices"
	"sync"
)

// This file holds the allocation-free variants of the merge machinery:
// every function writes into caller-owned (usually pooled) destination
// vectors instead of returning fresh ones, so the gTop-k tree's
// per-round merge loop runs without touching the garbage collector.
// The allocating Add/Merge/TopKSparse entry points in sparse.go are thin
// wrappers over these.

// ensureVec resizes v's parallel slices to length n, reusing capacity.
func ensureVec(v *Vector, n int) {
	if cap(v.Indices) < n {
		v.Indices = make([]int32, n)
	} else {
		v.Indices = v.Indices[:n]
	}
	if cap(v.Values) < n {
		v.Values = make([]float32, n)
	} else {
		v.Values = v.Values[:n]
	}
}

// CopyInto overwrites dst with a copy of v, reusing dst's capacity.
func CopyInto(dst, v *Vector) {
	ensureVec(dst, v.NNZ())
	dst.Dim = v.Dim
	copy(dst.Indices, v.Indices)
	copy(dst.Values, v.Values)
}

// AddInto writes the sparse sum a+b into dst, reusing dst's capacity.
// dst must not alias a or b. The result is bit-identical to Add: union
// support in ascending index order, exact zero sums kept.
func AddInto(dst, a, b *Vector) error {
	if a.Dim != b.Dim {
		return fmt.Errorf("%w: %d vs %d", ErrDimension, a.Dim, b.Dim)
	}
	ensureVec(dst, len(a.Indices)+len(b.Indices))
	dst.Dim = a.Dim
	i, j, o := 0, 0, 0
	for i < len(a.Indices) && j < len(b.Indices) {
		switch {
		case a.Indices[i] < b.Indices[j]:
			dst.Indices[o] = a.Indices[i]
			dst.Values[o] = a.Values[i]
			i++
		case a.Indices[i] > b.Indices[j]:
			dst.Indices[o] = b.Indices[j]
			dst.Values[o] = b.Values[j]
			j++
		default:
			dst.Indices[o] = a.Indices[i]
			dst.Values[o] = a.Values[i] + b.Values[j]
			i, j = i+1, j+1
		}
		o++
	}
	o += copy(dst.Indices[o:], a.Indices[i:])
	copy(dst.Values[o-(len(a.Indices)-i):], a.Values[i:])
	o += copy(dst.Indices[o:], b.Indices[j:])
	copy(dst.Values[o-(len(b.Indices)-j):], b.Values[j:])
	dst.Indices = dst.Indices[:o]
	dst.Values = dst.Values[:o]
	return nil
}

// TopKSparseInto writes the k largest-magnitude stored entries of v into
// dst, reusing dst's capacity. dst must not alias v. Selection order and
// tie-breaking are identical to TopKSparse.
//
// The selection mirrors the dense TopK: quickselect the k-th largest
// magnitude (expected O(n), over a pooled scratch of plain float32s —
// no position indirection), then emit winners in one ascending scan.
// Because stored entries are already in ascending index order, the scan
// yields the output pre-sorted AND breaks threshold ties toward the
// lower dense index — no sort of the winners at all.
func TopKSparseInto(dst, v *Vector, k int) {
	n := v.NNZ()
	switch {
	case k <= 0:
		dst.Dim = v.Dim
		dst.Indices = dst.Indices[:0]
		dst.Values = dst.Values[:0]
	case k >= n:
		CopyInto(dst, v)
	default:
		sp := getMagScratch(n)
		mags := *sp
		for i, val := range v.Values {
			mags[i] = abs32(val)
		}
		thr := selectKthLargest(mags, k)
		magScratch.Put(sp)
		strict := 0
		for _, val := range v.Values {
			if abs32(val) > thr {
				strict++
			}
		}
		tieQuota := k - strict
		ensureVec(dst, k)
		dst.Dim = v.Dim
		o := 0
		for i, val := range v.Values {
			m := abs32(val)
			switch {
			case m > thr:
				dst.Indices[o] = v.Indices[i]
				dst.Values[o] = val
				o++
			case m == thr && tieQuota > 0:
				dst.Indices[o] = v.Indices[i]
				dst.Values[o] = val
				o++
				tieQuota--
			}
			if o == k {
				break
			}
		}
	}
}

// MergeInto writes TopK(a+b, k) — the paper's ⊕ operator — into dst,
// reusing dst's capacity. The intermediate sum lives in a pooled scratch
// vector, so a warmed-up steady state performs zero allocations. dst
// must not alias a or b.
func MergeInto(dst, a, b *Vector, k int) error {
	sum := GetVector()
	err := AddInto(sum, a, b)
	if err == nil {
		TopKSparseInto(dst, sum, k)
	}
	PutVector(sum)
	return err
}

// vecPool recycles scratch vectors between merge-heavy call sites (the
// gTop-k tree's ping-pong buffers, MergeInto's intermediate sums).
var vecPool = sync.Pool{New: func() any { return new(Vector) }}

// GetVector returns a pooled scratch vector with unspecified contents;
// callers overwrite it via the *Into functions. Safe for concurrent use
// across goroutines (each Get hands out a distinct vector).
func GetVector() *Vector { return vecPool.Get().(*Vector) }

// PutVector recycles a scratch vector. The caller must hold the only
// live reference; in particular a vector must not be Put while a result
// returned to an API consumer still aliases its slices.
func PutVector(v *Vector) {
	v.Dim = 0
	v.Indices = v.Indices[:0]
	v.Values = v.Values[:0]
	vecPool.Put(v)
}

// Accumulator is a pooled dense scatter-add buffer for summing many
// sparse vectors over the same dimension — the aggregation pattern of
// Algorithm 1's AllGather path. Adding P vectors of k entries costs
// O(P·k) plus one O(u·log u) compaction over the union support u,
// instead of the O(P·k·…) of repeated sparse adds.
//
// The dense buffer and its touch marks are kept all-zero between uses
// (CompactInto and Release both reset only the touched entries), so
// pooling never leaks values across users.
type Accumulator struct {
	dim     int
	dense   []float32
	mark    []bool
	touched []int32
}

var accPool = sync.Pool{New: func() any { return new(Accumulator) }}

// GetAccumulator returns a pooled accumulator over a dim-element dense
// space, growing the pooled buffers when needed.
func GetAccumulator(dim int) *Accumulator {
	a := accPool.Get().(*Accumulator)
	if cap(a.dense) < dim {
		a.dense = make([]float32, dim)
		a.mark = make([]bool, dim)
	}
	a.dense = a.dense[:dim]
	a.mark = a.mark[:dim]
	a.dim = dim
	return a
}

// Add scatter-adds v into the accumulator. Summation order per index
// follows call order, so replaying the same sequence of Adds reproduces
// the same floating-point bits as a chain of sparse Adds.
func (a *Accumulator) Add(v *Vector) error {
	if v.Dim != a.dim {
		return fmt.Errorf("%w: %d vs %d", ErrDimension, v.Dim, a.dim)
	}
	for i, idx := range v.Indices {
		if !a.mark[idx] {
			a.mark[idx] = true
			a.touched = append(a.touched, idx)
		}
		a.dense[idx] += v.Values[i]
	}
	return nil
}

// CompactInto writes the accumulated sum — every touched index, in
// ascending order, including exact zeros — into dst and resets the
// accumulator for reuse.
func (a *Accumulator) CompactInto(dst *Vector) {
	slices.Sort(a.touched)
	ensureVec(dst, len(a.touched))
	dst.Dim = a.dim
	for i, idx := range a.touched {
		dst.Indices[i] = idx
		dst.Values[i] = a.dense[idx]
	}
	a.reset()
}

// Release resets the accumulator and returns it to the pool.
func (a *Accumulator) Release() {
	a.reset()
	accPool.Put(a)
}

// reset re-zeroes exactly the touched entries (O(touched), not O(dim)).
func (a *Accumulator) reset() {
	for _, idx := range a.touched {
		a.dense[idx] = 0
		a.mark[idx] = false
	}
	a.touched = a.touched[:0]
}
