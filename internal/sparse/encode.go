package sparse

import (
	"encoding/binary"
	"fmt"
	"math"

	"gtopkssgd/internal/bufpool"
)

// Wire format for a sparse vector, little-endian:
//
//	uint32 dim | uint32 nnz | nnz × int32 index | nnz × float32 value
//
// This matches the paper's accounting: transferring a top-k sparse
// gradient costs 2k elements (k indices + k values) plus an 8-byte header.

// headerBytes is the fixed encoding overhead (dim + nnz fields).
const headerBytes = 8

// EncodedSize returns the number of bytes Encode will produce for a vector
// with nnz stored entries.
func EncodedSize(nnz int) int { return headerBytes + 8*nnz }

// Wire buffers are recycled through the process-wide bufpool, shared
// with the transport layer: every gTopKAllReduce round encodes one
// sparse message per pair, the TCP read loop deposits its frames from
// the same pool, and the receiving side releases the payload right after
// the merge consumes it — so one buffer cycles encode → send → receive →
// merge → encode without per-round allocations.
//
// Ownership discipline: PutBuffer may only be called on a buffer no other
// goroutine can still reference — in practice, a payload returned by a
// transport Recv after its contents have been merged or copied out.
// Buffers handed to a transport Send belong to the fabric and must NOT be
// put back by the sender (collective.Comm.SendTagPooled exists for
// exactly that hand-off: the fabric recycles the buffer once consumed).

// GetBuffer returns a length-n byte slice, reusing pooled capacity when
// available.
func GetBuffer(n int) []byte { return bufpool.Get(n) }

// PutBuffer recycles a dead wire buffer (see above for the ownership
// rules). Putting nil or tiny slices is a no-op.
func PutBuffer(buf []byte) { bufpool.Put(buf) }

// Encode serialises v into the wire format above. The buffer comes from
// the encode pool; ownership passes to the caller (and onward to the
// transport when sent).
func Encode(v *Vector) []byte {
	return EncodeTo(GetBuffer(EncodedSize(v.NNZ())), v)
}

// EncodeTo serialises v into buf, which must have length
// EncodedSize(v.NNZ()), and returns it.
func EncodeTo(buf []byte, v *Vector) []byte {
	return encodeParts(buf, v.Dim, v.Indices, v.Values)
}

// EncodeSlices serialises one contiguous span of a sparse vector — dim
// plus parallel index/value slices — into a pooled wire buffer. This is
// the chunking entry point: the gTop-k tree splits a k-entry payload
// into C spans and encodes each as its own frame so the receiver can
// start merging before the full payload has arrived.
func EncodeSlices(dim int, indices []int32, values []float32) []byte {
	return encodeParts(GetBuffer(EncodedSize(len(indices))), dim, indices, values)
}

func encodeParts(buf []byte, dim int, indices []int32, values []float32) []byte {
	if len(buf) != EncodedSize(len(indices)) {
		panic(fmt.Sprintf("sparse: encode buffer %d bytes, need %d", len(buf), EncodedSize(len(indices))))
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(dim))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(indices)))
	putWords(buf[headerBytes:], indices, values)
	return buf
}

// Decode parses the wire format, validating structure. It returns an error
// (never panics) on truncated or corrupt input, as transport payloads are
// untrusted at this layer.
func Decode(buf []byte) (*Vector, error) {
	if len(buf) < headerBytes {
		return nil, fmt.Errorf("sparse: decode: short buffer (%d bytes)", len(buf))
	}
	dim := int(binary.LittleEndian.Uint32(buf[0:4]))
	nnz := int(binary.LittleEndian.Uint32(buf[4:8]))
	if want := EncodedSize(nnz); len(buf) != want {
		return nil, fmt.Errorf("sparse: decode: %d bytes for nnz=%d, want %d", len(buf), nnz, want)
	}
	v := &Vector{Dim: dim, Indices: make([]int32, nnz), Values: make([]float32, nnz)}
	off := headerBytes
	for i := 0; i < nnz; i++ {
		v.Indices[i] = int32(binary.LittleEndian.Uint32(buf[off : off+4]))
		off += 4
	}
	for i := 0; i < nnz; i++ {
		v.Values[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off : off+4]))
		off += 4
	}
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("sparse: decode: %w", err)
	}
	return v, nil
}

// EncodeDense serialises a dense float32 vector (uint32 length prefix then
// raw little-endian float32s). Used by the dense AllReduce wire path.
func EncodeDense(x []float32) []byte {
	buf := make([]byte, 4+4*len(x))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(x)))
	for i, v := range x {
		binary.LittleEndian.PutUint32(buf[4+4*i:8+4*i], math.Float32bits(v))
	}
	return buf
}

// DecodeDense parses the EncodeDense format.
func DecodeDense(buf []byte) ([]float32, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("sparse: decode dense: short buffer (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf[0:4]))
	if len(buf) != 4+4*n {
		return nil, fmt.Errorf("sparse: decode dense: %d bytes for n=%d", len(buf), n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4+4*i : 8+4*i]))
	}
	return out, nil
}
