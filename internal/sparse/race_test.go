//go:build race

package sparse

// raceEnabled gates allocation-count assertions: under the race
// detector sync.Pool drops a quarter of all puts, so "zero allocations"
// cannot hold by design.
const raceEnabled = true
