package sparse

import (
	"encoding/binary"
	"fmt"
	"math"

	"gtopkssgd/internal/f16"
)

// This file is wire format v3: the compound frame. Indices keep the v2
// delta/varint layout — at the paper's densities the index stream is
// what dominates — while the value stream gains a per-frame value codec,
// so gTop-k's surviving values can travel as raw fp32, rounded fp16,
// QSGD-style stochastically quantized levels (8/4/2 bit), TernGrad-style
// ternary codes, or signSGD-style sign bits. Sparsification compounds
// with quantization: top-k removes entries, the value codec then shrinks
// what survives, which is the >32× regime the paper's Section VI argues
// quantization alone cannot reach.
//
// Frame layout (little-endian):
//
//	byte 0          magic 0xB3
//	byte 1          version (3)
//	byte 2          value codec (one ValueCodec byte; others rejected)
//	uvarint         dim
//	uvarint         nnz
//	4 bytes         float32 scale — quantized value codecs only
//	nnz × uvarint   index gaps: gap_0 = idx_0, gap_i = idx_i − idx_{i−1} − 1
//	value section   see each ValueCodec
//
// Value sections:
//
//	fp32     nnz × 4 bytes float32 (non-finite values rejected)
//	fp16     nnz × 2 bytes binary16 (Inf/NaN rejected)
//	qsgd8    ⌈nnz/8⌉ sign bitmap (bit set = negative), nnz magnitude bytes
//	qsgd4    ⌈nnz/8⌉ sign bitmap, ⌈nnz/2⌉ nibble-packed magnitudes
//	         (entry 2j in the low nibble of byte j)
//	qsgd2    ⌈nnz/8⌉ sign bitmap, ⌈nnz/4⌉ 2-bit-packed magnitudes
//	         (entry e at bits 2·(e mod 4) of byte ⌊e/4⌋)
//	ternary  ⌈nnz/4⌉ 2-bit codes: 0 → 0, 1 → +1, 2 → −1 (3 rejected)
//	sign     ⌈nnz/8⌉ sign bitmap: bit set → +1, clear → −1
//
// The format is canonical like v2: minimal varints only, strictly
// ascending in-range indices, exact value-section length, no trailing
// bytes, all padding bits zero, scale finite with a clear sign bit,
// zero magnitudes never carry a set sign bit, and a zero scale forces
// all-zero levels (qsgd/ternary). An accepted frame therefore re-encodes
// to the identical bytes, which FuzzDecodeV3 enforces.
//
// Dequantization is pinned: every decoder reconstructs values through
// DequantLevel, so any two ranks that decode the same frame — and the
// bcast root, which rounds its own values through the same lattice —
// hold bit-identical float32s on every platform.

// ValueCodec selects how a v3 frame's value stream is represented on
// the wire. It rides in the third header byte of every v3 frame, so a
// mesh negotiates only the frame version (v3) while each frame names
// its own value codec — exactly how the v2 fp16 flag worked.
type ValueCodec uint8

// The v3 value codecs, in the order of their wire bytes.
const (
	// ValueF32 carries raw float32 values. Lossless.
	ValueF32 ValueCodec = 0
	// ValueF16 carries binary16 values (round-to-nearest-even, the
	// internal/f16 rounding; relative error ≤ 2^-11).
	ValueF16 ValueCodec = 1
	// ValueQ8 carries QSGD-style 8-bit levels: a sign bitmap plus one
	// magnitude byte per entry, dequantized as scale·level/255.
	ValueQ8 ValueCodec = 2
	// ValueQ4 carries QSGD-style 4-bit levels, dequantized as
	// scale·level/15.
	ValueQ4 ValueCodec = 3
	// ValueQ2 carries QSGD-style 2-bit levels, dequantized as
	// scale·level/3.
	ValueQ2 ValueCodec = 4
	// ValueTernary carries TernGrad-style codes in {0, ±1} at two bits
	// per entry, dequantized as scale·code.
	ValueTernary ValueCodec = 5
	// ValueSign carries signSGD-style sign bits (set = positive),
	// dequantized as ±scale.
	ValueSign ValueCodec = 6
)

// valueCodecCount bounds the valid ValueCodec wire bytes.
const valueCodecCount = 7

// String names the value codec the way the -value-codec flag spells it.
func (vc ValueCodec) String() string {
	switch vc {
	case ValueF32:
		return "fp32"
	case ValueF16:
		return "fp16"
	case ValueQ8:
		return "qsgd8"
	case ValueQ4:
		return "qsgd4"
	case ValueQ2:
		return "qsgd2"
	case ValueTernary:
		return "ternary"
	case ValueSign:
		return "sign"
	default:
		return fmt.Sprintf("value(%d)", uint8(vc))
	}
}

// ParseValueCodec parses the -value-codec flag spellings fp32, fp16,
// qsgd8, qsgd4, qsgd2, ternary and sign.
func ParseValueCodec(s string) (ValueCodec, error) {
	switch s {
	case "fp32":
		return ValueF32, nil
	case "fp16":
		return ValueF16, nil
	case "qsgd8":
		return ValueQ8, nil
	case "qsgd4":
		return ValueQ4, nil
	case "qsgd2":
		return ValueQ2, nil
	case "ternary":
		return ValueTernary, nil
	case "sign":
		return ValueSign, nil
	default:
		return 0, fmt.Errorf("sparse: unknown value codec %q (want fp32, fp16, qsgd8, qsgd4, qsgd2, ternary or sign)", s)
	}
}

// Lossy reports whether the value codec can change value bits.
func (vc ValueCodec) Lossy() bool { return vc != ValueF32 }

// Quantized reports whether the value codec carries (scale, level)
// pairs rather than floating-point values — i.e. whether its frames
// have a scale field and its encoder needs a Compressor's levels.
func (vc ValueCodec) Quantized() bool { return vc >= ValueQ8 }

// steps returns the number of positive quantization steps of a QSGD
// value codec (the maximum magnitude a level may take).
func (vc ValueCodec) steps() int16 {
	switch vc {
	case ValueQ8:
		return 255
	case ValueQ4:
		return 15
	case ValueQ2:
		return 3
	default:
		return 1
	}
}

// valueSectionBytes returns the exact wire size of the value section
// for nnz entries.
func (vc ValueCodec) valueSectionBytes(nnz int) int {
	switch vc {
	case ValueF32:
		return 4 * nnz
	case ValueF16:
		return 2 * nnz
	case ValueQ8:
		return (nnz+7)/8 + nnz
	case ValueQ4:
		return (nnz+7)/8 + (nnz+1)/2
	case ValueQ2:
		return (nnz+7)/8 + (nnz+3)/4
	case ValueTernary:
		return (nnz + 3) / 4
	default: // ValueSign
		return (nnz + 7) / 8
	}
}

// scaleBytes returns the wire size of the scale field (4 for quantized
// value codecs, 0 otherwise).
func (vc ValueCodec) scaleBytes() int {
	if vc.Quantized() {
		return v3ScaleBytes
	}
	return 0
}

// DequantLevel reconstructs the float32 a quantized level stands for.
// Every v3 decoder and every Compressor.Transform MUST build values
// through this one expression: Go float32 arithmetic is exactly
// rounded, so routing all reconstructions through the same operation
// order is what pins replicas (and the bcast root) bit-identical.
func DequantLevel(vc ValueCodec, scale float32, level int16) float32 {
	switch vc {
	case ValueQ8, ValueQ4, ValueQ2:
		return scale * float32(level) / float32(vc.steps())
	default: // ValueTernary, ValueSign
		return scale * float32(level)
	}
}

// Compressor is the pluggable value-stream stage of the compound
// pipeline: select (top-k, in internal/core) → transform (this
// interface) → encode (this package). A Compressor maps the values of
// a selected sparse gradient onto its codec's quantization lattice so
// the encoder can pack levels instead of floats; the quantization error
// left behind is the caller's to fold into the error-feedback residual.
// Implementations live in internal/quant (see quant.NewStack).
type Compressor interface {
	// ValueCodec names the wire representation this compressor's
	// levels are encoded with.
	ValueCodec() ValueCodec
	// Transform quantizes values in place: each entry is replaced by
	// its dequantized lattice point (DequantLevel of its level), so
	// after Transform the slice holds exactly what every decoder will
	// reconstruct. It returns the frame scale plus one level per entry
	// for the encoder. The returned slice may alias internal scratch,
	// valid until the next Transform on the same Compressor; for
	// non-quantized codecs (fp32, fp16) it returns (0, nil).
	Transform(values []float32) (scale float32, levels []int16)
	// Fork derives an independent child compressor for a tag-isolated
	// sub-communicator. The child's randomness is a pure function of
	// the parent's seed and the stream number — never of how many
	// draws the parent has made — so concurrently launched buckets
	// stay deterministic.
	Fork(stream uint64) Compressor
}

// The v3 wire codecs: one Codec per value codec, all sharing the v3
// frame format and negotiating as wire version 3.
const (
	// CodecV3 is delta/varint indices with raw float32 values. Lossless:
	// decodes bit-identically to the encoded vector.
	CodecV3 Codec = 4
	// CodecV3F16 is v3 frames with binary16 values (the v3 spelling of
	// CodecV2F16's value treatment).
	CodecV3F16 Codec = 5
	// CodecV3Q8 is v3 frames with QSGD 8-bit stochastic quantization.
	CodecV3Q8 Codec = 6
	// CodecV3Q4 is v3 frames with QSGD 4-bit stochastic quantization.
	CodecV3Q4 Codec = 7
	// CodecV3Q2 is v3 frames with QSGD 2-bit stochastic quantization.
	CodecV3Q2 Codec = 8
	// CodecV3T is v3 frames with TernGrad-style ternary values.
	CodecV3T Codec = 9
	// CodecV3S is v3 frames with signSGD-style sign-bit values.
	CodecV3S Codec = 10
)

// Value returns the value codec a wire codec carries in its frames
// (ValueF32 for every lossless codec, including v1 and v2).
func (c Codec) Value() ValueCodec {
	switch c {
	case CodecV2F16, CodecV3F16:
		return ValueF16
	case CodecV3Q8:
		return ValueQ8
	case CodecV3Q4:
		return ValueQ4
	case CodecV3Q2:
		return ValueQ2
	case CodecV3T:
		return ValueTernary
	case CodecV3S:
		return ValueSign
	default:
		return ValueF32
	}
}

// codecForValue maps a value codec onto the v3 wire codec that carries
// it.
func codecForValue(vc ValueCodec) Codec {
	switch vc {
	case ValueF16:
		return CodecV3F16
	case ValueQ8:
		return CodecV3Q8
	case ValueQ4:
		return CodecV3Q4
	case ValueQ2:
		return CodecV3Q2
	case ValueTernary:
		return CodecV3T
	case ValueSign:
		return CodecV3S
	default:
		return CodecV3
	}
}

// CodecForWireValue maps a negotiated wire version plus the sender's
// value-codec preference onto the codec to encode with. The fallback
// rules make mixed meshes safe: a v2 mesh honours an fp16 preference
// (CodecV2F16 exists) but downgrades quantized preferences to lossless
// CodecV2 — v2 frames cannot carry levels, and silently substituting a
// different lossy format would break replica agreement with what the
// sender's quantizer pinned. A v1 mesh is always flat lossless frames.
func CodecForWireValue(version byte, vc ValueCodec) Codec {
	switch {
	case version < 2:
		return CodecV1
	case version == 2:
		if vc == ValueF16 {
			return CodecV2F16
		}
		return CodecV2
	default:
		return codecForValue(vc)
	}
}

// v3 frame constants.
const (
	// V3Magic is the first byte of every v3 frame. Distinct from V2Magic
	// and from the v2 version byte, so cross-version decoding fails
	// loudly instead of misparsing (v1 frames have no magic; see the
	// cross-decode fuzz target for the one residual blind spot).
	V3Magic = 0xB3
	// v3Version is the frame-format version byte.
	v3Version = 3
	// v3HeaderFixed is the fixed part of the header (magic + version +
	// value-codec byte).
	v3HeaderFixed = 3
	// v3ScaleBytes is the width of the scale field of quantized frames.
	v3ScaleBytes = 4
)

// encodedSizeV3 returns the exact v3 frame size for the given value
// codec and entries (O(nnz) for the gap walk).
func encodedSizeV3(vc ValueCodec, dim int, indices []int32) int {
	nnz := len(indices)
	n := v3HeaderFixed + uvarintLen(uint64(dim)) + uvarintLen(uint64(nnz)) + vc.scaleBytes()
	prev := int32(-1)
	for _, idx := range indices {
		n += uvarintLen(uint64(idx - prev - 1))
		prev = idx
	}
	return n + vc.valueSectionBytes(nnz)
}

// maxEncodedSizeV3 bounds the v3 frame size for nnz entries, used to
// draw a pooled buffer before the exact varint widths are known.
func maxEncodedSizeV3(vc ValueCodec, nnz int) int {
	return v3HeaderFixed + 2*binary.MaxVarintLen32 + v3ScaleBytes +
		nnz*binary.MaxVarintLen32 + vc.valueSectionBytes(nnz)
}

// EncodeSlicesV3 serialises one contiguous span of a sparse vector as a
// v3 frame into a pooled wire buffer (ownership passes to the caller).
// Indices must be strictly ascending. For quantized value codecs the
// caller supplies the Compressor's (scale, levels) — one level per
// entry, |level| ≤ the codec's step count — and values is unused; for
// fp32/fp16 codecs values is encoded and scale/levels are ignored.
func EncodeSlicesV3(c Codec, dim int, indices []int32, values []float32, scale float32, levels []int16) []byte {
	vc := c.Value()
	if vc.Quantized() && len(levels) != len(indices) {
		panic(fmt.Sprintf("sparse: EncodeSlicesV3: %s needs %d levels, have %d", vc, len(indices), len(levels)))
	}
	return encodeV3(GetBuffer(maxEncodedSizeV3(vc, len(indices))), vc, dim, indices, values, scale, levels)
}

// encodeV3 writes the v3 frame into buf (sized by maxEncodedSizeV3) and
// returns the written prefix. Bit-packed sections are zeroed before the
// sign/level bits are ORed in, so a recycled pooled buffer cannot leak
// stale bits into the padding the decoder requires to be zero.
func encodeV3(buf []byte, vc ValueCodec, dim int, indices []int32, values []float32, scale float32, levels []int16) []byte {
	nnz := len(indices)
	buf[0] = V3Magic
	buf[1] = v3Version
	buf[2] = byte(vc)
	off := v3HeaderFixed
	off += binary.PutUvarint(buf[off:], uint64(dim))
	off += binary.PutUvarint(buf[off:], uint64(nnz))
	if vc.Quantized() {
		binary.LittleEndian.PutUint32(buf[off:off+4], math.Float32bits(scale))
		off += 4
	}
	prev := int32(-1)
	for _, idx := range indices {
		off += binary.PutUvarint(buf[off:], uint64(idx-prev-1))
		prev = idx
	}
	end := off + vc.valueSectionBytes(nnz)
	switch vc {
	case ValueF32:
		for _, v := range values {
			binary.LittleEndian.PutUint32(buf[off:off+4], math.Float32bits(v))
			off += 4
		}
	case ValueF16:
		for _, v := range values {
			binary.LittleEndian.PutUint16(buf[off:off+2], f16.Bits(v))
			off += 2
		}
	case ValueQ8, ValueQ4, ValueQ2:
		signOff, magOff := off, off+(nnz+7)/8
		zero(buf[off:end])
		for i, l := range levels {
			mag := l
			if l < 0 {
				mag = -l
				buf[signOff+i/8] |= 1 << (i % 8)
			}
			switch vc {
			case ValueQ8:
				buf[magOff+i] = byte(mag)
			case ValueQ4:
				buf[magOff+i/2] |= byte(mag) << (4 * (i % 2))
			default: // ValueQ2
				buf[magOff+i/4] |= byte(mag) << (2 * (i % 4))
			}
		}
		off = end
	case ValueTernary:
		zero(buf[off:end])
		for i, l := range levels {
			code := byte(0)
			switch {
			case l > 0:
				code = 1
			case l < 0:
				code = 2
			}
			buf[off+i/4] |= code << (2 * (i % 4))
		}
		off = end
	default: // ValueSign
		zero(buf[off:end])
		for i, l := range levels {
			if l > 0 {
				buf[off+i/8] |= 1 << (i % 8)
			}
		}
		off = end
	}
	return buf[:off]
}

// zero clears a byte slice (the compiler lowers this loop to memclr).
func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// DecodeV3Into parses a v3 frame into dst, reusing dst's capacity and
// dequantizing levels through DequantLevel as it streams — no level
// scratch is allocated. It never panics on truncated or corrupt input
// and rejects anything outside the canonical form (see the format
// comment), so accepted frames are structurally valid vectors. Like
// DecodeV2Into the result never aliases buf.
func DecodeV3Into(dst *Vector, buf []byte) error {
	vc, dim, nnz, scale, off, err := parseV3Prefix(buf)
	if err != nil {
		return err
	}
	ensureVec(dst, nnz)
	dst.Dim = dim
	if off, err = parseV3Gaps(buf, off, dim, nnz, dst.Indices); err != nil {
		return err
	}
	return decodeV3Values(buf, off, vc, nnz, scale, nil, dst.Values)
}

// V3Frame is the decoded representation of one v3 frame, preserving the
// quantized form (scale + levels) instead of collapsing to floats, so a
// frame can be re-encoded bit-identically — the canonical-form property
// the fuzz targets pin. Float-valued frames fill Values and leave
// Levels nil; quantized frames fill Scale and Levels and leave Values
// nil (dequantize with DequantLevel).
type V3Frame struct {
	// Value is the frame's value codec.
	Value ValueCodec
	// Dim is the dense dimension.
	Dim int
	// Indices are the strictly ascending support indices.
	Indices []int32
	// Scale is the quantization scale (quantized value codecs only).
	Scale float32
	// Levels are the quantized levels, one per index (quantized value
	// codecs only).
	Levels []int16
	// Values are the float values, one per index (fp32/fp16 only).
	Values []float32
}

// DecodeV3Frame parses a v3 frame into its canonical representation,
// enforcing exactly the same rejection rules as DecodeV3Into.
func DecodeV3Frame(buf []byte) (*V3Frame, error) {
	vc, dim, nnz, scale, off, err := parseV3Prefix(buf)
	if err != nil {
		return nil, err
	}
	f := &V3Frame{Value: vc, Dim: dim, Indices: make([]int32, nnz)}
	if off, err = parseV3Gaps(buf, off, dim, nnz, f.Indices); err != nil {
		return nil, err
	}
	if vc.Quantized() {
		f.Scale = scale
		f.Levels = make([]int16, nnz)
	} else {
		f.Values = make([]float32, nnz)
	}
	if err := decodeV3Values(buf, off, vc, nnz, scale, f.Levels, f.Values); err != nil {
		return nil, err
	}
	return f, nil
}

// Encode re-serialises the frame into a pooled wire buffer (ownership
// passes to the caller). For a frame produced by DecodeV3Frame the
// output is byte-identical to the input — the canonical-form guarantee.
func (f *V3Frame) Encode() []byte {
	return encodeV3(GetBuffer(maxEncodedSizeV3(f.Value, len(f.Indices))),
		f.Value, f.Dim, f.Indices, f.Values, f.Scale, f.Levels)
}

// parseV3Prefix validates the fixed header, dim, nnz and (for quantized
// value codecs) the scale field, and bounds-checks the remaining buffer
// against the minimum possible frame size before any allocation.
func parseV3Prefix(buf []byte) (vc ValueCodec, dim, nnz int, scale float32, off int, err error) {
	if len(buf) < v3HeaderFixed+2 {
		return 0, 0, 0, 0, 0, fmt.Errorf("sparse: decode v3: short buffer (%d bytes)", len(buf))
	}
	if buf[0] != V3Magic || buf[1] != v3Version {
		return 0, 0, 0, 0, 0, fmt.Errorf("sparse: decode v3: not a v3 frame (header %#02x %#02x)", buf[0], buf[1])
	}
	if buf[2] >= valueCodecCount {
		return 0, 0, 0, 0, 0, fmt.Errorf("sparse: decode v3: unknown value codec %#02x", buf[2])
	}
	vc = ValueCodec(buf[2])
	off = v3HeaderFixed
	dim64, n, err := readUvarint(buf[off:])
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	off += n
	if dim64 > math.MaxInt32 {
		return 0, 0, 0, 0, 0, fmt.Errorf("sparse: decode v3: dim %d out of range", dim64)
	}
	nnz64, n, err := readUvarint(buf[off:])
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	off += n
	// Strictly ascending in-range indices bound nnz by dim; checking the
	// minimum frame size (scale + one gap byte per entry + the exact
	// value section) before sizing dst stops a hostile header from
	// forcing a huge allocation backed by a tiny frame.
	nnz = int(nnz64)
	if nnz64 > dim64 || vc.scaleBytes()+nnz+vc.valueSectionBytes(nnz) > len(buf)-off {
		return 0, 0, 0, 0, 0, fmt.Errorf("sparse: decode v3: nnz %d impossible for dim %d in %d bytes", nnz64, dim64, len(buf))
	}
	dim = int(dim64)
	if vc.Quantized() {
		bits := binary.LittleEndian.Uint32(buf[off : off+4])
		off += 4
		scale = math.Float32frombits(bits)
		// The scale must be finite and non-negative with a clear sign
		// bit (rejecting -0 keeps the encoding unique): every Transform
		// produces scales from magnitudes, so anything else is corrupt.
		if bits&0x7f800000 == 0x7f800000 || bits&0x80000000 != 0 {
			return 0, 0, 0, 0, 0, fmt.Errorf("sparse: decode v3: invalid scale bits %#08x", bits)
		}
	}
	return vc, dim, nnz, scale, off, nil
}

// parseV3Gaps materialises nnz delta-coded indices into indices,
// returning the offset just past the gap stream.
func parseV3Gaps(buf []byte, off, dim, nnz int, indices []int32) (int, error) {
	prev := -1
	for i := 0; i < nnz; i++ {
		gap, n, err := readUvarint(buf[off:])
		if err != nil {
			return 0, err
		}
		off += n
		idx := int64(prev) + 1 + int64(gap)
		if gap > math.MaxInt32 || idx >= int64(dim) {
			return 0, fmt.Errorf("sparse: decode v3: index %d out of range [0,%d)", idx, dim)
		}
		indices[i] = int32(idx)
		prev = int(idx)
	}
	return off, nil
}

// decodeV3Values parses the value section at buf[off:]. Exactly one
// destination receives the result: when levels is non-nil the raw
// levels are kept (DecodeV3Frame); otherwise vals receives the decoded
// floats, dequantizing through DequantLevel (DecodeV3Into). All
// canonical-form checks — exact section length, no trailing bytes, zero
// padding bits, finite floats, no negative-zero levels, zero scale
// forcing zero levels — live here so both decoders enforce them.
func decodeV3Values(buf []byte, off int, vc ValueCodec, nnz int, scale float32, levels []int16, vals []float32) error {
	if len(buf)-off != vc.valueSectionBytes(nnz) {
		return fmt.Errorf("sparse: decode v3: %d value bytes for nnz=%d %s, want %d",
			len(buf)-off, nnz, vc, vc.valueSectionBytes(nnz))
	}
	emit := func(i int, level int16) {
		if levels != nil {
			levels[i] = level
		} else {
			vals[i] = DequantLevel(vc, scale, level)
		}
	}
	switch vc {
	case ValueF32:
		for i := 0; i < nnz; i++ {
			bits := binary.LittleEndian.Uint32(buf[off : off+4])
			off += 4
			if bits&0x7f800000 == 0x7f800000 {
				return fmt.Errorf("sparse: decode v3: non-finite float32 value %#08x", bits)
			}
			vals[i] = math.Float32frombits(bits)
		}
	case ValueF16:
		for i := 0; i < nnz; i++ {
			h := binary.LittleEndian.Uint16(buf[off : off+2])
			off += 2
			if h&0x7c00 == 0x7c00 {
				return fmt.Errorf("sparse: decode v3: non-finite binary16 value %#04x", h)
			}
			vals[i] = f16.From(h)
		}
	case ValueQ8, ValueQ4, ValueQ2:
		signOff, magOff := off, off+(nnz+7)/8
		if nnz%8 != 0 && buf[signOff+nnz/8]>>(nnz%8) != 0 {
			return fmt.Errorf("sparse: decode v3: nonzero sign-bitmap padding")
		}
		for i := 0; i < nnz; i++ {
			var mag byte
			switch vc {
			case ValueQ8:
				mag = buf[magOff+i]
			case ValueQ4:
				mag = buf[magOff+i/2] >> (4 * (i % 2)) & 0x0f
			default: // ValueQ2
				mag = buf[magOff+i/4] >> (2 * (i % 4)) & 0x03
			}
			neg := buf[signOff+i/8]&(1<<(i%8)) != 0
			switch {
			case mag == 0 && neg:
				return fmt.Errorf("sparse: decode v3: negative zero level at entry %d", i)
			case scale == 0 && mag != 0:
				return fmt.Errorf("sparse: decode v3: nonzero level under zero scale at entry %d", i)
			}
			level := int16(mag)
			if neg {
				level = -level
			}
			emit(i, level)
		}
		switch {
		case vc == ValueQ4 && nnz%2 != 0 && buf[magOff+nnz/2]>>4 != 0:
			return fmt.Errorf("sparse: decode v3: nonzero magnitude padding")
		case vc == ValueQ2 && nnz%4 != 0 && buf[magOff+nnz/4]>>(2*(nnz%4)) != 0:
			return fmt.Errorf("sparse: decode v3: nonzero magnitude padding")
		}
	case ValueTernary:
		if nnz%4 != 0 && buf[off+nnz/4]>>(2*(nnz%4)) != 0 {
			return fmt.Errorf("sparse: decode v3: nonzero ternary padding")
		}
		for i := 0; i < nnz; i++ {
			code := buf[off+i/4] >> (2 * (i % 4)) & 0x03
			if code == 3 {
				return fmt.Errorf("sparse: decode v3: invalid ternary code at entry %d", i)
			}
			if scale == 0 && code != 0 {
				return fmt.Errorf("sparse: decode v3: nonzero level under zero scale at entry %d", i)
			}
			level := int16(0)
			switch code {
			case 1:
				level = 1
			case 2:
				level = -1
			}
			emit(i, level)
		}
	default: // ValueSign
		if nnz%8 != 0 && buf[off+nnz/8]>>(nnz%8) != 0 {
			return fmt.Errorf("sparse: decode v3: nonzero sign padding")
		}
		for i := 0; i < nnz; i++ {
			level := int16(-1)
			if buf[off+i/8]&(1<<(i%8)) != 0 {
				level = 1
			}
			emit(i, level)
		}
	}
	return nil
}
