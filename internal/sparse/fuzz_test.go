package sparse

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to Decode. The decoder must never
// panic (transport payloads are untrusted at this layer), and anything it
// accepts must re-encode to the exact same bytes — the wire format is
// canonical.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(Encode(&Vector{Dim: 4, Indices: []int32{1, 3}, Values: []float32{-2, 0.5}}))
	f.Add(Encode(&Vector{Dim: 1, Indices: []int32{0}, Values: []float32{float32(math.Inf(1))}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid vector: %v", err)
		}
		if !bytes.Equal(Encode(v), data) {
			t.Fatalf("re-encode of accepted payload differs from input")
		}
	})
}

// FuzzEncodeDecodeRoundTrip builds structurally valid vectors from fuzzed
// raw material and asserts Encode→Decode is the identity (bit-exact
// values, identical indices), including NaN and infinity payloads.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint16(8), []byte{1, 0, 0, 0, 63, 2, 128, 191})
	f.Add(uint16(1), []byte{})
	f.Add(uint16(300), []byte{0, 0, 192, 127, 10, 0, 128, 255, 20, 1, 2, 3})
	f.Fuzz(func(t *testing.T, dim16 uint16, raw []byte) {
		dim := int(dim16)
		if dim == 0 {
			dim = 1
		}
		// Each 8-byte chunk of raw proposes one (index delta, value) entry;
		// strictly ascending indices are enforced by construction.
		v := &Vector{Dim: dim}
		next := int32(0)
		for off := 0; off+8 <= len(raw) && int(next) < dim; off += 8 {
			delta := int32(raw[off]) % 7
			idx := next + delta
			if int(idx) >= dim {
				break
			}
			bits := uint32(raw[off+4]) | uint32(raw[off+5])<<8 |
				uint32(raw[off+6])<<16 | uint32(raw[off+7])<<24
			v.Indices = append(v.Indices, idx)
			v.Values = append(v.Values, math.Float32frombits(bits))
			next = idx + 1
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("constructed vector invalid: %v", err)
		}
		got, err := Decode(Encode(v))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if got.Dim != v.Dim || got.NNZ() != v.NNZ() {
			t.Fatalf("round trip shape: dim %d nnz %d, want dim %d nnz %d",
				got.Dim, got.NNZ(), v.Dim, v.NNZ())
		}
		for i := range v.Indices {
			if got.Indices[i] != v.Indices[i] {
				t.Fatalf("index %d: %d != %d", i, got.Indices[i], v.Indices[i])
			}
			if math.Float32bits(got.Values[i]) != math.Float32bits(v.Values[i]) {
				t.Fatalf("value %d: %x != %x", i,
					math.Float32bits(got.Values[i]), math.Float32bits(v.Values[i]))
			}
		}
	})
}
