package sparse

import (
	"bytes"
	"math"
	"testing"

	"gtopkssgd/internal/f16"
)

// fuzzBuildVector constructs a structurally valid vector from fuzzed raw
// material: each 8-byte chunk of raw proposes one (index delta, value)
// entry, with strictly ascending indices enforced by construction.
func fuzzBuildVector(dim16 uint16, raw []byte) *Vector {
	dim := int(dim16)
	if dim == 0 {
		dim = 1
	}
	v := &Vector{Dim: dim}
	next := int32(0)
	for off := 0; off+8 <= len(raw) && int(next) < dim; off += 8 {
		delta := int32(raw[off]) % 7
		idx := next + delta
		if int(idx) >= dim {
			break
		}
		bits := uint32(raw[off+4]) | uint32(raw[off+5])<<8 |
			uint32(raw[off+6])<<16 | uint32(raw[off+7])<<24
		v.Indices = append(v.Indices, idx)
		v.Values = append(v.Values, math.Float32frombits(bits))
		next = idx + 1
	}
	return v
}

// FuzzDecode feeds arbitrary bytes to Decode. The decoder must never
// panic (transport payloads are untrusted at this layer), and anything it
// accepts must re-encode to the exact same bytes — the wire format is
// canonical.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(Encode(&Vector{Dim: 4, Indices: []int32{1, 3}, Values: []float32{-2, 0.5}}))
	f.Add(Encode(&Vector{Dim: 1, Indices: []int32{0}, Values: []float32{float32(math.Inf(1))}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid vector: %v", err)
		}
		if !bytes.Equal(Encode(v), data) {
			t.Fatalf("re-encode of accepted payload differs from input")
		}
	})
}

// FuzzEncodeDecodeRoundTrip builds structurally valid vectors from fuzzed
// raw material and asserts Encode→Decode is the identity (bit-exact
// values, identical indices), including NaN and infinity payloads.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint16(8), []byte{1, 0, 0, 0, 63, 2, 128, 191})
	f.Add(uint16(1), []byte{})
	f.Add(uint16(300), []byte{0, 0, 192, 127, 10, 0, 128, 255, 20, 1, 2, 3})
	f.Fuzz(func(t *testing.T, dim16 uint16, raw []byte) {
		v := fuzzBuildVector(dim16, raw)
		if err := v.Validate(); err != nil {
			t.Fatalf("constructed vector invalid: %v", err)
		}
		got, err := Decode(Encode(v))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if got.Dim != v.Dim || got.NNZ() != v.NNZ() {
			t.Fatalf("round trip shape: dim %d nnz %d, want dim %d nnz %d",
				got.Dim, got.NNZ(), v.Dim, v.NNZ())
		}
		for i := range v.Indices {
			if got.Indices[i] != v.Indices[i] {
				t.Fatalf("index %d: %d != %d", i, got.Indices[i], v.Indices[i])
			}
			if math.Float32bits(got.Values[i]) != math.Float32bits(v.Values[i]) {
				t.Fatalf("value %d: %x != %x", i,
					math.Float32bits(got.Values[i]), math.Float32bits(v.Values[i]))
			}
		}
	})
}

// FuzzDecodeV2 feeds arbitrary bytes to the v2 decoder. It must never
// panic (transport payloads are untrusted), and anything it accepts must
// re-encode to the exact same bytes under the codec named by the frame's
// own flags byte — minimal varints and exact framing keep v2 canonical.
func FuzzDecodeV2(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{V2Magic, 2, 0, 4, 0})
	f.Add(EncodeCodec(CodecV2, &Vector{Dim: 4, Indices: []int32{1, 3}, Values: []float32{-2, 0.5}}))
	f.Add(EncodeCodec(CodecV2F16, &Vector{Dim: 300, Indices: []int32{0, 299}, Values: []float32{float32(math.Inf(1)), 1e-8}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		v := &Vector{}
		if err := DecodeV2Into(v, data); err != nil {
			return
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("DecodeV2Into accepted an invalid vector: %v", err)
		}
		codec := CodecV2
		if data[2]&0x01 != 0 {
			codec = CodecV2F16
		}
		if !bytes.Equal(EncodeCodec(codec, v), data) {
			t.Fatalf("re-encode of accepted v2 payload differs from input")
		}
	})
}

// FuzzV2RoundTrip builds structurally valid vectors from fuzzed raw
// material and asserts the v2 encode→decode round trip: bit-exact for
// the lossless codec, the f16.Round image for fp16 — and that
// EncodedSizeCodec predicts the frame size exactly.
func FuzzV2RoundTrip(f *testing.F) {
	f.Add(uint16(8), []byte{1, 0, 0, 0, 63, 2, 128, 191})
	f.Add(uint16(1), []byte{})
	f.Add(uint16(300), []byte{0, 0, 192, 127, 10, 0, 128, 255, 20, 1, 2, 3})
	f.Fuzz(func(t *testing.T, dim16 uint16, raw []byte) {
		v := fuzzBuildVector(dim16, raw)
		for _, codec := range []Codec{CodecV2, CodecV2F16} {
			buf := EncodeCodec(codec, v)
			if want := EncodedSizeCodec(codec, v.Dim, v.Indices); len(buf) != want {
				t.Fatalf("codec %s: frame %d bytes, EncodedSizeCodec says %d", codec, len(buf), want)
			}
			got, err := DecodeCodec(codec, buf)
			if err != nil {
				t.Fatalf("codec %s round trip failed: %v", codec, err)
			}
			if got.Dim != v.Dim || got.NNZ() != v.NNZ() {
				t.Fatalf("codec %s shape: dim %d nnz %d, want dim %d nnz %d",
					codec, got.Dim, got.NNZ(), v.Dim, v.NNZ())
			}
			for i := range v.Indices {
				if got.Indices[i] != v.Indices[i] {
					t.Fatalf("codec %s index %d: %d != %d", codec, i, got.Indices[i], v.Indices[i])
				}
				want := v.Values[i]
				if codec == CodecV2F16 {
					want = f16.Round(want)
				}
				if math.Float32bits(got.Values[i]) != math.Float32bits(want) {
					t.Fatalf("codec %s value %d: %x != %x", codec, i,
						math.Float32bits(got.Values[i]), math.Float32bits(want))
				}
			}
		}
	})
}

// FuzzCodecCrossDecode asserts version isolation: v1 frames are rejected
// by the v2 decoder (whenever the v1 header cannot be mistaken for the
// v2 magic) and v2/v2-fp16 frames are rejected by both v1 decoders.
func FuzzCodecCrossDecode(f *testing.F) {
	f.Add(uint16(8), []byte{1, 0, 0, 0, 63, 2, 128, 191})
	f.Add(uint16(0xA7), []byte{}) // dim low byte == magic: the sniffing blind spot
	f.Add(uint16(300), []byte{0, 0, 192, 127, 10, 0, 128, 255})
	f.Fuzz(func(t *testing.T, dim16 uint16, raw []byte) {
		v := fuzzBuildVector(dim16, raw)
		v1buf := Encode(v)
		if v1buf[0] != V2Magic {
			if err := DecodeV2Into(&Vector{}, v1buf); err == nil {
				t.Fatalf("v2 decoder accepted a v1 frame (dim=%d nnz=%d)", v.Dim, v.NNZ())
			}
		}
		for _, codec := range []Codec{CodecV2, CodecV2F16} {
			v2buf := EncodeCodec(codec, v)
			if _, err := Decode(v2buf); err == nil {
				t.Fatalf("v1 decoder accepted a %s frame (dim=%d nnz=%d)", codec, v.Dim, v.NNZ())
			}
			if _, err := DecodeView(v2buf); err == nil {
				t.Fatalf("v1 DecodeView accepted a %s frame (dim=%d nnz=%d)", codec, v.Dim, v.NNZ())
			}
		}
	})
}
