package sparse

import (
	"bytes"
	"math"
	"testing"

	"gtopkssgd/internal/f16"
)

// fuzzBuildVector constructs a structurally valid vector from fuzzed raw
// material: each 8-byte chunk of raw proposes one (index delta, value)
// entry, with strictly ascending indices enforced by construction.
func fuzzBuildVector(dim16 uint16, raw []byte) *Vector {
	dim := int(dim16)
	if dim == 0 {
		dim = 1
	}
	v := &Vector{Dim: dim}
	next := int32(0)
	for off := 0; off+8 <= len(raw) && int(next) < dim; off += 8 {
		delta := int32(raw[off]) % 7
		idx := next + delta
		if int(idx) >= dim {
			break
		}
		bits := uint32(raw[off+4]) | uint32(raw[off+5])<<8 |
			uint32(raw[off+6])<<16 | uint32(raw[off+7])<<24
		v.Indices = append(v.Indices, idx)
		v.Values = append(v.Values, math.Float32frombits(bits))
		next = idx + 1
	}
	return v
}

// FuzzDecode feeds arbitrary bytes to Decode. The decoder must never
// panic (transport payloads are untrusted at this layer), and anything it
// accepts must re-encode to the exact same bytes — the wire format is
// canonical.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(Encode(&Vector{Dim: 4, Indices: []int32{1, 3}, Values: []float32{-2, 0.5}}))
	f.Add(Encode(&Vector{Dim: 1, Indices: []int32{0}, Values: []float32{float32(math.Inf(1))}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid vector: %v", err)
		}
		if !bytes.Equal(Encode(v), data) {
			t.Fatalf("re-encode of accepted payload differs from input")
		}
	})
}

// FuzzEncodeDecodeRoundTrip builds structurally valid vectors from fuzzed
// raw material and asserts Encode→Decode is the identity (bit-exact
// values, identical indices), including NaN and infinity payloads.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint16(8), []byte{1, 0, 0, 0, 63, 2, 128, 191})
	f.Add(uint16(1), []byte{})
	f.Add(uint16(300), []byte{0, 0, 192, 127, 10, 0, 128, 255, 20, 1, 2, 3})
	f.Fuzz(func(t *testing.T, dim16 uint16, raw []byte) {
		v := fuzzBuildVector(dim16, raw)
		if err := v.Validate(); err != nil {
			t.Fatalf("constructed vector invalid: %v", err)
		}
		got, err := Decode(Encode(v))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if got.Dim != v.Dim || got.NNZ() != v.NNZ() {
			t.Fatalf("round trip shape: dim %d nnz %d, want dim %d nnz %d",
				got.Dim, got.NNZ(), v.Dim, v.NNZ())
		}
		for i := range v.Indices {
			if got.Indices[i] != v.Indices[i] {
				t.Fatalf("index %d: %d != %d", i, got.Indices[i], v.Indices[i])
			}
			if math.Float32bits(got.Values[i]) != math.Float32bits(v.Values[i]) {
				t.Fatalf("value %d: %x != %x", i,
					math.Float32bits(got.Values[i]), math.Float32bits(v.Values[i]))
			}
		}
	})
}

// FuzzDecodeV2 feeds arbitrary bytes to the v2 decoder. It must never
// panic (transport payloads are untrusted), and anything it accepts must
// re-encode to the exact same bytes under the codec named by the frame's
// own flags byte — minimal varints and exact framing keep v2 canonical.
func FuzzDecodeV2(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{V2Magic, 2, 0, 4, 0})
	f.Add(EncodeCodec(CodecV2, &Vector{Dim: 4, Indices: []int32{1, 3}, Values: []float32{-2, 0.5}}))
	f.Add(EncodeCodec(CodecV2F16, &Vector{Dim: 300, Indices: []int32{0, 299}, Values: []float32{float32(math.Inf(1)), 1e-8}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		v := &Vector{}
		if err := DecodeV2Into(v, data); err != nil {
			return
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("DecodeV2Into accepted an invalid vector: %v", err)
		}
		codec := CodecV2
		if data[2]&0x01 != 0 {
			codec = CodecV2F16
		}
		if !bytes.Equal(EncodeCodec(codec, v), data) {
			t.Fatalf("re-encode of accepted v2 payload differs from input")
		}
	})
}

// FuzzV2RoundTrip builds structurally valid vectors from fuzzed raw
// material and asserts the v2 encode→decode round trip: bit-exact for
// the lossless codec, the f16.Round image for fp16 — and that
// EncodedSizeCodec predicts the frame size exactly.
func FuzzV2RoundTrip(f *testing.F) {
	f.Add(uint16(8), []byte{1, 0, 0, 0, 63, 2, 128, 191})
	f.Add(uint16(1), []byte{})
	f.Add(uint16(300), []byte{0, 0, 192, 127, 10, 0, 128, 255, 20, 1, 2, 3})
	f.Fuzz(func(t *testing.T, dim16 uint16, raw []byte) {
		v := fuzzBuildVector(dim16, raw)
		for _, codec := range []Codec{CodecV2, CodecV2F16} {
			buf := EncodeCodec(codec, v)
			if want := EncodedSizeCodec(codec, v.Dim, v.Indices); len(buf) != want {
				t.Fatalf("codec %s: frame %d bytes, EncodedSizeCodec says %d", codec, len(buf), want)
			}
			got, err := DecodeCodec(codec, buf)
			if err != nil {
				t.Fatalf("codec %s round trip failed: %v", codec, err)
			}
			if got.Dim != v.Dim || got.NNZ() != v.NNZ() {
				t.Fatalf("codec %s shape: dim %d nnz %d, want dim %d nnz %d",
					codec, got.Dim, got.NNZ(), v.Dim, v.NNZ())
			}
			for i := range v.Indices {
				if got.Indices[i] != v.Indices[i] {
					t.Fatalf("codec %s index %d: %d != %d", codec, i, got.Indices[i], v.Indices[i])
				}
				want := v.Values[i]
				if codec == CodecV2F16 {
					want = f16.Round(want)
				}
				if math.Float32bits(got.Values[i]) != math.Float32bits(want) {
					t.Fatalf("codec %s value %d: %x != %x", codec, i,
						math.Float32bits(got.Values[i]), math.Float32bits(want))
				}
			}
		}
	})
}

// fuzzV3Levels derives a valid (scale, levels) pair for a quantized v3
// value codec from a vector's value bits: magnitudes stay within the
// codec's step count, sign frames never carry a zero level, and the
// fixed nonzero scale keeps the zero-scale-forces-zero-levels rule out
// of the way.
func fuzzV3Levels(vc ValueCodec, v *Vector) (float32, []int16) {
	levels := make([]int16, v.NNZ())
	for i, val := range v.Values {
		bits := math.Float32bits(val)
		l := int16(bits % uint32(vc.steps()+1))
		switch {
		case vc == ValueSign:
			l = 1
			if bits&1 == 0 {
				l = -1
			}
		case bits&0x80000000 != 0 && l != 0:
			l = -l
		}
		levels[i] = l
	}
	return 0.5, levels
}

// fuzzEncodeV3 encodes a vector under any v3 codec, deriving levels from
// the value bits for quantized value codecs.
func fuzzEncodeV3(c Codec, v *Vector) []byte {
	if vc := c.Value(); vc.Quantized() {
		scale, levels := fuzzV3Levels(vc, v)
		return EncodeSlicesV3(c, v.Dim, v.Indices, nil, scale, levels)
	}
	return EncodeSlicesV3(c, v.Dim, v.Indices, v.Values, 0, nil)
}

// FuzzDecodeV3 feeds arbitrary bytes to the v3 decoders. They must never
// panic (transport payloads are untrusted), must agree with each other on
// accept/reject, and anything accepted must re-encode to the exact same
// bytes through V3Frame.Encode — the compound wire format is canonical,
// which is what lets replicas compare frames byte-for-byte.
func FuzzDecodeV3(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{V3Magic, 3, 0, 1, 0})
	f.Add(EncodeSlicesV3(CodecV3, 4, []int32{1, 3}, []float32{-2, 0.5}, 0, nil))
	f.Add(EncodeSlicesV3(CodecV3F16, 300, []int32{0, 299}, []float32{0.25, 1e-4}, 0, nil))
	f.Add(EncodeSlicesV3(CodecV3Q8, 8, []int32{0, 2, 7}, nil, 1.5, []int16{-3, 0, 255}))
	f.Add(EncodeSlicesV3(CodecV3Q4, 9, []int32{1, 4, 8}, nil, 0.75, []int16{15, -1, 0}))
	f.Add(EncodeSlicesV3(CodecV3Q2, 5, []int32{0, 1, 2, 3, 4}, nil, 2, []int16{3, -3, 0, 1, -2}))
	f.Add(EncodeSlicesV3(CodecV3T, 5, []int32{1, 4}, nil, 0.25, []int16{1, -1}))
	f.Add(EncodeSlicesV3(CodecV3S, 9, []int32{0, 8}, nil, 2, []int16{1, -1}))
	truncated := EncodeSlicesV3(CodecV3Q8, 8, []int32{0, 7}, nil, 1, []int16{4, -4})
	f.Add(truncated[:len(truncated)-1])
	flipped := bytes.Clone(truncated)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		v := &Vector{}
		if err := DecodeV3Into(v, data); err != nil {
			if _, err2 := DecodeV3Frame(data); err2 == nil {
				t.Fatalf("DecodeV3Frame accepted what DecodeV3Into rejected: %v", err)
			}
			return
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("DecodeV3Into accepted an invalid vector: %v", err)
		}
		fr, err := DecodeV3Frame(data)
		if err != nil {
			t.Fatalf("DecodeV3Frame rejected what DecodeV3Into accepted: %v", err)
		}
		if !bytes.Equal(fr.Encode(), data) {
			t.Fatalf("re-encode of accepted v3 payload differs from input (%s)", fr.Value)
		}
		if fr.Dim != v.Dim || len(fr.Indices) != v.NNZ() {
			t.Fatalf("frame shape dim %d nnz %d, vector dim %d nnz %d",
				fr.Dim, len(fr.Indices), v.Dim, v.NNZ())
		}
		for i := range v.Indices {
			if fr.Indices[i] != v.Indices[i] {
				t.Fatalf("index %d: frame %d, vector %d", i, fr.Indices[i], v.Indices[i])
			}
			want := fr.Values
			var wantBits uint32
			if fr.Value.Quantized() {
				wantBits = math.Float32bits(DequantLevel(fr.Value, fr.Scale, fr.Levels[i]))
			} else {
				wantBits = math.Float32bits(want[i])
			}
			if math.Float32bits(v.Values[i]) != wantBits {
				t.Fatalf("value %d: DecodeV3Into %x, frame dequant %x", i,
					math.Float32bits(v.Values[i]), wantBits)
			}
		}
	})
}

// FuzzV3RoundTrip builds structurally valid vectors from fuzzed raw
// material and asserts the v3 encode→decode round trip for every value
// codec: bit-exact for fp32, the f16.Round image for fp16, the
// DequantLevel lattice point for quantized codecs — and that
// EncodedSizeCodec predicts every frame size exactly.
func FuzzV3RoundTrip(f *testing.F) {
	f.Add(uint16(8), []byte{1, 0, 0, 0, 63, 2, 128, 191})
	f.Add(uint16(1), []byte{})
	f.Add(uint16(300), []byte{0, 0, 192, 127, 10, 0, 128, 255, 20, 1, 2, 3})
	f.Fuzz(func(t *testing.T, dim16 uint16, raw []byte) {
		v := fuzzBuildVector(dim16, raw)
		// v3 float sections reject non-finite values (they never occur in
		// gradients), so clamp the fuzzed bits to finite floats small
		// enough that even binary16 rounding stays finite.
		for i, val := range v.Values {
			v.Values[i] = math.Float32frombits(math.Float32bits(val) & 0xBFFFFFFF)
		}
		for _, codec := range []Codec{CodecV3, CodecV3F16, CodecV3Q8, CodecV3Q4, CodecV3Q2, CodecV3T, CodecV3S} {
			buf := fuzzEncodeV3(codec, v)
			if want := EncodedSizeCodec(codec, v.Dim, v.Indices); len(buf) != want {
				t.Fatalf("codec %s: frame %d bytes, EncodedSizeCodec says %d", codec, len(buf), want)
			}
			got, err := DecodeCodec(codec, buf)
			if err != nil {
				t.Fatalf("codec %s round trip failed: %v", codec, err)
			}
			if got.Dim != v.Dim || got.NNZ() != v.NNZ() {
				t.Fatalf("codec %s shape: dim %d nnz %d, want dim %d nnz %d",
					codec, got.Dim, got.NNZ(), v.Dim, v.NNZ())
			}
			var scale float32
			var levels []int16
			if codec.Value().Quantized() {
				scale, levels = fuzzV3Levels(codec.Value(), v)
			}
			for i := range v.Indices {
				if got.Indices[i] != v.Indices[i] {
					t.Fatalf("codec %s index %d: %d != %d", codec, i, got.Indices[i], v.Indices[i])
				}
				want := v.Values[i]
				switch codec.Value() {
				case ValueF16:
					want = f16.Round(want)
				case ValueF32:
				default:
					want = DequantLevel(codec.Value(), scale, levels[i])
				}
				if math.Float32bits(got.Values[i]) != math.Float32bits(want) {
					t.Fatalf("codec %s value %d: %x != %x", codec, i,
						math.Float32bits(got.Values[i]), math.Float32bits(want))
				}
			}
		}
	})
}

// FuzzV3CrossDecode asserts version isolation for the compound frames:
// the v3 decoder rejects v1 frames (whenever the v1 header cannot be
// mistaken for the v3 magic) and all v2 frames, while v3 frames of every
// value codec are rejected by the v1 and v2 decoders.
func FuzzV3CrossDecode(f *testing.F) {
	f.Add(uint16(8), []byte{1, 0, 0, 0, 63, 2, 128, 191})
	f.Add(uint16(0xB3), []byte{}) // dim low byte == magic: the sniffing blind spot
	f.Add(uint16(0x3B3), []byte{0, 0, 192, 127, 10, 0, 128, 255})
	f.Fuzz(func(t *testing.T, dim16 uint16, raw []byte) {
		v := fuzzBuildVector(dim16, raw)
		v1buf := Encode(v)
		if v1buf[0] != V3Magic {
			if err := DecodeV3Into(&Vector{}, v1buf); err == nil {
				t.Fatalf("v3 decoder accepted a v1 frame (dim=%d nnz=%d)", v.Dim, v.NNZ())
			}
		}
		for _, codec := range []Codec{CodecV2, CodecV2F16} {
			if err := DecodeV3Into(&Vector{}, EncodeCodec(codec, v)); err == nil {
				t.Fatalf("v3 decoder accepted a %s frame (dim=%d nnz=%d)", codec, v.Dim, v.NNZ())
			}
		}
		for _, codec := range []Codec{CodecV3, CodecV3F16, CodecV3Q8, CodecV3Q4, CodecV3Q2, CodecV3T, CodecV3S} {
			v3buf := fuzzEncodeV3(codec, v)
			if _, err := Decode(v3buf); err == nil {
				t.Fatalf("v1 decoder accepted a %s frame (dim=%d nnz=%d)", codec, v.Dim, v.NNZ())
			}
			if _, err := DecodeView(v3buf); err == nil {
				t.Fatalf("v1 DecodeView accepted a %s frame (dim=%d nnz=%d)", codec, v.Dim, v.NNZ())
			}
			if err := DecodeV2Into(&Vector{}, v3buf); err == nil {
				t.Fatalf("v2 decoder accepted a %s frame (dim=%d nnz=%d)", codec, v.Dim, v.NNZ())
			}
		}
	})
}

// FuzzCodecCrossDecode asserts version isolation: v1 frames are rejected
// by the v2 decoder (whenever the v1 header cannot be mistaken for the
// v2 magic) and v2/v2-fp16 frames are rejected by both v1 decoders.
func FuzzCodecCrossDecode(f *testing.F) {
	f.Add(uint16(8), []byte{1, 0, 0, 0, 63, 2, 128, 191})
	f.Add(uint16(0xA7), []byte{}) // dim low byte == magic: the sniffing blind spot
	f.Add(uint16(300), []byte{0, 0, 192, 127, 10, 0, 128, 255})
	f.Fuzz(func(t *testing.T, dim16 uint16, raw []byte) {
		v := fuzzBuildVector(dim16, raw)
		v1buf := Encode(v)
		if v1buf[0] != V2Magic {
			if err := DecodeV2Into(&Vector{}, v1buf); err == nil {
				t.Fatalf("v2 decoder accepted a v1 frame (dim=%d nnz=%d)", v.Dim, v.NNZ())
			}
		}
		for _, codec := range []Codec{CodecV2, CodecV2F16} {
			v2buf := EncodeCodec(codec, v)
			if _, err := Decode(v2buf); err == nil {
				t.Fatalf("v1 decoder accepted a %s frame (dim=%d nnz=%d)", codec, v.Dim, v.NNZ())
			}
			if _, err := DecodeView(v2buf); err == nil {
				t.Fatalf("v1 DecodeView accepted a %s frame (dim=%d nnz=%d)", codec, v.Dim, v.NNZ())
			}
		}
	})
}
