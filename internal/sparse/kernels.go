package sparse

import (
	"fmt"
	"sync/atomic"
)

// This file is the kernel dispatch layer: every per-element hot loop of
// the selection/merge/encode machinery (magnitude fill, quickselect
// partition, threshold counting, sorted merge, dense scatter-add, wire
// word moves, index validation) exists in two pinned-bit-identical
// variants — a portable pure-Go one (kernels_pure.go, always compiled)
// and a word-batched/bounds-check-eliminated one (kernels_fast.go,
// compiled on little-endian 64-bit targets unless the `purego` build tag
// is set). Most fast variants replay exactly the same comparison sequence
// as the pure ones, so results — including quickselect's pivot-driven
// permutations and behaviour on NaN/Inf inputs — are bit-identical by
// construction, not just in expectation; the radix threshold selector is
// the one algorithmic substitution, and it computes a value (the k-th
// largest of a multiset) that no algorithm can disagree on, falling back
// to the quickselect reference whenever NaNs make float ordering and bit
// ordering diverge. The active variant is a
// process-wide mode, selectable at startup via SetKernels (the CLI
// -kernels flag) and defaulting to fast where available.

// Kernel mode names accepted by SetKernels.
const (
	// KernelsFast selects the word-batched implementations.
	KernelsFast = "fast"
	// KernelsPure selects the portable pure-Go implementations.
	KernelsPure = "pure"
)

// fastEnabled gates every kernel dispatch. Atomic so tests and the fuzz
// harness can flip modes without racing in-flight benchmark goroutines;
// the Load is a plain memory read on the targets the fast path supports.
var fastEnabled atomic.Bool

func init() { fastEnabled.Store(fastKernelsAvailable) }

// FastKernelsAvailable reports whether this build carries the fast
// kernel variants (false under the purego build tag and on targets
// without little-endian word-move support).
func FastKernelsAvailable() bool { return fastKernelsAvailable }

// DefaultKernels returns the kernel mode a fresh process starts in:
// "fast" when the build supports it, "pure" otherwise.
func DefaultKernels() string {
	if fastKernelsAvailable {
		return KernelsFast
	}
	return KernelsPure
}

// Kernels returns the active kernel mode ("fast" or "pure").
func Kernels() string {
	if fastEnabled.Load() {
		return KernelsFast
	}
	return KernelsPure
}

// SetKernels selects the kernel implementations by name ("fast" or
// "pure"). Requesting "fast" in a build without it (purego tag,
// unsupported GOARCH) is an error, so a CLI invocation that asks for a
// speed-up it cannot have fails loudly instead of silently degrading.
// Both modes produce bit-identical results; switching is safe at any
// quiescent point but is intended for process startup.
func SetKernels(mode string) error {
	switch mode {
	case KernelsFast:
		if !fastKernelsAvailable {
			return fmt.Errorf("sparse: fast kernels are not available in this build (purego tag or unsupported architecture); use %q", KernelsPure)
		}
		fastEnabled.Store(true)
	case KernelsPure:
		fastEnabled.Store(false)
	default:
		return fmt.Errorf("sparse: unknown kernel mode %q (want %q or %q)", mode, KernelsFast, KernelsPure)
	}
	return nil
}

// absInto fills dst[i] with |src[i]| (sign-bit clear; NaN payloads and
// sign are masked identically in both modes). len(dst) >= len(src).
func absInto(dst, src []float32) {
	if fastEnabled.Load() {
		absIntoFast(dst, src)
		return
	}
	absIntoPure(dst, src)
}

// partitionGreater runs one Lomuto partition pass over mags[lo:hi],
// moving strictly-greater-than-pivot elements to the front, and returns
// the store index. Both variants perform the same conditional swap
// sequence, so the resulting permutation — which drives the next pivot
// choice in selectKthLargest — is identical.
func partitionGreater(mags []float32, lo, hi int, pivot float32) int {
	if fastEnabled.Load() {
		return partitionGreaterFast(mags, lo, hi, pivot)
	}
	return partitionGreaterPure(mags, lo, hi, pivot)
}

// countGreater counts elements of mags strictly greater than thr.
func countGreater(mags []float32, thr float32) int {
	if fastEnabled.Load() {
		return countGreaterFast(mags, thr)
	}
	return countGreaterPure(mags, thr)
}

// selectThreshold returns the k-th largest magnitude in mags plus the
// strict-winner count (elements > threshold) — the two quantities every
// top-k emit needs. The pure path is quickselect + a counting pass; the
// fast path is a byte-wise radix descent over the float bit patterns
// (sign-free magnitudes order identically as uint32s), which visits
// memory sequentially and yields the strict count as a by-product. The
// radix result is the value of the k-th largest element — a multiset
// property independent of algorithm — so both paths return identical
// bits; inputs containing NaN (whose float ordering disagrees with the
// bit ordering) fall back to the quickselect reference in both modes.
// mags may be permuted (quickselect partitions in place; radix does not).
func selectThreshold(mags []float32, k int) (thr float32, strict int) {
	if fastEnabled.Load() {
		if thr, strict, ok := radixSelectKthLargest(mags, k); ok {
			return thr, strict
		}
	}
	thr = selectKthLargest(mags, k)
	return thr, countGreater(mags, thr)
}

// selectThresholdVals is the scratch-free front door to selectThreshold:
// the radix descent clears the sign bit as it converts each element to
// bits, so it consumes the raw signed values directly and the caller
// skips the magnitude-scratch fill (one full pass plus a pool
// round-trip) entirely. ok=false — pure mode, purego builds, NaN inputs,
// or inputs under the radix size gate — sends the caller to the
// scratch-backed reference path; the returned threshold and strict count
// are the same multiset properties either way, so the two routes stay
// bit-identical.
func selectThresholdVals(vals []float32, k int) (thr float32, strict int, ok bool) {
	if fastEnabled.Load() {
		return radixSelectKthLargest(vals, k)
	}
	return 0, 0, false
}

// emitTopK scans srcVal (paired with srcIdx, or dense positions when
// srcIdx is nil) and writes the entries selected by thr/tieQuota into
// the dst slices, returning the count written. Both variants select the
// same entries in the same order; the fast variant trades the pure
// loop's data-dependent branches for unconditional stores with a
// conditional advance, which is why dst must have one slot of slack
// (len >= k+1) — the ghost slot absorbs stores of rejected entries.
func emitTopK(dstIdx []int32, dstVal []float32, srcIdx []int32, srcVal []float32, thr float32, tieQuota, k int) int {
	if fastEnabled.Load() {
		return emitTopKFast(dstIdx, dstVal, srcIdx, srcVal, thr, tieQuota, k)
	}
	return emitTopKPure(dstIdx, dstVal, srcIdx, srcVal, thr, tieQuota, k)
}

// mergeAdd writes the index-merged sum of a and b into the dst slices
// (sized to hold the union) and returns the number of entries written —
// AddInto's inner loop.
func mergeAdd(dstIdx []int32, dstVal []float32, a, b *Vector) int {
	if fastEnabled.Load() {
		return mergeAddFast(dstIdx, dstVal, a, b)
	}
	return mergeAddPure(dstIdx, dstVal, a, b)
}

// scatterAdd adds (indices, values) into the dense buffer, recording
// first-touched indices through mark, and returns the extended touched
// list — Accumulator.Add's inner loop.
func scatterAdd(dense []float32, mark []bool, touched []int32, indices []int32, values []float32) []int32 {
	if fastEnabled.Load() {
		return scatterAddFast(dense, mark, touched, indices, values)
	}
	return scatterAddPure(dense, mark, touched, indices, values)
}

// putWords serialises the index and value sections of a wire frame into
// buf (len(buf) == 4*(len(indices)+len(values))), little-endian.
func putWords(buf []byte, indices []int32, values []float32) {
	if fastEnabled.Load() {
		putWordsFast(buf, indices, values)
		return
	}
	putWordsPure(buf, indices, values)
}

// checkIndices validates that indices are strictly ascending within
// [0, dim) — Vector.Validate's inner loop. Diagnostics for malformed
// inputs are produced by the pure scan in both modes, so error text is
// mode-independent.
func checkIndices(indices []int32, dim int) error {
	if fastEnabled.Load() {
		return checkIndicesFast(indices, dim)
	}
	return checkIndicesPure(indices, dim)
}
