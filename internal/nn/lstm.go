package nn

import (
	"fmt"
	"math"

	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/tensor"
)

// LSTMLM is a word/character-level LSTM language model: embedding →
// single LSTM layer (gate order i, f, g, o) → linear projection to the
// vocabulary, trained with softmax cross-entropy at every timestep. It is
// the reproduction's analogue of the paper's 2-layer LSTM-PTB model,
// scaled to CPU budgets; its parameters and gradients are flat float32
// vectors so the sparsifying aggregators treat it exactly like the CNNs.
type LSTMLM struct {
	V, E, H int // vocabulary, embedding and hidden sizes

	params, grads []float32
	// parameter views
	embed, wx, wh, b, wy, by       []float32
	gEmbed, gWx, gWh, gB, gWy, gBy []float32
}

// NewLSTMLM allocates the model with its own flat parameter buffers.
func NewLSTMLM(vocab, embed, hidden int) *LSTMLM {
	if vocab < 2 || embed < 1 || hidden < 1 {
		panic(fmt.Sprintf("nn: LSTMLM(%d,%d,%d): invalid sizes", vocab, embed, hidden))
	}
	m := &LSTMLM{V: vocab, E: embed, H: hidden}
	n := m.ParamCount()
	m.params = make([]float32, n)
	m.grads = make([]float32, n)
	m.bind()
	return m
}

// ParamCount returns the total number of scalar parameters.
func (m *LSTMLM) ParamCount() int {
	return m.V*m.E + m.E*4*m.H + m.H*4*m.H + 4*m.H + m.H*m.V + m.V
}

func (m *LSTMLM) bind() {
	split := func(buf []float32, sizes ...int) [][]float32 {
		out := make([][]float32, len(sizes))
		off := 0
		for i, s := range sizes {
			out[i] = buf[off : off+s]
			off += s
		}
		return out
	}
	sizes := []int{m.V * m.E, m.E * 4 * m.H, m.H * 4 * m.H, 4 * m.H, m.H * m.V, m.V}
	p := split(m.params, sizes...)
	g := split(m.grads, sizes...)
	m.embed, m.wx, m.wh, m.b, m.wy, m.by = p[0], p[1], p[2], p[3], p[4], p[5]
	m.gEmbed, m.gWx, m.gWh, m.gB, m.gWy, m.gBy = g[0], g[1], g[2], g[3], g[4], g[5]
}

// Parameters returns the flat parameter vector.
func (m *LSTMLM) Parameters() []float32 { return m.params }

// Gradients returns the flat gradient vector.
func (m *LSTMLM) Gradients() []float32 { return m.grads }

// ZeroGrad clears the accumulated gradients.
func (m *LSTMLM) ZeroGrad() {
	for i := range m.grads {
		m.grads[i] = 0
	}
}

// Init initialises all weight matrices with Xavier-style scaling and sets
// the forget-gate bias to 1 (the standard trick that stabilises early
// LSTM training).
func (m *LSTMLM) Init(seed uint64) {
	src := prng.New(seed)
	initMat := func(buf []float32, fanIn int) {
		std := float32(math.Sqrt(1 / float64(fanIn)))
		for i := range buf {
			buf[i] = std * float32(src.NormFloat64())
		}
	}
	initMat(m.embed, m.E)
	initMat(m.wx, m.E)
	initMat(m.wh, m.H)
	initMat(m.wy, m.H)
	for i := range m.b {
		m.b[i] = 0
	}
	for i := m.H; i < 2*m.H; i++ {
		m.b[i] = 1 // forget gate bias
	}
	for i := range m.by {
		m.by[i] = 0
	}
}

// lstmCache keeps one timestep's activations for BPTT.
type lstmCache struct {
	x          *tensor.Matrix // embedded inputs (B×E)
	i, f, g, o *tensor.Matrix // gate activations (B×H)
	c, tc      *tensor.Matrix // cell state and tanh(cell) (B×H)
	hPrev      *tensor.Matrix
	cPrev      *tensor.Matrix
	tokens     []int
}

// Loss runs teacher-forced forward + backward over a batch of sequences
// and returns the mean per-token cross-entropy. inputs and targets are
// [batch][time] token ids with identical shapes; gradients accumulate
// into the flat gradient buffer (call ZeroGrad first).
func (m *LSTMLM) Loss(inputs, targets [][]int) (float64, error) {
	bsz := len(inputs)
	if bsz == 0 || len(targets) != bsz {
		return 0, fmt.Errorf("nn: lstm loss: %d inputs, %d targets", bsz, len(targets))
	}
	T := len(inputs[0])
	for s := range inputs {
		if len(inputs[s]) != T || len(targets[s]) != T {
			return 0, fmt.Errorf("nn: lstm loss: ragged sequences at row %d", s)
		}
	}

	wxM := tensor.FromSlice(m.E, 4*m.H, m.wx)
	whM := tensor.FromSlice(m.H, 4*m.H, m.wh)
	wyM := tensor.FromSlice(m.H, m.V, m.wy)

	h := tensor.NewMatrix(bsz, m.H)
	c := tensor.NewMatrix(bsz, m.H)
	caches := make([]*lstmCache, T)
	dLogitsAll := make([]*tensor.Matrix, T)
	var totalLoss float64

	z := tensor.NewMatrix(bsz, 4*m.H)
	zh := tensor.NewMatrix(bsz, 4*m.H)
	for t := 0; t < T; t++ {
		// Embed tokens.
		x := tensor.NewMatrix(bsz, m.E)
		tokens := make([]int, bsz)
		for s := 0; s < bsz; s++ {
			tok := inputs[s][t]
			if tok < 0 || tok >= m.V {
				return 0, fmt.Errorf("nn: lstm loss: token %d out of vocab %d", tok, m.V)
			}
			tokens[s] = tok
			copy(x.Row(s), m.embed[tok*m.E:(tok+1)*m.E])
		}
		// Gates: z = x·Wx + h·Wh + b.
		tensor.MatMul(z, x, wxM)
		tensor.MatMul(zh, h, whM)
		tensor.AddInto(z.Data, zh.Data)
		tensor.AddBiasRows(z, m.b)

		cache := &lstmCache{
			x: x, tokens: tokens,
			i: tensor.NewMatrix(bsz, m.H), f: tensor.NewMatrix(bsz, m.H),
			g: tensor.NewMatrix(bsz, m.H), o: tensor.NewMatrix(bsz, m.H),
			c: tensor.NewMatrix(bsz, m.H), tc: tensor.NewMatrix(bsz, m.H),
			hPrev: h.Clone(), cPrev: c.Clone(),
		}
		hNext := tensor.NewMatrix(bsz, m.H)
		for s := 0; s < bsz; s++ {
			zr := z.Row(s)
			for j := 0; j < m.H; j++ {
				iv := sigmoid(zr[j])
				fv := sigmoid(zr[m.H+j])
				gv := float32(math.Tanh(float64(zr[2*m.H+j])))
				ov := sigmoid(zr[3*m.H+j])
				cv := fv*c.At(s, j) + iv*gv
				tcv := float32(math.Tanh(float64(cv)))
				cache.i.Set(s, j, iv)
				cache.f.Set(s, j, fv)
				cache.g.Set(s, j, gv)
				cache.o.Set(s, j, ov)
				cache.c.Set(s, j, cv)
				cache.tc.Set(s, j, tcv)
				hNext.Set(s, j, ov*tcv)
			}
		}
		c = cache.c.Clone()
		h = hNext
		caches[t] = cache

		// Output projection and loss.
		logits := tensor.NewMatrix(bsz, m.V)
		tensor.MatMul(logits, h, wyM)
		tensor.AddBiasRows(logits, m.by)
		labels := make([]int, bsz)
		for s := 0; s < bsz; s++ {
			lab := targets[s][t]
			if lab < 0 || lab >= m.V {
				return 0, fmt.Errorf("nn: lstm loss: target %d out of vocab %d", lab, m.V)
			}
			labels[s] = lab
		}
		stepLoss, dlogits := SoftmaxCrossEntropy(logits, labels)
		totalLoss += stepLoss
		// Scale so the total is the mean over all B·T predictions.
		tensor.Scale(dlogits.Data, 1/float32(T))
		dLogitsAll[t] = dlogits
	}

	// BPTT.
	gWxM := tensor.FromSlice(m.E, 4*m.H, m.gWx)
	gWhM := tensor.FromSlice(m.H, 4*m.H, m.gWh)
	gWyM := tensor.FromSlice(m.H, m.V, m.gWy)
	dh := tensor.NewMatrix(bsz, m.H)
	dc := tensor.NewMatrix(bsz, m.H)
	dz := tensor.NewMatrix(bsz, 4*m.H)
	tmpEH := tensor.NewMatrix(m.E, 4*m.H)
	tmpHH := tensor.NewMatrix(m.H, 4*m.H)
	tmpHV := tensor.NewMatrix(m.H, m.V)
	dhFromZ := tensor.NewMatrix(bsz, m.H)
	dx := tensor.NewMatrix(bsz, m.E)
	for t := T - 1; t >= 0; t-- {
		cache := caches[t]
		// h_t = o*tc (recompute; avoids storing every h).
		hT := tensor.NewMatrix(bsz, m.H)
		for s := 0; s < bsz; s++ {
			for j := 0; j < m.H; j++ {
				hT.Set(s, j, cache.o.At(s, j)*cache.tc.At(s, j))
			}
		}
		// Output projection gradients: dWy += hᵀ·dlogits, dby += Σ.
		tensor.MatMulTransA(tmpHV, hT, dLogitsAll[t])
		tensor.AddInto(gWyM.Data, tmpHV.Data)
		tensor.SumRowsInto(m.gBy, dLogitsAll[t])
		// dh += dlogits·Wyᵀ.
		dhOut := tensor.NewMatrix(bsz, m.H)
		tensor.MatMulTransB(dhOut, dLogitsAll[t], wyM)
		tensor.AddInto(dh.Data, dhOut.Data)

		// Gate backward.
		for s := 0; s < bsz; s++ {
			for j := 0; j < m.H; j++ {
				iv, fv, gv, ov := cache.i.At(s, j), cache.f.At(s, j), cache.g.At(s, j), cache.o.At(s, j)
				tcv := cache.tc.At(s, j)
				dhv := dh.At(s, j)
				dcv := dc.At(s, j) + dhv*ov*(1-tcv*tcv)
				dov := dhv * tcv
				div := dcv * gv
				dgv := dcv * iv
				dfv := dcv * cache.cPrev.At(s, j)
				dc.Set(s, j, dcv*fv) // flows to previous step
				dz.Set(s, j, div*iv*(1-iv))
				dz.Set(s, m.H+j, dfv*fv*(1-fv))
				dz.Set(s, 2*m.H+j, dgv*(1-gv*gv))
				dz.Set(s, 3*m.H+j, dov*ov*(1-ov))
			}
		}
		// Parameter gradients.
		tensor.MatMulTransA(tmpEH, cache.x, dz)
		tensor.AddInto(gWxM.Data, tmpEH.Data)
		tensor.MatMulTransA(tmpHH, cache.hPrev, dz)
		tensor.AddInto(gWhM.Data, tmpHH.Data)
		tensor.SumRowsInto(m.gB, dz)
		// dh for the previous step and embedding gradients.
		wxMT := tensor.FromSlice(m.E, 4*m.H, m.wx)
		tensor.MatMulTransB(dx, dz, wxMT)
		for s := 0; s < bsz; s++ {
			tok := cache.tokens[s]
			tensor.AddInto(m.gEmbed[tok*m.E:(tok+1)*m.E], dx.Row(s))
		}
		whMT := tensor.FromSlice(m.H, 4*m.H, m.wh)
		tensor.MatMulTransB(dhFromZ, dz, whMT)
		copy(dh.Data, dhFromZ.Data)
	}
	return totalLoss / float64(T), nil
}

// Perplexity converts a mean per-token cross-entropy loss to perplexity.
func Perplexity(meanLoss float64) float64 { return math.Exp(meanLoss) }

func sigmoid(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}
