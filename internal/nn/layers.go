package nn

import (
	"fmt"
	"math"

	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/tensor"
)

// Dense is a fully connected layer: y = xW + b with W ∈ R^{in×out}.
type Dense struct {
	In, Out int

	w, b   []float32 // views into the network's flat parameter buffer
	gw, gb []float32 // matching gradient views
	x      *tensor.Matrix
}

// NewDense creates a fully connected in→out layer.
func NewDense(in, out int) *Dense {
	if in < 1 || out < 1 {
		panic(fmt.Sprintf("nn: Dense(%d, %d): dimensions must be positive", in, out))
	}
	return &Dense{In: in, Out: out}
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense %d→%d", d.In, d.Out) }

// ParamCount implements Layer.
func (d *Dense) ParamCount() int { return d.In*d.Out + d.Out }

// Bind implements Layer.
func (d *Dense) Bind(params, grads []float32) {
	d.w, d.b = params[:d.In*d.Out], params[d.In*d.Out:]
	d.gw, d.gb = grads[:d.In*d.Out], grads[d.In*d.Out:]
}

// Init implements Layer with He initialisation (suits the ReLU nets here).
func (d *Dense) Init(src *prng.Source) {
	std := float32(math.Sqrt(2 / float64(d.In)))
	for i := range d.w {
		d.w[i] = std * float32(src.NormFloat64())
	}
	for i := range d.b {
		d.b[i] = 0
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: dense forward: input %d cols, want %d", x.Cols, d.In))
	}
	d.x = x
	out := tensor.NewMatrix(x.Rows, d.Out)
	tensor.MatMul(out, x, tensor.FromSlice(d.In, d.Out, d.w))
	tensor.AddBiasRows(out, d.b)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Matrix) *tensor.Matrix {
	w := tensor.FromSlice(d.In, d.Out, d.w)
	gw := tensor.FromSlice(d.In, d.Out, d.gw)
	tensor.MatMulTransA(gw, d.x, dout) // dW = xᵀ·dout
	tensor.SumRowsInto(d.gb, dout)     // db = Σ rows
	din := tensor.NewMatrix(dout.Rows, d.In)
	tensor.MatMulTransB(din, dout, w) // dx = dout·Wᵀ
	return din
}

// ReLU is the rectified linear activation, applied element-wise.
type ReLU struct {
	mask []bool
}

// NewReLU creates a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// ParamCount implements Layer.
func (r *ReLU) ParamCount() int { return 0 }

// Bind implements Layer.
func (r *ReLU) Bind(_, _ []float32) {}

// Init implements Layer.
func (r *ReLU) Init(_ *prng.Source) {}

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Matrix) *tensor.Matrix {
	din := dout.Clone()
	for i := range din.Data {
		if !r.mask[i] {
			din.Data[i] = 0
		}
	}
	return din
}

// Tanh is the hyperbolic tangent activation, applied element-wise.
type Tanh struct {
	y *tensor.Matrix
}

// NewTanh creates a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// ParamCount implements Layer.
func (t *Tanh) ParamCount() int { return 0 }

// Bind implements Layer.
func (t *Tanh) Bind(_, _ []float32) {}

// Init implements Layer.
func (t *Tanh) Init(_ *prng.Source) {}

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = float32(math.Tanh(float64(v)))
	}
	t.y = out
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(dout *tensor.Matrix) *tensor.Matrix {
	din := dout.Clone()
	for i, v := range t.y.Data {
		din.Data[i] *= 1 - v*v
	}
	return din
}

// BatchNorm normalises each feature over the batch during training and
// with running statistics at evaluation time:
//
//	y = γ·(x−μ)/√(σ²+ε) + β
type BatchNorm struct {
	Features int
	Momentum float32 // running-statistics EMA coefficient
	Eps      float32

	gamma, beta   []float32
	gGamma, gBeta []float32

	runMean, runVar []float32

	// forward cache
	xhat    *tensor.Matrix
	std     []float32
	rows    int
	trained bool
}

// NewBatchNorm creates a batch-normalisation layer over features.
func NewBatchNorm(features int) *BatchNorm {
	return &BatchNorm{
		Features: features,
		Momentum: 0.9,
		Eps:      1e-5,
		runMean:  make([]float32, features),
		runVar:   onesSlice(features),
	}
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return fmt.Sprintf("batchnorm %d", b.Features) }

// ParamCount implements Layer.
func (b *BatchNorm) ParamCount() int { return 2 * b.Features }

// Bind implements Layer.
func (b *BatchNorm) Bind(params, grads []float32) {
	b.gamma, b.beta = params[:b.Features], params[b.Features:]
	b.gGamma, b.gBeta = grads[:b.Features], grads[b.Features:]
}

// Init implements Layer: γ=1, β=0.
func (b *BatchNorm) Init(_ *prng.Source) {
	for i := range b.gamma {
		b.gamma[i] = 1
		b.beta[i] = 0
	}
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != b.Features {
		panic(fmt.Sprintf("nn: batchnorm forward: %d cols, want %d", x.Cols, b.Features))
	}
	out := tensor.NewMatrix(x.Rows, x.Cols)
	if !train {
		for i := 0; i < x.Rows; i++ {
			xr, or := x.Row(i), out.Row(i)
			for j := range xr {
				inv := 1 / float32(math.Sqrt(float64(b.runVar[j]+b.Eps)))
				or[j] = b.gamma[j]*(xr[j]-b.runMean[j])*inv + b.beta[j]
			}
		}
		b.trained = false
		return out
	}

	n := float32(x.Rows)
	mean := make([]float32, b.Features)
	variance := make([]float32, b.Features)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= n
	}

	b.std = make([]float32, b.Features)
	for j := range b.std {
		b.std[j] = float32(math.Sqrt(float64(variance[j] + b.Eps)))
	}
	b.xhat = tensor.NewMatrix(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		xr, hr, or := x.Row(i), b.xhat.Row(i), out.Row(i)
		for j := range xr {
			hr[j] = (xr[j] - mean[j]) / b.std[j]
			or[j] = b.gamma[j]*hr[j] + b.beta[j]
		}
	}
	for j := range mean {
		b.runMean[j] = b.Momentum*b.runMean[j] + (1-b.Momentum)*mean[j]
		b.runVar[j] = b.Momentum*b.runVar[j] + (1-b.Momentum)*variance[j]
	}
	b.rows = x.Rows
	b.trained = true
	return out
}

// Backward implements Layer (training-mode batch statistics gradient).
func (b *BatchNorm) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if !b.trained {
		// Evaluation mode: normalisation is a fixed affine map.
		din := dout.Clone()
		for i := 0; i < din.Rows; i++ {
			row := din.Row(i)
			for j := range row {
				inv := 1 / float32(math.Sqrt(float64(b.runVar[j]+b.Eps)))
				row[j] *= b.gamma[j] * inv
			}
		}
		return din
	}
	n := float32(b.rows)
	sumDy := make([]float32, b.Features)
	sumDyXhat := make([]float32, b.Features)
	for i := 0; i < dout.Rows; i++ {
		dr, hr := dout.Row(i), b.xhat.Row(i)
		for j := range dr {
			sumDy[j] += dr[j]
			sumDyXhat[j] += dr[j] * hr[j]
		}
	}
	for j := range sumDy {
		b.gBeta[j] += sumDy[j]
		b.gGamma[j] += sumDyXhat[j]
	}
	din := tensor.NewMatrix(dout.Rows, dout.Cols)
	for i := 0; i < dout.Rows; i++ {
		dr, hr, or := dout.Row(i), b.xhat.Row(i), din.Row(i)
		for j := range dr {
			or[j] = b.gamma[j] / (n * b.std[j]) *
				(n*dr[j] - sumDy[j] - hr[j]*sumDyXhat[j])
		}
	}
	return din
}

func onesSlice(n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = 1
	}
	return s
}
