package nn

import (
	"fmt"
	"math"
	"testing"

	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/tensor"
)

// numericalGrad estimates dLoss/dparams by central differences and
// compares against the analytic gradient produced by Backward. This is
// the reproduction's stand-in for trusting PyTorch autograd: every layer
// must pass it.
func gradCheck(t *testing.T, net *Network, x *tensor.Matrix, labels []int, tol float64) {
	t.Helper()
	params := net.Parameters()

	loss := func() float64 {
		out := net.Forward(x, true)
		l, _ := SoftmaxCrossEntropy(out, labels)
		return l
	}
	// Analytic gradient.
	net.ZeroGrad()
	out := net.Forward(x, true)
	_, dlogits := SoftmaxCrossEntropy(out, labels)
	net.Backward(dlogits)
	analytic := append([]float32(nil), net.Gradients()...)

	// Probe a subset of parameters (all if small).
	probe := len(params)
	stride := 1
	if probe > 200 {
		stride = probe / 200
	}
	// eps must be small enough that ReLU/max-pool kinks are rarely crossed
	// between the two evaluations, yet large enough to rise above float32
	// forward-pass noise.
	const eps = 1e-3
	probed := 0
	var failures []string
	for i := 0; i < probe; i += stride {
		probed++
		orig := params[i]
		params[i] = orig + eps
		lp := loss()
		params[i] = orig - eps
		lm := loss()
		params[i] = orig
		numeric := (lp - lm) / (2 * eps)
		diff := math.Abs(numeric - float64(analytic[i]))
		scale := math.Max(1, math.Abs(numeric)+math.Abs(float64(analytic[i])))
		if diff/scale > tol {
			failures = append(failures,
				fmt.Sprintf("param %d: analytic %v, numeric %v", i, analytic[i], numeric))
		}
	}
	// Allow a handful of kink-crossing false positives (ReLU/max-pool are
	// non-differentiable at 0); a real backward bug fails a large fraction
	// of parameters.
	if len(failures) > 1+probed/100 {
		for _, f := range failures[:min(5, len(failures))] {
			t.Error(f)
		}
		t.Fatalf("%d/%d parameters failed gradient check", len(failures), probed)
	}
}

func randInput(seed uint64, rows, cols int) (*tensor.Matrix, []int) {
	src := prng.New(seed)
	x := tensor.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = float32(src.NormFloat64())
	}
	labels := make([]int, rows)
	for i := range labels {
		labels[i] = src.Intn(3)
	}
	return x, labels
}

func TestGradCheckDense(t *testing.T) {
	net := NewNetwork(NewDense(5, 4), NewDense(4, 3))
	net.Init(1)
	x, labels := randInput(2, 6, 5)
	gradCheck(t, net, x, labels, 1e-2)
}

func TestGradCheckDenseReLU(t *testing.T) {
	net := NewNetwork(NewDense(5, 8), NewReLU(), NewDense(8, 3))
	net.Init(3)
	x, labels := randInput(4, 6, 5)
	gradCheck(t, net, x, labels, 1e-2)
}

func TestGradCheckTanh(t *testing.T) {
	net := NewNetwork(NewDense(4, 6), NewTanh(), NewDense(6, 3))
	net.Init(5)
	x, labels := randInput(6, 5, 4)
	gradCheck(t, net, x, labels, 1e-2)
}

func TestGradCheckBatchNorm(t *testing.T) {
	net := NewNetwork(NewDense(4, 6), NewBatchNorm(6), NewReLU(), NewDense(6, 3))
	net.Init(7)
	x, labels := randInput(8, 8, 4)
	gradCheck(t, net, x, labels, 2e-2)
}

func TestGradCheckConv(t *testing.T) {
	// 2-channel 4x4 images, 3 filters, 3x3 kernel, same padding.
	conv := NewConv2D(2, 4, 4, 3, 3, 1, 1)
	net := NewNetwork(conv, NewReLU(), NewDense(3*4*4, 3))
	net.Init(9)
	x, labels := randInput(10, 4, 2*4*4)
	gradCheck(t, net, x, labels, 2e-2)
}

func TestGradCheckConvStride2NoPad(t *testing.T) {
	conv := NewConv2D(1, 6, 6, 2, 3, 2, 0) // -> 2x2x2
	net := NewNetwork(conv, NewDense(2*2*2, 3))
	net.Init(11)
	x, labels := randInput(12, 4, 36)
	gradCheck(t, net, x, labels, 2e-2)
}

func TestGradCheckMaxPool(t *testing.T) {
	net := NewNetwork(
		NewConv2D(1, 4, 4, 2, 3, 1, 1),
		NewMaxPool2(2, 4, 4),
		NewDense(2*2*2, 3),
	)
	net.Init(13)
	x, labels := randInput(14, 4, 16)
	gradCheck(t, net, x, labels, 2e-2)
}

func TestGradCheckGlobalAvgPool(t *testing.T) {
	net := NewNetwork(
		NewConv2D(1, 4, 4, 3, 3, 1, 1),
		NewGlobalAvgPool(3, 4, 4),
		NewDense(3, 3),
	)
	net.Init(15)
	x, labels := randInput(16, 4, 16)
	gradCheck(t, net, x, labels, 2e-2)
}

func TestGradCheckResidual(t *testing.T) {
	body := []Layer{
		NewConv2D(2, 4, 4, 2, 3, 1, 1),
		NewReLU(),
		NewConv2D(2, 4, 4, 2, 3, 1, 1),
	}
	net := NewNetwork(
		NewResidual(body...),
		NewGlobalAvgPool(2, 4, 4),
		NewDense(2, 3),
	)
	net.Init(17)
	x, labels := randInput(18, 4, 2*4*4)
	gradCheck(t, net, x, labels, 2e-2)
}

func TestGradCheckLSTM(t *testing.T) {
	m := NewLSTMLM(6, 4, 5)
	m.Init(21)
	src := prng.New(22)
	const bsz, T = 3, 4
	inputs := make([][]int, bsz)
	targets := make([][]int, bsz)
	for s := range inputs {
		inputs[s] = make([]int, T)
		targets[s] = make([]int, T)
		for t := range inputs[s] {
			inputs[s][t] = src.Intn(6)
			targets[s][t] = src.Intn(6)
		}
	}

	m.ZeroGrad()
	if _, err := m.Loss(inputs, targets); err != nil {
		t.Fatal(err)
	}
	analytic := append([]float32(nil), m.Gradients()...)

	params := m.Parameters()
	loss := func() float64 {
		m.ZeroGrad()
		l, err := m.Loss(inputs, targets)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	const eps = 1e-3
	stride := 1
	if len(params) > 300 {
		stride = len(params) / 300
	}
	probed := 0
	var failures []string
	for i := 0; i < len(params); i += stride {
		probed++
		orig := params[i]
		params[i] = orig + eps
		lp := loss()
		params[i] = orig - eps
		lm := loss()
		params[i] = orig
		numeric := (lp - lm) / (2 * eps)
		diff := math.Abs(numeric - float64(analytic[i]))
		scale := math.Max(1, math.Abs(numeric)+math.Abs(float64(analytic[i])))
		if diff/scale > 2e-2 {
			failures = append(failures,
				fmt.Sprintf("param %d: analytic %v numeric %v", i, analytic[i], numeric))
		}
	}
	if len(failures) > 1+probed/100 {
		for _, f := range failures[:min(5, len(failures))] {
			t.Error(f)
		}
		t.Fatalf("%d/%d LSTM parameters failed gradient check", len(failures), probed)
	}
}
