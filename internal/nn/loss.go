package nn

import (
	"fmt"
	"math"

	"gtopkssgd/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// against integer labels and the gradient dL/dlogits (softmax − one-hot,
// divided by the batch size). Numerically stabilised by the max-logit
// shift; loss is accumulated in float64.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	if len(labels) != logits.Rows {
		panic(fmt.Sprintf("nn: %d labels for %d logit rows", len(labels), logits.Rows))
	}
	grad := tensor.NewMatrix(logits.Rows, logits.Cols)
	var loss float64
	invN := 1 / float32(logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		label := labels[i]
		if label < 0 || label >= logits.Cols {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, logits.Cols))
		}
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		loss += logSum - float64(row[label]-maxv)
		grow := grad.Row(i)
		for j, v := range row {
			p := float32(math.Exp(float64(v-maxv)) / sum)
			if j == label {
				p--
			}
			grow[j] = p * invN
		}
	}
	return loss / float64(logits.Rows), grad
}

// Accuracy returns the fraction of rows whose arg-max logit matches the
// label.
func Accuracy(logits *tensor.Matrix, labels []int) float64 {
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < logits.Rows; i++ {
		if tensor.ArgMax(logits.Row(i)) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}
