// Package nn is the minimal-but-real deep-learning substrate this
// reproduction trains with: hand-written forward/backward layers (dense,
// convolution, pooling, batch normalisation, activations), a softmax
// cross-entropy loss, and a sequential network container that exposes its
// parameters and gradients as single flat float32 vectors.
//
// The flat layout is the load-bearing design decision: the paper's
// algorithms (Top-k, gTop-k) sparsify the *whole-model* gradient vector
// G ∈ R^m, so the network binds every layer's weights into one
// contiguous slice that plugs directly into core.Trainer and the
// sparsifying aggregators. Every backward pass is verified against
// numerical differentiation in the tests, standing in for the autograd
// the paper gets from PyTorch.
package nn

import (
	"fmt"

	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/tensor"
)

// Layer is one differentiable stage of a sequential network operating on
// row-major batches (rows = samples).
type Layer interface {
	// Forward consumes a (batch × in) matrix and returns (batch × out).
	// train toggles training-time behaviour (batch-norm statistics).
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	// Backward consumes dL/dout and returns dL/din, accumulating
	// parameter gradients into the bound gradient views.
	Backward(dout *tensor.Matrix) *tensor.Matrix
	// ParamCount returns the number of scalar parameters.
	ParamCount() int
	// Bind attaches the layer's parameter and gradient storage. Both
	// slices have exactly ParamCount elements and are views into the
	// network's flat buffers.
	Bind(params, grads []float32)
	// Init writes initial parameter values through the bound views.
	Init(src *prng.Source)
	// Name describes the layer for summaries.
	Name() string
}

// Network is a sequential container owning flat parameter/gradient
// buffers that all layers alias.
type Network struct {
	layers []Layer
	params []float32
	grads  []float32
}

// NewNetwork assembles layers and binds their parameters into flat
// buffers, in declaration order.
func NewNetwork(layers ...Layer) *Network {
	total := 0
	for _, l := range layers {
		total += l.ParamCount()
	}
	n := &Network{
		layers: layers,
		params: make([]float32, total),
		grads:  make([]float32, total),
	}
	off := 0
	for _, l := range layers {
		c := l.ParamCount()
		l.Bind(n.params[off:off+c], n.grads[off:off+c])
		off += c
	}
	return n
}

// Init initialises every layer's parameters from a deterministic seed.
// All workers must use the same seed so replicas start identical.
func (n *Network) Init(seed uint64) {
	src := prng.New(seed)
	for i, l := range n.layers {
		l.Init(src.Split(uint64(i)))
	}
}

// Parameters returns the flat parameter vector (aliased by all layers;
// mutating it changes the model, which is exactly how the distributed
// trainer applies updates).
func (n *Network) Parameters() []float32 { return n.params }

// Gradients returns the flat gradient vector accumulated by Backward.
func (n *Network) Gradients() []float32 { return n.grads }

// ParamCount returns the total number of scalar parameters m.
func (n *Network) ParamCount() int { return len(n.params) }

// ZeroGrad clears the accumulated gradients.
func (n *Network) ZeroGrad() {
	for i := range n.grads {
		n.grads[i] = 0
	}
}

// Forward runs the batch through every layer.
func (n *Network) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range n.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates dL/dlogits back through every layer, accumulating
// parameter gradients.
func (n *Network) Backward(dout *tensor.Matrix) {
	n.BackwardWithHook(dout, nil)
}

// BackwardWithHook runs Backward, invoking ready(lo, hi) as soon as the
// flat-gradient range [lo, hi) of each parameterised layer is final. The
// backward pass visits layers in reverse, so ranges are announced from
// the tail of the flat vector toward the head — exactly the order
// wait-free backpropagation needs to start aggregating a layer's gradient
// while earlier layers are still computing. A nil hook degrades to plain
// Backward.
func (n *Network) BackwardWithHook(dout *tensor.Matrix, ready func(lo, hi int)) {
	hi := len(n.grads)
	for i := len(n.layers) - 1; i >= 0; i-- {
		l := n.layers[i]
		dout = l.Backward(dout)
		if c := l.ParamCount(); c > 0 {
			if ready != nil {
				ready(hi-c, hi)
			}
			hi -= c
		}
	}
}

// LayerBounds returns cumulative parameter offsets of the layers that
// own parameters (zero-parameter layers such as activations and pooling
// are skipped): bounds[0] = 0, bounds[L] = ParamCount(). This is the
// segment structure consumed by layer-wise sparsification.
func (n *Network) LayerBounds() []int {
	bounds := []int{0}
	off := 0
	for _, l := range n.layers {
		c := l.ParamCount()
		if c == 0 {
			continue
		}
		off += c
		bounds = append(bounds, off)
	}
	return bounds
}

// Summary returns a human-readable per-layer parameter breakdown.
func (n *Network) Summary() string {
	s := ""
	for _, l := range n.layers {
		s += fmt.Sprintf("%-24s %8d params\n", l.Name(), l.ParamCount())
	}
	s += fmt.Sprintf("%-24s %8d params total\n", "", n.ParamCount())
	return s
}
