package nn

import (
	"fmt"
	"math"

	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/tensor"
)

// Conv2D is a 2-D convolution over channel-major flattened images: each
// input row is a C×H×W volume stored as [c][y][x]; each output row is an
// OutC×OH×OW volume in the same layout. Implemented with im2col so the
// inner loop is a dense matrix multiplication, the standard CPU strategy.
type Conv2D struct {
	InC, H, W int
	OutC      int
	K         int // square kernel size
	Stride    int
	Pad       int
	OH, OW    int

	w, b   []float32 // w is (InC·K·K)×OutC row-major; b has OutC entries
	gw, gb []float32

	// forward cache (per batch)
	cols []*tensor.Matrix // im2col matrices, one per sample
	rows int
}

// NewConv2D creates a convolution layer. Pad/Stride follow the usual
// conv semantics; OH = (H+2Pad−K)/Stride+1.
func NewConv2D(inC, h, w, outC, k, stride, pad int) *Conv2D {
	if inC < 1 || h < 1 || w < 1 || outC < 1 || k < 1 || stride < 1 || pad < 0 {
		panic(fmt.Sprintf("nn: Conv2D(%d,%d,%d,%d,%d,%d,%d): invalid geometry",
			inC, h, w, outC, k, stride, pad))
	}
	oh := (h+2*pad-k)/stride + 1
	ow := (w+2*pad-k)/stride + 1
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: Conv2D: kernel %d does not fit %dx%d input", k, h, w))
	}
	return &Conv2D{InC: inC, H: h, W: w, OutC: outC, K: k, Stride: stride, Pad: pad, OH: oh, OW: ow}
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv %dx%dx%d→%dx%dx%d k=%d", c.InC, c.H, c.W, c.OutC, c.OH, c.OW, c.K)
}

// ParamCount implements Layer.
func (c *Conv2D) ParamCount() int { return c.InC*c.K*c.K*c.OutC + c.OutC }

// Bind implements Layer.
func (c *Conv2D) Bind(params, grads []float32) {
	wlen := c.InC * c.K * c.K * c.OutC
	c.w, c.b = params[:wlen], params[wlen:]
	c.gw, c.gb = grads[:wlen], grads[wlen:]
}

// Init implements Layer with He initialisation over the fan-in.
func (c *Conv2D) Init(src *prng.Source) {
	fanIn := float64(c.InC * c.K * c.K)
	std := float32(math.Sqrt(2 / fanIn))
	for i := range c.w {
		c.w[i] = std * float32(src.NormFloat64())
	}
	for i := range c.b {
		c.b[i] = 0
	}
}

// im2col lowers one sample into a (OH·OW)×(InC·K·K) patch matrix.
func (c *Conv2D) im2col(img []float32) *tensor.Matrix {
	cols := tensor.NewMatrix(c.OH*c.OW, c.InC*c.K*c.K)
	for oy := 0; oy < c.OH; oy++ {
		for ox := 0; ox < c.OW; ox++ {
			row := cols.Row(oy*c.OW + ox)
			p := 0
			for ch := 0; ch < c.InC; ch++ {
				base := ch * c.H * c.W
				for ky := 0; ky < c.K; ky++ {
					iy := oy*c.Stride + ky - c.Pad
					for kx := 0; kx < c.K; kx++ {
						ix := ox*c.Stride + kx - c.Pad
						if iy >= 0 && iy < c.H && ix >= 0 && ix < c.W {
							row[p] = img[base+iy*c.W+ix]
						}
						p++
					}
				}
			}
		}
	}
	return cols
}

// col2im scatters patch-space gradients back into image space.
func (c *Conv2D) col2im(dcols *tensor.Matrix, dimg []float32) {
	for oy := 0; oy < c.OH; oy++ {
		for ox := 0; ox < c.OW; ox++ {
			row := dcols.Row(oy*c.OW + ox)
			p := 0
			for ch := 0; ch < c.InC; ch++ {
				base := ch * c.H * c.W
				for ky := 0; ky < c.K; ky++ {
					iy := oy*c.Stride + ky - c.Pad
					for kx := 0; kx < c.K; kx++ {
						ix := ox*c.Stride + kx - c.Pad
						if iy >= 0 && iy < c.H && ix >= 0 && ix < c.W {
							dimg[base+iy*c.W+ix] += row[p]
						}
						p++
					}
				}
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	if x.Cols != c.InC*c.H*c.W {
		panic(fmt.Sprintf("nn: conv forward: %d cols, want %d", x.Cols, c.InC*c.H*c.W))
	}
	c.rows = x.Rows
	c.cols = make([]*tensor.Matrix, x.Rows)
	out := tensor.NewMatrix(x.Rows, c.OutC*c.OH*c.OW)
	w := tensor.FromSlice(c.InC*c.K*c.K, c.OutC, c.w)
	prod := tensor.NewMatrix(c.OH*c.OW, c.OutC)
	for i := 0; i < x.Rows; i++ {
		cols := c.im2col(x.Row(i))
		c.cols[i] = cols
		tensor.MatMul(prod, cols, w) // (OH·OW)×OutC
		orow := out.Row(i)
		for yx := 0; yx < c.OH*c.OW; yx++ {
			prow := prod.Row(yx)
			for f := 0; f < c.OutC; f++ {
				orow[f*c.OH*c.OW+yx] = prow[f] + c.b[f]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Matrix) *tensor.Matrix {
	w := tensor.FromSlice(c.InC*c.K*c.K, c.OutC, c.w)
	gw := tensor.FromSlice(c.InC*c.K*c.K, c.OutC, c.gw)
	din := tensor.NewMatrix(c.rows, c.InC*c.H*c.W)
	doutM := tensor.NewMatrix(c.OH*c.OW, c.OutC)
	dcols := tensor.NewMatrix(c.OH*c.OW, c.InC*c.K*c.K)
	gwLocal := tensor.NewMatrix(c.InC*c.K*c.K, c.OutC)
	for i := 0; i < c.rows; i++ {
		drow := dout.Row(i)
		for yx := 0; yx < c.OH*c.OW; yx++ {
			mrow := doutM.Row(yx)
			for f := 0; f < c.OutC; f++ {
				mrow[f] = drow[f*c.OH*c.OW+yx]
				c.gb[f] += mrow[f]
			}
		}
		tensor.MatMulTransA(gwLocal, c.cols[i], doutM) // dW = colsᵀ·dout
		tensor.AddInto(gw.Data, gwLocal.Data)
		tensor.MatMulTransB(dcols, doutM, w) // dcols = dout·Wᵀ
		c.col2im(dcols, din.Row(i))
	}
	return din
}

// MaxPool2 is a 2×2, stride-2 max pooling layer over channel-major
// volumes. H and W must be even.
type MaxPool2 struct {
	C, H, W int
	OH, OW  int

	argmax []int32 // flat index chosen per output element, per batch
	rows   int
}

// NewMaxPool2 creates the pooling layer for C×H×W inputs.
func NewMaxPool2(c, h, w int) *MaxPool2 {
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("nn: MaxPool2 needs even dims, got %dx%d", h, w))
	}
	return &MaxPool2{C: c, H: h, W: w, OH: h / 2, OW: w / 2}
}

// Name implements Layer.
func (m *MaxPool2) Name() string { return fmt.Sprintf("maxpool2 %dx%dx%d", m.C, m.H, m.W) }

// ParamCount implements Layer.
func (m *MaxPool2) ParamCount() int { return 0 }

// Bind implements Layer.
func (m *MaxPool2) Bind(_, _ []float32) {}

// Init implements Layer.
func (m *MaxPool2) Init(_ *prng.Source) {}

// Forward implements Layer.
func (m *MaxPool2) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	if x.Cols != m.C*m.H*m.W {
		panic(fmt.Sprintf("nn: maxpool forward: %d cols, want %d", x.Cols, m.C*m.H*m.W))
	}
	m.rows = x.Rows
	outCols := m.C * m.OH * m.OW
	out := tensor.NewMatrix(x.Rows, outCols)
	m.argmax = make([]int32, x.Rows*outCols)
	for i := 0; i < x.Rows; i++ {
		xr, or := x.Row(i), out.Row(i)
		for ch := 0; ch < m.C; ch++ {
			for oy := 0; oy < m.OH; oy++ {
				for ox := 0; ox < m.OW; ox++ {
					bestIdx := ch*m.H*m.W + (2*oy)*m.W + 2*ox
					best := xr[bestIdx]
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							idx := ch*m.H*m.W + (2*oy+dy)*m.W + 2*ox + dx
							if xr[idx] > best {
								best, bestIdx = xr[idx], idx
							}
						}
					}
					oidx := ch*m.OH*m.OW + oy*m.OW + ox
					or[oidx] = best
					m.argmax[i*outCols+oidx] = int32(bestIdx)
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2) Backward(dout *tensor.Matrix) *tensor.Matrix {
	din := tensor.NewMatrix(m.rows, m.C*m.H*m.W)
	outCols := m.C * m.OH * m.OW
	for i := 0; i < m.rows; i++ {
		dr, ir := dout.Row(i), din.Row(i)
		for o := 0; o < outCols; o++ {
			ir[m.argmax[i*outCols+o]] += dr[o]
		}
	}
	return din
}

// GlobalAvgPool averages each channel over its spatial extent, producing
// one value per channel (the classifier head input in the ResNet models).
type GlobalAvgPool struct {
	C, H, W int
	rows    int
}

// NewGlobalAvgPool creates the pooling layer for C×H×W inputs.
func NewGlobalAvgPool(c, h, w int) *GlobalAvgPool {
	return &GlobalAvgPool{C: c, H: h, W: w}
}

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return fmt.Sprintf("gap %dx%dx%d", g.C, g.H, g.W) }

// ParamCount implements Layer.
func (g *GlobalAvgPool) ParamCount() int { return 0 }

// Bind implements Layer.
func (g *GlobalAvgPool) Bind(_, _ []float32) {}

// Init implements Layer.
func (g *GlobalAvgPool) Init(_ *prng.Source) {}

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	if x.Cols != g.C*g.H*g.W {
		panic(fmt.Sprintf("nn: gap forward: %d cols, want %d", x.Cols, g.C*g.H*g.W))
	}
	g.rows = x.Rows
	hw := g.H * g.W
	out := tensor.NewMatrix(x.Rows, g.C)
	for i := 0; i < x.Rows; i++ {
		xr, or := x.Row(i), out.Row(i)
		for ch := 0; ch < g.C; ch++ {
			var s float32
			for p := 0; p < hw; p++ {
				s += xr[ch*hw+p]
			}
			or[ch] = s / float32(hw)
		}
	}
	return out
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(dout *tensor.Matrix) *tensor.Matrix {
	hw := g.H * g.W
	din := tensor.NewMatrix(g.rows, g.C*g.H*g.W)
	inv := 1 / float32(hw)
	for i := 0; i < g.rows; i++ {
		dr, ir := dout.Row(i), din.Row(i)
		for ch := 0; ch < g.C; ch++ {
			v := dr[ch] * inv
			for p := 0; p < hw; p++ {
				ir[ch*hw+p] = v
			}
		}
	}
	return din
}
