// Package models assembles the reproduction's model zoo: CPU-scaled
// analogues of the five DNNs the paper trains (Table III), plus the
// metadata of the paper's full-size models used by the analytic
// communication benchmarks.
//
// The "*Sim" constructors preserve each model's architectural character —
// VGG-16 and AlexNet are dominated by huge fully connected layers (low
// compute-to-parameter ratio → communication-bound), the ResNets are
// convolutional with few parameters (compute-bound), the LSTM is
// recurrent — while shrinking parameter counts ~100-1000× so convergence
// experiments run in CPU-minutes. The density ρ and worker counts P seen
// by the sparsification algorithms match the paper exactly.
package models

import (
	"fmt"

	"gtopkssgd/internal/core"
	"gtopkssgd/internal/data"
	"gtopkssgd/internal/nn"
)

// Classifier couples a network with the input geometry it expects.
type Classifier struct {
	Name    string
	Net     *nn.Network
	C, H, W int
	Classes int
}

// Dim returns the flattened input dimension.
func (c *Classifier) Dim() int { return c.C * c.H * c.W }

// VGG16Sim is the fully-connected-heavy stand-in for VGG-16 on CIFAR-10:
// one small conv stage followed by large dense layers (~200k params, 97%
// of them in dense layers — matching VGG's parameter distribution).
func VGG16Sim() *Classifier {
	const c, h, w, classes = 3, 8, 8, 10
	net := nn.NewNetwork(
		nn.NewConv2D(c, h, w, 8, 3, 1, 1),
		nn.NewReLU(),
		nn.NewMaxPool2(8, h, w), // 8x4x4
		nn.NewDense(8*4*4, 1024),
		nn.NewReLU(),
		nn.NewDense(1024, 64),
		nn.NewReLU(),
		nn.NewDense(64, classes),
	)
	return &Classifier{Name: "vgg16sim", Net: net, C: c, H: h, W: w, Classes: classes}
}

// ResNet20Sim is the compute-heavy, parameter-light stand-in for
// ResNet-20 on CIFAR-10: stacked 3×3 residual blocks and a tiny
// classifier head (~15k params).
func ResNet20Sim() *Classifier {
	const c, h, w, classes = 3, 8, 8, 10
	const f = 16
	block := func() nn.Layer {
		return nn.NewResidual(
			nn.NewConv2D(f, h, w, f, 3, 1, 1),
			nn.NewReLU(),
			nn.NewConv2D(f, h, w, f, 3, 1, 1),
		)
	}
	net := nn.NewNetwork(
		nn.NewConv2D(c, h, w, f, 3, 1, 1),
		nn.NewReLU(),
		block(),
		block(),
		block(),
		nn.NewGlobalAvgPool(f, h, w),
		nn.NewDense(f, classes),
	)
	return &Classifier{Name: "resnet20sim", Net: net, C: c, H: h, W: w, Classes: classes}
}

// AlexNetSim is the stand-in for AlexNet on ImageNet: a couple of large
// kernels plus dominant dense layers (~300k params), on a 16×16 input
// standing in for 224×224.
func AlexNetSim() *Classifier {
	const c, h, w, classes = 3, 16, 16, 10
	net := nn.NewNetwork(
		nn.NewConv2D(c, h, w, 8, 5, 1, 2),
		nn.NewReLU(),
		nn.NewMaxPool2(8, h, w), // 8x8x8
		nn.NewConv2D(8, 8, 8, 16, 3, 1, 1),
		nn.NewReLU(),
		nn.NewMaxPool2(16, 8, 8), // 16x4x4
		nn.NewDense(16*4*4, 1024),
		nn.NewReLU(),
		nn.NewDense(1024, 96),
		nn.NewReLU(),
		nn.NewDense(96, classes),
	)
	return &Classifier{Name: "alexnetsim", Net: net, C: c, H: h, W: w, Classes: classes}
}

// ResNet50Sim is the deeper residual stand-in for ResNet-50 (~40k
// params across 6 residual blocks with a width step).
func ResNet50Sim() *Classifier {
	const c, h, w, classes = 3, 8, 8, 10
	const f = 24
	block := func() nn.Layer {
		return nn.NewResidual(
			nn.NewConv2D(f, h, w, f, 3, 1, 1),
			nn.NewReLU(),
			nn.NewConv2D(f, h, w, f, 3, 1, 1),
		)
	}
	net := nn.NewNetwork(
		nn.NewConv2D(c, h, w, f, 3, 1, 1),
		nn.NewReLU(),
		block(), block(), block(), block(), block(), block(),
		nn.NewGlobalAvgPool(f, h, w),
		nn.NewDense(f, classes),
	)
	return &Classifier{Name: "resnet50sim", Net: net, C: c, H: h, W: w, Classes: classes}
}

// MLP returns a small generic multi-layer perceptron, used by the
// quickstart example and unit tests.
func MLP(in, hidden, classes int) *Classifier {
	net := nn.NewNetwork(
		nn.NewDense(in, hidden),
		nn.NewReLU(),
		nn.NewDense(hidden, classes),
	)
	return &Classifier{Name: "mlp", Net: net, C: 1, H: 1, W: in, Classes: classes}
}

// LSTMPTBSim returns the LSTM language model standing in for the paper's
// 2-layer LSTM-PTB (vocab 64, embedding 24, hidden 48; ~17k params).
func LSTMPTBSim() *nn.LSTMLM {
	return nn.NewLSTMLM(64, 24, 48)
}

// GradFn adapts a classifier + dataset into the core.GradFn the
// distributed trainer consumes: each call draws the (iter, rank) batch,
// runs forward/backward and copies the flat gradient out.
//
// The weights slice passed by the trainer MUST alias the network's
// parameter buffer (pass cls.Net.Parameters() to core.NewTrainer); the
// adapter enforces this so updates applied by the trainer are visible to
// the next forward pass.
func GradFn(cls *Classifier, ds *data.Images, rank, workers, batch int) core.GradFn {
	params := cls.Net.Parameters()
	return func(iter int, weights, grad []float32) float64 {
		if len(weights) == 0 || len(params) == 0 || &weights[0] != &params[0] {
			panic("models: trainer weights must alias Net.Parameters()")
		}
		x, labels := ds.Batch(iter, rank, workers, batch)
		cls.Net.ZeroGrad()
		logits := cls.Net.Forward(x, true)
		loss, dlogits := nn.SoftmaxCrossEntropy(logits, labels)
		cls.Net.Backward(dlogits)
		copy(grad, cls.Net.Gradients())
		return loss
	}
}

// StreamGradFn adapts a classifier + dataset into a core.StreamGradFn
// for the bucketed, overlapped aggregation pipeline: the backward pass
// announces each layer's flat-gradient range the moment it is final
// (tail-first, the wait-free backpropagation order), letting the trainer
// hand gradient buckets to the aggregator while earlier layers are still
// computing. Same aliasing contract as GradFn.
func StreamGradFn(cls *Classifier, ds *data.Images, rank, workers, batch int) core.StreamGradFn {
	params := cls.Net.Parameters()
	grads := cls.Net.Gradients()
	return func(iter int, weights, grad []float32, ready func(lo, hi int)) float64 {
		if len(weights) == 0 || len(params) == 0 || &weights[0] != &params[0] {
			panic("models: trainer weights must alias Net.Parameters()")
		}
		x, labels := ds.Batch(iter, rank, workers, batch)
		cls.Net.ZeroGrad()
		logits := cls.Net.Forward(x, true)
		loss, dlogits := nn.SoftmaxCrossEntropy(logits, labels)
		cls.Net.BackwardWithHook(dlogits, func(lo, hi int) {
			copy(grad[lo:hi], grads[lo:hi])
			ready(lo, hi)
		})
		return loss
	}
}

// LSTMGradFn adapts the LSTM language model + text corpus into a
// core.GradFn with the same aliasing contract as GradFn.
func LSTMGradFn(m *nn.LSTMLM, corpus *data.Text, rank, workers, batch, seqLen int) core.GradFn {
	params := m.Parameters()
	return func(iter int, weights, grad []float32) float64 {
		if len(weights) == 0 || &weights[0] != &params[0] {
			panic("models: trainer weights must alias Parameters()")
		}
		inputs, targets := corpus.Batch(iter, rank, workers, batch, seqLen)
		m.ZeroGrad()
		loss, err := m.Loss(inputs, targets)
		if err != nil {
			panic(fmt.Sprintf("models: lstm loss: %v", err))
		}
		copy(grad, m.Gradients())
		return loss
	}
}

// EvalAccuracy measures held-out top-1 accuracy over batches mini-batches.
func EvalAccuracy(cls *Classifier, ds *data.Images, batches, batch int) float64 {
	if batches < 1 {
		return 0
	}
	var total float64
	for i := 0; i < batches; i++ {
		x, labels := ds.EvalBatch(i, batch)
		logits := cls.Net.Forward(x, false)
		total += nn.Accuracy(logits, labels)
	}
	return total / float64(batches)
}

// PaperModel records the full-size models of the paper's Table III/IV,
// used by the analytic benchmarks (Figs 9-11, Table IV) where only the
// parameter count m and the compute/compression time scales matter.
type PaperModel struct {
	Name string
	// Params is m, the number of trainable parameters.
	Params int
	// BatchPerWorker is b in Table III.
	BatchPerWorker int
	// TfTb is the per-iteration forward+backward time on one worker.
	// Calibrated so the compute/communication ratios (and therefore the
	// scaling-efficiency shapes of Fig. 10) match the paper's cluster;
	// see EXPERIMENTS.md §Calibration.
	TfTbMs float64
	// CompressMs is the local top-k selection time t_compr. (the paper
	// measures GPU top-k to be expensive, comparable to compute for the
	// fc-heavy models, Fig. 11).
	CompressMs float64
}

// PaperModels returns the four CNNs of Table IV in paper order.
func PaperModels() []PaperModel {
	return []PaperModel{
		// VGG-16 on CIFAR-10: 14.7M params, fc-dominated.
		{Name: "VGG-16", Params: 14_700_000, BatchPerWorker: 128, TfTbMs: 310, CompressMs: 300},
		// ResNet-20 on CIFAR-10: 0.27M params, compute-dominated.
		{Name: "ResNet-20", Params: 270_000, BatchPerWorker: 128, TfTbMs: 133, CompressMs: 8},
		// AlexNet on ImageNet: 61M params, the most fc-heavy.
		{Name: "AlexNet", Params: 61_000_000, BatchPerWorker: 64, TfTbMs: 600, CompressMs: 1200},
		// ResNet-50 on ImageNet: 25.5M params.
		{Name: "ResNet-50", Params: 25_500_000, BatchPerWorker: 256, TfTbMs: 5000, CompressMs: 500},
	}
}
