package models

import (
	"context"
	"testing"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/data"
	"gtopkssgd/internal/nn"
)

func TestModelShapesAndForward(t *testing.T) {
	ds, err := data.NewImages(1, 10, 3, 8, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	dsAlex, err := data.NewImages(1, 10, 3, 16, 16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		cls *Classifier
		ds  *data.Images
	}{
		{VGG16Sim(), ds},
		{ResNet20Sim(), ds},
		{ResNet50Sim(), ds},
		{AlexNetSim(), dsAlex},
		{MLP(3*8*8, 32, 10), ds},
	}
	for _, tt := range tests {
		t.Run(tt.cls.Name, func(t *testing.T) {
			tt.cls.Net.Init(42)
			if tt.cls.Net.ParamCount() < 100 {
				t.Fatalf("suspiciously few params: %d", tt.cls.Net.ParamCount())
			}
			x, labels := tt.ds.Batch(0, 0, 1, 4)
			logits := tt.cls.Net.Forward(x, true)
			if logits.Rows != 4 || logits.Cols != tt.cls.Classes {
				t.Fatalf("logits %dx%d", logits.Rows, logits.Cols)
			}
			loss, dlogits := nn.SoftmaxCrossEntropy(logits, labels)
			if loss <= 0 || loss > 20 {
				t.Fatalf("initial loss %v out of sane range", loss)
			}
			tt.cls.Net.ZeroGrad()
			tt.cls.Net.Backward(dlogits)
			var nonzero int
			for _, g := range tt.cls.Net.Gradients() {
				if g != 0 {
					nonzero++
				}
			}
			if nonzero < tt.cls.Net.ParamCount()/10 {
				t.Fatalf("only %d/%d gradients nonzero", nonzero, tt.cls.Net.ParamCount())
			}
		})
	}
}

func TestVGGIsDenseHeavyResNetIsNot(t *testing.T) {
	vgg, rn := VGG16Sim(), ResNet20Sim()
	if vgg.Net.ParamCount() < 5*rn.Net.ParamCount() {
		t.Fatalf("vgg %d params should dwarf resnet %d (fc-heavy vs conv)",
			vgg.Net.ParamCount(), rn.Net.ParamCount())
	}
}

func TestSingleWorkerTrainingReducesLoss(t *testing.T) {
	ds, err := data.NewImages(5, 10, 3, 8, 8, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	cls := MLP(ds.Dim(), 32, 10)
	cls.Net.Init(7)
	results, err := core.RunCluster(context.Background(),
		core.ClusterConfig{Workers: 1, Steps: 60},
		func(rank int, comm *collective.Comm) (*core.Trainer, error) {
			agg := core.NewDenseAggregator(comm, cls.Net.ParamCount())
			return core.NewTrainer(core.TrainConfig{LR: 0.1, Momentum: 0.9}, agg,
				cls.Net.Parameters(), GradFn(cls, ds, rank, 1, 16))
		})
	if err != nil {
		t.Fatal(err)
	}
	first := avg(results[0].Losses[:10])
	last := avg(results[0].Losses[50:])
	if last > first*0.7 {
		t.Fatalf("loss did not drop: first %v last %v", first, last)
	}
}

func TestDistributedGTopKTrainingOnCNN(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker CNN training is slow")
	}
	ds, err := data.NewImages(5, 10, 3, 8, 8, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	const p, steps = 4, 40
	results, err := core.RunCluster(context.Background(),
		core.ClusterConfig{Workers: p, Steps: steps},
		func(rank int, comm *collective.Comm) (*core.Trainer, error) {
			cls := ResNet20Sim()
			cls.Net.Init(99) // same seed everywhere: identical replicas
			dim := cls.Net.ParamCount()
			agg, err := core.NewGTopKAggregator(comm, dim, core.DensityToK(dim, 0.01))
			if err != nil {
				return nil, err
			}
			return core.NewTrainer(core.TrainConfig{LR: 0.05, Momentum: 0.9}, agg,
				cls.Net.Parameters(), GradFn(cls, ds, rank, p, 8))
		})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < p; r++ {
		for i := range results[0].FinalWeights {
			if results[r].FinalWeights[i] != results[0].FinalWeights[i] {
				t.Fatalf("replica %d diverged at weight %d", r, i)
			}
		}
	}
	first := avg(results[0].Losses[:5])
	last := avg(results[0].Losses[steps-5:])
	if last > first {
		t.Fatalf("gTop-k CNN training diverged: first %v last %v", first, last)
	}
}

func TestLSTMTrainingReducesLoss(t *testing.T) {
	corpus, err := data.NewText(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	m := LSTMPTBSim()
	m.Init(11)
	const steps = 120
	results, err := core.RunCluster(context.Background(),
		core.ClusterConfig{Workers: 1, Steps: steps},
		func(rank int, comm *collective.Comm) (*core.Trainer, error) {
			agg := core.NewDenseAggregator(comm, m.ParamCount())
			return core.NewTrainer(core.TrainConfig{LR: 2.0, GradClip: 0.25}, agg,
				m.Parameters(), LSTMGradFn(m, corpus, rank, 1, 16, 16))
		})
	if err != nil {
		t.Fatal(err)
	}
	first := avg(results[0].Losses[:5])
	last := avg(results[0].Losses[steps-10:])
	if last > first*0.9 {
		t.Fatalf("LSTM loss did not drop: first %v last %v", first, last)
	}
	if pp := nn.Perplexity(last); pp >= 64 {
		t.Fatalf("perplexity %v not below vocab size", pp)
	}
}

func TestEvalAccuracyAboveChance(t *testing.T) {
	ds, err := data.NewImages(5, 10, 3, 8, 8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cls := MLP(ds.Dim(), 48, 10)
	cls.Net.Init(13)
	results, err := core.RunCluster(context.Background(),
		core.ClusterConfig{Workers: 1, Steps: 150},
		func(rank int, comm *collective.Comm) (*core.Trainer, error) {
			agg := core.NewDenseAggregator(comm, cls.Net.ParamCount())
			return core.NewTrainer(core.TrainConfig{LR: 0.1, Momentum: 0.9}, agg,
				cls.Net.Parameters(), GradFn(cls, ds, rank, 1, 16))
		})
	if err != nil {
		t.Fatal(err)
	}
	_ = results
	acc := EvalAccuracy(cls, ds, 5, 32)
	if acc < 0.3 {
		t.Fatalf("eval accuracy %v barely above chance", acc)
	}
}

func TestPaperModelsMetadata(t *testing.T) {
	pms := PaperModels()
	if len(pms) != 4 {
		t.Fatalf("expected 4 paper models, got %d", len(pms))
	}
	byName := map[string]PaperModel{}
	for _, pm := range pms {
		if pm.Params <= 0 || pm.TfTbMs <= 0 || pm.BatchPerWorker <= 0 {
			t.Errorf("%s: non-positive metadata", pm.Name)
		}
		byName[pm.Name] = pm
	}
	if byName["AlexNet"].Params <= byName["VGG-16"].Params {
		t.Error("AlexNet must have the most parameters")
	}
	if byName["ResNet-20"].Params >= byName["VGG-16"].Params {
		t.Error("ResNet-20 must be the smallest model")
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
