// Package models provides the concrete networks the experiments train —
// CPU-scaled stand-ins for the paper's VGG-16, ResNet-20/50, AlexNet and
// LSTM-PTB, plus a small MLP — and the adapters that turn a model +
// dataset into the gradient functions the distributed trainer consumes
// (GradFn for whole-gradient steps, StreamGradFn for the bucketed
// overlapped pipeline). It also records the full-size PaperModel
// parameters (Table III/IV) used by the analytic benchmarks.
package models
