package nn

import (
	"math"
	"strings"
	"testing"

	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/tensor"
)

func TestNetworkParamBinding(t *testing.T) {
	net := NewNetwork(NewDense(3, 4), NewReLU(), NewDense(4, 2))
	wantParams := 3*4 + 4 + 4*2 + 2
	if net.ParamCount() != wantParams {
		t.Fatalf("ParamCount = %d, want %d", net.ParamCount(), wantParams)
	}
	net.Init(1)
	// Mutating the flat parameter vector must change layer behaviour:
	// zero everything and the output must be zero.
	for i := range net.Parameters() {
		net.Parameters()[i] = 0
	}
	x := tensor.FromSlice(1, 3, []float32{1, 2, 3})
	out := net.Forward(x, false)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatalf("zeroed network produced %v", out.Data)
		}
	}
}

func TestNetworkInitDeterministic(t *testing.T) {
	a := NewNetwork(NewDense(5, 5))
	b := NewNetwork(NewDense(5, 5))
	a.Init(9)
	b.Init(9)
	for i := range a.Parameters() {
		if a.Parameters()[i] != b.Parameters()[i] {
			t.Fatal("same seed produced different parameters")
		}
	}
	c := NewNetwork(NewDense(5, 5))
	c.Init(10)
	same := true
	for i := range a.Parameters() {
		if a.Parameters()[i] != c.Parameters()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical parameters")
	}
}

func TestNetworkZeroGrad(t *testing.T) {
	net := NewNetwork(NewDense(2, 2))
	net.Init(1)
	x := tensor.FromSlice(1, 2, []float32{1, 1})
	out := net.Forward(x, true)
	_, dl := SoftmaxCrossEntropy(out, []int{0})
	net.Backward(dl)
	net.ZeroGrad()
	for _, g := range net.Gradients() {
		if g != 0 {
			t.Fatal("ZeroGrad left nonzero gradient")
		}
	}
}

func TestLayerBounds(t *testing.T) {
	net := NewNetwork(NewDense(3, 4), NewReLU(), NewDense(4, 2), NewTanh())
	got := net.LayerBounds()
	want := []int{0, 16, 26}
	if len(got) != len(want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
}

func TestSummaryListsLayers(t *testing.T) {
	net := NewNetwork(NewDense(3, 4), NewReLU())
	s := net.Summary()
	if !strings.Contains(s, "dense 3→4") || !strings.Contains(s, "relu") {
		t.Fatalf("summary missing layers:\n%s", s)
	}
	if !strings.Contains(s, "16 params") {
		t.Fatalf("summary missing counts:\n%s", s)
	}
}

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.FromSlice(1, 4, []float32{0, 0, 0, 0})
	loss, grad := SoftmaxCrossEntropy(logits, []int{2})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want ln4", loss)
	}
	// Gradient: p - onehot = [.25 .25 -.75 .25].
	want := []float32{0.25, 0.25, -0.75, 0.25}
	for i, v := range grad.Data {
		if math.Abs(float64(v-want[i])) > 1e-6 {
			t.Fatalf("grad = %v, want %v", grad.Data, want)
		}
	}
}

func TestSoftmaxCrossEntropyNumericallyStable(t *testing.T) {
	logits := tensor.FromSlice(1, 2, []float32{1000, -1000})
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %v", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
	for _, v := range grad.Data {
		if math.IsNaN(float64(v)) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestSoftmaxCrossEntropyPanicsOnBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad label did not panic")
		}
	}()
	SoftmaxCrossEntropy(tensor.NewMatrix(1, 3), []int{7})
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(3, 2, []float32{
		2, 1, // -> 0
		0, 5, // -> 1
		3, 4, // -> 1
	})
	if got := Accuracy(logits, []int{0, 1, 0}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
	if Accuracy(tensor.NewMatrix(0, 2), nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestPerplexity(t *testing.T) {
	if got := Perplexity(math.Log(64)); math.Abs(got-64) > 1e-9 {
		t.Fatalf("Perplexity(ln64) = %v", got)
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm(2)
	net := NewNetwork(bn)
	net.Init(1)
	src := prng.New(2)
	// Train on shifted data to move the running statistics.
	for i := 0; i < 50; i++ {
		x := tensor.NewMatrix(8, 2)
		for j := range x.Data {
			x.Data[j] = 5 + float32(src.NormFloat64())
		}
		net.Forward(x, true)
	}
	// Eval on the training distribution: output should be ~N(0,1).
	x := tensor.NewMatrix(64, 2)
	for j := range x.Data {
		x.Data[j] = 5 + float32(src.NormFloat64())
	}
	out := net.Forward(x, false)
	var mean float64
	for _, v := range out.Data {
		mean += float64(v)
	}
	mean /= float64(len(out.Data))
	if math.Abs(mean) > 0.3 {
		t.Fatalf("eval-mode mean %v; running stats not applied", mean)
	}
}

func TestReLUForwardBackwardShapes(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice(1, 4, []float32{-1, 2, -3, 4})
	out := r.Forward(x, true)
	want := []float32{0, 2, 0, 4}
	for i, v := range out.Data {
		if v != want[i] {
			t.Fatalf("relu = %v", out.Data)
		}
	}
	din := r.Backward(tensor.FromSlice(1, 4, []float32{1, 1, 1, 1}))
	wantD := []float32{0, 1, 0, 1}
	for i, v := range din.Data {
		if v != wantD[i] {
			t.Fatalf("relu backward = %v", din.Data)
		}
	}
}

func TestDensePanicsOnBadShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad input width did not panic")
		}
	}()
	d := NewDense(3, 2)
	net := NewNetwork(d)
	net.Init(1)
	d.Forward(tensor.NewMatrix(1, 5), true)
}

func TestConvGeometry(t *testing.T) {
	c := NewConv2D(3, 8, 8, 16, 3, 1, 1)
	if c.OH != 8 || c.OW != 8 {
		t.Fatalf("same-pad conv output %dx%d", c.OH, c.OW)
	}
	c2 := NewConv2D(1, 6, 6, 2, 3, 2, 0)
	if c2.OH != 2 || c2.OW != 2 {
		t.Fatalf("strided conv output %dx%d", c2.OH, c2.OW)
	}
}

func TestConvPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kernel larger than input did not panic")
		}
	}()
	NewConv2D(1, 2, 2, 1, 5, 1, 0)
}

func TestMaxPoolRequiresEvenDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd pooling dims did not panic")
		}
	}()
	NewMaxPool2(1, 3, 4)
}

func TestLSTMRejectsBadInput(t *testing.T) {
	m := NewLSTMLM(4, 2, 3)
	m.Init(1)
	if _, err := m.Loss(nil, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := m.Loss([][]int{{0, 1}}, [][]int{{0}}); err == nil {
		t.Error("ragged targets accepted")
	}
	if _, err := m.Loss([][]int{{9}}, [][]int{{0}}); err == nil {
		t.Error("out-of-vocab token accepted")
	}
	if _, err := m.Loss([][]int{{0}}, [][]int{{9}}); err == nil {
		t.Error("out-of-vocab target accepted")
	}
}

func TestLSTMDeterministicLoss(t *testing.T) {
	mk := func() float64 {
		m := NewLSTMLM(8, 4, 6)
		m.Init(3)
		m.ZeroGrad()
		loss, err := m.Loss([][]int{{1, 2, 3}}, [][]int{{2, 3, 4}})
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	if mk() != mk() {
		t.Fatal("LSTM loss not deterministic")
	}
}

func TestResidualRequiresShapePreservingBody(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape-changing body did not panic")
		}
	}()
	r := NewResidual(NewDense(4, 6))
	net := NewNetwork(r)
	net.Init(1)
	r.Forward(tensor.NewMatrix(1, 4), true)
}
