package nn

import (
	"fmt"

	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/tensor"
)

// Residual wraps a body of layers with an identity skip connection and a
// trailing ReLU: y = relu(body(x) + x). The body must preserve shape
// (as the 3×3 same-padded convolutions in the ResNet models do).
type Residual struct {
	body []Layer
	mask []bool
	n    int
}

// NewResidual creates a residual block around body.
func NewResidual(body ...Layer) *Residual {
	n := 0
	for _, l := range body {
		n += l.ParamCount()
	}
	return &Residual{body: body, n: n}
}

// Name implements Layer.
func (r *Residual) Name() string { return fmt.Sprintf("residual (%d inner)", len(r.body)) }

// ParamCount implements Layer.
func (r *Residual) ParamCount() int { return r.n }

// Bind implements Layer by distributing the views across the body.
func (r *Residual) Bind(params, grads []float32) {
	off := 0
	for _, l := range r.body {
		c := l.ParamCount()
		l.Bind(params[off:off+c], grads[off:off+c])
		off += c
	}
}

// Init implements Layer.
func (r *Residual) Init(src *prng.Source) {
	for i, l := range r.body {
		l.Init(src.Split(uint64(i)))
	}
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	y := x
	for _, l := range r.body {
		y = l.Forward(y, train)
	}
	if y.Rows != x.Rows || y.Cols != x.Cols {
		panic(fmt.Sprintf("nn: residual body changed shape %dx%d → %dx%d",
			x.Rows, x.Cols, y.Rows, y.Cols))
	}
	out := y.Clone()
	tensor.AddInto(out.Data, x.Data)
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *Residual) Backward(dout *tensor.Matrix) *tensor.Matrix {
	dsum := dout.Clone()
	for i := range dsum.Data {
		if !r.mask[i] {
			dsum.Data[i] = 0
		}
	}
	dbody := dsum
	for i := len(r.body) - 1; i >= 0; i-- {
		dbody = r.body[i].Backward(dbody)
	}
	din := dbody.Clone()
	tensor.AddInto(din.Data, dsum.Data) // skip path
	return din
}
