// Package clitest re-executes a test binary as the command under test,
// so every cmd/ package can smoke-test its own main — flag validation,
// exit codes, usage output — without building binaries or refactoring
// main into a library. The pattern: the package's TestMain calls
// InterceptMain() first; when it returns true the process is a child
// spawned by Run and must invoke the real main().
//
//	func TestMain(m *testing.M) {
//		if clitest.InterceptMain() {
//			main()
//			os.Exit(0)
//		}
//		os.Exit(m.Run())
//	}
package clitest

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"testing"
	"time"
)

// envKey marks a child process as the command under test.
const envKey = "GTOPK_CLI_UNDER_TEST"

// InterceptMain reports whether this process was spawned by Run and
// should execute the package's main() instead of the test runner.
func InterceptMain() bool { return os.Getenv(envKey) == "1" }

// Result captures one CLI invocation.
type Result struct {
	Stdout string
	Stderr string
	Code   int
}

// Run re-executes the current test binary with the given command-line
// arguments and the under-test marker set, returning its output and
// exit code. The child is killed after 30 seconds — smoke tests
// exercise flag validation, not training runs.
func Run(t *testing.T, args ...string) Result {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), envKey+"=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("clitest: start: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	var err error
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		<-done
		t.Fatalf("clitest: %v timed out (smoke tests must fail fast)", args)
	}
	res := Result{Stdout: stdout.String(), Stderr: stderr.String()}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		res.Code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("clitest: run %v: %v", args, err)
	}
	return res
}
