package bufpool

import (
	"sync"
	"testing"
)

func TestGetLength(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 1000, 1 << 20} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) returned len %d", n, len(b))
		}
		Put(b)
	}
}

func TestPutGetReusesCapacity(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops puts at random; reuse is not deterministic")
	}
	b := Get(1000)
	base := &b[0]
	Put(b)
	c := Get(900) // same class (1024): must reuse the pooled buffer
	if &c[0] != base {
		t.Fatalf("Get after Put did not reuse the pooled buffer")
	}
	Put(c)
}

func TestClassSeparation(t *testing.T) {
	small := Get(64)
	Put(small)
	big := Get(1 << 16)
	if cap(big) < 1<<16 {
		t.Fatalf("Get(1<<16) returned cap %d", cap(big))
	}
	Put(big)
}

func TestPutEdgeCases(t *testing.T) {
	Put(nil)               // no-op
	Put(make([]byte, 3))   // below min class: dropped
	Put(make([]byte, 100)) // non-power-of-two cap: filed under floor class
	b := Get(65)
	if len(b) != 65 {
		t.Fatalf("Get(65) returned len %d", len(b))
	}
}

// TestConcurrent hammers the pool from many goroutines; run with -race.
func TestConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := Get(64 + (w*131+i*17)%4096)
				b[0] = byte(w)
				Put(b)
			}
		}(w)
	}
	wg.Wait()
}
