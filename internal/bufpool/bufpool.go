// Package bufpool is the process-wide recycling pool for wire buffers.
// The sparse codec draws its encode buffers here, the TCP transport draws
// its read-side frames here, and both return dead buffers here — so one
// buffer cycles through encode → send → receive → merge → encode without
// ever hitting the garbage collector in steady state. A single shared
// pool (rather than one per package) is what closes that cycle: the
// consumer of a buffer is usually a different package than its producer.
//
// Ownership convention: a buffer has exactly one owner at a time. Put
// hands ownership to the pool; the caller must hold the only live
// reference. Get hands ownership to the caller. Whoever consumes a
// buffer last is responsible for returning it (or leaking it to the GC,
// which is always safe, merely slower).
package bufpool

import (
	"math/bits"
	"sync"
)

// minClass is the smallest pooled capacity class (64 bytes); anything
// smaller is cheaper to allocate than to pool. maxClass caps pooled
// buffers at 1 GiB, matching the transport's frame-size limit.
const (
	minClass = 6
	maxClass = 30
)

// pools[c] holds buffers whose capacity is at least 1<<c bytes, so a
// Get(n) with class(n) == c is always satisfied by any pooled entry.
// Size classes keep a huge dense-gradient frame from being handed to a
// caller that needs 100 bytes (and vice versa: a tiny buffer from
// satisfying, then silently re-allocating, a huge request).
var pools [maxClass + 1]sync.Pool // each stores *[]byte

// boxes recycles the *[]byte headers that carry buffers through pools.
// Without it every Put would heap-allocate a fresh box for the slice
// header, quietly re-introducing the per-frame allocation this package
// exists to remove.
var boxes sync.Pool // stores *[]byte with nil contents

// class returns the smallest class whose buffers can hold n bytes.
func class(n int) int {
	c := bits.Len(uint(n - 1)) // ceil(log2 n) for n > 1
	if n <= 1<<minClass {
		return minClass
	}
	return c
}

// Get returns a length-n byte slice, reusing pooled capacity when
// available. The slice contents are unspecified (callers overwrite).
func Get(n int) []byte {
	if n > 1<<maxClass {
		return make([]byte, n)
	}
	c := class(n)
	if bp, _ := pools[c].Get().(*[]byte); bp != nil {
		buf := *bp
		*bp = nil
		boxes.Put(bp)
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]byte, n, 1<<c)
}

// Put recycles a dead buffer. The buffer is filed under the largest
// class its capacity fully covers, so a later Get of that class cannot
// receive an undersized buffer. Nil and tiny slices are dropped.
func Put(buf []byte) {
	c := cap(buf)
	if c < 1<<minClass || c > 1<<maxClass {
		return
	}
	cls := bits.Len(uint(c)) - 1 // floor(log2 cap)
	bp, _ := boxes.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	*bp = buf[:0]
	pools[cls].Put(bp)
}
