//go:build race

package bufpool

// raceEnabled gates assertions that sync.Pool's race-mode behaviour
// (random put drops) makes non-deterministic.
const raceEnabled = true
