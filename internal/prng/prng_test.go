package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: sequences diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d/100 outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	collisions := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("child streams collided %d times", collisions)
	}
}

func TestSplitSameStreamDifferentCalls(t *testing.T) {
	// Repeated Split with the same id must advance the parent and give a
	// fresh stream each time.
	parent := New(7)
	c1 := parent.Split(3)
	c2 := parent.Split(3)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("two Split(3) calls produced identical streams")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(5)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32() = %v out of [0,1)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(23)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("Shuffle produced duplicate %d: %v", v, xs)
		}
		seen[v] = true
	}
}

func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		s := New(seed)
		v := s.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPermBijective(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.NormFloat64()
	}
}
