// Package prng provides a small, fast, deterministic pseudo-random number
// generator used everywhere randomness is needed in this repository.
//
// Reproducibility is a hard requirement for the convergence experiments:
// identical seeds must yield identical mini-batch sequences, identical
// weight initialisations and therefore identical loss curves on every run
// and on every transport. The standard library's math/rand would work, but
// a local implementation keeps the sequence stable across Go releases and
// lets us derive independent per-worker streams cheaply.
//
// The generator is splitmix64 for seeding feeding xoshiro256** for the
// stream, the construction recommended by Blackman & Vigna.
package prng

import "math"

// Source is a deterministic random number generator. It is NOT safe for
// concurrent use; derive one Source per goroutine with Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, guaranteeing a
// well-mixed internal state even for small consecutive seeds.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Split derives an independent child stream. The child is seeded from the
// parent's next output mixed with the given stream id, so
// Split(i) != Split(j) for i != j and repeated calls advance the parent.
func (s *Source) Split(stream uint64) *Source {
	return New(s.Uint64() ^ (stream+1)*0xd1342543de82ef95)
}

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256**).
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0,
// mirroring math/rand semantics (callers always pass positive lengths).
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniformly distributed float32 in [0, 1).
func (s *Source) Float32() float32 {
	return float32(s.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal variate using the polar
// Box-Muller method (no cached second value, keeping Split semantics
// simple and state minimal).
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return hi, lo
}
