package transport

import (
	"context"
	"fmt"
	"sort"
)

// groupView is a rank-remapping window onto a subset of a parent
// fabric's ranks: local rank i of the view is world rank ranks[i] of the
// parent. It carries no wire state of its own — every Send/Recv
// delegates to the parent endpoint with the destination/source
// translated — so two views over disjoint rank sets may use the same
// tags without interfering (messages are addressed by (src, dst, tag)
// and the world-rank pairs never collide).
//
// The view forwards the parent's optional capabilities (pooled sends,
// synchronous-send and private-recv semantics, negotiated wire version)
// by querying the parent dynamically, so a view over a TCP endpoint
// keeps the TCP hot path and a view over an in-process endpoint keeps
// the aliasing rules.
type groupView struct {
	parent Conn
	ranks  []int // ascending world ranks; local i <-> world ranks[i]
	local  int   // this endpoint's local rank within the view
}

// GroupView wraps parent in a communicator window over the given world
// ranks (which must be ascending, within the parent's world, and contain
// the parent's own rank). The returned Conn's Rank/Size are local to the
// view. Closing the view is a no-op: the parent owns the wire.
func GroupView(parent Conn, ranks []int) (Conn, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("transport: group view over zero ranks")
	}
	if !sort.IntsAreSorted(ranks) {
		return nil, fmt.Errorf("transport: group view ranks %v not ascending", ranks)
	}
	local := -1
	for i, r := range ranks {
		if r < 0 || r >= parent.Size() {
			return nil, fmt.Errorf("transport: group view rank %d outside parent world [0,%d)", r, parent.Size())
		}
		if i > 0 && ranks[i-1] == r {
			return nil, fmt.Errorf("transport: group view rank %d duplicated", r)
		}
		if r == parent.Rank() {
			local = i
		}
	}
	if local < 0 {
		return nil, fmt.Errorf("transport: group view %v excludes own rank %d", ranks, parent.Rank())
	}
	return &groupView{parent: parent, ranks: append([]int(nil), ranks...), local: local}, nil
}

// Rank implements Conn: this endpoint's rank within the view.
func (g *groupView) Rank() int { return g.local }

// Size implements Conn: the number of ranks in the view.
func (g *groupView) Size() int { return len(g.ranks) }

// world translates a local view rank to the parent's world rank.
func (g *groupView) world(local int) (int, error) {
	if local < 0 || local >= len(g.ranks) {
		return 0, fmt.Errorf("transport: group rank %d outside view of %d", local, len(g.ranks))
	}
	return g.ranks[local], nil
}

// Send implements Conn, translating dst to the parent's world rank.
func (g *groupView) Send(ctx context.Context, dst, tag int, payload []byte) error {
	w, err := g.world(dst)
	if err != nil {
		return err
	}
	return g.parent.Send(ctx, w, tag, payload)
}

// SendPooled forwards pool-owned payloads to the parent's pooled path
// when it has one (and its plain Send otherwise, exactly like the
// package-level SendPooled helper).
func (g *groupView) SendPooled(ctx context.Context, dst, tag int, payload []byte) error {
	w, err := g.world(dst)
	if err != nil {
		return err
	}
	return SendPooled(ctx, g.parent, w, tag, payload)
}

// SendVec forwards a frame batch to the parent's vectored path when it
// has one (and a plain per-frame Send loop otherwise, exactly like the
// package-level SendVec helper), translating dst to the world rank.
func (g *groupView) SendVec(ctx context.Context, dst, tag int, frames [][]byte) error {
	w, err := g.world(dst)
	if err != nil {
		return err
	}
	return SendVec(ctx, g.parent, w, tag, frames)
}

// Recv implements Conn, translating src to the parent's world rank.
func (g *groupView) Recv(ctx context.Context, src, tag int) ([]byte, error) {
	w, err := g.world(src)
	if err != nil {
		return nil, err
	}
	return g.parent.Recv(ctx, w, tag)
}

// Close implements Conn as a no-op: the parent endpoint owns the wire
// and may back several concurrent views.
func (g *groupView) Close() error { return nil }

// SendIsSynchronous reports the parent's plain-send consumption rule.
func (g *groupView) SendIsSynchronous() bool { return SendConsumedOnReturn(g.parent) }

// RecvIsPrivate reports the parent's payload-ownership rule.
func (g *groupView) RecvIsPrivate() bool { return PrivateRecv(g.parent) }

// NegotiatedWireVersion reports the parent fabric's negotiated sparse
// wire version — the view changes addressing, never framing.
func (g *groupView) NegotiatedWireVersion() byte { return NegotiatedWireVersion(g.parent) }
