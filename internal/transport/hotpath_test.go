package transport

import (
	"context"
	"testing"

	"gtopkssgd/internal/bufpool"
)

// TestPrivateRecvCapability pins the ownership contract the aggregation
// hot path relies on: TCP payloads are private per-receiver copies,
// in-process payloads are the sender's slice and must not be recycled
// after forwarding.
func TestPrivateRecvCapability(t *testing.T) {
	tcp, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	if !PrivateRecv(tcp.Conn(0)) {
		t.Fatal("TCP conn should report private receives")
	}
	if !SendConsumedOnReturn(tcp.Conn(0)) {
		t.Fatal("TCP conn should report synchronous sends (payload copied before Send returns)")
	}
	inproc, err := NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	defer inproc.Close()
	if PrivateRecv(inproc.Conn(0)) {
		t.Fatal("in-process conn must NOT report private receives (payloads alias the sender's buffer)")
	}
	if SendConsumedOnReturn(inproc.Conn(0)) {
		t.Fatal("in-process conn must NOT report synchronous sends (the receiver gets the same slice)")
	}
}

// TestSendPooledRoundTrip sends pooled payloads over both fabrics and
// checks the receiver sees the correct bytes. On TCP the buffer is
// recycled inside Send; on inproc ownership passes to the receiver.
func TestSendPooledRoundTrip(t *testing.T) {
	for _, fabName := range []string{"inproc", "tcp"} {
		var fab Fabric
		var err error
		if fabName == "tcp" {
			fab, err = NewTCP(2)
		} else {
			fab, err = NewInProc(2)
		}
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for i := 0; i < 5; i++ {
			payload := bufpool.Get(128)
			for j := range payload {
				payload[j] = byte(i + j)
			}
			if err := SendPooled(ctx, fab.Conn(0), 1, 7, payload); err != nil {
				t.Fatalf("%s: send %d: %v", fabName, i, err)
			}
			got, err := fab.Conn(1).Recv(ctx, 0, 7)
			if err != nil {
				t.Fatalf("%s: recv %d: %v", fabName, i, err)
			}
			if len(got) != 128 {
				t.Fatalf("%s: recv %d: got %d bytes", fabName, i, len(got))
			}
			for j := range got {
				if got[j] != byte(i+j) {
					t.Fatalf("%s: recv %d: corrupt byte %d", fabName, i, j)
				}
			}
			bufpool.Put(got) // receiver owns (and may recycle) its payload
		}
		fab.Close()
	}
}

// TestTCPOptionsNagle exercises the DisableNoDelay path end to end (the
// socket option must not break framing).
func TestTCPOptionsNagle(t *testing.T) {
	fab, err := NewTCPWithOptions(2, TCPOptions{DisableNoDelay: true, WriteBufBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	ctx := context.Background()
	if err := fab.Conn(0).Send(ctx, 1, 3, []byte("nagle on")); err != nil {
		t.Fatal(err)
	}
	got, err := fab.Conn(1).Recv(ctx, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "nagle on" {
		t.Fatalf("got %q", got)
	}
}
