package transport

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"gtopkssgd/internal/bufpool"
)

// TestSendVecDeliversInOrder checks the vectored-send contract on both
// fabrics: a batch arrives as len(frames) consecutive receives in slice
// order, interleaving correctly with plain Sends before and after.
func TestSendVecDeliversInOrder(t *testing.T) {
	for _, fm := range fabricMakers {
		t.Run(fm.name, func(t *testing.T) {
			f, err := fm.make(2)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ctx := context.Background()

			if _, ok := f.Conn(0).(VectoredSender); !ok {
				t.Fatalf("%s endpoint does not implement VectoredSender", fm.name)
			}
			if err := f.Conn(0).Send(ctx, 1, 5, []byte("head")); err != nil {
				t.Fatal(err)
			}
			batch := [][]byte{[]byte("frame-0"), []byte("frame-1"), []byte("frame-2")}
			if err := SendVec(ctx, f.Conn(0), 1, 5, batch); err != nil {
				t.Fatal(err)
			}
			if err := f.Conn(0).Send(ctx, 1, 5, []byte("tail")); err != nil {
				t.Fatal(err)
			}

			want := []string{"head", "frame-0", "frame-1", "frame-2", "tail"}
			for i, w := range want {
				got, err := f.Conn(1).Recv(ctx, 0, 5)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != w {
					t.Fatalf("recv %d = %q, want %q", i, got, w)
				}
			}
		})
	}
}

// TestSendVecEmptyBatch pins the degenerate case: a zero-frame batch is
// a validated no-op (peer checks still apply, nothing is delivered).
func TestSendVecEmptyBatch(t *testing.T) {
	for _, fm := range fabricMakers {
		t.Run(fm.name, func(t *testing.T) {
			f, err := fm.make(2)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ctx := context.Background()
			if err := SendVec(ctx, f.Conn(0), 1, 3, nil); err != nil {
				t.Fatal(err)
			}
			if err := SendVec(ctx, f.Conn(0), 0, 3, nil); err != ErrSelfSend {
				t.Fatalf("self-send: got %v, want ErrSelfSend", err)
			}
			if err := SendVec(ctx, f.Conn(0), 7, 3, nil); err == nil {
				t.Fatal("out-of-range dst accepted")
			}
			// Prove nothing was delivered: a sentinel frame arrives first.
			if err := f.Conn(0).Send(ctx, 1, 3, []byte("only")); err != nil {
				t.Fatal(err)
			}
			got, err := f.Conn(1).Recv(ctx, 0, 3)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "only" {
				t.Fatalf("recv = %q, want %q", got, "only")
			}
		})
	}
}

// TestSendVecPooledRecycles exercises the pooled vectored path on both
// fabrics: frames drawn from the pool round-trip intact (TCP recycles at
// the sender, in-process at the receiver per the ownership rules).
func TestSendVecPooledRecycles(t *testing.T) {
	for _, fm := range fabricMakers {
		t.Run(fm.name, func(t *testing.T) {
			f, err := fm.make(2)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ctx := context.Background()

			for round := 0; round < 8; round++ {
				frames := make([][]byte, 4)
				for i := range frames {
					frames[i] = bufpool.Get(32)
					for j := range frames[i] {
						frames[i][j] = byte(round*16 + i)
					}
				}
				if err := SendVecPooled(ctx, f.Conn(0), 1, 9, frames); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 4; i++ {
					got, err := f.Conn(1).Recv(ctx, 0, 9)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != 32 || got[0] != byte(round*16+i) || got[31] != byte(round*16+i) {
						t.Fatalf("round %d frame %d corrupted: len=%d first=%d", round, i, len(got), got[0])
					}
					if PrivateRecv(f.Conn(1)) {
						bufpool.Put(got)
					}
				}
			}
		})
	}
}

// TestSendVecThroughGroupView checks dst translation of the forwarded
// vectored capability: local rank addressing inside a view lands on the
// right world rank with batch order preserved.
func TestSendVecThroughGroupView(t *testing.T) {
	for _, fm := range fabricMakers {
		t.Run(fm.name, func(t *testing.T) {
			f, err := fm.make(4)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ctx := context.Background()

			// View over world ranks {1, 3}: local 0 -> world 1, local 1 -> world 3.
			v0, err := GroupView(f.Conn(1), []int{1, 3})
			if err != nil {
				t.Fatal(err)
			}
			v1, err := GroupView(f.Conn(3), []int{1, 3})
			if err != nil {
				t.Fatal(err)
			}
			batch := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
			if err := SendVec(ctx, v0, 1, 2, batch); err != nil {
				t.Fatal(err)
			}
			for _, w := range []string{"a", "bb", "ccc"} {
				got, err := v1.Recv(ctx, 0, 2)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != w {
					t.Fatalf("view recv = %q, want %q", got, w)
				}
			}
		})
	}
}

// TestSendVecFallbackThroughFaultInjector pins the design decision that
// the fault injector does NOT implement VectoredSender: the helper falls
// back to per-frame sends, so per-link fault ordinals advance once per
// frame and a batch interleaves with the link's FIFO like plain sends.
func TestSendVecFallbackThroughFaultInjector(t *testing.T) {
	inner, err := NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	inj := NewFaultInjector(inner, FaultPlan{Seed: 11, Delay: time.Millisecond})
	defer inj.Close()
	ctx := context.Background()

	if _, ok := inj.Conn(0).(VectoredSender); ok {
		t.Fatal("fault injector must not short-circuit vectored sends")
	}
	var batch [][]byte
	for i := 0; i < 5; i++ {
		batch = append(batch, []byte(fmt.Sprintf("f%d", i)))
	}
	if err := SendVec(ctx, inj.Conn(0), 1, 4, batch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := inj.Conn(1).Recv(ctx, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("f%d", i); string(got) != want {
			t.Fatalf("recv %d = %q, want %q (fault detour reordered the batch)", i, got, want)
		}
	}
}

// TestSendVecLargeBatchTCP pushes a batch past the link's write buffer so
// the bufio path has to spill mid-batch, verifying frame integrity when
// one flush cannot cover the whole batch.
func TestSendVecLargeBatchTCP(t *testing.T) {
	f, err := NewTCPWithOptions(2, TCPOptions{WriteBufBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()

	const frames, frameLen = 6, 3 << 10 // 18 KiB total through a 4 KiB buffer
	batch := make([][]byte, frames)
	for i := range batch {
		batch[i] = bytes.Repeat([]byte{byte('A' + i)}, frameLen)
	}
	done := make(chan error, 1)
	go func() { done <- SendVec(ctx, f.Conn(0), 1, 6, batch) }()
	for i := 0; i < frames; i++ {
		got, err := f.Conn(1).Recv(ctx, 0, 6)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != frameLen || got[0] != byte('A'+i) || got[frameLen-1] != byte('A'+i) {
			t.Fatalf("frame %d corrupted", i)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
