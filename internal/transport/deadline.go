package transport

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrDeadline is returned (wrapped) by RecvTagContext when every attempt
// of a deadline-bounded receive expired without a matching frame.
var ErrDeadline = errors.New("transport: recv deadline exceeded")

// RetryPolicy bounds a deadline-aware receive: each attempt waits at
// most Timeout; expired attempts back off for Backoff and re-arm, up to
// Attempts total. Retrying the same (src, tag) receive is meaningful on
// this transport because delayed or retransmitted frames stay queued
// under their tag — a later attempt picks up exactly the frame the
// earlier one missed.
type RetryPolicy struct {
	// Timeout is the per-attempt deadline (must be > 0).
	Timeout time.Duration
	// Attempts is the total number of attempts (values < 1 behave as 1).
	Attempts int
	// Backoff is the pause between attempts.
	Backoff time.Duration
}

// RecvTagContext receives from (src, tag) on c under pol: the per-round
// deadline/retry primitive quorum collectives build on. It returns the
// payload of the first attempt that lands a frame; when all attempts
// expire it returns an error wrapping ErrDeadline. Cancellation of ctx
// aborts immediately with ctx's error.
func RecvTagContext(ctx context.Context, c Conn, src, tag int, pol RetryPolicy) ([]byte, error) {
	attempts := pol.Attempts
	if attempts < 1 {
		attempts = 1
	}
	if pol.Timeout <= 0 {
		return nil, fmt.Errorf("transport: recv retry: non-positive timeout %v", pol.Timeout)
	}
	for i := 0; i < attempts; i++ {
		actx, cancel := context.WithTimeout(ctx, pol.Timeout)
		payload, err := c.Recv(actx, src, tag)
		cancel()
		if err == nil {
			return payload, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		if i < attempts-1 && pol.Backoff > 0 {
			select {
			case <-time.After(pol.Backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	return nil, fmt.Errorf("%w: no frame from rank %d tag %d after %d attempts of %v",
		ErrDeadline, src, tag, attempts, pol.Timeout)
}
