package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// freePorts reserves n distinct loopback ports by briefly listening and
// releasing them (standard test trick; a tiny race window is acceptable).
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close() //nolint:errcheck // releasing reserved ports
	}
	return addrs
}

func TestTCPWorkerMeshPingAll(t *testing.T) {
	const n = 4
	addrs := freePorts(t, n)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	conns := make([]Conn, n)
	var setup sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		setup.Add(1)
		go func(rank int) {
			defer setup.Done()
			// Stagger start-up to exercise the dial retry path.
			time.Sleep(time.Duration(rank) * 15 * time.Millisecond)
			c, err := NewTCPWorker(ctx, rank, addrs)
			conns[rank], errs[rank] = c, err
		}(r)
	}
	setup.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer func() {
		for _, c := range conns {
			c.Close() //nolint:errcheck // test teardown
		}
	}()

	// All-to-all exchange over the mesh.
	var wg sync.WaitGroup
	opErrs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for dst := 0; dst < n; dst++ {
				if dst == rank {
					continue
				}
				if err := conns[rank].Send(ctx, dst, 1, []byte{byte(rank)}); err != nil {
					opErrs[rank] = err
					return
				}
			}
			for src := 0; src < n; src++ {
				if src == rank {
					continue
				}
				msg, err := conns[rank].Recv(ctx, src, 1)
				if err != nil {
					opErrs[rank] = err
					return
				}
				if len(msg) != 1 || int(msg[0]) != src {
					opErrs[rank] = fmt.Errorf("bad payload %v from %d", msg, src)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range opErrs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestTCPWorkerSingleRank(t *testing.T) {
	c, err := NewTCPWorker(context.Background(), 0, []string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Size() != 1 || c.Rank() != 0 {
		t.Fatalf("size=%d rank=%d", c.Size(), c.Rank())
	}
}

func TestTCPWorkerValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := NewTCPWorker(ctx, 0, nil); err == nil {
		t.Error("empty address list accepted")
	}
	if _, err := NewTCPWorker(ctx, 5, []string{"a", "b"}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestTCPWorkerDialTimeout(t *testing.T) {
	// Rank 1 dials rank 0 which never listens: must give up on ctx expiry.
	addrs := freePorts(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := NewTCPWorker(ctx, 1, addrs)
	if err == nil {
		t.Fatal("mesh setup succeeded without peer")
	}
	if !errors.Is(err, context.DeadlineExceeded) && time.Since(start) > 5*time.Second {
		t.Fatalf("did not fail promptly: %v after %v", err, time.Since(start))
	}
}
