package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"gtopkssgd/internal/bufpool"
)

// TCPFabric connects n ranks through a full mesh of TCP connections.
// Frames are length-prefixed; each endpoint runs one reader goroutine per
// peer connection that demultiplexes frames into the same mailbox
// structure the in-process fabric uses, so matching semantics are
// identical across fabrics.
//
// Frame layout (little-endian): uint32 tag | uint32 len | len bytes.
//
// Hot-path properties:
//   - each link owns a buffered writer, so a frame costs two buffer
//     writes plus one explicit flush (one syscall) instead of a
//     frame-assembly copy — and a sender streaming chunked payloads
//     coalesces them into few syscalls;
//   - TCP_NODELAY is enabled by default (TCPOptions.DisableNoDelay turns
//     Nagle back on): the collectives exchange small latency-critical
//     frames, exactly the traffic Nagle's algorithm penalises;
//   - the read loop draws its payload frames from the shared bufpool and
//     hands them to the application, which releases them after the merge
//     consumes them (sparse.PutBuffer) — closing the buffer cycle.
type TCPFabric struct {
	conns []*tcpConn
}

var _ Fabric = (*TCPFabric)(nil)

// TCPOptions tunes the socket behaviour of a TCP fabric or mesh.
type TCPOptions struct {
	// DisableNoDelay re-enables Nagle's algorithm (TCP_NODELAY off).
	// The zero value — NoDelay on — is right for the collectives' small
	// synchronous frames; disabling is exposed for bandwidth experiments
	// over links where coalescing wins.
	DisableNoDelay bool
	// WriteBufBytes sizes each link's buffered writer; 0 means the
	// 64 KiB default, which holds a full rho=0.001 frame for models up to
	// ~8M parameters.
	WriteBufBytes int
	// WireVersion is the sparse wire-codec version this endpoint offers
	// (0 or WireV1 = legacy flat frames, WireV2 = delta/varint frames).
	// Meshes built by JoinMesh carry the offer in the handshake and
	// settle on the minimum any member offers; fabrics built in-process
	// (NewTCPWithOptions) simply adopt the configured version, since all
	// ranks share one options value.
	WireVersion byte
}

// defaultWriteBuf is the per-link write-buffer size when unset.
const defaultWriteBuf = 64 << 10

func (o TCPOptions) writeBuf() int {
	if o.WriteBufBytes > 0 {
		return o.WriteBufBytes
	}
	return defaultWriteBuf
}

// apply sets the per-socket options on a freshly established connection.
func (o TCPOptions) apply(sock net.Conn) {
	if tc, ok := sock.(*net.TCPConn); ok {
		tc.SetNoDelay(!o.DisableNoDelay) //nolint:errcheck // best-effort socket tuning
	}
}

// NewTCP creates a TCP fabric with n ranks listening on ephemeral
// loopback ports and fully meshed, with default options (TCP_NODELAY
// on). A rank dials every lower-numbered rank and identifies itself with
// a 4-byte hello, mirroring how MPI wires up a communicator over sockets.
func NewTCP(n int) (*TCPFabric, error) { return NewTCPWithOptions(n, TCPOptions{}) }

// NewTCPWithOptions is NewTCP with explicit socket options.
func NewTCPWithOptions(n int, opts TCPOptions) (*TCPFabric, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: fabric size %d < 1", n)
	}
	listeners := make([]net.Listener, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll(listeners[:i])
			return nil, fmt.Errorf("transport: listen for rank %d: %w", i, err)
		}
		listeners[i] = ln
	}

	f := &TCPFabric{conns: make([]*tcpConn, n)}
	for i := range f.conns {
		f.conns[i] = &tcpConn{
			rank:  i,
			size:  n,
			opts:  opts,
			peers: make([]*peerLink, n),
			box:   newMailbox(n),
			wire:  normalizeWire(opts.WireVersion),
		}
	}

	var (
		wg       sync.WaitGroup
		acceptMu sync.Mutex
		errs     []error
	)
	// Accept side: rank i accepts n-1-i connections from higher ranks.
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for a := 0; a < n-1-i; a++ {
				sock, err := listeners[i].Accept()
				if err != nil {
					acceptMu.Lock()
					errs = append(errs, fmt.Errorf("rank %d accept: %w", i, err))
					acceptMu.Unlock()
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(sock, hello[:]); err != nil {
					acceptMu.Lock()
					errs = append(errs, fmt.Errorf("rank %d hello: %w", i, err))
					acceptMu.Unlock()
					return
				}
				peer := int(binary.LittleEndian.Uint32(hello[:]))
				f.conns[i].attach(peer, sock)
			}
		}(i)
	}
	// Dial side: rank j dials all ranks i < j.
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for i := 0; i < j; i++ {
				sock, err := net.Dial("tcp", listeners[i].Addr().String())
				if err != nil {
					acceptMu.Lock()
					errs = append(errs, fmt.Errorf("rank %d dial %d: %w", j, i, err))
					acceptMu.Unlock()
					return
				}
				var hello [4]byte
				binary.LittleEndian.PutUint32(hello[:], uint32(j))
				if _, err := sock.Write(hello[:]); err != nil {
					acceptMu.Lock()
					errs = append(errs, fmt.Errorf("rank %d hello to %d: %w", j, i, err))
					acceptMu.Unlock()
					return
				}
				f.conns[j].attach(i, sock)
			}
		}(j)
	}
	wg.Wait()
	closeAll(listeners)
	if len(errs) > 0 {
		f.Close() //nolint:errcheck // already failing; best-effort cleanup
		return nil, fmt.Errorf("transport: mesh setup: %v", errs[0])
	}
	for _, c := range f.conns {
		c.startReaders()
	}
	return f, nil
}

// Conn returns rank's endpoint.
func (f *TCPFabric) Conn(rank int) Conn { return f.conns[rank] }

// Size returns the number of ranks.
func (f *TCPFabric) Size() int { return len(f.conns) }

// Close closes every endpoint and underlying socket.
func (f *TCPFabric) Close() error {
	var first error
	for _, c := range f.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func closeAll(lns []net.Listener) {
	for _, ln := range lns {
		if ln != nil {
			ln.Close() //nolint:errcheck // teardown path
		}
	}
}

// peerLink is one TCP connection plus its buffered writer and a write
// lock (frames from concurrent senders must not interleave).
type peerLink struct {
	mu   sync.Mutex
	sock net.Conn
	w    *bufio.Writer
}

type tcpConn struct {
	rank, size int
	opts       TCPOptions
	peers      []*peerLink
	box        *mailbox

	mu      sync.Mutex
	readers sync.WaitGroup
	closed  bool
	// wire is the sparse wire version in force for the whole mesh: the
	// minimum of this endpoint's offer and every per-link negotiation
	// outcome (a full mesh makes that the global minimum at every rank).
	wire byte
}

var (
	_ Conn            = (*tcpConn)(nil)
	_ PooledSender    = (*tcpConn)(nil)
	_ VectoredSender  = (*tcpConn)(nil)
	_ privateReceiver = (*tcpConn)(nil)
)

func (c *tcpConn) attach(peer int, sock net.Conn) {
	c.opts.apply(sock)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peers[peer] = &peerLink{
		sock: sock,
		w:    bufio.NewWriterSize(sock, c.opts.writeBuf()),
	}
}

func (c *tcpConn) startReaders() {
	for peer, link := range c.peers {
		if link == nil {
			continue
		}
		c.readers.Add(1)
		go c.readLoop(peer, link.sock)
	}
}

// readLoop demultiplexes incoming frames from one peer into the mailbox.
// Payload buffers come from the shared bufpool; ownership passes to the
// receiving application, which recycles them once consumed. The loop
// exits on any read error (remote close, local close, corrupt frame).
func (c *tcpConn) readLoop(peer int, sock net.Conn) {
	defer c.readers.Done()
	rd := bufio.NewReaderSize(sock, defaultWriteBuf)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			return
		}
		tag := int(binary.LittleEndian.Uint32(hdr[0:4]))
		n := binary.LittleEndian.Uint32(hdr[4:8])
		const maxFrame = 1 << 30
		if n > maxFrame {
			return
		}
		payload := bufpool.Get(int(n))
		if _, err := io.ReadFull(rd, payload); err != nil {
			return
		}
		if err := c.box.deposit(mailKey{src: peer, tag: tag}, payload); err != nil {
			return
		}
	}
}

func (c *tcpConn) Rank() int { return c.rank }
func (c *tcpConn) Size() int { return c.size }

// RecvIsPrivate implements the private-receiver capability: every frame
// is read into a buffer owned by this endpoint alone.
func (c *tcpConn) RecvIsPrivate() bool { return true }

// NegotiatedWireVersion implements the wire-version capability: the
// sparse codec version the whole mesh settled on.
func (c *tcpConn) NegotiatedWireVersion() byte { return c.wire }

// noteWire folds one link's negotiated wire version into the mesh-wide
// minimum. Called during wire-up, before the endpoint is shared.
func (c *tcpConn) noteWire(v byte) {
	c.mu.Lock()
	c.wire = minWire(c.wire, normalizeWire(v))
	c.mu.Unlock()
}

// SendIsSynchronous implements the sync-sender capability: Send copies
// the payload into the link's buffered writer and flushes before
// returning, so the caller's buffer is dead the moment Send returns.
func (c *tcpConn) SendIsSynchronous() bool { return true }

func (c *tcpConn) Send(ctx context.Context, dst, tag int, payload []byte) error {
	if err := validatePeer(c.rank, dst, c.size); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	link := c.peers[dst]
	c.mu.Unlock()
	if link == nil {
		return fmt.Errorf("transport: rank %d has no link to %d", c.rank, dst)
	}

	// Header and payload go through the link's buffered writer; the
	// explicit flush bounds Send ("delivered to the fabric") while
	// coalescing header+payload — and back-to-back chunk frames — into
	// single socket writes.
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(tag))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))

	link.mu.Lock()
	_, err := link.w.Write(hdr[:])
	if err == nil {
		_, err = link.w.Write(payload)
	}
	if err == nil {
		err = link.w.Flush()
	}
	link.mu.Unlock()
	if err != nil {
		return fmt.Errorf("transport: send %d->%d: %w", c.rank, dst, err)
	}
	return nil
}

// SendVec implements the VectoredSender capability: every frame's
// header+payload goes through the link's buffered writer under ONE lock
// acquisition with ONE flush at the end, so a whole round's chunk frames
// coalesce into a single socket write (barring buffer overflow) instead
// of one flush — often one syscall — per frame.
func (c *tcpConn) SendVec(ctx context.Context, dst, tag int, frames [][]byte) error {
	if err := validatePeer(c.rank, dst, c.size); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	link := c.peers[dst]
	c.mu.Unlock()
	if link == nil {
		return fmt.Errorf("transport: rank %d has no link to %d", c.rank, dst)
	}

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(tag))
	link.mu.Lock()
	var err error
	for _, payload := range frames {
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
		if _, err = link.w.Write(hdr[:]); err != nil {
			break
		}
		if _, err = link.w.Write(payload); err != nil {
			break
		}
	}
	if err == nil {
		err = link.w.Flush()
	}
	link.mu.Unlock()
	if err != nil {
		return fmt.Errorf("transport: send %d->%d: %w", c.rank, dst, err)
	}
	return nil
}

// SendPooled implements the PooledSender capability: the payload is
// fully copied into the link's write buffer before Send returns, so it
// can go straight back to the pool.
func (c *tcpConn) SendPooled(ctx context.Context, dst, tag int, payload []byte) error {
	err := c.Send(ctx, dst, tag, payload)
	bufpool.Put(payload)
	return err
}

func (c *tcpConn) Recv(ctx context.Context, src, tag int) ([]byte, error) {
	if err := validatePeer(c.rank, src, c.size); err != nil {
		return nil, err
	}
	return c.box.collect(ctx, mailKey{src: src, tag: tag})
}

func (c *tcpConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	peers := c.peers
	c.mu.Unlock()
	for _, link := range peers {
		if link != nil {
			link.sock.Close() //nolint:errcheck // teardown path
		}
	}
	c.box.close()
	c.readers.Wait()
	return nil
}
