package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFaultPlanDeterministicSchedule pins that a plan's per-link fault
// schedule is a pure function of (seed, ordinal): two links with the
// same identity replay identical delay sequences, and the stall/drop
// ordinals fire exactly where the plan says.
func TestFaultPlanDeterministicSchedule(t *testing.T) {
	plan := FaultPlan{
		Seed:        0xD15EA5E,
		Delay:       10 * time.Millisecond,
		Jitter:      0.5,
		StallEvery:  3,
		StallFor:    time.Second,
		DropEvery:   5,
		DropPenalty: 2 * time.Second,
	}
	a := newFaultLink(plan.Seed, 1, 0)
	b := newFaultLink(plan.Seed, 1, 0)
	other := newFaultLink(plan.Seed, 2, 0)
	var sawOther bool
	for n := 0; n < 32; n++ {
		da, db := plan.delayFor(a.rng, n), plan.delayFor(b.rng, n)
		if da != db {
			t.Fatalf("ordinal %d: same link replayed different delays %v vs %v", n, da, db)
		}
		if plan.delayFor(other.rng, n) != da {
			sawOther = true
		}
		base := da
		if n%3 == 2 {
			base -= plan.StallFor
		}
		if n%5 == 4 {
			base -= plan.DropPenalty
		}
		if base > plan.Delay+plan.Delay/2 || base < plan.Delay/2 {
			t.Fatalf("ordinal %d: jittered base delay %v outside ±50%% of %v", n, base, plan.Delay)
		}
	}
	if !sawOther {
		t.Fatal("distinct links replayed identical streams — link identity not mixed into the seed")
	}
}

// TestFaultInjectorPreservesFIFO sends a burst of jittered frames
// through an afflicted link and checks they arrive in send order.
func TestFaultInjectorPreservesFIFO(t *testing.T) {
	inner, err := NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	fab := NewFaultInjector(inner, FaultPlan{
		Seed:   1,
		Delay:  2 * time.Millisecond,
		Jitter: 1.0, // delays in [0, 4ms]: plenty of reorder opportunity
	})
	defer fab.Close() //nolint:errcheck // test shutdown

	const frames = 32
	go func() {
		c := fab.Conn(1)
		for i := 0; i < frames; i++ {
			if err := c.Send(context.Background(), 0, 7, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	c := fab.Conn(0)
	for i := 0; i < frames; i++ {
		p, err := c.Recv(context.Background(), 1, 7)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if int(p[0]) != i {
			t.Fatalf("frame %d arrived out of order (got payload %d)", i, p[0])
		}
	}
}

// TestFaultInjectorSlowRankOnly checks that only the configured rank's
// outgoing links are afflicted and that everyone else's frames pass
// through with no measurable detour.
func TestFaultInjectorSlowRankOnly(t *testing.T) {
	inner, err := NewInProc(3)
	if err != nil {
		t.Fatal(err)
	}
	fab := NewFaultInjector(inner, FaultPlan{
		Seed:      2,
		Delay:     200 * time.Millisecond,
		SlowRanks: []int{2},
	})
	defer fab.Close() //nolint:errcheck // test shutdown

	start := time.Now()
	if err := fab.Conn(1).Send(context.Background(), 0, 1, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Conn(0).Recv(context.Background(), 1, 1); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("unafflicted link took %v", d)
	}

	start = time.Now()
	if err := fab.Conn(2).Send(context.Background(), 0, 2, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Conn(0).Recv(context.Background(), 2, 2); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Fatalf("afflicted link delivered in %v, want >= ~200ms", d)
	}
}

// TestRecvTagContextRetryRecoversDrop models a one-shot drop: the frame
// arrives only after the link's retransmission penalty. A single
// deadline-bounded attempt expires; the bounded-retry policy re-arms and
// lands the retransmitted copy.
func TestRecvTagContextRetryRecoversDrop(t *testing.T) {
	inner, err := NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	fab := NewFaultInjector(inner, FaultPlan{
		Seed:        3,
		DropEvery:   1, // every frame is "dropped" once
		DropPenalty: 120 * time.Millisecond,
	})
	defer fab.Close() //nolint:errcheck // test shutdown

	if err := fab.Conn(1).Send(context.Background(), 0, 5, []byte("late")); err != nil {
		t.Fatal(err)
	}
	// One 40ms attempt cannot see the frame.
	_, err = RecvTagContext(context.Background(), fab.Conn(0), 1, 5,
		RetryPolicy{Timeout: 40 * time.Millisecond, Attempts: 1})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("single attempt: got %v, want ErrDeadline", err)
	}
	// Bounded retries straddle the retransmission penalty.
	p, err := RecvTagContext(context.Background(), fab.Conn(0), 1, 5,
		RetryPolicy{Timeout: 40 * time.Millisecond, Attempts: 10, Backoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("retried recv: %v", err)
	}
	if string(p) != "late" {
		t.Fatalf("payload %q", p)
	}
}

// TestRecvTagContextValidation covers the policy's error paths.
func TestRecvTagContextValidation(t *testing.T) {
	inner, err := NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close() //nolint:errcheck // test shutdown
	if _, err := RecvTagContext(context.Background(), inner.Conn(0), 1, 0, RetryPolicy{}); err == nil {
		t.Fatal("zero timeout accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RecvTagContext(ctx, inner.Conn(0), 1, 0,
		RetryPolicy{Timeout: time.Second, Attempts: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled parent: got %v", err)
	}
}

// TestFaultInjectorOverTCP runs the injector over the TCP mesh — the
// wrapper must be fabric-agnostic — and checks capability forwarding on
// both fabrics.
func TestFaultInjectorOverTCP(t *testing.T) {
	tcp, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	fab := NewFaultInjector(tcp, FaultPlan{Seed: 4, Delay: 10 * time.Millisecond})
	defer fab.Close() //nolint:errcheck // test shutdown

	if err := fab.Conn(1).Send(context.Background(), 0, 3, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	p, err := fab.Conn(0).Recv(context.Background(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(p) != "over tcp" {
		t.Fatalf("payload %q", p)
	}

	c := fab.Conn(0)
	if SendConsumedOnReturn(c) {
		t.Fatal("injector must not report synchronous sends: it holds payloads after Send returns")
	}
	if !PrivateRecv(c) {
		t.Fatal("TCP receive privacy not forwarded")
	}
	if got := NegotiatedWireVersion(c); got != NegotiatedWireVersion(tcp.Conn(0)) {
		t.Fatalf("wire version %d not forwarded", got)
	}
	if c.Rank() != 0 || c.Size() != 2 {
		t.Fatalf("identity not forwarded: rank %d size %d", c.Rank(), c.Size())
	}
	if err := c.Send(context.Background(), 0, 0, nil); !errors.Is(err, ErrSelfSend) {
		t.Fatalf("self send: %v", err)
	}
	if err := c.Send(context.Background(), 9, 0, nil); err == nil {
		t.Fatal("out-of-range peer accepted")
	}
}

// TestFaultInjectorCloseStopsDelivery pins shutdown behaviour: after
// Close, sends on afflicted links fail with ErrClosed and queued frames
// are abandoned without deadlock.
func TestFaultInjectorCloseStopsDelivery(t *testing.T) {
	inner, err := NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	fab := NewFaultInjector(inner, FaultPlan{Seed: 5, Delay: time.Hour})
	if err := fab.Conn(1).Send(context.Background(), 0, 1, []byte("stuck")); err != nil {
		t.Fatal(err)
	}
	donec := make(chan error, 1)
	go func() { donec <- fab.Close() }()
	select {
	case <-donec:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on a queued frame")
	}
	if err := fab.Conn(1).Send(context.Background(), 0, 1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

// TestFaultLinkStreamSplit guards the per-link stream derivation against
// accidental collisions for small rank pairs.
func TestFaultLinkStreamSplit(t *testing.T) {
	seen := map[uint64]bool{}
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			if src == dst {
				continue
			}
			l := newFaultLink(42, src, dst)
			v := l.rng.Uint64()
			if seen[v] {
				t.Fatalf("link (%d,%d) collides with an earlier link's stream", src, dst)
			}
			seen[v] = true
		}
	}
}
