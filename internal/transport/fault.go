package transport

import (
	"context"
	"sync"
	"time"

	"gtopkssgd/internal/prng"
)

// FaultPlan is a seeded, deterministic schedule of link-level faults a
// FaultInjector applies to a wrapped fabric. Faults are keyed by the
// per-link message ordinal, so the n-th frame a link carries always
// suffers the same fate for the same plan — tests and benchmarks replay
// identical straggler schedules regardless of goroutine interleaving.
//
// The zero value injects nothing. A plan afflicts the OUTGOING links of
// the ranks in SlowRanks (every link when SlowRanks is empty); frames on
// afflicted links are delayed by Delay, jittered by ±Jitter·Delay, and
// every StallEvery-th / DropEvery-th frame additionally pays StallFor /
// DropPenalty. A "drop" models one-shot frame loss recovered by
// link-level retransmission: the frame is lost once and its retransmitted
// copy arrives DropPenalty later, preserving per-(src,dst,tag) FIFO
// order — which is what lets a deadline-bounded receiver recover it with
// a retry instead of deadlocking.
type FaultPlan struct {
	// Seed derives every link's private fault stream.
	Seed uint64
	// Delay is the base delivery delay on afflicted links.
	Delay time.Duration
	// Jitter is the fractional uniform jitter on Delay (0..1).
	Jitter float64
	// StallEvery, when > 0, stalls every StallEvery-th frame of an
	// afflicted link for an extra StallFor.
	StallEvery int
	// StallFor is the extra stall duration.
	StallFor time.Duration
	// DropEvery, when > 0, drops every DropEvery-th frame once; the
	// retransmitted copy arrives DropPenalty later.
	DropEvery int
	// DropPenalty is the retransmission penalty of a dropped frame.
	DropPenalty time.Duration
	// SlowRanks lists the ranks whose outgoing links are afflicted; an
	// empty list afflicts every link.
	SlowRanks []int
}

// afflicts reports whether src's outgoing links carry faults.
func (p FaultPlan) afflicts(src int) bool {
	if len(p.SlowRanks) == 0 {
		return true
	}
	for _, r := range p.SlowRanks {
		if r == src {
			return true
		}
	}
	return false
}

// delayFor computes the deterministic delivery delay of the n-th frame
// on one link from the link's private random stream. rng must be
// advanced exactly once per frame, in frame order.
func (p FaultPlan) delayFor(rng *prng.Source, n int) time.Duration {
	d := p.Delay
	if p.Jitter > 0 {
		// One rng draw per frame keeps the stream aligned with the
		// ordinal even when Delay is zero.
		j := 2*rng.Float64() - 1
		d += time.Duration(float64(p.Delay) * p.Jitter * j)
	}
	if p.StallEvery > 0 && n%p.StallEvery == p.StallEvery-1 {
		d += p.StallFor
	}
	if p.DropEvery > 0 && n%p.DropEvery == p.DropEvery-1 {
		d += p.DropPenalty
	}
	if d < 0 {
		d = 0
	}
	return d
}

// faultMsg is one queued frame awaiting delayed delivery.
type faultMsg struct {
	dst, tag  int
	payload   []byte
	deliverAt time.Time
}

// faultLink is one ordered (src→dst) link: a serial delivery worker
// drains its queue in send order, so injected delays never reorder the
// FIFO stream the Conn contract promises.
type faultLink struct {
	rng *prng.Source
	n   int // frame ordinal

	mu    sync.Mutex
	queue []faultMsg
	cond  *sync.Cond
	done  bool
}

func newFaultLink(seed uint64, src, dst int) *faultLink {
	l := &faultLink{rng: prng.New(seed).Split(uint64(src)<<20 | uint64(dst))}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// FaultInjector wraps a Fabric, imposing a FaultPlan on its links. It is
// usable over any inner fabric — the in-process mailboxes and the TCP
// mesh alike — because injection happens strictly above the Conn
// interface: frames are held back and re-sent through the inner endpoint
// by a per-link delivery worker.
type FaultInjector struct {
	inner Fabric
	plan  FaultPlan

	mu     sync.Mutex
	links  map[[2]int]*faultLink
	conns  []*faultConn
	closed bool
	stopc  chan struct{}
	wg     sync.WaitGroup
}

// NewFaultInjector wraps inner with the given fault plan.
func NewFaultInjector(inner Fabric, plan FaultPlan) *FaultInjector {
	f := &FaultInjector{
		inner: inner,
		plan:  plan,
		links: make(map[[2]int]*faultLink),
		stopc: make(chan struct{}),
	}
	f.conns = make([]*faultConn, inner.Size())
	for r := 0; r < inner.Size(); r++ {
		f.conns[r] = &faultConn{fab: f, inner: inner.Conn(r)}
	}
	return f
}

// Size implements Fabric.
func (f *FaultInjector) Size() int { return f.inner.Size() }

// Conn implements Fabric.
func (f *FaultInjector) Conn(rank int) Conn { return f.conns[rank] }

// Close stops every delivery worker (frames still queued are abandoned)
// and closes the inner fabric.
func (f *FaultInjector) Close() error {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		close(f.stopc) // interrupts workers mid-delay
		for _, l := range f.links {
			l.mu.Lock()
			l.done = true
			l.cond.Signal()
			l.mu.Unlock()
		}
	}
	f.mu.Unlock()
	f.wg.Wait()
	return f.inner.Close()
}

// link returns (creating on first use) the delivery link src→dst.
func (f *FaultInjector) link(src, dst int) *faultLink {
	key := [2]int{src, dst}
	f.mu.Lock()
	defer f.mu.Unlock()
	l, ok := f.links[key]
	if !ok {
		l = newFaultLink(f.plan.Seed, src, dst)
		f.links[key] = l
		if f.closed {
			l.done = true
		} else {
			f.wg.Add(1)
			go f.deliver(l, f.conns[src].inner)
		}
	}
	return l
}

// deliver is one link's serial worker: it sleeps each frame out to its
// delivery time and forwards it through the inner endpoint, preserving
// queue order.
func (f *FaultInjector) deliver(l *faultLink, inner Conn) {
	defer f.wg.Done()
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.done {
			l.cond.Wait()
		}
		if l.done {
			l.mu.Unlock()
			return
		}
		msg := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()

		if wait := time.Until(msg.deliverAt); wait > 0 {
			// An in-flight delay must not outlive Close: the frame in
			// hand is abandoned like the still-queued ones.
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-f.stopc:
				t.Stop()
				return
			}
		}
		// A failed inner send (endpoint closed mid-shutdown) drops the
		// frame — indistinguishable, to the receiver, from loss.
		_ = inner.Send(context.Background(), msg.dst, msg.tag, msg.payload)
	}
}

// faultConn is one rank's endpoint through the injector. Receives pass
// straight through; sends on afflicted links detour through the link's
// delivery queue.
type faultConn struct {
	fab   *FaultInjector
	inner Conn
}

// Rank implements Conn.
func (c *faultConn) Rank() int { return c.inner.Rank() }

// Size implements Conn.
func (c *faultConn) Size() int { return c.inner.Size() }

// Send implements Conn. Frames on unafflicted links pass through
// untouched; afflicted frames are enqueued for delayed delivery and the
// call returns immediately (the sender never blocks on its own slow
// link, so a straggler cannot stall ranks that already moved on).
func (c *faultConn) Send(ctx context.Context, dst, tag int, payload []byte) error {
	if err := validatePeer(c.Rank(), dst, c.Size()); err != nil {
		return err
	}
	if !c.fab.plan.afflicts(c.Rank()) {
		return c.inner.Send(ctx, dst, tag, payload)
	}
	l := c.fab.link(c.Rank(), dst)
	l.mu.Lock()
	if l.done {
		l.mu.Unlock()
		return ErrClosed
	}
	delay := c.fab.plan.delayFor(l.rng, l.n)
	l.n++
	l.queue = append(l.queue, faultMsg{dst: dst, tag: tag, payload: payload, deliverAt: time.Now().Add(delay)})
	l.cond.Signal()
	l.mu.Unlock()
	return nil
}

// Recv implements Conn by delegating to the inner endpoint.
func (c *faultConn) Recv(ctx context.Context, src, tag int) ([]byte, error) {
	return c.inner.Recv(ctx, src, tag)
}

// Close implements Conn by closing the inner endpoint.
func (c *faultConn) Close() error { return c.inner.Close() }

// SendIsSynchronous reports false: afflicted frames are held by the
// injector after Send returns, so senders must never recycle payloads.
func (c *faultConn) SendIsSynchronous() bool { return false }

// RecvIsPrivate forwards the inner endpoint's receive-privacy guarantee.
func (c *faultConn) RecvIsPrivate() bool { return PrivateRecv(c.inner) }

// NegotiatedWireVersion forwards the inner fabric's negotiated codec.
func (c *faultConn) NegotiatedWireVersion() byte { return NegotiatedWireVersion(c.inner) }
