// Package transport provides the rank-addressed message-passing substrate
// that replaces MPI point-to-point communication in this reproduction.
//
// Two interchangeable fabrics are provided:
//
//   - an in-process fabric (NewInProc) where each worker is a goroutine
//     and messages travel through shared mailboxes — fast, deterministic,
//     race-detector friendly; used by all experiments; and
//   - a TCP fabric (NewTCP) establishing a full mesh of loopback (or real)
//     sockets — demonstrates that the collectives run unchanged over a
//     real network stack.
//
// Semantics mirror MPI two-sided communication: Send(dst, tag) blocks
// until the message is accepted by the fabric, Recv(src, tag) blocks until
// a matching message arrives, and messages between a fixed (src, dst, tag)
// triple are delivered in send order.
package transport

import (
	"context"
	"errors"
	"fmt"
)

// Conn is one rank's endpoint into a fabric of Size() ranks.
//
// A Conn may be used from multiple goroutines. Recv calls with the same
// (src, tag) from concurrent goroutines race for messages in FIFO order.
type Conn interface {
	// Rank returns this endpoint's identity in [0, Size).
	Rank() int
	// Size returns the number of ranks in the fabric.
	Size() int
	// Send delivers payload to dst with the given tag. The payload is
	// owned by the fabric after Send returns; callers must not mutate it.
	Send(ctx context.Context, dst, tag int, payload []byte) error
	// Recv blocks until a message with the given source and tag arrives
	// and returns its payload.
	Recv(ctx context.Context, src, tag int) ([]byte, error)
	// Close releases the endpoint. Blocked and future calls fail with
	// ErrClosed.
	Close() error
}

// Fabric is a set of connected endpoints, one per rank.
type Fabric interface {
	// Conn returns rank's endpoint.
	Conn(rank int) Conn
	// Size returns the number of ranks.
	Size() int
	// Close closes every endpoint.
	Close() error
}

// Errors shared by fabric implementations.
var (
	// ErrClosed is returned by operations on a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrSelfSend is returned when a rank addresses itself; the
	// collectives never need loopback sends and requiring the check
	// catches index arithmetic bugs early.
	ErrSelfSend = errors.New("transport: send to self")
)

// validatePeer checks that peer is a legal remote rank for self.
func validatePeer(self, peer, size int) error {
	if peer < 0 || peer >= size {
		return fmt.Errorf("transport: rank %d out of range [0,%d)", peer, size)
	}
	if peer == self {
		return ErrSelfSend
	}
	return nil
}
