// Package transport provides the rank-addressed message-passing substrate
// that replaces MPI point-to-point communication in this reproduction.
//
// Two interchangeable fabrics are provided:
//
//   - an in-process fabric (NewInProc) where each worker is a goroutine
//     and messages travel through shared mailboxes — fast, deterministic,
//     race-detector friendly; used by all experiments; and
//   - a TCP fabric (NewTCP) establishing a full mesh of loopback (or real)
//     sockets — demonstrates that the collectives run unchanged over a
//     real network stack.
//
// Semantics mirror MPI two-sided communication: Send(dst, tag) blocks
// until the message is accepted by the fabric, Recv(src, tag) blocks until
// a matching message arrives, and messages between a fixed (src, dst, tag)
// triple are delivered in send order.
package transport

import (
	"context"
	"errors"
	"fmt"

	"gtopkssgd/internal/bufpool"
)

// Conn is one rank's endpoint into a fabric of Size() ranks.
//
// A Conn may be used from multiple goroutines. Recv calls with the same
// (src, tag) from concurrent goroutines race for messages in FIFO order.
type Conn interface {
	// Rank returns this endpoint's identity in [0, Size).
	Rank() int
	// Size returns the number of ranks in the fabric.
	Size() int
	// Send delivers payload to dst with the given tag. The payload is
	// owned by the fabric after Send returns; callers must not mutate it.
	Send(ctx context.Context, dst, tag int, payload []byte) error
	// Recv blocks until a message with the given source and tag arrives
	// and returns its payload.
	Recv(ctx context.Context, src, tag int) ([]byte, error)
	// Close releases the endpoint. Blocked and future calls fail with
	// ErrClosed.
	Close() error
}

// Fabric is a set of connected endpoints, one per rank.
type Fabric interface {
	// Conn returns rank's endpoint.
	Conn(rank int) Conn
	// Size returns the number of ranks.
	Size() int
	// Close closes every endpoint.
	Close() error
}

// PooledSender is an optional Conn capability for zero-allocation send
// paths. SendPooled behaves like Send for a payload drawn from
// internal/bufpool, with one extra promise: the fabric returns the
// buffer to the pool as soon as it has been fully consumed (for TCP,
// once the bytes are in the link's write buffer). Fabrics that hand the
// payload straight to the receiver (in-process mailboxes) do not
// implement it; there, recycling is the receiver's job per the bufpool
// ownership convention.
type PooledSender interface {
	// SendPooled sends payload and recycles it once consumed. The caller
	// must not touch the payload after the call, even on error.
	SendPooled(ctx context.Context, dst, tag int, payload []byte) error
}

// SendPooled sends a bufpool-owned payload through c, recycling it at
// the earliest safe point: inside the fabric when c implements
// PooledSender, otherwise at the receiver (plain Send ownership
// transfer). Either way the caller relinquishes the buffer.
func SendPooled(ctx context.Context, c Conn, dst, tag int, payload []byte) error {
	if ps, ok := c.(PooledSender); ok {
		return ps.SendPooled(ctx, dst, tag, payload)
	}
	return c.Send(ctx, dst, tag, payload)
}

// VectoredSender is an optional Conn capability for scatter-gather
// sends: the frames of one logical round travel to the same (dst, tag)
// stream, in slice order, indistinguishable on the receive side from
// len(frames) consecutive Sends — but assembled into as few wire
// operations as the fabric allows (one buffered write sequence plus a
// single flush on TCP; one batched mailbox deposit in-process). Each
// frame carries plain-Send ownership semantics: the fabric owns every
// frame after the call returns, success or error.
type VectoredSender interface {
	// SendVec delivers frames to dst in order under one tag.
	SendVec(ctx context.Context, dst, tag int, frames [][]byte) error
}

// SendVec sends a batch of frames to one (dst, tag) stream through c's
// vectored capability when present, falling back to one plain Send per
// frame otherwise (same delivery order, more wire operations). The
// fallback keeps per-frame semantics intact on wrappers that meter or
// perturb individual frames — the fault injector counts ordinals per
// frame, so it deliberately does not implement VectoredSender.
func SendVec(ctx context.Context, c Conn, dst, tag int, frames [][]byte) error {
	if vs, ok := c.(VectoredSender); ok {
		return vs.SendVec(ctx, dst, tag, frames)
	}
	for _, payload := range frames {
		if err := c.Send(ctx, dst, tag, payload); err != nil {
			return err
		}
	}
	return nil
}

// SendVecPooled is SendVec for bufpool-owned frames: the caller
// relinquishes every frame, and each is recycled at the earliest safe
// point — immediately after a consuming-on-return vectored send (TCP
// copies all frames into the link buffer before returning), at the
// receiver on aliasing fabrics (in-process mailboxes), or per frame via
// the pooled single-send path on fabrics without the capability.
func SendVecPooled(ctx context.Context, c Conn, dst, tag int, frames [][]byte) error {
	if vs, ok := c.(VectoredSender); ok {
		err := vs.SendVec(ctx, dst, tag, frames)
		if SendConsumedOnReturn(c) {
			// Mirrors SendPooled: buffers are dead even on error.
			for _, payload := range frames {
				bufpool.Put(payload)
			}
		}
		return err
	}
	for _, payload := range frames {
		if err := SendPooled(ctx, c, dst, tag, payload); err != nil {
			return err
		}
	}
	return nil
}

// syncSender is an optional Conn capability: fabrics whose plain Send
// fully consumes the payload before returning (TCP copies it into the
// link's write buffer and flushes) report true. Only such fabrics allow
// a sender to recycle a buffer it passed to Send; on fabrics without
// the capability the payload may still be referenced after Send returns
// (in-process mailboxes hand the receiver the same slice).
type syncSender interface {
	SendIsSynchronous() bool
}

// SendConsumedOnReturn reports whether c's plain Send has fully consumed
// the payload by the time it returns, making sender-side recycling safe.
func SendConsumedOnReturn(c Conn) bool {
	ss, ok := c.(syncSender)
	return ok && ss.SendIsSynchronous()
}

// privateReceiver is an optional Conn capability: fabrics whose Recv
// payloads are private per-receiver copies (each TCP endpoint reads its
// own frame off its own socket) report true, which lets receivers
// recycle even payloads whose contents they forwarded to other ranks.
// In-process fabrics deposit the sender's slice into every destination
// mailbox, so a forwarded payload may be aliased by several ranks and
// must never be recycled.
type privateReceiver interface {
	RecvIsPrivate() bool
}

// PrivateRecv reports whether payloads returned by c.Recv are private
// copies owned exclusively by the receiving rank.
func PrivateRecv(c Conn) bool {
	pr, ok := c.(privateReceiver)
	return ok && pr.RecvIsPrivate()
}

// Sparse wire-codec versions a fabric can negotiate. The version governs
// the frame payload format of internal/sparse (v1 flat frames vs v2
// delta/varint frames); the transport itself is agnostic to payload
// contents and only carries the negotiated number.
const (
	// WireV1 is the legacy flat sparse frame format.
	WireV1 byte = 1
	// WireV2 is the delta/varint sparse frame format (optionally fp16).
	WireV2 byte = 2
	// WireV3 is the compound frame format: delta/varint indices plus a
	// per-frame value codec (fp32, fp16, or quantized levels — see
	// internal/sparse codec v3). Negotiates down like every other
	// version: one v2 peer keeps the whole mesh on v2 frames.
	WireV3 byte = 3
	// LatestWire is the newest wire version this build speaks.
	LatestWire = WireV3
)

// normalizeWire clamps a configured wire-version preference: 0 (unset)
// means v1, anything newer than this build speaks clamps to LatestWire.
func normalizeWire(v byte) byte {
	switch {
	case v == 0:
		return WireV1
	case v > LatestWire:
		return LatestWire
	default:
		return v
	}
}

// minWire returns the older of two wire versions — the negotiation rule:
// a mesh settles on the minimum version any member offers, so a v1 peer
// keeps every frame decodable by everyone.
func minWire(a, b byte) byte {
	if b < a {
		return b
	}
	return a
}

// wireVersioned is an optional Conn capability: fabrics that negotiate
// (or are configured with) a sparse wire-codec version report it here.
type wireVersioned interface {
	NegotiatedWireVersion() byte
}

// NegotiatedWireVersion reports the sparse wire version every rank of
// c's fabric agreed to speak. Fabrics without the capability — or with
// an unset version — default to WireV1, so codec-aware collectives stay
// compatible with any Conn implementation.
func NegotiatedWireVersion(c Conn) byte {
	if wv, ok := c.(wireVersioned); ok {
		if v := wv.NegotiatedWireVersion(); v != 0 {
			return v
		}
	}
	return WireV1
}

// Errors shared by fabric implementations.
var (
	// ErrClosed is returned by operations on a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrSelfSend is returned when a rank addresses itself; the
	// collectives never need loopback sends and requiring the check
	// catches index arithmetic bugs early.
	ErrSelfSend = errors.New("transport: send to self")
)

// validatePeer checks that peer is a legal remote rank for self.
func validatePeer(self, peer, size int) error {
	if peer < 0 || peer >= size {
		return fmt.Errorf("transport: rank %d out of range [0,%d)", peer, size)
	}
	if peer == self {
		return ErrSelfSend
	}
	return nil
}
