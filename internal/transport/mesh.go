package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MeshConfig describes one rank's view of a multi-process TCP mesh for
// a single cluster epoch. Unlike the static NewTCPWorker wire-up, a
// MeshConfig supports elastic clusters: the caller may own the data
// listener (so the same host:port survives across epochs) and every
// connection handshake is stamped with the epoch, so stragglers from a
// previous epoch can never join the wrong mesh.
type MeshConfig struct {
	// Rank is this worker's rank in [0, len(Addrs)).
	Rank int
	// Addrs lists one data-plane host:port per rank, indexed by rank.
	Addrs []string
	// Epoch stamps every handshake. Dials and accepts whose epoch does
	// not match are dropped and retried, which is what makes rebuilding
	// a mesh safe while peers are still tearing down the previous one.
	Epoch uint64
	// Listener, when non-nil, is the caller-owned listener for
	// Addrs[Rank]. JoinMesh never closes it, so an elastic worker can
	// keep its advertised address stable across epochs. When nil,
	// JoinMesh listens on Addrs[Rank] itself and closes the listener
	// once the mesh is wired.
	Listener net.Listener
	// TCP tunes the mesh's data-plane sockets; the zero value enables
	// TCP_NODELAY, which the small synchronous collective frames want.
	// TCP.WireVersion is this worker's sparse wire-codec offer: the
	// handshake carries it and the mesh settles on the minimum version
	// offered by any member, so a v1 peer still decodes every frame.
	TCP TCPOptions
}

// helloSize is the wire size of the mesh handshake: uint32 rank,
// uint64 epoch, one wire-codec offer byte, little-endian.
//
// The handshake layout itself is NOT versioned (there is no room to
// retrofit one — older revisions read a fixed byte count and would
// consume part of a longer hello as frame data), so every member of a
// mesh must run the same handshake revision of this package; the codec
// offer byte negotiates the sparse FRAME format within that revision,
// not the handshake. Mixing binaries across handshake revisions (4-byte
// pre-epoch, 12-byte epoch, 13-byte codec-offer hellos) desyncs the
// link and surfaces as a mesh-setup timeout.
const helloSize = 13

// helloAck is the first of the two bytes an acceptor returns after
// admitting a dialled connection into the mesh (the second byte is the
// wire-codec version chosen for the link — the minimum of both offers).
// Dials that never see the ack (the peer is still in an older epoch, or
// its accept backlog swallowed a connection it later discarded) redial
// instead of silently attaching a half-open link.
const helloAck = 0x06

// JoinMesh joins a multi-process TCP mesh as one rank and returns its
// endpoint once the full mesh for cfg.Epoch is connected.
//
// Wire-up protocol: rank r listens on Addrs[r], accepts connections
// from every higher rank and dials every lower rank, retrying until the
// peer listens or ctx expires (process start order is arbitrary). Each
// dialled connection opens with a 12-byte hello carrying the dialler's
// rank and epoch; the acceptor answers with a 1-byte ack once it admits
// the link. Hellos from a different epoch are dropped without an ack —
// the dialler redials — and a redial from an already-admitted rank
// replaces the earlier link, so the handshake converges even when
// workers enter the new epoch at very different times.
func JoinMesh(ctx context.Context, cfg MeshConfig) (Conn, error) {
	n := len(cfg.Addrs)
	if n < 1 {
		return nil, fmt.Errorf("transport: empty address list")
	}
	if cfg.Rank < 0 || cfg.Rank >= n {
		return nil, fmt.Errorf("transport: rank %d out of range [0,%d)", cfg.Rank, n)
	}
	c := &tcpConn{
		rank:  cfg.Rank,
		size:  n,
		opts:  cfg.TCP,
		peers: make([]*peerLink, n),
		box:   newMailbox(n),
		wire:  normalizeWire(cfg.TCP.WireVersion),
	}
	if n == 1 {
		return c, nil
	}

	ln := cfg.Listener
	if ln == nil {
		owned, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("transport: rank %d listen on %s: %w", cfg.Rank, cfg.Addrs[cfg.Rank], err)
		}
		defer owned.Close() //nolint:errcheck // mesh complete or failed; owned listener no longer needed
		ln = owned
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	// Accept from all higher ranks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := acceptHigherRanks(ctx, ln, c, cfg); err != nil {
			fail(err)
		}
	}()

	// Dial all lower ranks, retrying while they come up.
	for peer := 0; peer < cfg.Rank; peer++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			sock, linkWire, err := dialMesh(ctx, cfg.Addrs[peer], cfg.Rank, cfg.Epoch, normalizeWire(cfg.TCP.WireVersion))
			if err != nil {
				fail(fmt.Errorf("rank %d dial rank %d (%s): %w", cfg.Rank, peer, cfg.Addrs[peer], err))
				return
			}
			c.noteWire(linkWire)
			c.attach(peer, sock)
		}(peer)
	}
	wg.Wait()
	if len(errs) > 0 {
		c.Close() //nolint:errcheck // best-effort cleanup on failed wire-up
		return nil, fmt.Errorf("transport: mesh setup (epoch %d): %v", cfg.Epoch, errs[0])
	}
	c.startReaders()
	return c, nil
}

// acceptHigherRanks admits one connection per rank above cfg.Rank,
// discarding hellos from other epochs and replacing duplicate hellos
// (a peer that timed out waiting for our ack and redialled) with the
// latest connection. The listener stays open: cancellation is observed
// through short accept deadlines so caller-owned listeners survive.
func acceptHigherRanks(ctx context.Context, ln net.Listener, c *tcpConn, cfg MeshConfig) error {
	n := len(cfg.Addrs)
	expected := n - 1 - cfg.Rank
	admitted := make(map[int]net.Conn, expected)
	dl, hasDeadline := ln.(interface{ SetDeadline(time.Time) error })
	for len(admitted) < expected {
		if err := ctx.Err(); err != nil {
			closeConns(admitted)
			return err
		}
		if hasDeadline {
			dl.SetDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck // polling deadline
		}
		sock, err := ln.Accept()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			closeConns(admitted)
			return fmt.Errorf("rank %d accept: %w", cfg.Rank, err)
		}
		peer, epoch, offered, err := readHello(sock)
		if err != nil || epoch != cfg.Epoch {
			// Stale epoch, garbage, or an abandoned redial victim: not
			// part of this mesh. Dropping without an ack makes a live
			// dialler retry.
			sock.Close() //nolint:errcheck // discarding a non-member connection
			continue
		}
		if peer <= cfg.Rank || peer >= n {
			// Same epoch but an impossible rank: a duplicate -rank or a
			// mismatched address list. Misconfiguration fails fast
			// instead of wedging both sides until their deadlines.
			sock.Close() //nolint:errcheck // protocol violation
			closeConns(admitted)
			return fmt.Errorf("rank %d: unexpected hello from rank %d (epoch %d)", cfg.Rank, peer, epoch)
		}
		// The link speaks the older of the two offers; the ack tells the
		// dialler which version won so both ends agree.
		linkWire := minWire(normalizeWire(cfg.TCP.WireVersion), normalizeWire(offered))
		if _, err := sock.Write([]byte{helloAck, linkWire}); err != nil {
			sock.Close() //nolint:errcheck // dialler gave up; it will redial
			continue
		}
		if prev, ok := admitted[peer]; ok {
			prev.Close() //nolint:errcheck // superseded by the peer's redial
		}
		admitted[peer] = sock
		c.noteWire(linkWire)
	}
	if hasDeadline {
		dl.SetDeadline(time.Time{}) //nolint:errcheck // clear polling deadline
	}
	for peer, sock := range admitted {
		c.attach(peer, sock)
	}
	return nil
}

// dialMesh dials addr until the acceptor admits this rank into epoch's
// mesh (hello with the wire-codec offer sent, two-byte ack received) or
// ctx expires. It returns the admitted connection plus the wire version
// the acceptor chose for the link. A connection that is accepted by the
// OS but never acked — the peer is still in another epoch, or dropped us
// while draining its backlog — is closed and redialled with backoff.
func dialMesh(ctx context.Context, addr string, rank int, epoch uint64, offerWire byte) (net.Conn, byte, error) {
	backoff := 10 * time.Millisecond
	const maxBackoff = time.Second
	// ackWait bounds one admission attempt. It is generous relative to a
	// live accept loop (which acks in microseconds) but short enough to
	// keep retrying a peer that is lagging an epoch behind.
	const ackWait = 2 * time.Second
	var d net.Dialer
	for {
		sock, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			var hello [helloSize]byte
			binary.LittleEndian.PutUint32(hello[0:4], uint32(rank))
			binary.LittleEndian.PutUint64(hello[4:12], epoch)
			hello[12] = offerWire
			if _, err = sock.Write(hello[:]); err == nil {
				deadline := time.Now().Add(ackWait)
				if cd, ok := ctx.Deadline(); ok && cd.Before(deadline) {
					deadline = cd
				}
				sock.SetReadDeadline(deadline) //nolint:errcheck // best-effort bound on the ack wait
				var ack [2]byte
				if _, err = io.ReadFull(sock, ack[:]); err == nil && ack[0] == helloAck &&
					ack[1] >= WireV1 && ack[1] <= offerWire {
					// The chosen version can only be between v1 and our
					// own offer; anything else is a protocol violation and
					// the connection is abandoned like a missing ack.
					sock.SetReadDeadline(time.Time{}) //nolint:errcheck // clear handshake deadline
					return sock, ack[1], nil
				}
			}
			sock.Close() //nolint:errcheck // admission failed; retry fresh
		}
		if ctx.Err() != nil {
			return nil, 0, ctx.Err()
		}
		select {
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// readHello parses the dialler's 13-byte mesh handshake: rank, epoch and
// the dialler's sparse wire-codec offer.
func readHello(sock net.Conn) (rank int, epoch uint64, offerWire byte, err error) {
	sock.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // bound a wedged handshake
	var hello [helloSize]byte
	if _, err := io.ReadFull(sock, hello[:]); err != nil {
		return 0, 0, 0, err
	}
	sock.SetReadDeadline(time.Time{}) //nolint:errcheck // clear handshake deadline
	return int(binary.LittleEndian.Uint32(hello[0:4])), binary.LittleEndian.Uint64(hello[4:12]), hello[12], nil
}

func closeConns(conns map[int]net.Conn) {
	for _, sock := range conns {
		sock.Close() //nolint:errcheck // teardown path
	}
}
