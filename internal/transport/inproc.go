package transport

import (
	"context"
	"fmt"
	"sync"
)

// mailKey identifies a message queue position by (source rank, tag).
type mailKey struct {
	src, tag int
}

// mailEntry is one undelivered message: its tag plus the payload.
type mailEntry struct {
	tag     int
	payload []byte
}

// srcQueue is the per-source arrival queue: messages from one peer in
// arrival order. head/entries form a dequeue window over a reusable
// backing array — popping advances head, and the array rewinds to the
// front whenever the queue drains, so the steady state of a pipelined
// collective enqueues and dequeues with zero allocations (the old
// (src,tag)-keyed map allocated a map entry and a one-element slice per
// message, because tag claims never reuse a tag). Receivers match by
// scanning the window for the first entry with their tag, which keeps
// FIFO-per-(src,tag) semantics; the window stays a handful of entries
// deep, bounded by how far one collective can run ahead.
type srcQueue struct {
	head    int
	entries []mailEntry
}

// mailbox is one rank's incoming message store: per-source FIFO queues
// guarded by a mutex/cond pair so receivers can block until a match
// arrives. Unbounded queues model MPI's eager protocol, which is what the
// paper's small sparse messages (2k elements) would use in practice.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues []srcQueue // indexed by source rank
	closed bool
}

func newMailbox(size int) *mailbox {
	mb := &mailbox{queues: make([]srcQueue, size)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) deposit(key mailKey, payload []byte) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	q := &mb.queues[key.src]
	q.entries = append(q.entries, mailEntry{tag: key.tag, payload: payload})
	mb.cond.Broadcast()
	return nil
}

// depositBatch appends a whole batch of frames to one queue under a
// single lock acquisition and wake-up — the mailbox half of a vectored
// send. Frame order within the batch is preserved.
func (mb *mailbox) depositBatch(key mailKey, frames [][]byte) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	q := &mb.queues[key.src]
	for _, payload := range frames {
		q.entries = append(q.entries, mailEntry{tag: key.tag, payload: payload})
	}
	mb.cond.Broadcast()
	return nil
}

func (mb *mailbox) collect(ctx context.Context, key mailKey) ([]byte, error) {
	// Fast path: the message already arrived (pipelined receives hit this
	// constantly) — pop it without spawning the cancellation watcher.
	mb.mu.Lock()
	if payload, ok := mb.pop(key); ok {
		mb.mu.Unlock()
		return payload, nil
	}
	if mb.closed {
		mb.mu.Unlock()
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		mb.mu.Unlock()
		return nil, err
	}
	mb.mu.Unlock()

	// Slow path: block on the condition variable. The watcher goroutine
	// wakes waiters if the context is cancelled while they block; it is
	// only started for cancellable contexts and exits as soon as collect
	// returns.
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				mb.mu.Lock()
				mb.cond.Broadcast()
				mb.mu.Unlock()
			case <-stop:
			}
		}()
	}

	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if payload, ok := mb.pop(key); ok {
			return payload, nil
		}
		if mb.closed {
			return nil, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mb.cond.Wait()
	}
}

// pop dequeues the oldest message from key.src with key.tag; callers
// hold mb.mu. Non-head matches are removed by shifting the prefix up,
// which preserves arrival order for the remaining entries.
func (mb *mailbox) pop(key mailKey) ([]byte, bool) {
	q := &mb.queues[key.src]
	for i := q.head; i < len(q.entries); i++ {
		if q.entries[i].tag != key.tag {
			continue
		}
		payload := q.entries[i].payload
		if i == q.head {
			q.entries[i] = mailEntry{}
			q.head++
		} else {
			copy(q.entries[q.head+1:i+1], q.entries[q.head:i])
			q.entries[q.head] = mailEntry{}
			q.head++
		}
		if q.head == len(q.entries) {
			// Drained: rewind the window so the backing array is reused.
			q.entries = q.entries[:0]
			q.head = 0
		}
		return payload, true
	}
	return nil, false
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}

// InProcFabric connects n ranks through in-memory mailboxes.
type InProcFabric struct {
	conns []*inProcConn
}

var _ Fabric = (*InProcFabric)(nil)

// NewInProc creates an in-process fabric with n ranks speaking the v1
// sparse wire format.
func NewInProc(n int) (*InProcFabric, error) { return NewInProcWire(n, WireV1) }

// NewInProcWire creates an in-process fabric whose endpoints report the
// given sparse wire-codec version. All ranks live in one process, so
// "negotiation" reduces to configuration — the in-process counterpart of
// the TCP mesh's handshake byte.
func NewInProcWire(n int, wire byte) (*InProcFabric, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: fabric size %d < 1", n)
	}
	f := &InProcFabric{conns: make([]*inProcConn, n)}
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox(n)
	}
	for i := range f.conns {
		f.conns[i] = &inProcConn{rank: i, boxes: boxes, wire: normalizeWire(wire)}
	}
	return f, nil
}

// Conn returns rank's endpoint.
func (f *InProcFabric) Conn(rank int) Conn { return f.conns[rank] }

// Size returns the number of ranks.
func (f *InProcFabric) Size() int { return len(f.conns) }

// Close closes every endpoint.
func (f *InProcFabric) Close() error {
	for _, c := range f.conns {
		c.Close() //nolint:errcheck // Close on inProcConn never fails.
	}
	return nil
}

type inProcConn struct {
	rank  int
	boxes []*mailbox // shared across all conns; boxes[r] is rank r's inbox
	wire  byte
}

var (
	_ Conn           = (*inProcConn)(nil)
	_ VectoredSender = (*inProcConn)(nil)
)

func (c *inProcConn) Rank() int { return c.rank }
func (c *inProcConn) Size() int { return len(c.boxes) }

// NegotiatedWireVersion implements the wire-version capability.
func (c *inProcConn) NegotiatedWireVersion() byte { return c.wire }

func (c *inProcConn) Send(ctx context.Context, dst, tag int, payload []byte) error {
	if err := validatePeer(c.rank, dst, len(c.boxes)); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.boxes[dst].deposit(mailKey{src: c.rank, tag: tag}, payload)
}

// SendVec implements the VectoredSender capability: the whole batch is
// deposited into the destination mailbox under one lock acquisition —
// zero-copy, like Send, with the receiver aliasing the sender's slices.
func (c *inProcConn) SendVec(ctx context.Context, dst, tag int, frames [][]byte) error {
	if err := validatePeer(c.rank, dst, len(c.boxes)); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.boxes[dst].depositBatch(mailKey{src: c.rank, tag: tag}, frames)
}

func (c *inProcConn) Recv(ctx context.Context, src, tag int) ([]byte, error) {
	if err := validatePeer(c.rank, src, len(c.boxes)); err != nil {
		return nil, err
	}
	return c.boxes[c.rank].collect(ctx, mailKey{src: src, tag: tag})
}

func (c *inProcConn) Close() error {
	c.boxes[c.rank].close()
	return nil
}
