package transport

import (
	"context"
	"fmt"
	"sync"
)

// mailKey identifies a FIFO queue of messages by (source rank, tag).
type mailKey struct {
	src, tag int
}

// mailbox is one rank's incoming message store: per-(src,tag) FIFO queues
// guarded by a mutex/cond pair so receivers can block until a match
// arrives. Unbounded queues model MPI's eager protocol, which is what the
// paper's small sparse messages (2k elements) would use in practice.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[mailKey][][]byte
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{queues: make(map[mailKey][][]byte)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) deposit(key mailKey, payload []byte) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	mb.queues[key] = append(mb.queues[key], payload)
	mb.cond.Broadcast()
	return nil
}

func (mb *mailbox) collect(ctx context.Context, key mailKey) ([]byte, error) {
	// Fast path: the message already arrived (pipelined receives hit this
	// constantly) — pop it without spawning the cancellation watcher.
	mb.mu.Lock()
	if payload, ok := mb.pop(key); ok {
		mb.mu.Unlock()
		return payload, nil
	}
	if mb.closed {
		mb.mu.Unlock()
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		mb.mu.Unlock()
		return nil, err
	}
	mb.mu.Unlock()

	// Slow path: block on the condition variable. The watcher goroutine
	// wakes waiters if the context is cancelled while they block; it is
	// only started for cancellable contexts and exits as soon as collect
	// returns.
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				mb.mu.Lock()
				mb.cond.Broadcast()
				mb.mu.Unlock()
			case <-stop:
			}
		}()
	}

	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if payload, ok := mb.pop(key); ok {
			return payload, nil
		}
		if mb.closed {
			return nil, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mb.cond.Wait()
	}
}

// pop dequeues the oldest message for key; callers hold mb.mu.
func (mb *mailbox) pop(key mailKey) ([]byte, bool) {
	q := mb.queues[key]
	if len(q) == 0 {
		return nil, false
	}
	payload := q[0]
	if len(q) == 1 {
		delete(mb.queues, key)
	} else {
		mb.queues[key] = q[1:]
	}
	return payload, true
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}

// InProcFabric connects n ranks through in-memory mailboxes.
type InProcFabric struct {
	conns []*inProcConn
}

var _ Fabric = (*InProcFabric)(nil)

// NewInProc creates an in-process fabric with n ranks speaking the v1
// sparse wire format.
func NewInProc(n int) (*InProcFabric, error) { return NewInProcWire(n, WireV1) }

// NewInProcWire creates an in-process fabric whose endpoints report the
// given sparse wire-codec version. All ranks live in one process, so
// "negotiation" reduces to configuration — the in-process counterpart of
// the TCP mesh's handshake byte.
func NewInProcWire(n int, wire byte) (*InProcFabric, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: fabric size %d < 1", n)
	}
	f := &InProcFabric{conns: make([]*inProcConn, n)}
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	for i := range f.conns {
		f.conns[i] = &inProcConn{rank: i, boxes: boxes, wire: normalizeWire(wire)}
	}
	return f, nil
}

// Conn returns rank's endpoint.
func (f *InProcFabric) Conn(rank int) Conn { return f.conns[rank] }

// Size returns the number of ranks.
func (f *InProcFabric) Size() int { return len(f.conns) }

// Close closes every endpoint.
func (f *InProcFabric) Close() error {
	for _, c := range f.conns {
		c.Close() //nolint:errcheck // Close on inProcConn never fails.
	}
	return nil
}

type inProcConn struct {
	rank  int
	boxes []*mailbox // shared across all conns; boxes[r] is rank r's inbox
	wire  byte
}

var _ Conn = (*inProcConn)(nil)

func (c *inProcConn) Rank() int { return c.rank }
func (c *inProcConn) Size() int { return len(c.boxes) }

// NegotiatedWireVersion implements the wire-version capability.
func (c *inProcConn) NegotiatedWireVersion() byte { return c.wire }

func (c *inProcConn) Send(ctx context.Context, dst, tag int, payload []byte) error {
	if err := validatePeer(c.rank, dst, len(c.boxes)); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.boxes[dst].deposit(mailKey{src: c.rank, tag: tag}, payload)
}

func (c *inProcConn) Recv(ctx context.Context, src, tag int) ([]byte, error) {
	if err := validatePeer(c.rank, src, len(c.boxes)); err != nil {
		return nil, err
	}
	return c.boxes[c.rank].collect(ctx, mailKey{src: src, tag: tag})
}

func (c *inProcConn) Close() error {
	c.boxes[c.rank].close()
	return nil
}
