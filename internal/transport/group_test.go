package transport

import (
	"context"
	"strings"
	"testing"
)

// TestGroupViewRemapsRanks checks local<->world translation on sends and
// receives across two disjoint views sharing one tag.
func TestGroupViewRemapsRanks(t *testing.T) {
	fab, err := NewInProc(4)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()

	// Views {0,1} and {2,3}: local rank 1 -> world 1 and world 3.
	lo0, err := GroupView(fab.Conn(0), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	lo1, err := GroupView(fab.Conn(1), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	hi0, err := GroupView(fab.Conn(2), []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	hi1, err := GroupView(fab.Conn(3), []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []Conn{lo0, lo1, hi0, hi1} {
		if v.Size() != 2 || v.Rank() != i%2 {
			t.Fatalf("view %d: rank %d size %d, want rank %d size 2", i, v.Rank(), v.Size(), i%2)
		}
	}

	ctx := context.Background()
	// Same tag on both views: world pairs (0,1) and (2,3) are disjoint,
	// so no crosstalk.
	if err := lo0.Send(ctx, 1, 7, []byte("low")); err != nil {
		t.Fatal(err)
	}
	if err := hi0.Send(ctx, 1, 7, []byte("high")); err != nil {
		t.Fatal(err)
	}
	if got, err := lo1.Recv(ctx, 0, 7); err != nil || string(got) != "low" {
		t.Fatalf("low recv = %q, %v", got, err)
	}
	if got, err := hi1.Recv(ctx, 0, 7); err != nil || string(got) != "high" {
		t.Fatalf("high recv = %q, %v", got, err)
	}

	// A non-contiguous "leader" view over {0, 2}.
	ld0, err := GroupView(fab.Conn(0), []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	ld1, err := GroupView(fab.Conn(2), []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ld1.Send(ctx, 0, 9, []byte("leader")); err != nil {
		t.Fatal(err)
	}
	if got, err := ld0.Recv(ctx, 1, 9); err != nil || string(got) != "leader" {
		t.Fatalf("leader recv = %q, %v", got, err)
	}
}

// TestGroupViewValidation exercises the construction and addressing
// error paths.
func TestGroupViewValidation(t *testing.T) {
	fab, err := NewInProc(4)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()

	cases := []struct {
		name  string
		ranks []int
		want  string
	}{
		{"empty", nil, "zero ranks"},
		{"unsorted", []int{2, 0}, "not ascending"},
		{"out-of-world", []int{0, 9}, "outside parent world"},
		{"duplicate", []int{0, 0}, "duplicated"},
		{"excludes-self", []int{1, 2}, "excludes own rank"},
	}
	for _, tc := range cases {
		if _, err := GroupView(fab.Conn(0), tc.ranks); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	v, err := GroupView(fab.Conn(0), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Send(context.Background(), 2, 1, nil); err == nil {
		t.Fatal("send outside view succeeded")
	}
	if _, err := v.Recv(context.Background(), -1, 1); err == nil {
		t.Fatal("recv outside view succeeded")
	}
	if err := v.Close(); err != nil {
		t.Fatalf("view close = %v, want nil no-op", err)
	}
	// The parent must still work after a view close.
	if err := fab.Conn(0).Send(context.Background(), 1, 3, []byte("x")); err != nil {
		t.Fatalf("parent send after view close: %v", err)
	}
	if _, err := fab.Conn(1).Recv(context.Background(), 0, 3); err != nil {
		t.Fatalf("parent recv after view close: %v", err)
	}
}

// TestGroupViewForwardsCapabilities: the view must report its parent's
// wire capabilities, not defaults — TCP keeps private receives and
// synchronous sends, inproc keeps neither, and the negotiated wire
// version passes through.
func TestGroupViewForwardsCapabilities(t *testing.T) {
	inproc, err := NewInProcWire(2, WireV2)
	if err != nil {
		t.Fatal(err)
	}
	defer inproc.Close()
	iv, err := GroupView(inproc.Conn(0), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if PrivateRecv(iv) != PrivateRecv(inproc.Conn(0)) {
		t.Fatal("inproc view PrivateRecv mismatch")
	}
	if SendConsumedOnReturn(iv) != SendConsumedOnReturn(inproc.Conn(0)) {
		t.Fatal("inproc view SendConsumedOnReturn mismatch")
	}
	if got, want := NegotiatedWireVersion(iv), NegotiatedWireVersion(inproc.Conn(0)); got != want {
		t.Fatalf("inproc view wire version %d, want %d", got, want)
	}

	tcp, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	tv, err := GroupView(tcp.Conn(1), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !PrivateRecv(tv) || !SendConsumedOnReturn(tv) {
		t.Fatal("tcp view lost the private-recv/sync-send capabilities")
	}
}
