package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fabricMaker lets every semantic test run against both fabrics.
var fabricMakers = []struct {
	name string
	make func(n int) (Fabric, error)
}{
	{"inproc", func(n int) (Fabric, error) { return NewInProc(n) }},
	{"tcp", func(n int) (Fabric, error) { return NewTCP(n) }},
}

func TestPingPong(t *testing.T) {
	for _, fm := range fabricMakers {
		t.Run(fm.name, func(t *testing.T) {
			f, err := fm.make(2)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ctx := context.Background()

			done := make(chan error, 1)
			go func() {
				msg, err := f.Conn(1).Recv(ctx, 0, 7)
				if err != nil {
					done <- err
					return
				}
				done <- f.Conn(1).Send(ctx, 0, 8, append([]byte("pong:"), msg...))
			}()

			if err := f.Conn(0).Send(ctx, 1, 7, []byte("ping")); err != nil {
				t.Fatal(err)
			}
			reply, err := f.Conn(0).Recv(ctx, 1, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(reply, []byte("pong:ping")) {
				t.Fatalf("reply = %q", reply)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFIFOOrderPerTriple(t *testing.T) {
	for _, fm := range fabricMakers {
		t.Run(fm.name, func(t *testing.T) {
			f, err := fm.make(2)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ctx := context.Background()
			const n = 200
			go func() {
				for i := 0; i < n; i++ {
					payload := []byte(fmt.Sprintf("msg-%04d", i))
					if err := f.Conn(0).Send(ctx, 1, 3, payload); err != nil {
						return
					}
				}
			}()
			for i := 0; i < n; i++ {
				msg, err := f.Conn(1).Recv(ctx, 0, 3)
				if err != nil {
					t.Fatal(err)
				}
				if want := fmt.Sprintf("msg-%04d", i); string(msg) != want {
					t.Fatalf("out of order: got %q want %q", msg, want)
				}
			}
		})
	}
}

func TestTagMatching(t *testing.T) {
	for _, fm := range fabricMakers {
		t.Run(fm.name, func(t *testing.T) {
			f, err := fm.make(2)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ctx := context.Background()
			// Send tag 2 first, then tag 1; receiving tag 1 first must skip
			// over the queued tag-2 message.
			if err := f.Conn(0).Send(ctx, 1, 2, []byte("two")); err != nil {
				t.Fatal(err)
			}
			if err := f.Conn(0).Send(ctx, 1, 1, []byte("one")); err != nil {
				t.Fatal(err)
			}
			got1, err := f.Conn(1).Recv(ctx, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			got2, err := f.Conn(1).Recv(ctx, 0, 2)
			if err != nil {
				t.Fatal(err)
			}
			if string(got1) != "one" || string(got2) != "two" {
				t.Fatalf("tag matching broken: %q %q", got1, got2)
			}
		})
	}
}

func TestSourceMatching(t *testing.T) {
	for _, fm := range fabricMakers {
		t.Run(fm.name, func(t *testing.T) {
			f, err := fm.make(3)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ctx := context.Background()
			if err := f.Conn(1).Send(ctx, 2, 0, []byte("from1")); err != nil {
				t.Fatal(err)
			}
			if err := f.Conn(0).Send(ctx, 2, 0, []byte("from0")); err != nil {
				t.Fatal(err)
			}
			got0, err := f.Conn(2).Recv(ctx, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			got1, err := f.Conn(2).Recv(ctx, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			if string(got0) != "from0" || string(got1) != "from1" {
				t.Fatalf("source matching broken: %q %q", got0, got1)
			}
		})
	}
}

func TestAllToAll(t *testing.T) {
	for _, fm := range fabricMakers {
		t.Run(fm.name, func(t *testing.T) {
			const n = 5
			f, err := fm.make(n)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ctx := context.Background()
			var wg sync.WaitGroup
			errCh := make(chan error, n)
			for r := 0; r < n; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					conn := f.Conn(r)
					for dst := 0; dst < n; dst++ {
						if dst == r {
							continue
						}
						payload := []byte{byte(r), byte(dst)}
						if err := conn.Send(ctx, dst, 9, payload); err != nil {
							errCh <- err
							return
						}
					}
					for src := 0; src < n; src++ {
						if src == r {
							continue
						}
						msg, err := conn.Recv(ctx, src, 9)
						if err != nil {
							errCh <- err
							return
						}
						if len(msg) != 2 || int(msg[0]) != src || int(msg[1]) != r {
							errCh <- fmt.Errorf("rank %d: bad payload %v from %d", r, msg, src)
							return
						}
					}
				}(r)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
		})
	}
}

func TestInvalidPeers(t *testing.T) {
	for _, fm := range fabricMakers {
		t.Run(fm.name, func(t *testing.T) {
			f, err := fm.make(2)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ctx := context.Background()
			if err := f.Conn(0).Send(ctx, 0, 0, nil); !errors.Is(err, ErrSelfSend) {
				t.Errorf("self send: err = %v, want ErrSelfSend", err)
			}
			if err := f.Conn(0).Send(ctx, 5, 0, nil); err == nil {
				t.Error("out-of-range send accepted")
			}
			if _, err := f.Conn(0).Recv(ctx, -1, 0); err == nil {
				t.Error("out-of-range recv accepted")
			}
		})
	}
}

func TestRecvContextCancel(t *testing.T) {
	for _, fm := range fabricMakers {
		t.Run(fm.name, func(t *testing.T) {
			f, err := fm.make(2)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err = f.Conn(0).Recv(ctx, 1, 0)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want deadline exceeded", err)
			}
			if time.Since(start) > 2*time.Second {
				t.Fatal("cancellation took too long")
			}
		})
	}
}

func TestRecvUnblocksOnClose(t *testing.T) {
	for _, fm := range fabricMakers {
		t.Run(fm.name, func(t *testing.T) {
			f, err := fm.make(2)
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				_, err := f.Conn(0).Recv(context.Background(), 1, 0)
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			f.Conn(0).Close() //nolint:errcheck
			select {
			case err := <-done:
				if !errors.Is(err, ErrClosed) {
					t.Fatalf("err = %v, want ErrClosed", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Recv did not unblock on Close")
			}
			f.Close() //nolint:errcheck
		})
	}
}

func TestSendAfterCloseTCP(t *testing.T) {
	f, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Conn(0).Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Conn(0).Send(context.Background(), 1, 0, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: err = %v, want ErrClosed", err)
	}
	f.Close() //nolint:errcheck
}

func TestLargePayloadTCP(t *testing.T) {
	f, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		f.Conn(0).Send(ctx, 1, 5, payload) //nolint:errcheck
	}()
	got, err := f.Conn(1).Recv(ctx, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large payload corrupted in transit")
	}
}

func TestZeroRankFabricRejected(t *testing.T) {
	if _, err := NewInProc(0); err == nil {
		t.Error("NewInProc(0) accepted")
	}
	if _, err := NewTCP(0); err == nil {
		t.Error("NewTCP(0) accepted")
	}
}

func TestSingleRankFabric(t *testing.T) {
	f, err := NewInProc(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != 1 || f.Conn(0).Rank() != 0 {
		t.Fatal("single-rank fabric misconfigured")
	}
}

func BenchmarkInProcRoundTrip(b *testing.B) {
	f, err := NewInProc(2)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()
	payload := make([]byte, 8192)
	go func() {
		for {
			msg, err := f.Conn(1).Recv(ctx, 0, 1)
			if err != nil {
				return
			}
			if err := f.Conn(1).Send(ctx, 0, 2, msg); err != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Conn(0).Send(ctx, 1, 1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := f.Conn(0).Recv(ctx, 1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	f, err := NewTCP(2)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()
	payload := make([]byte, 8192)
	go func() {
		for {
			msg, err := f.Conn(1).Recv(ctx, 0, 1)
			if err != nil {
				return
			}
			if err := f.Conn(1).Send(ctx, 0, 2, msg); err != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Conn(0).Send(ctx, 1, 1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := f.Conn(0).Recv(ctx, 1, 2); err != nil {
			b.Fatal(err)
		}
	}
}
