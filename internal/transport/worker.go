package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// NewTCPWorker joins a multi-process TCP fabric as one rank and returns
// its endpoint. Unlike NewTCP (which wires all ranks inside one
// process), every worker process calls NewTCPWorker with its own rank
// and the full address list; the function returns once the mesh is fully
// connected. This is how the library deploys on a real cluster:
//
//	conn, err := transport.NewTCPWorker(ctx, rank, []string{
//	    "node0:7000", "node1:7000", "node2:7000", "node3:7000",
//	})
//
// Wire-up protocol: rank r listens on addrs[r], accepts connections from
// every higher rank, and dials every lower rank (retrying until the peer
// listens or ctx expires, since process start order is arbitrary). Each
// dialled connection starts with a 4-byte little-endian hello carrying
// the dialler's rank. Message framing matches NewTCP exactly.
func NewTCPWorker(ctx context.Context, rank int, addrs []string) (Conn, error) {
	n := len(addrs)
	if n < 1 {
		return nil, fmt.Errorf("transport: empty address list")
	}
	if rank < 0 || rank >= n {
		return nil, fmt.Errorf("transport: rank %d out of range [0,%d)", rank, n)
	}
	c := &tcpConn{
		rank:  rank,
		size:  n,
		peers: make([]*peerLink, n),
		box:   newMailbox(),
	}
	if n == 1 {
		return c, nil
	}

	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d listen on %s: %w", rank, addrs[rank], err)
	}
	defer ln.Close() //nolint:errcheck // mesh complete or failed; listener no longer needed

	// Close the listener on cancellation so Accept unblocks.
	acceptDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			ln.Close() //nolint:errcheck // cancellation path
		case <-acceptDone:
		}
	}()
	defer close(acceptDone)

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	// Accept from all higher ranks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for accepted := 0; accepted < n-1-rank; accepted++ {
			sock, err := ln.Accept()
			if err != nil {
				fail(fmt.Errorf("rank %d accept: %w", rank, err))
				return
			}
			var hello [4]byte
			if _, err := io.ReadFull(sock, hello[:]); err != nil {
				fail(fmt.Errorf("rank %d hello: %w", rank, err))
				return
			}
			peer := int(binary.LittleEndian.Uint32(hello[:]))
			if peer <= rank || peer >= n {
				fail(fmt.Errorf("rank %d: unexpected hello from rank %d", rank, peer))
				return
			}
			c.attach(peer, sock)
		}
	}()

	// Dial all lower ranks, retrying while they come up.
	for peer := 0; peer < rank; peer++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			sock, err := dialRetry(ctx, addrs[peer])
			if err != nil {
				fail(fmt.Errorf("rank %d dial rank %d (%s): %w", rank, peer, addrs[peer], err))
				return
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(rank))
			if _, err := sock.Write(hello[:]); err != nil {
				fail(fmt.Errorf("rank %d hello to %d: %w", rank, peer, err))
				return
			}
			c.attach(peer, sock)
		}(peer)
	}
	wg.Wait()
	if len(errs) > 0 {
		c.Close() //nolint:errcheck // best-effort cleanup on failed wire-up
		return nil, fmt.Errorf("transport: worker mesh setup: %v", errs[0])
	}
	c.startReaders()
	return c, nil
}

// dialRetry dials addr with exponential backoff until success or ctx
// expiry, tolerating the arbitrary start order of worker processes.
func dialRetry(ctx context.Context, addr string) (net.Conn, error) {
	backoff := 10 * time.Millisecond
	const maxBackoff = time.Second
	var d net.Dialer
	for {
		sock, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return sock, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}
