package transport

import (
	"context"
)

// NewTCPWorker joins a multi-process TCP fabric as one rank and returns
// its endpoint. Unlike NewTCP (which wires all ranks inside one
// process), every worker process calls NewTCPWorker with its own rank
// and the full address list; the function returns once the mesh is fully
// connected. This is how the library deploys on a static cluster:
//
//	conn, err := transport.NewTCPWorker(ctx, rank, []string{
//	    "node0:7000", "node1:7000", "node2:7000", "node3:7000",
//	})
//
// NewTCPWorker is the fixed-membership special case of JoinMesh: it
// wires epoch 0 with an internally owned listener that is closed once
// the mesh is up. Elastic deployments — where the address list changes
// between cluster epochs — use JoinMesh directly (see internal/cluster
// for the coordinator-driven flow that feeds it).
func NewTCPWorker(ctx context.Context, rank int, addrs []string) (Conn, error) {
	return JoinMesh(ctx, MeshConfig{Rank: rank, Addrs: addrs})
}
