package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// meshListeners opens one caller-owned loopback listener per rank and
// returns them with their concrete addresses.
func meshListeners(t *testing.T, n int) ([]net.Listener, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() }) //nolint:errcheck // test teardown
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return lns, addrs
}

// joinAll wires one mesh epoch across caller-owned listeners and
// returns the connected endpoints.
func joinAll(t *testing.T, ctx context.Context, epoch uint64, lns []net.Listener, addrs []string) []Conn {
	t.Helper()
	conns := make([]Conn, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for r := range addrs {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			conns[r], errs[r] = JoinMesh(ctx, MeshConfig{
				Rank: r, Addrs: addrs, Epoch: epoch, Listener: lns[r],
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join epoch %d: %v", r, epoch, err)
		}
	}
	return conns
}

func exchangeRing(t *testing.T, ctx context.Context, conns []Conn, tag int) {
	t.Helper()
	n := len(conns)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := range conns {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("from-%d-tag-%d", r, tag))
			if err := conns[r].Send(ctx, (r+1)%n, tag, msg); err != nil {
				errs[r] = err
				return
			}
			got, err := conns[r].Recv(ctx, (r-1+n)%n, tag)
			if err != nil {
				errs[r] = err
				return
			}
			want := fmt.Sprintf("from-%d-tag-%d", (r-1+n)%n, tag)
			if string(got) != want {
				errs[r] = fmt.Errorf("rank %d got %q, want %q", r, got, want)
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestJoinMeshListenerSurvivesEpochs rebuilds a shrinking mesh on the
// same caller-owned listeners across three epochs — the reconnection
// pattern the elastic cluster runtime depends on.
func TestJoinMeshListenerSurvivesEpochs(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	lns, addrs := meshListeners(t, 4)

	conns := joinAll(t, ctx, 1, lns, addrs)
	exchangeRing(t, ctx, conns, 7)
	for _, c := range conns {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Epoch 2: rank 1 is gone; survivors re-form at world size 3 reusing
	// their listeners (old ranks 0,2,3 become 0,1,2).
	lns2 := []net.Listener{lns[0], lns[2], lns[3]}
	addrs2 := []string{addrs[0], addrs[2], addrs[3]}
	conns2 := joinAll(t, ctx, 2, lns2, addrs2)
	exchangeRing(t, ctx, conns2, 9)
	for _, c := range conns2 {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJoinMeshRejectsStaleEpoch verifies that a dialler stuck in an old
// epoch cannot join a newer mesh: its hello is dropped (no ack) and the
// new epoch's wire-up completes untainted once the laggard catches up.
func TestJoinMeshRejectsStaleEpoch(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	lns, addrs := meshListeners(t, 2)

	// Rank 1 first tries to join epoch 1 while rank 0 is already wiring
	// epoch 2; the attempt must fail (ctx expiry), not half-connect.
	staleCtx, staleCancel := context.WithTimeout(ctx, 600*time.Millisecond)
	defer staleCancel()
	staleDone := make(chan error, 1)
	go func() {
		_, err := JoinMesh(staleCtx, MeshConfig{Rank: 1, Addrs: addrs, Epoch: 1, Listener: lns[1]})
		staleDone <- err
	}()

	var (
		wg     sync.WaitGroup
		conns  = make([]Conn, 2)
		joinEr = make([]error, 2)
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		conns[0], joinEr[0] = JoinMesh(ctx, MeshConfig{Rank: 0, Addrs: addrs, Epoch: 2, Listener: lns[0]})
	}()

	if err := <-staleDone; err == nil {
		t.Fatal("stale-epoch join succeeded against an epoch-2 peer")
	}

	// The laggard advances to epoch 2; now the mesh completes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conns[1], joinEr[1] = JoinMesh(ctx, MeshConfig{Rank: 1, Addrs: addrs, Epoch: 2, Listener: lns[1]})
	}()
	wg.Wait()
	for r, err := range joinEr {
		if err != nil {
			t.Fatalf("rank %d epoch 2: %v", r, err)
		}
	}
	exchangeRing(t, ctx, conns, 3)
	for _, c := range conns {
		c.Close() //nolint:errcheck // test teardown
	}
}

// joinAllWire is joinAll with per-rank sparse wire-codec offers.
func joinAllWire(t *testing.T, ctx context.Context, lns []net.Listener, addrs []string, offers []byte) []Conn {
	t.Helper()
	conns := make([]Conn, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for r := range addrs {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			conns[r], errs[r] = JoinMesh(ctx, MeshConfig{
				Rank: r, Addrs: addrs, Epoch: 1, Listener: lns[r],
				TCP: TCPOptions{WireVersion: offers[r]},
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
	}
	return conns
}

// TestMeshWireNegotiation checks the codec handshake: a mesh settles on
// the minimum wire version any member offers — all-v2 meshes speak v2,
// one v1 (or unset) peer drags everyone to v1, and unknown future
// versions clamp to the newest this build speaks.
func TestMeshWireNegotiation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cases := []struct {
		name   string
		offers []byte
		want   byte
	}{
		{"all-v2", []byte{WireV2, WireV2, WireV2}, WireV2},
		{"one-v1-peer", []byte{WireV2, WireV1, WireV2}, WireV1},
		{"unset-means-v1", []byte{WireV2, 0, WireV2}, WireV1},
		{"future-version-clamps", []byte{9, WireV2, 9}, WireV2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lns, addrs := meshListeners(t, len(tc.offers))
			conns := joinAllWire(t, ctx, lns, addrs, tc.offers)
			for r, c := range conns {
				if got := NegotiatedWireVersion(c); got != tc.want {
					t.Errorf("rank %d negotiated wire v%d, want v%d", r, got, tc.want)
				}
				c.Close() //nolint:errcheck // test teardown
			}
		})
	}
}

// TestInProcWireVersion checks the in-process fabric's configured wire
// version and the v1 default of fabrics without the capability wiring.
func TestInProcWireVersion(t *testing.T) {
	f, err := NewInProcWire(2, WireV2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	if got := NegotiatedWireVersion(f.Conn(0)); got != WireV2 {
		t.Fatalf("inproc wire v%d, want v2", got)
	}
	f1, err := NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close() //nolint:errcheck // test teardown
	if got := NegotiatedWireVersion(f1.Conn(0)); got != WireV1 {
		t.Fatalf("default inproc wire v%d, want v1", got)
	}
}
