package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRecvTagContextZeroBackoff covers the Backoff == 0 branch: attempts
// re-arm immediately, still landing a frame that arrives mid-sequence,
// and an all-expired sequence returns ErrDeadline after exactly the
// attempts' worth of waiting (no hidden sleeps).
func TestRecvTagContextZeroBackoff(t *testing.T) {
	inner, err := NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	fab := NewFaultInjector(inner, FaultPlan{Seed: 1, Delay: 90 * time.Millisecond})
	defer fab.Close() //nolint:errcheck // test shutdown

	if err := fab.Conn(1).Send(context.Background(), 0, 7, []byte("delayed")); err != nil {
		t.Fatal(err)
	}
	p, err := RecvTagContext(context.Background(), fab.Conn(0), 1, 7,
		RetryPolicy{Timeout: 40 * time.Millisecond, Attempts: 5})
	if err != nil {
		t.Fatalf("zero-backoff retry: %v", err)
	}
	if string(p) != "delayed" {
		t.Fatalf("payload %q", p)
	}

	start := time.Now()
	_, err = RecvTagContext(context.Background(), fab.Conn(0), 1, 8,
		RetryPolicy{Timeout: 10 * time.Millisecond, Attempts: 3})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("empty link: got %v, want ErrDeadline", err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("3 x 10ms zero-backoff attempts took %v", d)
	}
}

// TestRecvTagContextCancelDuringBackoff pins the cancellation path of
// the backoff sleep: a caller tearing down mid-backoff must get ctx's
// error promptly instead of sleeping the pause out.
func TestRecvTagContextCancelDuringBackoff(t *testing.T) {
	inner, err := NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close() //nolint:errcheck // test shutdown

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// First attempt expires at 20ms; cancel lands inside the 30s
		// backoff pause that follows.
		time.Sleep(60 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = RecvTagContext(ctx, inner.Conn(0), 1, 9,
		RetryPolicy{Timeout: 20 * time.Millisecond, Attempts: 3, Backoff: 30 * time.Second})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v — the backoff sleep ignored ctx", d)
	}
}
