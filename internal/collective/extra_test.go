package collective

import (
	"context"
	"fmt"
	"math"
	"testing"

	"gtopkssgd/internal/prng"
)

func TestReduceAllRootsAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		for root := 0; root < p; root++ {
			t.Run(fmt.Sprintf("p=%d/root=%d", p, root), func(t *testing.T) {
				const n = 37
				inputs := make([][]float32, p)
				want := make([]float64, n)
				src := prng.New(uint64(p*100 + root))
				for r := range inputs {
					inputs[r] = make([]float32, n)
					for i := range inputs[r] {
						inputs[r][i] = float32(src.NormFloat64())
						want[i] += float64(inputs[r][i])
					}
				}
				rootBuf := make([]float32, n)
				runSPMD(t, p, func(c *Comm) error {
					x := append([]float32(nil), inputs[c.Rank()]...)
					if err := c.Reduce(context.Background(), root, x); err != nil {
						return err
					}
					if c.Rank() == root {
						copy(rootBuf, x)
					}
					return nil
				})
				for i := range want {
					if math.Abs(float64(rootBuf[i])-want[i]) > 1e-4 {
						t.Fatalf("elem %d: got %v want %v", i, rootBuf[i], want[i])
					}
				}
			})
		}
	}
}

func TestGatherAndScatterRoundTrip(t *testing.T) {
	const p = 4
	runSPMD(t, p, func(c *Comm) error {
		ctx := context.Background()
		mine := []byte(fmt.Sprintf("payload-from-%d", c.Rank()))
		gathered, err := c.Gather(ctx, 1, mine)
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			for r, blob := range gathered {
				if want := fmt.Sprintf("payload-from-%d", r); string(blob) != want {
					return fmt.Errorf("gathered[%d] = %q", r, blob)
				}
			}
		} else if gathered != nil {
			return fmt.Errorf("non-root received gather output")
		}
		// Scatter the gathered payloads back from root 1.
		var outbound [][]byte
		if c.Rank() == 1 {
			outbound = gathered
		}
		got, err := c.Scatter(ctx, 1, outbound)
		if err != nil {
			return err
		}
		if want := fmt.Sprintf("payload-from-%d", c.Rank()); string(got) != want {
			return fmt.Errorf("scatter returned %q, want %q", got, want)
		}
		return nil
	})
}

func TestScatterValidation(t *testing.T) {
	runSPMD(t, 2, func(c *Comm) error {
		ctx := context.Background()
		if c.Rank() == 0 {
			if _, err := c.Scatter(ctx, 0, [][]byte{{1}}); err == nil {
				return fmt.Errorf("short payload list accepted")
			}
			// Rank 1 is now blocked waiting for a scatter that failed on
			// the root; send it the message it expects so the test ends
			// cleanly (tags advanced identically on both ranks).
			return c.SendTag(ctx, 1, c.nextTag-1, []byte{9})
		}
		got, err := c.Scatter(ctx, 0, nil)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != 9 {
			return fmt.Errorf("unexpected scatter payload %v", got)
		}
		return nil
	})
}

func TestAllToAllPersonalizedExchange(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			runSPMD(t, p, func(c *Comm) error {
				payloads := make([][]byte, p)
				for d := range payloads {
					payloads[d] = []byte{byte(c.Rank()), byte(d)}
				}
				out, err := c.AllToAll(context.Background(), payloads)
				if err != nil {
					return err
				}
				for src, blob := range out {
					if len(blob) != 2 || int(blob[0]) != src || int(blob[1]) != c.Rank() {
						return fmt.Errorf("out[%d] = %v", src, blob)
					}
				}
				return nil
			})
		})
	}
}

func TestAllToAllValidatesPayloadCount(t *testing.T) {
	runSPMD(t, 2, func(c *Comm) error {
		if _, err := c.AllToAll(context.Background(), [][]byte{{1}}); err == nil {
			return fmt.Errorf("wrong payload count accepted")
		}
		return nil
	})
}

func TestReduceInvalidRoot(t *testing.T) {
	runSPMD(t, 2, func(c *Comm) error {
		if err := c.Reduce(context.Background(), 9, make([]float32, 3)); err == nil {
			return fmt.Errorf("invalid root accepted")
		}
		return nil
	})
}

func TestBcastFloat32sAllRootsAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		for root := 0; root < p; root++ {
			t.Run(fmt.Sprintf("p=%d/root=%d", p, root), func(t *testing.T) {
				const n = 41
				want := make([]float32, n)
				src := prng.New(uint64(p*1000 + root))
				for i := range want {
					want[i] = float32(src.NormFloat64())
				}
				runSPMD(t, p, func(c *Comm) error {
					var vec []float32
					if c.Rank() == root {
						vec = append([]float32(nil), want...)
					}
					got, err := c.BcastFloat32s(context.Background(), root, vec)
					if err != nil {
						return err
					}
					if len(got) != n {
						return fmt.Errorf("rank %d got %d floats, want %d", c.Rank(), len(got), n)
					}
					for i := range got {
						if got[i] != want[i] {
							return fmt.Errorf("rank %d elem %d: %v, want %v (must be bit-exact)", c.Rank(), i, got[i], want[i])
						}
					}
					return nil
				})
			})
		}
	}
}

func TestBcastFloat32sEmptyVector(t *testing.T) {
	runSPMD(t, 3, func(c *Comm) error {
		got, err := c.BcastFloat32s(context.Background(), 0, nil)
		if err != nil {
			return err
		}
		if len(got) != 0 {
			return fmt.Errorf("rank %d got %d floats from empty bcast", c.Rank(), len(got))
		}
		return nil
	})
}
