package collective

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/transport"
)

// runQuorumRanks drives one SPMD QuorumGather round across all ranks of
// a fresh in-process fabric, with sleeps[r] delaying rank r's call.
func runQuorumRanks(t *testing.T, p, root, q int, timeout time.Duration, sleeps []time.Duration) ([]*QuorumRound, []time.Duration) {
	t.Helper()
	fab, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close() //nolint:errcheck // in-process close never fails
	results := make([]*QuorumRound, p)
	errs := make([]error, p)
	elapsed := make([]time.Duration, p)
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if sleeps != nil && sleeps[r] > 0 {
				time.Sleep(sleeps[r])
			}
			comm := New(fab.Conn(r))
			results[r], errs[r] = comm.QuorumGather(context.Background(), root, q, timeout,
				[]byte(fmt.Sprintf("frame-%d", r)))
			elapsed[r] = time.Since(start)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return results, elapsed
}

func TestQuorumGatherFullParticipation(t *testing.T) {
	const p, root = 4, 0
	res, _ := runQuorumRanks(t, p, root, p-1, 5*time.Second, nil)
	got := res[root]
	if len(got.Participants) != p || len(got.Missed) != 0 {
		t.Fatalf("participants %v missed %v, want all %d ranks", got.Participants, got.Missed, p)
	}
	for r := 0; r < p; r++ {
		want := fmt.Sprintf("frame-%d", r)
		if string(got.Blobs[r]) != want {
			t.Fatalf("rank %d blob %q want %q", r, got.Blobs[r], want)
		}
	}
	for r := 1; r < p; r++ {
		if res[r].Blobs != nil || res[r].Participants != nil {
			t.Fatalf("non-root rank %d returned root-side state %+v", r, res[r])
		}
	}
}

func TestQuorumGatherClosesWithoutStraggler(t *testing.T) {
	const p, root = 4, 0
	sleeps := make([]time.Duration, p)
	sleeps[3] = 2 * time.Second // well past the deadline
	res, elapsed := runQuorumRanks(t, p, root, p-1, 100*time.Millisecond, sleeps)
	if elapsed[root] >= 2*time.Second {
		t.Fatalf("root waited %v for the straggler — quorum did not close early", elapsed[root])
	}
	got := res[root]
	if len(got.Participants) != p-1 {
		t.Fatalf("participants %v, want %d ranks", got.Participants, p-1)
	}
	if len(got.Missed) != 1 || got.Missed[0] != 3 {
		t.Fatalf("missed %v, want [3]", got.Missed)
	}
	if got.Blobs[3] != nil {
		t.Fatal("straggler's blob present despite missing the deadline")
	}
}

func TestQuorumGatherWaitsForQuorumFloor(t *testing.T) {
	// Two of four ranks are slower than the deadline, but q=3 means the
	// round must NOT close at the deadline with only 2 contributions —
	// it waits for the third.
	const p, root = 4, 0
	sleeps := make([]time.Duration, p)
	sleeps[2] = 300 * time.Millisecond
	sleeps[3] = 300 * time.Millisecond
	res, _ := runQuorumRanks(t, p, root, 3, 50*time.Millisecond, sleeps)
	got := res[root]
	if len(got.Participants) < 3 {
		t.Fatalf("round closed under quorum: participants %v", got.Participants)
	}
}

func TestQuorumGatherValidation(t *testing.T) {
	fab, err := transport.NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close() //nolint:errcheck // in-process close never fails
	comm := New(fab.Conn(0))
	ctx := context.Background()
	if _, err := comm.QuorumGather(ctx, -1, 1, time.Second, nil); err == nil {
		t.Fatal("bad root accepted")
	}
	if _, err := comm.QuorumGather(ctx, 0, 0, time.Second, nil); err == nil {
		t.Fatal("q=0 accepted")
	}
	if _, err := comm.QuorumGather(ctx, 0, 3, time.Second, nil); err == nil {
		t.Fatal("q>P accepted")
	}
	if _, err := comm.QuorumGather(ctx, 0, 1, 0, nil); err == nil {
		t.Fatal("zero timeout accepted")
	}
}

func TestChargeQuorumRoundUniformAndLinks(t *testing.T) {
	fab, err := transport.NewInProc(4)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close() //nolint:errcheck // in-process close never fails

	model := netsim.Model{Alpha: time.Millisecond, Beta: time.Nanosecond}
	clock := &netsim.Clock{}
	comm := New(fab.Conn(1)).WithClock(clock, model)
	parts := []int{0, 1, 2}
	comm.ChargeQuorumRound(0, parts, 100, 200)
	want := model.Round(3, 100) + model.Round(4, 200)
	if clock.Now() != want {
		t.Fatalf("uniform charge %v want %v", clock.Now(), want)
	}
	if comm.Stats().Rounds != 2 {
		t.Fatalf("rounds %d want 2", comm.Stats().Rounds)
	}

	intra := netsim.Model{Alpha: time.Millisecond, Beta: time.Nanosecond}
	inter := netsim.Model{Alpha: 40 * time.Millisecond, Beta: 10 * time.Nanosecond}
	lm, err := netsim.NewLinkModel(intra, inter, 2)
	if err != nil {
		t.Fatal(err)
	}
	clock.Reset()
	comm.WithLinks(lm)
	if comm.Links() != lm {
		t.Fatal("Links accessor lost the model")
	}
	comm.ChargeQuorumRound(0, parts, 100, 200)
	want = lm.QuorumRound(4, 0, 1, parts, 100, 200)
	if clock.Now() != want {
		t.Fatalf("link charge %v want %v", clock.Now(), want)
	}

	// A forked child inherits the link model.
	kids, err := comm.Fork(1)
	if err != nil {
		t.Fatal(err)
	}
	if kids[0].Links() != lm {
		t.Fatal("fork dropped the link model")
	}

	// Untimed communicators only count rounds.
	untimed := New(fab.Conn(2)).WithLinks(lm)
	untimed.ChargeQuorumRound(0, parts, 100, 200)
	if untimed.Stats().Rounds != 2 {
		t.Fatalf("untimed rounds %d want 2", untimed.Stats().Rounds)
	}
}

func TestChargeHierQuorumRoundUniformAndLinks(t *testing.T) {
	fab, err := transport.NewInProc(8)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close() //nolint:errcheck // in-process close never fails

	model := netsim.Model{Alpha: time.Millisecond, Beta: time.Nanosecond}
	clock := &netsim.Clock{}
	comm := New(fab.Conn(1)).WithClock(clock, model)
	// g=4 over world=8: group 0 contributes 3 members, group 1 contributes
	// 2, so the uniform fallback synchronizes maxIntra=3 at the intra
	// level, partGroups=2 at the leader level, then fans the verdict over
	// numGroups=2 leaders and relay=g=4 members.
	parts := []int{0, 1, 2, 4, 5}
	comm.ChargeHierQuorumRound(0, 4, parts, 100, 200)
	want := model.Round(3, 100) + model.Round(2, 100) + model.Round(2, 200) + model.Round(4, 200)
	if clock.Now() != want {
		t.Fatalf("uniform hier charge %v want %v", clock.Now(), want)
	}
	if comm.Stats().Rounds != 4 {
		t.Fatalf("rounds %d want 4", comm.Stats().Rounds)
	}

	intra := netsim.Model{Alpha: time.Millisecond, Beta: time.Nanosecond}
	inter := netsim.Model{Alpha: 40 * time.Millisecond, Beta: 10 * time.Nanosecond}
	lm, err := netsim.NewLinkModel(intra, inter, 4)
	if err != nil {
		t.Fatal(err)
	}
	clock.Reset()
	comm.WithLinks(lm)
	comm.ChargeHierQuorumRound(0, 4, parts, 100, 200)
	want = lm.HierQuorumRound(8, 4, 0, 1, parts, 100, 200)
	if clock.Now() != want {
		t.Fatalf("link hier charge %v want %v", clock.Now(), want)
	}

	// Untimed communicators only count rounds.
	untimed := New(fab.Conn(2))
	untimed.ChargeHierQuorumRound(0, 4, parts, 100, 200)
	if untimed.Stats().Rounds != 4 {
		t.Fatalf("untimed rounds %d want 4", untimed.Stats().Rounds)
	}
}

func TestRecvTagRetryCountsStats(t *testing.T) {
	fab, err := transport.NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close() //nolint:errcheck // in-process close never fails
	a, b := New(fab.Conn(0)), New(fab.Conn(1))
	tagA, tagB := a.ClaimTags(1), b.ClaimTags(1)
	if tagA != tagB {
		t.Fatalf("tag drift %d vs %d", tagA, tagB)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		_ = b.SendTag(context.Background(), 0, tagB, []byte("slowish"))
	}()
	pol := transport.RetryPolicy{Timeout: 20 * time.Millisecond, Attempts: 20, Backoff: time.Millisecond}
	payload, err := a.RecvTagRetry(context.Background(), 1, tagA, pol)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "slowish" {
		t.Fatalf("payload %q", payload)
	}
	if st := a.Stats(); st.MsgsRecv != 1 || st.BytesRecv != int64(len(payload)) {
		t.Fatalf("stats %+v", st)
	}
}
