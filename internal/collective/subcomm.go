package collective

import (
	"fmt"

	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/sparse"
)

// subcommTagSpan is the tag space reserved for each forked child
// communicator. Tags inside a child never leave [base, base+span), so
// collectives issued concurrently on different children cannot interleave
// on the wire even though they share one transport endpoint. 2^22 tags
// per child leaves room for millions of collective invocations, far
// beyond any training run in this repository.
const subcommTagSpan = 1 << 22

// Fork splits off n child communicators that share c's transport endpoint
// but each own a disjoint tag space. The parent and every child remain
// independently usable, with one rule: a given (parent or child) must not
// be used from two goroutines at once, but DIFFERENT children may issue
// collectives concurrently — this is what the bucketed aggregation
// pipeline uses to overlap per-bucket gTopKAllReduce calls.
//
// Fork is itself a collective in spirit: every rank must fork the same
// communicator the same number of times in the same order, so child i on
// rank A talks to child i on rank B. Children start untimed and with
// fresh statistics; attach clocks with WithClock and fold counters back
// with AddStats. A child's finite tag span cannot hold nested spans, so
// re-forking a child panics on first use — fork the parent instead.
func (c *Comm) Fork(n int) ([]*Comm, error) {
	if n < 1 {
		return nil, fmt.Errorf("collective: fork into %d children", n)
	}
	base := c.claimTags(n * subcommTagSpan)
	kids := make([]*Comm, n)
	for i := range kids {
		kids[i] = &Comm{
			conn:     c.conn,
			nextTag:  base + i*subcommTagSpan,
			tagLimit: base + (i+1)*subcommTagSpan,
			fp16:     c.fp16,
			comp:     forkCompressor(c.comp, uint64(i)),
			tally:    c.tally,
			links:    c.links,
		}
	}
	return kids, nil
}

// forkCompressor derives child i's compound-pipeline transform; nil
// parents stay nil. Each child gets its own stochastic stream so
// concurrently running children never contend on (or reorder draws
// from) a shared rng.
func forkCompressor(comp sparse.Compressor, stream uint64) sparse.Compressor {
	if comp == nil {
		return nil
	}
	return comp.Fork(stream)
}

// Model returns the α-β cost model attached via WithClock; ok is false
// when the communicator is untimed.
func (c *Comm) Model() (model netsim.Model, ok bool) {
	return c.model, c.timed
}

// AddStats folds externally accumulated counters (typically a forked
// child's) into this communicator's totals, so per-rank statistics stay
// complete when traffic flows through sub-communicators. Call it from the
// goroutine that owns c.
func (c *Comm) AddStats(s Stats) {
	c.stats.Add(s)
}

// Add accumulates o into s field-wise.
func (s *Stats) Add(o Stats) {
	s.MsgsSent += o.MsgsSent
	s.MsgsRecv += o.MsgsRecv
	s.BytesSent += o.BytesSent
	s.BytesRecv += o.BytesRecv
	s.Rounds += o.Rounds
}
