package collective

import (
	"context"
	"fmt"
	"time"

	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/transport"
)

// This file implements the straggler-tolerant quorum primitives: a
// deadline-bounded gather that closes after q of P contributions, the
// deadline/retry receive custom collectives arm for verdict frames, and
// heterogeneous per-link round charging (netsim.LinkModel).

// QuorumRound reports one quorum gather: which ranks contributed before
// the round closed and which missed the deadline.
type QuorumRound struct {
	// Blobs holds, on the ROOT only, each participant's payload indexed
	// by rank (the root's own frame included); missed ranks are nil. On
	// non-root ranks Blobs is nil.
	Blobs [][]byte
	// Participants lists, on the root, the contributing ranks ascending
	// (always includes the root).
	Participants []int
	// Missed lists, on the root, the ranks whose frames had not arrived
	// when the round closed.
	Missed []int
}

// WithLinks attaches a heterogeneous per-link α-β model used by
// ChargeQuorumRound (nil detaches and falls back to the uniform model
// attached via WithClock). Inherited by Fork. Returns c for chaining.
func (c *Comm) WithLinks(lm *netsim.LinkModel) *Comm {
	c.links = lm
	return c
}

// Links returns the attached per-link model (nil when none).
func (c *Comm) Links() *netsim.LinkModel { return c.links }

// QuorumGather is the straggler-tolerant gather primitive: every
// non-root rank sends frame to root; the root collects contributions
// and closes the round as soon as either every rank has contributed or
// the per-round deadline has fired with at least q contributions in
// hand (its own included). If the deadline fires below quorum the root
// keeps waiting — a round never closes under q contributions, which is
// what bounds staleness: a frame is either in this round or refunded to
// its owner's residual, never silently dropped.
//
// Frames from ranks that miss the deadline are left to rot under this
// round's tag — each round claims a fresh tag, so a late frame can
// never leak into a later round.
//
// Every rank must pass the same q and timeout (SPMD). The root returns
// the round's blobs and participant/missed sets; non-root ranks return
// an empty QuorumRound once their send is accepted.
func (c *Comm) QuorumGather(ctx context.Context, root, q int, timeout time.Duration, frame []byte) (*QuorumRound, error) {
	p := c.Size()
	if root < 0 || root >= p {
		return nil, fmt.Errorf("collective: quorum root %d out of range [0,%d)", root, p)
	}
	if q < 1 || q > p {
		return nil, fmt.Errorf("collective: quorum %d out of range [1,%d]", q, p)
	}
	if timeout <= 0 {
		return nil, fmt.Errorf("collective: non-positive quorum timeout %v", timeout)
	}
	tag := c.claimTags(1)
	if c.Rank() != root {
		if err := c.send(ctx, root, tag, frame); err != nil {
			return nil, fmt.Errorf("collective: quorum send: %w", err)
		}
		return &QuorumRound{}, nil
	}

	// Root: one receive goroutine per peer races the deadline. The
	// goroutines call the raw endpoint (not c.recv) because Comm counters
	// are not goroutine-safe; stats are settled once below.
	type arrival struct {
		src  int
		blob []byte
		err  error
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan arrival, p-1)
	for src := 0; src < p; src++ {
		if src == root {
			continue
		}
		go func(src int) {
			blob, err := c.conn.Recv(rctx, src, tag)
			ch <- arrival{src: src, blob: blob, err: err}
		}(src)
	}

	res := &QuorumRound{Blobs: make([][]byte, p)}
	res.Blobs[root] = frame
	got := 1
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	expired := false
	for got < p && !(expired && got >= q) {
		select {
		case a := <-ch:
			if a.err != nil {
				return nil, fmt.Errorf("collective: quorum recv from %d: %w", a.src, a.err)
			}
			c.stats.MsgsRecv++
			c.stats.BytesRecv += int64(len(a.blob))
			res.Blobs[a.src] = a.blob
			got++
		case <-deadline.C:
			expired = true
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	for r := 0; r < p; r++ {
		if r == root || res.Blobs[r] != nil {
			res.Participants = append(res.Participants, r)
		} else {
			res.Missed = append(res.Missed, r)
		}
	}
	return res, nil
}

// RecvTagRetry is the deadline-aware receive for custom collectives: it
// wraps transport.RecvTagContext over this communicator's endpoint (per
// attempt timeout, bounded retries with backoff — transient delays and
// retransmitted drops are survived by re-arming), updating the
// statistics counters on success.
func (c *Comm) RecvTagRetry(ctx context.Context, src, tag int, pol transport.RetryPolicy) ([]byte, error) {
	payload, err := transport.RecvTagContext(ctx, c.conn, src, tag, pol)
	if err != nil {
		return nil, err
	}
	c.stats.MsgsRecv++
	c.stats.BytesRecv += int64(len(payload))
	return payload, nil
}

// ChargeQuorumRound accounts one quorum round (gather + verdict
// broadcast) on the simulated clock. With an attached LinkModel the
// round is priced per link: the gather closes with the slowest
// PARTICIPATING link — stragglers that missed the deadline charge
// nothing, which is the whole point of the quorum — and the verdict leg
// charges this rank's own link from the root. Without a LinkModel both
// legs fall back to the uniform model's synchronous rounds. Every rank
// derives participants from the root's verdict, so per-rank clocks stay
// a pure function of the straggler schedule.
func (c *Comm) ChargeQuorumRound(root int, participants []int, gatherElems, verdictElems int) {
	c.stats.Rounds += 2
	if !c.timed {
		return
	}
	if c.links != nil {
		c.clock.Advance(c.links.QuorumRound(c.Size(), root, c.Rank(), participants, gatherElems, verdictElems))
		return
	}
	c.clock.Advance(c.model.Round(len(participants), gatherElems))
	c.clock.Advance(c.model.Round(c.Size(), verdictElems))
}

// ChargeHierQuorumRound accounts one hierarchical quorum round — the
// intra-group gather, the leader-level gather, and the two-hop verdict
// relay (root→leaders, leaders→members) — on the simulated clock. With
// an attached LinkModel each level is priced per link over the
// PARTICIPATING links only (netsim.LinkModel.HierQuorumRound), so a
// straggling member or a wholly partitioned group charges nothing on the
// gather side. Without a LinkModel each level falls back to the uniform
// model with the level's own synchronization-domain size. Every rank
// derives participants from the root's verdict, so per-rank clocks stay
// a pure function of the straggler schedule.
func (c *Comm) ChargeHierQuorumRound(root, g int, participants []int, gatherElems, verdictElems int) {
	c.stats.Rounds += 4
	if !c.timed {
		return
	}
	world := c.Size()
	if c.links != nil {
		c.clock.Advance(c.links.HierQuorumRound(world, g, root, c.Rank(), participants, gatherElems, verdictElems))
		return
	}
	// Uniform fallback: the intra level synchronizes the largest
	// participating group, the leader level the participating groups, and
	// the verdict legs fan out over all ⌈P/g⌉ leaders then all g members.
	numGroups := (world + g - 1) / g
	perGroup := make([]int, numGroups)
	maxIntra, partGroups := 1, 0
	for _, p := range participants {
		grp := p / g
		perGroup[grp]++
		if perGroup[grp] == 1 {
			partGroups++
		}
		if perGroup[grp] > maxIntra {
			maxIntra = perGroup[grp]
		}
	}
	relay := g
	if relay > world {
		relay = world
	}
	c.clock.Advance(c.model.Round(maxIntra, gatherElems))
	c.clock.Advance(c.model.Round(partGroups, gatherElems))
	c.clock.Advance(c.model.Round(numGroups, verdictElems))
	c.clock.Advance(c.model.Round(relay, verdictElems))
}
