package collective

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/transport"
)

// forkGroupAll forks groups of g on every rank of a fresh in-process
// fabric and returns the per-rank GroupComms.
func forkGroupAll(t *testing.T, p, g int) ([]*GroupComms, func()) {
	t.Helper()
	fab, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	gcs := make([]*GroupComms, p)
	for r := 0; r < p; r++ {
		gc, err := New(fab.Conn(r)).ForkGroup(g)
		if err != nil {
			fab.Close()
			t.Fatalf("rank %d: %v", r, err)
		}
		gcs[r] = gc
	}
	return gcs, func() { fab.Close() }
}

// TestForkGroupTopology checks group indices, member/leader world sizes
// and leader placement across divisible and non-divisible worlds.
func TestForkGroupTopology(t *testing.T) {
	cases := []struct {
		p, g      int
		numGroups int
		sizes     []int // member-comm size per group
	}{
		{8, 4, 2, []int{4, 4}},
		{9, 4, 3, []int{4, 4, 1}},
		{6, 2, 3, []int{2, 2, 2}},
		{5, 5, 1, []int{5}},
		{4, 1, 4, []int{1, 1, 1, 1}},
	}
	for _, tc := range cases {
		gcs, done := forkGroupAll(t, tc.p, tc.g)
		for r, gc := range gcs {
			group := r / tc.g
			if gc.Group != group || gc.NumGroups != tc.numGroups {
				t.Fatalf("p=%d g=%d rank %d: group %d/%d, want %d/%d",
					tc.p, tc.g, r, gc.Group, gc.NumGroups, group, tc.numGroups)
			}
			if got := gc.Members.Size(); got != tc.sizes[group] {
				t.Fatalf("p=%d g=%d rank %d: member size %d, want %d", tc.p, tc.g, r, got, tc.sizes[group])
			}
			if got, want := gc.Members.Rank(), r-group*tc.g; got != want {
				t.Fatalf("p=%d g=%d rank %d: member rank %d, want %d", tc.p, tc.g, r, got, want)
			}
			isLeader := r%tc.g == 0
			if gc.IsLeader() != isLeader {
				t.Fatalf("p=%d g=%d rank %d: IsLeader %v", tc.p, tc.g, r, gc.IsLeader())
			}
			if isLeader {
				if gc.Leaders.Size() != tc.numGroups || gc.Leaders.Rank() != group {
					t.Fatalf("p=%d g=%d rank %d: leader rank/size %d/%d, want %d/%d",
						tc.p, tc.g, r, gc.Leaders.Rank(), gc.Leaders.Size(), group, tc.numGroups)
				}
			}
		}
		done()
	}
}

// TestForkGroupRejectsBadSizes: group sizes outside [1, world] fail.
func TestForkGroupRejectsBadSizes(t *testing.T) {
	fab, err := transport.NewInProc(4)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	c := New(fab.Conn(0))
	for _, g := range []int{0, -1, 5} {
		if _, err := c.ForkGroup(g); err == nil {
			t.Fatalf("ForkGroup(%d) succeeded", g)
		}
	}
}

// TestForkGroupCollectivesIsolated runs a member-level collective in
// every group concurrently with a leader-level collective, over the
// same forked structure, and checks the traffic never crosses: each
// group's broadcast delivers its own leader's payload, and the leader
// barrier-style exchange sees only leaders.
func TestForkGroupCollectivesIsolated(t *testing.T) {
	const p, g = 8, 4
	fab, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()

	var wg sync.WaitGroup
	errs := make([]error, p)
	got := make([][]float32, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			gc, err := New(fab.Conn(rank)).ForkGroup(g)
			if err != nil {
				errs[rank] = err
				return
			}
			// Leaders agree on a value via their own comm first.
			val := []float32{0}
			if gc.IsLeader() {
				val[0] = float32(100 + gc.Group)
				if err := gc.Leaders.RingAllReduceSum(context.Background(), val); err != nil {
					errs[rank] = err
					return
				}
				// Sum over leaders: 100+0 + 100+1 = 201 for p=8,g=4.
			}
			// Each leader broadcasts (its group index, the leader sum)
			// within its group.
			payload, err := gc.Members.Bcast(context.Background(), 0, []byte{byte(gc.Group), byte(val[0])})
			if err != nil {
				errs[rank] = err
				return
			}
			got[rank] = []float32{float32(payload[0]), float32(payload[1])}
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for r := 0; r < p; r++ {
		// Sum over leaders: (100+0) + (100+1) = 201 for p=8, g=4.
		if got[r][0] != float32(r/g) || got[r][1] != 201 {
			t.Fatalf("rank %d: got %v, want [%d 201]", r, got[r], r/g)
		}
	}
}

// TestForkGroupInheritsPreferences: fp16 preference and the parent's
// negotiated wire version must carry into both sub-communicators.
func TestForkGroupInheritsPreferences(t *testing.T) {
	fab, err := transport.NewInProcWire(4, transport.WireV2)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	parent := New(fab.Conn(0))
	parent.SetFP16Values(true)
	gc, err := parent.ForkGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	if gc.Members.WireCodec() != parent.WireCodec() {
		t.Fatalf("member codec %v, parent %v", gc.Members.WireCodec(), parent.WireCodec())
	}
	if gc.Leaders == nil || gc.Leaders.WireCodec() != parent.WireCodec() {
		t.Fatal("leader codec does not match parent")
	}
}

// TestChargeRoundAmong pins the skew-aware round accounting: the charged
// domain, not the communicator world, sets the latency inflation.
func TestChargeRoundAmong(t *testing.T) {
	fab, err := transport.NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	model := netsim.Model{Alpha: time.Millisecond, Beta: time.Microsecond, SyncGamma: 0.5}
	var clock netsim.Clock
	c := New(fab.Conn(0)).WithClock(&clock, model)

	c.ChargeRoundAmong(16, 10)
	want := model.Round(16, 10)
	if clock.Now() != want {
		t.Fatalf("clock %v, want %v", clock.Now(), want)
	}
	// log2(16) = 4 with gamma 0.5 => alpha multiplier 3.
	if wantAlpha := 3 * time.Millisecond; want != wantAlpha+10*time.Microsecond {
		t.Fatalf("Round(16,10) = %v, want %v", want, wantAlpha+10*time.Microsecond)
	}
	if got := c.Stats().Rounds; got != 1 {
		t.Fatalf("rounds %d, want 1", got)
	}
	// ChargeRound uses the communicator's own (2-rank) world.
	clock.Reset()
	c.ChargeRound(10)
	if clock.Now() != model.Round(2, 10) {
		t.Fatalf("ChargeRound clock %v, want %v", clock.Now(), model.Round(2, 10))
	}
}

// TestForkGroupTagSpansFitInForkedChild: a bucketed-pipeline child (one
// Fork span) must be able to host a group hierarchy — the claim below
// panics if the spans do not fit.
func TestForkGroupTagSpansFitInForkedChild(t *testing.T) {
	const p = 4
	fab, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			kids, err := New(fab.Conn(rank)).Fork(2)
			if err != nil {
				errs[rank] = err
				return
			}
			for i, kid := range kids {
				gc, err := kid.ForkGroup(2)
				if err != nil {
					errs[rank] = fmt.Errorf("kid %d: %w", i, err)
					return
				}
				// The child must still have tag room of its own.
				if err := kid.Barrier(context.Background()); err != nil {
					errs[rank] = fmt.Errorf("kid %d barrier: %w", i, err)
					return
				}
				if err := gc.Members.Barrier(context.Background()); err != nil {
					errs[rank] = fmt.Errorf("kid %d member barrier: %w", i, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}
