package collective

import (
	"context"
	"sync"
	"testing"
	"time"

	"gtopkssgd/internal/transport"
)

// Failure-injection tests: collectives must fail fast (error, not hang)
// when a peer disappears or the caller cancels — the behaviours that
// matter when the TCP fabric runs over a real, fallible network.

func TestRingAllReduceFailsWhenPeerCloses(t *testing.T) {
	const p = 4
	f, err := transport.NewTCP(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Rank 2 dies before participating.
	if err := f.Conn(2).Close(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		if r == 2 {
			continue
		}
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := New(f.Conn(rank))
			errs[rank] = c.RingAllReduceSum(ctx, make([]float32, 100))
		}(r)
	}
	wg.Wait()
	// At least rank 1 and 3 (the dead rank's ring neighbours) must error
	// rather than hang; nobody may still be blocked (wg.Wait returned).
	failed := 0
	for r, err := range errs {
		if r != 2 && err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no surviving rank observed the peer failure")
	}
}

func TestBcastCancelledMidway(t *testing.T) {
	const p = 4
	f, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Only rank 3 participates; it blocks waiting for the payload that
	// never comes, until the context is cancelled.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := New(f.Conn(3)).Bcast(ctx, 0, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled bcast returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("bcast did not unblock on cancellation")
	}
}

func TestBarrierCancelledMidway(t *testing.T) {
	const p = 3
	f, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- New(f.Conn(0)).Barrier(ctx)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled barrier returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("barrier did not unblock on cancellation")
	}
}

func TestAllGatherCorruptPayloadRejected(t *testing.T) {
	// A malformed block payload injected at the transport level must be
	// reported as an error by AllGather, not crash or corrupt state.
	const p = 2
	f, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()

	// Rank 1 sends garbage under the tag AllGather round 0 will use
	// (first claimed tag = 0), instead of calling AllGather.
	go func() {
		f.Conn(1).Send(ctx, 0, 0, []byte{0xFF, 0xFF}) //nolint:errcheck
		// Drain rank 0's send so it does not block forever.
		f.Conn(1).Recv(ctx, 0, 0) //nolint:errcheck
	}()
	_, err = New(f.Conn(0)).AllGather(ctx, []byte("mine"))
	if err == nil {
		t.Fatal("corrupt payload accepted")
	}
}
