// Package collective implements the MPI-style collective operations the
// paper builds on: dissemination barrier, binomial-tree broadcast,
// recursive-doubling and ring AllGather, and ring AllReduce
// (reduce-scatter + all-gather) over dense float32 vectors.
//
// Collectives execute for real over a transport fabric, so results are
// bit-exact and testable; simultaneously each communicator can be
// attached to a simulated clock (netsim) that prices every communication
// round with the α-β model, reproducing the paper's cost equations
// (Table I) without needing 32 physical machines.
package collective

import (
	"context"
	"fmt"

	"gtopkssgd/internal/metrics"
	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

// Stats accumulates communication counters for one rank. All collectives
// executed through a Comm add to these totals.
type Stats struct {
	MsgsSent  int
	MsgsRecv  int
	BytesSent int64
	BytesRecv int64
	Rounds    int
}

// Comm is one rank's communicator: a transport endpoint plus bookkeeping
// (tag sequencing, statistics, optional simulated-time accounting).
//
// A Comm is used SPMD-style: every rank must invoke the same collectives
// in the same order. It is not safe for concurrent use by multiple
// goroutines.
type Comm struct {
	conn  transport.Conn
	stats Stats

	clock *netsim.Clock
	model netsim.Model
	timed bool
	// links, when non-nil, prices quorum rounds with per-link α-β
	// parameters instead of the uniform model (see WithLinks).
	links *netsim.LinkModel

	nextTag int
	// tagLimit bounds this communicator's tag space (exclusive); 0 means
	// unbounded. Forked children get a finite span so overrunning it
	// fails loudly instead of silently bleeding into a sibling's tags.
	tagLimit int

	// fp16 opts encoders into half-precision values when the negotiated
	// wire version supports them (see WireCodec). Inherited by Fork.
	fp16 bool
	// comp, when non-nil, is the compound-pipeline value transform: its
	// ValueCodec steers WireCodec onto a v3 quantized codec and the
	// collectives quantize hop values through it. Forked children get
	// independent streams via Compressor.Fork.
	comp sparse.Compressor
	// tally, when non-nil, receives raw-vs-encoded byte counts for every
	// sparse frame custom collectives move. Inherited by Fork.
	tally *metrics.WireTally
}

// New wraps a transport endpoint in a communicator.
func New(conn transport.Conn) *Comm {
	return &Comm{conn: conn}
}

// Rebuild wraps a fresh transport endpoint in a communicator that
// starts from previously accumulated statistics. Elastic jobs tear the
// mesh down and re-wire it on every cluster epoch; rebuilding the
// communicator with the carried counters keeps per-worker communication
// totals meaningful across epochs. The tag space restarts at zero —
// the new epoch's mesh has never seen any tag — so sub-communicators
// forked from the previous epoch's Comm are dead and must be re-forked
// from the rebuilt one.
func Rebuild(conn transport.Conn, carried Stats) *Comm {
	return &Comm{conn: conn, stats: carried}
}

// WithClock attaches a simulated clock priced by model. Every subsequent
// communication round advances the clock by α + nβ for the n elements the
// slowest participant moves in that round. Returns c for chaining.
func (c *Comm) WithClock(clock *netsim.Clock, model netsim.Model) *Comm {
	c.clock = clock
	c.model = model
	c.timed = true
	return c
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.conn.Rank() }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.conn.Size() }

// Stats returns a copy of the accumulated counters.
func (c *Comm) Stats() Stats { return c.stats }

// ResetStats zeroes the accumulated counters.
func (c *Comm) ResetStats() { c.stats = Stats{} }

// Clock returns the attached simulated clock (nil when untimed).
func (c *Comm) Clock() *netsim.Clock { return c.clock }

// send transmits payload and updates counters.
func (c *Comm) send(ctx context.Context, dst, tag int, payload []byte) error {
	if err := c.conn.Send(ctx, dst, tag, payload); err != nil {
		return err
	}
	c.stats.MsgsSent++
	c.stats.BytesSent += int64(len(payload))
	return nil
}

// recv receives a payload and updates counters.
func (c *Comm) recv(ctx context.Context, src, tag int) ([]byte, error) {
	payload, err := c.conn.Recv(ctx, src, tag)
	if err != nil {
		return nil, err
	}
	c.stats.MsgsRecv++
	c.stats.BytesRecv += int64(len(payload))
	return payload, nil
}

// chargeRound accounts one communication round in which this rank moves
// elems float32-sized elements (α + elems·β on the simulated clock,
// inflated by the model's synchronization-skew term for this
// communicator's world size). Rounds where this rank only waits still
// pay the latency term α, which models the synchronous structure of the
// paper's algorithms.
func (c *Comm) chargeRound(elems int) {
	c.chargeRoundAmong(c.Size(), elems)
}

// chargeRoundAmong is chargeRound for a round whose synchronization
// domain is not this communicator's world — e.g. a rank mirroring the
// leader-level exchange it idles through in the hierarchical collective.
func (c *Comm) chargeRoundAmong(participants, elems int) {
	c.stats.Rounds++
	if c.timed {
		c.clock.Advance(c.model.Round(participants, elems))
	}
}

// ClaimTags reserves n consecutive tags for a custom collective built on
// top of this communicator (e.g. core.GTopKAllReduce) and returns the
// first. Every rank must claim the same tag counts in the same order.
func (c *Comm) ClaimTags(n int) int { return c.claimTags(n) }

// SendTag sends payload to dst under a tag claimed via ClaimTags,
// updating the statistics counters.
func (c *Comm) SendTag(ctx context.Context, dst, tag int, payload []byte) error {
	return c.send(ctx, dst, tag, payload)
}

// SendTagPooled is SendTag for payloads drawn from the shared wire-buffer
// pool (sparse.GetBuffer): ownership passes to the fabric, which recycles
// the buffer at the earliest safe point — inside Send on fabrics that
// consume payloads synchronously (TCP), at the receiver otherwise. The
// caller must not touch the payload afterwards.
func (c *Comm) SendTagPooled(ctx context.Context, dst, tag int, payload []byte) error {
	if err := transport.SendPooled(ctx, c.conn, dst, tag, payload); err != nil {
		return err
	}
	c.stats.MsgsSent++
	c.stats.BytesSent += int64(len(payload))
	return nil
}

// SendTagVec sends a batch of frames to dst in order under one tag —
// the scatter-gather counterpart of SendTag, with the same plain-Send
// ownership rule per frame. On fabrics with a vectored capability the
// whole batch coalesces into one wire operation; elsewhere it degrades
// to per-frame sends with identical delivery order. Statistics count
// each frame as one message.
func (c *Comm) SendTagVec(ctx context.Context, dst, tag int, frames [][]byte) error {
	if err := transport.SendVec(ctx, c.conn, dst, tag, frames); err != nil {
		return err
	}
	c.stats.MsgsSent += len(frames)
	for _, payload := range frames {
		c.stats.BytesSent += int64(len(payload))
	}
	return nil
}

// SendTagVecPooled is SendTagVec for frames drawn from the shared
// wire-buffer pool: the caller relinquishes every frame, and each is
// recycled at the earliest safe point (see transport.SendVecPooled).
func (c *Comm) SendTagVecPooled(ctx context.Context, dst, tag int, frames [][]byte) error {
	var bytes int64
	for _, payload := range frames {
		bytes += int64(len(payload))
	}
	if err := transport.SendVecPooled(ctx, c.conn, dst, tag, frames); err != nil {
		return err
	}
	c.stats.MsgsSent += len(frames)
	c.stats.BytesSent += bytes
	return nil
}

// RecvTag receives the payload sent by src under a tag claimed via
// ClaimTags, updating the statistics counters.
func (c *Comm) RecvTag(ctx context.Context, src, tag int) ([]byte, error) {
	return c.recv(ctx, src, tag)
}

// RecvIsPrivate reports whether payloads returned by RecvTag are private
// per-receiver copies (true over TCP, false in-process). Shared payloads
// must never be recycled once forwarded.
func (c *Comm) RecvIsPrivate() bool { return transport.PrivateRecv(c.conn) }

// SendConsumedOnReturn reports whether a plain SendTag fully consumes
// the payload before returning (true over TCP, false in-process, where
// the receiver gets the sender's slice). Only then may a sender recycle
// a buffer it passed to SendTag; recycling a payload that was also
// received additionally requires RecvIsPrivate.
func (c *Comm) SendConsumedOnReturn() bool { return transport.SendConsumedOnReturn(c.conn) }

// ChargeRound lets custom collectives account one synchronous
// communication round moving elems float32-sized elements.
func (c *Comm) ChargeRound(elems int) { c.chargeRound(elems) }

// ChargeRoundAmong accounts one synchronous round whose straggler
// ensemble is `participants` ranks rather than this communicator's
// world — hierarchical collectives use it so non-leaders pay for the
// leader-level rounds they wait out.
func (c *Comm) ChargeRoundAmong(participants, elems int) {
	c.chargeRoundAmong(participants, elems)
}

// WireVersion reports the sparse wire-codec version negotiated across
// this communicator's fabric (v1 for transports without negotiation).
func (c *Comm) WireVersion() byte { return transport.NegotiatedWireVersion(c.conn) }

// SetFP16Values opts this communicator's sparse encoders into binary16
// values when the negotiated wire version supports them (v2). On a mesh
// a v1 peer dragged down to v1 frames, the preference is silently
// ineffective — v1 has no fp16 mode — which keeps mixed fleets lossless.
func (c *Comm) SetFP16Values(on bool) { c.fp16 = on }

// SetCompressor attaches a compound-pipeline value transform (see
// sparse.Compressor, quant.NewStack). With a v3 mesh the attached
// codec's quantized frames go on the wire; on a mesh negotiated down to
// v2 or v1 the preference degrades losslessly (fp16 stays fp16 on v2,
// quantized preferences fall back to exact values), so one old peer
// never changes what the maths computes — only how many bytes it
// costs. nil detaches. Must be set before any collective runs.
func (c *Comm) SetCompressor(comp sparse.Compressor) { c.comp = comp }

// Compressor returns the attached compound-pipeline transform (nil when
// none).
func (c *Comm) Compressor() sparse.Compressor { return c.comp }

// WireCodec resolves the sparse codec custom collectives must encode
// their frames with: the mesh-negotiated wire version combined with this
// communicator's value-precision preference (an attached Compressor
// wins over the plain fp16 toggle).
func (c *Comm) WireCodec() sparse.Codec {
	if c.comp != nil {
		vc := c.comp.ValueCodec()
		if c.fp16 && vc == sparse.ValueF32 {
			vc = sparse.ValueF16
		}
		return sparse.CodecForWireValue(c.WireVersion(), vc)
	}
	return sparse.CodecForWire(c.WireVersion(), c.fp16)
}

// SetWireTally attaches a per-round wire-byte tally; every sparse frame
// a codec-aware collective ENCODES through this communicator (and its
// forked children) is recorded as raw-vs-encoded bytes — one
// observation per frame, retransmissions excluded (see
// metrics.WireTally). nil detaches.
func (c *Comm) SetWireTally(t *metrics.WireTally) { c.tally = t }

// TallyWire records one encoded sparse frame: rawBytes is the flat
// v1-equivalent size, wireBytes the encoded frame size. No-op without an
// attached tally.
func (c *Comm) TallyWire(rawBytes, wireBytes int) {
	if c.tally != nil {
		c.tally.Observe(int64(rawBytes), int64(wireBytes))
	}
}

// claimTags reserves n consecutive tags for a collective invocation and
// returns the first. Because every rank issues the same collective
// sequence, tag counters advance in lock step across ranks, isolating
// concurrent wire traffic of adjacent collectives.
func (c *Comm) claimTags(n int) int {
	base := c.nextTag
	c.nextTag += n
	if c.tagLimit > 0 && c.nextTag > c.tagLimit {
		panic(fmt.Sprintf("collective: tag space exhausted (next %d > limit %d); forked sub-communicator outlived its %d-tag span", c.nextTag, c.tagLimit, subcommTagSpan))
	}
	return base
}

// requirePow2 validates the power-of-two worker counts the paper's
// recursive algorithms assume ("we assume that the number of workers P is
// the power of 2", Section III).
func requirePow2(p int) error {
	if p < 1 || p&(p-1) != 0 {
		return fmt.Errorf("collective: %d workers; algorithm requires a power of two", p)
	}
	return nil
}

// log2 returns floor(log2(p)) for p >= 1.
func log2(p int) int {
	n := 0
	for p > 1 {
		p >>= 1
		n++
	}
	return n
}
