package collective

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"gtopkssgd/internal/transport"
)

// forkSPMD runs body on every rank of a fresh in-process fabric.
func forkSPMD(t *testing.T, p int, body func(c *Comm) error) {
	t.Helper()
	f, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = body(New(f.Conn(rank)))
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestForkConcurrentCollectives runs several collectives CONCURRENTLY on
// forked children of one communicator per rank and checks that payloads
// never cross between children — the tag-isolation property the bucketed
// aggregation pipeline depends on. Run with -race in CI.
func TestForkConcurrentCollectives(t *testing.T) {
	const p, children, rounds = 4, 3, 5
	forkSPMD(t, p, func(c *Comm) error {
		kids, err := c.Fork(children)
		if err != nil {
			return err
		}
		var wg sync.WaitGroup
		errs := make([]error, children)
		for i, kid := range kids {
			wg.Add(1)
			go func(i int, kid *Comm) {
				defer wg.Done()
				for rd := 0; rd < rounds; rd++ {
					// Distinct payload per (child, round, rank): an
					// AllGather must return exactly its own child's set.
					mine := make([]byte, 12)
					binary.LittleEndian.PutUint32(mine[0:4], uint32(i))
					binary.LittleEndian.PutUint32(mine[4:8], uint32(rd))
					binary.LittleEndian.PutUint32(mine[8:12], uint32(kid.Rank()))
					blobs, err := kid.AllGather(context.Background(), mine)
					if err != nil {
						errs[i] = fmt.Errorf("child %d round %d: %w", i, rd, err)
						return
					}
					for r, blob := range blobs {
						if len(blob) != 12 {
							errs[i] = fmt.Errorf("child %d round %d: blob len %d", i, rd, len(blob))
							return
						}
						gotChild := binary.LittleEndian.Uint32(blob[0:4])
						gotRound := binary.LittleEndian.Uint32(blob[4:8])
						gotRank := binary.LittleEndian.Uint32(blob[8:12])
						if int(gotChild) != i || int(gotRound) != rd || int(gotRank) != r {
							errs[i] = fmt.Errorf("child %d round %d: crossed payload (child %d round %d rank %d)",
								i, rd, gotChild, gotRound, gotRank)
							return
						}
					}
				}
			}(i, kid)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		// The parent must remain usable after (and interleaved with) the
		// children: tag spaces are disjoint by construction.
		return c.Barrier(context.Background())
	})
}

func TestForkRejectsNonPositive(t *testing.T) {
	forkSPMD(t, 1, func(c *Comm) error {
		if _, err := c.Fork(0); err == nil {
			return fmt.Errorf("Fork(0) should fail")
		}
		return nil
	})
}

// TestForkTagSpanGuard: a forked child that outruns its reserved tag
// span must fail loudly instead of silently colliding with its sibling.
func TestForkTagSpanGuard(t *testing.T) {
	forkSPMD(t, 1, func(c *Comm) error {
		kids, err := c.Fork(2)
		if err != nil {
			return err
		}
		defer func() {
			if recover() == nil {
				t.Error("claiming past the child tag span should panic")
			}
		}()
		kids[0].ClaimTags(subcommTagSpan + 1)
		return nil
	})
}

func TestStatsAdd(t *testing.T) {
	a := Stats{MsgsSent: 1, MsgsRecv: 2, BytesSent: 3, BytesRecv: 4, Rounds: 5}
	a.Add(Stats{MsgsSent: 10, MsgsRecv: 20, BytesSent: 30, BytesRecv: 40, Rounds: 50})
	want := Stats{MsgsSent: 11, MsgsRecv: 22, BytesSent: 33, BytesRecv: 44, Rounds: 55}
	if a != want {
		t.Fatalf("Stats.Add = %+v, want %+v", a, want)
	}
}

func TestAddStatsFoldsIntoComm(t *testing.T) {
	forkSPMD(t, 2, func(c *Comm) error {
		kids, err := c.Fork(1)
		if err != nil {
			return err
		}
		if err := kids[0].Barrier(context.Background()); err != nil {
			return err
		}
		before := c.Stats()
		c.AddStats(kids[0].Stats())
		after := c.Stats()
		if after.MsgsSent <= before.MsgsSent {
			return fmt.Errorf("child traffic not folded: before %+v after %+v", before, after)
		}
		return nil
	})
}
