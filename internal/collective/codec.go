package collective

import (
	"encoding/binary"
	"fmt"
	"math"
)

// encodeF32 serialises xs as raw little-endian float32s (no length prefix;
// the ring algorithm knows chunk sizes from rank arithmetic).
func encodeF32(xs []float32) []byte {
	buf := make([]byte, 4*len(xs))
	for i, v := range xs {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return buf
}

// addDecodedF32 adds the raw float32 payload into dst element-wise.
func addDecodedF32(dst []float32, buf []byte) error {
	if len(buf) != 4*len(dst) {
		return fmt.Errorf("collective: payload %d bytes for %d-element chunk", len(buf), len(dst))
	}
	for i := range dst {
		dst[i] += math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}

// copyDecodedF32 overwrites dst with the raw float32 payload.
func copyDecodedF32(dst []float32, buf []byte) error {
	if len(buf) != 4*len(dst) {
		return fmt.Errorf("collective: payload %d bytes for %d-element chunk", len(buf), len(dst))
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}

// packBlocks serialises the contiguous rank block [low, low+size) of out:
//
//	uint32 count | count × (uint32 rank | uint32 len | bytes)
func packBlocks(out [][]byte, low, size, p int) []byte {
	total := 4
	for i := 0; i < size; i++ {
		total += 8 + len(out[(low+i)%p])
	}
	buf := make([]byte, 0, total)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(size))
	buf = append(buf, hdr[:4]...)
	for i := 0; i < size; i++ {
		rank := (low + i) % p
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(rank))
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(out[rank])))
		buf = append(buf, hdr[:]...)
		buf = append(buf, out[rank]...)
	}
	return buf
}

// unpackBlocks parses packBlocks output into out by rank.
func unpackBlocks(out [][]byte, buf []byte) error {
	if len(buf) < 4 {
		return fmt.Errorf("collective: block payload too short (%d bytes)", len(buf))
	}
	count := int(binary.LittleEndian.Uint32(buf[:4]))
	off := 4
	for i := 0; i < count; i++ {
		if off+8 > len(buf) {
			return fmt.Errorf("collective: truncated block header at entry %d", i)
		}
		rank := int(binary.LittleEndian.Uint32(buf[off : off+4]))
		n := int(binary.LittleEndian.Uint32(buf[off+4 : off+8]))
		off += 8
		if rank < 0 || rank >= len(out) {
			return fmt.Errorf("collective: block rank %d out of range", rank)
		}
		if off+n > len(buf) {
			return fmt.Errorf("collective: truncated block body at entry %d", i)
		}
		out[rank] = buf[off : off+n]
		off += n
	}
	if off != len(buf) {
		return fmt.Errorf("collective: %d trailing bytes in block payload", len(buf)-off)
	}
	return nil
}
