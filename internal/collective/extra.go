package collective

import (
	"context"
	"fmt"
)

// This file completes the collective library with the operations a
// downstream user of the transport layer would expect from an MPI-like
// substrate (Reduce, Gather, Scatter, AllToAll). The paper's algorithms
// only need the primitives in primitives.go; these exist so the library
// stands alone as a communication package and so the PS-mode extension
// has idiomatic building blocks.

// Reduce sums x element-wise across all ranks onto root using a binomial
// tree (log2(P) rounds). Non-root ranks' x buffers are left with partial
// sums; only root's buffer holds the final result.
func (c *Comm) Reduce(ctx context.Context, root int, x []float32) error {
	p := c.Size()
	if root < 0 || root >= p {
		return fmt.Errorf("collective: reduce root %d out of range [0,%d)", root, p)
	}
	rounds := log2(p)
	if 1<<rounds < p {
		rounds++
	}
	base := c.claimTags(rounds)
	if p == 1 {
		return nil
	}
	vrank := (c.Rank() - root + p) % p
	// Mirror of the binomial broadcast: in round j (counting down), ranks
	// with vrank in [span, 2span) send their partial sum to vrank-span.
	active := true
	for j := rounds - 1; j >= 0; j-- {
		span := 1 << j
		switch {
		case active && vrank >= span && vrank < 2*span:
			dst := ((vrank - span) + root) % p
			if err := c.send(ctx, dst, base+j, encodeF32(x)); err != nil {
				return fmt.Errorf("reduce round %d: %w", j, err)
			}
			active = false
		case active && vrank < span:
			peer := vrank + span
			if peer < p {
				src := (peer + root) % p
				blob, err := c.recv(ctx, src, base+j)
				if err != nil {
					return fmt.Errorf("reduce round %d: %w", j, err)
				}
				if err := addDecodedF32(x, blob); err != nil {
					return fmt.Errorf("reduce round %d: %w", j, err)
				}
			}
		}
		c.chargeRound(len(x))
	}
	return nil
}

// BcastFloat32s broadcasts root's float32 vector to every rank along
// the binomial Bcast tree and returns the received vector (the root's
// own slice is returned as-is). Non-root ranks pass nil. It exists for
// the elastic runtime's grow path: when a late joiner enters an epoch
// it adopts the cluster's weights and momentum from a donor rank, and
// those live as float32 vectors, not raw frames.
func (c *Comm) BcastFloat32s(ctx context.Context, root int, vec []float32) ([]float32, error) {
	var payload []byte
	if c.Rank() == root {
		payload = encodeF32(vec)
	}
	blob, err := c.Bcast(ctx, root, payload)
	if err != nil {
		return nil, fmt.Errorf("collective: bcast float32s: %w", err)
	}
	if c.Rank() == root {
		return vec, nil
	}
	if len(blob)%4 != 0 {
		return nil, fmt.Errorf("collective: bcast float32s: %d-byte payload not a float32 vector", len(blob))
	}
	out := make([]float32, len(blob)/4)
	if err := copyDecodedF32(out, blob); err != nil {
		return nil, err
	}
	return out, nil
}

// Gather collects every rank's payload at root (ranks send directly;
// this is the flat star used by parameter servers). Root receives the
// payloads indexed by rank; other ranks receive nil.
func (c *Comm) Gather(ctx context.Context, root int, payload []byte) ([][]byte, error) {
	p := c.Size()
	if root < 0 || root >= p {
		return nil, fmt.Errorf("collective: gather root %d out of range [0,%d)", root, p)
	}
	base := c.claimTags(1)
	if c.Rank() != root {
		if err := c.send(ctx, root, base, payload); err != nil {
			return nil, fmt.Errorf("gather: %w", err)
		}
		for i := 0; i < p-1; i++ {
			c.chargeRound(len(payload) / 4)
		}
		return nil, nil
	}
	out := make([][]byte, p)
	out[root] = payload
	for src := 0; src < p; src++ {
		if src == root {
			continue
		}
		blob, err := c.recv(ctx, src, base)
		if err != nil {
			return nil, fmt.Errorf("gather from %d: %w", src, err)
		}
		out[src] = blob
		c.chargeRound(len(blob) / 4)
	}
	return out, nil
}

// Scatter distributes root's per-rank payloads: rank r receives
// payloads[r]. Non-root ranks pass nil payloads.
func (c *Comm) Scatter(ctx context.Context, root int, payloads [][]byte) ([]byte, error) {
	p := c.Size()
	if root < 0 || root >= p {
		return nil, fmt.Errorf("collective: scatter root %d out of range [0,%d)", root, p)
	}
	base := c.claimTags(1)
	if c.Rank() == root {
		if len(payloads) != p {
			return nil, fmt.Errorf("collective: scatter needs %d payloads, got %d", p, len(payloads))
		}
		for dst := 0; dst < p; dst++ {
			if dst == root {
				continue
			}
			if err := c.send(ctx, dst, base, payloads[dst]); err != nil {
				return nil, fmt.Errorf("scatter to %d: %w", dst, err)
			}
			c.chargeRound(len(payloads[dst]) / 4)
		}
		return payloads[root], nil
	}
	blob, err := c.recv(ctx, root, base)
	if err != nil {
		return nil, fmt.Errorf("scatter: %w", err)
	}
	for i := 0; i < p-1; i++ {
		c.chargeRound(len(blob) / 4)
	}
	return blob, nil
}

// AllToAll performs a personalized exchange: rank r sends payloads[d] to
// every d and receives one payload from every rank (its own entry passes
// through untouched). Pairwise-exchange schedule, P−1 rounds.
func (c *Comm) AllToAll(ctx context.Context, payloads [][]byte) ([][]byte, error) {
	p := c.Size()
	if len(payloads) != p {
		return nil, fmt.Errorf("collective: alltoall needs %d payloads, got %d", p, len(payloads))
	}
	base := c.claimTags(p)
	r := c.Rank()
	out := make([][]byte, p)
	out[r] = payloads[r]
	for step := 1; step < p; step++ {
		// XOR schedule pairs ranks cleanly when P is a power of two and
		// degrades to a valid (if unbalanced) schedule otherwise.
		peer := r ^ step
		if peer >= p {
			c.chargeRound(0)
			continue
		}
		var got []byte
		if r < peer {
			if err := c.send(ctx, peer, base+step, payloads[peer]); err != nil {
				return nil, fmt.Errorf("alltoall step %d: %w", step, err)
			}
			blob, err := c.recv(ctx, peer, base+step)
			if err != nil {
				return nil, fmt.Errorf("alltoall step %d: %w", step, err)
			}
			got = blob
		} else {
			blob, err := c.recv(ctx, peer, base+step)
			if err != nil {
				return nil, fmt.Errorf("alltoall step %d: %w", step, err)
			}
			got = blob
			if err := c.send(ctx, peer, base+step, payloads[peer]); err != nil {
				return nil, fmt.Errorf("alltoall step %d: %w", step, err)
			}
		}
		out[peer] = got
		c.chargeRound(len(payloads[peer]) / 4)
	}
	return out, nil
}
