package collective

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"gtopkssgd/internal/netsim"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/transport"
)

// runSPMD executes body concurrently on every rank of a fresh in-process
// fabric and fails the test on any per-rank error.
func runSPMD(t *testing.T, p int, body func(c *Comm) error) {
	t.Helper()
	f, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runSPMDOn(t, f, body)
}

func runSPMDOn(t *testing.T, f transport.Fabric, body func(c *Comm) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, f.Size())
	for r := 0; r < f.Size(); r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = body(New(f.Conn(rank)))
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestBarrierAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 13} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			runSPMD(t, p, func(c *Comm) error {
				for i := 0; i < 3; i++ {
					if err := c.Barrier(context.Background()); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

func TestBarrierActuallySynchronises(t *testing.T) {
	// A counter incremented before the barrier must be complete when any
	// rank exits the barrier.
	const p = 8
	var mu sync.Mutex
	arrived := 0
	runSPMD(t, p, func(c *Comm) error {
		mu.Lock()
		arrived++
		mu.Unlock()
		if err := c.Barrier(context.Background()); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if arrived != p {
			return fmt.Errorf("rank %d exited barrier with only %d arrivals", c.Rank(), arrived)
		}
		return nil
	})
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
		for root := 0; root < p; root++ {
			t.Run(fmt.Sprintf("p=%d/root=%d", p, root), func(t *testing.T) {
				payload := []byte(fmt.Sprintf("hello from %d", root))
				runSPMD(t, p, func(c *Comm) error {
					var in []byte
					if c.Rank() == root {
						in = payload
					}
					got, err := c.Bcast(context.Background(), root, in)
					if err != nil {
						return err
					}
					if string(got) != string(payload) {
						return fmt.Errorf("rank %d got %q", c.Rank(), got)
					}
					return nil
				})
			})
		}
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	runSPMD(t, 2, func(c *Comm) error {
		if _, err := c.Bcast(context.Background(), 5, nil); err == nil {
			return fmt.Errorf("invalid root accepted")
		}
		return nil
	})
}

func TestAllGather(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			runSPMD(t, p, func(c *Comm) error {
				mine := []byte(fmt.Sprintf("rank-%d-data", c.Rank()))
				all, err := c.AllGather(context.Background(), mine)
				if err != nil {
					return err
				}
				if len(all) != p {
					return fmt.Errorf("got %d entries", len(all))
				}
				for r, blob := range all {
					if want := fmt.Sprintf("rank-%d-data", r); string(blob) != want {
						return fmt.Errorf("entry %d = %q, want %q", r, blob, want)
					}
				}
				return nil
			})
		})
	}
}

func TestAllGatherRejectsNonPow2(t *testing.T) {
	runSPMD(t, 3, func(c *Comm) error {
		if _, err := c.AllGather(context.Background(), nil); err == nil {
			return fmt.Errorf("non-power-of-two size accepted")
		}
		return nil
	})
}

func TestAllGatherVariableSizes(t *testing.T) {
	// Ranks contribute different-length payloads (as sparse vectors with
	// differing nnz would).
	runSPMD(t, 8, func(c *Comm) error {
		mine := make([]byte, c.Rank()*3)
		for i := range mine {
			mine[i] = byte(c.Rank())
		}
		all, err := c.AllGather(context.Background(), mine)
		if err != nil {
			return err
		}
		for r, blob := range all {
			if len(blob) != r*3 {
				return fmt.Errorf("entry %d has %d bytes, want %d", r, len(blob), r*3)
			}
			for _, b := range blob {
				if b != byte(r) {
					return fmt.Errorf("entry %d corrupted", r)
				}
			}
		}
		return nil
	})
}

func TestRingAllReduceSumMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8} {
		for _, n := range []int{1, 7, 64, 1000} {
			t.Run(fmt.Sprintf("p=%d/n=%d", p, n), func(t *testing.T) {
				// Build per-rank inputs and the expected sum first.
				inputs := make([][]float32, p)
				want := make([]float64, n)
				src := prng.New(uint64(p*1000 + n))
				for r := range inputs {
					inputs[r] = make([]float32, n)
					for i := range inputs[r] {
						inputs[r][i] = float32(src.NormFloat64())
						want[i] += float64(inputs[r][i])
					}
				}
				runSPMD(t, p, func(c *Comm) error {
					x := append([]float32(nil), inputs[c.Rank()]...)
					if err := c.RingAllReduceSum(context.Background(), x); err != nil {
						return err
					}
					for i, v := range x {
						if math.Abs(float64(v)-want[i]) > 1e-3 {
							return fmt.Errorf("elem %d: got %v want %v", i, v, want[i])
						}
					}
					return nil
				})
			})
		}
	}
}

func TestRingAllReduceMean(t *testing.T) {
	const p = 4
	runSPMD(t, p, func(c *Comm) error {
		x := []float32{float32(c.Rank()), 10 * float32(c.Rank())}
		if err := c.RingAllReduceMean(context.Background(), x); err != nil {
			return err
		}
		// mean of 0..3 = 1.5; mean of 0,10,20,30 = 15.
		if math.Abs(float64(x[0])-1.5) > 1e-5 || math.Abs(float64(x[1])-15) > 1e-4 {
			return fmt.Errorf("mean = %v", x)
		}
		return nil
	})
}

func TestRingAllReduceShorterThanRanks(t *testing.T) {
	// Vector shorter than P: some chunks are empty; must still work.
	const p = 8
	runSPMD(t, p, func(c *Comm) error {
		x := []float32{1, 2, 3}
		if err := c.RingAllReduceSum(context.Background(), x); err != nil {
			return err
		}
		want := []float32{8, 16, 24}
		for i := range x {
			if x[i] != want[i] {
				return fmt.Errorf("got %v want %v", x, want)
			}
		}
		return nil
	})
}

func TestCollectivesOverTCP(t *testing.T) {
	f, err := transport.NewTCP(4)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runSPMDOn(t, f, func(c *Comm) error {
		x := []float32{float32(c.Rank() + 1)}
		if err := c.RingAllReduceSum(context.Background(), x); err != nil {
			return err
		}
		if x[0] != 10 {
			return fmt.Errorf("sum = %v, want 10", x[0])
		}
		got, err := c.Bcast(context.Background(), 2, []byte{42})
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != 42 {
			return fmt.Errorf("bcast got %v", got)
		}
		return nil
	})
}

func TestStatsCounting(t *testing.T) {
	runSPMD(t, 4, func(c *Comm) error {
		if err := c.RingAllReduceSum(context.Background(), make([]float32, 400)); err != nil {
			return err
		}
		st := c.Stats()
		// Ring: 2(P-1) = 6 sends and receives of 100-element (400-byte) chunks.
		if st.MsgsSent != 6 || st.MsgsRecv != 6 {
			return fmt.Errorf("msgs = %d/%d, want 6/6", st.MsgsSent, st.MsgsRecv)
		}
		if st.BytesSent != 6*400 || st.BytesRecv != 6*400 {
			return fmt.Errorf("bytes = %d/%d, want 2400", st.BytesSent, st.BytesRecv)
		}
		if st.Rounds != 6 {
			return fmt.Errorf("rounds = %d, want 6", st.Rounds)
		}
		c.ResetStats()
		if c.Stats() != (Stats{}) {
			return fmt.Errorf("ResetStats did not zero counters")
		}
		return nil
	})
}

func TestTimedRingAllReduceMatchesEq5(t *testing.T) {
	// With a clock attached, ring AllReduce must charge the paper's Eq. 5
	// within rounding: 2(P-1)alpha + 2*(P-1)/P*m*beta.
	const p, m = 4, 10000
	model := netsim.Paper1GbE()
	want := model.DenseAllReduce(p, m)
	f, err := transport.NewInProc(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	times := make([]time.Duration, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var clock netsim.Clock
			c := New(f.Conn(rank)).WithClock(&clock, model)
			if err := c.RingAllReduceSum(context.Background(), make([]float32, m)); err != nil {
				t.Error(err)
				return
			}
			times[rank] = clock.Now()
		}(r)
	}
	wg.Wait()
	for rank, got := range times {
		diff := math.Abs(float64(got - want))
		if diff/float64(want) > 0.01 {
			t.Errorf("rank %d: charged %v, Eq.5 predicts %v", rank, got, want)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1024: 10}
	for in, want := range cases {
		if got := log2(in); got != want {
			t.Errorf("log2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestRequirePow2(t *testing.T) {
	for _, ok := range []int{1, 2, 4, 8, 64} {
		if err := requirePow2(ok); err != nil {
			t.Errorf("requirePow2(%d) = %v", ok, err)
		}
	}
	for _, bad := range []int{0, -1, 3, 6, 12} {
		if err := requirePow2(bad); err == nil {
			t.Errorf("requirePow2(%d) accepted", bad)
		}
	}
}

func TestSequentialCollectivesDoNotInterfere(t *testing.T) {
	// Back-to-back different collectives must not cross wires thanks to
	// tag sequencing.
	runSPMD(t, 4, func(c *Comm) error {
		ctx := context.Background()
		x := []float32{float32(c.Rank())}
		if err := c.RingAllReduceSum(ctx, x); err != nil {
			return err
		}
		got, err := c.Bcast(ctx, 1, []byte{9})
		if err != nil {
			return err
		}
		if got[0] != 9 {
			return fmt.Errorf("bcast corrupted: %v", got)
		}
		if err := c.Barrier(ctx); err != nil {
			return err
		}
		all, err := c.AllGather(ctx, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		for r, b := range all {
			if len(b) != 1 || b[0] != byte(r) {
				return fmt.Errorf("allgather corrupted at %d: %v", r, b)
			}
		}
		return nil
	})
}
