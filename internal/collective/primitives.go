package collective

import (
	"context"
	"fmt"
)

// Barrier blocks until every rank has entered it, using the dissemination
// algorithm: ceil(log2 P) rounds where rank r signals (r+2^j) mod P and
// waits for (r-2^j) mod P. Works for any P >= 1.
func (c *Comm) Barrier(ctx context.Context) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	rounds := log2(p)
	if 1<<rounds < p {
		rounds++
	}
	base := c.claimTags(rounds)
	r := c.Rank()
	for j := 0; j < rounds; j++ {
		dst := (r + (1 << j)) % p
		src := (r - (1 << j) + p) % p
		if err := c.send(ctx, dst, base+j, nil); err != nil {
			return fmt.Errorf("barrier round %d: %w", j, err)
		}
		if _, err := c.recv(ctx, src, base+j); err != nil {
			return fmt.Errorf("barrier round %d: %w", j, err)
		}
		c.chargeRound(0)
	}
	return nil
}

// Bcast distributes root's payload to all ranks along a binomial tree,
// taking ceil(log2 P) rounds. Non-root ranks pass nil data and receive
// the payload as the return value; the root's payload is returned as-is.
//
// This is the "flat-tree" broadcast the paper cites for gTopKAllReduce's
// second phase: logP rounds each moving the full payload, for a cost of
// logP·α + n·logP·β.
func (c *Comm) Bcast(ctx context.Context, root int, data []byte) ([]byte, error) {
	p := c.Size()
	if root < 0 || root >= p {
		return nil, fmt.Errorf("collective: bcast root %d out of range [0,%d)", root, p)
	}
	rounds := log2(p)
	if 1<<rounds < p {
		rounds++
	}
	base := c.claimTags(rounds)
	if p == 1 {
		return data, nil
	}
	// Work in root-relative coordinates so any root reduces to root 0.
	vrank := (c.Rank() - root + p) % p

	have := vrank == 0
	payload := data
	for j := 0; j < rounds; j++ {
		span := 1 << j // ranks [0, span) hold the payload before round j
		switch {
		case have && vrank < span:
			peer := vrank + span
			if peer < p {
				dst := (peer + root) % p
				if err := c.send(ctx, dst, base+j, payload); err != nil {
					return nil, fmt.Errorf("bcast round %d: %w", j, err)
				}
			}
		case !have && vrank >= span && vrank < 2*span:
			src := ((vrank - span) + root) % p
			got, err := c.recv(ctx, src, base+j)
			if err != nil {
				return nil, fmt.Errorf("bcast round %d: %w", j, err)
			}
			payload = got
			have = true
		}
		c.chargeRound(len(payload) / 4)
	}
	if !have {
		return nil, fmt.Errorf("collective: bcast rank %d never received payload", c.Rank())
	}
	return payload, nil
}

// AllGather collects every rank's payload on every rank using recursive
// doubling: log2(P) rounds in which pairs exchange their accumulated
// blocks. Requires power-of-two P (the harness's worker counts all are);
// returns the payloads indexed by rank.
//
// Cost: logP·α + (P−1)·n·β for per-rank payloads of n elements — exactly
// the AllGather term the paper charges TopKAllReduce with (Eq. 6).
func (c *Comm) AllGather(ctx context.Context, payload []byte) ([][]byte, error) {
	p := c.Size()
	if err := requirePow2(p); err != nil {
		return nil, err
	}
	out := make([][]byte, p)
	out[c.Rank()] = payload
	if p == 1 {
		return out, nil
	}
	rounds := log2(p)
	base := c.claimTags(rounds)
	r := c.Rank()

	// ownedLow tracks the base of the contiguous (in virtual order) block
	// of ranks whose payloads this rank currently holds.
	ownedLow, ownedSize := r, 1
	for j := 0; j < rounds; j++ {
		peer := r ^ (1 << j)
		// Serialize owned block: count + (rank, len, bytes) per entry.
		blob := packBlocks(out, ownedLow, ownedSize, p)
		var got []byte
		// Deadlock-free pairwise exchange: lower rank sends first; the
		// fabric's buffered sends make this safe either way, but a fixed
		// order keeps traces deterministic.
		if r < peer {
			if err := c.send(ctx, peer, base+j, blob); err != nil {
				return nil, fmt.Errorf("allgather round %d: %w", j, err)
			}
			b, err := c.recv(ctx, peer, base+j)
			if err != nil {
				return nil, fmt.Errorf("allgather round %d: %w", j, err)
			}
			got = b
		} else {
			b, err := c.recv(ctx, peer, base+j)
			if err != nil {
				return nil, fmt.Errorf("allgather round %d: %w", j, err)
			}
			got = b
			if err := c.send(ctx, peer, base+j, blob); err != nil {
				return nil, fmt.Errorf("allgather round %d: %w", j, err)
			}
		}
		if err := unpackBlocks(out, got); err != nil {
			return nil, fmt.Errorf("allgather round %d: %w", j, err)
		}
		// The owned block doubles; its base aligns down to the doubled size.
		ownedSize *= 2
		ownedLow &^= ownedSize - 1
		c.chargeRound(len(blob) / 4)
	}
	return out, nil
}

// RingAllReduceSum sums x element-wise across all ranks in place using the
// bandwidth-optimal ring algorithm: a reduce-scatter pass followed by an
// all-gather pass, 2(P−1) rounds moving ~m/P elements each. Works for any
// P >= 1 and any vector length (uneven chunks handled).
//
// Cost: 2(P−1)·α + 2·(P−1)/P·m·β — the paper's Eq. 5 (DenseAllReduce).
func (c *Comm) RingAllReduceSum(ctx context.Context, x []float32) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	rounds := 2 * (p - 1)
	base := c.claimTags(rounds)
	r := c.Rank()
	next := (r + 1) % p
	prev := (r - 1 + p) % p

	// chunk boundaries: chunk i covers [bounds[i], bounds[i+1]).
	bounds := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bounds[i] = i * len(x) / p
	}
	chunk := func(i int) []float32 {
		i = ((i % p) + p) % p
		return x[bounds[i]:bounds[i+1]]
	}

	// Phase 1: reduce-scatter. After step s (0-based), rank r holds the
	// partial sum of chunk (r-s-1) across s+2 ranks; after p-2 steps rank
	// r holds the full sum of chunk (r+1).
	for s := 0; s < p-1; s++ {
		sendIdx := r - s
		recvIdx := r - s - 1
		sendBuf := encodeF32(chunk(sendIdx))
		if err := c.send(ctx, next, base+s, sendBuf); err != nil {
			return fmt.Errorf("reduce-scatter step %d: %w", s, err)
		}
		got, err := c.recv(ctx, prev, base+s)
		if err != nil {
			return fmt.Errorf("reduce-scatter step %d: %w", s, err)
		}
		dst := chunk(recvIdx)
		if err := addDecodedF32(dst, got); err != nil {
			return fmt.Errorf("reduce-scatter step %d: %w", s, err)
		}
		c.chargeRound(len(dst))
	}
	// Phase 2: all-gather the reduced chunks around the ring.
	for s := 0; s < p-1; s++ {
		sendIdx := r + 1 - s
		recvIdx := r - s
		sendBuf := encodeF32(chunk(sendIdx))
		tag := base + (p - 1) + s
		if err := c.send(ctx, next, tag, sendBuf); err != nil {
			return fmt.Errorf("allgather step %d: %w", s, err)
		}
		got, err := c.recv(ctx, prev, tag)
		if err != nil {
			return fmt.Errorf("allgather step %d: %w", s, err)
		}
		dst := chunk(recvIdx)
		if err := copyDecodedF32(dst, got); err != nil {
			return fmt.Errorf("allgather step %d: %w", s, err)
		}
		c.chargeRound(len(dst))
	}
	return nil
}

// RingAllReduceMean averages x element-wise across all ranks in place.
func (c *Comm) RingAllReduceMean(ctx context.Context, x []float32) error {
	if err := c.RingAllReduceSum(ctx, x); err != nil {
		return err
	}
	inv := 1 / float32(c.Size())
	for i := range x {
		x[i] *= inv
	}
	return nil
}
