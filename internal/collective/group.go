package collective

import (
	"fmt"

	"gtopkssgd/internal/transport"
)

// groupTagSpan is the tag space each level of a ForkGroup receives.
// Hierarchical aggregators issue a handful of tags per iteration
// (2·⌈log₂n⌉ per collective), so 2^20 tags outlast any training run
// while two spans still fit inside a forked child's 2^22-tag budget —
// which is what lets every bucket of the bucketed pipeline carry its
// own group hierarchy.
const groupTagSpan = 1 << 20

// GroupComms is the communicator pair a hierarchical collective runs
// over: every rank belongs to one contiguous group of (up to) G ranks
// and holds a Members communicator local to that group; the first rank
// of each group is its leader and additionally holds a Leaders
// communicator spanning all group leaders.
type GroupComms struct {
	// Members spans this rank's group (size G, except the tail group of
	// a non-divisible world, which is smaller). Member rank 0 is the
	// group leader.
	Members *Comm
	// Leaders spans the group leaders, one per group, ordered by group
	// index. Nil on non-leader ranks.
	Leaders *Comm
	// Group is this rank's group index (world rank / G).
	Group int
	// NumGroups is the group count, ⌈world/G⌉ — the leader-level world
	// size every rank knows (non-leaders charge the leader exchange
	// against it).
	NumGroups int
}

// IsLeader reports whether this rank leads its group.
func (g *GroupComms) IsLeader() bool { return g.Leaders != nil }

// ForkGroup partitions the communicator's world into contiguous groups
// of size g (the final group takes the remainder of a non-divisible
// world) and returns this rank's member and leader sub-communicators.
// Like Fork, it is a collective in spirit: every rank must call it on
// the same communicator in the same order with the same g, so the
// derived tag spans line up across ranks. Member communicators of
// different groups deliberately SHARE one tag span — their world-rank
// pairs are disjoint, so their wire traffic cannot collide — while the
// leader communicator gets its own span because leaders also carry
// member traffic.
//
// The sub-communicators share the parent's transport endpoint through
// rank-remapping views (transport.GroupView): wire capabilities, the
// negotiated codec and the fp16/tally preferences carry over. They
// start untimed with fresh statistics; attach clocks with WithClock and
// fold counters back with AddStats. Their finite tag spans cannot hold
// nested Fork spans — fork the parent instead.
func (c *Comm) ForkGroup(g int) (*GroupComms, error) {
	p := c.Size()
	if g < 1 || g > p {
		return nil, fmt.Errorf("collective: group size %d out of range [1,%d]", g, p)
	}
	r := c.Rank()
	base := c.claimTags(2 * groupTagSpan)

	group := r / g
	lo := group * g
	hi := lo + g
	if hi > p {
		hi = p
	}
	memberRanks := make([]int, 0, hi-lo)
	for w := lo; w < hi; w++ {
		memberRanks = append(memberRanks, w)
	}
	memberConn, err := transport.GroupView(c.conn, memberRanks)
	if err != nil {
		return nil, fmt.Errorf("collective: fork group members: %w", err)
	}
	numGroups := (p + g - 1) / g
	gc := &GroupComms{
		Members: &Comm{
			conn:     memberConn,
			nextTag:  base,
			tagLimit: base + groupTagSpan,
			fp16:     c.fp16,
			comp:     forkCompressor(c.comp, 0),
			tally:    c.tally,
		},
		Group:     group,
		NumGroups: numGroups,
	}
	if r == lo {
		leaderRanks := make([]int, 0, numGroups)
		for w := 0; w < p; w += g {
			leaderRanks = append(leaderRanks, w)
		}
		leaderConn, err := transport.GroupView(c.conn, leaderRanks)
		if err != nil {
			return nil, fmt.Errorf("collective: fork group leaders: %w", err)
		}
		gc.Leaders = &Comm{
			conn:     leaderConn,
			nextTag:  base + groupTagSpan,
			tagLimit: base + 2*groupTagSpan,
			fp16:     c.fp16,
			comp:     forkCompressor(c.comp, 1),
			tally:    c.tally,
		}
	}
	return gc, nil
}
