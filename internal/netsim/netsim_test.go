package netsim

import (
	"math"
	"testing"
	"time"
)

func TestPaperConstants(t *testing.T) {
	m := Paper1GbE()
	if m.Alpha != 436*time.Microsecond {
		t.Errorf("Alpha = %v, want 436µs", m.Alpha)
	}
	if m.Beta != 36*time.Nanosecond {
		t.Errorf("Beta = %v, want 36ns", m.Beta)
	}
}

func TestPointToPointLinear(t *testing.T) {
	m := Paper1GbE()
	t0 := m.PointToPoint(0)
	if t0 != m.Alpha {
		t.Errorf("PointToPoint(0) = %v, want alpha %v", t0, m.Alpha)
	}
	// Doubling elements doubles only the beta term.
	d1 := m.PointToPoint(1000) - t0
	d2 := m.PointToPoint(2000) - t0
	if d2 != 2*d1 {
		t.Errorf("beta term not linear: %v vs %v", d1, d2)
	}
}

func TestPointToPointMatchesPaperScale(t *testing.T) {
	// Paper Fig. 8: transferring 1e6 parameters takes roughly 36 ms + alpha
	// (beta term = 1e6 * 3.6e-5 ms = 36 ms).
	m := Paper1GbE()
	got := m.PointToPoint(1_000_000)
	want := 436*time.Microsecond + 36*time.Millisecond
	if got != want {
		t.Errorf("PointToPoint(1e6) = %v, want %v", got, want)
	}
}

func TestDenseAllReduceFormula(t *testing.T) {
	m := Model{Alpha: time.Millisecond, Beta: time.Microsecond}
	// P=4, m=1000: 2*3*1ms + 2*(3/4)*1000*1µs = 6ms + 1.5ms.
	got := m.DenseAllReduce(4, 1000)
	want := 6*time.Millisecond + 1500*time.Microsecond
	if got != want {
		t.Errorf("DenseAllReduce = %v, want %v", got, want)
	}
	if m.DenseAllReduce(1, 1000) != 0 {
		t.Error("single worker should cost 0")
	}
}

func TestTopKAllReduceFormula(t *testing.T) {
	m := Model{Alpha: time.Millisecond, Beta: time.Microsecond}
	// P=8, k=100: log2(8)*1ms + 2*7*100*1µs = 3ms + 1.4ms.
	got := m.TopKAllReduce(8, 100)
	want := 3*time.Millisecond + 1400*time.Microsecond
	if got != want {
		t.Errorf("TopKAllReduce = %v, want %v", got, want)
	}
}

func TestGTopKAllReduceFormula(t *testing.T) {
	m := Model{Alpha: time.Millisecond, Beta: time.Microsecond}
	// P=8, k=100: 2*3*1ms + 4*100*3*1µs = 6ms + 1.2ms.
	got := m.GTopKAllReduce(8, 100)
	want := 6*time.Millisecond + 1200*time.Microsecond
	if got != want {
		t.Errorf("GTopKAllReduce = %v, want %v", got, want)
	}
}

func TestCrossoverGTopKBeatsTopKAtScale(t *testing.T) {
	// The paper's headline claim (Fig. 9 left): with m=25e6, rho=0.001,
	// TopKAllReduce is competitive at small P but much slower at P >= 16.
	m := Paper1GbE()
	k := 25000 // 0.001 * 25e6
	if m.GTopKAllReduce(4, k) > 2*m.TopKAllReduce(4, k) {
		t.Error("at P=4 gTopK should be within 2x of TopK")
	}
	for _, p := range []int{16, 32, 64, 128} {
		if m.GTopKAllReduce(p, k) >= m.TopKAllReduce(p, k) {
			t.Errorf("P=%d: gTopK (%v) should beat TopK (%v)",
				p, m.GTopKAllReduce(p, k), m.TopKAllReduce(p, k))
		}
	}
}

func TestDenseWorstAtLargeModel(t *testing.T) {
	// Dense ring AllReduce on the full 25e6-element model must dwarf both
	// sparse methods at any P on 1GbE.
	m := Paper1GbE()
	const elems = 25_000_000
	k := elems / 1000
	for _, p := range []int{4, 32} {
		dense := m.DenseAllReduce(p, elems)
		if dense <= m.TopKAllReduce(p, k) || dense <= m.GTopKAllReduce(p, k) {
			t.Errorf("P=%d: dense (%v) should be slowest", p, dense)
		}
	}
}

func TestLinkJitterStatistics(t *testing.T) {
	l := NewLink(Paper1GbE(), 0.05, 42)
	base := float64(l.Model.PointToPoint(100000))
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += float64(l.Transfer(100000))
	}
	mean := sum / n
	// Log-normal with sigma=0.05 has mean exp(sigma^2/2) ~ 1.00125 x base.
	if math.Abs(mean/base-1) > 0.02 {
		t.Errorf("jittered mean %.0f deviates from base %.0f", mean, base)
	}
}

func TestLinkNoJitterDeterministic(t *testing.T) {
	l := NewLink(Paper1GbE(), 0, 1)
	a, b := l.Transfer(512), l.Transfer(512)
	if a != b || a != l.Model.PointToPoint(512) {
		t.Errorf("jitter-free transfer not deterministic: %v %v", a, b)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock not at 0")
	}
	c.Advance(3 * time.Second)
	c.AdvanceTo(2 * time.Second) // earlier: no-op
	if c.Now() != 3*time.Second {
		t.Fatalf("AdvanceTo moved clock backwards: %v", c.Now())
	}
	c.AdvanceTo(5 * time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("AdvanceTo = %v, want 5s", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-time.Second)
}

func TestRoundSkewAndGammaZeroCompat(t *testing.T) {
	m := Model{Alpha: time.Millisecond, Beta: time.Microsecond}
	// Gamma zero: Round == PointToPoint for every participant count.
	for _, n := range []int{1, 2, 16, 256} {
		if m.Round(n, 7) != m.PointToPoint(7) {
			t.Fatalf("gamma=0 Round(%d,7) = %v, want %v", n, m.Round(n, 7), m.PointToPoint(7))
		}
	}
	s := m.WithSyncSkew(0.5)
	if m.SyncGamma != 0 {
		t.Fatal("WithSyncSkew mutated the receiver")
	}
	// log2(16) = 4, gamma 0.5 => alpha multiplier 3.
	if got, want := s.Round(16, 10), 3*time.Millisecond+10*time.Microsecond; got != want {
		t.Fatalf("skewed Round(16,10) = %v, want %v", got, want)
	}
	// Fewer than two participants never inflate.
	if s.Round(1, 10) != s.PointToPoint(10) {
		t.Fatal("single-participant round inflated")
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 256: 8}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Fatalf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestHierGTopKClosedForm(t *testing.T) {
	m := Paper1GbE().WithSyncSkew(DefaultSyncGamma)
	const p, g, k = 64, 4, 1000
	leaders := p / g
	want := 3*time.Duration(CeilLog2(g))*m.Round(g, 2*k) +
		2*time.Duration(CeilLog2(leaders))*m.Round(leaders, 2*k)
	if got := m.HierGTopK(p, g, k); got != want {
		t.Fatalf("HierGTopK(%d,%d,%d) = %v, want %v", p, g, k, got, want)
	}
	// Degenerate groups collapse to the flat tree.
	if m.HierGTopK(p, p, k) != m.GTopKTree(p, k) {
		t.Fatal("g=p does not collapse to the flat tree")
	}
	if m.HierGTopK(1, 1, k) != 0 {
		t.Fatal("single-rank world should cost nothing")
	}
	// With gamma=0 the hierarchy is the flat tree plus ceil(log2 g)
	// extra broadcast rounds -- never cheaper (the crossover needs skew).
	flat0 := Paper1GbE()
	extra := time.Duration(CeilLog2(g)) * flat0.Round(g, 2*k)
	if got, want := flat0.HierGTopK(p, g, k), flat0.GTopKTree(p, k)+extra; got != want {
		t.Fatalf("gamma=0 HierGTopK = %v, want flat+extra = %v", got, want)
	}
	// With skew, the crossover the bench records: hierarchy wins at
	// P=64, G=4, k=1049 (rho=0.001 of 2^20), and loses at P=16.
	k1 := 1049
	if m.HierGTopK(64, 4, k1) >= m.GTopKTree(64, k1) {
		t.Fatalf("no crossover at P=64: hier %v vs flat %v", m.HierGTopK(64, 4, k1), m.GTopKTree(64, k1))
	}
	if m.HierGTopK(16, 4, k1) <= m.GTopKTree(16, k1) {
		t.Fatalf("hierarchy should not win at P=16: hier %v vs flat %v", m.HierGTopK(16, 4, k1), m.GTopKTree(16, k1))
	}
}
