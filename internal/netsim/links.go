package netsim

import (
	"fmt"
	"time"
)

// LinkModel assigns per-link α-β parameters by group membership: ranks
// are partitioned into contiguous groups of GroupSize, links within a
// group charge the Intra model (datacenter), links crossing groups
// charge the Inter model (WAN). This is the heterogeneous-topology
// extension the quorum collective prices rounds with — a round that
// closes without its WAN stragglers is charged only for the links that
// actually carried a contribution.
type LinkModel struct {
	// Intra prices links between ranks of the same group.
	Intra Model
	// Inter prices links between ranks of different groups.
	Inter Model
	// GroupSize is the number of consecutive ranks per group (rank r is
	// in group r/GroupSize).
	GroupSize int
}

// NewLinkModel validates and builds a grouped link model.
func NewLinkModel(intra, inter Model, groupSize int) (*LinkModel, error) {
	if groupSize < 1 {
		return nil, fmt.Errorf("netsim: link model group size %d out of range: need >= 1", groupSize)
	}
	return &LinkModel{Intra: intra, Inter: inter, GroupSize: groupSize}, nil
}

// Group returns the group index of rank r.
func (m *LinkModel) Group(r int) int { return r / m.GroupSize }

// Link returns the α-β model of the (a, b) link: Intra when both ranks
// share a group, Inter otherwise. Links are symmetric.
func (m *LinkModel) Link(a, b int) Model {
	if m.Group(a) == m.Group(b) {
		return m.Intra
	}
	return m.Inter
}

// PointToPoint returns the modelled transfer time of n elements over the
// (a, b) link.
func (m *LinkModel) PointToPoint(a, b, n int) time.Duration {
	if a == b {
		return 0
	}
	return m.Link(a, b).PointToPoint(n)
}

// QuorumGather returns the modelled time of the gather half of one
// quorum round: the root's gather closes when the SLOWEST participating
// link has delivered its n-element contribution, so the round charges
// the maximum over participant→root links — stragglers outside the
// participant set contribute nothing, which is exactly the speedup a
// quorum buys on heterogeneous links.
func (m *LinkModel) QuorumGather(root int, participants []int, n int) time.Duration {
	var worst time.Duration
	for _, p := range participants {
		if p == root {
			continue
		}
		if d := m.PointToPoint(p, root, n); d > worst {
			worst = d
		}
	}
	return worst
}

// QuorumVerdict returns the modelled time for rank to obtain the root's
// n-element verdict broadcast: its own root→rank link for a non-root
// rank, and the slowest outgoing link (the root is busy until its last
// verdict send completes) for the root itself. world is the total rank
// count the verdict fans out to.
func (m *LinkModel) QuorumVerdict(world, root, rank, n int) time.Duration {
	if rank != root {
		return m.PointToPoint(root, rank, n)
	}
	var worst time.Duration
	for r := 0; r < world; r++ {
		if r == root {
			continue
		}
		if d := m.PointToPoint(root, r, n); d > worst {
			worst = d
		}
	}
	return worst
}

// QuorumRound returns the modelled time of one full quorum round for
// rank: gather (closed by the slowest participating link) followed by
// the verdict broadcast leg that reaches this rank.
func (m *LinkModel) QuorumRound(world, root, rank int, participants []int, gatherElems, verdictElems int) time.Duration {
	return m.QuorumGather(root, participants, gatherElems) +
		m.QuorumVerdict(world, root, rank, verdictElems)
}

// hierLeader returns the leader (first rank) of rank r's hierarchy group
// under a contiguous grouping of size g. Note the hierarchy grouping g
// is the COLLECTIVE's partition and is independent of this model's own
// GroupSize, which partitions ranks by link quality — a hierarchy group
// may well straddle a WAN boundary, which is exactly the regime the
// hierarchical quorum prices.
func hierLeader(r, g int) int { return (r / g) * g }

// HierQuorumGather returns the modelled time of the two gather levels of
// one hierarchical quorum round: the intra-group level closes when the
// slowest participating member→leader link has delivered, the leader
// level when the slowest participating leader→root link has (a group
// participates in the leader level when any of its members is in the
// verdict's participant set). Stragglers outside the participant set —
// a single slow member or a whole partitioned group — charge nothing.
func (m *LinkModel) HierQuorumGather(g, root int, participants []int, n int) time.Duration {
	var intra, leader time.Duration
	for _, p := range participants {
		l := hierLeader(p, g)
		if p != l {
			if d := m.PointToPoint(p, l, n); d > intra {
				intra = d
			}
		}
		if l != root {
			if d := m.PointToPoint(l, root, n); d > leader {
				leader = d
			}
		}
	}
	return intra + leader
}

// HierQuorumVerdict returns the modelled time for rank to obtain the
// root's n-element verdict through the two-hop leader relay: the root is
// busy until its last leader send completes, a leader waits for its own
// root link and is then busy until its last member relay completes, and
// a member waits for its leader's root link plus its own relay link.
func (m *LinkModel) HierQuorumVerdict(world, g, root, rank, n int) time.Duration {
	l := hierLeader(rank, g)
	if rank == root {
		var worst time.Duration
		for lr := 0; lr < world; lr += g {
			if lr == root {
				continue
			}
			if d := m.PointToPoint(root, lr, n); d > worst {
				worst = d
			}
		}
		return worst
	}
	if rank == l {
		down := m.PointToPoint(root, rank, n)
		var worst time.Duration
		for r := l + 1; r < l+g && r < world; r++ {
			if d := m.PointToPoint(rank, r, n); d > worst {
				worst = d
			}
		}
		return down + worst
	}
	return m.PointToPoint(root, l, n) + m.PointToPoint(l, rank, n)
}

// HierQuorumRound returns the modelled time of one full hierarchical
// quorum round for rank: both gather levels followed by the two-hop
// verdict leg that reaches this rank. Every term is a pure function of
// the verdict's participant set, so per-rank clocks agree on what the
// round cost regardless of wall-clock arrival order.
func (m *LinkModel) HierQuorumRound(world, g, root, rank int, participants []int, gatherElems, verdictElems int) time.Duration {
	return m.HierQuorumGather(g, root, participants, gatherElems) +
		m.HierQuorumVerdict(world, g, root, rank, verdictElems)
}
