package netsim

import (
	"testing"
	"time"
)

func TestLinkModelGrouping(t *testing.T) {
	intra := Model{Alpha: 1 * time.Millisecond, Beta: 1 * time.Nanosecond}
	inter := Model{Alpha: 50 * time.Millisecond, Beta: 10 * time.Nanosecond}
	lm, err := NewLinkModel(intra, inter, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLinkModel(intra, inter, 0); err == nil {
		t.Fatal("group size 0 accepted")
	}
	if lm.Group(3) != 0 || lm.Group(4) != 1 || lm.Group(7) != 1 {
		t.Fatalf("grouping wrong: %d %d %d", lm.Group(3), lm.Group(4), lm.Group(7))
	}
	if got := lm.Link(0, 3); got != intra {
		t.Fatalf("intra link priced %+v", got)
	}
	if got := lm.Link(0, 4); got != inter {
		t.Fatalf("inter link priced %+v", got)
	}
	if lm.PointToPoint(2, 2, 100) != 0 {
		t.Fatal("self link should cost nothing")
	}
	if got, want := lm.PointToPoint(0, 1, 1000), intra.PointToPoint(1000); got != want {
		t.Fatalf("intra p2p %v want %v", got, want)
	}
}

func TestLinkModelQuorumRound(t *testing.T) {
	intra := Model{Alpha: 1 * time.Millisecond, Beta: 1 * time.Nanosecond}
	inter := Model{Alpha: 50 * time.Millisecond, Beta: 10 * time.Nanosecond}
	lm, err := NewLinkModel(intra, inter, 4)
	if err != nil {
		t.Fatal(err)
	}
	const world, root, n = 8, 0, 1000

	// Full participation: the gather is closed by a WAN link.
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if got, want := lm.QuorumGather(root, all, n), inter.PointToPoint(n); got != want {
		t.Fatalf("full gather %v want %v", got, want)
	}
	// Quorum excluding all WAN ranks: only intra links remain.
	local := []int{0, 1, 2, 3}
	if got, want := lm.QuorumGather(root, local, n), intra.PointToPoint(n); got != want {
		t.Fatalf("local gather %v want %v", got, want)
	}
	// A lone root gathers nothing.
	if got := lm.QuorumGather(root, []int{root}, n); got != 0 {
		t.Fatalf("self-only gather %v want 0", got)
	}

	// The verdict still fans out to everyone: the root and WAN ranks pay
	// the WAN leg, near ranks pay the intra leg.
	if got, want := lm.QuorumVerdict(world, root, root, n), inter.PointToPoint(n); got != want {
		t.Fatalf("root verdict %v want %v", got, want)
	}
	if got, want := lm.QuorumVerdict(world, root, 2, n), intra.PointToPoint(n); got != want {
		t.Fatalf("near verdict %v want %v", got, want)
	}
	if got, want := lm.QuorumVerdict(world, root, 6, n), inter.PointToPoint(n); got != want {
		t.Fatalf("far verdict %v want %v", got, want)
	}

	// A fast rank's quorum round with only local participants beats the
	// same round at full participation — the crossover the bench maps.
	fast := lm.QuorumRound(world, root, 1, local, n, n)
	full := lm.QuorumRound(world, root, 1, all, n, n)
	if fast >= full {
		t.Fatalf("local-quorum round %v not faster than full round %v", fast, full)
	}
}
