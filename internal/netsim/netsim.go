// Package netsim models communication time on low-bandwidth networks with
// the α-β (latency-bandwidth) model used throughout the paper.
//
// The paper measures, on its 32-node 1 Gbps Ethernet cluster,
// α = 0.436 ms startup latency and β = 3.6e-5 ms transmission time per
// element (Fig. 8; elements are 4-byte float32 values). All timing
// results (Figs 8-11, Table IV) follow from this model plus the
// collectives' round structure (Table I). Since this reproduction runs on
// one machine, wall-clock time says nothing about 1GbE behaviour; instead
// every experiment charges simulated time through this package, using the
// paper's measured constants by default.
package netsim

import (
	"fmt"
	"math"
	"time"

	"gtopkssgd/internal/prng"
)

// Model is the α-β communication cost model. Alpha is the per-message
// startup latency; Beta the per-element (float32) transmission time.
type Model struct {
	Alpha time.Duration // startup latency per message
	Beta  time.Duration // transfer time per 4-byte element
}

// Paper1GbE returns the model with the constants measured in the paper on
// its 1 Gbps Ethernet testbed (Section IV-C): α = 0.436 ms,
// β = 3.6e-5 ms per element.
func Paper1GbE() Model {
	return Model{
		Alpha: 436 * time.Microsecond,
		Beta:  36 * time.Nanosecond,
	}
}

// TenGbE returns an illustrative 10 Gbps Ethernet model: one tenth the
// per-element time and a lower (switch-bound) startup latency. Used by
// the bandwidth-sensitivity ablation, not by the paper.
func TenGbE() Model {
	return Model{
		Alpha: 100 * time.Microsecond,
		Beta:  4 * time.Nanosecond, // ~3.6ns rounded to the ns grid

	}
}

// PointToPoint returns the modelled time to transfer n elements between
// two nodes: α + nβ.
func (m Model) PointToPoint(n int) time.Duration {
	return m.Alpha + time.Duration(n)*m.Beta
}

// DenseAllReduce returns the ring-AllReduce time for a dense vector of
// nElems elements across p workers (paper Eq. 5):
//
//	t = 2(P−1)α + 2·(P−1)/P·mβ
func (m Model) DenseAllReduce(p, nElems int) time.Duration {
	if p < 2 {
		return 0
	}
	alphaTerm := time.Duration(2*(p-1)) * m.Alpha
	betaTerm := time.Duration(2 * float64(p-1) / float64(p) * float64(nElems) * float64(m.Beta))
	return alphaTerm + betaTerm
}

// TopKAllReduce returns the AllGather-based sparse aggregation time for
// k selected gradients across p workers (paper Eq. 6):
//
//	t = log(P)α + 2(P−1)kβ
//
// The factor 2k accounts for transferring values and indices.
func (m Model) TopKAllReduce(p, k int) time.Duration {
	if p < 2 {
		return 0
	}
	alphaTerm := time.Duration(math.Log2(float64(p)) * float64(m.Alpha))
	betaTerm := time.Duration(2*(p-1)*k) * m.Beta
	return alphaTerm + betaTerm
}

// GTopKAllReduce returns the tree-reduction + broadcast time of the
// paper's gTopKAllReduce (Eq. 7):
//
//	t = 2·log(P)α + 4k·log(P)β
//
// Each of the logP reduction rounds moves 2k elements (values+indices) to
// the surviving worker, and the flat-tree broadcast of the global top-k
// costs the same again.
func (m Model) GTopKAllReduce(p, k int) time.Duration {
	if p < 2 {
		return 0
	}
	logP := math.Log2(float64(p))
	alphaTerm := time.Duration(2 * logP * float64(m.Alpha))
	betaTerm := time.Duration(4 * float64(k) * logP * float64(m.Beta))
	return alphaTerm + betaTerm
}

// Link is a point-to-point channel with multiplicative jitter, used to
// produce the "measured" scatter around the α-β line in the Fig. 8
// reproduction. Jitter is the fractional standard deviation of a
// log-normal noise factor (0.05 reproduces the paper's error bars).
type Link struct {
	Model  Model
	Jitter float64
	rng    *prng.Source
}

// NewLink creates a jittered link over model m seeded deterministically.
func NewLink(m Model, jitter float64, seed uint64) *Link {
	return &Link{Model: m, Jitter: jitter, rng: prng.New(seed)}
}

// Transfer returns a sampled transfer time for n elements:
// (α + nβ)·exp(σ·Z) with Z standard normal.
func (l *Link) Transfer(n int) time.Duration {
	base := float64(l.Model.PointToPoint(n))
	if l.Jitter <= 0 {
		return time.Duration(base)
	}
	noise := math.Exp(l.Jitter * l.rng.NormFloat64())
	return time.Duration(base * noise)
}

// Clock accumulates simulated time for one worker. Collectives and
// trainers advance it; experiments read it. The zero value is a clock at
// time zero.
type Clock struct {
	now time.Duration
}

// Advance moves the clock forward by d (negative d is rejected).
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("netsim: Advance(%v) with negative duration", d))
	}
	c.now += d
}

// AdvanceTo moves the clock to t if t is later than the current time;
// used when a worker waits for a message that arrives at absolute time t.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration { return c.now }

// Reset rewinds the clock to zero.
func (c *Clock) Reset() { c.now = 0 }
