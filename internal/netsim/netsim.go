// Package netsim models communication time on low-bandwidth networks with
// the α-β (latency-bandwidth) model used throughout the paper.
//
// The paper measures, on its 32-node 1 Gbps Ethernet cluster,
// α = 0.436 ms startup latency and β = 3.6e-5 ms transmission time per
// element (Fig. 8; elements are 4-byte float32 values). All timing
// results (Figs 8-11, Table IV) follow from this model plus the
// collectives' round structure (Table I). Since this reproduction runs on
// one machine, wall-clock time says nothing about 1GbE behaviour; instead
// every experiment charges simulated time through this package, using the
// paper's measured constants by default.
package netsim

import (
	"fmt"
	"math"
	"time"

	"gtopkssgd/internal/prng"
)

// Model is the α-β communication cost model. Alpha is the per-message
// startup latency; Beta the per-element (float32) transmission time.
//
// SyncGamma optionally extends the model with a synchronization-skew
// term: a synchronous round among n participants completes when the
// SLOWEST of its concurrently active links completes, and with
// independently jittered per-link latencies (the paper's Fig. 8 shows a
// lognormal scatter around the α-β line) the expected maximum grows with
// log₂(n). A round among n ranks then charges
//
//	α·(1 + γ·log₂(n)) + elems·β
//
// instead of the plain α + elems·β. γ = 0 (the zero value) recovers the
// paper's Table I cost equations exactly — every pre-existing experiment
// charges with γ = 0 and is bit-unchanged. The hierarchy experiment
// charges both the flat and the two-level aggregation with the same
// γ > 0, which is what makes synchronization-domain size (P vs G and
// P/G) visible to the cost model at all.
type Model struct {
	Alpha time.Duration // startup latency per message
	Beta  time.Duration // transfer time per 4-byte element
	// SyncGamma is the per-log₂-participant latency inflation of a
	// synchronous round (0 disables; see the type comment).
	SyncGamma float64
}

// DefaultSyncGamma is the synchronization-skew factor the hierarchy
// experiment uses: at P=32 (the paper's testbed) it inflates the round
// latency by 1.5×, consistent with the straggler tails the paper's
// jittered links produce at that scale.
const DefaultSyncGamma = 0.1

// WithSyncSkew returns a copy of m with the synchronization-skew factor
// set to gamma.
func (m Model) WithSyncSkew(gamma float64) Model {
	m.SyncGamma = gamma
	return m
}

// Paper1GbE returns the model with the constants measured in the paper on
// its 1 Gbps Ethernet testbed (Section IV-C): α = 0.436 ms,
// β = 3.6e-5 ms per element.
func Paper1GbE() Model {
	return Model{
		Alpha: 436 * time.Microsecond,
		Beta:  36 * time.Nanosecond,
	}
}

// TenGbE returns an illustrative 10 Gbps Ethernet model: one tenth the
// per-element time and a lower (switch-bound) startup latency. Used by
// the bandwidth-sensitivity ablation, not by the paper.
func TenGbE() Model {
	return Model{
		Alpha: 100 * time.Microsecond,
		Beta:  4 * time.Nanosecond, // ~3.6ns rounded to the ns grid

	}
}

// PointToPoint returns the modelled time to transfer n elements between
// two nodes: α + nβ. It never applies the synchronization-skew term —
// a point-to-point transfer has exactly two participants and no
// straggler ensemble.
func (m Model) PointToPoint(n int) time.Duration {
	return m.Alpha + time.Duration(n)*m.Beta
}

// Round returns the modelled time of one synchronous communication round
// among `participants` ranks in which the charged rank moves n elements:
// α·(1 + γ·log₂(participants)) + nβ. With γ = 0 (or fewer than two
// participants) it equals PointToPoint(n).
func (m Model) Round(participants, n int) time.Duration {
	alpha := m.Alpha
	if m.SyncGamma > 0 && participants > 1 {
		alpha = time.Duration(float64(alpha) * (1 + m.SyncGamma*math.Log2(float64(participants))))
	}
	return alpha + time.Duration(n)*m.Beta
}

// DenseAllReduce returns the ring-AllReduce time for a dense vector of
// nElems elements across p workers (paper Eq. 5):
//
//	t = 2(P−1)α + 2·(P−1)/P·mβ
func (m Model) DenseAllReduce(p, nElems int) time.Duration {
	if p < 2 {
		return 0
	}
	alphaTerm := time.Duration(2*(p-1)) * m.Alpha
	betaTerm := time.Duration(2 * float64(p-1) / float64(p) * float64(nElems) * float64(m.Beta))
	return alphaTerm + betaTerm
}

// TopKAllReduce returns the AllGather-based sparse aggregation time for
// k selected gradients across p workers (paper Eq. 6):
//
//	t = log(P)α + 2(P−1)kβ
//
// The factor 2k accounts for transferring values and indices.
func (m Model) TopKAllReduce(p, k int) time.Duration {
	if p < 2 {
		return 0
	}
	alphaTerm := time.Duration(math.Log2(float64(p)) * float64(m.Alpha))
	betaTerm := time.Duration(2*(p-1)*k) * m.Beta
	return alphaTerm + betaTerm
}

// GTopKAllReduce returns the tree-reduction + broadcast time of the
// paper's gTopKAllReduce (Eq. 7):
//
//	t = 2·log(P)α + 4k·log(P)β
//
// Each of the logP reduction rounds moves 2k elements (values+indices) to
// the surviving worker, and the flat-tree broadcast of the global top-k
// costs the same again.
func (m Model) GTopKAllReduce(p, k int) time.Duration {
	if p < 2 {
		return 0
	}
	logP := math.Log2(float64(p))
	alphaTerm := time.Duration(2 * logP * float64(m.Alpha))
	betaTerm := time.Duration(4 * float64(k) * logP * float64(m.Beta))
	return alphaTerm + betaTerm
}

// GTopKTree returns the discrete (integer-round) flat-tree gTop-k cost
// with the synchronization-skew term applied: 2·⌈log₂P⌉ rounds, each
// moving at most 2k elements and synchronizing all P ranks:
//
//	t = 2·⌈log₂P⌉·Round(P, 2k)
//
// With SyncGamma = 0 and power-of-two P this equals GTopKAllReduce
// (Eq. 7) exactly; the hierarchy experiment compares it against
// HierGTopK under one shared γ.
func (m Model) GTopKTree(p, k int) time.Duration {
	if p < 2 {
		return 0
	}
	return time.Duration(2*CeilLog2(p)) * m.Round(p, 2*k)
}

// HierGTopK returns the modelled cost of the two-level hierarchical
// gTop-k over groups of g (core.HierarchicalGTopKAllReduce): a full
// intra-group gTop-k (2·⌈log₂g⌉ rounds among g ranks), the leader-level
// gTop-k over the ⌈P/g⌉ group leaders (2·⌈log₂⌈P/g⌉⌉ rounds), and the
// intra-group broadcast of the global result (⌈log₂g⌉ more rounds):
//
//	t = 3·⌈log₂g⌉·Round(g, 2k) + 2·⌈log₂⌈P/g⌉⌉·Round(⌈P/g⌉, 2k)
//
// The ⌈log₂g⌉ extra broadcast rounds relative to the flat tree are the
// price of every member holding its group's aggregate (which is what
// lets any member stand in for a dead leader); the smaller
// synchronization domains (g and P/g instead of P) are what the
// hierarchy buys. Under γ = 0 the two terms tie exactly with the flat
// tree's round count plus the ⌈log₂g⌉ overhead — the crossover only
// opens once straggler skew makes world-sized rounds more expensive
// than group-sized ones.
func (m Model) HierGTopK(p, g, k int) time.Duration {
	if p < 2 {
		return 0
	}
	if g < 1 {
		g = 1
	}
	if g >= p {
		return m.GTopKTree(p, k)
	}
	leaders := (p + g - 1) / g
	intra := time.Duration(3*CeilLog2(g)) * m.Round(g, 2*k)
	inter := time.Duration(2*CeilLog2(leaders)) * m.Round(leaders, 2*k)
	return intra + inter
}

// CeilLog2 returns ⌈log₂n⌉ for n ≥ 1 — the sequential round count of a
// binomial tree over n ranks.
func CeilLog2(n int) int {
	r := 0
	for 1<<r < n {
		r++
	}
	return r
}

// Link is a point-to-point channel with multiplicative jitter, used to
// produce the "measured" scatter around the α-β line in the Fig. 8
// reproduction. Jitter is the fractional standard deviation of a
// log-normal noise factor (0.05 reproduces the paper's error bars).
type Link struct {
	Model  Model
	Jitter float64
	rng    *prng.Source
}

// NewLink creates a jittered link over model m seeded deterministically.
func NewLink(m Model, jitter float64, seed uint64) *Link {
	return &Link{Model: m, Jitter: jitter, rng: prng.New(seed)}
}

// Transfer returns a sampled transfer time for n elements:
// (α + nβ)·exp(σ·Z) with Z standard normal.
func (l *Link) Transfer(n int) time.Duration {
	base := float64(l.Model.PointToPoint(n))
	if l.Jitter <= 0 {
		return time.Duration(base)
	}
	noise := math.Exp(l.Jitter * l.rng.NormFloat64())
	return time.Duration(base * noise)
}

// Clock accumulates simulated time for one worker. Collectives and
// trainers advance it; experiments read it. The zero value is a clock at
// time zero.
type Clock struct {
	now time.Duration
}

// Advance moves the clock forward by d (negative d is rejected).
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("netsim: Advance(%v) with negative duration", d))
	}
	c.now += d
}

// AdvanceTo moves the clock to t if t is later than the current time;
// used when a worker waits for a message that arrives at absolute time t.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration { return c.now }

// Reset rewinds the clock to zero.
func (c *Clock) Reset() { c.now = 0 }
