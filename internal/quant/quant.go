// Package quant implements the gradient-quantization baselines the paper
// positions gTop-k against in its related-work section (Section VI):
// signSGD (Bernstein et al.), TernGrad-style ternary quantization (Wen et
// al.), and stochastic uniform quantization in the QSGD family (Alistarh
// et al.) — see PAPERS.md for the retrieved related work. It also
// provides the combined compressor the paper attributes to Deep Gradient
// Compression — top-k sparsification with quantized values — which
// reaches compression ratios in the hundreds.
//
// Quantization caps compression at 32× (1 bit per 32-bit gradient);
// sparsification has no such cap, which is the paper's argument for
// pursuing top-k methods on low-bandwidth networks. The ablation
// experiments quantify exactly that trade-off.
//
// The package wears two hats. The standalone quantizers here (Uniform,
// Ternary, Sign and friends) back the dense baseline aggregators in
// aggregator.go. Stack (stack.go) packages the same arithmetic as the
// sparse.Compressor interface — the transform stage of the compound
// pipeline (select → transform → encode), whose levels the wire format
// v3 encoder packs after gTop-k selection; see
// internal/sparse/codecv3.go and docs/ARCHITECTURE.md §Compound
// compression.
package quant

import (
	"fmt"
	"math"

	"gtopkssgd/internal/f16"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/sparse"
)

// Float16 quantizes x through IEEE 754 binary16 and back — the value a
// receiver reconstructs from a half-precision wire payload
// (round-to-nearest-even; relative error ≤ 2^-11 in the half normal
// range, overflow to ±Inf beyond ±65504). It is the same conversion
// (internal/f16) the v2 sparse wire codec's fp16 mode uses for its
// bytes, exposed here as the half-precision member of this package's
// quantizer family.
func Float16(x float32) float32 { return f16.Round(x) }

// RoundTripF16 quantizes every element of xs in place through binary16.
// Idempotent, like the scalar conversion it applies. (One shared loop —
// f16.RoundSlice — backs this and the collective's root pre-rounding.)
func RoundTripF16(xs []float32) { f16.RoundSlice(xs) }

// QuantizeSparseF16 compresses the VALUES of a sparse top-k vector to
// binary16 — the half-precision sibling of QuantizeSparse's 8-bit
// levels. Indices stay exact (they must; a wrong index corrupts an
// unrelated parameter). Returns the quantized copy and the bytes the
// v2-fp16 wire codec occupies for it on the wire, versus 8 bytes per
// entry uncompressed.
func QuantizeSparseF16(v *sparse.Vector) (*sparse.Vector, int) {
	out := &sparse.Vector{
		Dim:     v.Dim,
		Indices: append([]int32(nil), v.Indices...),
		Values:  append([]float32(nil), v.Values...),
	}
	RoundTripF16(out.Values)
	return out, sparse.EncodedSizeCodec(sparse.CodecV2F16, v.Dim, v.Indices)
}

// Sign compresses x to its element-wise sign. The returned slice holds
// +1/−1 as float32 (the scale is carried separately by callers that need
// it; plain signSGD uses the learning rate as the only scale).
func Sign(x []float32) []float32 {
	out := make([]float32, len(x))
	for i, v := range x {
		if v >= 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// PackSigns bit-packs a sign vector (1 bit per element), the wire format
// that gives signSGD its 32x compression.
func PackSigns(x []float32) []byte {
	out := make([]byte, (len(x)+7)/8)
	for i, v := range x {
		if v >= 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// UnpackSigns reverses PackSigns for n elements.
func UnpackSigns(buf []byte, n int) ([]float32, error) {
	if len(buf) != (n+7)/8 {
		return nil, fmt.Errorf("quant: %d bytes for %d signs", len(buf), n)
	}
	out := make([]float32, n)
	for i := range out {
		if buf[i/8]&(1<<(i%8)) != 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out, nil
}

// Ternary quantizes x TernGrad-style: each element becomes
// s·sign(x_i)·b_i where s = max|x| and b_i is a Bernoulli variable with
// probability |x_i|/s — an unbiased estimator. The rng must be shared
// state per worker (deterministic experiments) but NOT shared across
// workers.
func Ternary(x []float32, rng *prng.Source) (scale float32, levels []int8) {
	levels = make([]int8, len(x))
	for _, v := range x {
		if a := abs32(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return 0, levels
	}
	for i, v := range x {
		p := abs32(v) / scale
		if rng.Float32() < p {
			if v >= 0 {
				levels[i] = 1
			} else {
				levels[i] = -1
			}
		}
	}
	return scale, levels
}

// Dequantize expands ternary levels back to floats.
func Dequantize(scale float32, levels []int8) []float32 {
	out := make([]float32, len(levels))
	for i, l := range levels {
		out[i] = scale * float32(l)
	}
	return out
}

// Uniform quantizes x to 2^bits uniform levels per the QSGD scheme with
// stochastic rounding: q_i = s·sign(x_i)·ξ(|x_i|/s) where ξ rounds to a
// neighbouring level with probability proportional to proximity, keeping
// the estimator unbiased.
func Uniform(x []float32, bits int, rng *prng.Source) (scale float32, levels []int16, err error) {
	if bits < 1 || bits > 15 {
		return 0, nil, fmt.Errorf("quant: bits=%d out of [1,15]", bits)
	}
	for _, v := range x {
		if a := abs32(v); a > scale {
			scale = a
		}
	}
	levels = make([]int16, len(x))
	if scale == 0 {
		return 0, levels, nil
	}
	steps := float32(int(1)<<bits - 1)
	for i, v := range x {
		t := abs32(v) / scale * steps
		lo := float32(math.Floor(float64(t)))
		level := lo
		if rng.Float32() < t-lo {
			level = lo + 1
		}
		if v < 0 {
			level = -level
		}
		levels[i] = int16(level)
	}
	return scale, levels, nil
}

// DequantizeUniform expands uniform levels back to floats.
func DequantizeUniform(scale float32, levels []int16, bits int) []float32 {
	steps := float32(int(1)<<bits - 1)
	out := make([]float32, len(levels))
	if steps == 0 || scale == 0 {
		return out
	}
	for i, l := range levels {
		out[i] = scale * float32(l) / steps
	}
	return out
}

// QuantizeSparse applies 8-bit uniform quantization to the VALUES of a
// sparse top-k vector — the DGC-style combined compressor. Indices stay
// exact (they must; a wrong index corrupts an unrelated parameter).
// Returns the quantized copy and the bytes it would occupy on the wire
// (4-byte index + 1-byte level per entry + scale), versus 8 bytes per
// entry uncompressed.
func QuantizeSparse(v *sparse.Vector, rng *prng.Source) (*sparse.Vector, int, error) {
	scale, levels, err := Uniform(v.Values, 8, rng)
	if err != nil {
		return nil, 0, err
	}
	out := &sparse.Vector{
		Dim:     v.Dim,
		Indices: append([]int32(nil), v.Indices...),
		Values:  DequantizeUniform(scale, levels, 8),
	}
	wire := 4 + v.NNZ()*(4+1) // scale + per-entry index+level
	return out, wire, nil
}

// CompressionRatio reports the dense-gradient-to-wire compression ratio
// for m parameters occupying wireBytes on the wire.
func CompressionRatio(m, wireBytes int) float64 {
	if wireBytes == 0 {
		return 0
	}
	return float64(4*m) / float64(wireBytes)
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
