package quant

import (
	"math"

	"gtopkssgd/internal/f16"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/sparse"
)

// Stack is this package's implementation of sparse.Compressor: the
// transform stage of the compound pipeline (select → transform →
// encode) that quantizes gTop-k's surviving VALUES onto the wire
// codec's lattice after selection. Indices stay exact — a wrong index
// corrupts an unrelated parameter — so the compression compounds:
// sparsification removes entries, the stack then shrinks what survives
// (QSGD 8/4/2-bit, TernGrad ternary, or signSGD sign bits), which is
// how the pipeline passes the 32× ceiling quantization alone caps at.
//
// Transform replaces every value with its dequantized lattice point
// (sparse.DequantLevel), so the slice a sender keeps after transforming
// is bit-identical to what every receiver decodes; the difference
// between the original and the transformed values is the quantization
// error the aggregator folds into the error-feedback residual.
type Stack struct {
	vc     sparse.ValueCodec
	seed   uint64
	rng    *prng.Source
	levels []int16
}

// NewStack builds a Compressor for one value codec. The seed drives the
// stochastic rounding (QSGD) and Bernoulli sampling (ternary); give
// each rank its own seed — unbiasedness wants independent draws, and
// replica agreement never depends on the rng because receivers decode
// the sender's bytes rather than re-quantizing.
func NewStack(vc sparse.ValueCodec, seed uint64) *Stack {
	return &Stack{vc: vc, seed: seed, rng: prng.New(seed)}
}

// ValueCodec names the wire representation Transform's levels use.
func (s *Stack) ValueCodec() sparse.ValueCodec { return s.vc }

// Fork derives the compressor for a tag-isolated sub-communicator. The
// child's seed is a pure function of (parent seed, stream) — never of
// how many draws the parent has made — so concurrently launched buckets
// transform deterministically regardless of goroutine scheduling.
func (s *Stack) Fork(stream uint64) sparse.Compressor {
	return NewStack(s.vc, forkSeed(s.seed, stream))
}

// forkSeed mixes a stream number into a seed (splitmix64 finalizer —
// the same mixing prng.New applies to its seed).
func forkSeed(seed, stream uint64) uint64 {
	z := seed ^ (stream+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Transform quantizes values in place onto s's lattice and returns the
// frame scale plus one level per entry for the v3 encoder. The level
// slice aliases internal scratch, valid until the next Transform. The
// arithmetic mirrors Uniform/Ternary/Sign exactly; reconstruction goes
// through sparse.DequantLevel so sender and receivers agree bit-exact.
func (s *Stack) Transform(values []float32) (float32, []int16) {
	switch s.vc {
	case sparse.ValueF32:
		return 0, nil
	case sparse.ValueF16:
		f16.RoundSlice(values)
		return 0, nil
	}
	if cap(s.levels) < len(values) {
		s.levels = make([]int16, len(values))
	}
	levels := s.levels[:len(values)]
	switch s.vc {
	case sparse.ValueQ8, sparse.ValueQ4, sparse.ValueQ2:
		return s.transformUniform(values, levels), levels
	case sparse.ValueTernary:
		return s.transformTernary(values, levels), levels
	default: // sparse.ValueSign
		return transformSign(values, levels), levels
	}
}

// transformUniform is Uniform's QSGD stochastic rounding, writing into
// reusable scratch and pinning values to the decoder's lattice.
func (s *Stack) transformUniform(values []float32, levels []int16) float32 {
	var scale float32
	for _, v := range values {
		if a := abs32(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		for i := range levels {
			levels[i] = 0
		}
		return 0
	}
	steps := float32(s.steps())
	for i, v := range values {
		t := abs32(v) / scale * steps
		lo := float32(math.Floor(float64(t)))
		level := lo
		if s.rng.Float32() < t-lo {
			level = lo + 1
		}
		if v < 0 {
			level = -level
		}
		levels[i] = int16(level)
		values[i] = sparse.DequantLevel(s.vc, scale, levels[i])
	}
	return scale
}

// transformTernary is Ternary's Bernoulli sampling with in-place
// lattice pinning.
func (s *Stack) transformTernary(values []float32, levels []int16) float32 {
	var scale float32
	for _, v := range values {
		if a := abs32(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		for i := range levels {
			levels[i] = 0
		}
		return 0
	}
	for i, v := range values {
		levels[i] = 0
		if s.rng.Float32() < abs32(v)/scale {
			if v >= 0 {
				levels[i] = 1
			} else {
				levels[i] = -1
			}
		}
		values[i] = sparse.DequantLevel(s.vc, scale, levels[i])
	}
	return scale
}

// transformSign is Sign's element-wise sign with the mean magnitude as
// the shared scale (the scaled-sign estimator), deterministic — no rng.
func transformSign(values []float32, levels []int16) float32 {
	var sum float64
	for _, v := range values {
		sum += float64(abs32(v))
	}
	var scale float32
	if len(values) > 0 {
		scale = float32(sum / float64(len(values)))
	}
	for i, v := range values {
		if v >= 0 {
			levels[i] = 1
		} else {
			levels[i] = -1
		}
		values[i] = sparse.DequantLevel(sparse.ValueSign, scale, levels[i])
	}
	return scale
}

// steps returns the per-codec positive level count for the QSGD family.
func (s *Stack) steps() int16 {
	switch s.vc {
	case sparse.ValueQ8:
		return 255
	case sparse.ValueQ4:
		return 15
	default: // sparse.ValueQ2
		return 3
	}
}
