package quant

import (
	"context"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/sparse"
	"gtopkssgd/internal/transport"
)

func TestSignBasics(t *testing.T) {
	got := Sign([]float32{-3, 0, 2.5})
	want := []float32{-1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sign = %v, want %v", got, want)
		}
	}
}

func TestPackUnpackSignsRoundTrip(t *testing.T) {
	src := prng.New(1)
	for _, n := range []int{1, 7, 8, 9, 63, 64, 100} {
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(src.NormFloat64())
		}
		packed := PackSigns(x)
		if len(packed) != (n+7)/8 {
			t.Fatalf("n=%d: packed %d bytes", n, len(packed))
		}
		got, err := UnpackSigns(packed, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			want := float32(1)
			if x[i] < 0 {
				want = -1
			}
			if got[i] != want {
				t.Fatalf("n=%d elem %d: got %v want %v", n, i, got[i], want)
			}
		}
	}
	if _, err := UnpackSigns([]byte{0}, 100); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestTernaryUnbiased(t *testing.T) {
	// E[quantized] == x for the stochastic ternary scheme.
	x := []float32{0.5, -0.25, 1.0, 0}
	rng := prng.New(7)
	const trials = 20000
	sums := make([]float64, len(x))
	for trial := 0; trial < trials; trial++ {
		scale, levels := Ternary(x, rng)
		for i, l := range levels {
			sums[i] += float64(scale) * float64(l)
		}
	}
	for i, want := range x {
		mean := sums[i] / trials
		if math.Abs(mean-float64(want)) > 0.02 {
			t.Errorf("elem %d: mean %v, want %v", i, mean, want)
		}
	}
}

func TestTernaryZeroVector(t *testing.T) {
	scale, levels := Ternary(make([]float32, 5), prng.New(1))
	if scale != 0 {
		t.Fatalf("scale = %v", scale)
	}
	for _, l := range levels {
		if l != 0 {
			t.Fatal("nonzero level for zero input")
		}
	}
	deq := Dequantize(scale, levels)
	for _, v := range deq {
		if v != 0 {
			t.Fatal("nonzero dequantized value")
		}
	}
}

func TestUniformQuantizationErrorBound(t *testing.T) {
	// 8-bit quantization error per element is at most scale/(2^8-1).
	src := prng.New(3)
	x := make([]float32, 500)
	for i := range x {
		x[i] = float32(src.NormFloat64())
	}
	scale, levels, err := Uniform(x, 8, prng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	deq := DequantizeUniform(scale, levels, 8)
	bound := float64(scale) / 255
	for i := range x {
		if diff := math.Abs(float64(deq[i] - x[i])); diff > bound+1e-6 {
			t.Fatalf("elem %d: error %v exceeds bound %v", i, diff, bound)
		}
	}
}

func TestUniformValidatesBits(t *testing.T) {
	if _, _, err := Uniform([]float32{1}, 0, prng.New(1)); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, _, err := Uniform([]float32{1}, 16, prng.New(1)); err == nil {
		t.Error("bits=16 accepted")
	}
}

func TestQuantizeSparsePreservesIndices(t *testing.T) {
	v := &sparse.Vector{Dim: 100, Indices: []int32{3, 50, 99}, Values: []float32{1, -2, 0.5}}
	q, wire, err := QuantizeSparse(v, prng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Indices {
		if q.Indices[i] != v.Indices[i] {
			t.Fatal("indices changed by quantization")
		}
	}
	if wire >= sparse.EncodedSize(v.NNZ()) {
		t.Fatalf("quantized wire %d not smaller than raw %d", wire, sparse.EncodedSize(v.NNZ()))
	}
}

func TestCompressionRatio(t *testing.T) {
	// Dense m=1000 floats = 4000 bytes; 40-byte wire -> 100x.
	if got := CompressionRatio(1000, 40); got != 100 {
		t.Fatalf("ratio = %v", got)
	}
	if CompressionRatio(10, 0) != 0 {
		t.Fatal("zero wire bytes should yield 0")
	}
}

// runAggCluster trains the separable quadratic with the given aggregator
// factory and returns first/last losses plus final weights of rank 0.
func runAggCluster(t *testing.T, p, dim, steps int, lr float32,
	factory func(rank int, comm *collective.Comm) (core.Aggregator, error)) []*core.WorkerResult {
	t.Helper()
	src := prng.New(99)
	target := make([]float32, dim)
	for i := range target {
		target[i] = float32(src.NormFloat64())
	}
	results, err := core.RunCluster(context.Background(),
		core.ClusterConfig{Workers: p, Steps: steps},
		func(rank int, comm *collective.Comm) (*core.Trainer, error) {
			agg, err := factory(rank, comm)
			if err != nil {
				return nil, err
			}
			gradFn := func(_ int, weights, grad []float32) float64 {
				var loss float64
				for i := range weights {
					d := weights[i] - target[i]
					grad[i] = d
					loss += 0.5 * float64(d) * float64(d)
				}
				return loss / float64(dim)
			}
			return core.NewTrainer(core.TrainConfig{LR: lr}, agg, make([]float32, dim), gradFn)
		})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestSignSGDConvergesOnQuadratic(t *testing.T) {
	results := runAggCluster(t, 4, 32, 200, 0.02,
		func(_ int, comm *collective.Comm) (core.Aggregator, error) {
			return NewSignSGDAggregator(comm, 32), nil
		})
	first, last := results[0].Losses[0], results[0].Losses[199]
	if last > first/5 {
		t.Fatalf("signSGD did not converge: %v -> %v", first, last)
	}
	for r := 1; r < 4; r++ {
		for i := range results[0].FinalWeights {
			if results[r].FinalWeights[i] != results[0].FinalWeights[i] {
				t.Fatalf("signSGD replicas diverged at %d", i)
			}
		}
	}
}

func TestTernGradConvergesOnQuadratic(t *testing.T) {
	results := runAggCluster(t, 4, 32, 300, 0.3,
		func(_ int, comm *collective.Comm) (core.Aggregator, error) {
			return NewTernGradAggregator(comm, 32, 11), nil
		})
	first, last := results[0].Losses[0], results[0].Losses[299]
	if last > first/5 {
		t.Fatalf("TernGrad did not converge: %v -> %v", first, last)
	}
}

func TestQuantizedGTopKConvergesAndCompresses(t *testing.T) {
	const dim = 64
	var wireBytes int64
	var mu sync.Mutex
	results := runAggCluster(t, 4, dim, 400, 0.05,
		func(rank int, comm *collective.Comm) (core.Aggregator, error) {
			agg, err := NewQuantizedGTopKAggregator(comm, dim, 6, 13)
			if err != nil {
				return nil, err
			}
			if rank == 0 {
				// Capture rank 0's wire accounting after training via a
				// wrapper that updates the shared counter per step.
				return aggregatorFunc{agg: agg, after: func() {
					mu.Lock()
					wireBytes = agg.WireBytes
					mu.Unlock()
				}}, nil
			}
			return agg, nil
		})
	first, last := results[0].Losses[0], results[0].Losses[399]
	if last > first/5 {
		t.Fatalf("quantized gTop-k did not converge: %v -> %v", first, last)
	}
	mu.Lock()
	defer mu.Unlock()
	if wireBytes == 0 {
		t.Fatal("no wire bytes recorded")
	}
	perStep := wireBytes / 400
	ratio := CompressionRatio(dim, int(perStep))
	if ratio < 5 {
		t.Fatalf("combined compression ratio %v too low (per-step wire %d)", ratio, perStep)
	}
	for r := 1; r < 4; r++ {
		for i := range results[0].FinalWeights {
			if results[r].FinalWeights[i] != results[0].FinalWeights[i] {
				t.Fatalf("quantized replicas diverged at %d", i)
			}
		}
	}
}

// aggregatorFunc wraps an aggregator with a post-step hook.
type aggregatorFunc struct {
	agg   core.Aggregator
	after func()
}

func (a aggregatorFunc) Name() string { return a.agg.Name() }
func (a aggregatorFunc) Aggregate(ctx context.Context, grad []float32) ([]float32, error) {
	out, err := a.agg.Aggregate(ctx, grad)
	if a.after != nil {
		a.after()
	}
	return out, err
}

func TestTernGradDifferentSeedsPerRank(t *testing.T) {
	// Stochastic rounding must differ across ranks (independence) even
	// with the same base seed.
	f, err := transport.NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a0 := NewTernGradAggregator(collective.New(f.Conn(0)), 8, 5)
	a1 := NewTernGradAggregator(collective.New(f.Conn(1)), 8, 5)
	// Magnitudes strictly below the max so Bernoulli rounding is actually
	// stochastic (p < 1) for most elements.
	x := []float32{0.5, 0.3, -0.4, 0.2, 1.0, -0.6, 0.45, 0.15}
	same := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		_, l0 := Ternary(x, a0.rng)
		_, l1 := Ternary(x, a1.rng)
		equal := true
		for j := range l0 {
			if l0[j] != l1[j] {
				equal = false
				break
			}
		}
		if equal {
			same++
		}
	}
	if same == trials {
		t.Fatal("rank rngs identical; stochastic rounding correlated")
	}
}

// Property: pack/unpack round trip preserves every sign.
func TestQuickPackSignsRoundTrip(t *testing.T) {
	fn := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		src := prng.New(seed)
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(src.NormFloat64())
		}
		got, err := UnpackSigns(PackSigns(x), n)
		if err != nil {
			return false
		}
		for i := range x {
			want := float32(1)
			if x[i] < 0 {
				want = -1
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: uniform quantization never exceeds its error bound.
func TestQuickUniformErrorBound(t *testing.T) {
	fn := func(seed uint64, bitsRaw uint8) bool {
		bits := int(bitsRaw%8) + 1
		src := prng.New(seed)
		x := make([]float32, 50)
		for i := range x {
			x[i] = float32(src.NormFloat64())
		}
		scale, levels, err := Uniform(x, bits, prng.New(seed+1))
		if err != nil {
			return false
		}
		deq := DequantizeUniform(scale, levels, bits)
		bound := float64(scale)/float64(int(1)<<bits-1) + 1e-5
		for i := range x {
			if math.Abs(float64(deq[i]-x[i])) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatorNames(t *testing.T) {
	f, err := transport.NewInProc(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	comm := collective.New(f.Conn(0))
	if got := NewSignSGDAggregator(comm, 4).Name(); got != "signsgd" {
		t.Errorf("name = %q", got)
	}
	if got := NewTernGradAggregator(comm, 4, 1).Name(); got != "terngrad" {
		t.Errorf("name = %q", got)
	}
	q, err := NewQuantizedGTopKAggregator(comm, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name() != "gtopk-quant8" {
		t.Errorf("name = %q", q.Name())
	}
	if _, err := NewQuantizedGTopKAggregator(comm, 4, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestDimValidation(t *testing.T) {
	f, err := transport.NewInProc(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	comm := collective.New(f.Conn(0))
	ctx := context.Background()
	if _, err := NewSignSGDAggregator(comm, 4).Aggregate(ctx, make([]float32, 5)); err == nil {
		t.Error("signsgd dim mismatch accepted")
	}
	if _, err := NewTernGradAggregator(comm, 4, 1).Aggregate(ctx, make([]float32, 5)); err == nil {
		t.Error("terngrad dim mismatch accepted")
	}
}

// TestQuantizeSparseF16 pins the half-precision compressor: exact
// indices, values equal to the binary16 round trip (idempotent), and a
// wire cost matching the v2-fp16 codec's actual frame.
func TestQuantizeSparseF16(t *testing.T) {
	v := &sparse.Vector{
		Dim:     1000,
		Indices: []int32{1, 40, 41, 999},
		Values:  []float32{0.333333, -1e-9, 70000, -2.5},
	}
	q, wire := QuantizeSparseF16(v)
	if wire != len(sparse.EncodeCodec(sparse.CodecV2F16, v)) {
		t.Fatalf("reported wire %d bytes, actual v2-fp16 frame %d", wire, len(sparse.EncodeCodec(sparse.CodecV2F16, v)))
	}
	for i, idx := range v.Indices {
		if q.Indices[i] != idx {
			t.Fatalf("index %d changed: %d -> %d", i, idx, q.Indices[i])
		}
		want := Float16(v.Values[i])
		if math.Float32bits(q.Values[i]) != math.Float32bits(want) {
			t.Fatalf("value %d: got %v want %v", i, q.Values[i], want)
		}
		if math.Float32bits(Float16(q.Values[i])) != math.Float32bits(q.Values[i]) {
			t.Fatalf("value %d not idempotent under Float16", i)
		}
	}
	if v.Values[0] == q.Values[0] {
		t.Fatal("0.333333 should not be exactly representable in binary16")
	}
	// RoundTripF16 matches element-wise application.
	xs := append([]float32(nil), v.Values...)
	RoundTripF16(xs)
	for i := range xs {
		if math.Float32bits(xs[i]) != math.Float32bits(q.Values[i]) {
			t.Fatalf("RoundTripF16 element %d differs from QuantizeSparseF16", i)
		}
	}
}
