package quant

import (
	"bytes"
	"math"
	"testing"

	"gtopkssgd/internal/prng"
	"gtopkssgd/internal/sparse"
)

// goldenInput is the fixed probe vector every golden test quantizes: a
// mix of signs, magnitudes spanning three orders, an exact zero and the
// max-magnitude entry that becomes the scale.
func goldenInput() []float32 {
	return []float32{0.75, -0.25, 0.0625, -1.5, 0.001, 0, -0.875, 0.33}
}

// eqF32 compares float32 slices bit-exactly (0 == -0 is NOT tolerated:
// the wire format distinguishes them and so must the quantizers).
func eqF32(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s[%d] = %v (%#08x), want %v (%#08x)", name, i,
				got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

func eqI16(t *testing.T, name string, got, want []int16) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d levels, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
}

// TestGoldenUniform pins the exact QSGD output — scale, stochastic
// levels under the seeded rng, and bit-exact dequantized values — so any
// drift in the rounding arithmetic or rng consumption order shows up as
// a diff against these vectors, not as a silent convergence regression.
func TestGoldenUniform(t *testing.T) {
	scale, levels, err := Uniform(goldenInput(), 8, prng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float32bits(scale) != 0x3fc00000 { // 1.5
		t.Fatalf("scale = %v (%#08x), want 1.5", scale, math.Float32bits(scale))
	}
	eqI16(t, "levels8", levels, []int16{128, -43, 10, -255, 0, 0, -149, 56})
	eqF32(t, "dequant8", DequantizeUniform(scale, levels, 8),
		[]float32{0.7529412, -0.2529412, 0.05882353, -1.5, 0, 0, -0.87647057, 0.32941177})

	scale4, levels4, err := Uniform(goldenInput(), 4, prng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if scale4 != 1.5 {
		t.Fatalf("scale4 = %v, want 1.5", scale4)
	}
	eqI16(t, "levels4", levels4, []int16{8, -3, 0, -15, 0, 0, -9, 3})
	eqF32(t, "dequant4", DequantizeUniform(scale4, levels4, 4),
		[]float32{0.8, -0.3, 0, -1.5, 0, 0, -0.9, 0.3})
}

// TestGoldenTernary pins the exact TernGrad output under the seeded rng.
func TestGoldenTernary(t *testing.T) {
	scale, levels := Ternary(goldenInput(), prng.New(42))
	if scale != 1.5 {
		t.Fatalf("scale = %v, want 1.5", scale)
	}
	want := []int8{1, 0, 0, -1, 0, 0, 0, 0}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("level[%d] = %d, want %d", i, levels[i], want[i])
		}
	}
	eqF32(t, "dequant", Dequantize(scale, levels),
		[]float32{1.5, 0, 0, -1.5, 0, 0, 0, 0})
}

// TestGoldenSign pins the signSGD sign vector, its bit-packed wire byte
// and the unpack round trip (zero maps to +1, matching the wire codec).
func TestGoldenSign(t *testing.T) {
	signs := Sign(goldenInput())
	eqF32(t, "signs", signs, []float32{1, -1, 1, -1, 1, 1, -1, 1})
	packed := PackSigns(signs)
	if !bytes.Equal(packed, []byte{0xb5}) {
		t.Fatalf("packed = %#v, want []byte{0xb5}", packed)
	}
	back, err := UnpackSigns(packed, len(signs))
	if err != nil {
		t.Fatal(err)
	}
	eqF32(t, "unpacked", back, signs)
	if _, err := UnpackSigns(packed, 42); err == nil {
		t.Fatalf("UnpackSigns accepted a mismatched length")
	}
}

// goldenStack pins one Compressor stack end to end: the Transform output
// (scale, levels, lattice-pinned values) and the exact v3 frame bytes
// the encoder emits for it. The frame bytes are the replica-agreement
// contract — every peer decodes exactly these bytes — so they are pinned
// as literals, not recomputed.
type goldenStack struct {
	vc     sparse.ValueCodec
	scale  float32
	levels []int16
	bits   []uint32 // float32 bits of the transformed (lattice) values
	frame  []byte
}

// TestGoldenStack pins Transform + EncodeSlicesV3 for every quantized
// value codec, then closes the loop: decoding the pinned frame must
// reproduce the lattice values bit-exactly, and input − lattice is the
// residual the aggregator folds back (exact float32 subtraction).
func TestGoldenStack(t *testing.T) {
	indices := []int32{0, 3, 7, 12, 100, 101, 250, 511}
	golden := []goldenStack{
		{sparse.ValueQ8, 1.5,
			[]int16{127, -43, 10, -255, 0, 0, -149, 56},
			[]uint32{0x3f3f3f3f, 0xbe818182, 0x3d70f0f1, 0xbfc00000, 0, 0, 0xbf606060, 0x3ea8a8a9},
			[]byte{0xb3, 0x3, 0x2, 0x80, 0x4, 0x8, 0x0, 0x0, 0xc0, 0x3f, 0x0, 0x2, 0x3, 0x4, 0x57, 0x0, 0x94, 0x1, 0x84, 0x2, 0x4a, 0x7f, 0x2b, 0xa, 0xff, 0x0, 0x0, 0x95, 0x38}},
		{sparse.ValueQ4, 1.5,
			[]int16{7, -3, 0, -15, 0, 0, -9, 4},
			[]uint32{0x3f333333, 0xbe99999a, 0, 0xbfc00000, 0, 0, 0xbf666666, 0x3ecccccd},
			[]byte{0xb3, 0x3, 0x3, 0x80, 0x4, 0x8, 0x0, 0x0, 0xc0, 0x3f, 0x0, 0x2, 0x3, 0x4, 0x57, 0x0, 0x94, 0x1, 0x84, 0x2, 0x4a, 0x37, 0xf0, 0x0, 0x49}},
		{sparse.ValueQ2, 1.5,
			[]int16{1, -1, 0, -3, 0, 0, -2, 1},
			[]uint32{0x3f000000, 0xbf000000, 0, 0xbfc00000, 0, 0, 0xbf800000, 0x3f000000},
			[]byte{0xb3, 0x3, 0x4, 0x80, 0x4, 0x8, 0x0, 0x0, 0xc0, 0x3f, 0x0, 0x2, 0x3, 0x4, 0x57, 0x0, 0x94, 0x1, 0x84, 0x2, 0x4a, 0xc5, 0x60}},
		{sparse.ValueTernary, 1.5,
			[]int16{0, 0, 0, -1, 0, 0, -1, 1},
			[]uint32{0, 0, 0, 0xbfc00000, 0, 0, 0xbfc00000, 0x3fc00000},
			[]byte{0xb3, 0x3, 0x5, 0x80, 0x4, 0x8, 0x0, 0x0, 0xc0, 0x3f, 0x0, 0x2, 0x3, 0x4, 0x57, 0x0, 0x94, 0x1, 0x84, 0x2, 0x80, 0x60}},
		{sparse.ValueSign, 0.4710625,
			[]int16{1, -1, 1, -1, 1, 1, -1, 1},
			[]uint32{0x3ef12f1b, 0xbef12f1b, 0x3ef12f1b, 0xbef12f1b, 0x3ef12f1b, 0x3ef12f1b, 0xbef12f1b, 0x3ef12f1b},
			[]byte{0xb3, 0x3, 0x6, 0x80, 0x4, 0x8, 0x1b, 0x2f, 0xf1, 0x3e, 0x0, 0x2, 0x3, 0x4, 0x57, 0x0, 0x94, 0x1, 0x84, 0x2, 0xb5}},
	}
	for _, g := range golden {
		t.Run(g.vc.String(), func(t *testing.T) {
			in := goldenInput()
			vals := append([]float32(nil), in...)
			scale, levels := NewStack(g.vc, 7).Transform(vals)
			if math.Float32bits(scale) != math.Float32bits(g.scale) {
				t.Fatalf("scale = %v, want %v", scale, g.scale)
			}
			eqI16(t, "levels", levels, g.levels)
			want := make([]float32, len(g.bits))
			for i, b := range g.bits {
				want[i] = math.Float32frombits(b)
			}
			eqF32(t, "lattice values", vals, want)

			codec := sparse.CodecForWireValue(3, g.vc)
			frame := sparse.EncodeSlicesV3(codec, 512, indices, nil, scale, levels)
			if !bytes.Equal(frame, g.frame) {
				t.Fatalf("frame = %#v,\nwant    %#v", frame, g.frame)
			}
			decoded := &sparse.Vector{}
			if err := sparse.DecodeV3Into(decoded, g.frame); err != nil {
				t.Fatalf("pinned frame no longer decodes: %v", err)
			}
			eqF32(t, "decoded values", decoded.Values, vals)
			// The residual the aggregator folds back is input − lattice in
			// float32; it must be finite and bounded by the scale plus the
			// largest input magnitude (the coarsest lattice miss possible).
			bound := float64(scale) + 1.5
			for i := range in {
				res := float64(in[i] - vals[i])
				if math.IsNaN(res) || math.Abs(res) > bound {
					t.Fatalf("residual at %d: %v out of [-%v, %v]", i, res, bound, bound)
				}
			}
		})
	}
}

// TestGoldenStackLossless pins the pass-through contract of the two
// float-valued stacks: fp32 transforms nothing, fp16 rounds in place and
// neither returns levels.
func TestGoldenStackLossless(t *testing.T) {
	in := goldenInput()
	vals := append([]float32(nil), in...)
	if scale, levels := NewStack(sparse.ValueF32, 7).Transform(vals); scale != 0 || levels != nil {
		t.Fatalf("fp32 Transform returned (%v, %v), want (0, nil)", scale, levels)
	}
	eqF32(t, "fp32 values", vals, in)
	scale, levels := NewStack(sparse.ValueF16, 7).Transform(vals)
	if scale != 0 || levels != nil {
		t.Fatalf("fp16 Transform returned (%v, %v), want (0, nil)", scale, levels)
	}
	eqF32(t, "fp16 values", vals, []float32{0.75, -0.25, 0.0625, -1.5, 0.0010004044, 0, -0.875, 0.33007812})
}

// TestStackZeroScale pins the all-zero input: every quantized stack must
// emit scale 0 with all-zero levels (sign excepted — its levels are
// ±1 by construction), the one form the decoder accepts under a zero
// scale.
func TestStackZeroScale(t *testing.T) {
	for _, vc := range []sparse.ValueCodec{sparse.ValueQ8, sparse.ValueQ4, sparse.ValueQ2, sparse.ValueTernary} {
		vals := make([]float32, 5)
		scale, levels := NewStack(vc, 3).Transform(vals)
		if scale != 0 {
			t.Fatalf("%s: zero input gave scale %v", vc, scale)
		}
		for i, l := range levels {
			if l != 0 {
				t.Fatalf("%s: zero input gave level[%d]=%d", vc, i, l)
			}
		}
	}
	vals := make([]float32, 3)
	scale, levels := NewStack(sparse.ValueSign, 3).Transform(vals)
	if scale != 0 {
		t.Fatalf("sign: zero input gave scale %v", scale)
	}
	eqI16(t, "sign zero levels", levels, []int16{1, 1, 1})
}

// TestStackFork pins the fork contract: the same stream forked twice
// transforms identically no matter how many draws the parent has made,
// and ValueCodec survives the fork.
func TestStackFork(t *testing.T) {
	parent := NewStack(sparse.ValueQ8, 99)
	a := parent.Fork(5)
	burn := goldenInput()
	parent.Transform(burn) // parent draws must not perturb later forks
	b := parent.Fork(5)
	if a.ValueCodec() != sparse.ValueQ8 || b.ValueCodec() != sparse.ValueQ8 {
		t.Fatalf("fork changed value codec")
	}
	va, vb := goldenInput(), goldenInput()
	sa, la := a.Transform(va)
	sb, lb := b.Transform(vb)
	if sa != sb {
		t.Fatalf("forked scales differ: %v vs %v", sa, sb)
	}
	eqI16(t, "forked levels", la, lb)
	eqF32(t, "forked values", va, vb)
}
