package quant

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/prng"
)

// SignSGDAggregator implements signSGD with majority vote (Bernstein et
// al., cited as [14] in the paper): workers exchange bit-packed gradient
// signs; the update is the sign of the per-coordinate vote, scaled to
// ±1/P so its magnitude is comparable to an averaged gradient step under
// the same learning rate.
type SignSGDAggregator struct {
	comm *collective.Comm
	dim  int
	buf  []float32
}

// NewSignSGDAggregator creates the aggregator.
func NewSignSGDAggregator(comm *collective.Comm, dim int) *SignSGDAggregator {
	return &SignSGDAggregator{comm: comm, dim: dim, buf: make([]float32, dim)}
}

// Name implements core.Aggregator.
func (a *SignSGDAggregator) Name() string { return "signsgd" }

// Aggregate implements core.Aggregator.
func (a *SignSGDAggregator) Aggregate(ctx context.Context, grad []float32) ([]float32, error) {
	if len(grad) != a.dim {
		return nil, fmt.Errorf("quant: signsgd aggregate: dim %d, want %d", len(grad), a.dim)
	}
	packed := PackSigns(grad)
	blobs, err := a.comm.AllGather(ctx, packed)
	if err != nil {
		return nil, fmt.Errorf("quant: signsgd aggregate: %w", err)
	}
	votes := make([]int, a.dim)
	for rank, blob := range blobs {
		signs, err := UnpackSigns(blob, a.dim)
		if err != nil {
			return nil, fmt.Errorf("quant: signsgd rank %d: %w", rank, err)
		}
		for i, s := range signs {
			if s > 0 {
				votes[i]++
			} else {
				votes[i]--
			}
		}
	}
	inv := 1 / float32(a.comm.Size())
	for i, v := range votes {
		switch {
		case v > 0:
			a.buf[i] = inv
		case v < 0:
			a.buf[i] = -inv
		default:
			a.buf[i] = 0
		}
	}
	return a.buf, nil
}

// TernGradAggregator implements TernGrad-style aggregation (cited as
// [35]): each worker ternarizes its gradient to {−s, 0, +s} with
// stochastic unbiased rounding, workers exchange (scale, levels), and
// the update is the average of the dequantized gradients.
type TernGradAggregator struct {
	comm *collective.Comm
	dim  int
	rng  *prng.Source
	buf  []float32
}

// NewTernGradAggregator creates the aggregator. Each rank must use a
// DIFFERENT seed (stochastic rounding must be independent across
// workers) but the same seed across repeated runs for reproducibility.
func NewTernGradAggregator(comm *collective.Comm, dim int, seed uint64) *TernGradAggregator {
	return &TernGradAggregator{
		comm: comm,
		dim:  dim,
		rng:  prng.New(seed ^ uint64(comm.Rank())*0x9e3779b97f4a7c15),
		buf:  make([]float32, dim),
	}
}

// Name implements core.Aggregator.
func (a *TernGradAggregator) Name() string { return "terngrad" }

// Aggregate implements core.Aggregator.
func (a *TernGradAggregator) Aggregate(ctx context.Context, grad []float32) ([]float32, error) {
	if len(grad) != a.dim {
		return nil, fmt.Errorf("quant: terngrad aggregate: dim %d, want %d", len(grad), a.dim)
	}
	scale, levels := Ternary(grad, a.rng)
	payload := encodeTernary(scale, levels)
	blobs, err := a.comm.AllGather(ctx, payload)
	if err != nil {
		return nil, fmt.Errorf("quant: terngrad aggregate: %w", err)
	}
	for i := range a.buf {
		a.buf[i] = 0
	}
	for rank, blob := range blobs {
		s, lv, err := decodeTernary(blob, a.dim)
		if err != nil {
			return nil, fmt.Errorf("quant: terngrad rank %d: %w", rank, err)
		}
		for i, l := range lv {
			a.buf[i] += s * float32(l)
		}
	}
	inv := 1 / float32(a.comm.Size())
	for i := range a.buf {
		a.buf[i] *= inv
	}
	return a.buf, nil
}

// QuantizedGTopKAggregator is the combined compressor (DGC-style, cited
// as [12]): gTop-k sparsification with 8-bit quantized values. Every
// worker quantizes its local top-k BEFORE the tree reduction; all
// replicas therefore agree on the (already-quantized) values flowing
// through ⊕ and produce identical updates.
type QuantizedGTopKAggregator struct {
	comm *collective.Comm
	sp   *core.Sparsifier
	k    int
	rng  *prng.Source
	buf  []float32

	// WireBytes accumulates the modelled wire footprint of the quantized
	// local payloads, for compression-ratio reporting.
	WireBytes int64
}

// NewQuantizedGTopKAggregator creates the combined aggregator.
func NewQuantizedGTopKAggregator(comm *collective.Comm, dim, k int, seed uint64) (*QuantizedGTopKAggregator, error) {
	if k < 1 || k > dim {
		return nil, fmt.Errorf("quant: k=%d out of range [1,%d]", k, dim)
	}
	return &QuantizedGTopKAggregator{
		comm: comm,
		sp:   core.NewSparsifier(dim),
		k:    k,
		rng:  prng.New(seed ^ uint64(comm.Rank())*0xd1342543de82ef95),
		buf:  make([]float32, dim),
	}, nil
}

// Name implements core.Aggregator.
func (a *QuantizedGTopKAggregator) Name() string { return "gtopk-quant8" }

// Aggregate implements core.Aggregator.
func (a *QuantizedGTopKAggregator) Aggregate(ctx context.Context, grad []float32) ([]float32, error) {
	local, err := a.sp.Select(grad, a.k)
	if err != nil {
		return nil, fmt.Errorf("quant: gtopk-quant aggregate: %w", err)
	}
	quantized, wire, err := QuantizeSparse(local, a.rng)
	if err != nil {
		return nil, fmt.Errorf("quant: gtopk-quant aggregate: %w", err)
	}
	a.WireBytes += int64(wire)
	// Quantization error joins the residual (error feedback applies to
	// the compressor as a whole, not just sparsification).
	res := a.sp.Residual()
	for i, idx := range local.Indices {
		res[idx] += local.Values[i] - quantized.Values[i]
	}
	global, err := core.GTopKAllReduce(ctx, a.comm, quantized, a.k)
	if err != nil {
		return nil, err
	}
	a.sp.PutBack(quantized, global.Indices)
	for i := range a.buf {
		a.buf[i] = 0
	}
	global.ScatterAdd(a.buf)
	inv := 1 / float32(a.comm.Size())
	for i := range a.buf {
		a.buf[i] *= inv
	}
	return a.buf, nil
}

// encodeTernary packs (scale, int8 levels) for the wire.
func encodeTernary(scale float32, levels []int8) []byte {
	buf := make([]byte, 4+len(levels))
	putF32(buf, scale)
	for i, l := range levels {
		buf[4+i] = byte(l)
	}
	return buf
}

func decodeTernary(buf []byte, n int) (float32, []int8, error) {
	if len(buf) != 4+n {
		return 0, nil, fmt.Errorf("quant: ternary payload %d bytes for n=%d", len(buf), n)
	}
	scale := getF32(buf)
	levels := make([]int8, n)
	for i := range levels {
		levels[i] = int8(buf[4+i])
	}
	return scale, levels, nil
}

func putF32(buf []byte, v float32) {
	binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
}

func getF32(buf []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(buf))
}
