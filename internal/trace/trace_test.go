package trace

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTotalsAndFractions(t *testing.T) {
	r := NewRecorder()
	r.Record(0, PhaseCompute, 300*time.Millisecond)
	r.Record(0, PhaseAggregate, 600*time.Millisecond)
	r.Record(0, PhaseUpdate, 100*time.Millisecond)
	r.Record(1, PhaseCompute, 300*time.Millisecond)

	totals := r.Totals()
	if totals[PhaseCompute] != 600*time.Millisecond {
		t.Fatalf("compute total = %v", totals[PhaseCompute])
	}
	fr := r.Fractions()
	if math.Abs(fr[PhaseCompute]-0.4615) > 0.01 {
		t.Fatalf("compute fraction = %v", fr[PhaseCompute])
	}
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder()
	if r.Len() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	if len(r.Fractions()) != 0 {
		t.Fatal("empty recorder has fractions")
	}
	if r.Summary() != "" {
		t.Fatalf("empty summary: %q", r.Summary())
	}
}

func TestWriteCSVOrdering(t *testing.T) {
	r := NewRecorder()
	r.Record(1, PhaseCompute, 5*time.Nanosecond)
	r.Record(0, PhaseUpdate, 3*time.Nanosecond)
	r.Record(0, PhaseAggregate, 7*time.Nanosecond)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "iter,phase,ns\n0,aggregate,7\n0,update,3\n1,compute,5\n"
	if sb.String() != want {
		t.Fatalf("csv:\n%q\nwant:\n%q", sb.String(), want)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(i, PhaseCompute, time.Duration(g+1))
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("recorded %d events, want 800", r.Len())
	}
}

func TestSummaryContainsPhases(t *testing.T) {
	r := NewRecorder()
	r.Record(0, PhaseCompute, time.Second)
	r.Record(0, PhaseAggregate, time.Second)
	s := r.Summary()
	if !strings.Contains(s, "compute") || !strings.Contains(s, "aggregate") {
		t.Fatalf("summary missing phases:\n%s", s)
	}
	if !strings.Contains(s, "50.0%") {
		t.Fatalf("summary missing percentages:\n%s", s)
	}
}
