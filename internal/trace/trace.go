// Package trace records per-iteration phase timings of a training run
// and exports them for analysis — the reproduction's equivalent of the
// profiling the paper used to produce its Fig. 11 time breakdown.
//
// The recorder consumes wall-clock phase durations from the trainer's
// phase hook (compute = forward+backward, aggregate = sparsification +
// communication); summaries and CSV export make per-phase behaviour
// inspectable without attaching a profiler.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Phase labels one timed section of a training iteration.
type Phase string

// Phases recorded by the trainer hook.
const (
	PhaseCompute   Phase = "compute"   // forward + backward passes
	PhaseAggregate Phase = "aggregate" // sparsification + gradient exchange
	PhaseUpdate    Phase = "update"    // momentum + weight update
)

// Event is one timed phase of one iteration.
type Event struct {
	Iter     int
	Phase    Phase
	Duration time.Duration
}

// Recorder accumulates events. It is safe for concurrent use (the
// pipelined trainer reports from two goroutines).
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one event.
func (r *Recorder) Record(iter int, phase Phase, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event{Iter: iter, Phase: phase, Duration: d})
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Totals returns the summed duration per phase.
func (r *Recorder) Totals() map[Phase]time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Phase]time.Duration)
	for _, e := range r.events {
		out[e.Phase] += e.Duration
	}
	return out
}

// Fractions returns each phase's share of total recorded time.
func (r *Recorder) Fractions() map[Phase]float64 {
	totals := r.Totals()
	var sum time.Duration
	for _, d := range totals {
		sum += d
	}
	out := make(map[Phase]float64, len(totals))
	if sum == 0 {
		return out
	}
	for p, d := range totals {
		out[p] = float64(d) / float64(sum)
	}
	return out
}

// WriteCSV emits "iter,phase,nanoseconds" rows sorted by (iter, phase).
func (r *Recorder) WriteCSV(w io.Writer) error {
	r.mu.Lock()
	events := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.Slice(events, func(i, j int) bool {
		if events[i].Iter != events[j].Iter {
			return events[i].Iter < events[j].Iter
		}
		return events[i].Phase < events[j].Phase
	})
	if _, err := io.WriteString(w, "iter,phase,ns\n"); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, e := range events {
		row := strconv.Itoa(e.Iter) + "," + string(e.Phase) + "," +
			strconv.FormatInt(e.Duration.Nanoseconds(), 10) + "\n"
		if _, err := io.WriteString(w, row); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	return nil
}

// Summary renders a human-readable per-phase report.
func (r *Recorder) Summary() string {
	totals := r.Totals()
	fracs := r.Fractions()
	phases := make([]Phase, 0, len(totals))
	for p := range totals {
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
	s := ""
	for _, p := range phases {
		s += fmt.Sprintf("%-10s %12v  %5.1f%%\n", p, totals[p].Round(time.Microsecond), 100*fracs[p])
	}
	return s
}
