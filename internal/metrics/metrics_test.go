package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestBreakdownFractionsSumToOne(t *testing.T) {
	b := Breakdown{
		Compute:  300 * time.Millisecond,
		Compress: 100 * time.Millisecond,
		Comm:     600 * time.Millisecond,
	}
	if b.Total() != time.Second {
		t.Fatalf("total = %v", b.Total())
	}
	c1, c2, c3 := b.Fractions()
	if math.Abs(c1+c2+c3-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", c1+c2+c3)
	}
	if math.Abs(c1-0.3) > 1e-12 || math.Abs(c2-0.1) > 1e-12 || math.Abs(c3-0.6) > 1e-12 {
		t.Fatalf("fractions = %v %v %v", c1, c2, c3)
	}
}

func TestZeroBreakdown(t *testing.T) {
	var b Breakdown
	c1, c2, c3 := b.Fractions()
	if c1 != 0 || c2 != 0 || c3 != 0 || b.ScalingEfficiency() != 0 {
		t.Fatal("zero breakdown should yield zeros")
	}
}

func TestScalingEfficiencyEq4(t *testing.T) {
	// e = (tf+tb)/(tf+tb+tc): 200ms compute, 50ms overhead -> 0.8.
	b := Breakdown{Compute: 200 * time.Millisecond, Comm: 50 * time.Millisecond}
	if got := b.ScalingEfficiency(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("efficiency = %v, want 0.8", got)
	}
}

func TestThroughput(t *testing.T) {
	// 32 workers x 128 images in 2s = 2048 img/s.
	if got := Throughput(32, 128, 2*time.Second); math.Abs(got-2048) > 1e-9 {
		t.Fatalf("throughput = %v", got)
	}
	if Throughput(1, 1, 0) != 0 {
		t.Fatal("zero iter time should yield 0")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(100, 1280); got != 12.8 {
		t.Fatalf("speedup = %v, want 12.8", got)
	}
	if Speedup(0, 5) != 0 {
		t.Fatal("zero denominator should yield 0")
	}
}

func TestEpochMeans(t *testing.T) {
	losses := []float64{4, 2, 3, 1, 5}
	got := EpochMeans(losses, 2)
	want := []float64{3, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("epoch %d = %v, want %v", i, got[i], want[i])
		}
	}
	if EpochMeans(nil, 2) != nil {
		t.Fatal("empty input should yield nil")
	}
	if EpochMeans(losses, 0) != nil {
		t.Fatal("zero epoch size should yield nil")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("P", "TopK", "gTopK")
	tb.AddRowf(4, 2.3, 150*time.Millisecond)
	tb.AddRowf(128, 0.5, 2500*time.Millisecond)
	out := tb.String()
	if !strings.Contains(out, "P") || !strings.Contains(out, "gTopK") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "150.0ms") || !strings.Contains(out, "2.50s") {
		t.Fatalf("duration formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + separator + 2 rows
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	// All lines align to the same width per column; check the separator
	// line is dashes and spaces only.
	for _, r := range lines[1] {
		if r != '-' && r != ' ' {
			t.Fatalf("separator line corrupted: %q", lines[1])
		}
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "dropped")
	out := tb.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("extra cell kept:\n%s", out)
	}
}

func TestFormatDurationUnits(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond:  "0.500ms",
		36 * time.Millisecond:   "36.0ms",
		1500 * time.Millisecond: "1.50s",
	}
	for in, want := range cases {
		if got := formatDuration(in); got != want {
			t.Errorf("formatDuration(%v) = %q, want %q", in, got, want)
		}
	}
}
