package metrics

import (
	"fmt"
	"sync"
)

// WireTally accumulates per-round wire-byte counters for one worker:
// how many bytes its sparse frames occupied as encoded versus what the
// flat v1 layout would have cost (raw), so the compression ratio of the
// negotiated codec is observable in real runs, not just in the bench
// harness. The zero value is ready to use.
//
// Counting unit: one observation per frame ENCODED by this rank — a
// compression event. Collectives that retransmit a frame (AllGather's
// recursive doubling, the broadcast tree's relays) do not re-observe
// it, so the ratio is exactly the codec's per-frame efficiency;
// transmission volume, retransmissions included, stays in the
// communicator's Stats.BytesSent.
//
// Safe for concurrent use: the bucketed pipeline's forked
// sub-communicators all observe into their parent's tally.
type WireTally struct {
	mu     sync.Mutex
	frames int64
	raw    int64
	wire   int64
}

// Observe records one frame crossing the wire: raw is the flat
// v1-equivalent byte count for the frame's entries, wire the bytes the
// negotiated codec actually produced.
func (t *WireTally) Observe(raw, wire int64) {
	t.mu.Lock()
	t.frames++
	t.raw += raw
	t.wire += wire
	t.mu.Unlock()
}

// Snapshot returns the counters accumulated so far.
func (t *WireTally) Snapshot() WireCounters {
	t.mu.Lock()
	defer t.mu.Unlock()
	return WireCounters{Frames: t.frames, RawBytes: t.raw, WireBytes: t.wire}
}

// Reset zeroes the counters (between epochs or logging intervals).
func (t *WireTally) Reset() {
	t.mu.Lock()
	t.frames, t.raw, t.wire = 0, 0, 0
	t.mu.Unlock()
}

// WireCounters is one consistent reading of a WireTally.
type WireCounters struct {
	// Frames is the number of distinct sparse frames this rank encoded.
	Frames int64
	// RawBytes is the flat v1-equivalent volume (8 bytes per entry plus
	// headers) — what the same frames would cost before the v2 codec.
	RawBytes int64
	// WireBytes is the volume the negotiated codec produced for those
	// frames (retransmissions of a frame are not re-counted; see the
	// WireTally doc).
	WireBytes int64
}

// Ratio returns RawBytes/WireBytes — the codec's compression ratio
// (1.0 for v1, 0 when nothing was observed).
func (c WireCounters) Ratio() float64 {
	if c.WireBytes == 0 {
		return 0
	}
	return float64(c.RawBytes) / float64(c.WireBytes)
}

// SavedBytes returns how many bytes the codec kept off the wire.
func (c WireCounters) SavedBytes() int64 { return c.RawBytes - c.WireBytes }

// String renders the counters the way gtopk-worker logs them.
func (c WireCounters) String() string {
	return fmt.Sprintf("frames=%d raw=%dB wire=%dB ratio=%.2fx", c.Frames, c.RawBytes, c.WireBytes, c.Ratio())
}
