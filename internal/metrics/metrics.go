// Package metrics provides the measurement vocabulary of the paper's
// evaluation section: per-iteration time breakdowns (computation /
// compression / communication, Fig. 11), weak-scaling efficiency (Eq. 4,
// Fig. 10), system throughput (Table IV), and small helpers for loss
// curves and text tables used by the benchmark harness.
package metrics

import (
	"fmt"
	"strings"
	"time"
)

// Breakdown decomposes one training iteration the way Fig. 11 does.
type Breakdown struct {
	Compute  time.Duration // t_f + t_b: forward and backward passes
	Compress time.Duration // t_compr.: local top-k selection
	Comm     time.Duration // t_commu.: gradient aggregation
}

// Total returns the modelled iteration time t_iter.
func (b Breakdown) Total() time.Duration { return b.Compute + b.Compress + b.Comm }

// Fractions returns the (compute, compress, comm) shares of the total,
// each in [0,1]; zero-total breakdowns return all zeros.
func (b Breakdown) Fractions() (compute, compress, comm float64) {
	total := float64(b.Total())
	if total == 0 {
		return 0, 0, 0
	}
	return float64(b.Compute) / total, float64(b.Compress) / total, float64(b.Comm) / total
}

// ScalingEfficiency is the paper's Eq. 4 for weak scaling:
// e = (t_f + t_b) / t_iter. Compression counts against efficiency just as
// communication does (it is overhead absent from single-worker training).
func (b Breakdown) ScalingEfficiency() float64 {
	total := b.Total()
	if total == 0 {
		return 0
	}
	return float64(b.Compute) / float64(total)
}

// Throughput returns processed samples per second for P workers each
// consuming batch samples per iteration of duration iterTime.
func Throughput(p, batch int, iterTime time.Duration) float64 {
	if iterTime <= 0 {
		return 0
	}
	return float64(p*batch) / iterTime.Seconds()
}

// Speedup returns a/b as a "g/d"-style multiplier (Table IV), guarding
// against a zero denominator.
func Speedup(fast, slow float64) float64 {
	if fast == 0 {
		return 0
	}
	return slow / fast
}

// EpochMeans folds a per-iteration loss series into per-epoch means with
// the given number of iterations per epoch, mirroring how the paper plots
// training loss against epochs.
func EpochMeans(losses []float64, itersPerEpoch int) []float64 {
	if itersPerEpoch <= 0 || len(losses) == 0 {
		return nil
	}
	var out []float64
	for start := 0; start < len(losses); start += itersPerEpoch {
		end := start + itersPerEpoch
		if end > len(losses) {
			end = len(losses)
		}
		var s float64
		for _, v := range losses[start:end] {
			s += v
		}
		out = append(out, s/float64(end-start))
	}
	return out
}

// Table accumulates rows and renders an aligned text table, the output
// format of cmd/gtopk-bench (the "figures" of this reproduction are
// tables of series, one row per x-axis point).
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells rendered empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf formats each cell with its own verb-free value via %v.
func (t *Table) AddRowf(cells ...interface{}) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			s[i] = formatDuration(v)
		default:
			s[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(s...)
}

// String renders the aligned table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// formatDuration renders durations in the unit the paper uses (ms) with
// sub-ms precision where it matters.
func formatDuration(d time.Duration) string {
	ms := float64(d) / float64(time.Millisecond)
	switch {
	case ms >= 1000:
		return fmt.Sprintf("%.2fs", ms/1000)
	case ms >= 10:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.3fms", ms)
	}
}
