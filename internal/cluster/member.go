package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// Member is a worker's control-plane client: it joins a coordinator by
// name, streams heartbeats, and surfaces each declared epoch Config.
// The zero value is not usable; construct with Join.
type Member struct {
	name  string
	codec *connCodec

	hbInterval time.Duration
	hbTimeout  time.Duration
	parked     bool // welcome arrived with the parked marker

	sendMu sync.Mutex // serialises member→coordinator writes

	mu      sync.Mutex
	latest  *Config
	changed chan struct{} // closed and replaced on every new config
	err     error
	leaving bool
	done    chan struct{}
	doneOne sync.Once

	hbStop    chan struct{}
	hbOne     sync.Once
	hbPauseMu sync.Mutex
	hbPaused  bool // test hook, see pauseHeartbeats
}

// Join connects to the coordinator at coordAddr and registers name with
// the given data-plane address. It returns once the coordinator has
// welcomed the member; epoch configurations arrive asynchronously via
// Config.
func Join(ctx context.Context, coordAddr, name, dataAddr string) (*Member, error) {
	if name == "" {
		return nil, fmt.Errorf("cluster: empty member name")
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", coordAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial coordinator %s: %w", coordAddr, err)
	}
	m := &Member{
		name:    name,
		codec:   newCodec(conn),
		changed: make(chan struct{}),
		done:    make(chan struct{}),
		hbStop:  make(chan struct{}),
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl) //nolint:errcheck // bound the join handshake
	} else {
		conn.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck // bound the join handshake
	}
	if err := m.codec.write(&message{T: msgJoin, Name: name, Addr: dataAddr}); err != nil {
		conn.Close() //nolint:errcheck // handshake failed
		return nil, fmt.Errorf("cluster: join: %w", err)
	}
	resp, err := m.codec.read()
	if err != nil {
		conn.Close() //nolint:errcheck // handshake failed
		return nil, fmt.Errorf("cluster: join %q: %w", name, err)
	}
	switch resp.T {
	case msgWelcome:
		m.parked = resp.Parked
		m.hbInterval = time.Duration(resp.HBMs) * time.Millisecond
		m.hbTimeout = time.Duration(resp.DeadMs) * time.Millisecond
		if m.hbInterval <= 0 {
			m.hbInterval = DefaultHeartbeatInterval
		}
		if m.hbTimeout <= 0 {
			m.hbTimeout = DefaultHeartbeatTimeout
		}
	case msgReject:
		conn.Close() //nolint:errcheck // rejected
		return nil, fmt.Errorf("cluster: join %q rejected: %s", name, resp.Reason)
	default:
		conn.Close() //nolint:errcheck // protocol violation
		return nil, fmt.Errorf("cluster: join %q: unexpected %q response", name, resp.T)
	}
	conn.SetDeadline(time.Time{}) //nolint:errcheck // handshake complete

	go m.readLoop()
	go m.heartbeatLoop()
	return m, nil
}

// Name returns the member's stable cluster name.
func (m *Member) Name() string { return m.name }

// Parked reports whether the coordinator parked this join: the member
// was accepted into a running job and will receive its first epoch
// configuration when the autoscaler admits it at an epoch boundary.
func (m *Member) Parked() bool { return m.parked }

// HeartbeatTimeout returns the coordinator's failure-detection window —
// the longest a worker should wait for a post-failure reconfiguration
// before concluding something else is wrong.
func (m *Member) HeartbeatTimeout() time.Duration { return m.hbTimeout }

// Config returns the latest epoch configuration (nil before the first)
// and a channel that is closed when a newer one arrives.
func (m *Member) Config() (*Config, <-chan struct{}) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latest, m.changed
}

// Done is closed when the control plane terminates: job abort,
// connection loss, or Leave/Close.
func (m *Member) Done() <-chan struct{} { return m.done }

// Err reports why the control plane terminated (nil after a clean
// Leave).
func (m *Member) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// ReportDegraded tells the coordinator this worker is alive but
// persistently missing quorum deadlines. Informational only: the
// coordinator logs and counts the report without reconfiguring the job.
func (m *Member) ReportDegraded(reason string) error {
	return m.ReportDegradedGroup(reason, -1)
}

// ReportDegradedGroup is ReportDegraded with the reporter's hierarchy
// group index attached (pass a negative group for a flat quorum). Under
// the hierarchical quorum a wholly partitioned group misses the leader
// deadline as a unit, so every member streaks — and reports — together;
// the group index lets the coordinator aggregate those reports
// group-granularly instead of as unrelated slow ranks.
func (m *Member) ReportDegradedGroup(reason string, group int) error {
	wire := 0
	if group >= 0 {
		wire = group + 1
	}
	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	return m.codec.write(&message{T: msgDegraded, Reason: reason, Group: wire})
}

// Leave departs gracefully. jobDone=true tells the coordinator the
// whole job completed, which disarms failure detection for the
// remaining members' own departures.
func (m *Member) Leave(jobDone bool) error {
	m.mu.Lock()
	m.leaving = true
	m.mu.Unlock()
	m.sendMu.Lock()
	err := m.codec.write(&message{T: msgLeave, Done: jobDone})
	m.sendMu.Unlock()
	m.Close()
	return err
}

// Close abruptly severs the control plane without a leave message —
// from the coordinator's perspective this is indistinguishable from the
// process being SIGKILLed.
func (m *Member) Close() error {
	m.hbOne.Do(func() { close(m.hbStop) })
	err := m.codec.conn.Close()
	m.finish(nil)
	return err
}

// finish records the terminal error (first writer wins) and closes done.
func (m *Member) finish(err error) {
	m.mu.Lock()
	if m.err == nil && err != nil && !m.leaving {
		m.err = err
	}
	m.mu.Unlock()
	m.doneOne.Do(func() { close(m.done) })
}

// readLoop consumes coordinator messages until the connection ends.
func (m *Member) readLoop() {
	for {
		msg, err := m.codec.read()
		if err != nil {
			m.finish(fmt.Errorf("cluster: control connection lost: %w", err))
			return
		}
		switch msg.T {
		case msgConfig:
			if err := validateConfig(msg.Config); err != nil {
				m.finish(err)
				return
			}
			m.mu.Lock()
			if m.latest == nil || msg.Config.Epoch > m.latest.Epoch {
				m.latest = msg.Config
				close(m.changed)
				m.changed = make(chan struct{})
			}
			m.mu.Unlock()
		case msgAbort:
			m.finish(fmt.Errorf("cluster: job aborted by coordinator: %s", msg.Reason))
			return
		default:
			m.finish(fmt.Errorf("cluster: unexpected %q message from coordinator", msg.T))
			return
		}
	}
}

// heartbeatLoop proves liveness every hbInterval until stopped.
func (m *Member) heartbeatLoop() {
	tick := time.NewTicker(m.hbInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.hbStop:
			return
		case <-m.done:
			return
		case <-tick.C:
		}
		m.hbPauseMu.Lock()
		paused := m.hbPaused
		m.hbPauseMu.Unlock()
		if paused {
			continue
		}
		m.sendMu.Lock()
		err := m.codec.write(&message{T: msgHeartbeat})
		m.sendMu.Unlock()
		if err != nil {
			m.finish(fmt.Errorf("cluster: heartbeat write: %w", err))
			return
		}
	}
}

// pauseHeartbeats is a test hook that silences the heartbeat stream
// while keeping the control connection open — simulating a network
// partition rather than a process death.
func (m *Member) pauseHeartbeats(paused bool) {
	m.hbPauseMu.Lock()
	m.hbPaused = paused
	m.hbPauseMu.Unlock()
}
