package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gtopkssgd/internal/prng"
)

// chaosJoinSeed drives the grow/shrink soak's random choices: which
// initial workers die and at which iterations the events trigger. Any
// seed must pass.
const chaosJoinSeed = 0x9055C4A05

// TestChaosSoakKillsAndJoins is the elastic runtime's endurance test
// for BOTH directions of elasticity: a 4-worker job loses a worker,
// gains two late joiners (one cycle past its launch size, to MaxWorld
// 5), then loses another — 4 → 3 → 4 → 5 → 4 across four prng-placed
// membership events. Through all of it: epochs must be declared in
// strictly increasing order with the expected world size each, per-
// epoch iterations must advance gap-free, every rollback must stay
// within one checkpoint cadence of the interrupted epoch (allowing the
// one-step catch-up a mid-collective teardown can produce), and every
// finisher — survivors and joiners alike — must end with bit-identical
// weights.
func TestChaosSoakKillsAndJoins(t *testing.T) {
	const (
		initial   = 4
		maxWorld  = 5
		steps     = 36
		ckptEvery = 3
		// stepPace slows every step so coordinator monitor ticks (the
		// admission boundary) land within a few iterations of each join
		// trigger, keeping all four events inside the step budget.
		stepPace = 4 * time.Millisecond
	)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	ds := elasticDataset(t)
	dir := t.TempDir()

	// Seeded schedule. Kills pick two distinct initial workers; the kill
	// iterations and join triggers live in disjoint windows and each
	// event is additionally gated on the epoch it belongs to, so the
	// cycle order 4 -> 3 -> 4 -> 5 -> 4 is stable under timing jitter.
	src := prng.New(chaosJoinSeed)
	names := make([]string, initial)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	perm := append([]string(nil), names...)
	for i := len(perm) - 1; i > 0; i-- {
		j := int(src.Uint64() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	var (
		victim1, victim2 = perm[0], perm[1]
		kill1At          = 5 + int(src.Uint64()%4)  // epoch 1, [5,8]
		join1At          = 11 + int(src.Uint64()%4) // epoch 2, [11,14]
		join2At          = 19 + int(src.Uint64()%4) // epoch 3, [19,22]
		kill2At          = 27 + int(src.Uint64()%4) // epoch 4, [27,30]
		joiners          = []string{"w05", "w25"}   // sort between the founders
	)
	t.Logf("chaos schedule (seed %#x): kill %s@%d, join %s@%d, join %s@%d, kill %s@%d",
		uint64(chaosJoinSeed), victim1, kill1At, joiners[0], join1At, joiners[1], join2At, victim2, kill2At)

	killErr := errors.New("chaos kill switch")
	var (
		recMu      sync.Mutex
		records    = make(map[string][]stepRecord)
		runResults = make(map[string]*RunResult)
		runErrs    = make(map[string]error)
		join1Once  sync.Once
		join2Once  sync.Once
		wg         sync.WaitGroup
	)

	addr, _, served := startCoordinator(t, ctx,
		fastHB(CoordinatorConfig{World: initial, MaxWorld: maxWorld}))
	var launch func(name string)
	launch = func(name string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Run(ctx, RuntimeConfig{
				Name:            name,
				Coordinator:     addr,
				Steps:           steps,
				CheckpointPath:  filepath.Join(dir, name+".gtkc"),
				CheckpointEvery: ckptEvery,
				Build:           elasticBuild(ds),
				OnStep: func(info StepInfo) error {
					recMu.Lock()
					records[name] = append(records[name], stepRecord{
						epoch: info.Epoch, rank: info.Rank, world: info.World,
						iter: info.Iter, loss: info.Loss,
					})
					recMu.Unlock()
					switch {
					case name == victim1 && info.Epoch == 1 && info.Iter >= kill1At:
						return killErr
					case name == victim2 && info.Epoch == 4 && info.Iter >= kill2At:
						return killErr
					case info.Epoch == 2 && info.Iter >= join1At:
						join1Once.Do(func() { launch(joiners[0]) })
					case info.Epoch == 3 && info.Iter >= join2At:
						join2Once.Do(func() { launch(joiners[1]) })
					}
					time.Sleep(stepPace)
					return nil
				},
			})
			recMu.Lock()
			runResults[name] = res
			runErrs[name] = err
			recMu.Unlock()
		}()
	}
	for _, name := range names {
		launch(name)
	}
	wg.Wait()

	// Victims die by the kill switch; every other worker — initial
	// survivors and both joiners — completes the job.
	var finishers []string
	for _, name := range append(append([]string(nil), names...), joiners...) {
		if name == victim1 || name == victim2 {
			if err := runErrs[name]; err == nil || !errors.Is(err, killErr) {
				t.Fatalf("victim %s error = %v, want the kill switch", name, err)
			}
			continue
		}
		if err := runErrs[name]; err != nil {
			t.Fatalf("%s failed: %v", name, err)
		}
		finishers = append(finishers, name)
	}
	if len(finishers) != initial-2+len(joiners) {
		t.Fatalf("%d finishers, want %d", len(finishers), initial-2+len(joiners))
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("coordinator Serve = %v, want nil (job completed)", err)
		}
	case <-ctx.Done():
		t.Fatal("coordinator did not finish")
	}

	// Every finisher ends in epoch 5 at world 4 having run all steps;
	// epoch participation depends on when each entered the job.
	wantEpochs := map[string]int{joiners[0]: 3, joiners[1]: 2}
	for _, name := range finishers {
		res := runResults[name]
		we, isJoiner := wantEpochs[name]
		if !isJoiner {
			we = 5
		}
		if res.Steps != steps || res.FinalWorld != initial || res.FinalEpoch != 5 || res.Epochs != we {
			t.Fatalf("%s result %+v, want %d steps at world %d in epoch 5 across %d epochs",
				name, res, steps, initial, we)
		}
	}

	// The full grow/shrink cycle: every epoch was declared at the
	// expected world size, consistently across all observers.
	wantWorld := map[uint64]int{1: 4, 2: 3, 3: 4, 4: 5, 5: 4}
	seenWorld := make(map[uint64]int)
	recMu.Lock()
	for name, recs := range records {
		for _, rec := range recs {
			if prev, ok := seenWorld[rec.epoch]; ok && prev != rec.world {
				t.Fatalf("%s saw epoch %d at world %d, another worker at %d", name, rec.epoch, rec.world, prev)
			}
			seenWorld[rec.epoch] = rec.world
		}
	}
	recMu.Unlock()
	if len(seenWorld) != len(wantWorld) {
		t.Fatalf("observed epochs %v, want exactly %v", seenWorld, wantWorld)
	}
	for epoch, world := range wantWorld {
		if seenWorld[epoch] != world {
			t.Fatalf("epoch %d ran at world %d, want %d (cycle must be 4->3->4->5->4)", epoch, seenWorld[epoch], world)
		}
	}

	// Monotone epochs, gap-free iterations inside each epoch, and
	// bounded rollback at every boundary. A worker may resume one step
	// PAST its own last observed iteration — its peers can finish a step
	// it was cancelled inside and donate the state — but never further,
	// and always from a cadence-aligned checkpoint.
	for _, name := range finishers {
		recs := records[name]
		if len(recs) == 0 {
			t.Fatalf("%s has no step records", name)
		}
		prev := recs[0]
		if _, isJoiner := wantEpochs[name]; !isJoiner && prev.epoch != 1 {
			t.Fatalf("%s first record in epoch %d, want 1", name, prev.epoch)
		}
		for _, rec := range recs[1:] {
			switch {
			case rec.epoch == prev.epoch:
				if rec.iter != prev.iter+1 {
					t.Fatalf("%s: iteration gap %d -> %d inside epoch %d", name, prev.iter, rec.iter, rec.epoch)
				}
				if rec.world != prev.world {
					t.Fatalf("%s: world changed %d -> %d without an epoch change", name, prev.world, rec.world)
				}
			case rec.epoch == prev.epoch+1:
				if rec.world != wantWorld[rec.epoch] {
					t.Fatalf("%s: epoch %d at world %d, want %d", name, rec.epoch, rec.world, wantWorld[rec.epoch])
				}
				resume := rec.iter - 1
				if resume%ckptEvery != 0 {
					t.Fatalf("%s: epoch %d resumed at iter %d, not on the checkpoint cadence", name, rec.epoch, resume)
				}
				if resume > prev.iter+1 || prev.iter-resume > ckptEvery {
					t.Fatalf("%s: epoch %d rolled back %d -> %d, outside [-1, %d]",
						name, rec.epoch, prev.iter, resume, ckptEvery)
				}
			default:
				t.Fatalf("%s: epoch jumped %d -> %d (must advance one at a time)", name, prev.epoch, rec.epoch)
			}
			prev = rec
		}
	}

	// Bitwise agreement at the finish line, survivors and joiners alike.
	ref := runResults[finishers[0]].FinalWeights
	if len(ref) == 0 {
		t.Fatalf("%s has no final weights", finishers[0])
	}
	refCRC := weightsCRC(ref)
	for _, name := range finishers[1:] {
		w := runResults[name].FinalWeights
		if got := weightsCRC(w); got != refCRC {
			t.Fatalf("%s final weight CRC %08x, want %08x", name, got, refCRC)
		}
		for i := range ref {
			if math.Float32bits(w[i]) != math.Float32bits(ref[i]) {
				t.Fatalf("%s weight %d: %v vs %v", name, i, w[i], ref[i])
			}
		}
	}
}
