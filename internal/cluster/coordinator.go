package cluster

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// CoordinatorConfig parameterises a job coordinator.
type CoordinatorConfig struct {
	// World is the worker count the job launches at; epoch 1 is
	// declared the moment the World-th worker joins.
	World int
	// MinWorld aborts the job when failures shrink membership below it.
	// 0 means 1: the job runs down to a single worker.
	MinWorld int
	// MaxWorld bounds elastic growth: late joiners are parked and
	// admitted at epoch boundaries only while the world stays at or
	// below it. 0 means World — recovered workers can rejoin up to the
	// launch size, but the job never grows beyond it unless MaxWorld is
	// raised explicitly.
	MaxWorld int
	// Autoscale decides the target world size whenever parked joiners
	// are waiting; nil means GrowByPendingJoins (admit everything the
	// MaxWorld bound allows). The returned target is clamped to
	// [current world, MaxWorld]: the coordinator can only admit workers
	// that asked to join, and policy-driven eviction is not supported.
	Autoscale AutoscalePolicy
	// HeartbeatInterval is pushed to every member in the welcome
	// message; 0 means DefaultHeartbeatInterval.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a silent member dead; 0 means
	// DefaultHeartbeatTimeout.
	HeartbeatTimeout time.Duration
	// Logf, when non-nil, receives membership and epoch events.
	Logf func(format string, args ...any)
}

// AutoscaleState is the input to an autoscaler decision: what the
// coordinator knows about the running epoch and the join queue at one
// policy-evaluation instant.
type AutoscaleState struct {
	// Epoch is the running epoch the decision would grow out of.
	Epoch uint64
	// World is the current live worker count.
	World int
	// Pending counts parked joiners eligible for admission.
	Pending int
	// MinWorld and MaxWorld are the job's configured bounds.
	MinWorld, MaxWorld int
	// OldestPendingAge is how long the longest-parked joiner has waited.
	OldestPendingAge time.Duration
	// MaxHeartbeatAge is the staleness of the slowest live member's last
	// heartbeat — a cheap load proxy: overloaded workers heartbeat late.
	MaxHeartbeatAge time.Duration
}

// AutoscalePolicy maps an AutoscaleState to a target world size. It is
// consulted on every monitor tick while joiners are parked; returning a
// target at or below the current world admits nobody.
type AutoscalePolicy func(AutoscaleState) int

// GrowByPendingJoins is the default autoscaler: the join queue IS the
// demand signal, so the target world is current plus everything parked
// (the coordinator clamps to MaxWorld).
func GrowByPendingJoins() AutoscalePolicy {
	return func(s AutoscaleState) int { return s.World + s.Pending }
}

// GrowWhenHeartbeatLagged is a load-driven autoscaler: it admits parked
// joiners only when the slowest member's heartbeat is staler than lag —
// the signature of workers too busy to keep the control plane fresh —
// and otherwise holds the world steady. Joiners parked longer than
// maxWait are admitted regardless, so a miscalibrated lag threshold
// cannot starve the queue forever.
func GrowWhenHeartbeatLagged(lag, maxWait time.Duration) AutoscalePolicy {
	return func(s AutoscaleState) int {
		if s.MaxHeartbeatAge >= lag || (maxWait > 0 && s.OldestPendingAge >= maxWait) {
			return s.World + s.Pending
		}
		return s.World
	}
}

func (c *CoordinatorConfig) withDefaults() CoordinatorConfig {
	out := *c
	if out.MinWorld < 1 {
		out.MinWorld = 1
	}
	if out.MaxWorld < 1 {
		out.MaxWorld = out.World
	}
	if out.Autoscale == nil {
		out.Autoscale = GrowByPendingJoins()
	}
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if out.HeartbeatTimeout <= 0 {
		out.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// memberState is the coordinator's view of one worker.
type memberState struct {
	name     string
	addr     string
	codec    *connCodec
	rank     int
	lastHB   time.Time
	parkedAt time.Time  // when a late joiner entered the pending queue
	welcomed bool       // welcome written; configs may follow
	sendMu   sync.Mutex // serialises coordinator→member writes
}

func (m *memberState) send(msg *message) error {
	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	return m.codec.write(msg)
}

// Coordinator is the rendezvous and membership service of an elastic
// job: workers join by name, the coordinator freezes epoch 1 when the
// configured world size is reached, every detected failure advances the
// job to a new epoch with the survivors re-ranked, and late joiners are
// parked until the autoscaler admits them into a grown epoch.
type Coordinator struct {
	cfg CoordinatorConfig

	mu       sync.Mutex
	members  map[string]*memberState
	pending  map[string]*memberState // parked late joiners, keyed by name
	degraded map[string]int          // degraded reports per member name, across epochs
	// degradedGroups counts degraded reports per hierarchy group index:
	// under the hierarchical quorum a partitioned group's members streak
	// together, and this is where that shows up as one group-granular
	// signal instead of G unrelated slow ranks.
	degradedGroups map[int]int
	epoch    uint64
	started  bool
	done     bool
	abortErr error
	finished chan struct{}
}

// NewCoordinator creates a coordinator for a cfg.World-worker job.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.World < 1 {
		return nil, fmt.Errorf("cluster: world size %d < 1", cfg.World)
	}
	full := cfg.withDefaults()
	if full.MinWorld > cfg.World {
		return nil, fmt.Errorf("cluster: min world %d exceeds world %d", full.MinWorld, cfg.World)
	}
	if full.MaxWorld < cfg.World {
		return nil, fmt.Errorf("cluster: max world %d below world %d", full.MaxWorld, cfg.World)
	}
	if full.HeartbeatTimeout <= full.HeartbeatInterval {
		return nil, fmt.Errorf("cluster: heartbeat timeout %v must exceed interval %v",
			full.HeartbeatTimeout, full.HeartbeatInterval)
	}
	return &Coordinator{
		cfg:      full,
		members:        make(map[string]*memberState, cfg.World),
		pending:        make(map[string]*memberState),
		degraded:       make(map[string]int),
		degradedGroups: make(map[int]int),
		finished:       make(chan struct{}),
	}, nil
}

// Degraded returns a copy of the per-member degraded-report counters:
// how many times each worker (by name, across epochs) reported itself
// alive but persistently missing quorum deadlines.
func (c *Coordinator) Degraded() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.degraded))
	for name, n := range c.degraded {
		out[name] = n
	}
	return out
}

// DegradedGroups returns a copy of the per-group degraded-report
// counters: how many degraded reports arrived from members of each
// hierarchy group (flat-quorum reports carry no group and are not
// counted here).
func (c *Coordinator) DegradedGroups() map[int]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]int, len(c.degradedGroups))
	for g, n := range c.degradedGroups {
		out[g] = n
	}
	return out
}

// noteDegraded records a member's degraded report. Deliberately NOT a
// membership event: the worker is alive (it just told us so), merely
// slow, and quorum aggregation already contains the damage — reforming
// the epoch would trade bounded staleness for a full restart. group is
// the reporter's hierarchy group index, negative for a flat quorum.
func (c *Coordinator) noteDegraded(m *memberState, reason string, group int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.members[m.name] != m && c.pending[m.name] != m {
		return // superseded zombie; the heartbeat path handles it
	}
	c.degraded[m.name]++
	if group < 0 {
		c.cfg.Logf("cluster: %s reports degraded (%s); %d report(s) so far, epoch unchanged",
			m.name, reason, c.degraded[m.name])
		return
	}
	c.degradedGroups[group]++
	c.cfg.Logf("cluster: %s reports degraded (%s); group %d has %d report(s), %d from this member, epoch unchanged",
		m.name, reason, group, c.degradedGroups[group], c.degraded[m.name])
}

// Epoch returns the most recently declared epoch (0 before the job
// forms).
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Serve runs the coordinator on ln until the job completes (a worker
// reports done and every control connection has drained), the job
// aborts (membership fell below MinWorld), or ctx is cancelled. The
// listener is closed on return.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	defer ln.Close() //nolint:errcheck // Serve owns the listener's lifetime

	monitorDone := make(chan struct{})
	go c.monitor(monitorDone)
	defer close(monitorDone)

	var handlers sync.WaitGroup
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed: Serve is returning
			}
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				c.handleConn(conn)
			}()
		}
	}()

	var err error
	select {
	case <-ctx.Done():
		err = ctx.Err()
	case <-c.finished:
		c.mu.Lock()
		err = c.abortErr
		c.mu.Unlock()
	}
	ln.Close() //nolint:errcheck // unblock the accept loop
	c.closeAllConns()
	<-acceptDone
	handlers.Wait()
	return err
}

// handleConn owns one worker's control connection: join handshake, then
// heartbeats and departure.
func (c *Coordinator) handleConn(conn net.Conn) {
	codec := newCodec(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck // bound the join handshake
	first, err := codec.read()
	if err != nil || first.T != msgJoin || first.Name == "" || first.Addr == "" {
		codec.write(&message{T: msgReject, Reason: "malformed join"}) //nolint:errcheck // peer is broken anyway
		conn.Close()                                                  //nolint:errcheck // rejected
		return
	}

	m := &memberState{name: first.Name, addr: first.Addr, codec: codec, lastHB: time.Now()}
	parked, reason := c.admit(m)
	if reason != "" {
		codec.write(&message{T: msgReject, Reason: reason}) //nolint:errcheck // best-effort courtesy
		conn.Close()                                        //nolint:errcheck // rejected
		return
	}
	// Welcome seals the heartbeat contract. It is sent before the world
	// can fill (maybeStart below), so a member always reads its welcome
	// before any epoch config. Parked joiners learn they are queued for
	// the next epoch boundary rather than part of the running epoch.
	if err := m.send(&message{
		T:      msgWelcome,
		HBMs:   c.cfg.HeartbeatInterval.Milliseconds(),
		DeadMs: c.cfg.HeartbeatTimeout.Milliseconds(),
		Parked: parked,
	}); err != nil {
		c.reportDown(m, "welcome write failed")
		conn.Close() //nolint:errcheck // already counted as down
		return
	}
	c.maybeStart(m)

	for {
		conn.SetReadDeadline(time.Now().Add(4 * c.cfg.HeartbeatTimeout)) //nolint:errcheck // catch wedged conns the monitor missed
		msg, err := codec.read()
		if err != nil {
			c.reportDown(m, "control connection lost")
			conn.Close() //nolint:errcheck // reader owns teardown
			return
		}
		switch msg.T {
		case msgHeartbeat:
			c.mu.Lock()
			m.lastHB = time.Now()
			stale := c.members[m.name] != m && c.pending[m.name] != m
			c.mu.Unlock()
			if stale {
				// Declared dead earlier (e.g. a heartbeat gap) but still
				// talking: tell it to stop; the job moved on without it.
				m.send(&message{T: msgAbort, Reason: "declared dead; rejoin is not supported"}) //nolint:errcheck // best-effort
				conn.Close()                                                                   //nolint:errcheck // zombie member
				return
			}
		case msgDegraded:
			c.noteDegraded(m, msg.Reason, msg.Group-1)
		case msgLeave:
			c.depart(m, msg.Done)
			conn.Close() //nolint:errcheck // graceful end of control stream
			return
		default:
			c.reportDown(m, fmt.Sprintf("unexpected %q message", msg.T))
			conn.Close() //nolint:errcheck // protocol violation
			return
		}
	}
}

// admit registers a joining member, either into the founding membership
// (before epoch 1) or into the pending queue of parked late joiners
// (after it). It returns parked=true for a queued late joiner and a
// non-empty rejection reason when the join is not allowed.
func (c *Coordinator) admit(m *memberState) (parked bool, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.done:
		return false, "job already finished"
	case c.abortErr != nil:
		return false, "job aborted"
	case c.members[m.name] != nil || c.pending[m.name] != nil:
		// A live member's name is its identity across epochs; a joiner
		// reusing one is either a zombie of the original or an operator
		// mistake, and admitting it would corrupt the re-shard mapping.
		return false, fmt.Sprintf("name %q already joined (pick a name no live or parked worker holds)", m.name)
	}
	if !c.started && len(c.members) < c.cfg.World {
		c.members[m.name] = m
		c.cfg.Logf("cluster: %s joined from %s (%d/%d)", m.name, m.addr, len(c.members), c.cfg.World)
		return false, ""
	}
	// Late join (or a pre-start surplus beyond World): park until the
	// autoscaler admits it at the next epoch boundary.
	if len(c.members)+len(c.pending) >= c.cfg.MaxWorld {
		return false, fmt.Sprintf("world full (%d live + %d parked at max %d); late join refused",
			len(c.members), len(c.pending), c.cfg.MaxWorld)
	}
	m.parkedAt = time.Now()
	c.pending[m.name] = m
	c.cfg.Logf("cluster: %s join parked from %s (%d live, %d pending, max %d)",
		m.name, m.addr, len(c.members), len(c.pending), c.cfg.MaxWorld)
	return true, ""
}

// maybeStart declares epoch 1 once the world is full and every member
// has been welcomed — the welcomed gate guarantees no member can read
// an epoch config before its welcome, even with concurrent joins.
// Parked joiners only have their welcomed flag recorded here; admission
// happens on the monitor's autoscale tick.
func (c *Coordinator) maybeStart(m *memberState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.members[m.name] == m || c.pending[m.name] == m {
		m.welcomed = true
	}
	if c.started || len(c.members) != c.cfg.World {
		return
	}
	for _, mm := range c.members {
		if !mm.welcomed {
			return
		}
	}
	c.started = true
	c.formEpochLocked()
}

// maybeGrowLocked consults the autoscale policy and, when it raises the
// target world size, admits parked joiners (welcomed ones only, in name
// order — the deterministic boundary) and declares the grown epoch.
// Caller holds c.mu.
func (c *Coordinator) maybeGrowLocked() {
	if !c.started || c.done || c.abortErr != nil || len(c.pending) == 0 {
		return
	}
	now := time.Now()
	var ready []*memberState
	var oldest time.Duration
	for _, p := range c.pending {
		if !p.welcomed {
			continue
		}
		ready = append(ready, p)
		if age := now.Sub(p.parkedAt); age > oldest {
			oldest = age
		}
	}
	if len(ready) == 0 {
		return
	}
	var hbAge time.Duration
	for _, m := range c.members {
		if age := now.Sub(m.lastHB); age > hbAge {
			hbAge = age
		}
	}
	target := c.cfg.Autoscale(AutoscaleState{
		Epoch:            c.epoch,
		World:            len(c.members),
		Pending:          len(ready),
		MinWorld:         c.cfg.MinWorld,
		MaxWorld:         c.cfg.MaxWorld,
		OldestPendingAge: oldest,
		MaxHeartbeatAge:  hbAge,
	})
	if target > c.cfg.MaxWorld {
		target = c.cfg.MaxWorld
	}
	n := target - len(c.members)
	if n <= 0 {
		return
	}
	if n > len(ready) {
		n = len(ready)
	}
	// Admit in name order so which joiners enter a partially-admitting
	// epoch is a pure function of the queue contents, not arrival order.
	sort.Slice(ready, func(i, j int) bool { return ready[i].name < ready[j].name })
	for _, p := range ready[:n] {
		delete(c.pending, p.name)
		c.members[p.name] = p
		c.cfg.Logf("cluster: %s admitted at epoch boundary after %v parked (world %d -> %d)",
			p.name, now.Sub(p.parkedAt).Round(time.Millisecond), len(c.members)-1, len(c.members))
	}
	c.formEpochLocked()
}

// depart handles a graceful leave. The first leave carrying done=true
// marks the job complete, after which departures and failures no longer
// declare epochs.
func (c *Coordinator) depart(m *memberState, jobDone bool) {
	c.mu.Lock()
	if c.members[m.name] == m {
		delete(c.members, m.name)
		c.cfg.Logf("cluster: %s left (done=%v)", m.name, jobDone)
	}
	if c.pending[m.name] == m {
		delete(c.pending, m.name)
		c.cfg.Logf("cluster: parked joiner %s left before admission", m.name)
	}
	if jobDone {
		c.done = true
	}
	c.maybeFinishLocked()
	c.mu.Unlock()
}

// reportDown removes a failed member and, when the job is mid-flight,
// declares the next epoch for the survivors. A dead parked joiner is
// simply dropped from the queue — it never entered an epoch, so nothing
// needs re-forming.
func (c *Coordinator) reportDown(m *memberState, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending[m.name] == m {
		delete(c.pending, m.name)
		c.cfg.Logf("cluster: parked joiner %s is down (%s); %d still pending", m.name, reason, len(c.pending))
		return
	}
	if c.members[m.name] != m {
		return // already departed or superseded
	}
	delete(c.members, m.name)
	c.cfg.Logf("cluster: %s is down (%s); %d remain", m.name, reason, len(c.members))
	if c.done || !c.started {
		c.maybeFinishLocked()
		return
	}
	if len(c.members) < c.cfg.MinWorld {
		c.abortLocked(fmt.Errorf("cluster: %d workers left, below minimum %d", len(c.members), c.cfg.MinWorld))
		return
	}
	c.formEpochLocked()
}

// formEpochLocked declares the next epoch over the current membership.
// Ranks come from the deterministic re-shard rule (Reshard: name order)
// for every epoch. Shrinks behave exactly as they always have —
// removing names from a sorted list keeps it sorted, so survivors keep
// their relative order — and grows slot each admitted joiner at its
// name-order position, shifting later survivors up by the insertion
// count. Caller holds c.mu.
func (c *Coordinator) formEpochLocked() {
	c.epoch++
	memberNames := make([]string, 0, len(c.members))
	for name := range c.members {
		memberNames = append(memberNames, name)
	}
	names := Reshard(memberNames)
	list := make([]*memberState, len(names))
	addrs := make([]string, len(names))
	for rank, name := range names {
		m := c.members[name]
		m.rank = rank
		list[rank] = m
		addrs[rank] = m.addr
	}
	c.cfg.Logf("cluster: epoch %d formed: world %d, members %v", c.epoch, len(list), names)
	epoch := c.epoch
	for _, m := range list {
		msg := &message{T: msgConfig, Config: &Config{
			Epoch: epoch, Rank: m.rank, World: len(list), Names: names, Addrs: addrs,
		}}
		// Sends leave the lock's critical path via goroutines so one
		// stalled member cannot delay the rest of the epoch broadcast; a
		// failed send surfaces as that member's failure.
		go func(m *memberState) {
			if err := m.send(msg); err != nil {
				c.reportDown(m, "config write failed")
			}
		}(m)
	}
}

// abortLocked fails the whole job: every member gets an abort message,
// then Serve returns the error. The farewell writes complete (or time
// out) BEFORE finished is closed, so Serve's teardown cannot cut a
// connection mid-abort. Caller holds c.mu.
func (c *Coordinator) abortLocked(err error) {
	if c.abortErr != nil {
		return
	}
	c.abortErr = err
	c.cfg.Logf("cluster: aborting job: %v", err)
	members := make([]*memberState, 0, len(c.members)+len(c.pending))
	for _, m := range c.members {
		members = append(members, m)
	}
	for _, m := range c.pending {
		members = append(members, m) // parked joiners get the farewell too
	}
	go func() {
		var wg sync.WaitGroup
		for _, m := range members {
			wg.Add(1)
			go func(m *memberState) {
				defer wg.Done()
				m.codec.conn.SetWriteDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // bound the farewell
				m.send(&message{T: msgAbort, Reason: err.Error()})             //nolint:errcheck // best-effort farewell
				m.codec.conn.Close()                                           //nolint:errcheck // tear down control plane
			}(m)
		}
		wg.Wait()
		close(c.finished)
	}()
}

// maybeFinishLocked completes Serve once the job is done and the last
// control connection has drained. Caller holds c.mu.
func (c *Coordinator) maybeFinishLocked() {
	if c.done && len(c.members) == 0 && c.abortErr == nil {
		select {
		case <-c.finished:
		default:
			close(c.finished)
		}
	}
}

// monitor watches heartbeat deadlines until done is closed.
func (c *Coordinator) monitor(done <-chan struct{}) {
	tick := time.NewTicker(c.cfg.HeartbeatInterval / 2)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
		}
		now := time.Now()
		c.mu.Lock()
		var dead []*memberState
		if c.started && !c.done && c.abortErr == nil {
			for _, m := range c.members {
				if now.Sub(m.lastHB) > c.cfg.HeartbeatTimeout {
					dead = append(dead, m)
				}
			}
			// Parked joiners heartbeat too: a joiner that died while
			// waiting must never be admitted into an epoch.
			for _, m := range c.pending {
				if now.Sub(m.lastHB) > c.cfg.HeartbeatTimeout {
					dead = append(dead, m)
				}
			}
		}
		c.mu.Unlock()
		for _, m := range dead {
			c.reportDown(m, fmt.Sprintf("missed heartbeats for %v", c.cfg.HeartbeatTimeout))
		}
		// The monitor tick is the epoch boundary at which parked joiners
		// are admitted; the autoscale policy decides whether to grow.
		c.mu.Lock()
		c.maybeGrowLocked()
		c.mu.Unlock()
	}
}

// closeAllConns tears down every remaining control connection,
// including parked joiners still waiting for admission.
func (c *Coordinator) closeAllConns() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		m.codec.conn.Close() //nolint:errcheck // teardown path
	}
	for _, m := range c.pending {
		m.codec.conn.Close() //nolint:errcheck // teardown path
	}
}
