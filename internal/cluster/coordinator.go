package cluster

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// CoordinatorConfig parameterises a job coordinator.
type CoordinatorConfig struct {
	// World is the worker count the job launches at; epoch 1 is
	// declared the moment the World-th worker joins.
	World int
	// MinWorld aborts the job when failures shrink membership below it.
	// 0 means 1: the job runs down to a single worker.
	MinWorld int
	// HeartbeatInterval is pushed to every member in the welcome
	// message; 0 means DefaultHeartbeatInterval.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a silent member dead; 0 means
	// DefaultHeartbeatTimeout.
	HeartbeatTimeout time.Duration
	// Logf, when non-nil, receives membership and epoch events.
	Logf func(format string, args ...any)
}

func (c *CoordinatorConfig) withDefaults() CoordinatorConfig {
	out := *c
	if out.MinWorld < 1 {
		out.MinWorld = 1
	}
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if out.HeartbeatTimeout <= 0 {
		out.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// memberState is the coordinator's view of one worker.
type memberState struct {
	name     string
	addr     string
	codec    *connCodec
	rank     int
	lastHB   time.Time
	welcomed bool       // welcome written; configs may follow
	sendMu   sync.Mutex // serialises coordinator→member writes
}

func (m *memberState) send(msg *message) error {
	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	return m.codec.write(msg)
}

// Coordinator is the rendezvous and membership service of an elastic
// job: workers join by name, the coordinator freezes epoch 1 when the
// configured world size is reached, and every detected failure advances
// the job to a new epoch with the survivors re-ranked densely.
type Coordinator struct {
	cfg CoordinatorConfig

	mu       sync.Mutex
	members  map[string]*memberState
	epoch    uint64
	started  bool
	done     bool
	abortErr error
	finished chan struct{}
}

// NewCoordinator creates a coordinator for a cfg.World-worker job.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.World < 1 {
		return nil, fmt.Errorf("cluster: world size %d < 1", cfg.World)
	}
	full := cfg.withDefaults()
	if full.MinWorld > cfg.World {
		return nil, fmt.Errorf("cluster: min world %d exceeds world %d", full.MinWorld, cfg.World)
	}
	if full.HeartbeatTimeout <= full.HeartbeatInterval {
		return nil, fmt.Errorf("cluster: heartbeat timeout %v must exceed interval %v",
			full.HeartbeatTimeout, full.HeartbeatInterval)
	}
	return &Coordinator{
		cfg:      full,
		members:  make(map[string]*memberState, cfg.World),
		finished: make(chan struct{}),
	}, nil
}

// Epoch returns the most recently declared epoch (0 before the job
// forms).
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Serve runs the coordinator on ln until the job completes (a worker
// reports done and every control connection has drained), the job
// aborts (membership fell below MinWorld), or ctx is cancelled. The
// listener is closed on return.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	defer ln.Close() //nolint:errcheck // Serve owns the listener's lifetime

	monitorDone := make(chan struct{})
	go c.monitor(monitorDone)
	defer close(monitorDone)

	var handlers sync.WaitGroup
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed: Serve is returning
			}
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				c.handleConn(conn)
			}()
		}
	}()

	var err error
	select {
	case <-ctx.Done():
		err = ctx.Err()
	case <-c.finished:
		c.mu.Lock()
		err = c.abortErr
		c.mu.Unlock()
	}
	ln.Close() //nolint:errcheck // unblock the accept loop
	c.closeAllConns()
	<-acceptDone
	handlers.Wait()
	return err
}

// handleConn owns one worker's control connection: join handshake, then
// heartbeats and departure.
func (c *Coordinator) handleConn(conn net.Conn) {
	codec := newCodec(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck // bound the join handshake
	first, err := codec.read()
	if err != nil || first.T != msgJoin || first.Name == "" || first.Addr == "" {
		codec.write(&message{T: msgReject, Reason: "malformed join"}) //nolint:errcheck // peer is broken anyway
		conn.Close()                                                  //nolint:errcheck // rejected
		return
	}

	m := &memberState{name: first.Name, addr: first.Addr, codec: codec, lastHB: time.Now()}
	if reason := c.admit(m); reason != "" {
		codec.write(&message{T: msgReject, Reason: reason}) //nolint:errcheck // best-effort courtesy
		conn.Close()                                        //nolint:errcheck // rejected
		return
	}
	// Welcome seals the heartbeat contract. It is sent before the world
	// can fill (maybeStart below), so a member always reads its welcome
	// before any epoch config.
	if err := m.send(&message{
		T:      msgWelcome,
		HBMs:   c.cfg.HeartbeatInterval.Milliseconds(),
		DeadMs: c.cfg.HeartbeatTimeout.Milliseconds(),
	}); err != nil {
		c.reportDown(m, "welcome write failed")
		conn.Close() //nolint:errcheck // already counted as down
		return
	}
	c.maybeStart(m)

	for {
		conn.SetReadDeadline(time.Now().Add(4 * c.cfg.HeartbeatTimeout)) //nolint:errcheck // catch wedged conns the monitor missed
		msg, err := codec.read()
		if err != nil {
			c.reportDown(m, "control connection lost")
			conn.Close() //nolint:errcheck // reader owns teardown
			return
		}
		switch msg.T {
		case msgHeartbeat:
			c.mu.Lock()
			m.lastHB = time.Now()
			stale := c.members[m.name] != m
			c.mu.Unlock()
			if stale {
				// Declared dead earlier (e.g. a heartbeat gap) but still
				// talking: tell it to stop; the job moved on without it.
				m.send(&message{T: msgAbort, Reason: "declared dead; rejoin is not supported"}) //nolint:errcheck // best-effort
				conn.Close()                                                                   //nolint:errcheck // zombie member
				return
			}
		case msgLeave:
			c.depart(m, msg.Done)
			conn.Close() //nolint:errcheck // graceful end of control stream
			return
		default:
			c.reportDown(m, fmt.Sprintf("unexpected %q message", msg.T))
			conn.Close() //nolint:errcheck // protocol violation
			return
		}
	}
}

// admit registers a joining member; it returns a non-empty rejection
// reason when the join is not allowed.
func (c *Coordinator) admit(m *memberState) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.done:
		return "job already finished"
	case c.abortErr != nil:
		return "job aborted"
	case c.started:
		// Elastic GROWTH (rejoin / scale-up) is not implemented; the
		// subsystem only shrinks. See docs/ARCHITECTURE.md, Future work.
		return "job already running; late join not supported"
	case c.members[m.name] != nil:
		return fmt.Sprintf("name %q already joined", m.name)
	}
	c.members[m.name] = m
	c.cfg.Logf("cluster: %s joined from %s (%d/%d)", m.name, m.addr, len(c.members), c.cfg.World)
	return ""
}

// maybeStart declares epoch 1 once the world is full and every member
// has been welcomed — the welcomed gate guarantees no member can read
// an epoch config before its welcome, even with concurrent joins.
func (c *Coordinator) maybeStart(m *memberState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.members[m.name] == m {
		m.welcomed = true
	}
	if c.started || len(c.members) != c.cfg.World {
		return
	}
	for _, mm := range c.members {
		if !mm.welcomed {
			return
		}
	}
	c.started = true
	c.formEpochLocked()
}

// depart handles a graceful leave. The first leave carrying done=true
// marks the job complete, after which departures and failures no longer
// declare epochs.
func (c *Coordinator) depart(m *memberState, jobDone bool) {
	c.mu.Lock()
	if c.members[m.name] == m {
		delete(c.members, m.name)
		c.cfg.Logf("cluster: %s left (done=%v)", m.name, jobDone)
	}
	if jobDone {
		c.done = true
	}
	c.maybeFinishLocked()
	c.mu.Unlock()
}

// reportDown removes a failed member and, when the job is mid-flight,
// declares the next epoch for the survivors.
func (c *Coordinator) reportDown(m *memberState, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.members[m.name] != m {
		return // already departed or superseded
	}
	delete(c.members, m.name)
	c.cfg.Logf("cluster: %s is down (%s); %d remain", m.name, reason, len(c.members))
	if c.done || !c.started {
		c.maybeFinishLocked()
		return
	}
	if len(c.members) < c.cfg.MinWorld {
		c.abortLocked(fmt.Errorf("cluster: %d workers left, below minimum %d", len(c.members), c.cfg.MinWorld))
		return
	}
	c.formEpochLocked()
}

// formEpochLocked declares the next epoch over the current membership:
// ranks are assigned by name order at epoch 1 and by previous rank
// order afterwards, so survivors keep their relative order and the
// checkpoint→shard mapping stays deterministic. Caller holds c.mu.
func (c *Coordinator) formEpochLocked() {
	c.epoch++
	list := make([]*memberState, 0, len(c.members))
	for _, m := range c.members {
		list = append(list, m)
	}
	if c.epoch == 1 {
		sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })
	} else {
		sort.Slice(list, func(i, j int) bool { return list[i].rank < list[j].rank })
	}
	names := make([]string, len(list))
	addrs := make([]string, len(list))
	for rank, m := range list {
		m.rank = rank
		names[rank] = m.name
		addrs[rank] = m.addr
	}
	c.cfg.Logf("cluster: epoch %d formed: world %d, members %v", c.epoch, len(list), names)
	epoch := c.epoch
	for _, m := range list {
		msg := &message{T: msgConfig, Config: &Config{
			Epoch: epoch, Rank: m.rank, World: len(list), Names: names, Addrs: addrs,
		}}
		// Sends leave the lock's critical path via goroutines so one
		// stalled member cannot delay the rest of the epoch broadcast; a
		// failed send surfaces as that member's failure.
		go func(m *memberState) {
			if err := m.send(msg); err != nil {
				c.reportDown(m, "config write failed")
			}
		}(m)
	}
}

// abortLocked fails the whole job: every member gets an abort message,
// then Serve returns the error. The farewell writes complete (or time
// out) BEFORE finished is closed, so Serve's teardown cannot cut a
// connection mid-abort. Caller holds c.mu.
func (c *Coordinator) abortLocked(err error) {
	if c.abortErr != nil {
		return
	}
	c.abortErr = err
	c.cfg.Logf("cluster: aborting job: %v", err)
	members := make([]*memberState, 0, len(c.members))
	for _, m := range c.members {
		members = append(members, m)
	}
	go func() {
		var wg sync.WaitGroup
		for _, m := range members {
			wg.Add(1)
			go func(m *memberState) {
				defer wg.Done()
				m.codec.conn.SetWriteDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // bound the farewell
				m.send(&message{T: msgAbort, Reason: err.Error()})             //nolint:errcheck // best-effort farewell
				m.codec.conn.Close()                                           //nolint:errcheck // tear down control plane
			}(m)
		}
		wg.Wait()
		close(c.finished)
	}()
}

// maybeFinishLocked completes Serve once the job is done and the last
// control connection has drained. Caller holds c.mu.
func (c *Coordinator) maybeFinishLocked() {
	if c.done && len(c.members) == 0 && c.abortErr == nil {
		select {
		case <-c.finished:
		default:
			close(c.finished)
		}
	}
}

// monitor watches heartbeat deadlines until done is closed.
func (c *Coordinator) monitor(done <-chan struct{}) {
	tick := time.NewTicker(c.cfg.HeartbeatInterval / 2)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
		}
		now := time.Now()
		c.mu.Lock()
		var dead []*memberState
		if c.started && !c.done && c.abortErr == nil {
			for _, m := range c.members {
				if now.Sub(m.lastHB) > c.cfg.HeartbeatTimeout {
					dead = append(dead, m)
				}
			}
		}
		c.mu.Unlock()
		for _, m := range dead {
			c.reportDown(m, fmt.Sprintf("missed heartbeats for %v", c.cfg.HeartbeatTimeout))
		}
	}
}

// closeAllConns tears down every remaining control connection.
func (c *Coordinator) closeAllConns() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		m.codec.conn.Close() //nolint:errcheck // teardown path
	}
}
