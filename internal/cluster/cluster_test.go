package cluster

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startCoordinator runs a coordinator on an ephemeral loopback port and
// returns its address plus a channel carrying Serve's result.
func startCoordinator(t *testing.T, ctx context.Context, cfg CoordinatorConfig) (string, *Coordinator, <-chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- coord.Serve(ctx, ln) }()
	return ln.Addr().String(), coord, served
}

// fastHB is a heartbeat contract quick enough for unit tests.
func fastHB(cfg CoordinatorConfig) CoordinatorConfig {
	cfg.HeartbeatInterval = 25 * time.Millisecond
	cfg.HeartbeatTimeout = 250 * time.Millisecond
	return cfg
}

// awaitConfig blocks until the member holds a config with epoch >= min.
func awaitConfig(t *testing.T, ctx context.Context, m *Member, min uint64) *Config {
	t.Helper()
	for {
		conf, changed := m.Config()
		if conf != nil && conf.Epoch >= min {
			return conf
		}
		select {
		case <-changed:
		case <-m.Done():
			t.Fatalf("control plane died waiting for epoch %d: %v", min, m.Err())
		case <-ctx.Done():
			t.Fatalf("timeout waiting for epoch %d", min)
		}
	}
}

func TestRendezvousAssignsRanksByName(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	addr, _, _ := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: 3}))

	// Join in an order unrelated to the name order.
	names := []string{"zulu", "alpha", "mike"}
	members := make(map[string]*Member, len(names))
	for i, name := range names {
		m, err := Join(ctx, addr, name, fmt.Sprintf("127.0.0.1:%d", 9000+i))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close() //nolint:errcheck // test teardown
		members[name] = m
	}

	wantRank := map[string]int{"alpha": 0, "mike": 1, "zulu": 2}
	for name, m := range members {
		conf := awaitConfig(t, ctx, m, 1)
		if conf.World != 3 || conf.Epoch != 1 {
			t.Fatalf("%s: config %+v, want epoch 1 world 3", name, conf)
		}
		if conf.Rank != wantRank[name] {
			t.Fatalf("%s: rank %d, want %d (epoch-1 ranks are name-ordered)", name, conf.Rank, wantRank[name])
		}
		if len(conf.Names) != 3 || conf.Names[0] != "alpha" || conf.Names[1] != "mike" || conf.Names[2] != "zulu" {
			t.Fatalf("%s: names %v out of order", name, conf.Names)
		}
		if conf.Addrs[conf.Rank] == "" {
			t.Fatalf("%s: empty own address", name)
		}
	}
}

func TestConnLossDeclaresShrunkenEpoch(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	addr, _, _ := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: 3}))

	ms := make([]*Member, 3)
	for i := range ms {
		m, err := Join(ctx, addr, fmt.Sprintf("w%d", i), fmt.Sprintf("127.0.0.1:%d", 9100+i))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close() //nolint:errcheck // test teardown
		ms[i] = m
	}
	for _, m := range ms {
		awaitConfig(t, ctx, m, 1)
	}

	// w1 dies abruptly (SIGKILL-like: its sockets just vanish).
	ms[1].Close() //nolint:errcheck // simulated crash

	for _, i := range []int{0, 2} {
		conf := awaitConfig(t, ctx, ms[i], 2)
		if conf.World != 2 {
			t.Fatalf("w%d: epoch-2 world %d, want 2", i, conf.World)
		}
		want := map[int]int{0: 0, 2: 1}[i] // survivors keep relative order
		if conf.Rank != want {
			t.Fatalf("w%d: epoch-2 rank %d, want %d", i, conf.Rank, want)
		}
		if len(conf.Names) != 2 || conf.Names[0] != "w0" || conf.Names[1] != "w2" {
			t.Fatalf("w%d: epoch-2 names %v, want [w0 w2]", i, conf.Names)
		}
	}
}

func TestHeartbeatTimeoutDeclaresNewEpoch(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	addr, _, _ := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: 2}))

	m0, err := Join(ctx, addr, "w0", "127.0.0.1:9200")
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close() //nolint:errcheck // test teardown
	m1, err := Join(ctx, addr, "w1", "127.0.0.1:9201")
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close() //nolint:errcheck // test teardown
	awaitConfig(t, ctx, m0, 1)

	// Partition, not crash: w1 keeps its connection but falls silent.
	m1.pauseHeartbeats(true)

	conf := awaitConfig(t, ctx, m0, 2)
	if conf.World != 1 || conf.Rank != 0 {
		t.Fatalf("epoch-2 config %+v, want world 1 rank 0", conf)
	}

	// The healed zombie is told the job moved on without it.
	m1.pauseHeartbeats(false)
	select {
	case <-m1.Done():
		if err := m1.Err(); err == nil || !strings.Contains(err.Error(), "declared dead") {
			t.Fatalf("zombie error = %v, want declared-dead abort", err)
		}
	case <-ctx.Done():
		t.Fatal("zombie was never told it is dead")
	}
}

func TestAbortBelowMinWorld(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	addr, _, served := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: 2, MinWorld: 2}))

	m0, err := Join(ctx, addr, "w0", "127.0.0.1:9300")
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close() //nolint:errcheck // test teardown
	m1, err := Join(ctx, addr, "w1", "127.0.0.1:9301")
	if err != nil {
		t.Fatal(err)
	}
	awaitConfig(t, ctx, m0, 1)

	m1.Close() //nolint:errcheck // simulated crash below MinWorld

	select {
	case <-m0.Done():
		if err := m0.Err(); err == nil || !strings.Contains(err.Error(), "aborted") {
			t.Fatalf("survivor error = %v, want abort", err)
		}
	case <-ctx.Done():
		t.Fatal("survivor never saw the abort")
	}
	select {
	case err := <-served:
		if err == nil || !strings.Contains(err.Error(), "below minimum") {
			t.Fatalf("Serve = %v, want below-minimum abort", err)
		}
	case <-ctx.Done():
		t.Fatal("Serve did not return after abort")
	}
}

func TestJoinRejections(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	addr, _, _ := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: 2}))

	m0, err := Join(ctx, addr, "w0", "127.0.0.1:9400")
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close() //nolint:errcheck // test teardown

	if _, err := Join(ctx, addr, "w0", "127.0.0.1:9401"); err == nil || !strings.Contains(err.Error(), "already joined") {
		t.Fatalf("duplicate name: err = %v, want already-joined rejection", err)
	}

	m1, err := Join(ctx, addr, "w1", "127.0.0.1:9402")
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close() //nolint:errcheck // test teardown
	awaitConfig(t, ctx, m0, 1)

	if _, err := Join(ctx, addr, "w9", "127.0.0.1:9403"); err == nil || !strings.Contains(err.Error(), "late join") {
		t.Fatalf("late join: err = %v, want late-join rejection", err)
	}
}

func TestGracefulCompletionEndsServe(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	addr, _, served := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: 2}))

	var ms [2]*Member
	var wg sync.WaitGroup
	for i := range ms {
		m, err := Join(ctx, addr, fmt.Sprintf("w%d", i), fmt.Sprintf("127.0.0.1:%d", 9500+i))
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	for _, m := range ms {
		awaitConfig(t, ctx, m, 1)
	}
	for _, m := range ms {
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			m.Leave(true) //nolint:errcheck // coordinator may already be finishing
		}(m)
	}
	wg.Wait()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve after graceful completion = %v, want nil", err)
		}
	case <-ctx.Done():
		t.Fatal("Serve did not return after all members left")
	}
}
