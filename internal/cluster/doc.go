// Package cluster turns the fixed-membership gTop-k S-SGD reproduction
// into an elastic distributed job: a coordinator hands out ranks and
// the data-plane address list to workers that join by name, workers
// exchange heartbeats with the coordinator, and when a worker dies the
// survivors re-form the mesh at the smaller world size and resume
// training from the last checkpoint — momentum and error-feedback
// residual intact, so gTop-k convergence behaviour is preserved across
// the shrink. The job is elastic in both directions: a worker joining
// a running job is parked and admitted at the next epoch boundary (up
// to CoordinatorConfig.MaxWorld, gated by a pluggable AutoscalePolicy),
// adopting the cluster's weights and momentum from a donor rank.
//
// # Roles
//
//   - Coordinator (one per job): accepts control-plane connections,
//     assigns ranks, detects failures (heartbeat timeout or control
//     connection loss) and declares cluster epochs.
//   - Member (one per worker): the control-plane client — joins by
//     name, streams heartbeats, and surfaces each newly declared epoch
//     configuration to the runtime.
//   - Runtime (one per worker): composes Member, transport.JoinMesh,
//     collective.Rebuild and core.Trainer into a training loop that
//     survives membership changes.
//
// # Epoch state machine
//
// The job advances through monotonically increasing epochs. Epoch e is
// a frozen membership list: names, ranks and data-plane addresses. All
// collective traffic is confined to one epoch's mesh; transport
// handshakes are epoch-stamped so stragglers can never leak frames
// across epochs.
//
//	coordinator:  gathering ──(world full)──▶ running(e=1)
//	                 ▲                          │   ▲ member dies (missed
//	                 │                          │   │ heartbeats / conn
//	              (late join:                   ▼   │ lost), or parked
//	               parked until the           running(e±1)  … until a
//	               next epoch boundary,       worker reports completion
//	               admitted up to max-world)
//
//	worker:  join ─▶ wait config(e) ─▶ mesh(e) ─▶ sync resume
//	              ▲                                iteration ─▶ train
//	              │                                   │
//	              └── step error / new config ────────┘
//
// A worker whose training step fails (a peer died mid-collective) does
// not exit: it waits for the next epoch's configuration, rebuilds the
// mesh via transport.JoinMesh (same listener, new epoch stamp),
// re-forks its sub-communicator from the rebuilt collective.Comm, and
// restores its own checkpoint. The epoch then syncs a resume point via
// a Gather/Bcast round on the new mesh: rank 0 picks the highest
// iteration any member holds, verifies every member already there has
// bit-identical weights (compared by checksum), and elects a donor.
// Members behind the resume point — an admitted joiner with no
// checkpoint, a rejoiner with a stale one — adopt the donor's weights
// and momentum over two broadcasts and restart their error-feedback
// residual at zero. Rank assignment is a pure function of the
// name-sorted member set (Reshard), so every member independently
// derives the same data shard (ShardRange) regardless of arrival
// order.
//
// # What a failure costs
//
// Steps since the last checkpoint are recomputed at the new world size,
// and the dead worker's residual (gradient mass it had queued locally)
// is lost — exactly the semantics of the paper's error-feedback
// formulation when a worker's local state vanishes. Everything else —
// weights, momentum, every survivor's residual — carries over, which is
// why the post-resume trajectory is bit-identical to a fresh job of the
// surviving size started from the same snapshots (asserted by
// TestElasticShrinkMatchesFreshRun, and by TestElasticGrowMatchesFreshRun
// for the 3→4 grow direction).
package cluster
