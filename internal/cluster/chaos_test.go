package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"gtopkssgd/internal/prng"
)

// chaosSeed drives every random choice of the soak: victim order and
// kill iterations. Change it and the soak explores a different failure
// schedule — any seed must pass.
const chaosSeed = 0xC4A05

// TestChaosSoakSeededKills is the elastic runtime's endurance test: a
// 6-worker job loses a prng-chosen worker at a prng-chosen iteration in
// each of three consecutive kill→shrink→resume cycles (6 → 5 → 4 → 3),
// and after every recovery the runtime's resume-agreement gate (iter +
// weight CRC gathered across ranks) must hold, epochs must be declared
// in strictly increasing order, per-epoch iterations must advance
// without gaps, every rollback must stay within one checkpoint cadence,
// and the three survivors must finish all steps with bit-identical
// weights.
func TestChaosSoakSeededKills(t *testing.T) {
	const (
		workers   = 6
		steps     = 30
		ckptEvery = 3
		kills     = 3
	)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	ds := elasticDataset(t)
	dir := t.TempDir()

	// Seeded chaos schedule: victims are a random draw without
	// replacement; kill iterations land in disjoint windows so each kill
	// hits its own epoch ([5,8], [13,16], [21,24] — all clear of the
	// final step).
	src := prng.New(chaosSeed)
	names := make([]string, workers)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	perm := append([]string(nil), names...)
	for i := len(perm) - 1; i > 0; i-- {
		j := int(src.Uint64() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	killAt := map[string]int{}
	for i := 0; i < kills; i++ {
		killAt[perm[i]] = 5 + 8*i + int(src.Uint64()%4)
	}
	t.Logf("chaos schedule (seed %#x): %v", chaosSeed, killAt)

	killErr := errors.New("chaos kill switch")
	var (
		recMu   sync.Mutex
		records = make(map[string][]stepRecord)
	)
	runResults := make(map[string]*RunResult)
	runErrs := make(map[string]error)

	addr, _, served := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: workers}))
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			res, err := Run(ctx, RuntimeConfig{
				Name:            name,
				Coordinator:     addr,
				Steps:           steps,
				CheckpointPath:  filepath.Join(dir, name+".gtkc"),
				CheckpointEvery: ckptEvery,
				Build:           elasticBuild(ds),
				OnStep: func(info StepInfo) error {
					recMu.Lock()
					records[name] = append(records[name], stepRecord{
						epoch: info.Epoch, rank: info.Rank, world: info.World,
						iter: info.Iter, loss: info.Loss,
					})
					recMu.Unlock()
					if at, doomed := killAt[name]; doomed && info.Iter == at {
						return killErr
					}
					return nil
				},
			})
			recMu.Lock()
			runResults[name] = res
			runErrs[name] = err
			recMu.Unlock()
		}(name)
	}
	wg.Wait()

	var survivors []string
	for _, name := range names {
		if _, doomed := killAt[name]; doomed {
			if err := runErrs[name]; err == nil || !errors.Is(err, killErr) {
				t.Fatalf("victim %s error = %v, want the kill switch", name, err)
			}
			continue
		}
		survivors = append(survivors, name)
		if err := runErrs[name]; err != nil {
			t.Fatalf("survivor %s failed: %v", name, err)
		}
	}
	sort.Strings(survivors)
	if len(survivors) != workers-kills {
		t.Fatalf("%d survivors, want %d", len(survivors), workers-kills)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("coordinator Serve = %v, want nil (job completed)", err)
		}
	case <-ctx.Done():
		t.Fatal("coordinator did not finish")
	}

	// Survivors complete the full job at the final world size, having
	// lived through one epoch per kill.
	for _, name := range survivors {
		res := runResults[name]
		if res.Steps != steps || res.FinalWorld != workers-kills ||
			res.FinalEpoch != uint64(kills+1) || res.Epochs != kills+1 {
			t.Fatalf("%s result %+v, want %d steps at world %d in epoch %d",
				name, res, steps, workers-kills, kills+1)
		}
	}

	// Monotone epoch numbering and gap-free iteration within each epoch;
	// every recovery's rollback bounded by the checkpoint cadence.
	for _, name := range survivors {
		recs := records[name]
		if len(recs) == 0 {
			t.Fatalf("%s has no step records", name)
		}
		prev := recs[0]
		if prev.epoch != 1 {
			t.Fatalf("%s first record in epoch %d, want 1", name, prev.epoch)
		}
		for _, rec := range recs[1:] {
			switch {
			case rec.epoch == prev.epoch:
				if rec.iter != prev.iter+1 {
					t.Fatalf("%s: iteration gap %d -> %d inside epoch %d", name, prev.iter, rec.iter, rec.epoch)
				}
				if rec.world != prev.world {
					t.Fatalf("%s: world changed %d -> %d without an epoch change", name, prev.world, rec.world)
				}
			case rec.epoch > prev.epoch:
				// A recovery: the world shrank by the one dead worker and
				// training rolled back at most one checkpoint cadence.
				if rec.world != prev.world-1 {
					t.Fatalf("%s: epoch %d -> %d world %d -> %d, want a shrink by 1",
						name, prev.epoch, rec.epoch, prev.world, rec.world)
				}
				resume := rec.iter - 1
				if resume%ckptEvery != 0 {
					t.Fatalf("%s: epoch %d resumed at iter %d, not on the checkpoint cadence", name, rec.epoch, resume)
				}
				if resume > prev.iter || prev.iter-resume > ckptEvery {
					t.Fatalf("%s: epoch %d rolled back %d -> %d, outside one cadence of %d",
						name, rec.epoch, prev.iter, resume, ckptEvery)
				}
			default:
				t.Fatalf("%s: epoch went backwards %d -> %d", name, prev.epoch, rec.epoch)
			}
			prev = rec
		}
	}

	// Post-recovery agreement, twice over: the runtime's internal gate
	// already gathered (iter, weight-CRC) across ranks after every
	// rebuild — a divergence would have failed Run — and the survivors'
	// final weights must agree bit for bit.
	ref := runResults[survivors[0]].FinalWeights
	refCRC := weightsCRC(ref)
	if len(ref) == 0 {
		t.Fatalf("%s has no final weights", survivors[0])
	}
	for _, name := range survivors[1:] {
		w := runResults[name].FinalWeights
		if got := weightsCRC(w); got != refCRC {
			t.Fatalf("%s final weight CRC %08x, want %08x", name, got, refCRC)
		}
		for i := range ref {
			if math.Float32bits(w[i]) != math.Float32bits(ref[i]) {
				t.Fatalf("%s weight %d: %v vs %v", name, i, w[i], ref[i])
			}
		}
	}
	// Sanity: the CRC helper actually discriminates.
	if weightsCRC(ref) == crc32.ChecksumIEEE(nil) {
		t.Fatal("weight CRC degenerate")
	}
}
