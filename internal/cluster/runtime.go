package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"net"
	"os"
	"time"

	"gtopkssgd/internal/checkpoint"
	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/transport"
)

// Session is one epoch's training assembly, produced by a BuildFn: the
// trainer plus the state the runtime checkpoints and restores around
// epoch changes.
type Session struct {
	// Trainer drives the S-SGD loop for this epoch.
	Trainer *core.Trainer
	// Params aliases the model's flat parameter buffer (the weights the
	// runtime snapshots, and overwrites on restore).
	Params []float32
	// Sparsifier, when non-nil, owns the error-feedback residual that
	// must ride along in every snapshot.
	Sparsifier *core.Sparsifier
	// QuorumMisses, when non-nil, reports this rank's consecutive missed
	// quorum rounds (e.g. GTopKAggregator.QuorumMissStreak). Paired with
	// RuntimeConfig.DegradeAfter it drives degraded-rank reporting.
	QuorumMisses func() int
	// QuorumGroup, when non-nil, reports this rank's hierarchy group
	// index (e.g. HierarchicalAggregator.QuorumGroup; negative for a
	// flat quorum). Degraded reports carry it so the coordinator can
	// aggregate a wholly-missed group's members — who streak together —
	// as one group-granular signal.
	QuorumGroup func() int
}

// BuildFn assembles a fresh Session for one epoch. It runs once per
// epoch with that epoch's rank, world size and training communicator
// (an epoch-private fork; see RuntimeConfig). Model weights must be
// initialised from the same seed on every rank — the runtime overwrites
// them from the checkpoint when one exists, but epoch 1 of a fresh job
// trains from the built initialisation.
type BuildFn func(rank, world int, comm *collective.Comm) (*Session, error)

// StepInfo reports one completed training step to an OnStep observer.
type StepInfo struct {
	// Epoch is the cluster epoch the step ran in.
	Epoch uint64
	// Rank and World locate this worker within the epoch.
	Rank, World int
	// Iter is the number of completed steps (the step just finished is
	// iteration Iter-1 counting from zero).
	Iter int
	// Loss is the local mini-batch loss of the completed step.
	Loss float64
}

// RuntimeConfig parameterises an elastic worker; see Run.
type RuntimeConfig struct {
	// Name is this worker's stable identity (ranks change across
	// epochs, names never do). Required.
	Name string
	// Coordinator is the control-plane host:port. Required.
	Coordinator string
	// DataAddr is the data-plane listen address; "" means
	// "127.0.0.1:0" (loopback, OS-assigned port). The concrete address
	// is advertised to the coordinator and reused across epochs.
	DataAddr string
	// Steps is the total training length in iterations. Required.
	Steps int
	// CheckpointPath is this worker's snapshot file. Required: failure
	// recovery resumes from it, so an elastic worker without one would
	// silently restart from scratch on the first membership change.
	CheckpointPath string
	// CheckpointEvery saves a snapshot after every n-th completed
	// iteration; 0 means 10. All workers must use the same cadence —
	// survivors can only agree on a resume point they all snapshotted.
	CheckpointEvery int
	// Build assembles each epoch's model, aggregator and trainer.
	// Required.
	Build BuildFn
	// OnStep, when non-nil, observes every completed step. Returning a
	// non-nil error hard-aborts the worker — no leave message, control
	// and data planes severed — exactly the footprint of a SIGKILL,
	// which is what the failure tests use it for.
	OnStep func(StepInfo) error
	// DegradeAfter, when > 0 and the Session exposes QuorumMisses,
	// reports this worker to the coordinator as degraded once it has
	// missed that many CONSECUTIVE quorum rounds. One report per streak:
	// the worker re-arms only after participating again. The epoch keeps
	// running either way — degradation is telemetry, not failure.
	DegradeAfter int
	// MeshTimeout bounds one mesh wire-up attempt; 0 means 30s.
	MeshTimeout time.Duration
	// TCP tunes the data-plane sockets of every epoch's mesh; the zero
	// value enables TCP_NODELAY (right for the small synchronous
	// collective frames).
	TCP transport.TCPOptions
	// Logf, when non-nil, receives progress events.
	Logf func(format string, args ...any)
}

func (c *RuntimeConfig) validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("cluster: runtime needs a worker name")
	case c.Coordinator == "":
		return fmt.Errorf("cluster: runtime needs a coordinator address")
	case c.Steps < 1:
		return fmt.Errorf("cluster: step count %d < 1", c.Steps)
	case c.CheckpointPath == "":
		return fmt.Errorf("cluster: runtime needs a checkpoint path (recovery resumes from it)")
	case c.CheckpointEvery < 0:
		return fmt.Errorf("cluster: negative checkpoint cadence %d", c.CheckpointEvery)
	case c.Build == nil:
		return fmt.Errorf("cluster: runtime needs a build function")
	}
	return nil
}

// RunResult summarises a completed elastic training run.
type RunResult struct {
	// Steps is the total completed iterations (== RuntimeConfig.Steps).
	Steps int
	// Epochs counts the cluster epochs this worker trained in.
	Epochs int
	// FinalEpoch, FinalRank and FinalWorld describe the last epoch.
	FinalEpoch uint64
	// FinalRank is this worker's rank in the final epoch.
	FinalRank int
	// FinalWorld is the final epoch's world size.
	FinalWorld int
	// FinalWeights is a copy of the converged parameters.
	FinalWeights []float32
	// LastLoss is the final step's local mini-batch loss.
	LastLoss float64
	// Stats accumulates communication counters across all epochs.
	Stats collective.Stats
}

// errEpochSuperseded marks an epoch torn down because a newer
// configuration arrived; the runtime loops instead of failing.
var errEpochSuperseded = errors.New("cluster: epoch superseded")

// errHardAbort marks a deliberate OnStep abort: terminal by definition,
// never reinterpreted as a reconfiguration.
var errHardAbort = errors.New("cluster: hard abort")

// Run executes one elastic worker from join to job completion. It
// opens the data-plane listener, joins the coordinator, and then loops:
// wire the epoch's mesh, agree on the resume iteration, train, and on
// membership changes tear down and start the next epoch. It returns
// when all Steps are complete, the job aborts, or ctx is cancelled.
func Run(ctx context.Context, cfg RuntimeConfig) (*RunResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 10
	}
	if cfg.MeshTimeout <= 0 {
		cfg.MeshTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	dataAddr := cfg.DataAddr
	if dataAddr == "" {
		dataAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", dataAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: data listener on %s: %w", dataAddr, err)
	}
	defer ln.Close() //nolint:errcheck // runtime owns the data listener

	member, err := Join(ctx, cfg.Coordinator, cfg.Name, ln.Addr().String())
	if err != nil {
		return nil, err
	}
	defer member.Close() //nolint:errcheck // idempotent; Leave already closed on success
	if member.Parked() {
		cfg.Logf("%s: join parked by coordinator; awaiting admission at the next epoch boundary", cfg.Name)
	}

	r := &runtime{cfg: cfg, ln: ln, member: member}
	return r.run(ctx)
}

// runtime is the per-worker elastic loop state.
type runtime struct {
	cfg     RuntimeConfig
	ln      net.Listener
	member  *Member
	carried collective.Stats // communication totals across epochs
	epochs  int
}

func (r *runtime) run(ctx context.Context) (*RunResult, error) {
	var lastEpoch uint64
	for {
		conf, changed := r.member.Config()
		if conf == nil || conf.Epoch <= lastEpoch {
			select {
			case <-changed:
				continue
			case <-r.member.Done():
				return nil, r.memberErr()
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		lastEpoch = conf.Epoch
		r.epochs++
		res, err := r.runEpoch(ctx, conf)
		switch {
		case err == nil:
			return res, nil
		case errors.Is(err, errEpochSuperseded):
			r.cfg.Logf("%s: epoch %d superseded, reconfiguring", r.cfg.Name, conf.Epoch)
			continue
		default:
			return nil, err
		}
	}
}

func (r *runtime) memberErr() error {
	if err := r.member.Err(); err != nil {
		return err
	}
	return fmt.Errorf("cluster: control plane closed before training completed")
}

// runEpoch wires one epoch's mesh and trains on it until completion or
// supersession. The returned error is errEpochSuperseded when a newer
// configuration interrupted the epoch.
func (r *runtime) runEpoch(ctx context.Context, conf *Config) (res *RunResult, err error) {
	r.cfg.Logf("%s: epoch %d: rank %d of %d", r.cfg.Name, conf.Epoch, conf.Rank, conf.World)

	// The epoch context is cancelled the moment a newer configuration
	// (or control-plane death) arrives, unblocking any collective the
	// trainer is stuck in — that is what lets a survivor paused inside
	// a half-dead AllReduce abandon it and rejoin the next epoch.
	epochCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	cur, changed := r.member.Config()
	if cur != nil && cur.Epoch > conf.Epoch {
		return nil, errEpochSuperseded // a newer config landed while this one was queued
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-changed:
			cancel()
		case <-r.member.Done():
			cancel()
		case <-watchDone:
		}
	}()

	// Rebuild the mesh for this epoch on the persistent listener.
	meshCtx, meshCancel := context.WithTimeout(epochCtx, r.cfg.MeshTimeout)
	conn, err := transport.JoinMesh(meshCtx, transport.MeshConfig{
		Rank:     conf.Rank,
		Addrs:    conf.Addrs,
		Epoch:    conf.Epoch,
		Listener: r.ln,
		TCP:      r.cfg.TCP,
	})
	meshCancel()
	if err != nil {
		return nil, r.classify(epochCtx, fmt.Errorf("cluster: epoch %d mesh: %w", conf.Epoch, err))
	}
	defer conn.Close() //nolint:errcheck // epoch teardown

	// The rebuilt parent communicator carries the communication totals
	// of earlier epochs; training runs on a fork so control traffic
	// (resume agreement, completion barrier) never shares tag space
	// with the aggregator's collectives.
	comm := collective.Rebuild(conn, r.carried)
	kids, err := comm.Fork(1)
	if err != nil {
		return nil, err
	}
	train := kids[0]
	// Fold this epoch's traffic into the carried totals on EVERY exit —
	// an epoch ended by supersession did real communication too, and
	// the next epoch's Rebuild must inherit it.
	folded := false
	foldStats := func() {
		if !folded {
			folded = true
			comm.AddStats(train.Stats())
			r.carried = comm.Stats()
		}
	}
	defer foldStats()

	sess, err := r.cfg.Build(conf.Rank, conf.World, train)
	if err != nil {
		return nil, fmt.Errorf("cluster: epoch %d build: %w", conf.Epoch, err)
	}
	if sess == nil || sess.Trainer == nil || sess.Params == nil {
		return nil, fmt.Errorf("cluster: epoch %d build returned an incomplete session", conf.Epoch)
	}

	resumeIter, err := r.restore(sess, conf)
	if err != nil {
		return nil, err
	}
	resumeIter, err = r.syncResume(epochCtx, comm, conf, resumeIter, sess)
	if err != nil {
		return nil, r.classify(epochCtx, err)
	}
	if resumeIter > 0 {
		r.cfg.Logf("%s: epoch %d: resuming at iteration %d", r.cfg.Name, conf.Epoch, resumeIter)
	}

	lastLoss, err := r.trainLoop(epochCtx, conf, sess)
	if errors.Is(err, errHardAbort) {
		return nil, err
	}
	if err != nil {
		return nil, r.classify(epochCtx, err)
	}

	// Completion: final snapshot, then a barrier so nobody's leave can
	// race a peer still inside its last collective, then a graceful
	// leave that tells the coordinator the job is done.
	if err := r.snapshot(sess, conf); err != nil {
		return nil, err
	}
	if err := comm.Barrier(epochCtx); err != nil {
		return nil, r.classify(epochCtx, err)
	}
	foldStats()
	if err := r.member.Leave(true); err != nil {
		r.cfg.Logf("%s: leave after completion: %v (job already done; ignoring)", r.cfg.Name, err)
	}
	return &RunResult{
		Steps:        sess.Trainer.Iter(),
		Epochs:       r.epochs,
		FinalEpoch:   conf.Epoch,
		FinalRank:    conf.Rank,
		FinalWorld:   conf.World,
		FinalWeights: append([]float32(nil), sess.Params...),
		LastLoss:     lastLoss,
		Stats:        r.carried,
	}, nil
}

// trainLoop steps the trainer from its restored iteration to Steps,
// snapshotting on the configured cadence.
func (r *runtime) trainLoop(epochCtx context.Context, conf *Config, sess *Session) (float64, error) {
	var lastLoss float64
	degradedReported := false
	for sess.Trainer.Iter() < r.cfg.Steps {
		loss, err := sess.Trainer.Step(epochCtx)
		if err != nil {
			return 0, fmt.Errorf("cluster: epoch %d step %d: %w", conf.Epoch, sess.Trainer.Iter(), err)
		}
		lastLoss = loss
		if r.cfg.OnStep != nil {
			info := StepInfo{
				Epoch: conf.Epoch, Rank: conf.Rank, World: conf.World,
				Iter: sess.Trainer.Iter(), Loss: loss,
			}
			if err := r.cfg.OnStep(info); err != nil {
				// Hard abort requested: die like a SIGKILL would — no
				// leave, no final snapshot, sockets simply vanish.
				r.member.Close() //nolint:errcheck // abrupt by design
				return 0, fmt.Errorf("%w: %s at iteration %d: %w", errHardAbort, r.cfg.Name, info.Iter, err)
			}
		}
		if r.cfg.DegradeAfter > 0 && sess.QuorumMisses != nil {
			switch streak := sess.QuorumMisses(); {
			case streak >= r.cfg.DegradeAfter && !degradedReported:
				// One report per streak; a failed write just means the
				// control plane is going down, which its own path handles.
				degradedReported = true
				reason := fmt.Sprintf("missed %d consecutive quorum rounds", streak)
				group := -1
				if sess.QuorumGroup != nil {
					group = sess.QuorumGroup()
				}
				if group >= 0 {
					reason = fmt.Sprintf("%s (hierarchy group %d)", reason, group)
				}
				r.cfg.Logf("%s: epoch %d: degraded: %s (training continues)", r.cfg.Name, conf.Epoch, reason)
				if err := r.member.ReportDegradedGroup(reason, group); err != nil {
					r.cfg.Logf("%s: degraded report failed: %v", r.cfg.Name, err)
				}
			case streak == 0:
				degradedReported = false // participating again: re-arm
			}
		}
		iter := sess.Trainer.Iter()
		if iter < r.cfg.Steps && iter%r.cfg.CheckpointEvery == 0 {
			if err := r.snapshot(sess, conf); err != nil {
				return 0, err
			}
		}
	}
	return lastLoss, nil
}

// restore loads this worker's snapshot into the fresh session and
// returns the iteration to resume from (0 when no snapshot exists —
// the signature of a late joiner, which syncResume then catches up).
func (r *runtime) restore(sess *Session, conf *Config) (int, error) {
	st, err := checkpoint.LoadFile(r.cfg.CheckpointPath)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("cluster: load checkpoint: %w", err)
	}
	if err := st.ValidateName(r.cfg.Name); err != nil {
		return 0, err
	}
	if len(st.Weights) != len(sess.Params) {
		return 0, fmt.Errorf("cluster: checkpoint has %d weights, model has %d", len(st.Weights), len(sess.Params))
	}
	copy(sess.Params, st.Weights)
	if err := sess.Trainer.Restore(int(st.Iter), st.Velocity); err != nil {
		return 0, fmt.Errorf("cluster: restore trainer: %w", err)
	}
	if sess.Sparsifier != nil && st.Residual != nil {
		if err := sess.Sparsifier.RestoreResidual(st.Residual); err != nil {
			return 0, fmt.Errorf("cluster: restore residual: %w", err)
		}
	}
	if members, ok := st.Members(); ok && !sameMembers(members, conf.Names) {
		// The deterministic re-shard moved this worker's data slice:
		// the epoch's member set differs from the snapshot's. Purely
		// informational — Build already derived the shard from the new
		// (rank, world) — but invaluable when auditing a grown job.
		r.cfg.Logf("%s: epoch %d: re-shard since snapshot: %v -> %v (rank %d of %d)",
			r.cfg.Name, conf.Epoch, members, conf.Names, conf.Rank, conf.World)
	}
	return int(st.Iter), nil
}

// sameMembers reports whether two rank-ordered member lists coincide.
func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// snapshot atomically persists the session's full optimizer state —
// weights, momentum, error-feedback residual — plus the cluster
// coordinates of the save and the epoch's re-shard assignment.
func (r *runtime) snapshot(sess *Session, conf *Config) error {
	st := &checkpoint.State{
		Iter:     uint64(sess.Trainer.Iter()),
		Weights:  sess.Params,
		Velocity: sess.Trainer.Velocity(),
	}
	if sess.Sparsifier != nil {
		st.Residual = sess.Sparsifier.Residual()
	}
	st.SetClusterMeta(conf.Epoch, conf.World, conf.Rank, r.cfg.Name)
	if err := st.SetMembers(conf.Names); err != nil {
		return fmt.Errorf("cluster: snapshot at iteration %d: %w", st.Iter, err)
	}
	if err := checkpoint.SaveFile(r.cfg.CheckpointPath, st); err != nil {
		return fmt.Errorf("cluster: snapshot at iteration %d: %w", st.Iter, err)
	}
	return nil
}

// Resume-sync verdict layout: 'K' | u64 resume iter | u32 donor rank |
// u32 laggard count. Anything not starting with 'K' is an error text.
const syncVerdictLen = 17

// syncResume replaces the shrink-era "all ranks must hold the same
// snapshot" gate with its grow-capable generalisation. Every rank
// contributes (iter, crc32(weights)) via a Gather to rank 0, which
// declares the epoch's resume point:
//
//   - The resume iteration is the MOST ADVANCED snapshot present; the
//     lowest rank holding it is the donor.
//   - Every rank at the resume iteration must hold bit-identical
//     weights (CRC), exactly the old divergence gate.
//   - Ranks below it — late joiners with no checkpoint, or a survivor
//     whose final pre-reconfiguration snapshot lost a race with the
//     epoch teardown — are laggards: the donor broadcasts weights and
//     momentum, and each laggard adopts them with a zeroed
//     error-feedback residual (a joiner has no queued gradient mass by
//     definition; DGC's error-feedback semantics make the zero state
//     the correct fresh start).
//
// The laggard broadcast only happens when someone actually lags, so a
// steady-state epoch costs exactly what the old agreement did: one
// 12-byte Gather and one verdict Bcast. Returns the agreed resume
// iteration, which for a laggard exceeds what restore() reported.
func (r *runtime) syncResume(ctx context.Context, comm *collective.Comm, conf *Config, iter int, sess *Session) (int, error) {
	blob := make([]byte, 12)
	binary.LittleEndian.PutUint64(blob[0:8], uint64(iter))
	binary.LittleEndian.PutUint32(blob[8:12], weightsCRC(sess.Params))
	blobs, err := comm.Gather(ctx, 0, blob)
	if err != nil {
		return 0, fmt.Errorf("cluster: epoch %d resume sync: %w", conf.Epoch, err)
	}
	verdict := []byte("malformed sync round")
	if comm.Rank() == 0 {
		verdict = resumeVerdict(blobs)
	}
	out, err := comm.Bcast(ctx, 0, verdict)
	if err != nil {
		return 0, fmt.Errorf("cluster: epoch %d resume verdict: %w", conf.Epoch, err)
	}
	if len(out) != syncVerdictLen || out[0] != 'K' {
		return 0, fmt.Errorf("cluster: epoch %d resume sync failed: %s", conf.Epoch, out)
	}
	resume := int(binary.LittleEndian.Uint64(out[1:9]))
	donor := int(binary.LittleEndian.Uint32(out[9:13]))
	laggards := int(binary.LittleEndian.Uint32(out[13:17]))
	if laggards == 0 {
		return resume, nil
	}

	// Someone needs the cluster state. Weights and momentum are
	// bit-identical on every up-to-date rank under synchronous training,
	// so any donor yields the same bytes; the lowest rank is chosen only
	// to make the broadcast root deterministic.
	weights, err := comm.BcastFloat32s(ctx, donor, sess.Params)
	if err != nil {
		return 0, fmt.Errorf("cluster: epoch %d state sync (weights): %w", conf.Epoch, err)
	}
	velocity, err := comm.BcastFloat32s(ctx, donor, sess.Trainer.Velocity())
	if err != nil {
		return 0, fmt.Errorf("cluster: epoch %d state sync (momentum): %w", conf.Epoch, err)
	}
	if iter < resume {
		if len(weights) != len(sess.Params) {
			return 0, fmt.Errorf("cluster: epoch %d state sync: donor sent %d weights, model has %d",
				conf.Epoch, len(weights), len(sess.Params))
		}
		copy(sess.Params, weights)
		if err := sess.Trainer.Restore(resume, velocity); err != nil {
			return 0, fmt.Errorf("cluster: epoch %d state sync: %w", conf.Epoch, err)
		}
		if sess.Sparsifier != nil {
			if err := sess.Sparsifier.RestoreResidual(make([]float32, len(sess.Params))); err != nil {
				return 0, fmt.Errorf("cluster: epoch %d state sync: %w", conf.Epoch, err)
			}
		}
		r.cfg.Logf("%s: epoch %d: adopted cluster state at iteration %d from rank %d (joined with local iteration %d)",
			r.cfg.Name, conf.Epoch, resume, donor, iter)
	}
	return resume, nil
}

// resumeVerdict is rank 0's half of syncResume: fold the gathered
// (iter, crc) pairs into a verdict blob.
func resumeVerdict(blobs [][]byte) []byte {
	resume, donor, laggards := uint64(0), -1, 0
	for rank, b := range blobs {
		if len(b) != 12 {
			return []byte(fmt.Sprintf("rank %d sent malformed sync blob", rank))
		}
		if got := binary.LittleEndian.Uint64(b[0:8]); got > resume {
			resume = got
		}
	}
	var crc uint32
	for rank, b := range blobs {
		switch got := binary.LittleEndian.Uint64(b[0:8]); {
		case got < resume:
			laggards++
		case donor == -1:
			donor = rank
			crc = binary.LittleEndian.Uint32(b[8:12])
		case binary.LittleEndian.Uint32(b[8:12]) != crc:
			return []byte(fmt.Sprintf("rank %d weights diverge from rank %d at iteration %d", rank, donor, resume))
		}
	}
	verdict := make([]byte, syncVerdictLen)
	verdict[0] = 'K'
	binary.LittleEndian.PutUint64(verdict[1:9], resume)
	binary.LittleEndian.PutUint32(verdict[9:13], uint32(donor))
	binary.LittleEndian.PutUint32(verdict[13:17], uint32(laggards))
	return verdict
}

// classify decides whether an epoch error is a reconfiguration (a newer
// config arrived — or will shortly, once the coordinator's failure
// detector fires) or a genuine failure. On a bare error it waits up to
// the failure-detection window for the coordinator's verdict.
func (r *runtime) classify(epochCtx context.Context, err error) error {
	conf, changed := r.member.Config()
	latest := uint64(0)
	if conf != nil {
		latest = conf.Epoch
	}
	select {
	case <-changed:
		return errEpochSuperseded
	default:
	}
	if epochCtx.Err() == nil {
		// The step failed but no reconfiguration has arrived yet. A dead
		// peer takes the coordinator up to the heartbeat timeout to
		// detect; wait for its verdict before declaring the job broken.
		grace := 2*r.member.HeartbeatTimeout() + time.Second
		select {
		case <-changed:
			return errEpochSuperseded
		case <-r.member.Done():
			return r.memberErr()
		case <-time.After(grace):
			return fmt.Errorf("%w (no reconfiguration within %v of epoch %d)", err, grace, latest)
		}
	}
	select {
	case <-r.member.Done():
		return r.memberErr()
	default:
	}
	return errEpochSuperseded
}

// weightsCRC fingerprints a weight vector for the resume agreement.
func weightsCRC(w []float32) uint32 {
	crc := crc32.NewIEEE()
	var buf [4]byte
	for _, v := range w {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		crc.Write(buf[:]) //nolint:errcheck // hash.Hash never errors
	}
	return crc.Sum32()
}
