package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// The control plane speaks newline-delimited JSON over a single TCP
// connection per worker. The volume is tiny (joins, heartbeats, epoch
// configurations), so a self-describing text protocol wins over another
// binary framing: `nc` against a coordinator prints a readable event
// stream, which matters when debugging a wedged 32-node job at 2 a.m.

// Message type tags on the control-plane wire.
const (
	// msgJoin (worker→coordinator) announces a worker: Name + Addr.
	msgJoin = "join"
	// msgHeartbeat (worker→coordinator) proves liveness.
	msgHeartbeat = "hb"
	// msgLeave (worker→coordinator) departs; Done marks job completion.
	msgLeave = "leave"
	// msgDegraded (worker→coordinator) reports that this worker is alive
	// but persistently missing quorum deadlines (Reason says why). Purely
	// informational: the coordinator logs and counts it WITHOUT reforming
	// the epoch — a slow rank under quorum aggregation costs staleness,
	// not correctness, so tearing the job down would be strictly worse.
	msgDegraded = "degraded"
	// msgWelcome (coordinator→worker) accepts a join and sets the
	// heartbeat contract.
	msgWelcome = "welcome"
	// msgReject (coordinator→worker) refuses a join with a Reason.
	msgReject = "reject"
	// msgConfig (coordinator→worker) declares an epoch configuration.
	msgConfig = "config"
	// msgAbort (coordinator→worker) kills the job with a Reason.
	msgAbort = "abort"
)

// message is the single envelope exchanged on the control plane; the T
// tag selects which optional fields are meaningful.
type message struct {
	T      string  `json:"t"`
	Name   string  `json:"name,omitempty"`
	Addr   string  `json:"addr,omitempty"`
	Done   bool    `json:"done,omitempty"`
	Reason string  `json:"reason,omitempty"`
	// Group, on degraded messages, carries the reporter's hierarchy group
	// index PLUS ONE (0 means "flat quorum, no group"), so group-granular
	// telemetry — a whole partitioned group streaking together — survives
	// the wire without a mandatory field on every other message.
	Group  int     `json:"group,omitempty"`
	HBMs   int64   `json:"hb_ms,omitempty"`
	DeadMs int64   `json:"dead_ms,omitempty"`
	// Parked marks a welcome to a late joiner: the join is accepted but
	// the worker is held outside the running epoch until the autoscaler
	// admits it at the next epoch boundary (its first config message).
	Parked bool    `json:"parked,omitempty"`
	Config *Config `json:"config,omitempty"`
}

// Config freezes one epoch's membership: who participates, in which
// rank order, and where each rank's data plane listens. Every worker in
// the epoch receives the same Names/Addrs/World and its own Rank.
type Config struct {
	// Epoch numbers configurations monotonically from 1.
	Epoch uint64 `json:"epoch"`
	// Rank is the receiving worker's rank in [0, World).
	Rank int `json:"rank"`
	// World is the epoch's worker count.
	World int `json:"world"`
	// Names lists member names indexed by rank.
	Names []string `json:"names"`
	// Addrs lists data-plane host:port addresses indexed by rank.
	Addrs []string `json:"addrs"`
}

// connCodec wraps one control connection with line-oriented JSON
// encode/decode. Writes are mutex-free: each side has exactly one
// writer goroutine per message source, and the coordinator serialises
// per-member writes through memberState.send.
type connCodec struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func newCodec(conn net.Conn) *connCodec {
	return &connCodec{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
}

func (c *connCodec) write(m *message) error {
	return c.enc.Encode(m)
}

func (c *connCodec) read() (*message, error) {
	var m message
	if err := c.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// validateConfig rejects a malformed epoch configuration before the
// runtime acts on it.
func validateConfig(cfg *Config) error {
	if cfg == nil {
		return fmt.Errorf("cluster: config message without config body")
	}
	if cfg.World < 1 || len(cfg.Names) != cfg.World || len(cfg.Addrs) != cfg.World {
		return fmt.Errorf("cluster: inconsistent config: world %d, %d names, %d addrs",
			cfg.World, len(cfg.Names), len(cfg.Addrs))
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.World {
		return fmt.Errorf("cluster: rank %d out of range [0,%d)", cfg.Rank, cfg.World)
	}
	if cfg.Epoch < 1 {
		return fmt.Errorf("cluster: epoch %d < 1", cfg.Epoch)
	}
	return nil
}

// Heartbeat contract defaults; the coordinator's values are pushed to
// every member in the welcome message so both sides always agree.
const (
	// DefaultHeartbeatInterval is how often members prove liveness.
	DefaultHeartbeatInterval = 500 * time.Millisecond
	// DefaultHeartbeatTimeout is how long the coordinator waits before
	// declaring a silent member dead.
	DefaultHeartbeatTimeout = 2500 * time.Millisecond
)
