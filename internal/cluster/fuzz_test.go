package cluster

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"
)

// FuzzControlDecode throws arbitrary bytes at the control-plane codec:
// whatever arrives on a coordinator or member socket — malformed JSON,
// truncated frames, duplicate or contradictory fields, binary noise —
// decoding must either yield a message or fail with an error. Panics
// and hangs are the bugs this hunts: a coordinator's accept loop reads
// from unauthenticated TCP, so a garbage line must never take the
// control plane down. Config payloads that decode are additionally run
// through validateConfig, which must reject every inconsistent shape
// the runtime would trip over.
func FuzzControlDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"t":"join","name":"w0","addr":"127.0.0.1:9"}` + "\n"),
		[]byte(`{"t":"welcome","hb_ms":500,"dead_ms":2500,"parked":true}` + "\n"),
		[]byte(`{"t":"config","config":{"epoch":1,"rank":0,"world":2,"names":["a","b"],"addrs":["x:1","y:2"]}}` + "\n"),
		[]byte(`{"t":"hb"}` + "\n" + `{"t":"leave","done":true}` + "\n"),
		[]byte(`{"t":"config","config":{"epoch":0,"rank":9,"world":-2}}` + "\n"),
		[]byte(`{"t":"config","config":{"epoch":1,"rank":0,"world":3,"names":["a"],"addrs":[]}}` + "\n"),
		[]byte(`{"t":"join","name":"w0"`),       // truncated mid-message
		[]byte(`{"t":"join","name":"w0","name":"w1","addr":"x"}` + "\n"), // duplicate field
		[]byte("\x00\xff\xfe garbage\n{}\n"),
		[]byte(`{"t":"abort","reason":"boom"}`),
		[]byte(`[1,2,3]` + "\n"),
		[]byte(`"just a string"` + "\n" + `{"t":"hb"}` + "\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		client, server := net.Pipe()
		defer server.Close() //nolint:errcheck // also unblocks a stuck writer
		go func() {
			client.Write(data) //nolint:errcheck // reader may close first
			client.Close()     //nolint:errcheck // writer done
		}()
		codec := newCodec(server)
		// Bound the drain: a stream of tiny valid messages is fine, we
		// only need enough of them to prove the codec keeps its footing.
		for i := 0; i < 64; i++ {
			m, err := codec.read()
			if err != nil {
				return // clean error is the contract for malformed input
			}
			if m.T == msgConfig {
				if verr := validateConfig(m.Config); verr == nil {
					c := m.Config
					if c.World < 1 || c.Rank < 0 || c.Rank >= c.World ||
						len(c.Names) != c.World || len(c.Addrs) != c.World || c.Epoch < 1 {
						t.Fatalf("validateConfig accepted inconsistent config %+v", c)
					}
				}
			}
		}
	})
}

// TestCoordinatorSurvivesGarbageConn proves the accept loop shrugs off
// hostile or broken connections: binary noise, a non-join first
// message, a join with no data address, and a truncated frame each get
// an explicit rejection (or a plain close) — and afterwards two honest
// workers still rendezvous into epoch 1.
func TestCoordinatorSurvivesGarbageConn(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	addr, _, _ := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: 2}))

	garbage := []struct {
		name string
		send string
	}{
		{"binary noise", "\x00\x01\x02 not json\n"},
		{"non-join first message", `{"t":"hb"}` + "\n"},
		{"join without addr", `{"t":"join","name":"x"}` + "\n"},
		{"join without name", `{"t":"join","addr":"127.0.0.1:9"}` + "\n"},
		{"truncated join", `{"t":"join","na`},
	}
	for _, g := range garbage {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte(g.send)); err != nil {
			t.Fatalf("%s: write: %v", g.name, err)
		}
		if g.name == "truncated join" {
			// Half a frame then a hangup: the coordinator's read errors
			// and the handler exits; nothing to read back.
			conn.Close() //nolint:errcheck // deliberate hangup
			continue
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck // bound the reject read
		buf := make([]byte, 512)
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("%s: no rejection before close: %v", g.name, err)
		}
		if !strings.Contains(string(buf[:n]), `"reject"`) {
			t.Fatalf("%s: response %q, want an explicit reject", g.name, buf[:n])
		}
		conn.Close() //nolint:errcheck // test teardown
	}

	// The control plane must still be fully operational.
	a, err := Join(ctx, addr, "alpha", "127.0.0.1:1")
	if err != nil {
		t.Fatalf("honest join after garbage: %v", err)
	}
	defer a.Close() //nolint:errcheck // test teardown
	b, err := Join(ctx, addr, "bravo", "127.0.0.1:2")
	if err != nil {
		t.Fatalf("second honest join after garbage: %v", err)
	}
	defer b.Close() //nolint:errcheck // test teardown
	conf := awaitConfig(t, ctx, a, 1)
	if conf.World != 2 {
		t.Fatalf("epoch-1 world %d, want 2 (garbage conns must not occupy slots)", conf.World)
	}
}
