package cluster

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/data"
	"gtopkssgd/internal/nn/models"
	"gtopkssgd/internal/transport"
)

// Shared hyper-parameters: elastic runs and their non-elastic reference
// runs must agree on every one of these for bit-level comparison.
const (
	elDensity = 0.05
	elBatch   = 4
	elLR      = 0.05
	elMom     = 0.9
	elSeed    = 7
	elHidden  = 16
)

func elasticDataset(t *testing.T) *data.Images {
	t.Helper()
	ds, err := data.NewImages(11, 10, 3, 8, 8, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// elasticBuild returns the BuildFn every elastic worker uses: an MLP +
// gTop-k aggregator + momentum trainer, sharded by the epoch's
// (rank, world).
func elasticBuild(ds *data.Images) BuildFn {
	return func(rank, world int, comm *collective.Comm) (*Session, error) {
		cls := models.MLP(ds.Dim(), elHidden, 10)
		cls.Net.Init(elSeed)
		dim := cls.Net.ParamCount()
		agg, err := core.NewGTopKAggregator(comm, dim, core.DensityToK(dim, elDensity))
		if err != nil {
			return nil, err
		}
		tr, err := core.NewTrainer(core.TrainConfig{LR: elLR, Momentum: elMom},
			agg, cls.Net.Parameters(), models.GradFn(cls, ds, rank, world, elBatch))
		if err != nil {
			return nil, err
		}
		return &Session{Trainer: tr, Params: cls.Net.Parameters(), Sparsifier: agg.Sparsifier()}, nil
	}
}

// refState captures one rank's full optimizer state from a non-elastic
// reference run.
type refState struct {
	weights  []float32
	velocity []float32
	residual []float32
}

// refRun runs a plain (non-elastic, in-process-goroutine but real-TCP-
// free) cluster for `steps` additional steps, optionally restoring
// per-rank state first, and returns per-rank losses, final states and
// final weights.
func refRun(t *testing.T, ds *data.Images, workers, steps int, restore []*refState, fromIter int) ([][]float64, []*refState) {
	t.Helper()
	return refRunOn(t, ds, workers, steps, restore, fromIter, nil)
}

// refRunOn is refRun on an explicit fabric (nil means the default
// in-process one) — bit-identity claims are checked against references
// on both inproc and real TCP transports.
func refRunOn(t *testing.T, ds *data.Images, workers, steps int, restore []*refState, fromIter int, fabric transport.Fabric) ([][]float64, []*refState) {
	t.Helper()
	type rankRefs struct {
		cls *models.Classifier
		agg *core.GTopKAggregator
		tr  *core.Trainer
	}
	refs := make([]*rankRefs, workers)
	results, err := core.RunCluster(context.Background(),
		core.ClusterConfig{Workers: workers, Steps: steps, Fabric: fabric},
		func(rank int, comm *collective.Comm) (*core.Trainer, error) {
			cls := models.MLP(ds.Dim(), elHidden, 10)
			cls.Net.Init(elSeed)
			dim := cls.Net.ParamCount()
			agg, err := core.NewGTopKAggregator(comm, dim, core.DensityToK(dim, elDensity))
			if err != nil {
				return nil, err
			}
			tr, err := core.NewTrainer(core.TrainConfig{LR: elLR, Momentum: elMom},
				agg, cls.Net.Parameters(), models.GradFn(cls, ds, rank, workers, elBatch))
			if err != nil {
				return nil, err
			}
			if restore != nil {
				st := restore[rank]
				copy(cls.Net.Parameters(), st.weights)
				if err := tr.Restore(fromIter, st.velocity); err != nil {
					return nil, err
				}
				if err := agg.Sparsifier().RestoreResidual(st.residual); err != nil {
					return nil, err
				}
			}
			refs[rank] = &rankRefs{cls: cls, agg: agg, tr: tr}
			return tr, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	losses := make([][]float64, workers)
	states := make([]*refState, workers)
	for rank, res := range results {
		losses[rank] = res.Losses
		states[rank] = &refState{
			weights:  append([]float32(nil), refs[rank].cls.Net.Parameters()...),
			velocity: append([]float32(nil), refs[rank].tr.Velocity()...),
			residual: append([]float32(nil), refs[rank].agg.Sparsifier().Residual()...),
		}
	}
	return losses, states
}

// stepRecord is one observed training step of one elastic worker.
type stepRecord struct {
	epoch       uint64
	rank, world int
	iter        int
	loss        float64
}

// TestElasticShrinkMatchesFreshRun is the subsystem's acceptance test:
// a 4-worker job launched through the coordinator survives the
// SIGKILL-equivalent death of one worker mid-training, re-forms at
// world size 3, resumes from the last checkpoint — and its post-resume
// loss trajectory and final weights are BIT-IDENTICAL to a fresh
// 3-worker run restored from the same snapshots.
func TestElasticShrinkMatchesFreshRun(t *testing.T) {
	const (
		workers   = 4
		steps     = 24
		ckptEvery = 4
		killIter  = 14 // between checkpoints at 12 and 16
		victim    = "w1"
	)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ds := elasticDataset(t)
	dir := t.TempDir()

	addr, _, served := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: workers}))

	var (
		recMu   sync.Mutex
		records = make(map[string][]stepRecord)
	)
	killErr := errors.New("test kill switch")
	runResults := make(map[string]*RunResult)
	runErrs := make(map[string]error)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		name := fmt.Sprintf("w%d", i)
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			res, err := Run(ctx, RuntimeConfig{
				Name:            name,
				Coordinator:     addr,
				Steps:           steps,
				CheckpointPath:  filepath.Join(dir, name+".gtkc"),
				CheckpointEvery: ckptEvery,
				Build:           elasticBuild(ds),
				OnStep: func(info StepInfo) error {
					recMu.Lock()
					records[name] = append(records[name], stepRecord{
						epoch: info.Epoch, rank: info.Rank, world: info.World,
						iter: info.Iter, loss: info.Loss,
					})
					recMu.Unlock()
					if name == victim && info.Iter == killIter {
						return killErr
					}
					return nil
				},
			})
			recMu.Lock()
			runResults[name] = res
			runErrs[name] = err
			recMu.Unlock()
		}(name)
	}
	wg.Wait()

	// The victim must report its own abort; everyone else completes.
	if err := runErrs[victim]; err == nil || !errors.Is(err, killErr) {
		t.Fatalf("victim error = %v, want the kill switch", err)
	}
	for i := 0; i < workers; i++ {
		name := fmt.Sprintf("w%d", i)
		if name == victim {
			continue
		}
		if runErrs[name] != nil {
			t.Fatalf("%s failed: %v", name, runErrs[name])
		}
		res := runResults[name]
		if res.Steps != steps || res.FinalWorld != workers-1 || res.FinalEpoch != 2 || res.Epochs != 2 {
			t.Fatalf("%s result %+v, want %d steps at world %d in epoch 2", name, res, steps, workers-1)
		}
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("coordinator Serve = %v, want nil (job completed)", err)
		}
	case <-ctx.Done():
		t.Fatal("coordinator did not finish")
	}

	// Epoch-1 ranks are name-ordered: w0→0 … w3→3; survivors keep
	// relative order in epoch 2.
	survivors := []string{"w0", "w2", "w3"}
	oldRank := map[string]int{"w0": 0, "w2": 2, "w3": 3}
	resumeIter := -1
	for newRank, name := range survivors {
		var sawEpoch2 bool
		for _, rec := range records[name] {
			switch rec.epoch {
			case 1:
				if rec.rank != oldRank[name] || rec.world != workers {
					t.Fatalf("%s epoch-1 record %+v, want rank %d world %d", name, rec, oldRank[name], workers)
				}
			case 2:
				if rec.rank != newRank || rec.world != workers-1 {
					t.Fatalf("%s epoch-2 record %+v, want rank %d world %d", name, rec, newRank, workers-1)
				}
				if !sawEpoch2 {
					sawEpoch2 = true
					if resumeIter == -1 {
						resumeIter = rec.iter - 1
					} else if rec.iter-1 != resumeIter {
						t.Fatalf("%s resumed at %d, others at %d", name, rec.iter-1, resumeIter)
					}
				}
			}
		}
		if !sawEpoch2 {
			t.Fatalf("%s never trained in epoch 2", name)
		}
	}
	// The kill at iteration 14 must have rolled back to the snapshot at
	// 12 (cadence 4; 16 was never reached).
	if resumeIter != 12 {
		t.Fatalf("survivors resumed at iteration %d, want 12", resumeIter)
	}

	// Reference: a fresh 4-rank run to the resume point, then a fresh
	// 3-rank run restored from the survivors' states. The elastic
	// post-resume trajectory must match it bit for bit.
	_, statesAtResume := refRun(t, ds, workers, resumeIter, nil, 0)
	restore3 := make([]*refState, len(survivors))
	for newRank, name := range survivors {
		restore3[newRank] = statesAtResume[oldRank[name]]
	}
	refLosses, refStates := refRun(t, ds, len(survivors), steps-resumeIter, restore3, resumeIter)

	for newRank, name := range survivors {
		var got []stepRecord
		for _, rec := range records[name] {
			if rec.epoch == 2 {
				got = append(got, rec)
			}
		}
		want := refLosses[newRank]
		if len(got) != len(want) {
			t.Fatalf("%s: %d epoch-2 steps, reference has %d", name, len(got), len(want))
		}
		for s, rec := range got {
			if rec.iter != resumeIter+s+1 {
				t.Fatalf("%s: epoch-2 step %d has iter %d, want %d", name, s, rec.iter, resumeIter+s+1)
			}
			if rec.loss != want[s] {
				t.Fatalf("%s iteration %d: loss %v, reference %v (trajectories must be bit-identical)",
					name, rec.iter, rec.loss, want[s])
			}
		}
		final := runResults[name].FinalWeights
		refW := refStates[newRank].weights
		if len(final) != len(refW) {
			t.Fatalf("%s: %d final weights, reference %d", name, len(final), len(refW))
		}
		for i := range final {
			if final[i] != refW[i] {
				t.Fatalf("%s weight %d: %v, reference %v", name, i, final[i], refW[i])
			}
		}
	}
}

// TestElasticSingleWorkerCompletes sanity-checks the degenerate world:
// one worker, no failures, checkpointed completion.
func TestElasticSingleWorkerCompletes(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ds := elasticDataset(t)
	addr, _, served := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: 1}))

	res, err := Run(ctx, RuntimeConfig{
		Name:           "solo",
		Coordinator:    addr,
		Steps:          6,
		CheckpointPath: filepath.Join(t.TempDir(), "solo.gtkc"),
		Build:          elasticBuild(ds),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 6 || res.FinalWorld != 1 || res.FinalEpoch != 1 {
		t.Fatalf("result %+v, want 6 steps at world 1 epoch 1", res)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve = %v", err)
	}
}

// TestElasticResumeAgreementCatchesForeignCheckpoint: restoring another
// worker's snapshot must fail loudly, not fork the replicas.
func TestElasticResumeAgreementCatchesForeignCheckpoint(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ds := elasticDataset(t)
	dir := t.TempDir()
	addr, _, _ := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: 1}))

	// Produce a snapshot owned by "other".
	if _, err := Run(ctx, RuntimeConfig{
		Name: "other", Coordinator: addr, Steps: 3,
		CheckpointPath: filepath.Join(dir, "other.gtkc"),
		Build:          elasticBuild(ds),
	}); err != nil {
		t.Fatal(err)
	}

	addr2, _, _ := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: 1}))
	_, err := Run(ctx, RuntimeConfig{
		Name: "thief", Coordinator: addr2, Steps: 6,
		CheckpointPath: filepath.Join(dir, "other.gtkc"),
		Build:          elasticBuild(ds),
	})
	if err == nil || !strings.Contains(err.Error(), "belongs to worker") {
		t.Fatalf("err = %v, want foreign-snapshot rejection", err)
	}
}
