package cluster

import "sort"

// This file holds the deterministic re-shard rule of the elastic
// runtime: given an epoch's member set, which rank (and therefore which
// data shard and which slice of every rank-partitioned structure) does
// each worker own? The rule must be a pure function of the member set —
// not of join order, not of the previous epoch's history — so that a
// grown or shrunken cluster, a rejoined worker, and a fresh job started
// from the same snapshots all compute the identical assignment. The
// bit-identity tests (TestElasticShrinkMatchesFreshRun and
// TestElasticGrowMatchesFreshRun) lean on exactly this property.

// Reshard returns the epoch's rank assignment for the given member set:
// a new slice with the names in rank order. The rule is lexicographic
// name order, which has the two properties elasticity needs:
//
//   - Join-order invariance: any permutation of the same member set
//     produces the same assignment, so the coordinator's admission
//     timing can never skew ranks.
//   - Round-trip stability: growing by a member and then losing it (or
//     vice versa) restores the original assignment, so a transient
//     joiner leaves no permanent re-shard debt behind.
//
// Shrink epochs have always had this shape implicitly: epoch 1 ranks by
// name, and removing members preserves sortedness, so "survivors keep
// their previous relative order" and "sort by name" coincide. Grow
// epochs make the rule explicit — an inserted name shifts every member
// that sorts after it to a higher rank, deterministically.
func Reshard(members []string) []string {
	ranked := append([]string(nil), members...)
	sort.Strings(ranked)
	return ranked
}

// ShardRange partitions n items across world ranks contiguously and
// deterministically, returning rank's half-open slice [lo, hi). When n
// is not divisible by world, the first n%world ranks hold one extra
// item, so sizes differ by at most one and every item belongs to
// exactly one rank. world must be >= 1 and rank in [0, world); n < 0 is
// treated as 0.
func ShardRange(rank, world, n int) (lo, hi int) {
	if world < 1 || rank < 0 || rank >= world || n <= 0 {
		return 0, 0
	}
	base := n / world
	extra := n % world
	lo = rank*base + min(rank, extra)
	hi = lo + base
	if rank < extra {
		hi++
	}
	return lo, hi
}
