package cluster

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gtopkssgd/internal/collective"
	"gtopkssgd/internal/core"
	"gtopkssgd/internal/nn/models"
)

// TestChaosSoakSlowRank is the quorum path's endurance test: a 4-worker
// elastic job trains under quorum aggregation (q = P-1, 100ms per-round
// deadline) while a seeded schedule rotates
// which worker is SLOW — not dead: the victim sleeps after every step of
// its window, so its gather frames persistently miss the deadline while
// its heartbeats (a separate goroutine) keep flowing. The job must ride
// it out with ZERO epoch churn: stragglers cost staleness, never
// reconfiguration. Asserted:
//
//   - every worker finishes all steps in epoch 1 (no reconfigurations);
//   - per-worker iterations advance gap-free at constant world size;
//   - final weights are bit-identical on all four replicas — a missed
//     rank still applies the round's verdict, so replicas never diverge;
//   - the coordinator logged at least one degraded-rank report (the
//     victims cross DegradeAfter consecutive misses) without acting on it.
func TestChaosSoakSlowRank(t *testing.T) {
	const (
		workers   = 4
		steps     = 20
		ckptEvery = 5
		window    = 4                      // victim rotates every `window` of a worker's own iterations
		slowFor   = 200 * time.Millisecond // sleep per victim step; >> the 100ms round deadline
	)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	ds := elasticDataset(t)
	dir := t.TempDir()

	names := make([]string, workers)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	// Seeded rotation: the worker whose own iteration i falls in window
	// i/window is slow when (i/window) mod workers picks its index. Every
	// worker gets a turn, including rank 0 — the quorum root, whose slow
	// windows exercise the "everyone waits for the gatherer" path (those
	// rounds complete with full participation, just late).
	victim := func(iter int) string { return names[(iter/window)%workers] }

	qc := core.QuorumConfig{Q: workers - 1, Timeout: 100 * time.Millisecond}
	build := func(rank, world int, comm *collective.Comm) (*Session, error) {
		cls := models.MLP(ds.Dim(), elHidden, 10)
		cls.Net.Init(elSeed)
		dim := cls.Net.ParamCount()
		agg, err := core.NewGTopKAggregator(comm, dim, core.DensityToK(dim, elDensity))
		if err != nil {
			return nil, err
		}
		if err := agg.SetQuorum(qc); err != nil {
			return nil, err
		}
		tr, err := core.NewTrainer(core.TrainConfig{LR: elLR, Momentum: elMom},
			agg, cls.Net.Parameters(), models.GradFn(cls, ds, rank, world, elBatch))
		if err != nil {
			return nil, err
		}
		return &Session{
			Trainer:      tr,
			Params:       cls.Net.Parameters(),
			Sparsifier:   agg.Sparsifier(),
			QuorumMisses: agg.QuorumMissStreak,
		}, nil
	}

	var (
		recMu   sync.Mutex
		records = make(map[string][]stepRecord)
	)
	runResults := make(map[string]*RunResult)
	runErrs := make(map[string]error)

	addr, coord, served := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: workers}))
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			res, err := Run(ctx, RuntimeConfig{
				Name:            name,
				Coordinator:     addr,
				Steps:           steps,
				CheckpointPath:  filepath.Join(dir, name+".gtkc"),
				CheckpointEvery: ckptEvery,
				DegradeAfter:    2,
				Build:           build,
				OnStep: func(info StepInfo) error {
					recMu.Lock()
					records[name] = append(records[name], stepRecord{
						epoch: info.Epoch, rank: info.Rank, world: info.World,
						iter: info.Iter, loss: info.Loss,
					})
					recMu.Unlock()
					if victim(info.Iter-1) == name {
						time.Sleep(slowFor)
					}
					return nil
				},
			})
			recMu.Lock()
			runResults[name] = res
			runErrs[name] = err
			recMu.Unlock()
		}(name)
	}
	wg.Wait()

	for _, name := range names {
		if err := runErrs[name]; err != nil {
			t.Fatalf("%s failed: %v", name, err)
		}
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("coordinator Serve = %v, want nil (job completed)", err)
		}
	case <-ctx.Done():
		t.Fatal("coordinator did not finish")
	}

	// Zero epoch churn: a slow rank is telemetry, never a membership
	// event — every worker trained all steps inside epoch 1.
	for _, name := range names {
		res := runResults[name]
		if res.Steps != steps || res.Epochs != 1 || res.FinalEpoch != 1 || res.FinalWorld != workers {
			t.Fatalf("%s result %+v, want %d steps in a single epoch at world %d",
				name, res, steps, workers)
		}
	}

	// Gap-free iteration at constant world.
	for _, name := range names {
		recs := records[name]
		if len(recs) != steps {
			t.Fatalf("%s recorded %d steps, want %d", name, len(recs), steps)
		}
		for i, rec := range recs {
			if rec.epoch != 1 || rec.world != workers {
				t.Fatalf("%s step %d ran in epoch %d at world %d, want epoch 1 world %d",
					name, i, rec.epoch, rec.world, workers)
			}
			if rec.iter != i+1 {
				t.Fatalf("%s: iteration gap: record %d has iter %d", name, i, rec.iter)
			}
		}
	}

	// Bit-agreement: the quorum verdict is applied by participants and
	// stragglers alike, so the four replicas never diverge.
	ref := runResults[names[0]].FinalWeights
	if len(ref) == 0 {
		t.Fatalf("%s has no final weights", names[0])
	}
	for _, name := range names[1:] {
		w := runResults[name].FinalWeights
		if len(w) != len(ref) {
			t.Fatalf("%s has %d weights, want %d", name, len(w), len(ref))
		}
		for i := range ref {
			if math.Float32bits(w[i]) != math.Float32bits(ref[i]) {
				t.Fatalf("%s weight %d: %v vs %v — replicas diverged", name, i, w[i], ref[i])
			}
		}
	}

	// The victims crossed DegradeAfter consecutive misses at some point,
	// so the coordinator holds at least one degraded report — and, having
	// taken no action on them, still finished the job in epoch 1 above.
	total := 0
	for name, n := range coord.Degraded() {
		t.Logf("degraded reports from %s: %d", name, n)
		total += n
	}
	if total == 0 {
		t.Fatal("no degraded-rank reports reached the coordinator")
	}
}
