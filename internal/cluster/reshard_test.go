package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestReshardDeterminism pins the re-shard rule table-driven: the rank
// assignment must be a pure function of the member SET — independent of
// join arrival order, stable across grow-then-shrink round trips, and
// sane at the edges (single member, non-divisible worlds).
func TestReshardDeterminism(t *testing.T) {
	cases := []struct {
		name    string
		members []string
		want    []string
	}{
		{"single member", []string{"solo"}, []string{"solo"}},
		{"already sorted", []string{"a", "b", "c"}, []string{"a", "b", "c"}},
		{"reverse arrival", []string{"c", "b", "a"}, []string{"a", "b", "c"}},
		{"join slots between founders", []string{"w0", "w1", "w2", "w15"}, []string{"w0", "w1", "w15", "w2"}},
		{"numeric-ish names sort lexically", []string{"w10", "w2", "w1"}, []string{"w1", "w10", "w2"}},
		{"empty world", nil, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Reshard(tc.members)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Reshard(%v) = %v, want %v", tc.members, got, tc.want)
			}
		})
	}
}

// TestReshardArrivalOrderInvariance: every permutation of a member set
// must produce the identical rank assignment — the property that makes
// the coordinator's epoch declaration reproducible no matter which
// joiner's TCP handshake won a race.
func TestReshardArrivalOrderInvariance(t *testing.T) {
	members := []string{"delta", "alpha", "echo", "charlie", "bravo"}
	want := Reshard(members)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := Reshard(shuffled); !reflect.DeepEqual(got, want) {
			t.Fatalf("Reshard(%v) = %v, want %v (arrival order must not matter)", shuffled, got, want)
		}
	}
}

// TestReshardInputUntouched: Reshard must copy, not sort the caller's
// slice in place — the coordinator iterates its member map while
// forming epochs.
func TestReshardInputUntouched(t *testing.T) {
	in := []string{"z", "a", "m"}
	Reshard(in)
	if !reflect.DeepEqual(in, []string{"z", "a", "m"}) {
		t.Fatalf("Reshard mutated its input: %v", in)
	}
}

// TestReshardGrowShrinkRoundTrip: growing a world by a joiner and then
// shrinking it away must restore the original assignment exactly, and
// the survivors' relative order must be preserved through both
// transitions — the invariant that lets shrink-era checkpoints resume
// under the name-sort rule.
func TestReshardGrowShrinkRoundTrip(t *testing.T) {
	base := []string{"w0", "w1", "w2"}
	joiners := []string{"a-first", "w05", "w15", "zz-last"}
	for _, j := range joiners {
		t.Run(j, func(t *testing.T) {
			before := Reshard(base)
			grown := Reshard(append(append([]string(nil), base...), j))
			if len(grown) != len(base)+1 {
				t.Fatalf("grown world has %d ranks, want %d", len(grown), len(base)+1)
			}
			// Survivors keep their relative order in the grown epoch.
			var survivors []string
			for _, name := range grown {
				if name != j {
					survivors = append(survivors, name)
				}
			}
			if !reflect.DeepEqual(survivors, before) {
				t.Fatalf("grow by %s scrambled survivors: %v, want %v", j, survivors, before)
			}
			// Shrinking the joiner away restores the original assignment.
			after := Reshard(survivors)
			if !reflect.DeepEqual(after, before) {
				t.Fatalf("grow-then-shrink round trip: %v, want %v", after, before)
			}
		})
	}
}

// TestShardRange pins the contiguous data partition: full coverage with
// no gaps or overlaps, the remainder spread one-each over the lowest
// ranks, and zero-width shards when ranks outnumber items.
func TestShardRange(t *testing.T) {
	cases := []struct {
		name           string
		rank, world, n int
		lo, hi         int
	}{
		{"even split rank 0", 0, 4, 8, 0, 2},
		{"even split rank 3", 3, 4, 8, 6, 8},
		{"remainder to low ranks", 0, 3, 10, 0, 4},
		{"remainder middle", 1, 3, 10, 4, 7},
		{"remainder high rank", 2, 3, 10, 7, 10},
		{"single member takes all", 0, 1, 7, 0, 7},
		{"more ranks than items", 5, 8, 3, 3, 3},
		{"rank under items boundary", 2, 8, 3, 2, 3},
		{"empty dataset", 0, 4, 0, 0, 0},
		{"invalid rank", 4, 4, 8, 0, 0},
		{"negative rank", -1, 4, 8, 0, 0},
		{"zero world", 0, 0, 8, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lo, hi := ShardRange(tc.rank, tc.world, tc.n)
			if lo != tc.lo || hi != tc.hi {
				t.Fatalf("ShardRange(%d, %d, %d) = [%d, %d), want [%d, %d)",
					tc.rank, tc.world, tc.n, lo, hi, tc.lo, tc.hi)
			}
		})
	}
}

// TestShardRangeCoversEverything: for a sweep of (world, n) shapes the
// per-rank ranges must tile [0, n) exactly in rank order.
func TestShardRangeCoversEverything(t *testing.T) {
	for world := 1; world <= 7; world++ {
		for n := 0; n <= 23; n++ {
			next := 0
			for rank := 0; rank < world; rank++ {
				lo, hi := ShardRange(rank, world, n)
				if lo != next {
					t.Fatalf("world %d n %d rank %d starts at %d, want %d (gap or overlap)", world, n, rank, lo, next)
				}
				if hi < lo {
					t.Fatalf("world %d n %d rank %d has negative range [%d, %d)", world, n, rank, lo, hi)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("world %d n %d: ranges cover [0, %d), want [0, %d)", world, n, next, n)
			}
		}
	}
}
