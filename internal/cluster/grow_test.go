package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gtopkssgd/internal/transport"
)

// TestElasticGrowMatchesFreshRun is the scale-UP acceptance test, the
// grow-side twin of TestElasticShrinkMatchesFreshRun: a 3-worker job is
// joined mid-training by a fourth worker, which the coordinator parks
// and admits at the next epoch boundary. No process dies. The grown
// 4-rank epoch resumes from the survivors' last common checkpoint, the
// joiner adopts the cluster state from a donor rank — and the
// post-admission loss trajectory and final weights must be
// BIT-IDENTICAL to a fresh 4-rank run restored from the same
// iteration-aligned snapshots, checked against references on both the
// in-process and the real-TCP fabric.
//
// The joiner's name ("w15") sorts BETWEEN two founders ("w1" < "w15" <
// "w2"), so admission exercises the hard part of the deterministic
// re-shard: a surviving worker (w2) has its rank shifted (2 -> 3) and
// its data shard moved by a join it had nothing to do with.
func TestElasticGrowMatchesFreshRun(t *testing.T) {
	const (
		initial   = 3
		maxWorld  = 4
		steps     = 24
		ckptEvery = 4
		joiner    = "w15"
		// All founders pause inside OnStep at this iteration while the
		// joiner is admitted (monitor tick is ~12ms under fastHB, the
		// hold is 40x that), so the epoch teardown lands while nobody is
		// mid-collective and the resume point is exactly the checkpoint
		// at iteration 8 — deterministic, not a race.
		holdIter = 10
		hold     = 500 * time.Millisecond
	)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	ds := elasticDataset(t)
	dir := t.TempDir()

	addr, _, served := startCoordinator(t, ctx,
		fastHB(CoordinatorConfig{World: initial, MaxWorld: maxWorld}))

	var (
		recMu      sync.Mutex
		records    = make(map[string][]stepRecord)
		runResults = make(map[string]*RunResult)
		runErrs    = make(map[string]error)
		joinOnce   sync.Once
		wg         sync.WaitGroup
	)
	var launch func(name string)
	launch = func(name string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Run(ctx, RuntimeConfig{
				Name:            name,
				Coordinator:     addr,
				Steps:           steps,
				CheckpointPath:  filepath.Join(dir, name+".gtkc"),
				CheckpointEvery: ckptEvery,
				Build:           elasticBuild(ds),
				OnStep: func(info StepInfo) error {
					recMu.Lock()
					records[name] = append(records[name], stepRecord{
						epoch: info.Epoch, rank: info.Rank, world: info.World,
						iter: info.Iter, loss: info.Loss,
					})
					recMu.Unlock()
					if info.Epoch == 1 && info.Iter == holdIter {
						joinOnce.Do(func() { launch(joiner) })
						time.Sleep(hold)
					}
					return nil
				},
			})
			recMu.Lock()
			runResults[name] = res
			runErrs[name] = err
			recMu.Unlock()
		}()
	}
	for i := 0; i < initial; i++ {
		launch(fmt.Sprintf("w%d", i))
	}
	wg.Wait()

	// Everyone — founders and joiner — must complete the full job.
	all := []string{"w0", "w1", joiner, "w2"} // epoch-2 rank order
	for _, name := range all {
		if runErrs[name] != nil {
			t.Fatalf("%s failed: %v", name, runErrs[name])
		}
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("coordinator Serve = %v, want nil (job completed)", err)
		}
	case <-ctx.Done():
		t.Fatal("coordinator did not finish")
	}
	for newRank, name := range all {
		res := runResults[name]
		wantEpochs := 2
		if name == joiner {
			wantEpochs = 1 // parked through epoch 1, trained only in epoch 2
		}
		if res.Steps != steps || res.FinalWorld != maxWorld || res.FinalEpoch != 2 ||
			res.FinalRank != newRank || res.Epochs != wantEpochs {
			t.Fatalf("%s result %+v, want %d steps at rank %d of %d in epoch 2 (%d epochs)",
				name, res, steps, newRank, maxWorld, wantEpochs)
		}
	}

	// Epoch-1 ranks are name-ordered over the founders; epoch 2 slots the
	// joiner at its name-order position, shifting w2 up.
	oldRank := map[string]int{"w0": 0, "w1": 1, "w2": 2}
	resumeIter := -1
	for newRank, name := range all {
		var sawEpoch2 bool
		for _, rec := range records[name] {
			switch rec.epoch {
			case 1:
				if name == joiner {
					t.Fatalf("joiner trained in epoch 1: %+v", rec)
				}
				if rec.rank != oldRank[name] || rec.world != initial {
					t.Fatalf("%s epoch-1 record %+v, want rank %d world %d", name, rec, oldRank[name], initial)
				}
			case 2:
				if rec.rank != newRank || rec.world != maxWorld {
					t.Fatalf("%s epoch-2 record %+v, want rank %d world %d", name, rec, newRank, maxWorld)
				}
				if !sawEpoch2 {
					sawEpoch2 = true
					if resumeIter == -1 {
						resumeIter = rec.iter - 1
					} else if rec.iter-1 != resumeIter {
						t.Fatalf("%s resumed at %d, others at %d", name, rec.iter-1, resumeIter)
					}
				}
			}
		}
		if !sawEpoch2 {
			t.Fatalf("%s never trained in epoch 2", name)
		}
	}
	// Admission at the iteration-10 hold must roll back only to the
	// cadence-4 checkpoint at 8 — no training beyond the last snapshot is
	// kept, none before it is lost.
	if resumeIter != 8 {
		t.Fatalf("grown epoch resumed at iteration %d, want 8", resumeIter)
	}

	// Reference: a fresh 3-rank run to the resume point yields the
	// founders' snapshots; the joiner's state is the donor's (rank 0)
	// weights and momentum with a zeroed error-feedback residual —
	// exactly what syncResume hands it. A fresh 4-rank run restored from
	// those states must reproduce the elastic run bit for bit, whether
	// the reference talks over in-process channels or real TCP sockets.
	_, statesAtResume := refRun(t, ds, initial, resumeIter, nil, 0)
	dim := len(statesAtResume[0].weights)
	restore4 := []*refState{
		statesAtResume[0], // w0
		statesAtResume[1], // w1
		{ // w15, the joiner
			weights:  statesAtResume[0].weights,
			velocity: statesAtResume[0].velocity,
			residual: make([]float32, dim),
		},
		statesAtResume[2], // w2
	}
	fabrics := map[string]transport.Fabric{"inproc": nil}
	tcpFab, err := transport.NewTCP(maxWorld)
	if err != nil {
		t.Fatal(err)
	}
	fabrics["tcp"] = tcpFab

	for fabName, fabric := range fabrics {
		refLosses, refStates := refRunOn(t, ds, maxWorld, steps-resumeIter, restore4, resumeIter, fabric)
		for newRank, name := range all {
			var got []stepRecord
			for _, rec := range records[name] {
				if rec.epoch == 2 {
					got = append(got, rec)
				}
			}
			want := refLosses[newRank]
			if len(got) != len(want) {
				t.Fatalf("[%s ref] %s: %d epoch-2 steps, reference has %d", fabName, name, len(got), len(want))
			}
			for s, rec := range got {
				if rec.iter != resumeIter+s+1 {
					t.Fatalf("[%s ref] %s: epoch-2 step %d has iter %d, want %d",
						fabName, name, s, rec.iter, resumeIter+s+1)
				}
				if rec.loss != want[s] {
					t.Fatalf("[%s ref] %s iteration %d: loss %v, reference %v (trajectories must be bit-identical)",
						fabName, name, rec.iter, rec.loss, want[s])
				}
			}
			final := runResults[name].FinalWeights
			refW := refStates[newRank].weights
			if len(final) != len(refW) {
				t.Fatalf("[%s ref] %s: %d final weights, reference %d", fabName, name, len(final), len(refW))
			}
			for i := range final {
				if final[i] != refW[i] {
					t.Fatalf("[%s ref] %s weight %d: %v, reference %v", fabName, name, i, final[i], refW[i])
				}
			}
		}
	}
}

// TestLateJoinParksAndGrows pins the coordinator-level grow contract
// without a training loop: a late joiner is parked (welcome carries the
// marker), the autoscaler admits it at the next monitor tick, and the
// grown epoch re-ranks everyone by name with the joiner slotted in
// name order.
func TestLateJoinParksAndGrows(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	addr, _, _ := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: 2, MaxWorld: 3}))

	founders := make(map[string]*Member, 2)
	for _, name := range []string{"alpha", "zulu"} {
		m, err := Join(ctx, addr, name, "127.0.0.1:1")
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close() //nolint:errcheck // test teardown
		if m.Parked() {
			t.Fatalf("founder %s parked, want immediate membership", name)
		}
		founders[name] = m
	}
	for _, m := range founders {
		awaitConfig(t, ctx, m, 1)
	}

	late, err := Join(ctx, addr, "mike", "127.0.0.1:2")
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close() //nolint:errcheck // test teardown
	if !late.Parked() {
		t.Fatal("late joiner not parked")
	}

	// The default autoscaler admits it at the next tick; "mike" sorts
	// between the founders, so zulu's rank shifts 1 -> 2.
	wantRanks := map[string]int{"alpha": 0, "mike": 1, "zulu": 2}
	for name, m := range map[string]*Member{"alpha": founders["alpha"], "zulu": founders["zulu"], "mike": late} {
		conf := awaitConfig(t, ctx, m, 2)
		if conf.World != 3 || conf.Rank != wantRanks[name] {
			t.Fatalf("%s epoch-2 config %+v, want rank %d of 3", name, conf, wantRanks[name])
		}
		if len(conf.Names) != 3 || conf.Names[0] != "alpha" || conf.Names[1] != "mike" || conf.Names[2] != "zulu" {
			t.Fatalf("epoch-2 names %v, want [alpha mike zulu]", conf.Names)
		}
	}
}

// TestDuplicateNameJoinRejected pins the duplicate-identity guard: a
// joiner reusing a live member's name — or a parked joiner's — must be
// rejected explicitly, not admitted as a doppelganger that would
// corrupt the name-keyed re-shard mapping.
func TestDuplicateNameJoinRejected(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	addr, _, _ := startCoordinator(t, ctx, fastHB(CoordinatorConfig{World: 2, MaxWorld: 4}))

	a, err := Join(ctx, addr, "alpha", "127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close() //nolint:errcheck // test teardown

	// Duplicate of a pre-start member.
	if _, err := Join(ctx, addr, "alpha", "127.0.0.1:2"); err == nil ||
		!strings.Contains(err.Error(), "already joined") {
		t.Fatalf("duplicate pre-start join error = %v, want explicit name rejection", err)
	}

	b, err := Join(ctx, addr, "bravo", "127.0.0.1:3")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close() //nolint:errcheck // test teardown
	awaitConfig(t, ctx, a, 1)

	// Duplicate of a live member after start. MaxWorld has room (4), so
	// the rejection is the name guard, not the world-full guard.
	if _, err := Join(ctx, addr, "bravo", "127.0.0.1:4"); err == nil ||
		!strings.Contains(err.Error(), "already joined") {
		t.Fatalf("duplicate live-member join error = %v, want explicit name rejection", err)
	}

	// Duplicate of a parked (or freshly admitted) joiner: "charlie" is
	// queued or already grown into the epoch — either way its name is
	// taken.
	cjoin, err := Join(ctx, addr, "charlie", "127.0.0.1:5")
	if err != nil {
		t.Fatal(err)
	}
	defer cjoin.Close() //nolint:errcheck // test teardown
	if _, err := Join(ctx, addr, "charlie", "127.0.0.1:6"); err == nil ||
		!strings.Contains(err.Error(), "already joined") {
		t.Fatalf("duplicate parked-joiner join error = %v, want explicit name rejection", err)
	}
}
