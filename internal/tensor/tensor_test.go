package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"gtopkssgd/internal/prng"
)

func randMatrix(src *prng.Source, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(src.NormFloat64())
	}
	return m
}

// naiveMatMul is the O(n^3) reference used to validate the blocked kernels.
func naiveMatMul(a, b *Matrix, transA, transB bool) *Matrix {
	ar, ac := a.Rows, a.Cols
	if transA {
		ar, ac = ac, ar
	}
	br, bc := b.Rows, b.Cols
	if transB {
		br, bc = bc, br
	}
	if ac != br {
		panic("naiveMatMul: shape mismatch")
	}
	out := NewMatrix(ar, bc)
	get := func(m *Matrix, trans bool, i, j int) float32 {
		if trans {
			return m.At(j, i)
		}
		return m.At(i, j)
	}
	for i := 0; i < ar; i++ {
		for j := 0; j < bc; j++ {
			var s float64
			for k := 0; k < ac; k++ {
				s += float64(get(a, transA, i, k)) * float64(get(b, transB, k, j))
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func matricesClose(t *testing.T, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape mismatch: got %dx%d want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if math.Abs(float64(v-want.Data[i])) > tol {
			t.Fatalf("element %d: got %v want %v", i, v, want.Data[i])
		}
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	src := prng.New(1)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {7, 13, 3}, {16, 32, 8}, {33, 17, 29},
	}
	for _, s := range shapes {
		a := randMatrix(src, s.m, s.k)
		b := randMatrix(src, s.k, s.n)
		dst := NewMatrix(s.m, s.n)
		MatMul(dst, a, b)
		matricesClose(t, dst, naiveMatMul(a, b, false, false), 1e-3)
	}
}

func TestMatMulTransBMatchesNaive(t *testing.T) {
	src := prng.New(2)
	a := randMatrix(src, 9, 14)
	b := randMatrix(src, 6, 14)
	dst := NewMatrix(9, 6)
	MatMulTransB(dst, a, b)
	matricesClose(t, dst, naiveMatMul(a, b, false, true), 1e-3)
}

func TestMatMulTransAMatchesNaive(t *testing.T) {
	src := prng.New(3)
	a := randMatrix(src, 14, 9)
	b := randMatrix(src, 14, 6)
	dst := NewMatrix(9, 6)
	MatMulTransA(dst, a, b)
	matricesClose(t, dst, naiveMatMul(a, b, true, false), 1e-3)
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched shapes did not panic")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(4, 2))
}

func TestAddBiasRows(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	AddBiasRows(m, []float32{10, 20, 30})
	want := []float32{11, 22, 33, 14, 25, 36}
	for i, v := range m.Data {
		if v != want[i] {
			t.Fatalf("element %d: got %v want %v", i, v, want[i])
		}
	}
}

func TestSumRowsInto(t *testing.T) {
	m := FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	dst := make([]float32, 2)
	SumRowsInto(dst, m)
	if dst[0] != 9 || dst[1] != 12 {
		t.Fatalf("SumRowsInto = %v, want [9 12]", dst)
	}
}

func TestDotAxpyScale(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	dst := []float32{1, 1, 1}
	AxpyInto(dst, 2, a)
	if dst[0] != 3 || dst[1] != 5 || dst[2] != 7 {
		t.Fatalf("AxpyInto = %v, want [3 5 7]", dst)
	}
	Scale(dst, 0.5)
	if dst[0] != 1.5 || dst[1] != 2.5 || dst[2] != 3.5 {
		t.Fatalf("Scale = %v", dst)
	}
}

func TestAddSubFill(t *testing.T) {
	dst := []float32{1, 2, 3}
	AddInto(dst, []float32{1, 1, 1})
	SubInto(dst, []float32{2, 2, 2})
	if dst[0] != 0 || dst[1] != 1 || dst[2] != 2 {
		t.Fatalf("Add/Sub = %v, want [0 1 2]", dst)
	}
	Fill(dst, 7)
	for _, v := range dst {
		if v != 7 {
			t.Fatalf("Fill = %v", dst)
		}
	}
}

func TestNormsAndStats(t *testing.T) {
	x := []float32{3, -4}
	if got := L2Norm(x); math.Abs(got-5) > 1e-9 {
		t.Fatalf("L2Norm = %v, want 5", got)
	}
	if got := Sum(x); got != -1 {
		t.Fatalf("Sum = %v, want -1", got)
	}
	if got := MaxAbs(x); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
	if got := ArgMax([]float32{0, 9, 2}); got != 1 {
		t.Fatalf("ArgMax = %v, want 1", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("ArgMax(nil) = %v, want -1", got)
	}
}

func TestClip(t *testing.T) {
	x := []float32{-10, -0.5, 0.5, 10}
	Clip(x, 1)
	want := []float32{-1, -0.5, 0.5, 1}
	for i, v := range x {
		if v != want[i] {
			t.Fatalf("Clip = %v, want %v", x, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestQuickDotSymmetric(t *testing.T) {
	f := func(raw []float32) bool {
		a := raw
		b := make([]float32, len(a))
		for i := range b {
			b[i] = a[len(a)-1-i]
		}
		d1, d2 := Dot(a, b), Dot(b, a)
		return d1 == d2 || (math.IsNaN(float64(d1)) && math.IsNaN(float64(d2)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAxpyLinearity(t *testing.T) {
	// (dst + a*x) + b*x == dst + (a+b)*x up to float error.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		src := prng.New(seed)
		x := make([]float32, n)
		base := make([]float32, n)
		for i := range x {
			x[i] = float32(src.NormFloat64())
			base[i] = float32(src.NormFloat64())
		}
		alpha, beta := float32(0.25), float32(0.5)
		lhs := append([]float32(nil), base...)
		AxpyInto(lhs, alpha, x)
		AxpyInto(lhs, beta, x)
		rhs := append([]float32(nil), base...)
		AxpyInto(rhs, alpha+beta, x)
		for i := range lhs {
			if math.Abs(float64(lhs[i]-rhs[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	src := prng.New(1)
	a := randMatrix(src, 64, 64)
	c := randMatrix(src, 64, 64)
	dst := NewMatrix(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, c)
	}
}
