// Package tensor implements the dense float32 linear algebra used by the
// neural-network substrate: flat vectors for parameters/gradients and a
// row-major matrix type with cache-blocked multiplication.
//
// The paper trains with 32-bit floats ("All models are trained with 32-bit
// floating points", Table III), so the element type here is float32;
// reductions that feed metrics accumulate in float64 to avoid drift.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float32.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMatrix(%d, %d): negative dimension", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows x cols matrix.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice(%d, %d) with %d elements", rows, cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul computes dst = a * b. dst must be preallocated with shape
// (a.Rows, b.Cols) and must not alias a or b. The k-loop is hoisted into
// an axpy over rows of b, which vectorises well and is cache friendly for
// the tall-skinny shapes produced by mini-batch training.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch: (%dx%d)*(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			AxpyInto(drow, aik, brow)
		}
	}
}

// MatMulTransB computes dst = a * bᵀ. dst must have shape (a.Rows, b.Rows).
func MatMulTransB(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch: (%dx%d)*(%dx%d)T->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			drow[j] = Dot(arow, b.Row(j))
		}
	}
}

// MatMulTransA computes dst = aᵀ * b. dst must have shape (a.Cols, b.Cols).
func MatMulTransA(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch: (%dx%d)T*(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Row(r)
		for i := 0; i < a.Cols; i++ {
			ari := arow[i]
			if ari == 0 {
				continue
			}
			AxpyInto(dst.Row(i), ari, brow)
		}
	}
}

// AddBiasRows adds bias to every row of m in place.
func AddBiasRows(m *Matrix, bias []float32) {
	if len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: AddBiasRows: %d columns, %d bias terms", m.Cols, len(bias)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, b := range bias {
			row[j] += b
		}
	}
}

// SumRowsInto accumulates the column-wise sum of m into dst (dst += Σ rows).
func SumRowsInto(dst []float32, m *Matrix) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: SumRowsInto: %d columns, %d dst terms", m.Cols, len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
}

// Dot returns the inner product of a and b (same length required).
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch: %d vs %d", len(a), len(b)))
	}
	var s float32
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AxpyInto computes dst += alpha * x element-wise.
func AxpyInto(dst []float32, alpha float32, x []float32) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("tensor: AxpyInto length mismatch: %d vs %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(x []float32, alpha float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// AddInto computes dst += x element-wise.
func AddInto(dst, x []float32) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("tensor: AddInto length mismatch: %d vs %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] += v
	}
}

// SubInto computes dst -= x element-wise.
func SubInto(dst, x []float32) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("tensor: SubInto length mismatch: %d vs %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] -= v
	}
}

// Fill sets every element of x to v.
func Fill(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// L2Norm returns the Euclidean norm of x, accumulated in float64.
func L2Norm(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Sum returns the float64 sum of x.
func Sum(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the largest absolute value in x (0 for empty input).
func MaxAbs(x []float32) float32 {
	var m float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the largest element of x (-1 for empty x).
func ArgMax(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// Clip bounds every element of x to [-limit, limit] in place.
func Clip(x []float32, limit float32) {
	for i, v := range x {
		if v > limit {
			x[i] = limit
		} else if v < -limit {
			x[i] = -limit
		}
	}
}
